#!/usr/bin/env python3
"""Check intra-repo links in markdown files.

Docs rot when the files they point at move; this gate makes a broken
relative link a CI failure, the same way a broken #include is. It
walks the given markdown files (or every tracked *.md under the given
directories), extracts inline links and images, and verifies that
every *relative* target exists on disk, resolved against the linking
file's directory.

Checked:
  * relative file links: [text](docs/serving.md), [t](../README.md)
  * anchors on relative links: the file part must exist; the fragment
    must match a heading in the target (github-style slugs) or an
    explicit <a name="..."> anchor
  * pure fragments: [text](#section) must match a heading in the same
    file

Ignored (not this gate's business):
  * absolute URLs (http://, https://, mailto:)
  * links inside fenced code blocks
  * bare autolinks and reference-style definitions to absolute URLs

Exit status: 0 when every link resolves, 1 otherwise (each failure is
printed as file:line: message).
"""

import argparse
import os
import re
import sys

# Inline link or image: [text](target) / ![alt](target). Targets with
# spaces must be <>-wrapped in markdown; both forms are captured.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(<([^>]+)>\)|!?\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
ANCHOR_RE = re.compile(r"<a\s+name=[\"']([^\"']+)[\"']")
ABSOLUTE_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def slugify(heading):
    """Github-style heading slug: lowercase, drop punctuation, dash
    the spaces. Good enough for the anchors this repo writes."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    # Drop markdown link syntax inside headings: keep the text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"[\s]+", "-", text).strip("-")


def parse_markdown(path):
    """Return (links, anchors): links as (lineno, target) outside code
    fences, anchors as the set of valid fragment ids."""
    links = []
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            for match in ANCHOR_RE.finditer(line):
                anchors.add(match.group(1))
            heading = HEADING_RE.match(line)
            if heading and not in_fence:
                anchors.add(slugify(heading.group(1)))
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1) or match.group(2)
                links.append((lineno, target))
    return links, anchors


def check_file(path, anchor_cache, repo_root):
    """Check every link in `path`; return a list of error strings."""
    errors = []
    links, own_anchors = parse_markdown(path)
    anchor_cache[os.path.abspath(path)] = own_anchors
    base = os.path.dirname(os.path.abspath(path))
    for lineno, target in links:
        if ABSOLUTE_RE.match(target) or target.startswith("//"):
            continue  # external URL
        if target.startswith("#"):
            if target[1:] not in own_anchors:
                errors.append("%s:%d: broken anchor %s" %
                              (path, lineno, target))
            continue
        file_part, _, fragment = target.partition("#")
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not resolved.startswith(repo_root + os.sep):
            # Escapes the repository: a github-site-relative path like
            # ../../actions/... (the CI badge), not a repo file.
            continue
        if not os.path.exists(resolved):
            errors.append("%s:%d: broken link %s (no such file %s)" %
                          (path, lineno, target,
                           os.path.relpath(resolved, repo_root)))
            continue
        if fragment and resolved.endswith(".md"):
            key = os.path.abspath(resolved)
            if key not in anchor_cache:
                anchor_cache[key] = parse_markdown(resolved)[1]
            if fragment not in anchor_cache[key]:
                errors.append("%s:%d: broken anchor %s (no heading "
                              "#%s in %s)" %
                              (path, lineno, target, fragment,
                               os.path.relpath(resolved, repo_root)))
    return errors


def collect_markdown(paths):
    """Expand directories into the *.md files under them (skipping
    build trees and dot-directories)."""
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = [d for d in dirs
                           if not d.startswith(".")
                           and not d.startswith("build")]
                out.extend(os.path.join(root, f) for f in files
                           if f.endswith(".md"))
        else:
            out.append(path)
    return sorted(set(out))


def main():
    parser = argparse.ArgumentParser(
        description="Check intra-repo markdown links.")
    parser.add_argument("paths", nargs="+",
                        help="markdown files or directories to scan")
    parser.add_argument("--repo-root", default=".",
                        help="root for error-message relative paths")
    args = parser.parse_args()

    files = collect_markdown(args.paths)
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    repo_root = os.path.abspath(args.repo_root)
    anchor_cache = {}
    errors = []
    for path in files:
        errors.extend(check_file(path, anchor_cache, repo_root))
    for error in errors:
        print(error, file=sys.stderr)
    print("check_links: %d file(s), %d broken link(s)" %
          (len(files), len(errors)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
