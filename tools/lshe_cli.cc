// lshe — command-line domain search over CSV files.
//
//   lshe index       --out idx.lshe --catalog idx.cat [options] file1.csv ...
//   lshe query       --index idx.lshe --catalog idx.cat --query-csv q.csv
//                    --column Partner [--threshold 0.5 | --topk 10]
//   lshe batch-query --index idx.lshe --catalog idx.cat --query-csv q.csv
//                    [--column Partner] [--threshold 0.5 | --topk 10]
//                    [--delta extra.csv] [--shards 4] [--mmap]
//   lshe snapshot    --index idx.lshe --out idx.lshe2
//                    [--catalog idx.cat --shards N --out DIR]
//   lshe stats       --index idx.lshe [--catalog idx.cat] [--mmap]
//   lshe verify      PATH [--quarantine]
//   lshe cluster     SNAPSHOT_DIR --out clusters.tsv [--threshold 0.9]
//                    [--tile-size N]  (or --index/--catalog [--shards N])
//
// `index` extracts every column of every CSV as a domain (paper Section 2:
// dom(R) = projections on the attributes), sketches them, builds an LSH
// Ensemble and writes the index image plus a catalog (names, sizes,
// signatures). `query` sketches one column of a query CSV and reports the
// indexed domains that contain it (threshold mode, Definition 2) or the
// k best containers (top-k mode). `batch-query` treats every column of the
// query CSV as one query and answers them all in one batched call:
// threshold mode rides BatchQuery(), `--topk K` ranks every query in one
// lockstep BatchSearch(), `--delta FILE` first layers FILE's columns as
// unindexed delta domains on a DynamicLshEnsemble rebuilt from the
// catalog (the paper's dynamic-data scenario, Section 6.2) so both modes
// search indexed + just-arrived data, and `--shards N` serves everything
// from an N-shard scatter/gather ShardedEnsemble instead (results are
// identical; throughput scales with cores). `stats` prints the partition
// layout.
//
// `snapshot` converts an index image to the format-v2 zero-copy snapshot
// (io/snapshot.h) — with `--shards N` it rebuilds the catalog into an
// N-shard serving layer and writes a per-shard snapshot directory — and
// `--mmap` makes `query`/`batch-query`/`stats` open the index via mmap
// (requires a v2 snapshot): cold starts in milliseconds, pages shared
// across serving processes, results identical to a heap load.
//
// `verify` is fsck for index images: point it at a single image file or
// a sharded snapshot directory and it checks every checksum (manifest,
// every shard, every segment), naming the failing file; with
// `--quarantine` it sweeps files the manifest does not bless into
// PATH/quarantine/ instead of leaving them beside the live image.
//
// `--deadline-us N` (query / batch-query) bounds each query's time: a
// query that cannot finish inside N microseconds fails with
// DeadlineExceeded instead of running long (checked between partition
// probes, so an expired deadline stops further forest work).
//
// `cluster` self-joins an index against itself (every indexed domain
// becomes a query, in tiles of --tile-size BatchQuery waves) and groups
// the candidate graph's connected components into near-duplicate
// clusters (cluster/clusterer.h; see docs/clustering.md). Point it at a
// sharded snapshot directory — opened zero-copy, shard count adopted
// from the manifest — or at --index/--catalog to rebuild a serving
// layer first. Output is a TSV of `id<TAB>root`, one line per domain in
// ascending id order, where root is the smallest id in the domain's
// cluster.

#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <chrono>
#include <csignal>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/clusterer.h"
#include "core/dynamic_ensemble.h"
#include "core/lsh_ensemble.h"
#include "core/sharded_ensemble.h"
#include "core/topk.h"
#include "data/csv.h"
#include "filter/probe_filter.h"
#include "data/sketcher.h"
#include "data/table.h"
#include "io/catalog.h"
#include "io/ensemble_io.h"
#include "io/env.h"
#include "io/fsck.h"
#include "io/snapshot.h"
#include "minhash/minhash.h"
#include "serve/server.h"
#include "serve/snapshot_manager.h"
#include "util/clock.h"
#include "util/timer.h"

namespace lshensemble {
namespace {

struct Flags {
  std::vector<std::string> positional;
  std::string out;
  std::string catalog;
  std::string index;
  std::string query_csv;
  std::string column;
  std::string delta_csv;
  // cluster: re-extract these CSVs so every record carries its raw Domain
  // and candidate edges are verified by exact containment (repeatable).
  std::vector<std::string> verify_csv;
  double threshold = 0.5;
  int topk = 0;    // 0 = threshold mode
  int shards = 0;  // 0 = unsharded engines
  uint64_t deadline_us = 0;  // 0 = no per-query deadline
  size_t tile_size = 2048;   // cluster: queries per self-join wave
  bool quarantine = false;   // verify: move stray files aside
  // serve flags
  std::string bind = "127.0.0.1";
  std::string port_file;       // write the bound port here (scripts)
  int port = 0;                // 0 = ephemeral
  int reactors = 2;
  int dispatchers = 2;
  int batch_max = 64;
  uint64_t linger_us = 50;
  int max_pending = 1024;
  int max_in_flight = 0;       // engine admission bound; 0 = unbounded
  bool partial = false;        // deadline degrades to partial results
  bool mmap = false;
  bool verify = true;    // --no-verify: skip eager segment CRC sweep
  bool madvise = true;   // --no-madvise: no OS pager hints on open
  int partitions = 16;
  int num_hashes = 256;
  int tree_depth = 8;
  size_t min_domain_size = 2;
  uint64_t seed = 42;
};

void Usage() {
  std::fprintf(stderr, R"(usage:
  lshe index --out IDX --catalog CAT [--partitions N] [--hashes M]
             [--tree-depth R] [--min-size K] [--seed S] CSV...
  lshe query --index IDX --catalog CAT --query-csv FILE --column NAME
             [--threshold T | --topk K] [--deadline-us N]
  lshe batch-query --index IDX --catalog CAT --query-csv FILE
             [--column NAME] [--threshold T | --topk K] [--min-size K]
             [--delta FILE] [--shards N] [--mmap] [--no-verify]
             [--no-madvise] [--deadline-us N]
  lshe snapshot --index IDX --out SNAP [--catalog CAT --shards N --out DIR]
  lshe stats --index IDX [--catalog CAT] [--mmap] [--no-verify]
             [--no-madvise]
  lshe verify PATH [--quarantine]
  lshe cluster SNAPSHOT_DIR [--out TSV] [--threshold T] [--tile-size N]
             [--verify-csv CSV]... [--no-verify] [--no-madvise]
  lshe cluster --index IDX --catalog CAT [--shards N] [--out TSV]
             [--threshold T] [--tile-size N] [--verify-csv CSV]...
  lshe serve SNAPSHOT_DIR [--bind A] [--port N] [--port-file F]
             [--reactors N] [--dispatchers N] [--batch-max N]
             [--linger-us N] [--max-pending N] [--max-in-flight N]
             [--deadline-us N] [--partial] [--no-verify] [--no-madvise]

serving-open tuning (with --mmap): --no-verify skips the eager segment
CRC sweep (structure and manifest stay verified); --no-madvise disables
OS pager hints. Both default on.

`verify` checks every checksum of an index image or sharded snapshot
directory, naming any failing file; --quarantine moves unmanifested
files to PATH/quarantine/. `--deadline-us N` fails queries that cannot
finish within N microseconds with DeadlineExceeded.

`serve` runs the micro-batching network front-end over a sharded
snapshot directory (see docs/serving.md): binary protocol on the data
port, `GET /metrics` on the same port for scraping, reload requests
hot-swap to the snapshot directory's current content. Stop with SIGINT.

`cluster` self-joins the index and writes near-duplicate clusters as
`id<TAB>root` TSV lines (ascending ids; root = smallest id in the
cluster; --out defaults to stdout). A snapshot directory opens
zero-copy with the manifest's shard count; the --index/--catalog form
rebuilds a serving layer (--shards N, default 1) first.
`--verify-csv CSV` (repeatable) re-extracts the raw domains from the
CSVs the index was built from — pass the same files, order and
--min-size — and rejects candidate edges that fail exact containment
at t*, so clusters carry no LSH false positives. Every indexed id must
resolve to a re-extracted domain or the command fails. See
docs/clustering.md.
)");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--out" && (value = next())) {
      flags->out = value;
    } else if (arg == "--catalog" && (value = next())) {
      flags->catalog = value;
    } else if (arg == "--index" && (value = next())) {
      flags->index = value;
    } else if (arg == "--query-csv" && (value = next())) {
      flags->query_csv = value;
    } else if (arg == "--column" && (value = next())) {
      flags->column = value;
    } else if (arg == "--delta" && (value = next())) {
      flags->delta_csv = value;
    } else if (arg == "--verify-csv" && (value = next())) {
      flags->verify_csv.push_back(value);
    } else if (arg == "--threshold" && (value = next())) {
      flags->threshold = std::atof(value);
    } else if (arg == "--topk" && (value = next())) {
      flags->topk = std::atoi(value);
    } else if (arg == "--shards" && (value = next())) {
      flags->shards = std::atoi(value);
    } else if (arg == "--deadline-us" && (value = next())) {
      flags->deadline_us = static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--tile-size" && (value = next())) {
      flags->tile_size = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--bind" && (value = next())) {
      flags->bind = value;
    } else if (arg == "--port" && (value = next())) {
      flags->port = std::atoi(value);
    } else if (arg == "--port-file" && (value = next())) {
      flags->port_file = value;
    } else if (arg == "--reactors" && (value = next())) {
      flags->reactors = std::atoi(value);
    } else if (arg == "--dispatchers" && (value = next())) {
      flags->dispatchers = std::atoi(value);
    } else if (arg == "--batch-max" && (value = next())) {
      flags->batch_max = std::atoi(value);
    } else if (arg == "--linger-us" && (value = next())) {
      flags->linger_us = static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--max-pending" && (value = next())) {
      flags->max_pending = std::atoi(value);
    } else if (arg == "--max-in-flight" && (value = next())) {
      flags->max_in_flight = std::atoi(value);
    } else if (arg == "--partial") {
      flags->partial = true;
    } else if (arg == "--quarantine") {
      flags->quarantine = true;
    } else if (arg == "--mmap") {
      flags->mmap = true;
    } else if (arg == "--no-verify") {
      flags->verify = false;
    } else if (arg == "--no-madvise") {
      flags->madvise = false;
    } else if (arg == "--partitions" && (value = next())) {
      flags->partitions = std::atoi(value);
    } else if (arg == "--hashes" && (value = next())) {
      flags->num_hashes = std::atoi(value);
    } else if (arg == "--tree-depth" && (value = next())) {
      flags->tree_depth = std::atoi(value);
    } else if (arg == "--min-size" && (value = next())) {
      flags->min_domain_size = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--seed" && (value = next())) {
      flags->seed = static_cast<uint64_t>(std::atoll(value));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    } else {
      flags->positional.push_back(arg);
    }
  }
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Open the index image: LoadEnsemble() version-dispatches (a v2
/// snapshot already opens zero-copy); --mmap additionally *requires* the
/// mapped path, so pointing it at a v1 image is an explicit error
/// instead of a silent heap load. --no-verify / --no-madvise tune the
/// mapped serving open (io/snapshot.h SnapshotOpenOptions).
Result<LshEnsemble> OpenIndex(const Flags& flags) {
  if (flags.mmap) {
    SnapshotOpenOptions open_options;
    open_options.verify_checksums = flags.verify;
    open_options.apply_madvise = flags.madvise;
    return OpenEnsembleMapped(flags.index, open_options);
  }
  return LoadEnsemble(flags.index);
}

int RunIndex(const Flags& flags) {
  if (flags.out.empty() || flags.catalog.empty() || flags.positional.empty()) {
    Usage();
    return 2;
  }
  auto family_result =
      HashFamily::Create(flags.num_hashes, flags.seed);
  if (!family_result.ok()) return Fail(family_result.status());
  auto family = std::move(family_result).value();

  LshEnsembleOptions options;
  options.num_partitions = flags.partitions;
  options.num_hashes = flags.num_hashes;
  options.tree_depth = flags.tree_depth;
  LshEnsembleBuilder builder(options, family);
  Catalog catalog(family);

  ExtractOptions extract;
  extract.min_domain_size = flags.min_domain_size;
  const ParallelSketcher sketcher(family);
  uint64_t next_id = 1;
  StopWatch watch;
  for (const std::string& path : flags.positional) {
    auto table = ReadCsvFile(path);
    if (!table.ok()) return Fail(table.status());
    // Sketch the whole file's domains in one parallel, batch-kernel pass.
    const Corpus file_corpus(ExtractDomains(*table, next_id, extract));
    std::vector<MinHash> sketches = sketcher.SketchCorpus(file_corpus);
    for (size_t i = 0; i < file_corpus.size(); ++i) {
      const Domain& domain = file_corpus.domain(i);
      Status status = builder.Add(domain.id, domain.size(), sketches[i]);
      if (status.ok()) {
        status = catalog.Add(domain.id, domain.name, domain.size(),
                             std::move(sketches[i]));
      }
      if (!status.ok()) return Fail(status);
      next_id = std::max(next_id, domain.id + 1);
    }
    std::printf("%-40s %zu domains\n", table->name.c_str(),
                file_corpus.size());
  }
  if (builder.size() == 0) {
    std::fprintf(stderr, "no domains extracted (check --min-size)\n");
    return 1;
  }

  auto ensemble = std::move(builder).Build();
  if (!ensemble.ok()) return Fail(ensemble.status());
  Status status = SaveEnsemble(*ensemble, flags.out);
  if (status.ok()) status = catalog.Save(flags.catalog);
  if (!status.ok()) return Fail(status);
  std::printf(
      "indexed %zu domains into %zu partitions in %.2fs\n  index:   %s\n"
      "  catalog: %s\n",
      ensemble->size(), ensemble->partitions().size(),
      watch.ElapsedSeconds(), flags.out.c_str(), flags.catalog.c_str());
  return 0;
}

int RunQuery(const Flags& flags) {
  if (flags.index.empty() || flags.catalog.empty() ||
      flags.query_csv.empty() || flags.column.empty()) {
    Usage();
    return 2;
  }
  auto ensemble = OpenIndex(flags);
  if (!ensemble.ok()) return Fail(ensemble.status());
  auto catalog = Catalog::Load(flags.catalog);
  if (!catalog.ok()) return Fail(catalog.status());
  if (!catalog->family()->SameAs(*ensemble->family())) {
    return Fail(Status::InvalidArgument(
        "catalog and index were built with different hash families"));
  }

  auto table = ReadCsvFile(flags.query_csv);
  if (!table.ok()) return Fail(table.status());
  int column = -1;
  for (size_t c = 0; c < table->column_names.size(); ++c) {
    if (table->column_names[c] == flags.column) {
      column = static_cast<int>(c);
    }
  }
  if (column < 0) {
    return Fail(Status::NotFound("column '" + flags.column + "' not in " +
                                 table->name));
  }
  std::vector<std::string> cells;
  cells.reserve(table->num_rows());
  for (const auto& row : table->rows) {
    if (!IsNullToken(row[column])) cells.push_back(row[column]);
  }
  const Domain query = Domain::FromStrings(0, flags.column, cells);
  if (query.empty()) {
    return Fail(Status::InvalidArgument("query column has no values"));
  }
  const MinHash sketch =
      MinHash::FromValues(ensemble->family(), query.values);

  StopWatch watch;
  const uint64_t deadline_ns =
      flags.deadline_us > 0 ? DeadlineAfterMicros(flags.deadline_us) : 0;
  if (flags.topk > 0) {
    auto store = catalog->ToSketchStore();
    if (!store.ok()) return Fail(store.status());
    TopKSearcher searcher(&*ensemble, &*store);
    const TopKQuery topk_query{&sketch, query.size(), deadline_ns};
    std::vector<TopKResult> ranked;
    QueryContext ctx;
    Status status = searcher.BatchSearch(
        std::span<const TopKQuery>(&topk_query, 1),
        static_cast<size_t>(flags.topk), &ctx, &ranked);
    if (!status.ok()) return Fail(status);
    std::printf("top-%d containers of %s (|Q| = %zu, %.1f ms):\n",
                flags.topk, flags.column.c_str(), query.size(),
                watch.ElapsedSeconds() * 1e3);
    for (const TopKResult& result : ranked) {
      std::printf("  %6.3f  %s\n", result.estimated_containment,
                  catalog->NameOf(result.id).c_str());
    }
  } else {
    const QuerySpec spec{&sketch, query.size(), flags.threshold,
                         deadline_ns};
    std::vector<uint64_t> ids;
    QueryContext ctx;
    Status status = ensemble->BatchQuery(
        std::span<const QuerySpec>(&spec, 1), &ctx, &ids);
    if (!status.ok()) return Fail(status);
    std::printf(
        "domains containing >= %.2f of %s (|Q| = %zu, %zu results, "
        "%.1f ms):\n",
        flags.threshold, flags.column.c_str(), query.size(), ids.size(),
        watch.ElapsedSeconds() * 1e3);
    for (uint64_t id : ids) {
      std::printf("  %s\n", catalog->NameOf(id).c_str());
    }
  }
  return 0;
}

int RunBatchQuery(const Flags& flags) {
  if (flags.index.empty() || flags.catalog.empty() || flags.query_csv.empty()) {
    Usage();
    return 2;
  }
  auto ensemble = OpenIndex(flags);
  if (!ensemble.ok()) return Fail(ensemble.status());
  auto catalog = Catalog::Load(flags.catalog);
  if (!catalog.ok()) return Fail(catalog.status());
  if (!catalog->family()->SameAs(*ensemble->family())) {
    return Fail(Status::InvalidArgument(
        "catalog and index were built with different hash families"));
  }

  auto table = ReadCsvFile(flags.query_csv);
  if (!table.ok()) return Fail(table.status());
  ExtractOptions extract;
  extract.min_domain_size = flags.min_domain_size;
  std::vector<Domain> queries = ExtractDomains(*table, 1, extract);
  if (!flags.column.empty()) {
    std::erase_if(queries, [&](const Domain& domain) {
      return domain.name != flags.column;
    });
  }
  if (queries.empty()) {
    return Fail(Status::InvalidArgument(
        "no query columns extracted (check --column / --min-size)"));
  }

  const ParallelSketcher sketcher(ensemble->family());
  const Corpus query_corpus(std::move(queries));
  std::vector<MinHash> sketches = sketcher.SketchCorpus(query_corpus);
  const std::vector<Domain>& query_domains = query_corpus.domains();

  // Optional serving-layer overrides. --shards N rebuilds the catalog
  // into a sharded serving layer (hash-partitioned scatter/gather across
  // N independent dynamic shards); --delta FILE layers the file's columns
  // as unindexed delta domains on top of whichever engine serves — the
  // paper's dynamic-data scenario (Section 6.2). Both start from the
  // catalog's side-car (names, sizes, signatures).
  std::optional<DynamicLshEnsemble> dynamic;
  std::optional<ShardedEnsemble> sharded;
  std::unordered_map<uint64_t, std::string> delta_names;
  if (flags.shards > 0 || !flags.delta_csv.empty()) {
    if (flags.shards > 0) {
      ShardedEnsembleOptions sharded_options;
      sharded_options.base.base = ensemble->options();
      sharded_options.base.min_delta_for_rebuild =
          std::numeric_limits<size_t>::max();
      sharded_options.num_shards = static_cast<size_t>(flags.shards);
      auto built = ShardedEnsemble::Create(sharded_options, catalog->family());
      if (!built.ok()) return Fail(built.status());
      sharded.emplace(std::move(built).value());
    } else {
      DynamicEnsembleOptions dyn_options;
      dyn_options.base = ensemble->options();
      dyn_options.min_delta_for_rebuild = std::numeric_limits<size_t>::max();
      auto dyn = DynamicLshEnsemble::Create(dyn_options, catalog->family());
      if (!dyn.ok()) return Fail(dyn.status());
      dynamic.emplace(std::move(dyn).value());
    }
    auto insert = [&](uint64_t id, size_t size, const MinHash& signature) {
      return sharded.has_value() ? sharded->Insert(id, size, signature)
                                 : dynamic->Insert(id, size, signature);
    };
    uint64_t max_id = 0;
    for (const CatalogEntry& entry : catalog->entries()) {
      Status status = insert(entry.id, entry.size, entry.signature);
      if (!status.ok()) return Fail(status);
      max_id = std::max(max_id, entry.id);
    }
    Status status = sharded.has_value() ? sharded->Flush() : dynamic->Flush();
    if (!status.ok()) return Fail(status);
    if (!flags.delta_csv.empty()) {
      auto delta_table = ReadCsvFile(flags.delta_csv);
      if (!delta_table.ok()) return Fail(delta_table.status());
      const std::vector<Domain> delta_domains =
          ExtractDomains(*delta_table, max_id + 1, extract);
      if (delta_domains.empty()) {
        return Fail(Status::InvalidArgument(
            "no delta columns extracted from " + flags.delta_csv));
      }
      for (const Domain& domain : delta_domains) {
        status = sharded.has_value()
                     ? sharded->Insert(domain.id, domain.values)
                     : dynamic->Insert(domain.id, domain.values);
        if (!status.ok()) return Fail(status);
        delta_names.emplace(domain.id, domain.name);
      }
    }
    if (sharded.has_value()) {
      std::printf("sharded index: %d shards, %zu indexed + %zu delta "
                  "domains\n",
                  flags.shards, sharded->indexed_size(),
                  sharded->delta_size());
    } else {
      std::printf("dynamic index: %zu indexed + %zu delta domains\n",
                  dynamic->indexed_size(), dynamic->delta_size());
    }
  }
  auto name_of = [&](uint64_t id) -> const std::string& {
    const auto it = delta_names.find(id);
    return it != delta_names.end() ? it->second : catalog->NameOf(id);
  };

  if (flags.topk > 0) {
    // One lockstep BatchSearch ranks every query column.
    std::optional<SketchStore> store;
    std::optional<TopKSearcher> searcher;
    if (sharded.has_value()) {
      searcher.emplace(&*sharded);
    } else if (dynamic.has_value()) {
      searcher.emplace(&*dynamic);
    } else {
      auto built = catalog->ToSketchStore();
      if (!built.ok()) return Fail(built.status());
      store.emplace(std::move(built).value());
      searcher.emplace(&*ensemble, &*store);
    }
    const uint64_t deadline_ns =
        flags.deadline_us > 0 ? DeadlineAfterMicros(flags.deadline_us) : 0;
    std::vector<TopKQuery> topk_queries(query_domains.size());
    for (size_t i = 0; i < query_domains.size(); ++i) {
      topk_queries[i] =
          TopKQuery{&sketches[i], query_domains[i].size(), deadline_ns};
    }
    std::vector<std::vector<TopKResult>> outs(topk_queries.size());
    QueryContext ctx;
    StopWatch watch;
    Status status = searcher->BatchSearch(
        topk_queries, static_cast<size_t>(flags.topk), &ctx, outs.data());
    if (!status.ok()) return Fail(status);
    const double elapsed = watch.ElapsedSeconds();
    for (size_t i = 0; i < query_domains.size(); ++i) {
      std::printf("top-%d containers of %s (|Q| = %zu):\n", flags.topk,
                  query_domains[i].name.c_str(), query_domains[i].size());
      for (const TopKResult& result : outs[i]) {
        std::printf("  %6.3f  %s\n", result.estimated_containment,
                    name_of(result.id).c_str());
      }
    }
    std::printf("%zu top-%d queries in %.1f ms (%.0f queries/sec)\n",
                topk_queries.size(), flags.topk, elapsed * 1e3,
                static_cast<double>(topk_queries.size()) / elapsed);
    return 0;
  }

  const uint64_t deadline_ns =
      flags.deadline_us > 0 ? DeadlineAfterMicros(flags.deadline_us) : 0;
  std::vector<QuerySpec> specs(query_domains.size());
  for (size_t i = 0; i < query_domains.size(); ++i) {
    specs[i] = QuerySpec{&sketches[i], query_domains[i].size(),
                         flags.threshold, deadline_ns};
  }
  std::vector<std::vector<uint64_t>> outs(specs.size());

  QueryContext ctx;
  StopWatch watch;
  Status status =
      sharded.has_value() ? sharded->BatchQuery(specs, outs.data())
      : dynamic.has_value() ? dynamic->BatchQuery(specs, &ctx, outs.data())
                            : ensemble->BatchQuery(specs, &ctx, outs.data());
  if (!status.ok()) return Fail(status);
  const double elapsed = watch.ElapsedSeconds();

  size_t total = 0;
  for (size_t i = 0; i < query_domains.size(); ++i) {
    total += outs[i].size();
    std::printf("%s (|Q| = %zu): %zu domains containing >= %.2f\n",
                query_domains[i].name.c_str(), query_domains[i].size(),
                outs[i].size(),
                flags.threshold);
    constexpr size_t kMaxPrinted = 20;
    for (size_t j = 0; j < outs[i].size() && j < kMaxPrinted; ++j) {
      std::printf("  %s\n", name_of(outs[i][j]).c_str());
    }
    if (outs[i].size() > kMaxPrinted) {
      std::printf("  ... %zu more\n", outs[i].size() - kMaxPrinted);
    }
  }
  std::printf(
      "%zu queries, %zu candidates in %.1f ms (%.0f queries/sec)\n",
      specs.size(), total, elapsed * 1e3,
      static_cast<double>(specs.size()) / elapsed);
  return 0;
}

int RunSnapshot(const Flags& flags) {
  if (flags.index.empty() || flags.out.empty()) {
    Usage();
    return 2;
  }
  StopWatch watch;
  if (flags.shards > 0) {
    // Rebuild the catalog into an N-shard serving layer and write a
    // per-shard snapshot set: `--out` names the snapshot directory.
    if (flags.catalog.empty()) {
      std::fprintf(stderr, "snapshot --shards needs --catalog\n");
      return 2;
    }
    auto ensemble = LoadEnsemble(flags.index);
    if (!ensemble.ok()) return Fail(ensemble.status());
    auto catalog = Catalog::Load(flags.catalog);
    if (!catalog.ok()) return Fail(catalog.status());
    ShardedEnsembleOptions options;
    options.base.base = ensemble->options();
    options.base.min_delta_for_rebuild = std::numeric_limits<size_t>::max();
    options.num_shards = static_cast<size_t>(flags.shards);
    auto sharded = ShardedEnsemble::Create(options, catalog->family());
    if (!sharded.ok()) return Fail(sharded.status());
    for (const CatalogEntry& entry : catalog->entries()) {
      Status status = sharded->Insert(entry.id, entry.size, entry.signature);
      if (!status.ok()) return Fail(status);
    }
    Status status = sharded->Flush();
    if (status.ok()) status = sharded->SaveSnapshot(flags.out);
    if (!status.ok()) return Fail(status);
    std::printf(
        "wrote %d-shard v2 snapshot of %zu domains in %.2fs\n"
        "  dir: %s\n  open with: ShardedEnsemble::OpenSnapshot\n",
        flags.shards, sharded->size(), watch.ElapsedSeconds(),
        flags.out.c_str());
    return 0;
  }
  auto ensemble = LoadEnsemble(flags.index);
  if (!ensemble.ok()) return Fail(ensemble.status());
  Status status = WriteEnsembleSnapshot(*ensemble, flags.out);
  if (!status.ok()) return Fail(status);
  std::printf(
      "wrote v2 zero-copy snapshot of %zu domains in %.2fs\n"
      "  snapshot: %s\n  serve with: lshe query/batch-query --mmap\n",
      ensemble->size(), watch.ElapsedSeconds(), flags.out.c_str());
  return 0;
}

int RunStats(const Flags& flags) {
  if (flags.index.empty()) {
    Usage();
    return 2;
  }
  auto ensemble = OpenIndex(flags);
  if (!ensemble.ok()) return Fail(ensemble.status());
  std::printf("domains: %zu\n", ensemble->size());
  std::printf("hash functions: %d, tree depth: %d\n",
              ensemble->options().num_hashes,
              ensemble->options().tree_depth);
  std::printf("heap memory: %.2f MiB%s\n",
              static_cast<double>(ensemble->MemoryBytes()) / (1 << 20),
              flags.mmap ? " (arenas are mmap-served, not heap)" : "");
  if (const ProbeFilter* filter = ensemble->engine_probe_filter()) {
    uint64_t partition_blocks = 0;
    for (const ProbeFilter& pf : ensemble->partition_probe_filters()) {
      partition_blocks += pf.num_blocks();
    }
    std::printf(
        "probe filter: %llu engine + %llu partition blocks (32 B each, "
        "%s probe kernel)%s\n",
        static_cast<unsigned long long>(filter->num_blocks()),
        static_cast<unsigned long long>(partition_blocks),
        probe_filter_internal::ActiveBlockProbeName(),
        filter->is_view() ? ", mmap-served" : "");
  } else {
    std::printf("probe filter: none (built without or pre-filter image)\n");
  }
  std::printf("%-4s %12s %12s %10s\n", "#", "lower", "upper", "count");
  const auto& partitions = ensemble->partitions();
  for (size_t i = 0; i < partitions.size(); ++i) {
    std::printf("%-4zu %12llu %12llu %10zu\n", i,
                static_cast<unsigned long long>(partitions[i].lower),
                static_cast<unsigned long long>(partitions[i].upper),
                partitions[i].count);
  }
  if (!flags.catalog.empty()) {
    auto catalog = Catalog::Load(flags.catalog);
    if (!catalog.ok()) return Fail(catalog.status());
    std::printf("catalog entries: %zu\n", catalog->size());
  }
  return 0;
}

int RunVerify(const Flags& flags) {
  if (flags.positional.size() != 1) {
    Usage();
    return 2;
  }
  const std::string& path = flags.positional[0];
  Env* env = Env::Default();
  StopWatch watch;
  // A sharded snapshot directory is recognized by its MANIFEST; anything
  // else verifies as a single image file.
  const bool is_dir = env->FileExists(path + "/MANIFEST");
  auto report = is_dir ? VerifySnapshotDir(path, flags.quarantine)
                       : VerifySnapshotFile(path);
  if (!report.ok()) return Fail(report.status());
  if (report->sharded) {
    std::printf("OK: %zu-shard snapshot directory, every checksum passes "
                "(%.2fs)\n",
                report->shards_verified, watch.ElapsedSeconds());
  } else {
    std::printf("OK: v%u index image, every checksum passes (%.2fs)\n",
                report->format_version, watch.ElapsedSeconds());
  }
  if (!report->stray_files.empty()) {
    std::printf("%zu stray file(s) the manifest does not name%s:\n",
                report->stray_files.size(),
                report->strays_quarantined
                    ? " (moved to quarantine/)"
                    : " (re-run with --quarantine to move them aside)");
    for (const std::string& name : report->stray_files) {
      std::printf("  %s\n", name.c_str());
    }
  }
  return 0;
}

int RunCluster(const Flags& flags) {
  ClusterOptions options;
  options.threshold = flags.threshold;
  options.tile_size = flags.tile_size;
  if (Status status = options.Validate(); !status.ok()) return Fail(status);

  StopWatch watch;
  std::optional<ShardedEnsemble> index;
  if (flags.positional.size() == 1) {
    // Snapshot-directory form: adopt shard count and hash width from the
    // manifest (resharding on open is unsupported), open zero-copy.
    const std::string& dir = flags.positional[0];
    Result<ShardSnapshotManifest> manifest =
        ShardedEnsemble::ReadSnapshotManifest(dir);
    if (!manifest.ok()) return Fail(manifest.status());
    ShardedEnsembleOptions serving;
    serving.num_shards = static_cast<size_t>(manifest.value().num_shards);
    serving.base.base.num_hashes =
        static_cast<int>(manifest.value().num_hashes);
    serving.base.min_delta_for_rebuild = std::numeric_limits<size_t>::max();
    SnapshotOpenOptions open_options;
    open_options.verify_checksums = flags.verify;
    open_options.apply_madvise = flags.madvise;
    auto opened = ShardedEnsemble::OpenSnapshot(dir, serving, open_options);
    if (!opened.ok()) return Fail(opened.status());
    index.emplace(std::move(opened).value());
  } else if (!flags.index.empty() && !flags.catalog.empty()) {
    // Catalog form: rebuild the catalog into a serving layer like
    // batch-query --shards does, then self-join that.
    auto ensemble = LoadEnsemble(flags.index);
    if (!ensemble.ok()) return Fail(ensemble.status());
    auto catalog = Catalog::Load(flags.catalog);
    if (!catalog.ok()) return Fail(catalog.status());
    ShardedEnsembleOptions serving;
    serving.base.base = ensemble->options();
    serving.base.min_delta_for_rebuild = std::numeric_limits<size_t>::max();
    serving.num_shards = flags.shards > 0 ? static_cast<size_t>(flags.shards)
                                          : 1;
    auto built = ShardedEnsemble::Create(serving, catalog->family());
    if (!built.ok()) return Fail(built.status());
    index.emplace(std::move(built).value());
    for (const CatalogEntry& entry : catalog->entries()) {
      Status status = index->Insert(entry.id, entry.size, entry.signature);
      if (!status.ok()) return Fail(status);
    }
    if (Status status = index->Flush(); !status.ok()) return Fail(status);
  } else {
    Usage();
    return 2;
  }

  std::vector<ClusterRecord> records = CollectRecords(*index);
  // --verify-csv: re-extract the raw domains (same extraction pass as
  // `lshe index`, so ids line up) and attach one to every record; the
  // clusterer then drops candidate edges that fail exact containment.
  std::vector<Corpus> verify_corpora;
  if (!flags.verify_csv.empty()) {
    ExtractOptions extract;
    extract.min_domain_size = flags.min_domain_size;
    uint64_t next_id = 1;
    std::unordered_map<uint64_t, const Domain*> domains_by_id;
    for (const std::string& path : flags.verify_csv) {
      auto table = ReadCsvFile(path);
      if (!table.ok()) return Fail(table.status());
      verify_corpora.emplace_back(ExtractDomains(*table, next_id, extract));
      const Corpus& corpus = verify_corpora.back();
      for (size_t i = 0; i < corpus.size(); ++i) {
        const Domain& domain = corpus.domain(i);
        domains_by_id[domain.id] = &domain;
        next_id = std::max(next_id, domain.id + 1);
      }
    }
    for (ClusterRecord& record : records) {
      const auto it = domains_by_id.find(record.id);
      if (it == domains_by_id.end()) {
        return Fail(Status::InvalidArgument(
            "--verify-csv: indexed domain id " + std::to_string(record.id) +
            " has no re-extracted domain; pass the same CSVs (same order "
            "and --min-size) the index was built from"));
      }
      record.domain = it->second;
    }
    options.verify_exact = true;
  }
  const NearDupClusterer clusterer(options);
  ClusterStats stats;
  auto result = clusterer.Cluster(*index, records, &stats);
  if (!result.ok()) return Fail(result.status());
  const double elapsed = watch.ElapsedSeconds();

  std::FILE* out = stdout;
  if (!flags.out.empty()) {
    out = std::fopen(flags.out.c_str(), "w");
    if (out == nullptr) {
      return Fail(Status::IOError("cannot write " + flags.out));
    }
  }
  for (size_t i = 0; i < result->ids.size(); ++i) {
    std::fprintf(out, "%llu\t%llu\n",
                 static_cast<unsigned long long>(result->ids[i]),
                 static_cast<unsigned long long>(result->roots[i]));
  }
  if (out != stdout && std::fclose(out) != 0) {
    return Fail(Status::IOError("failed writing " + flags.out));
  }
  std::fprintf(
      stderr,
      "clustered %zu domains at t*=%.2f into %zu clusters "
      "(%zu duplicate groups covering %zu domains; %zu tiles, "
      "%zu candidate pairs, %.2fs, %.0f domains/sec)\n",
      stats.num_records, options.threshold, stats.num_clusters,
      stats.num_duplicate_groups, stats.num_duplicated_records,
      stats.num_tiles, stats.unique_pairs, elapsed,
      elapsed > 0 ? static_cast<double>(stats.num_records) / elapsed : 0.0);
  if (options.verify_exact) {
    std::fprintf(stderr,
                 "exact verification rejected %zu of %zu candidate pairs\n",
                 stats.verified_rejected, stats.unique_pairs);
  }
  return 0;
}

std::atomic<bool> g_serve_stop{false};

void HandleStopSignal(int) { g_serve_stop.store(true); }

int RunServe(const Flags& flags) {
  if (flags.positional.size() != 1) {
    Usage();
    return 2;
  }
  const std::string& dir = flags.positional[0];
  // Serve what's on disk: shard count and hash width are properties of
  // the snapshot (resharding on open is not supported), so adopt them
  // from the manifest instead of asking the operator to repeat them.
  Result<ShardSnapshotManifest> manifest =
      ShardedEnsemble::ReadSnapshotManifest(dir);
  if (!manifest.ok()) return Fail(manifest.status());
  // The manager owns generation lifetime: Acquire() per dispatch wave,
  // SwapTo() on reload requests. Engine-level degradation knobs come
  // from the serve flags so the server and engine agree.
  SnapshotManager::Options manager_options;
  manager_options.serving.num_shards =
      static_cast<size_t>(manifest.value().num_shards);
  manager_options.serving.base.base.num_hashes =
      static_cast<int>(manifest.value().num_hashes);
  manager_options.serving.max_in_flight_batches =
      flags.max_in_flight > 0 ? static_cast<size_t>(flags.max_in_flight) : 0;
  manager_options.serving.partial_results = flags.partial;
  manager_options.open.verify_checksums = flags.verify;
  manager_options.open.apply_madvise = flags.madvise;
  auto manager = std::make_shared<SnapshotManager>(manager_options);
  Status status = manager->Open(dir);
  if (!status.ok()) return Fail(status);

  serve::ServerOptions options;
  options.bind_address = flags.bind;
  options.port = static_cast<uint16_t>(flags.port);
  options.num_reactors = flags.reactors;
  options.num_dispatchers = flags.dispatchers;
  options.batch_max = static_cast<size_t>(flags.batch_max);
  options.batch_linger_us = flags.linger_us;
  options.max_pending = static_cast<size_t>(flags.max_pending);
  options.default_deadline_us = flags.deadline_us;
  options.partial_results = flags.partial;

  serve::Server::Hooks hooks;
  hooks.reload = [manager, dir]() -> Result<uint64_t> {
    LSHE_RETURN_IF_ERROR(manager->SwapTo(dir));
    return manager->epoch();
  };
  hooks.epoch = [manager] { return manager->epoch(); };
  hooks.extra_metrics = [manager](std::string* out) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "# HELP lshe_serve_retired_generations Displaced "
                  "generations still pinned by readers\n"
                  "# TYPE lshe_serve_retired_generations gauge\n"
                  "lshe_serve_retired_generations %zu\n",
                  manager->retired_count());
    out->append(line);
  };

  auto server = serve::Server::Start(
      options, [manager] { return manager->Acquire(); }, std::move(hooks));
  if (!server.ok()) return Fail(server.status());

  if (!flags.port_file.empty()) {
    std::FILE* f = std::fopen(flags.port_file.c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::IOError("cannot write port file: " +
                                  flags.port_file));
    }
    std::fprintf(f, "%u\n", server.value()->port());
    std::fclose(f);
  }
  std::printf("serving %s on %s:%u (epoch %llu)\n", dir.c_str(),
              flags.bind.c_str(), server.value()->port(),
              static_cast<unsigned long long>(manager->epoch()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down\n");
  server.value()->Stop();
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "index") return RunIndex(flags);
  if (command == "query") return RunQuery(flags);
  if (command == "batch-query") return RunBatchQuery(flags);
  if (command == "snapshot") return RunSnapshot(flags);
  if (command == "stats") return RunStats(flags);
  if (command == "verify") return RunVerify(flags);
  if (command == "cluster") return RunCluster(flags);
  if (command == "serve") return RunServe(flags);
  Usage();
  return 2;
}

}  // namespace
}  // namespace lshensemble

int main(int argc, char** argv) { return lshensemble::Main(argc, argv); }
