#!/usr/bin/env python3
"""Gate line coverage of the core engine against a checked-in floor.

Parses an lcov tracefile (the `.info` produced by `lcov --capture`) without
needing lcov itself, restricts it to the files whose path contains
`--path` (default: src/core), and fails when the aggregate line coverage
drops below `--floor` percent.

The floor is a ratchet, not a target: it is set a few points below the
measured coverage so incidental drift passes but a PR that lands
substantial untested core code fails. Raise it in the PR that raises
coverage.

Tracefile records look like:

  SF:/abs/or/rel/path/to/file.cc
  DA:<line>,<execution count>
  LF:<lines instrumented>      (optional; derived from DA: when absent)
  LH:<lines hit>               (optional; derived from DA: when absent)
  end_of_record

Exit status: 0 when coverage >= floor, 1 on a miss or unreadable/empty
input.

Typical CI usage:
  python3 tools/coverage_gate.py --tracefile coverage.info \
      --path src/core --floor 85
"""

import argparse
import sys


def parse_tracefile(path):
    """Returns {source_file: (lines_hit, lines_found)}."""
    per_file = {}
    current = None
    da_found = 0
    da_hit = 0
    lf = lh = None

    def flush():
        nonlocal current, da_found, da_hit, lf, lh
        if current is not None:
            found = lf if lf is not None else da_found
            hit = lh if lh is not None else da_hit
            prev_hit, prev_found = per_file.get(current, (0, 0))
            per_file[current] = (prev_hit + hit, prev_found + found)
        current = None
        da_found = da_hit = 0
        lf = lh = None

    try:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line.startswith("SF:"):
                    flush()
                    current = line[len("SF:"):]
                elif line.startswith("DA:"):
                    da_found += 1
                    parts = line[len("DA:"):].split(",")
                    # Hit only on a positive count: gcov mismatches can
                    # leave negative counts in the tracefile (CI captures
                    # with --ignore-errors negative), and those must not
                    # inflate coverage against the floor.
                    try:
                        count = int(parts[1]) if len(parts) >= 2 else 0
                    except ValueError:
                        count = 0
                    if count > 0:
                        da_hit += 1
                elif line.startswith("LF:"):
                    lf = int(line[len("LF:"):])
                elif line.startswith("LH:"):
                    lh = int(line[len("LH:"):])
                elif line == "end_of_record":
                    flush()
    except OSError as error:
        sys.exit(f"coverage_gate: cannot read {path}: {error}")
    flush()
    return per_file


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tracefile", required=True,
                        help="lcov .info tracefile")
    parser.add_argument("--path", default="src/core",
                        help="gate files whose path contains this substring "
                             "(default: src/core)")
    parser.add_argument("--floor", type=float, default=85.0,
                        help="minimum line coverage percent (default: 85)")
    args = parser.parse_args()

    per_file = parse_tracefile(args.tracefile)
    gated = {f: c for f, c in per_file.items() if args.path in f}
    if not gated:
        sys.exit(f"coverage_gate: no file matching '{args.path}' in "
                 f"{args.tracefile}")

    total_hit = total_found = 0
    print(f"coverage_gate: line coverage over '{args.path}' "
          f"(floor {args.floor:.1f}%)")
    for source, (hit, found) in sorted(gated.items()):
        pct = 100.0 * hit / found if found else 100.0
        print(f"  {source:60s} {hit:6d}/{found:<6d} {pct:6.1f}%")
        total_hit += hit
        total_found += found
    if total_found == 0:
        sys.exit("coverage_gate: matched files contain no instrumented lines")

    total_pct = 100.0 * total_hit / total_found
    if total_pct < args.floor:
        print(f"coverage_gate: FAIL — {total_pct:.1f}% < floor "
              f"{args.floor:.1f}% ({total_hit}/{total_found} lines)",
              file=sys.stderr)
        return 1
    print(f"coverage_gate: PASS — {total_pct:.1f}% >= floor "
          f"{args.floor:.1f}% ({total_hit}/{total_found} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
