// cluster_eval — planted-duplicates harness for `lshe cluster`.
//
//   cluster_eval emit-csv --out corpus.csv [corpus flags]
//   cluster_eval eval --clusters clusters.tsv [--threshold T]
//                [--min-precision P] [--min-recall R] [--first-id N]
//                [corpus flags]
//
// `emit-csv` writes the deterministic planted-duplicates corpus
// (workload/generator.h) as one CSV whose COLUMNS are the domains (cell
// token "v<value>"), so `lshe index` ingests it through the exact
// production path — CSV parse, null-token drop, string hashing — and
// assigns domain ids consecutively from 1 in column order.
//
// `eval` regenerates the identical corpus, re-derives each domain's
// string-hashed value set (ids first-id + column, matching the index's
// assignment), reads the id→root TSV `lshe cluster` wrote, and scores
// pair-level precision/recall against exact ground truth
// (cluster/eval.h). With --min-precision/--min-recall it exits non-zero
// below either floor — the CI cluster-smoke gate.
//
// Corpus flags (same defaults in both modes; the two invocations must
// pass identical values): --groups, --group-size, --mother-size,
// --min-fraction, --background, --background-min, --background-max,
// --seed.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/clusterer.h"
#include "cluster/eval.h"
#include "data/corpus.h"
#include "data/domain.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

struct Options {
  PlantedDuplicatesOptions corpus;
  std::string out;
  std::string clusters;
  double threshold = 0.9;
  double min_precision = -1.0;  // < 0: no floor
  double min_recall = -1.0;
  uint64_t first_id = 1;
};

void Usage() {
  std::fprintf(stderr, R"(usage:
  cluster_eval emit-csv --out FILE [corpus flags]
  cluster_eval eval --clusters TSV [--threshold T] [--min-precision P]
               [--min-recall R] [--first-id N] [corpus flags]

corpus flags: --groups N --group-size N --mother-size N --min-fraction F
              --background N --background-min N --background-max N --seed S
)");
}

bool ParseFlags(int argc, char** argv, Options* options) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--out" && (value = next())) {
      options->out = value;
    } else if (arg == "--clusters" && (value = next())) {
      options->clusters = value;
    } else if (arg == "--threshold" && (value = next())) {
      options->threshold = std::atof(value);
    } else if (arg == "--min-precision" && (value = next())) {
      options->min_precision = std::atof(value);
    } else if (arg == "--min-recall" && (value = next())) {
      options->min_recall = std::atof(value);
    } else if (arg == "--first-id" && (value = next())) {
      options->first_id = static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--groups" && (value = next())) {
      options->corpus.num_groups = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--group-size" && (value = next())) {
      options->corpus.group_size = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--mother-size" && (value = next())) {
      options->corpus.mother_size = static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--min-fraction" && (value = next())) {
      options->corpus.min_fraction = std::atof(value);
    } else if (arg == "--background" && (value = next())) {
      options->corpus.num_background = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--background-min" && (value = next())) {
      options->corpus.background_min_size =
          static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--background-max" && (value = next())) {
      options->corpus.background_max_size =
          static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--seed" && (value = next())) {
      options->corpus.seed = static_cast<uint64_t>(std::atoll(value));
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// The string token `lshe index` will hash for a corpus value.
std::string Token(uint64_t value) { return "v" + std::to_string(value); }

int RunEmitCsv(const Options& options) {
  if (options.out.empty()) {
    Usage();
    return 2;
  }
  auto corpus = PlantedDuplicatesCorpus(options.corpus);
  if (!corpus.ok()) return Fail(corpus.status());

  std::FILE* out = std::fopen(options.out.c_str(), "w");
  if (out == nullptr) {
    return Fail(Status::IOError("cannot write " + options.out));
  }
  // Columns = domains; short columns pad with empty (null-token) cells,
  // which extraction drops.
  size_t max_rows = 0;
  for (const Domain& domain : corpus->domains()) {
    max_rows = std::max(max_rows, domain.size());
  }
  for (size_t c = 0; c < corpus->size(); ++c) {
    std::fprintf(out, "%s%s", c > 0 ? "," : "",
                 corpus->domain(c).name.c_str());
  }
  std::fputc('\n', out);
  for (size_t r = 0; r < max_rows; ++r) {
    for (size_t c = 0; c < corpus->size(); ++c) {
      const Domain& domain = corpus->domain(c);
      if (c > 0) std::fputc(',', out);
      if (r < domain.size()) {
        std::fputs(Token(domain.values[r]).c_str(), out);
      }
    }
    std::fputc('\n', out);
  }
  if (std::fclose(out) != 0) {
    return Fail(Status::IOError("failed writing " + options.out));
  }
  std::printf("wrote %zu domains (%zu planted groups x %zu + %zu background) "
              "as CSV columns: %s\n",
              corpus->size(), options.corpus.num_groups,
              options.corpus.group_size, options.corpus.num_background,
              options.out.c_str());
  return 0;
}

int RunEval(const Options& options) {
  if (options.clusters.empty()) {
    Usage();
    return 2;
  }
  auto generated = PlantedDuplicatesCorpus(options.corpus);
  if (!generated.ok()) return Fail(generated.status());

  // Re-derive what the index actually clustered: the same domains after
  // the CSV round trip, i.e. string-hashed values under the ids `lshe
  // index` assigned (first-id + column order). Hashing is injective for
  // any realistic corpus, so exact containments are unchanged.
  std::vector<Domain> hashed(generated->size());
  for (size_t i = 0; i < generated->size(); ++i) {
    const Domain& domain = generated->domain(i);
    std::vector<std::string> tokens;
    tokens.reserve(domain.size());
    for (uint64_t value : domain.values) tokens.push_back(Token(value));
    hashed[i] = Domain::FromStrings(options.first_id + i, domain.name, tokens);
  }
  const Corpus corpus(std::move(hashed));

  ClusterResult clusters;
  std::FILE* in = std::fopen(options.clusters.c_str(), "r");
  if (in == nullptr) {
    return Fail(Status::IOError("cannot read " + options.clusters));
  }
  unsigned long long id = 0, root = 0;
  while (std::fscanf(in, "%llu\t%llu", &id, &root) == 2) {
    clusters.ids.push_back(id);
    clusters.roots.push_back(root);
  }
  std::fclose(in);
  if (clusters.ids.empty()) {
    return Fail(Status::InvalidArgument(options.clusters +
                                        " holds no id<TAB>root lines"));
  }

  auto accuracy = EvaluatePairAccuracy(corpus, clusters, options.threshold);
  if (!accuracy.ok()) return Fail(accuracy.status());
  std::printf(
      "{\"domains\": %zu, \"threshold\": %.3f, \"truth_pairs\": %zu, "
      "\"predicted_pairs\": %zu, \"hit_pairs\": %zu, \"precision\": %.4f, "
      "\"recall\": %.4f}\n",
      corpus.size(), options.threshold, accuracy->truth_pairs,
      accuracy->predicted_pairs, accuracy->hit_pairs, accuracy->precision,
      accuracy->recall);
  bool ok = true;
  if (options.min_precision >= 0.0 &&
      accuracy->precision < options.min_precision) {
    std::fprintf(stderr, "FAIL: precision %.4f below floor %.4f\n",
                 accuracy->precision, options.min_precision);
    ok = false;
  }
  if (options.min_recall >= 0.0 && accuracy->recall < options.min_recall) {
    std::fprintf(stderr, "FAIL: recall %.4f below floor %.4f\n",
                 accuracy->recall, options.min_recall);
    ok = false;
  }
  return ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  Options options;
  if (!ParseFlags(argc, argv, &options)) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "emit-csv") return RunEmitCsv(options);
  if (command == "eval") return RunEval(options);
  Usage();
  return 2;
}

}  // namespace
}  // namespace lshensemble

int main(int argc, char** argv) { return lshensemble::Main(argc, argv); }
