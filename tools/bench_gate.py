#!/usr/bin/env python3
"""Gate bench results against checked-in baselines.

Compares the rows of a fresh `--json` bench run (e.g. BENCH_throughput.json)
against a baseline file committed under bench/baselines/, matching rows by
identity keys (default: mode + batch_size) and failing on a throughput
regression beyond the allowed fraction.

Two comparison modes:

  * relative (default): each file's metric is normalized by the geometric
    mean of the metric over the matched (gated) rows before comparing.
    A machine-speed factor multiplies every row equally, so it cancels
    exactly — the gate then checks the *structure* of the results (batch
    speedup over single-query, dynamic cost over static), which transfers
    across runners of different speeds. Using the geomean rather than one
    designated reference row keeps a single noisy row from poisoning
    every comparison.
  * absolute: raw metric values are compared. Use when baseline and
    candidate come from the same machine (perf-trajectory tracking).

`--min-batch N` restricts gating to rows with batch_size >= N: per-query
rows (batch_size 1) are dominated by thread-pool wakeup noise on small
runners, while the batched rows are stable — CI gates with --min-batch 2.
Ungated rows are still printed for the log.

Row-set drift is asymmetric by design:

  * Added rows (candidate rows with no baseline match) are informational:
    a PR that introduces a bench mode should not fail until the baseline
    is refreshed — but the refresh belongs in the same PR, and the gate
    says so.
  * Removed rows (baseline rows with no candidate match) are an explicit
    error: a silently vanished row usually means a renamed mode or a
    crashed bench section, and letting it pass would hollow the gate out
    one row at a time.

Exit status: 0 when every gated row passes and no baseline row went
missing; 1 on any regression, removed row, or missing/empty input.

Typical CI usage:
  python3 tools/bench_gate.py \
      --baseline bench/baselines/BENCH_throughput.json \
      --candidate BENCH_throughput.json --min-batch 2
"""

import argparse
import json
import math
import sys


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"bench_gate: cannot read {path}: {error}")
    rows = payload.get("rows", [])
    if not rows:
        sys.exit(f"bench_gate: {path} contains no rows")
    return payload.get("bench", "?"), rows


def row_key(row, keys):
    return tuple(str(row.get(k)) for k in keys)


def batch_size(row):
    try:
        return int(float(row.get("batch_size", 0)))
    except (TypeError, ValueError):
        return 0


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON (bench/baselines/...)")
    parser.add_argument("--candidate", required=True,
                        help="fresh bench --json output")
    parser.add_argument("--metric", default="qps",
                        help="row field to gate on (default: qps)")
    parser.add_argument("--keys", default="mode,batch_size,shards",
                        help="comma-separated identity fields (default: "
                             "mode,batch_size,shards; absent fields "
                             "compare equal, so rows without a shards "
                             "field still match)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop (default: 0.25)")
    parser.add_argument("--mode", choices=["relative", "absolute"],
                        default="relative",
                        help="normalize by the gated rows' geometric mean "
                             "(relative, default) or compare raw values")
    parser.add_argument("--min-batch", type=int, default=1,
                        help="gate only rows with batch_size >= N "
                             "(default: 1 = all rows)")
    args = parser.parse_args()

    keys = [k.strip() for k in args.keys.split(",") if k.strip()]
    base_name, base_rows = load_rows(args.baseline)
    cand_name, cand_rows = load_rows(args.candidate)
    if base_name != cand_name:
        sys.exit(f"bench_gate: bench name mismatch: baseline is "
                 f"'{base_name}', candidate is '{cand_name}'")

    baseline_by_key = {row_key(r, keys): r for r in base_rows}

    # The gated set: candidate rows that match a baseline row, carry the
    # metric, and clear the batch-size floor.
    gated, skipped, new_rows = [], [], []
    seen_keys = set()
    for row in cand_rows:
        if args.metric not in row:
            continue
        key = row_key(row, keys)
        seen_keys.add(key)
        base = baseline_by_key.get(key)
        if base is None or args.metric not in base:
            new_rows.append(key)
            continue
        entry = (key, float(base[args.metric]), float(row[args.metric]))
        if batch_size(row) >= args.min_batch:
            gated.append(entry)
        else:
            skipped.append(entry)
    # Baseline rows the candidate no longer produces: an explicit error
    # (renamed mode, crashed bench section, or a baseline that needs
    # refreshing) — never a silent pass.
    removed_rows = [key for key, base in baseline_by_key.items()
                    if args.metric in base and key not in seen_keys]
    if not gated:
        sys.exit("bench_gate: no candidate row matched the baseline "
                 "(after --min-batch filtering)")

    base_norm = cand_norm = 1.0
    if args.mode == "relative":
        base_norm = geomean([b for _, b, _ in gated])
        cand_norm = geomean([c for _, _, c in gated])

    print(f"bench_gate: '{cand_name}' | metric={args.metric} "
          f"mode={args.mode} max-regression={args.max_regression:.0%} "
          f"min-batch={args.min_batch}")
    failures = []
    for key, base_value, cand_value in gated:
        normalized_base = base_value / base_norm
        normalized_cand = cand_value / cand_norm
        ratio = (normalized_cand / normalized_base if normalized_base
                 else float("inf"))
        verdict = "ok"
        if ratio < 1.0 - args.max_regression:
            verdict = "REGRESSION"
            failures.append(key)
        print(f"  {'/'.join(key):24s} baseline={normalized_base:10.3f} "
              f"candidate={normalized_cand:10.3f} ratio={ratio:5.2f}  "
              f"{verdict}")
    for key, base_value, cand_value in skipped:
        ratio = cand_value / base_value if base_value else float("inf")
        print(f"  {'/'.join(key):24s} raw ratio={ratio:5.2f}  "
              f"(below --min-batch, not gated)")
    for key in new_rows:
        print(f"  {'/'.join(key):24s} (new row, no baseline — informational; "
              f"refresh bench/baselines/ in this PR)")
    for key in removed_rows:
        print(f"  {'/'.join(key):24s} (REMOVED: present in the baseline, "
              f"missing from the candidate)", file=sys.stderr)

    if failures:
        print(f"bench_gate: FAIL — {len(failures)}/{len(gated)} gated rows "
              f"regressed more than {args.max_regression:.0%}",
              file=sys.stderr)
        return 1
    if removed_rows:
        print(f"bench_gate: FAIL — {len(removed_rows)} baseline row(s) "
              f"missing from the candidate. If the removal is intentional, "
              f"refresh bench/baselines/ in this PR; otherwise a bench "
              f"section stopped reporting.", file=sys.stderr)
        return 1
    print(f"bench_gate: PASS — {len(gated)} gated rows within "
          f"{args.max_regression:.0%} of baseline"
          + (f", {len(new_rows)} new" if new_rows else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
