#!/usr/bin/env python3
"""Unit tests for tools/coverage_gate.py.

Feeds hand-written lcov tracefiles through the gate as a subprocess: floor
pass/fail verdicts, LF/LH vs DA-derived counting, path filtering, and the
empty-match error.

Run directly or via ctest (registered as CoverageGateTest.Python).
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GATE = os.path.join(REPO_ROOT, "tools", "coverage_gate.py")


def run_gate(tracefile, *extra):
    return subprocess.run(
        [sys.executable, GATE, "--tracefile", tracefile, *extra],
        capture_output=True, text=True, check=False)


class CoverageGateTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.tracefile = os.path.join(self.dir.name, "coverage.info")

    def tearDown(self):
        self.dir.cleanup()

    def write(self, text):
        with open(self.tracefile, "w", encoding="utf-8") as f:
            f.write(text)

    def test_pass_above_floor(self):
        # 9 of 10 lines hit = 90%.
        self.write("SF:/repo/src/core/lsh_ensemble.cc\n"
                   + "".join(f"DA:{i},1\n" for i in range(1, 10))
                   + "DA:10,0\n"
                   + "LF:10\nLH:9\nend_of_record\n")
        result = run_gate(self.tracefile, "--floor", "85")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("PASS", result.stdout)
        self.assertIn("90.0%", result.stdout)

    def test_fail_below_floor(self):
        self.write("SF:/repo/src/core/topk.cc\n"
                   "DA:1,1\nDA:2,0\nDA:3,0\nDA:4,0\n"
                   "LF:4\nLH:1\nend_of_record\n")
        result = run_gate(self.tracefile, "--floor", "85")
        self.assertEqual(result.returncode, 1)
        self.assertIn("FAIL", result.stderr)

    def test_da_lines_used_when_summary_absent(self):
        self.write("SF:/repo/src/core/partitioner.cc\n"
                   "DA:1,5\nDA:2,0\nend_of_record\n")
        result = run_gate(self.tracefile, "--floor", "40")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("50.0%", result.stdout)

    def test_negative_counts_are_not_hits(self):
        # gcov mismatches can leave negative counts (CI captures with
        # --ignore-errors negative); they must not inflate coverage.
        self.write("SF:/repo/src/core/partitioner.cc\n"
                   "DA:1,1\nDA:2,-1\nDA:3,-5\nDA:4,0\nend_of_record\n")
        result = run_gate(self.tracefile, "--floor", "50")
        self.assertEqual(result.returncode, 1)
        self.assertIn("25.0%", result.stdout)

    def test_path_filter_excludes_other_directories(self):
        # The uncovered util file must not drag src/core below the floor.
        self.write("SF:/repo/src/core/tuning.cc\n"
                   "DA:1,1\nDA:2,1\nLF:2\nLH:2\nend_of_record\n"
                   "SF:/repo/src/util/status.cc\n"
                   "DA:1,0\nDA:2,0\nLF:2\nLH:0\nend_of_record\n")
        result = run_gate(self.tracefile, "--path", "src/core",
                          "--floor", "95")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertNotIn("util", result.stdout)

    def test_no_matching_files_is_an_error(self):
        self.write("SF:/repo/src/util/status.cc\n"
                   "DA:1,1\nLF:1\nLH:1\nend_of_record\n")
        result = run_gate(self.tracefile, "--path", "src/core")
        self.assertNotEqual(result.returncode, 0)

    def test_unreadable_tracefile_is_an_error(self):
        result = run_gate(os.path.join(self.dir.name, "missing.info"))
        self.assertNotEqual(result.returncode, 0)


if __name__ == "__main__":
    unittest.main()
