#include "core/lsh_ensemble.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "data/corpus.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "util/random.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

std::shared_ptr<const HashFamily> Family(int m = 256, uint64_t seed = 4) {
  return HashFamily::Create(m, seed).value();
}

Corpus SmallCorpus(size_t num_domains = 2000, uint64_t seed = 5) {
  CorpusGenOptions options;
  options.num_domains = num_domains;
  options.min_size = 10;
  options.max_size = 5000;
  options.seed = seed;
  return CorpusGenerator(options).Generate().value();
}

Result<LshEnsemble> BuildEnsemble(const Corpus& corpus,
                                  LshEnsembleOptions options,
                                  std::shared_ptr<const HashFamily> family) {
  LshEnsembleBuilder builder(options, family);
  for (const Domain& domain : corpus.domains()) {
    auto sketch = MinHash::FromValues(family, domain.values);
    LSHE_RETURN_IF_ERROR(builder.Add(domain.id, domain.size(), sketch));
  }
  return std::move(builder).Build();
}

TEST(LshEnsembleOptionsTest, Validation) {
  LshEnsembleOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_partitions = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = LshEnsembleOptions();
  options.tree_depth = 7;  // does not divide 256
  EXPECT_FALSE(options.Validate().ok());
  options = LshEnsembleOptions();
  options.integration_nodes = 2;
  EXPECT_FALSE(options.Validate().ok());
  options = LshEnsembleOptions();
  options.interpolation_lambda = 2.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(LshEnsembleOptionsTest, PinnedPartitionValidation) {
  LshEnsembleOptions options;
  options.pinned_partitions = {{10, 100, 0}, {100, 500, 0}};
  EXPECT_TRUE(options.Validate().ok());
  options.pinned_partitions = {{10, 10, 0}};  // empty interval
  EXPECT_FALSE(options.Validate().ok());
  options.pinned_partitions = {{10, 100, 0}, {50, 500, 0}};  // overlap
  EXPECT_FALSE(options.Validate().ok());
  options.pinned_partitions = {{100, 500, 0}, {10, 100, 0}};  // descending
  EXPECT_FALSE(options.Validate().ok());
}

TEST(LshEnsembleTest, ComputePartitionsHonorsPinnedBoundaries) {
  const std::vector<uint64_t> sizes = {2, 3, 5, 8, 13, 21, 34};
  LshEnsembleOptions options;
  options.pinned_partitions = {{1, 8, 0}, {8, 35, 0}};
  auto specs = ComputePartitions(sizes, options);
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].count, 3u);  // 2, 3, 5
  EXPECT_EQ((*specs)[1].count, 4u);  // 8, 13, 21, 34

  // Intervals that miss a size must fail, not silently drop domains.
  options.pinned_partitions = {{1, 8, 0}, {8, 34, 0}};  // 34 uncovered
  EXPECT_FALSE(ComputePartitions(sizes, options).ok());

  // Without pinning, the configured strategy is in charge.
  options.pinned_partitions.clear();
  options.num_partitions = 3;
  auto derived = ComputePartitions(sizes, options);
  ASSERT_TRUE(derived.ok());
  size_t covered = 0;
  for (const PartitionSpec& spec : *derived) covered += spec.count;
  EXPECT_EQ(covered, sizes.size());
}

TEST(LshEnsembleTest, PinnedBuildMatchesDerivedBuild) {
  const Corpus corpus = SmallCorpus(400);
  auto family = Family(128);
  LshEnsembleOptions options;
  options.num_partitions = 4;
  options.num_hashes = 128;
  auto derived = BuildEnsemble(corpus, options, family);
  ASSERT_TRUE(derived.ok());

  // Pinning the exact boundaries the strategy derived must reproduce the
  // same partitions and the same candidates.
  LshEnsembleOptions pinned_options = options;
  pinned_options.pinned_partitions = derived->partitions();
  auto pinned = BuildEnsemble(corpus, pinned_options, family);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->partitions(), derived->partitions());

  for (size_t i = 0; i < 10; ++i) {
    const Domain& domain = corpus.domain(i * 31 % corpus.size());
    const MinHash sketch = MinHash::FromValues(family, domain.values);
    std::vector<uint64_t> expected, actual;
    ASSERT_TRUE(derived->Query(sketch, domain.size(), 0.5, &expected).ok());
    ASSERT_TRUE(pinned->Query(sketch, domain.size(), 0.5, &actual).ok());
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(LshEnsembleBuilderTest, RejectsBadAdds) {
  auto family = Family();
  LshEnsembleBuilder builder(LshEnsembleOptions{}, family);
  auto sketch = MinHash::FromValues(family, std::vector<uint64_t>{1, 2});
  EXPECT_FALSE(builder.Add(1, 0, sketch).ok());  // zero size
  EXPECT_FALSE(builder.Add(1, 2, MinHash()).ok());  // invalid sketch
  auto other_family_sketch =
      MinHash::FromValues(Family(256, 999), std::vector<uint64_t>{1});
  EXPECT_FALSE(builder.Add(1, 1, other_family_sketch).ok());
  EXPECT_TRUE(builder.Add(1, 2, sketch).ok());
  EXPECT_EQ(builder.size(), 1u);
}

TEST(LshEnsembleBuilderTest, EmptyBuildFails) {
  LshEnsembleBuilder builder(LshEnsembleOptions{}, Family());
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(LshEnsembleBuilderTest, MismatchedFamilySizeFails) {
  auto family = Family(128);  // options default num_hashes = 256
  LshEnsembleBuilder builder(LshEnsembleOptions{}, family);
  auto sketch = MinHash::FromValues(family, std::vector<uint64_t>{1});
  ASSERT_TRUE(builder.Add(1, 1, sketch).ok());
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(LshEnsembleTest, PartitionsCoverCorpusAndAreOrdered) {
  const Corpus corpus = SmallCorpus();
  auto family = Family();
  LshEnsembleOptions options;
  options.num_partitions = 8;
  auto ensemble = BuildEnsemble(corpus, options, family);
  ASSERT_TRUE(ensemble.ok());
  EXPECT_EQ(ensemble->size(), corpus.size());
  size_t total = 0;
  uint64_t previous_upper = 0;
  for (const PartitionSpec& spec : ensemble->partitions()) {
    EXPECT_GE(spec.lower, previous_upper);
    EXPECT_GT(spec.count, 0u);
    previous_upper = spec.upper;
    total += spec.count;
  }
  EXPECT_EQ(total, corpus.size());
  EXPECT_GT(ensemble->MemoryBytes(), 0u);
}

TEST(LshEnsembleTest, SelfQueryFindsSelfAtFullThreshold) {
  const Corpus corpus = SmallCorpus(500);
  auto family = Family();
  LshEnsembleOptions options;
  options.num_partitions = 8;
  auto ensemble = BuildEnsemble(corpus, options, family);
  ASSERT_TRUE(ensemble.ok());

  size_t found = 0, tried = 0;
  for (size_t i = 0; i < corpus.size(); i += 25) {
    const Domain& domain = corpus.domain(i);
    auto sketch = MinHash::FromValues(family, domain.values);
    std::vector<uint64_t> out;
    ASSERT_TRUE(
        ensemble->Query(sketch, domain.size(), 0.9, &out).ok());
    ++tried;
    if (std::find(out.begin(), out.end(), domain.id) != out.end()) ++found;
  }
  // Identical signatures collide deterministically in their own partition;
  // the tuner picks (b, r) with near-1 probability at t = 1.
  EXPECT_GE(found, tried * 9 / 10);
}

TEST(LshEnsembleTest, QueryValidation) {
  const Corpus corpus = SmallCorpus(200);
  auto family = Family();
  auto ensemble = BuildEnsemble(corpus, LshEnsembleOptions{}, family);
  ASSERT_TRUE(ensemble.ok());
  auto sketch =
      MinHash::FromValues(family, corpus.domain(0).values);
  std::vector<uint64_t> out;
  EXPECT_FALSE(ensemble->Query(sketch, 10, -0.1, &out).ok());
  EXPECT_FALSE(ensemble->Query(sketch, 10, 1.1, &out).ok());
  EXPECT_FALSE(ensemble->Query(MinHash(), 10, 0.5, &out).ok());
  EXPECT_FALSE(ensemble->Query(sketch, 10, 0.5, nullptr).ok());
  auto foreign =
      MinHash::FromValues(Family(256, 321), corpus.domain(0).values);
  EXPECT_FALSE(ensemble->Query(foreign, 10, 0.5, &out).ok());
}

TEST(LshEnsembleTest, ParallelAndSerialQueriesAgree) {
  const Corpus corpus = SmallCorpus(1500, 6);
  auto family = Family();
  LshEnsembleOptions parallel_options;
  parallel_options.num_partitions = 16;
  parallel_options.parallel_query = true;
  LshEnsembleOptions serial_options = parallel_options;
  serial_options.parallel_query = false;
  serial_options.parallel_build = false;
  auto parallel_index = BuildEnsemble(corpus, parallel_options, family);
  auto serial_index = BuildEnsemble(corpus, serial_options, family);
  ASSERT_TRUE(parallel_index.ok());
  ASSERT_TRUE(serial_index.ok());

  for (size_t i = 0; i < corpus.size(); i += 100) {
    const Domain& domain = corpus.domain(i);
    auto sketch = MinHash::FromValues(family, domain.values);
    std::vector<uint64_t> parallel_out, serial_out;
    ASSERT_TRUE(
        parallel_index->Query(sketch, domain.size(), 0.5, &parallel_out).ok());
    ASSERT_TRUE(
        serial_index->Query(sketch, domain.size(), 0.5, &serial_out).ok());
    std::sort(parallel_out.begin(), parallel_out.end());
    std::sort(serial_out.begin(), serial_out.end());
    EXPECT_EQ(parallel_out, serial_out) << "query " << i;
  }
}

TEST(LshEnsembleTest, PruningIntroducesNoFalseNegatives) {
  const Corpus corpus = SmallCorpus(1500, 7);
  auto family = Family();
  LshEnsembleOptions pruned_options;
  pruned_options.num_partitions = 16;
  pruned_options.prune_unreachable_partitions = true;
  LshEnsembleOptions unpruned_options = pruned_options;
  unpruned_options.prune_unreachable_partitions = false;
  auto pruned = BuildEnsemble(corpus, pruned_options, family);
  auto unpruned = BuildEnsemble(corpus, unpruned_options, family);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(unpruned.ok());

  for (size_t i = 0; i < corpus.size(); i += 50) {
    const Domain& domain = corpus.domain(i);
    auto sketch = MinHash::FromValues(family, domain.values);
    std::vector<uint64_t> with_pruning, without_pruning;
    QueryStats stats;
    ASSERT_TRUE(pruned
                    ->Query(sketch, domain.size(), 0.8, &with_pruning, &stats)
                    .ok());
    ASSERT_TRUE(
        unpruned->Query(sketch, domain.size(), 0.8, &without_pruning).ok());
    std::sort(with_pruning.begin(), with_pruning.end());
    std::sort(without_pruning.begin(), without_pruning.end());
    // Pruned partitions can only drop candidates whose size makes the
    // threshold unreachable — never ground-truth positives. The candidate
    // sets over reachable partitions must be identical.
    std::vector<uint64_t> missing;
    std::set_difference(with_pruning.begin(), with_pruning.end(),
                        without_pruning.begin(), without_pruning.end(),
                        std::back_inserter(missing));
    EXPECT_TRUE(missing.empty()) << "pruning added candidates?!";
    for (uint64_t id : without_pruning) {
      if (!std::binary_search(with_pruning.begin(), with_pruning.end(), id)) {
        // Dropped candidate must be too small to qualify.
        const Domain& dropped = corpus.domain(id);
        EXPECT_LT(static_cast<double>(dropped.size()),
                  0.8 * static_cast<double>(domain.size()));
      }
    }
  }
}

TEST(LshEnsembleTest, StatsReportProbedAndPruned) {
  const Corpus corpus = SmallCorpus(1000, 8);
  auto family = Family();
  LshEnsembleOptions options;
  options.num_partitions = 16;
  auto ensemble = BuildEnsemble(corpus, options, family);
  ASSERT_TRUE(ensemble.ok());

  // A huge query with a high threshold prunes every partition whose largest
  // domain is below t* * q.
  const Domain& big = *std::max_element(
      corpus.domains().begin(), corpus.domains().end(),
      [](const Domain& a, const Domain& b) { return a.size() < b.size(); });
  auto sketch = MinHash::FromValues(family, big.values);
  std::vector<uint64_t> out;
  QueryStats stats;
  ASSERT_TRUE(ensemble->Query(sketch, big.size(), 1.0, &out, &stats).ok());
  EXPECT_EQ(stats.query_size_used, big.size());
  EXPECT_GT(stats.partitions_pruned, 0u);
  EXPECT_EQ(stats.partitions_probed + stats.partitions_pruned,
            ensemble->partitions().size());
  EXPECT_EQ(stats.tuned.size(), stats.partitions_probed);
  for (const TunedParams& params : stats.tuned) {
    EXPECT_GE(params.b, 1);
    EXPECT_LE(params.b, 32);
    EXPECT_GE(params.r, 1);
    EXPECT_LE(params.r, 8);
  }
}

TEST(LshEnsembleTest, SlotZeroCountersReachQueryStats) {
  const Corpus corpus = SmallCorpus(600, 23);
  auto family = Family();
  auto ensemble = BuildEnsemble(corpus, LshEnsembleOptions{}, family);
  ASSERT_TRUE(ensemble.ok());

  // A self-query finds its own slot-0 runs in every tree of its home
  // partition, so the per-query counters must be visible through stats on
  // both the single-query path...
  const Domain& domain = corpus.domain(50);
  auto sketch = MinHash::FromValues(family, domain.values);
  QueryStats stats;
  std::vector<uint64_t> out;
  ASSERT_TRUE(
      ensemble->Query(sketch, domain.size(), 0.5, &out, &stats).ok());
  EXPECT_GT(stats.slot0_cache_hits + stats.slot0_gallop_resumes, 0u);

  // ...and the batched (partition-major chunk) path.
  const std::vector<QuerySpec> specs(3,
                                     QuerySpec{&sketch, domain.size(), 0.5});
  QueryContext ctx;
  std::vector<std::vector<uint64_t>> outs(specs.size());
  std::vector<QueryStats> batch_stats(specs.size());
  ASSERT_TRUE(ensemble
                  ->BatchQuery(specs, &ctx, outs.data(), batch_stats.data())
                  .ok());
  for (const QueryStats& st : batch_stats) {
    EXPECT_GT(st.slot0_cache_hits + st.slot0_gallop_resumes, 0u);
  }
}

TEST(LshEnsembleTest, EstimatedQuerySizeCloseToExact) {
  const Corpus corpus = SmallCorpus(800, 9);
  auto family = Family();
  auto ensemble = BuildEnsemble(corpus, LshEnsembleOptions{}, family);
  ASSERT_TRUE(ensemble.ok());
  const Domain& domain = corpus.domain(100);
  auto sketch = MinHash::FromValues(family, domain.values);
  QueryStats stats;
  std::vector<uint64_t> out;
  ASSERT_TRUE(ensemble->Query(sketch, 0, 0.5, &out, &stats).ok());
  const double relative_error =
      std::abs(static_cast<double>(stats.query_size_used) -
               static_cast<double>(domain.size())) /
      static_cast<double>(domain.size());
  EXPECT_LT(relative_error, 0.5);
}

TEST(LshEnsembleTest, SinglePartitionEqualsBaselineSemantics) {
  const Corpus corpus = SmallCorpus(600, 10);
  auto family = Family();
  LshEnsembleOptions options;
  options.num_partitions = 1;
  auto ensemble = BuildEnsemble(corpus, options, family);
  ASSERT_TRUE(ensemble.ok());
  EXPECT_EQ(ensemble->partitions().size(), 1u);
  const PartitionSpec& only = ensemble->partitions()[0];
  EXPECT_EQ(only.count, corpus.size());
}

TEST(LshEnsembleTest, TuneForPartitionMatchesQueryStats) {
  const Corpus corpus = SmallCorpus(600, 11);
  auto family = Family();
  LshEnsembleOptions options;
  options.num_partitions = 8;
  options.prune_unreachable_partitions = false;
  auto ensemble = BuildEnsemble(corpus, options, family);
  ASSERT_TRUE(ensemble.ok());
  const Domain& domain = corpus.domain(5);
  auto sketch = MinHash::FromValues(family, domain.values);
  QueryStats stats;
  std::vector<uint64_t> out;
  ASSERT_TRUE(ensemble->Query(sketch, domain.size(), 0.6, &out, &stats).ok());
  ASSERT_EQ(stats.tuned.size(), ensemble->partitions().size());
  for (size_t i = 0; i < ensemble->partitions().size(); ++i) {
    auto expected = ensemble->TuneForPartition(
        i, static_cast<double>(domain.size()), 0.6);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(stats.tuned[i].b, expected->b);
    EXPECT_EQ(stats.tuned[i].r, expected->r);
  }
  EXPECT_FALSE(ensemble->TuneForPartition(99, 10, 0.5).ok());
  EXPECT_FALSE(ensemble->TuneForPartition(0, 0, 0.5).ok());
}

// End-to-end recall against exact ground truth. The ensemble is
// recall-biased by construction (conservative threshold conversion), so on
// a realistic corpus recall should be high at every threshold.
class EnsembleRecallProperty : public ::testing::TestWithParam<double> {};

TEST_P(EnsembleRecallProperty, RecallStaysHigh) {
  const double threshold = GetParam();
  const Corpus corpus = SmallCorpus(3000, 12);
  auto family = Family();
  LshEnsembleOptions options;
  options.num_partitions = 16;
  auto ensemble = BuildEnsemble(corpus, options, family);
  ASSERT_TRUE(ensemble.ok());

  std::vector<size_t> query_indices, index_indices(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) index_indices[i] = i;
  for (size_t i = 0; i < corpus.size(); i += 30) query_indices.push_back(i);
  auto truth =
      GroundTruth::Compute(corpus, query_indices, index_indices).value();

  AccuracyAccumulator accumulator;
  for (size_t qi = 0; qi < query_indices.size(); ++qi) {
    const Domain& domain = corpus.domain(query_indices[qi]);
    auto sketch = MinHash::FromValues(family, domain.values);
    std::vector<uint64_t> out;
    ASSERT_TRUE(ensemble->Query(sketch, domain.size(), threshold, &out).ok());
    std::sort(out.begin(), out.end());
    accumulator.AddQuery(out, truth.TruthSet(qi, threshold));
  }
  EXPECT_GT(accumulator.MeanRecall(), 0.75) << "t*=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(ThresholdSweep, EnsembleRecallProperty,
                         ::testing::Values(0.2, 0.5, 0.8));

TEST(LshEnsembleTest, MorePartitionsImprovePrecision) {
  const Corpus corpus = SmallCorpus(4000, 13);
  auto family = Family();
  std::vector<size_t> query_indices, index_indices(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) index_indices[i] = i;
  for (size_t i = 0; i < corpus.size(); i += 40) query_indices.push_back(i);
  auto truth =
      GroundTruth::Compute(corpus, query_indices, index_indices).value();

  double precision_1 = 0, precision_16 = 0;
  for (int partitions : {1, 16}) {
    LshEnsembleOptions options;
    options.num_partitions = partitions;
    auto ensemble = BuildEnsemble(corpus, options, family);
    ASSERT_TRUE(ensemble.ok());
    AccuracyAccumulator accumulator;
    for (size_t qi = 0; qi < query_indices.size(); ++qi) {
      const Domain& domain = corpus.domain(query_indices[qi]);
      auto sketch = MinHash::FromValues(family, domain.values);
      std::vector<uint64_t> out;
      ASSERT_TRUE(ensemble->Query(sketch, domain.size(), 0.5, &out).ok());
      std::sort(out.begin(), out.end());
      accumulator.AddQuery(out, truth.TruthSet(qi, 0.5));
    }
    if (partitions == 1) {
      precision_1 = accumulator.MeanPrecision();
    } else {
      precision_16 = accumulator.MeanPrecision();
    }
  }
  EXPECT_GT(precision_16, precision_1 - 0.02)
      << "partitioning should not hurt precision";
}

TEST(LshEnsembleBuilderTest, DuplicateIdsRejected) {
  auto family = Family();
  LshEnsembleBuilder builder(LshEnsembleOptions{}, family);
  Rng rng(11);
  for (uint64_t id : {uint64_t{1}, uint64_t{2}, uint64_t{1}}) {
    MinHash sketch(family);
    for (int v = 0; v < 20; ++v) sketch.Update(rng.Next());
    ASSERT_TRUE(builder.Add(id, 20, sketch).ok());
  }
  auto ensemble = std::move(builder).Build();
  EXPECT_FALSE(ensemble.ok());
  EXPECT_TRUE(ensemble.status().IsInvalidArgument());
}

TEST(LshEnsembleTest, StatsAccountingHoldsAcrossPruningSweep) {
  const Corpus corpus = SmallCorpus(1200, 21);
  auto family = Family();
  auto ensemble = BuildEnsemble(corpus, LshEnsembleOptions{}, family);
  ASSERT_TRUE(ensemble.ok());

  // Every (query, threshold) combination must account for every partition
  // exactly once: partitions_probed + partitions_pruned == partitions().
  for (const size_t index : {size_t{0}, size_t{500}, size_t{1100}}) {
    const Domain& domain = corpus.domain(index);
    auto sketch = MinHash::FromValues(family, domain.values);
    for (const double t_star : {0.1, 0.5, 0.9, 1.0}) {
      std::vector<uint64_t> out;
      QueryStats stats;
      ASSERT_TRUE(
          ensemble->Query(sketch, domain.size(), t_star, &out, &stats).ok());
      EXPECT_EQ(stats.partitions_probed + stats.partitions_pruned,
                ensemble->partitions().size());
      EXPECT_EQ(stats.tuned.size(), stats.partitions_probed);
      EXPECT_EQ(stats.query_size_used, domain.size());
    }
  }

  // With pruning disabled nothing may be skipped.
  LshEnsembleOptions no_prune;
  no_prune.prune_unreachable_partitions = false;
  auto unpruned = BuildEnsemble(corpus, no_prune, family);
  ASSERT_TRUE(unpruned.ok());
  const Domain& big = *std::max_element(
      corpus.domains().begin(), corpus.domains().end(),
      [](const Domain& a, const Domain& b) { return a.size() < b.size(); });
  auto sketch = MinHash::FromValues(family, big.values);
  std::vector<uint64_t> out;
  QueryStats stats;
  ASSERT_TRUE(unpruned->Query(sketch, big.size(), 1.0, &out, &stats).ok());
  EXPECT_EQ(stats.partitions_pruned, 0u);
  EXPECT_EQ(stats.partitions_probed, unpruned->partitions().size());
}

TEST(LshEnsembleTest, QueryOutputHasNoDuplicateIds) {
  const Corpus corpus = SmallCorpus(1500, 22);
  auto family = Family();
  auto ensemble = BuildEnsemble(corpus, LshEnsembleOptions{}, family);
  ASSERT_TRUE(ensemble.ok());
  for (const size_t index : {size_t{3}, size_t{700}, size_t{1400}}) {
    const Domain& domain = corpus.domain(index);
    auto sketch = MinHash::FromValues(family, domain.values);
    std::vector<uint64_t> out;
    ASSERT_TRUE(ensemble->Query(sketch, domain.size(), 0.3, &out).ok());
    std::vector<uint64_t> sorted = out;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "partitions are disjoint, so the union must be duplicate-free";
  }
}

TEST(LshEnsembleTest, BatchQueryMatchesSingleQueries) {
  const Corpus corpus = SmallCorpus(1500, 23);
  auto family = Family();
  auto ensemble = BuildEnsemble(corpus, LshEnsembleOptions{}, family);
  ASSERT_TRUE(ensemble.ok());

  constexpr size_t kQueries = 64;
  std::vector<MinHash> sketches;
  std::vector<QuerySpec> specs;
  sketches.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    const Domain& domain = corpus.domain((i * 17) % corpus.size());
    sketches.push_back(MinHash::FromValues(family, domain.values));
    specs.push_back(QuerySpec{&sketches.back(), domain.size(),
                              i % 2 == 0 ? 0.5 : 0.8});
  }

  std::vector<std::vector<uint64_t>> batch_outs(kQueries);
  std::vector<QueryStats> batch_stats(kQueries);
  QueryContext ctx;
  ASSERT_TRUE(
      ensemble->BatchQuery(specs, &ctx, batch_outs.data(), batch_stats.data())
          .ok());

  for (size_t i = 0; i < kQueries; ++i) {
    std::vector<uint64_t> single_out;
    QueryStats single_stats;
    ASSERT_TRUE(ensemble
                    ->Query(*specs[i].query, specs[i].query_size,
                            specs[i].t_star, &single_out, &single_stats)
                    .ok());
    EXPECT_EQ(batch_outs[i], single_out) << "query " << i;
    EXPECT_EQ(batch_stats[i].query_size_used, single_stats.query_size_used);
    EXPECT_EQ(batch_stats[i].partitions_probed,
              single_stats.partitions_probed);
    EXPECT_EQ(batch_stats[i].partitions_pruned,
              single_stats.partitions_pruned);
    ASSERT_EQ(batch_stats[i].tuned.size(), single_stats.tuned.size());
    for (size_t p = 0; p < single_stats.tuned.size(); ++p) {
      EXPECT_EQ(batch_stats[i].tuned[p].b, single_stats.tuned[p].b);
      EXPECT_EQ(batch_stats[i].tuned[p].r, single_stats.tuned[p].r);
    }
  }

  // A reused context must not leak state between batches: re-running the
  // same batch yields the same answers.
  std::vector<std::vector<uint64_t>> again(kQueries);
  ASSERT_TRUE(ensemble->BatchQuery(specs, &ctx, again.data()).ok());
  for (size_t i = 0; i < kQueries; ++i) EXPECT_EQ(again[i], batch_outs[i]);
  EXPECT_GE(ctx.num_shards(), 1u);
}

// A QueryContext is documented as bound to no particular ensemble: its
// internal memos (tuning, probe ranges) must not leak answers from one
// index into another — even for indexes with the same partition count
// queried with identical (q, t*), and even when a dead index's heap
// address is reused.
TEST(LshEnsembleTest, QueryContextReusableAcrossEnsembles) {
  auto family = Family();
  const Corpus small_corpus = SmallCorpus(600, 25);
  CorpusGenOptions big_gen;
  big_gen.num_domains = 600;
  big_gen.min_size = 200;
  big_gen.max_size = 50000;
  big_gen.seed = 26;
  const Corpus big_corpus = CorpusGenerator(big_gen).Generate().value();

  LshEnsembleOptions options;
  options.num_partitions = 8;
  options.parallel_query = false;  // serial path: one shard carries memos
  auto small_index = BuildEnsemble(small_corpus, options, family);
  auto big_index = BuildEnsemble(big_corpus, options, family);
  ASSERT_TRUE(small_index.ok());
  ASSERT_TRUE(big_index.ok());
  ASSERT_EQ(small_index->partitions().size(), big_index->partitions().size());

  const MinHash sketch =
      MinHash::FromValues(family, big_corpus.domain(3).values);
  const QuerySpec spec{&sketch, /*query_size=*/1000, /*t_star=*/0.5};
  const std::span<const QuerySpec> specs(&spec, 1);

  QueryContext shared_ctx;
  std::vector<uint64_t> out;
  // Warm the memo on the small index with the exact same (q, t*)...
  ASSERT_TRUE(small_index->BatchQuery(specs, &shared_ctx, &out).ok());
  // ...then the big index must re-tune, not replay the small index's
  // (b, r): compare against a fresh context.
  std::vector<uint64_t> shared_out;
  QueryStats shared_stats;
  ASSERT_TRUE(
      big_index->BatchQuery(specs, &shared_ctx, &shared_out, &shared_stats)
          .ok());
  QueryContext fresh_ctx;
  std::vector<uint64_t> fresh_out;
  QueryStats fresh_stats;
  ASSERT_TRUE(
      big_index->BatchQuery(specs, &fresh_ctx, &fresh_out, &fresh_stats).ok());
  EXPECT_EQ(shared_out, fresh_out);
  ASSERT_EQ(shared_stats.tuned.size(), fresh_stats.tuned.size());
  for (size_t p = 0; p < fresh_stats.tuned.size(); ++p) {
    EXPECT_EQ(shared_stats.tuned[p].b, fresh_stats.tuned[p].b) << "p=" << p;
    EXPECT_EQ(shared_stats.tuned[p].r, fresh_stats.tuned[p].r) << "p=" << p;
  }

  // Destroy-and-rebuild while the context lives: stale probe-range or
  // tuning memos must not survive into the replacement index.
  auto replacement = BuildEnsemble(big_corpus, options, family);
  ASSERT_TRUE(replacement.ok());
  small_index = std::move(replacement);  // old small index destroyed
  std::vector<uint64_t> replay_out;
  ASSERT_TRUE(small_index->BatchQuery(specs, &shared_ctx, &replay_out).ok());
  EXPECT_EQ(replay_out, fresh_out);
}

TEST(LshEnsembleTest, BatchQueryValidation) {
  const Corpus corpus = SmallCorpus(200, 24);
  auto family = Family();
  auto ensemble = BuildEnsemble(corpus, LshEnsembleOptions{}, family);
  ASSERT_TRUE(ensemble.ok());

  auto sketch = MinHash::FromValues(family, corpus.domain(0).values);
  QuerySpec spec{&sketch, corpus.domain(0).size(), 0.5};
  std::vector<std::vector<uint64_t>> outs(2);
  QueryContext ctx;

  // Empty batch is a no-op.
  EXPECT_TRUE(
      ensemble->BatchQuery(std::span<const QuerySpec>(), &ctx, outs.data())
          .ok());
  // Null context / outs are rejected.
  EXPECT_FALSE(ensemble
                   ->BatchQuery(std::span<const QuerySpec>(&spec, 1), nullptr,
                                outs.data())
                   .ok());
  EXPECT_FALSE(ensemble
                   ->BatchQuery(std::span<const QuerySpec>(&spec, 1), &ctx,
                                nullptr)
                   .ok());
  // A bad spec inside a batch fails the call.
  QuerySpec bad[2] = {spec, QuerySpec{nullptr, 10, 0.5}};
  EXPECT_FALSE(ensemble->BatchQuery(bad, &ctx, outs.data()).ok());
  QuerySpec bad_threshold[2] = {spec, QuerySpec{&sketch, 10, 1.5}};
  EXPECT_FALSE(
      ensemble->BatchQuery(bad_threshold, &ctx, outs.data()).ok());
}

}  // namespace
}  // namespace lshensemble
