#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "eval/experiment.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

// ---------------------------------------------------------------- metrics

TEST(FBetaTest, KnownValues) {
  EXPECT_DOUBLE_EQ(FBeta(1.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(FBeta(0.0, 0.0, 1.0), 0.0);
  // F1 of (0.5, 1.0) = 2*0.5/1.5.
  EXPECT_NEAR(FBeta(0.5, 1.0, 1.0), 2.0 / 3.0, 1e-12);
  // F0.5 weighs precision more: with low precision, F0.5 < F1.
  EXPECT_LT(FBeta(0.2, 1.0, 0.5), FBeta(0.2, 1.0, 1.0));
}

TEST(SortedIntersectionSizeTest, Basic) {
  EXPECT_EQ(SortedIntersectionSize({1, 3, 5}, {2, 3, 5, 7}), 2u);
  EXPECT_EQ(SortedIntersectionSize({}, {1}), 0u);
  EXPECT_EQ(SortedIntersectionSize({1, 2}, {1, 2}), 2u);
}

TEST(AccuracyAccumulatorTest, PerfectResult) {
  AccuracyAccumulator accumulator;
  accumulator.AddQuery({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(accumulator.MeanPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(accumulator.MeanRecall(), 1.0);
  EXPECT_DOUBLE_EQ(accumulator.F1(), 1.0);
}

TEST(AccuracyAccumulatorTest, MixedResults) {
  AccuracyAccumulator accumulator;
  // Precision 2/4, recall 2/2.
  accumulator.AddQuery({1, 2, 8, 9}, {1, 2});
  // Precision 1/2, recall 1/3.
  accumulator.AddQuery({3, 4}, {3, 5, 6});
  EXPECT_NEAR(accumulator.MeanPrecision(), 0.5, 1e-12);
  EXPECT_NEAR(accumulator.MeanRecall(), (1.0 + 1.0 / 3.0) / 2, 1e-12);
}

TEST(AccuracyAccumulatorTest, EmptyResultExcludedFromPrecision) {
  AccuracyAccumulator accumulator;
  accumulator.AddQuery({}, {1, 2});      // empty result: skipped in precision
  accumulator.AddQuery({1, 9}, {1, 2});  // precision 0.5
  EXPECT_NEAR(accumulator.MeanPrecision(), 0.5, 1e-12);
  EXPECT_EQ(accumulator.num_empty_results(), 1u);
  // Recall counts both: (0 + 0.5) / 2.
  EXPECT_NEAR(accumulator.MeanRecall(), 0.25, 1e-12);
}

TEST(AccuracyAccumulatorTest, EmptyTruthExcludedFromRecall) {
  AccuracyAccumulator accumulator;
  accumulator.AddQuery({1}, {});  // nothing to find
  accumulator.AddQuery({1}, {1});
  EXPECT_NEAR(accumulator.MeanRecall(), 1.0, 1e-12);
  EXPECT_EQ(accumulator.num_empty_truths(), 1u);
  // Precision counts both: (0 + 1) / 2.
  EXPECT_NEAR(accumulator.MeanPrecision(), 0.5, 1e-12);
}

TEST(AccuracyAccumulatorTest, AllEmptyDefaultsToOne) {
  AccuracyAccumulator accumulator;
  accumulator.AddQuery({}, {});
  EXPECT_DOUBLE_EQ(accumulator.MeanPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(accumulator.MeanRecall(), 1.0);
}

TEST(AccuracyAccumulatorTest, MergeCombinesCounts) {
  AccuracyAccumulator a, b;
  a.AddQuery({1}, {1});
  b.AddQuery({2, 9}, {2});
  a.Merge(b);
  EXPECT_EQ(a.num_queries(), 2u);
  EXPECT_NEAR(a.MeanPrecision(), 0.75, 1e-12);
}

// ----------------------------------------------------------- ground truth

TEST(GroundTruthTest, ScoresMatchDirectComputation) {
  CorpusGenOptions options;
  options.num_domains = 500;
  options.max_size = 2000;
  options.seed = 31;
  auto corpus = CorpusGenerator(options).Generate().value();

  std::vector<size_t> index_indices(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) index_indices[i] = i;
  const std::vector<size_t> query_indices = {3, 77, 214};
  auto truth =
      GroundTruth::Compute(corpus, query_indices, index_indices).value();
  ASSERT_EQ(truth.num_queries(), 3u);

  for (size_t qi = 0; qi < query_indices.size(); ++qi) {
    const Domain& query = corpus.domain(query_indices[qi]);
    for (const auto& [id, containment] : truth.Scores(qi)) {
      EXPECT_NEAR(containment, query.ContainmentIn(corpus.domain(id)), 1e-12);
    }
    // Threshold filter is consistent with the raw scores.
    const auto set = truth.TruthSet(qi, 0.5);
    for (uint64_t id : set) {
      EXPECT_GE(query.ContainmentIn(corpus.domain(id)), 0.5 - 1e-12);
    }
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    // Self is always in the truth set at threshold 1.0.
    const auto self_set = truth.TruthSet(qi, 1.0);
    EXPECT_TRUE(std::binary_search(self_set.begin(), self_set.end(),
                                   query.id));
  }
}

TEST(GroundTruthTest, ExternalQueries) {
  CorpusGenOptions options;
  options.num_domains = 200;
  options.seed = 32;
  auto corpus = CorpusGenerator(options).Generate().value();
  std::vector<size_t> index_indices(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) index_indices[i] = i;

  Rng rng(5);
  // Full containment: every query value must come from the target, so the
  // query can be no larger than the target domain.
  const size_t query_size = std::min<size_t>(corpus.domain(10).size(), 20);
  auto query = MakeQueryWithContainment(corpus.domain(10), query_size, 1.0,
                                        777777, rng)
                   .value();
  auto truth =
      GroundTruth::ComputeForQueries(corpus, {query}, index_indices).value();
  const auto set = truth.TruthSet(0, 1.0);
  EXPECT_TRUE(
      std::binary_search(set.begin(), set.end(), corpus.domain(10).id));
}

// ------------------------------------------------------------- experiment

TEST(AccuracyExperimentTest, EndToEndSmall) {
  CorpusGenOptions gen_options;
  gen_options.num_domains = 1200;
  gen_options.max_size = 3000;
  gen_options.seed = 33;
  auto corpus = CorpusGenerator(gen_options).Generate().value();

  std::vector<size_t> index_indices(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) index_indices[i] = i;
  auto query_indices =
      SampleQueryIndices(corpus, 60, QuerySizeBias::kUniform, 34);

  AccuracyExperimentOptions options;
  options.thresholds = {0.3, 0.6};
  options.num_hashes = 128;
  AccuracyExperiment experiment(corpus, index_indices, query_indices,
                                options);
  ASSERT_TRUE(experiment.Prepare().ok());

  for (const IndexConfig& config :
       {IndexConfig::Baseline(), IndexConfig::Asym(),
        IndexConfig::Ensemble(8), IndexConfig::AsymPartitioned(8)}) {
    auto cells = experiment.RunConfig(config);
    ASSERT_TRUE(cells.ok()) << config.label;
    ASSERT_EQ(cells->size(), 2u);
    for (const AccuracyCell& cell : *cells) {
      EXPECT_EQ(cell.config, config.label);
      EXPECT_GE(cell.precision, 0.0);
      EXPECT_LE(cell.precision, 1.0);
      EXPECT_GE(cell.recall, 0.0);
      EXPECT_LE(cell.recall, 1.0);
      EXPECT_EQ(cell.num_queries, 60u);
      EXPECT_GT(cell.mean_query_micros, 0.0);
    }
  }
}

TEST(AccuracyExperimentTest, PartitionedAsymImprovesOnPlainAsym) {
  // Section 6.1 (unnumbered experiment): per-partition padding is smaller,
  // so recall can only move toward the ensemble's.
  CorpusGenOptions gen_options;
  gen_options.num_domains = 2000;
  gen_options.max_size = 20000;
  gen_options.seed = 44;
  auto corpus = CorpusGenerator(gen_options).Generate().value();
  std::vector<size_t> index_indices(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) index_indices[i] = i;
  auto query_indices =
      SampleQueryIndices(corpus, 80, QuerySizeBias::kSmallestDecile, 45);

  AccuracyExperimentOptions options;
  options.thresholds = {0.5};
  options.num_hashes = 128;
  AccuracyExperiment experiment(corpus, index_indices, query_indices,
                                options);
  ASSERT_TRUE(experiment.Prepare().ok());
  auto plain = experiment.RunConfig(IndexConfig::Asym());
  auto partitioned = experiment.RunConfig(IndexConfig::AsymPartitioned(16));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(partitioned.ok());
  EXPECT_GE((*partitioned)[0].recall, (*plain)[0].recall - 0.05);
  EXPECT_GT((*partitioned)[0].recall, 0.0);
}

TEST(AccuracyExperimentTest, PrepareRequiredAndValidation) {
  CorpusGenOptions gen_options;
  gen_options.num_domains = 100;
  gen_options.seed = 35;
  auto corpus = CorpusGenerator(gen_options).Generate().value();
  std::vector<size_t> all(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) all[i] = i;

  AccuracyExperiment unprepared(corpus, all, {0, 1},
                                AccuracyExperimentOptions{});
  EXPECT_FALSE(unprepared.RunConfig(IndexConfig::Baseline()).ok());

  AccuracyExperiment empty(corpus, {}, {}, AccuracyExperimentOptions{});
  EXPECT_FALSE(empty.Prepare().ok());
}

TEST(DefaultThresholdsTest, PaperSweep) {
  const auto thresholds = DefaultThresholds();
  ASSERT_EQ(thresholds.size(), 20u);
  EXPECT_NEAR(thresholds.front(), 0.05, 1e-12);
  EXPECT_NEAR(thresholds.back(), 1.0, 1e-12);
}

// ----------------------------------------------------------------- report

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"name", "value"});
  printer.AddRow({"x", "1"});
  printer.AddRow({"longer-name", "2.5"});
  std::ostringstream out;
  printer.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("|---"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter printer({"a", "b", "c"});
  printer.AddRow({"1"});
  std::ostringstream out;
  printer.Print(out);
  EXPECT_NE(out.str().find("| 1"), std::string::npos);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(0.71349, 3), "0.713");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

}  // namespace
}  // namespace lshensemble
