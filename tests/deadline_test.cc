// Deadline-aware degradation and admission control. The contracts:
//
//  * An already-expired deadline fails the batch with DeadlineExceeded
//    BEFORE any shard or partition work.
//  * A comfortably-future deadline changes nothing: results are
//    byte-identical to the no-deadline run at every layer.
//  * max_in_flight_batches sheds calls past the bound with an immediate
//    Unavailable (no shard work), and admitted batches are unaffected.
//  * BatchSearch's multi-round descent holds ONE admission slot — it
//    must complete under a bound of 1 instead of self-deadlocking.
//  * The stats overload reports the gather split (shards_gathered /
//    shards_skipped) and shard-summed probe counters.

#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <vector>

#include "core/dynamic_ensemble.h"
#include "core/sharded_ensemble.h"
#include "core/topk.h"
#include "data/corpus.h"
#include "minhash/minhash.h"
#include "util/clock.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

constexpr int kNumHashes = 64;
/// An absolute steady-clock instant that is always in the past (0 means
/// "no deadline", so 1ns past the epoch is the earliest expired one).
constexpr uint64_t kExpired = 1;
/// Far enough out that no test body can cross it.
constexpr uint64_t kFarFutureMicros = 120 * 1000 * 1000;

ShardedEnsembleOptions ShardOptions(size_t num_shards) {
  ShardedEnsembleOptions options;
  options.base.base.num_partitions = 4;
  options.base.base.num_hashes = kNumHashes;
  options.base.base.tree_depth = 4;
  options.base.min_delta_for_rebuild = 1 << 30;
  options.num_shards = num_shards;
  return options;
}

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    family_ = HashFamily::Create(kNumHashes, 17).value();
    CorpusGenOptions gen;
    gen.num_domains = 200;
    gen.seed = 606;
    corpus_ = CorpusGenerator(gen).Generate().value();
    for (size_t i = 0; i < corpus_->size(); ++i) {
      sketches_.push_back(
          MinHash::FromValues(family_, corpus_->domain(i).values));
    }
  }

  void Fill(ShardedEnsemble* index, size_t count) const {
    for (size_t i = 0; i < count; ++i) {
      const Domain& domain = corpus_->domain(i);
      ASSERT_TRUE(
          index->Insert(domain.id, domain.size(), sketches_[i]).ok());
    }
    ASSERT_TRUE(index->Flush().ok());
  }

  std::vector<QuerySpec> Specs(size_t count, uint64_t deadline_ns) const {
    std::vector<QuerySpec> specs;
    for (size_t j = 0; j < count; ++j) {
      const size_t pick = (j * 31) % corpus_->size();
      specs.push_back(QuerySpec{&sketches_[pick],
                                corpus_->domain(pick).size(), 0.5,
                                deadline_ns});
    }
    return specs;
  }

  std::shared_ptr<const HashFamily> family_;
  std::optional<Corpus> corpus_;
  std::vector<MinHash> sketches_;
};

TEST_F(DeadlineTest, ClockHelpers) {
  const uint64_t now = SteadyNowNanos();
  EXPECT_GT(now, 0u);
  EXPECT_FALSE(DeadlineExpired(0));  // 0 = no deadline, never expires
  EXPECT_TRUE(DeadlineExpired(kExpired));
  EXPECT_FALSE(DeadlineExpired(DeadlineAfterMicros(kFarFutureMicros)));
  EXPECT_GE(DeadlineAfterMicros(1000), now + 1000 * 1000);
}

TEST_F(DeadlineTest, ExpiredDeadlineFailsEveryLayerBeforeWork) {
  // Dynamic engine.
  auto dynamic = DynamicLshEnsemble::Create(ShardOptions(1).base, family_)
                     .value();
  for (size_t i = 0; i < 50; ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(
        dynamic.Insert(domain.id, domain.size(), sketches_[i]).ok());
  }
  const std::vector<QuerySpec> expired = Specs(8, kExpired);
  std::vector<std::vector<uint64_t>> outs(expired.size());
  QueryContext ctx;
  EXPECT_TRUE(dynamic.BatchQuery(expired, &ctx, outs.data())
                  .IsDeadlineExceeded());

  // Sharded scatter/gather.
  auto sharded = ShardedEnsemble::Create(ShardOptions(3), family_).value();
  Fill(&sharded, 100);
  EXPECT_TRUE(
      sharded.BatchQuery(expired, outs.data()).IsDeadlineExceeded());

  // Top-k descent, sharded and unsharded.
  std::vector<TopKQuery> topk = {
      TopKQuery{&sketches_[0], corpus_->domain(0).size(), kExpired}};
  std::vector<TopKResult> ranked;
  EXPECT_TRUE(sharded.BatchSearch(topk, 5, &ranked).IsDeadlineExceeded());
  const TopKSearcher searcher(&dynamic);
  EXPECT_TRUE(
      searcher.BatchSearch(topk, 5, &ctx, &ranked).IsDeadlineExceeded());
}

TEST_F(DeadlineTest, FutureDeadlineIsInvisibleInResults) {
  auto index = ShardedEnsemble::Create(ShardOptions(3), family_).value();
  Fill(&index, corpus_->size());

  const std::vector<QuerySpec> unbounded = Specs(16, 0);
  const std::vector<QuerySpec> bounded =
      Specs(16, DeadlineAfterMicros(kFarFutureMicros));
  std::vector<std::vector<uint64_t>> expected(unbounded.size());
  std::vector<std::vector<uint64_t>> actual(bounded.size());
  ASSERT_TRUE(index.BatchQuery(unbounded, expected.data()).ok());
  ASSERT_TRUE(index.BatchQuery(bounded, actual.data()).ok());
  EXPECT_EQ(actual, expected);

  std::vector<TopKQuery> plain, dated;
  for (size_t j = 0; j < 8; ++j) {
    const size_t pick = (j * 53) % corpus_->size();
    plain.push_back(TopKQuery{&sketches_[pick], corpus_->domain(pick).size()});
    dated.push_back(TopKQuery{&sketches_[pick], corpus_->domain(pick).size(),
                              DeadlineAfterMicros(kFarFutureMicros)});
  }
  std::vector<std::vector<TopKResult>> ranked_plain(plain.size());
  std::vector<std::vector<TopKResult>> ranked_dated(dated.size());
  ASSERT_TRUE(index.BatchSearch(plain, 5, ranked_plain.data()).ok());
  ASSERT_TRUE(index.BatchSearch(dated, 5, ranked_dated.data()).ok());
  EXPECT_EQ(ranked_dated, ranked_plain);
}

TEST_F(DeadlineTest, StatsOverloadReportsGatherSplitAndProbes) {
  auto index = ShardedEnsemble::Create(ShardOptions(3), family_).value();
  Fill(&index, corpus_->size());

  const std::vector<QuerySpec> specs = Specs(12, 0);
  std::vector<std::vector<uint64_t>> plain(specs.size());
  std::vector<std::vector<uint64_t>> with_stats(specs.size());
  std::vector<QueryStats> stats(specs.size());
  ASSERT_TRUE(index.BatchQuery(specs, plain.data()).ok());
  ASSERT_TRUE(index.BatchQuery(specs, with_stats.data(), stats.data()).ok());
  EXPECT_EQ(with_stats, plain);  // collecting stats never changes results

  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(stats[i].shards_gathered, 3u) << "query " << i;
    EXPECT_EQ(stats[i].shards_skipped, 0u) << "query " << i;
    EXPECT_GT(stats[i].partitions_probed + stats[i].partitions_pruned, 0u)
        << "query " << i;
  }
}

// Partial-results mode cannot un-expire an already-expired deadline: with
// every shard skipped there is nothing to gather, so the batch still
// fails with DeadlineExceeded (partial mode returns OK only when at
// least one shard finished).
TEST_F(DeadlineTest, PartialModeStillFailsWhenNothingGathers) {
  ShardedEnsembleOptions options = ShardOptions(3);
  options.partial_results = true;
  auto index = ShardedEnsemble::Create(options, family_).value();
  Fill(&index, 100);
  const std::vector<QuerySpec> expired = Specs(6, kExpired);
  std::vector<std::vector<uint64_t>> outs(expired.size());
  std::vector<QueryStats> stats(expired.size());
  EXPECT_TRUE(index.BatchQuery(expired, outs.data(), stats.data())
                  .IsDeadlineExceeded());
  // And a future deadline gathers everything, flagging nothing.
  const std::vector<QuerySpec> specs =
      Specs(6, DeadlineAfterMicros(kFarFutureMicros));
  ASSERT_TRUE(index.BatchQuery(specs, outs.data(), stats.data()).ok());
  for (const QueryStats& s : stats) {
    EXPECT_EQ(s.shards_gathered, 3u);
    EXPECT_EQ(s.shards_skipped, 0u);
  }
}

// ------------------------------------------------- admission control

TEST_F(DeadlineTest, AdmissionShedsAtTheBoundAndRecovers) {
  ShardedEnsembleOptions options = ShardOptions(2);
  options.max_in_flight_batches = 2;
  auto index = ShardedEnsemble::Create(options, family_).value();
  Fill(&index, 100);
  const std::vector<QuerySpec> specs = Specs(8, 0);
  std::vector<std::vector<uint64_t>> baseline(specs.size());
  ASSERT_TRUE(index.BatchQuery(specs, baseline.data()).ok());

  auto slot1 = index.TryAdmit();
  ASSERT_TRUE(slot1.ok());
  auto slot2 = index.TryAdmit();
  ASSERT_TRUE(slot2.ok());
  EXPECT_EQ(index.in_flight_batches(), 2u);

  // At capacity: explicit admission and both serving entry points shed.
  const auto shed = index.TryAdmit();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable());
  EXPECT_NE(shed.status().message().find("capacity"), std::string::npos);
  std::vector<std::vector<uint64_t>> outs(specs.size());
  EXPECT_TRUE(index.BatchQuery(specs, outs.data()).IsUnavailable());
  std::vector<TopKQuery> topk = {
      TopKQuery{&sketches_[0], corpus_->domain(0).size()}};
  std::vector<TopKResult> ranked;
  EXPECT_TRUE(index.BatchSearch(topk, 3, &ranked).IsUnavailable());

  // Releasing one slot readmits, and the admitted batch is byte-identical
  // to the unloaded baseline — shedding around it left no trace.
  slot1.value() = ShardedEnsemble::AdmissionSlot();
  EXPECT_EQ(index.in_flight_batches(), 1u);
  ASSERT_TRUE(index.BatchQuery(specs, outs.data()).ok());
  EXPECT_EQ(outs, baseline);
  EXPECT_EQ(index.in_flight_batches(), 1u);  // the call released its slot
}

TEST_F(DeadlineTest, UnboundedAdmissionCountsNothing) {
  auto index = ShardedEnsemble::Create(ShardOptions(2), family_).value();
  Fill(&index, 40);
  auto slot = index.TryAdmit();
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(index.in_flight_batches(), 0u);  // slots only count under a bound
}

// The descent re-enters the scatter path every round; it must run under
// ONE admission covering the whole search, so a bound of 1 completes
// instead of self-deadlocking on its own slot.
TEST_F(DeadlineTest, BatchSearchCompletesUnderBoundOfOne) {
  ShardedEnsembleOptions bounded = ShardOptions(2);
  bounded.max_in_flight_batches = 1;
  auto index = ShardedEnsemble::Create(bounded, family_).value();
  auto reference = ShardedEnsemble::Create(ShardOptions(2), family_).value();
  Fill(&index, corpus_->size());
  Fill(&reference, corpus_->size());

  std::vector<TopKQuery> queries;
  for (size_t j = 0; j < 12; ++j) {
    const size_t pick = (j * 41) % corpus_->size();
    queries.push_back(
        TopKQuery{&sketches_[pick], corpus_->domain(pick).size()});
  }
  std::vector<std::vector<TopKResult>> expected(queries.size());
  std::vector<std::vector<TopKResult>> actual(queries.size());
  ASSERT_TRUE(reference.BatchSearch(queries, 5, expected.data()).ok());
  ASSERT_TRUE(index.BatchSearch(queries, 5, actual.data()).ok());
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(index.in_flight_batches(), 0u);
}

TEST_F(DeadlineTest, MovedSlotReleasesExactlyOnce) {
  ShardedEnsembleOptions options = ShardOptions(2);
  options.max_in_flight_batches = 1;
  auto index = ShardedEnsemble::Create(options, family_).value();
  {
    auto slot = index.TryAdmit();
    ASSERT_TRUE(slot.ok());
    ShardedEnsemble::AdmissionSlot moved = std::move(slot).value();
    EXPECT_EQ(index.in_flight_batches(), 1u);  // the move didn't release
    ShardedEnsemble::AdmissionSlot moved_again(std::move(moved));
    EXPECT_EQ(index.in_flight_batches(), 1u);
  }
  EXPECT_EQ(index.in_flight_batches(), 0u);  // one release at scope exit
  EXPECT_TRUE(index.TryAdmit().ok());
}

}  // namespace
}  // namespace lshensemble
