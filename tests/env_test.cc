// The Env seam and its fault-injection implementation. The contract
// under test: WritableFile::Append gives all-or-error semantics over
// arbitrarily hostile raw writes (EINTR storms, short writes, a filling
// disk), WriteFileAtomic never leaves a torn destination no matter which
// step fails, and FaultInjectionEnv's two-level durability model (data
// on fsync, entries on directory fsync or eagerly) drops exactly the
// un-synced state at LosePower().

#include "io/env.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "io/fault_env.h"
#include "io/file.h"
#include "test_tmp.h"

namespace lshensemble {
namespace {

using Op = FaultInjectionEnv::Op;
using MetadataDurability = FaultInjectionEnv::MetadataDurability;

std::string ReadAll(Env& env, const std::string& path) {
  std::string out;
  EXPECT_TRUE(env.ReadFileToString(path, &out).ok()) << path;
  return out;
}

TEST(ParentDirectoryTest, SplitsOnLastSlash) {
  EXPECT_EQ(ParentDirectory("a/b/c.bin"), "a/b");
  EXPECT_EQ(ParentDirectory("a/c.bin"), "a");
  EXPECT_EQ(ParentDirectory("c.bin"), ".");
}

// ------------------------------------------------ fault env: data plane

TEST(FaultEnvTest, AppendRetriesEintrToCompletion) {
  FaultInjectionEnv env;
  env.InjectEintr(3);
  auto file = env.NewWritableFile("f").value();
  ASSERT_TRUE(file->Append("hello world").ok());
  ASSERT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadAll(env, "f"), "hello world");
}

TEST(FaultEnvTest, AppendContinuesAfterShortWrites) {
  FaultInjectionEnv env;
  env.set_short_write_cap(3);
  const uint64_t before = env.mutating_op_count();
  auto file = env.NewWritableFile("f").value();
  ASSERT_TRUE(file->Append("0123456789").ok());
  ASSERT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadAll(env, "f"), "0123456789");
  // 1 open + ceil(10/3) = 4 raw writes: the continuation loop really did
  // go around, it didn't get one lucky full write.
  EXPECT_EQ(env.mutating_op_count() - before, 5u);
}

TEST(FaultEnvTest, WriteBudgetActsLikeFillingDisk) {
  FaultInjectionEnv env;
  env.SetWriteBudget(4);
  auto file = env.NewWritableFile("f").value();
  const Status status = file->Append("abcdefgh");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIOError());
  EXPECT_NE(status.message().find("No space"), std::string::npos);
  // The boundary-crossing write lands short first, like a real disk.
  EXPECT_EQ(ReadAll(env, "f"), "abcd");
}

TEST(FaultEnvTest, FailNthTargetsOneOpClass) {
  FaultInjectionEnv env;
  env.FailNth(Op::kSync, 1, Status::IOError("sync boom"));
  auto file = env.NewWritableFile("f").value();
  ASSERT_TRUE(file->Append("data").ok());  // writes unaffected
  const Status sync = file->Sync();
  ASSERT_FALSE(sync.ok());
  EXPECT_NE(sync.message().find("sync boom"), std::string::npos);
  EXPECT_TRUE(file->Sync().ok());  // the script fired once and is gone
}

TEST(FaultEnvTest, FailNthCountsOccurrences) {
  FaultInjectionEnv env;
  env.FailNth(Op::kWrite, 2, Status::IOError("second write boom"));
  auto file = env.NewWritableFile("f").value();
  ASSERT_TRUE(file->Append("one").ok());
  EXPECT_FALSE(file->Append("two").ok());
  EXPECT_EQ(ReadAll(env, "f"), "one");
}

TEST(FaultEnvTest, RenameOfMissingSourceFails) {
  FaultInjectionEnv env;
  EXPECT_TRUE(env.RenameFile("nope", "somewhere").IsIOError());
  EXPECT_FALSE(env.FileExists("somewhere"));
  std::string out;
  EXPECT_TRUE(env.ReadFileToString("nope", &out).IsNotFound());
}

TEST(FaultEnvTest, ListDirectoryStripsPrefixAndSorts) {
  FaultInjectionEnv env;
  for (const char* name : {"d/b", "d/a", "d/c", "other/x"}) {
    auto file = env.NewWritableFile(name).value();
    ASSERT_TRUE(file->Close().ok());
  }
  const std::vector<std::string> entries = env.ListDirectory("d").value();
  EXPECT_EQ(entries, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(FaultEnvTest, OpenMappedServesLiveBytes) {
  FaultInjectionEnv env;
  auto file = env.NewWritableFile("f").value();
  ASSERT_TRUE(file->Append("mapped bytes").ok());
  ASSERT_TRUE(file->Close().ok());
  const MappedFile mapped = env.OpenMapped("f").value();
  EXPECT_EQ(mapped.data(), "mapped bytes");
  EXPECT_TRUE(env.OpenMapped("missing").status().IsNotFound());
}

// ------------------------------------------- fault env: durability plane

TEST(FaultEnvTest, UnsyncedDataDoesNotSurviveLosePower) {
  for (const auto mode :
       {MetadataDurability::kStrictDirSync, MetadataDurability::kEager}) {
    SCOPED_TRACE(mode == MetadataDurability::kEager ? "eager" : "strict");
    FaultInjectionEnv env;
    env.set_metadata_durability(mode);
    auto file = env.NewWritableFile("d/f").value();
    ASSERT_TRUE(file->Append("never synced").ok());
    ASSERT_TRUE(file->Close().ok());
    env.LosePower();
    if (mode == MetadataDurability::kEager) {
      // Journaling metadata commits the entry ahead of the data: the file
      // exists, empty — exactly the torn state crash-safe code must expect.
      ASSERT_TRUE(env.FileExists("d/f"));
      EXPECT_EQ(ReadAll(env, "d/f"), "");
    } else {
      // The entry was never directory-fsynced: the file is simply gone.
      EXPECT_FALSE(env.FileExists("d/f"));
    }
  }
}

TEST(FaultEnvTest, SyncPlusDirSyncMakesFileDurable) {
  for (const auto mode :
       {MetadataDurability::kStrictDirSync, MetadataDurability::kEager}) {
    SCOPED_TRACE(mode == MetadataDurability::kEager ? "eager" : "strict");
    FaultInjectionEnv env;
    env.set_metadata_durability(mode);
    auto file = env.NewWritableFile("d/f").value();
    ASSERT_TRUE(file->Append("durable").ok());
    ASSERT_TRUE(file->Sync().ok());
    ASSERT_TRUE(file->Close().ok());
    ASSERT_TRUE(env.SyncDirectory("d").ok());
    env.LosePower();
    EXPECT_EQ(ReadAll(env, "d/f"), "durable");
  }
}

TEST(FaultEnvTest, CutPowerFailsEverySubsequentOp) {
  FaultInjectionEnv env;
  env.CutPowerAfterOps(1);
  auto file = env.NewWritableFile("f").value();  // op 1: allowed
  const Status write = file->Append("x");        // op 2: the cut
  ASSERT_FALSE(write.ok());
  EXPECT_NE(write.message().find("power"), std::string::npos);
  EXPECT_FALSE(env.RenameFile("f", "g").ok());  // stays down until reboot
  env.LosePower();
  EXPECT_FALSE(env.FileExists("f"));  // nothing was durable
  auto after = env.NewWritableFile("f");  // the reboot reads a healthy disk
  ASSERT_TRUE(after.ok());
}

// --------------------------------------------------- WriteFileAtomic

TEST(WriteFileAtomicTest, CommitsAndCleansTemp) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteFileAtomic(&env, "d/f", "v1").ok());
  ASSERT_TRUE(WriteFileAtomic(&env, "d/f", "v2").ok());
  EXPECT_EQ(ReadAll(env, "d/f"), "v2");
  EXPECT_FALSE(env.FileExists("d/f.tmp"));
  env.LosePower();  // the full protocol syncs data and directory
  EXPECT_EQ(ReadAll(env, "d/f"), "v2");
}

TEST(WriteFileAtomicTest, FailureLeavesOldContentsAndNoTemp) {
  // Every step before the rename: a failure aborts the save with the old
  // contents untouched and the temp file cleaned up.
  const struct {
    Op op;
    const char* label;
  } kFailures[] = {{Op::kOpenWrite, "open"},
                   {Op::kWrite, "write"},
                   {Op::kSync, "sync"},
                   {Op::kRename, "rename"}};
  for (const auto& failure : kFailures) {
    SCOPED_TRACE(failure.label);
    FaultInjectionEnv env;
    ASSERT_TRUE(WriteFileAtomic(&env, "d/f", "old").ok());
    env.FailNth(failure.op, 1, Status::IOError("injected"));
    EXPECT_FALSE(WriteFileAtomic(&env, "d/f", "new").ok());
    env.ClearFaults();
    EXPECT_EQ(ReadAll(env, "d/f"), "old");
    EXPECT_FALSE(env.FileExists("d/f.tmp"));
  }

  // After the rename the new image IS the file; a failed directory fsync
  // still reports an error (durability was not achieved) but the live
  // contents are the complete new bytes — never a torn mix.
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteFileAtomic(&env, "d/f", "old").ok());
  env.FailNth(Op::kDirSync, 1, Status::IOError("injected"));
  EXPECT_FALSE(WriteFileAtomic(&env, "d/f", "new").ok());
  env.ClearFaults();
  EXPECT_EQ(ReadAll(env, "d/f"), "new");
  EXPECT_FALSE(env.FileExists("d/f.tmp"));
}

TEST(WriteFileAtomicTest, EnospcMidImageLeavesOldContents) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteFileAtomic(&env, "d/f", "old image").ok());
  // The first save already consumed the budget: the re-save hits ENOSPC
  // on its first raw write and must roll back cleanly.
  env.SetWriteBudget(4);
  EXPECT_FALSE(WriteFileAtomic(&env, "d/f", std::string(64, 'n')).ok());
  env.ClearFaults();
  EXPECT_EQ(ReadAll(env, "d/f"), "old image");
  EXPECT_FALSE(env.FileExists("d/f.tmp"));
}

// ----------------------------------------------------- the default Env

TEST(DefaultEnvTest, RoundTripsThroughRealFiles) {
  Env* env = Env::Default();
  const std::string dir = ProcessTempPath("env_default");
  ASSERT_TRUE(env->CreateDirectories(dir + "/nested").ok());
  const std::string path = dir + "/nested/file.bin";
  ASSERT_TRUE(WriteFileAtomic(env, path, "real bytes").ok());
  EXPECT_TRUE(env->FileExists(path));

  std::string read_back;
  ASSERT_TRUE(env->ReadFileToString(path, &read_back).ok());
  EXPECT_EQ(read_back, "real bytes");

  const MappedFile mapped = env->OpenMapped(path).value();
  EXPECT_EQ(mapped.data(), "real bytes");

  std::vector<std::string> entries =
      env->ListDirectory(dir + "/nested").value();
  EXPECT_EQ(entries, std::vector<std::string>{"file.bin"});

  ASSERT_TRUE(env->RenameFile(path, dir + "/nested/renamed.bin").ok());
  EXPECT_FALSE(env->FileExists(path));
  ASSERT_TRUE(env->RemoveFileIfExists(dir + "/nested/renamed.bin").ok());
  ASSERT_TRUE(env->RemoveFileIfExists(dir + "/nested/renamed.bin").ok());
  EXPECT_TRUE(env->ReadFileToString(path, &read_back).IsNotFound());
  ASSERT_TRUE(env->SyncDirectory(dir + "/nested").ok());
}

TEST(DefaultEnvTest, WritableFileAppendAndSync) {
  Env* env = Env::Default();
  const std::string path = ProcessTempPath("env_default_writable.bin");
  auto file = env->NewWritableFile(path).value();
  ASSERT_TRUE(file->Append("part one, ").ok());
  ASSERT_TRUE(file->Append("part two").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());
  ASSERT_TRUE(file->Close().ok());  // idempotent

  std::string read_back;
  ASSERT_TRUE(env->ReadFileToString(path, &read_back).ok());
  EXPECT_EQ(read_back, "part one, part two");
  ASSERT_TRUE(env->RemoveFileIfExists(path).ok());
}

}  // namespace
}  // namespace lshensemble
