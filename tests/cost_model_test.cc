#include "core/cost_model.h"

#include <gtest/gtest.h>

namespace lshensemble {
namespace {

TEST(CostModelTest, Equation16Value) {
  // M = N * (u - l + 1) / (2u) with u the largest size in [lower, upper).
  const PartitionSpec partition{10, 101, 500};  // sizes 10..100
  EXPECT_NEAR(FalsePositiveBound(partition), 500.0 * (100 - 10 + 1) / 200.0,
              1e-12);
}

TEST(CostModelTest, SingletonIntervalCost) {
  // A partition holding one size s has width 1: M = N / (2s).
  const PartitionSpec partition{50, 51, 300};
  EXPECT_NEAR(FalsePositiveBound(partition), 300.0 / 100.0, 1e-12);
}

TEST(CostModelTest, BoundIsMonotoneInUpperBound) {
  double previous = 0.0;
  for (uint64_t upper = 11; upper <= 100; ++upper) {
    const PartitionSpec partition{10, upper, 100};
    const double bound = FalsePositiveBound(partition);
    EXPECT_GE(bound, previous - 1e-12) << "upper=" << upper;
    previous = bound;
  }
}

TEST(CostModelTest, BoundIsMonotoneInLowerBound) {
  // Decreasing l (widening left) increases the bound.
  double previous = 0.0;
  for (uint64_t lower = 99; lower >= 10; --lower) {
    const PartitionSpec partition{lower, 101, 100};
    const double bound = FalsePositiveBound(partition);
    EXPECT_GE(bound, previous - 1e-12) << "lower=" << lower;
    previous = bound;
  }
}

TEST(CostModelTest, BoundScalesLinearlyWithCount) {
  const PartitionSpec small{10, 101, 100};
  const PartitionSpec large{10, 101, 1000};
  EXPECT_NEAR(FalsePositiveBound(large), 10.0 * FalsePositiveBound(small),
              1e-9);
}

TEST(CostModelTest, ExpectedFpApproachesBoundForSmallQueries) {
  // Eq. 14/15: exact denominator is 2(u + q); as q/u -> 0 it tends to the
  // query-independent bound.
  const PartitionSpec partition{10, 1001, 500};
  const double bound = FalsePositiveBound(partition);
  EXPECT_LT(ExpectedFalsePositives(partition, 100.0), bound);
  EXPECT_NEAR(ExpectedFalsePositives(partition, 1.0), bound, bound * 0.01);
}

TEST(CostModelTest, PartitioningCostIsMax) {
  const std::vector<PartitionSpec> partitions = {
      {10, 101, 100},    // M = 100*91/200 = 45.5
      {101, 201, 10},    // M = 10*100/400 = 2.5
      {201, 1001, 400},  // M = 400*800/2000 = 160
  };
  EXPECT_NEAR(PartitioningCost(partitions), 160.0, 1e-9);
}

TEST(CostModelTest, EmptyPartitioningCostsZero) {
  EXPECT_EQ(PartitioningCost({}), 0.0);
}

TEST(CostModelTest, WholeIntervalBoundApproachesHalfN) {
  // For l=1, u large: M ~ N * u / (2u) = N/2 — the "no partitioning" cost
  // the paper's partitioning attacks.
  const PartitionSpec whole{1, 1000001, 1000};
  EXPECT_NEAR(FalsePositiveBound(whole), 500.0, 1.0);
}

}  // namespace
}  // namespace lshensemble
