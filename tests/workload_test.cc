#include "workload/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/math.h"

namespace lshensemble {
namespace {

CorpusGenOptions SmallOptions() {
  CorpusGenOptions options;
  options.num_domains = 3000;
  options.min_size = 10;
  options.max_size = 10000;
  options.seed = 99;
  return options;
}

TEST(CorpusGeneratorTest, OptionsValidation) {
  CorpusGenOptions options = SmallOptions();
  options.num_domains = 0;
  EXPECT_FALSE(CorpusGenerator(options).Generate().ok());
  options = SmallOptions();
  options.alpha = 1.0;
  EXPECT_FALSE(CorpusGenerator(options).Generate().ok());
  options = SmallOptions();
  options.max_size = 5;  // < min_size
  EXPECT_FALSE(CorpusGenerator(options).Generate().ok());
  options = SmallOptions();
  options.max_size = 1ULL << 25;  // over the 2^24 pool-offset space
  EXPECT_FALSE(CorpusGenerator(options).Generate().ok());
  options = SmallOptions();
  options.min_fraction = 1.0;
  EXPECT_FALSE(CorpusGenerator(options).Generate().ok());
  options = SmallOptions();
  options.domains_per_pool = 0;
  EXPECT_FALSE(CorpusGenerator(options).Generate().ok());
}

TEST(CorpusGeneratorTest, DeterministicPerSeed) {
  auto a = CorpusGenerator(SmallOptions()).Generate().value();
  auto b = CorpusGenerator(SmallOptions()).Generate().value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a.domain(i).values, b.domain(i).values) << "domain " << i;
  }
  CorpusGenOptions other_seed = SmallOptions();
  other_seed.seed = 100;
  auto c = CorpusGenerator(other_seed).Generate().value();
  bool any_different = false;
  for (size_t i = 0; i < a.size(); i += 97) {
    any_different |= (a.domain(i).values != c.domain(i).values);
  }
  EXPECT_TRUE(any_different);
}

TEST(CorpusGeneratorTest, SizesWithinBoundsAndDistinctValues) {
  auto corpus = CorpusGenerator(SmallOptions()).Generate().value();
  ASSERT_EQ(corpus.size(), 3000u);
  for (size_t i = 0; i < corpus.size(); i += 37) {
    const Domain& domain = corpus.domain(i);
    EXPECT_GE(domain.size(), 10u);
    EXPECT_LE(domain.size(), 10000u);
    // FromValues guarantees sorted distinct.
    EXPECT_TRUE(
        std::is_sorted(domain.values.begin(), domain.values.end()));
    EXPECT_EQ(std::adjacent_find(domain.values.begin(), domain.values.end()),
              domain.values.end());
  }
}

TEST(CorpusGeneratorTest, SizeDistributionIsRightSkewed) {
  auto corpus = CorpusGenerator(SmallOptions()).Generate().value();
  EXPECT_GT(corpus.SizeSkewness(), 1.0);
  // Median far below mean — heavy tail.
  auto sizes = corpus.Sizes();
  std::sort(sizes.begin(), sizes.end());
  const double median = static_cast<double>(sizes[sizes.size() / 2]);
  double mean = 0;
  for (uint64_t s : sizes) mean += static_cast<double>(s);
  mean /= static_cast<double>(sizes.size());
  EXPECT_GT(mean, 1.5 * median);
}

TEST(CorpusGeneratorTest, ContainmentSpectrumCovered) {
  // Within a pool, E[t(Q, X)] = |X| / pool size; check that high-threshold
  // ground truth is non-empty for a reasonable share of queries.
  auto corpus = CorpusGenerator(SmallOptions()).Generate().value();
  size_t queries_with_high_containment = 0;
  const size_t pool = 32;  // domains_per_pool default
  for (size_t q = 0; q < 300; ++q) {
    const Domain& query = corpus.domain(q);
    const size_t pool_start = (q / pool) * pool;
    for (size_t other = pool_start;
         other < std::min(pool_start + pool, corpus.size()); ++other) {
      if (other == q) continue;
      if (query.ContainmentIn(corpus.domain(other)) >= 0.7) {
        ++queries_with_high_containment;
        break;
      }
    }
  }
  EXPECT_GT(queries_with_high_containment, 100u);
}

TEST(CorpusGeneratorTest, CrossPoolValuesDisjoint) {
  auto corpus = CorpusGenerator(SmallOptions()).Generate().value();
  // Domains from different pools never share values (disjoint ranges).
  const Domain& a = corpus.domain(0);    // pool 0
  const Domain& b = corpus.domain(100);  // pool 3
  EXPECT_EQ(a.IntersectionSize(b), 0u);
}

TEST(MakeQueryWithContainmentTest, ExactOverlap) {
  auto corpus = CorpusGenerator(SmallOptions()).Generate().value();
  Rng rng(7);
  const Domain& target = corpus.domain(42);
  for (double containment : {0.0, 0.25, 0.5, 1.0}) {
    const size_t query_size = std::min<size_t>(target.size(), 40);
    auto query = MakeQueryWithContainment(target, query_size, containment,
                                          9999, rng);
    ASSERT_TRUE(query.ok());
    EXPECT_EQ(query->size(), query_size);
    EXPECT_NEAR(query->ContainmentIn(target), containment,
                1.0 / static_cast<double>(query_size) + 1e-9);
  }
}

TEST(MakeQueryWithContainmentTest, Validation) {
  Domain target = Domain::FromValues(1, "t", {1, 2, 3});
  Rng rng(8);
  EXPECT_FALSE(MakeQueryWithContainment(target, 0, 0.5, 1, rng).ok());
  EXPECT_FALSE(MakeQueryWithContainment(target, 10, 1.5, 1, rng).ok());
  // overlap = 10 > |target| = 3
  EXPECT_FALSE(MakeQueryWithContainment(target, 10, 1.0, 1, rng).ok());
}

TEST(SampleQueryIndicesTest, UniformSamplesDistinct) {
  auto corpus = CorpusGenerator(SmallOptions()).Generate().value();
  auto indices =
      SampleQueryIndices(corpus, 500, QuerySizeBias::kUniform, 1);
  EXPECT_EQ(indices.size(), 500u);
  std::set<size_t> distinct(indices.begin(), indices.end());
  EXPECT_EQ(distinct.size(), 500u);
  for (size_t i : indices) EXPECT_LT(i, corpus.size());
}

TEST(SampleQueryIndicesTest, DecileBiasesRespectSizes) {
  auto corpus = CorpusGenerator(SmallOptions()).Generate().value();
  auto sizes = corpus.Sizes();
  std::sort(sizes.begin(), sizes.end());
  const uint64_t p10 = sizes[sizes.size() / 10];
  const uint64_t p90 = sizes[sizes.size() * 9 / 10];

  auto small = SampleQueryIndices(corpus, 100,
                                  QuerySizeBias::kSmallestDecile, 2);
  for (size_t i : small) {
    EXPECT_LE(corpus.domain(i).size(), p10 + 1);
  }
  auto large =
      SampleQueryIndices(corpus, 100, QuerySizeBias::kLargestDecile, 2);
  for (size_t i : large) {
    EXPECT_GE(corpus.domain(i).size(), p90 - 1);
  }
}

TEST(SampleQueryIndicesTest, RequestBeyondPopulationReturnsAll) {
  auto corpus = CorpusGenerator(SmallOptions()).Generate().value();
  auto all = SampleQueryIndices(corpus, corpus.size() + 100,
                                QuerySizeBias::kUniform, 3);
  EXPECT_EQ(all.size(), corpus.size());
}

TEST(NestedSizeSubsetsTest, NestedAndGrowing) {
  auto corpus = CorpusGenerator(SmallOptions()).Generate().value();
  auto subsets = NestedSizeSubsets(corpus, 20);
  ASSERT_EQ(subsets.size(), 20u);
  for (size_t j = 1; j < subsets.size(); ++j) {
    EXPECT_GE(subsets[j].size(), subsets[j - 1].size());
    // Nested: previous subset contained in the next.
    std::set<size_t> bigger(subsets[j].begin(), subsets[j].end());
    for (size_t i : subsets[j - 1]) {
      EXPECT_TRUE(bigger.count(i)) << "subset " << j;
    }
  }
  EXPECT_EQ(subsets.back().size(), corpus.size());
}

TEST(NestedSizeSubsetsTest, SkewnessIncreasesAcrossSubsets) {
  // The Figure 5 x-axis: expanding size intervals raise skewness.
  auto corpus = CorpusGenerator(SmallOptions()).Generate().value();
  auto subsets = NestedSizeSubsets(corpus, 10);
  std::vector<double> skews;
  for (const auto& subset : subsets) {
    std::vector<double> sizes;
    sizes.reserve(subset.size());
    for (size_t i : subset) {
      sizes.push_back(static_cast<double>(corpus.domain(i).size()));
    }
    skews.push_back(Skewness(sizes));
  }
  EXPECT_LT(skews.front(), skews.back());
  EXPECT_GT(skews.back(), 3.0);
}

}  // namespace
}  // namespace lshensemble
