#!/usr/bin/env python3
"""Unit tests for tools/bench_gate.py.

Exercises the gate as a subprocess (the same surface CI uses): pass /
regression verdicts in relative and absolute mode, the --min-batch filter,
and the row-drift rules — added rows are informational, removed rows are an
explicit error.

Run directly or via ctest (registered as BenchGateTest.Python).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GATE = os.path.join(REPO_ROOT, "tools", "bench_gate.py")


def write_bench(path, rows, bench="throughput"):
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"bench": bench, "rows": rows}, f)


def run_gate(baseline, candidate, *extra):
    return subprocess.run(
        [sys.executable, GATE, "--baseline", baseline,
         "--candidate", candidate, *extra],
        capture_output=True, text=True, check=False)


def row(mode, batch_size, qps, shards=None):
    entry = {"mode": mode, "batch_size": batch_size, "qps": qps}
    if shards is not None:
        entry["shards"] = shards
    return entry


class BenchGateTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.baseline = os.path.join(self.dir.name, "baseline.json")
        self.candidate = os.path.join(self.dir.name, "candidate.json")

    def tearDown(self):
        self.dir.cleanup()

    def test_identical_rows_pass(self):
        rows = [row("batch", 64, 1000.0), row("batch", 4096, 2000.0)]
        write_bench(self.baseline, rows)
        write_bench(self.candidate, rows)
        result = run_gate(self.baseline, self.candidate)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("PASS", result.stdout)

    def test_uniform_speedup_passes_in_relative_mode(self):
        write_bench(self.baseline,
                    [row("batch", 64, 1000.0), row("batch", 4096, 2000.0)])
        write_bench(self.candidate,
                    [row("batch", 64, 3000.0), row("batch", 4096, 6000.0)])
        result = run_gate(self.baseline, self.candidate)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_structural_regression_fails(self):
        write_bench(self.baseline,
                    [row("batch", 64, 1000.0), row("batch", 4096, 2000.0)])
        # The 4096 row collapses relative to the 64 row: a structure change
        # that relative normalization must catch.
        write_bench(self.candidate,
                    [row("batch", 64, 1000.0), row("batch", 4096, 500.0)])
        result = run_gate(self.baseline, self.candidate)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)

    def test_absolute_mode_regression_fails(self):
        write_bench(self.baseline, [row("batch", 64, 1000.0)])
        write_bench(self.candidate, [row("batch", 64, 500.0)])
        result = run_gate(self.baseline, self.candidate, "--mode", "absolute")
        self.assertEqual(result.returncode, 1)

    def test_min_batch_skips_noisy_rows(self):
        write_bench(self.baseline,
                    [row("single", 1, 1000.0), row("batch", 64, 1000.0)])
        # The single-query row tanks, but it is below the gating floor.
        write_bench(self.candidate,
                    [row("single", 1, 10.0), row("batch", 64, 1000.0)])
        result = run_gate(self.baseline, self.candidate, "--min-batch", "2")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("not gated", result.stdout)

    def test_added_row_is_informational(self):
        write_bench(self.baseline, [row("batch", 64, 1000.0)])
        write_bench(self.candidate,
                    [row("batch", 64, 1000.0),
                     row("shard-batch", 4096, 900.0, shards=2)])
        result = run_gate(self.baseline, self.candidate)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("new row", result.stdout)
        self.assertIn("refresh bench/baselines/", result.stdout)

    def test_removed_row_is_an_error(self):
        write_bench(self.baseline,
                    [row("batch", 64, 1000.0),
                     row("shard-batch", 4096, 900.0, shards=2)])
        write_bench(self.candidate, [row("batch", 64, 1000.0)])
        result = run_gate(self.baseline, self.candidate)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REMOVED", result.stderr)
        self.assertIn("missing from the candidate", result.stderr)

    def test_shard_rows_are_keyed_by_shard_count(self):
        # Same mode and batch size at different shard counts must gate
        # independently: a 2-shard candidate row must not be compared
        # against the 4-shard baseline row.
        write_bench(self.baseline,
                    [row("shard-batch", 4096, 1000.0, shards=2),
                     row("shard-batch", 4096, 2000.0, shards=4)])
        write_bench(self.candidate,
                    [row("shard-batch", 4096, 1000.0, shards=2),
                     row("shard-batch", 4096, 2000.0, shards=4)])
        result = run_gate(self.baseline, self.candidate)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("2 gated rows", result.stdout)

    def test_bench_name_mismatch_fails(self):
        write_bench(self.baseline, [row("batch", 64, 1000.0)], bench="a")
        write_bench(self.candidate, [row("batch", 64, 1000.0)], bench="b")
        result = run_gate(self.baseline, self.candidate)
        self.assertNotEqual(result.returncode, 0)

    def test_empty_candidate_fails(self):
        write_bench(self.baseline, [row("batch", 64, 1000.0)])
        write_bench(self.candidate, [])
        result = run_gate(self.baseline, self.candidate)
        self.assertNotEqual(result.returncode, 0)


if __name__ == "__main__":
    unittest.main()
