#include "baselines/asym_minhash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/minhash_lsh_baseline.h"
#include "minhash/minhash.h"
#include "util/random.h"

namespace lshensemble {
namespace {

std::shared_ptr<const HashFamily> Family(int m = 256, uint64_t seed = 14) {
  return HashFamily::Create(m, seed).value();
}

TEST(SamplePadMinimumTest, ZeroPadIsNeutral) {
  EXPECT_EQ(SamplePadMinimum(1, 2, 3, 0), HashFamily::kMaxHash);
}

TEST(SamplePadMinimumTest, Deterministic) {
  EXPECT_EQ(SamplePadMinimum(1, 2, 3, 100), SamplePadMinimum(1, 2, 3, 100));
  EXPECT_NE(SamplePadMinimum(1, 2, 3, 100), SamplePadMinimum(1, 2, 4, 100));
  EXPECT_NE(SamplePadMinimum(1, 3, 3, 100), SamplePadMinimum(1, 2, 3, 100));
}

TEST(SamplePadMinimumTest, MeanMatchesOrderStatistic) {
  // E[min of p uniforms] = max_hash / (p + 1).
  for (uint64_t p : {1ULL, 10ULL, 1000ULL}) {
    double sum = 0.0;
    constexpr int kTrials = 20000;
    for (int trial = 0; trial < kTrials; ++trial) {
      sum += static_cast<double>(
          SamplePadMinimum(99, static_cast<uint64_t>(trial), 0, p));
    }
    const double mean = sum / kTrials;
    const double expected =
        static_cast<double>(HashFamily::kMaxHash) / static_cast<double>(p + 1);
    // stderr of the mean ~ expected / sqrt(kTrials) * ~1; allow 10%.
    EXPECT_NEAR(mean, expected, expected * 0.10) << "p=" << p;
  }
}

TEST(SamplePadMinimumTest, LargePadDrivesMinTowardZero) {
  // Padding mass dominates the signature for large p (the recall-collapse
  // mechanism of appendix Figure 10).
  double sum = 0.0;
  for (int trial = 0; trial < 1000; ++trial) {
    sum += static_cast<double>(SamplePadMinimum(7, trial, 1, 1000000));
  }
  EXPECT_LT(sum / 1000.0, static_cast<double>(HashFamily::kMaxHash) * 1e-4);
}

TEST(AsymMinhashBuilderTest, Validation) {
  auto family = Family();
  AsymMinhashOptions options;
  options.tree_depth = 7;  // does not divide 256
  {
    AsymMinhash::Builder builder(options, family);
    auto sketch = MinHash::FromValues(family, std::vector<uint64_t>{1});
    ASSERT_TRUE(builder.Add(1, 1, sketch).ok());
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
  {
    AsymMinhash::Builder builder(AsymMinhashOptions{}, family);
    EXPECT_FALSE(std::move(builder).Build().ok());  // empty
  }
  {
    AsymMinhash::Builder builder(AsymMinhashOptions{}, family);
    EXPECT_FALSE(builder.Add(1, 0, MinHash(family)).ok());  // zero size
    auto foreign =
        MinHash::FromValues(Family(256, 999), std::vector<uint64_t>{1});
    EXPECT_FALSE(builder.Add(1, 1, foreign).ok());
  }
}

TEST(AsymMinhashTest, PaddedSizeIsMaxDomainSize) {
  auto family = Family();
  AsymMinhash::Builder builder(AsymMinhashOptions{}, family);
  Rng rng(3);
  for (uint64_t id = 0; id < 50; ++id) {
    const size_t size = 10 + rng.NextBounded(500);
    std::vector<uint64_t> values(size);
    for (auto& v : values) v = rng.Next();
    ASSERT_TRUE(
        builder.Add(id, size, MinHash::FromValues(family, values)).ok());
  }
  std::vector<uint64_t> big(2000);
  for (auto& v : big) v = rng.Next();
  ASSERT_TRUE(builder.Add(99, 2000, MinHash::FromValues(family, big)).ok());
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->padded_size(), 2000u);
  EXPECT_EQ(index->size(), 51u);
}

TEST(AsymMinhashTest, FindsContainedDomainWhenSkewIsLow) {
  // With little skew (all domains near the max size), padding is light and
  // Asym behaves well — the regime where Shrivastava & Li shine.
  auto family = Family();
  AsymMinhash::Builder builder(AsymMinhashOptions{}, family);
  Rng rng(15);
  std::vector<uint64_t> base(1000);
  for (auto& v : base) v = rng.Next();
  // Domain 0: the query's superset. Others: same size, disjoint.
  ASSERT_TRUE(
      builder.Add(0, base.size(), MinHash::FromValues(family, base)).ok());
  for (uint64_t id = 1; id < 40; ++id) {
    std::vector<uint64_t> other(1000);
    for (auto& v : other) v = rng.Next();
    ASSERT_TRUE(
        builder.Add(id, other.size(), MinHash::FromValues(family, other))
            .ok());
  }
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());

  // Query: 500 of domain 0's values -> containment 1.0 in domain 0.
  std::vector<uint64_t> query_values(base.begin(), base.begin() + 500);
  auto query = MinHash::FromValues(family, query_values);
  std::vector<uint64_t> out;
  TunedParams tuned;
  ASSERT_TRUE(index->Query(query, 500, 0.7, &out, &tuned).ok());
  EXPECT_NE(std::find(out.begin(), out.end(), 0ULL), out.end())
      << "fully contained domain missed (b=" << tuned.b << ", r=" << tuned.r
      << ")";
}

TEST(AsymMinhashTest, RecallCollapsesUnderHeavySkew) {
  // The paper's core observation (Section 6.1, appendix): one huge domain
  // forces massive padding on everything else; fully-contained small
  // domains then almost never collide with the query.
  auto family = Family();
  AsymMinhash::Builder builder(AsymMinhashOptions{}, family);
  Rng rng(16);

  // 30 small target domains of size 60, each fully containing one query.
  std::vector<std::vector<uint64_t>> targets;
  for (uint64_t id = 0; id < 30; ++id) {
    std::vector<uint64_t> values(60);
    for (auto& v : values) v = rng.Next();
    targets.push_back(values);
    ASSERT_TRUE(
        builder.Add(id, values.size(), MinHash::FromValues(family, values))
            .ok());
  }
  // One gigantic domain inducing the skew (M = 200000).
  std::vector<uint64_t> huge(200000);
  for (auto& v : huge) v = rng.Next();
  ASSERT_TRUE(
      builder.Add(1000, huge.size(), MinHash::FromValues(family, huge)).ok());
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->padded_size(), 200000u);

  size_t found = 0;
  for (uint64_t id = 0; id < 30; ++id) {
    std::vector<uint64_t> query_values(targets[id].begin(),
                                       targets[id].begin() + 30);
    auto query = MinHash::FromValues(family, query_values);
    std::vector<uint64_t> out;
    ASSERT_TRUE(index->Query(query, query_values.size(), 0.8, &out).ok());
    if (std::find(out.begin(), out.end(), id) != out.end()) ++found;
  }
  // With padding 199940/200000 of every slot, collision probability is tiny.
  EXPECT_LE(found, 3u) << "expected recall collapse under skew";
}

TEST(AsymMinhashTest, QueryValidation) {
  auto family = Family();
  AsymMinhash::Builder builder(AsymMinhashOptions{}, family);
  auto sketch = MinHash::FromValues(family, std::vector<uint64_t>{1, 2, 3});
  ASSERT_TRUE(builder.Add(1, 3, sketch).ok());
  auto index = std::move(builder).Build();
  ASSERT_TRUE(index.ok());
  std::vector<uint64_t> out;
  EXPECT_FALSE(index->Query(sketch, 3, -0.5, &out).ok());
  EXPECT_FALSE(index->Query(sketch, 3, 0.5, nullptr).ok());
  EXPECT_FALSE(index->Query(MinHash(), 3, 0.5, &out).ok());
}

TEST(MinHashLshBaselineTest, MirrorsSinglePartitionEnsemble) {
  auto family = Family();
  Rng rng(17);
  LshEnsembleOptions options;
  options.num_partitions = 32;  // forced to 1 by the wrapper
  MinHashLshBaseline::Builder builder(options, family);
  std::vector<std::vector<uint64_t>> all_values;
  for (uint64_t id = 0; id < 100; ++id) {
    std::vector<uint64_t> values(20 + rng.NextBounded(200));
    for (auto& v : values) v = rng.Next();
    all_values.push_back(values);
    ASSERT_TRUE(
        builder.Add(id, values.size(), MinHash::FromValues(family, values))
            .ok());
  }
  auto baseline = std::move(builder).Build();
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->inner().partitions().size(), 1u);
  EXPECT_EQ(baseline->size(), 100u);

  auto query = MinHash::FromValues(family, all_values[7]);
  std::vector<uint64_t> out;
  QueryStats stats;
  ASSERT_TRUE(
      baseline->Query(query, all_values[7].size(), 0.9, &out, &stats).ok());
  EXPECT_NE(std::find(out.begin(), out.end(), 7ULL), out.end());
  EXPECT_EQ(stats.partitions_probed, 1u);
}

}  // namespace
}  // namespace lshensemble
