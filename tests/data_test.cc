#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "test_tmp.h"
#include "data/csv.h"
#include "data/domain.h"
#include "data/table.h"

namespace lshensemble {
namespace {

// ----------------------------------------------------------------- domain

TEST(DomainTest, FromValuesDeduplicatesAndSorts) {
  Domain domain = Domain::FromValues(1, "d", {5, 3, 5, 1, 3});
  EXPECT_EQ(domain.values, (std::vector<uint64_t>{1, 3, 5}));
  EXPECT_EQ(domain.size(), 3u);
  EXPECT_EQ(domain.id, 1u);
  EXPECT_EQ(domain.name, "d");
}

TEST(DomainTest, FromStringsHashesDistinctly) {
  const std::vector<std::string> values = {"Ontario", "Toronto", "Ontario"};
  Domain domain = Domain::FromStrings(2, "q", values);
  EXPECT_EQ(domain.size(), 2u);
}

TEST(DomainTest, ContainmentMatchesPaperExample) {
  const std::vector<std::string> q = {"Ontario", "Toronto"};
  const std::vector<std::string> provinces = {"Alberta", "Ontario",
                                              "Manitoba"};
  const std::vector<std::string> locations = {
      "Illinois",    "Chicago",       "New York City", "New York",
      "Nova Scotia", "Halifax",       "California",    "San Francisco",
      "Seattle",     "Washington",    "Ontario",       "Toronto"};
  Domain dq = Domain::FromStrings(0, "Q", q);
  Domain dp = Domain::FromStrings(1, "Provinces", provinces);
  Domain dl = Domain::FromStrings(2, "Locations", locations);

  EXPECT_DOUBLE_EQ(dq.ContainmentIn(dp), 0.5);
  EXPECT_DOUBLE_EQ(dq.ContainmentIn(dl), 1.0);
  EXPECT_NEAR(dq.JaccardWith(dp), 0.25, 1e-12);
  // |Q ∩ L| = 2 and |Q ∪ L| = 12, so Jaccard is 2/12. (The paper's prose
  // quotes 0.083 = 1/12 — an arithmetic slip, since it also reports
  // containment 1.0, which implies an intersection of 2. The qualitative
  // point stands: 0.25 > 2/12, so Jaccard still favours the small
  // Provinces domain.)
  EXPECT_NEAR(dq.JaccardWith(dl), 2.0 / 12.0, 1e-12);
}

TEST(DomainTest, EmptyDomainEdgeCases) {
  Domain empty = Domain::FromValues(0, "e", {});
  Domain other = Domain::FromValues(1, "o", {1});
  EXPECT_EQ(empty.ContainmentIn(other), 0.0);
  EXPECT_EQ(empty.JaccardWith(other), 0.0);
  EXPECT_EQ(empty.IntersectionSize(other), 0u);
}

// ------------------------------------------------------------------ table

TEST(TableTest, NullTokensRecognized) {
  EXPECT_TRUE(IsNullToken(""));
  EXPECT_TRUE(IsNullToken("NULL"));
  EXPECT_TRUE(IsNullToken("null"));
  EXPECT_TRUE(IsNullToken("N/A"));
  EXPECT_TRUE(IsNullToken("-"));
  EXPECT_FALSE(IsNullToken("0"));
  EXPECT_FALSE(IsNullToken("Ontario"));
}

Table MakeGrantsTable() {
  Table table;
  table.name = "grants.csv";
  table.column_names = {"Identifier", "Partner", "Province"};
  table.rows = {
      {"1", "Acme Corp", "Ontario"},
      {"2", "Beta Inc", "Quebec"},
      {"3", "Acme Corp", "NULL"},
      {"4", "", "Ontario"},
  };
  return table;
}

TEST(TableTest, ExtractDomainsProjectsAndDeduplicates) {
  const Table table = MakeGrantsTable();
  const auto domains = ExtractDomains(table, 100);
  ASSERT_EQ(domains.size(), 3u);
  EXPECT_EQ(domains[0].name, "grants.csv:Identifier");
  EXPECT_EQ(domains[0].size(), 4u);
  EXPECT_EQ(domains[1].name, "grants.csv:Partner");
  EXPECT_EQ(domains[1].size(), 2u);  // Acme dedup'd, "" dropped
  EXPECT_EQ(domains[2].name, "grants.csv:Province");
  EXPECT_EQ(domains[2].size(), 2u);  // NULL dropped
  EXPECT_EQ(domains[0].id, 100u);
  EXPECT_EQ(domains[2].id, 102u);
}

TEST(TableTest, MinDomainSizeFilters) {
  const Table table = MakeGrantsTable();
  ExtractOptions options;
  options.min_domain_size = 3;
  const auto domains = ExtractDomains(table, 0, options);
  ASSERT_EQ(domains.size(), 1u);  // only Identifier has >= 3 distinct
  EXPECT_EQ(domains[0].name, "grants.csv:Identifier");
}

TEST(TableTest, KeepNullsWhenDisabled) {
  const Table table = MakeGrantsTable();
  ExtractOptions options;
  options.skip_null_tokens = false;
  const auto domains = ExtractDomains(table, 0, options);
  EXPECT_EQ(domains[1].size(), 3u);  // "", Acme, Beta
}

// -------------------------------------------------------------------- csv

TEST(CsvTest, BasicParse) {
  auto table = ParseCsv("a,b,c\n1,2,3\n4,5,6\n", "t.csv");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column_names, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->rows[1][2], "6");
}

TEST(CsvTest, QuotedFieldsAndEscapedQuotes) {
  auto table = ParseCsv(
      "name,quote\n\"Acme, Corp\",\"she said \"\"hi\"\"\"\nplain,ok\n",
      "q.csv");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->rows[0][0], "Acme, Corp");
  EXPECT_EQ(table->rows[0][1], "she said \"hi\"");
}

TEST(CsvTest, QuotedNewlineInsideField) {
  auto table = ParseCsv("a,b\n\"line1\nline2\",x\n", "n.csv");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->rows[0][0], "line1\nline2");
}

TEST(CsvTest, CrlfAndMissingTrailingNewline) {
  auto table = ParseCsv("a,b\r\n1,2\r\n3,4", "crlf.csv");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->rows[1][1], "4");
}

TEST(CsvTest, ShortRowsPaddedLongRowsRejected) {
  auto padded = ParseCsv("a,b,c\n1,2\n", "p.csv");
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded->rows[0][2], "");
  auto overflow = ParseCsv("a,b\n1,2,3\n", "o.csv");
  EXPECT_FALSE(overflow.ok());
}

TEST(CsvTest, NoHeaderMode) {
  CsvOptions options;
  options.has_header = false;
  auto table = ParseCsv("1,2\n3,4\n", "nh.csv", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column_names, (std::vector<std::string>{"col0", "col1"}));
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto table = ParseCsv("a;b\n1;2\n", "d.csv", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  EXPECT_FALSE(ParseCsv("a,b\n\"oops,2\n", "bad.csv").ok());
}

TEST(CsvTest, EmptyInput) {
  auto table = ParseCsv("", "empty.csv");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_EQ(table->num_columns(), 0u);
}

TEST(CsvTest, ReadFileRoundTrip) {
  const std::string path = ProcessTempPath("lshe_csv_test.csv");
  {
    std::ofstream file(path);
    file << "Partner,Province\nAcme,Ontario\nBeta,Quebec\n";
  }
  auto table = ReadCsvFile(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->name, "lshe_csv_test.csv");
  EXPECT_EQ(table->num_rows(), 2u);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsvFile(path).ok());
}

// ----------------------------------------------------------------- corpus

TEST(CorpusTest, SizesAndStats) {
  Corpus corpus;
  corpus.Add(Domain::FromValues(0, "a", {1, 2, 3}));
  corpus.Add(Domain::FromValues(1, "b", {1}));
  corpus.Add(Domain::FromValues(2, "c", {1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus.Sizes(), (std::vector<uint64_t>{3, 1, 6}));
  EXPECT_EQ(corpus.TotalValues(), 10u);
  EXPECT_GT(corpus.SizeSkewness(), 0.0);  // right tail
}

TEST(CorpusTest, EmptyCorpus) {
  Corpus corpus;
  EXPECT_TRUE(corpus.empty());
  EXPECT_EQ(corpus.SizeSkewness(), 0.0);
  EXPECT_EQ(corpus.TotalValues(), 0u);
}

}  // namespace
}  // namespace lshensemble
