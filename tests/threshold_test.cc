#include "core/threshold.h"

#include <gtest/gtest.h>

#include <tuple>

namespace lshensemble {
namespace {

TEST(ThresholdTest, PaperWorkedExample) {
  // Section 2: Q={Ontario,Toronto}, Locations has 12 values, Q fully
  // contained: t=1, s=2/12.
  EXPECT_NEAR(ContainmentToJaccard(1.0, 12, 2), 2.0 / 12.0, 1e-12);
  // Provinces: |X|=3, overlap 1 of 2 -> t=0.5, s=1/4.
  EXPECT_NEAR(ContainmentToJaccard(0.5, 3, 2), 0.25, 1e-12);
}

TEST(ThresholdTest, EqualSizesFullContainmentIsJaccardOne) {
  EXPECT_DOUBLE_EQ(ContainmentToJaccard(1.0, 10, 10), 1.0);
}

TEST(ThresholdTest, ZeroContainmentIsZeroJaccard) {
  EXPECT_DOUBLE_EQ(ContainmentToJaccard(0.0, 100, 10), 0.0);
}

// Round-trip property over a grid of (t, x, q).
class ThresholdRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ThresholdRoundTrip, ConversionsAreInverse) {
  const auto [t, x, q] = GetParam();
  const double s = ContainmentToJaccard(t, x, q);
  if (t > (x / q + 1.0) / 2.0) {
    // The raw Eq. 6 value exceeds 1 here (only possible for infeasible
    // containment t > x/q, since t <= min(1, x/q) implies
    // t <= (x/q + 1)/2); the conversion saturates and the round trip is
    // not defined.
    EXPECT_DOUBLE_EQ(s, 1.0) << "t=" << t << " x=" << x << " q=" << q;
    return;
  }
  const double back = JaccardToContainment(s, x, q);
  EXPECT_NEAR(back, t, 1e-9) << "t=" << t << " x=" << x << " q=" << q;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThresholdRoundTrip,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(1.0, 10.0, 1000.0, 1e6),
                       ::testing::Values(1.0, 50.0, 1e4)));

TEST(ThresholdTest, JaccardMonotoneDecreasingInX) {
  // s-hat_{x,q}(t) decreases with x (Section 5.1), which is what makes the
  // upper-bound conversion conservative.
  double previous = 1.0;
  for (double x : {1.0, 2.0, 5.0, 10.0, 100.0, 1e4}) {
    const double s = ContainmentToJaccard(0.5, x, 10.0);
    EXPECT_LE(s, previous + 1e-12);
    previous = s;
  }
}

TEST(ThresholdTest, PartitionThresholdNeverExceedsExact) {
  // s* computed with the partition upper bound u >= x is <= the exact
  // threshold, hence introduces no new false negatives.
  const double q = 25.0, t_star = 0.6;
  for (double u : {10.0, 100.0, 1000.0}) {
    const double s_star = PartitionJaccardThreshold(t_star, u, q);
    for (double x = 1.0; x <= u; x *= 2.0) {
      EXPECT_LE(s_star, ContainmentToJaccard(t_star, x, q) + 1e-12)
          << "u=" << u << " x=" << x;
    }
  }
}

TEST(ThresholdTest, EffectiveThresholdProposition1) {
  // t_x = (x + q) t* / (u + q); at x = u it equals t*.
  const double q = 5.0, u = 10.0, t_star = 0.5;
  EXPECT_NEAR(EffectiveContainmentThreshold(t_star, u, q, u), t_star, 1e-12);
  // Below u the effective threshold is below t* (the FP window).
  const double tx = EffectiveContainmentThreshold(t_star, 1.0, q, u);
  EXPECT_LT(tx, t_star);
  EXPECT_NEAR(tx, (1.0 + 5.0) * 0.5 / (10.0 + 5.0), 1e-12);
}

TEST(ThresholdTest, EffectiveThresholdViaConversionAgreesExactly) {
  // Prop. 1 in closed form equals the two-step conversion: t* -> s* using
  // the upper bound u, then s* -> t using the true size x (algebraic
  // identity; see the paper's Figure 2).
  for (double q : {1.0, 7.0, 100.0}) {
    for (double u : {10.0, 42.0, 5000.0}) {
      for (double x : {1.0, 13.0, u}) {
        if (x > u) continue;  // x is always within its partition's bound
        for (double t_star : {0.1, 0.45, 0.9}) {
          // The identity is algebraic; it holds whenever the t* -> s*
          // conversion does not saturate its [0, 1] clamp (which only
          // happens for t* infeasible w.r.t. the partition bound u).
          if (t_star > (u / q + 1.0) / 2.0) continue;
          const double s_star = PartitionJaccardThreshold(t_star, u, q);
          const double via_conversion = JaccardToContainment(s_star, x, q);
          const double closed_form =
              EffectiveContainmentThreshold(t_star, x, q, u);
          EXPECT_NEAR(closed_form, via_conversion, 1e-9)
              << "q=" << q << " u=" << u << " x=" << x << " t*=" << t_star;
        }
      }
    }
  }
}

TEST(ThresholdTest, Figure2Shape) {
  // Figure 2 (u=3, x=1, q=1): the s-hat_{u,q} curve lies below s-hat_{x,q}.
  for (double t = 0.05; t <= 1.0; t += 0.05) {
    EXPECT_LE(ContainmentToJaccard(t, 3, 1), ContainmentToJaccard(t, 1, 1));
  }
}

}  // namespace
}  // namespace lshensemble
