// Hot snapshot swap: SnapshotManager must flip generations under
// continuous reader traffic without a reader ever observing a torn or
// unmapped generation, retire displaced mappings only when their last
// reader exits, retry transient open failures with capped exponential
// backoff, and fail permanent errors immediately while the old
// generation keeps serving. (The suite name carries "Swap" so the TSan
// CI job's scoped filter picks the reader/flip races up.)

#include "serve/snapshot_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_ensemble.h"
#include "data/corpus.h"
#include "io/env.h"
#include "minhash/minhash.h"
#include "test_tmp.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

constexpr int kNumHashes = 64;

ShardedEnsembleOptions ServingOptions() {
  ShardedEnsembleOptions options;
  options.base.base.num_partitions = 4;
  options.base.base.num_hashes = kNumHashes;
  options.base.base.tree_depth = 4;
  options.base.min_delta_for_rebuild = 1 << 30;
  options.num_shards = 2;
  return options;
}

class SnapshotSwapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    family_ = HashFamily::Create(kNumHashes, 11).value();
    CorpusGenOptions gen;
    gen.num_domains = 120;
    gen.seed = 99;
    corpus_ = CorpusGenerator(gen).Generate().value();
    for (size_t i = 0; i < corpus_->size(); ++i) {
      sketches_.push_back(
          MinHash::FromValues(family_, corpus_->domain(i).values));
    }
    for (size_t j = 0; j < 10; ++j) {
      const size_t pick = (j * 11) % corpus_->size();
      specs_.push_back(
          QuerySpec{&sketches_[pick], corpus_->domain(pick).size(), 0.4});
    }
    // Three generations of growing prefixes of the corpus, each saved to
    // its own directory with its expected answers precomputed.
    for (size_t g = 0; g < 3; ++g) {
      auto index = ShardedEnsemble::Create(ServingOptions(), family_).value();
      const size_t count = 40 * (g + 1);
      for (size_t i = 0; i < count; ++i) {
        const Domain& domain = corpus_->domain(i);
        ASSERT_TRUE(
            index.Insert(domain.id, domain.size(), sketches_[i]).ok());
      }
      ASSERT_TRUE(index.Flush().ok());
      dirs_[g] = ProcessTempPath("swap_gen" + std::to_string(g));
      ASSERT_TRUE(index.SaveSnapshot(dirs_[g]).ok());
      expected_[g].resize(specs_.size());
      ASSERT_TRUE(index.BatchQuery(specs_, expected_[g].data()).ok());
    }
    ASSERT_NE(expected_[0], expected_[1]);
    ASSERT_NE(expected_[1], expected_[2]);
  }

  SnapshotManager::Options ManagerOptions() const {
    SnapshotManager::Options options;
    options.serving = ServingOptions();
    return options;
  }

  /// True when `results` is exactly one generation's answer set.
  bool IsOneGeneration(
      const std::vector<std::vector<uint64_t>>& results) const {
    return results == expected_[0] || results == expected_[1] ||
           results == expected_[2];
  }

  std::shared_ptr<const HashFamily> family_;
  std::optional<Corpus> corpus_;
  std::vector<MinHash> sketches_;
  std::vector<QuerySpec> specs_;
  std::string dirs_[3];
  std::vector<std::vector<uint64_t>> expected_[3];
};

TEST_F(SnapshotSwapTest, OpenServesAndRefusesDoubleOpen) {
  SnapshotManager manager(ManagerOptions());
  EXPECT_FALSE(manager.serving());
  EXPECT_EQ(manager.Acquire(), nullptr);
  ASSERT_TRUE(manager.Open(dirs_[0]).ok());
  EXPECT_TRUE(manager.serving());
  EXPECT_EQ(manager.epoch(), 1u);
  EXPECT_TRUE(manager.Open(dirs_[1]).IsFailedPrecondition());
  EXPECT_EQ(manager.epoch(), 1u);

  auto handle = manager.Acquire();
  ASSERT_NE(handle, nullptr);
  std::vector<std::vector<uint64_t>> outs(specs_.size());
  ASSERT_TRUE(handle->BatchQuery(specs_, outs.data()).ok());
  EXPECT_EQ(outs, expected_[0]);
}

// The core property: readers hammer Acquire()+BatchQuery while the main
// thread flips through three further generations. Every answer must be
// exactly one generation's — never a blend, never a fault — and the
// retired list must drain to zero once readers stop.
TEST_F(SnapshotSwapTest, FlipsUnderContinuousReadersStayConsistent) {
  SnapshotManager manager(ManagerOptions());
  ASSERT_TRUE(manager.Open(dirs_[0]).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> bad_results{0};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::vector<std::vector<uint64_t>> outs(specs_.size());
      while (!stop.load(std::memory_order_relaxed)) {
        auto handle = manager.Acquire();
        if (handle == nullptr ||
            !handle->BatchQuery(specs_, outs.data()).ok() ||
            !IsOneGeneration(outs)) {
          bad_results.fetch_add(1);
          return;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Three flips (plus the initial open = 4 epochs), spaced so readers
  // overlap every generation boundary.
  for (const size_t target : {size_t{1}, size_t{2}, size_t{0}}) {
    while (reads.load(std::memory_order_relaxed) < manager.epoch() * 5 &&
           bad_results.load() == 0) {
      std::this_thread::yield();
    }
    ASSERT_TRUE(manager.SwapTo(dirs_[target]).ok());
  }
  EXPECT_EQ(manager.epoch(), 4u);

  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(bad_results.load(), 0);
  EXPECT_GT(reads.load(), 0u);

  // With no readers in flight every displaced generation has expired.
  EXPECT_EQ(manager.CollectRetired(), 0u);
  auto handle = manager.Acquire();
  std::vector<std::vector<uint64_t>> outs(specs_.size());
  ASSERT_TRUE(handle->BatchQuery(specs_, outs.data()).ok());
  EXPECT_EQ(outs, expected_[0]);  // the last flip's generation serves
}

// A held reader handle pins its displaced generation: the mapping stays
// serviceable after the flip and retires exactly when the handle drops.
TEST_F(SnapshotSwapTest, DisplacedGenerationRetiresWithItsLastReader) {
  SnapshotManager manager(ManagerOptions());
  ASSERT_TRUE(manager.Open(dirs_[0]).ok());
  auto pinned = manager.Acquire();
  ASSERT_NE(pinned, nullptr);

  ASSERT_TRUE(manager.SwapTo(dirs_[1]).ok());
  EXPECT_EQ(manager.epoch(), 2u);
  EXPECT_EQ(manager.retired_count(), 1u);  // pinned by `pinned`

  // The old handle still answers as generation 0 after the flip.
  std::vector<std::vector<uint64_t>> outs(specs_.size());
  ASSERT_TRUE(pinned->BatchQuery(specs_, outs.data()).ok());
  EXPECT_EQ(outs, expected_[0]);
  // New acquires see generation 1.
  ASSERT_TRUE(manager.Acquire()->BatchQuery(specs_, outs.data()).ok());
  EXPECT_EQ(outs, expected_[1]);

  pinned.reset();
  EXPECT_EQ(manager.retired_count(), 0u);
}

TEST_F(SnapshotSwapTest, TransientOpenErrorsRetryWithCappedBackoff) {
  SnapshotManager::Options options = ManagerOptions();
  options.max_open_attempts = 4;
  options.initial_backoff_us = 1000;
  options.max_backoff_us = 3000;
  std::vector<uint64_t> backoffs;
  options.backoff_sleep = [&](uint64_t us) { backoffs.push_back(us); };

  SnapshotManager manager(std::move(options));
  const Status status = manager.SwapTo(ProcessTempPath("swap_no_such_dir"));
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_NE(status.message().find("4 attempts"), std::string::npos)
      << status.ToString();
  // Doubling from initial, capped at max: one sleep before each retry.
  EXPECT_EQ(backoffs, (std::vector<uint64_t>{1000, 2000, 3000}));
  EXPECT_FALSE(manager.serving());
}

// A snapshot that appears while SwapTo is backing off (publisher racing
// the subscriber) is picked up by a later attempt.
TEST_F(SnapshotSwapTest, RetryPicksUpLatePublishedSnapshot) {
  const std::string dir = ProcessTempPath("swap_late_publish");
  SnapshotManager::Options options = ManagerOptions();
  options.max_open_attempts = 3;
  size_t sleeps = 0;
  options.backoff_sleep = [&](uint64_t) {
    if (sleeps++ == 0) {
      // Publish the snapshot during the first backoff window.
      auto index = ShardedEnsemble::Create(ServingOptions(), family_).value();
      for (size_t i = 0; i < 40; ++i) {
        const Domain& domain = corpus_->domain(i);
        ASSERT_TRUE(
            index.Insert(domain.id, domain.size(), sketches_[i]).ok());
      }
      ASSERT_TRUE(index.Flush().ok());
      ASSERT_TRUE(index.SaveSnapshot(dir).ok());
    }
  };

  SnapshotManager manager(std::move(options));
  ASSERT_TRUE(manager.Open(dir).ok());
  EXPECT_EQ(sleeps, 1u);
  EXPECT_EQ(manager.epoch(), 1u);
  std::vector<std::vector<uint64_t>> outs(specs_.size());
  ASSERT_TRUE(manager.Acquire()->BatchQuery(specs_, outs.data()).ok());
  EXPECT_EQ(outs, expected_[0]);
}

// Corruption is permanent: no retries, no flip, the old generation keeps
// serving untouched.
TEST_F(SnapshotSwapTest, PermanentErrorFailsFastAndKeepsServing) {
  const std::string bad_dir = ProcessTempPath("swap_corrupt");
  ASSERT_TRUE(Env::Default()->CreateDirectories(bad_dir).ok());
  ASSERT_TRUE(
      WriteFileAtomic(Env::Default(), bad_dir + "/MANIFEST", "garbage").ok());

  SnapshotManager::Options options = ManagerOptions();
  std::vector<uint64_t> backoffs;
  options.backoff_sleep = [&](uint64_t us) { backoffs.push_back(us); };
  SnapshotManager manager(std::move(options));
  ASSERT_TRUE(manager.Open(dirs_[2]).ok());

  const Status status = manager.SwapTo(bad_dir);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_TRUE(backoffs.empty());  // permanent errors never retry
  EXPECT_EQ(manager.epoch(), 1u);
  std::vector<std::vector<uint64_t>> outs(specs_.size());
  ASSERT_TRUE(manager.Acquire()->BatchQuery(specs_, outs.data()).ok());
  EXPECT_EQ(outs, expected_[2]);
}

}  // namespace
}  // namespace lshensemble
