// Thread-safety claims under real concurrency: LshEnsemble::Query,
// TopKSearcher::Search and the Tuner's shared memo cache are documented
// as safe for concurrent readers; DynamicLshEnsemble for concurrent
// queries between mutations. These tests hammer them from many threads
// and require bit-identical agreement with serial execution.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "core/dynamic_ensemble.h"
#include "core/lsh_ensemble.h"
#include "core/topk.h"
#include "core/tuning.h"
#include "io/ensemble_io.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

constexpr int kNumHashes = 128;
constexpr int kThreads = 8;

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CorpusGenOptions gen;
    gen.num_domains = 3000;
    gen.max_size = 10000;
    gen.seed = 314;
    corpus_ = CorpusGenerator(gen).Generate().value();
    family_ = HashFamily::Create(kNumHashes, 15).value();

    LshEnsembleOptions options;
    options.num_partitions = 8;
    options.num_hashes = kNumHashes;
    options.tree_depth = 4;
    LshEnsembleBuilder builder(options, family_);
    for (size_t i = 0; i < corpus_->size(); ++i) {
      const Domain& domain = corpus_->domain(i);
      MinHash sketch = MinHash::FromValues(family_, domain.values);
      ASSERT_TRUE(builder.Add(domain.id, domain.size(), sketch).ok());
      ASSERT_TRUE(store_.Add(domain.id, domain.size(), std::move(sketch)).ok());
    }
    ensemble_ = std::move(builder).Build().value();

    for (size_t qi = 0; qi < corpus_->size(); qi += 101) {
      query_indices_.push_back(qi);
    }
  }

  std::vector<uint64_t> SerialAnswer(size_t qi, double t_star) const {
    const Domain& query = corpus_->domain(qi);
    std::vector<uint64_t> out;
    EXPECT_TRUE(ensemble_
                    ->Query(MinHash::FromValues(family_, query.values),
                            query.size(), t_star, &out)
                    .ok());
    std::sort(out.begin(), out.end());
    return out;
  }

  std::optional<Corpus> corpus_;
  std::shared_ptr<const HashFamily> family_;
  SketchStore store_;
  std::optional<LshEnsemble> ensemble_;
  std::vector<size_t> query_indices_;
};

TEST_F(ConcurrencyTest, ParallelQueriesMatchSerial) {
  const double t_star = 0.5;
  std::vector<std::vector<uint64_t>> expected;
  expected.reserve(query_indices_.size());
  for (size_t qi : query_indices_) {
    expected.push_back(SerialAnswer(qi, t_star));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the queries from a different starting offset.
      for (size_t step = 0; step < query_indices_.size(); ++step) {
        const size_t pos = (step + t) % query_indices_.size();
        const Domain& query = corpus_->domain(query_indices_[pos]);
        std::vector<uint64_t> out;
        if (!ensemble_
                 ->Query(MinHash::FromValues(family_, query.values),
                         query.size(), t_star, &out)
                 .ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        std::sort(out.begin(), out.end());
        if (out != expected[pos]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Many threads, each driving its own BatchQuery() with a private
// QueryContext against the shared immutable index, must agree with the
// serial single-query answers exactly (BatchQuery is documented as
// producing the same per-query output as Query()).
TEST_F(ConcurrencyTest, ConcurrentBatchQueriesMatchSerial) {
  const double t_star = 0.5;
  std::vector<MinHash> sketches;
  sketches.reserve(query_indices_.size());
  std::vector<QuerySpec> specs;
  std::vector<std::vector<uint64_t>> expected;
  for (size_t qi : query_indices_) {
    const Domain& query = corpus_->domain(qi);
    sketches.push_back(MinHash::FromValues(family_, query.values));
    specs.push_back(QuerySpec{&sketches.back(), query.size(), t_star});
    expected.push_back(SerialAnswer(qi, t_star));
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every thread owns its context and output buffers, reused across
      // rounds; thread t rotates the batch to vary chunk boundaries.
      QueryContext ctx;
      std::vector<QuerySpec> rotated(specs.size());
      std::vector<std::vector<uint64_t>> outs(specs.size());
      for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < specs.size(); ++i) {
          rotated[i] = specs[(i + t + round) % specs.size()];
        }
        if (!ensemble_->BatchQuery(rotated, &ctx, outs.data()).ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < specs.size(); ++i) {
          std::vector<uint64_t> sorted = outs[i];
          std::sort(sorted.begin(), sorted.end());
          if (sorted != expected[(i + t + round) % specs.size()]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

// Batched and single-query traffic hammering the same index at once: the
// shard pool inside each context and the shared tuner cache must not
// interfere across the two entry points.
TEST_F(ConcurrencyTest, MixedBatchAndSingleQueryTraffic) {
  const double t_star = 0.3;
  std::vector<MinHash> sketches;
  sketches.reserve(query_indices_.size());
  std::vector<QuerySpec> specs;
  std::vector<std::vector<uint64_t>> expected;
  for (size_t qi : query_indices_) {
    const Domain& query = corpus_->domain(qi);
    sketches.push_back(MinHash::FromValues(family_, query.values));
    specs.push_back(QuerySpec{&sketches.back(), query.size(), t_star});
    expected.push_back(SerialAnswer(qi, t_star));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        QueryContext ctx;
        std::vector<std::vector<uint64_t>> outs(specs.size());
        for (int round = 0; round < 3; ++round) {
          if (!ensemble_->BatchQuery(specs, &ctx, outs.data()).ok()) {
            mismatches.fetch_add(1);
            continue;
          }
          for (size_t i = 0; i < specs.size(); ++i) {
            std::vector<uint64_t> sorted = outs[i];
            std::sort(sorted.begin(), sorted.end());
            if (sorted != expected[i]) mismatches.fetch_add(1);
          }
        }
      } else {
        for (int round = 0; round < 3; ++round) {
          for (size_t i = 0; i < specs.size(); ++i) {
            std::vector<uint64_t> out;
            if (!ensemble_
                     ->Query(*specs[i].query, specs[i].query_size, t_star,
                             &out)
                     .ok()) {
              mismatches.fetch_add(1);
              continue;
            }
            std::sort(out.begin(), out.end());
            if (out != expected[i]) mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrencyTest, ParallelQueriesAcrossThresholds) {
  // Different thresholds exercise different tuner cache keys concurrently.
  const std::vector<double> thresholds = {0.1, 0.3, 0.5, 0.7, 0.9};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const double t_star = thresholds[t % thresholds.size()];
      for (size_t qi : query_indices_) {
        const Domain& query = corpus_->domain(qi);
        std::vector<uint64_t> out;
        if (!ensemble_
                 ->Query(MinHash::FromValues(family_, query.values),
                         query.size(), t_star, &out)
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrencyTest, TunerCacheIsThreadSafe) {
  Tuner::Options options;
  options.max_b = 32;
  options.max_r = 8;
  auto tuner = Tuner::Create(options).value();
  std::atomic<int> disagreements{0};
  // All threads request overlapping (x/q, t*) keys; results must agree
  // with a serially computed reference.
  std::vector<TunedParams> reference;
  for (int i = 0; i < 40; ++i) {
    reference.push_back(
        tuner->Tune(100.0 + i * 37.0, 25.0, 0.05 * (i % 19 + 1)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 40; ++i) {
          const TunedParams params =
              tuner->Tune(100.0 + i * 37.0, 25.0, 0.05 * (i % 19 + 1));
          if (params.b != reference[i].b || params.r != reference[i].r) {
            disagreements.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(disagreements.load(), 0);
}

TEST_F(ConcurrencyTest, ParallelTopKSearchesAgree) {
  TopKSearcher searcher(&*ensemble_, &store_);
  const Domain& query = corpus_->domain(404);
  const MinHash sketch = MinHash::FromValues(family_, query.values);
  auto expected = searcher.Search(sketch, query.size(), 10);
  ASSERT_TRUE(expected.ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        auto results = searcher.Search(sketch, query.size(), 10);
        if (!results.ok() || *results != *expected) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrencyTest, LoadedIndexServesConcurrentQueries) {
  std::string image;
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &image).ok());
  auto loaded = DeserializeEnsemble(image);
  ASSERT_TRUE(loaded.ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t qi : query_indices_) {
        const Domain& query = corpus_->domain(qi);
        std::vector<uint64_t> from_loaded;
        if (!loaded
                 ->Query(MinHash::FromValues(family_, query.values),
                         query.size(), 0.6, &from_loaded)
                 .ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        std::sort(from_loaded.begin(), from_loaded.end());
        if (from_loaded != SerialAnswer(qi, 0.6)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// One shared mid-rebuild dynamic index (built ensemble + delta +
// tombstones), hammered by per-thread BatchQuery calls with per-thread
// contexts: the batched delta scan reads shared records while the inner
// engine leases shards from each thread's own context — TSan checks the
// shared-scratch invariants, the equality checks the results.
TEST_F(ConcurrencyTest, DynamicBatchQueryConcurrentReaders) {
  DynamicEnsembleOptions options;
  options.base.num_partitions = 4;
  options.base.num_hashes = kNumHashes;
  options.base.tree_depth = 4;
  options.min_delta_for_rebuild = 1000000;
  auto index = DynamicLshEnsemble::Create(options, family_).value();
  for (size_t i = 0; i < 600; ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(index
                    .Insert(domain.id, domain.size(),
                            MinHash::FromValues(family_, domain.values))
                    .ok());
    if (i == 399) {
      ASSERT_TRUE(index.Flush().ok());
    }
  }
  for (size_t i : {5ul, 100ul, 450ul}) {
    ASSERT_TRUE(index.Remove(corpus_->domain(i).id).ok());
  }
  ASSERT_GT(index.delta_size(), 0u);
  ASSERT_GT(index.tombstone_count(), 0u);

  // Two-pass spec build: sketches filled before any address is taken.
  std::vector<size_t> batch_indices;
  for (size_t qi = 0; qi < 600; qi += 20) batch_indices.push_back(qi);
  std::vector<MinHash> sketches;
  for (size_t qi : batch_indices) {
    sketches.push_back(
        MinHash::FromValues(family_, corpus_->domain(qi).values));
  }
  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < batch_indices.size(); ++i) {
    specs.push_back(QuerySpec{
        &sketches[i], corpus_->domain(batch_indices[i]).size(), 0.5});
  }
  // Serial reference with a private context.
  std::vector<std::vector<uint64_t>> expected(specs.size());
  {
    QueryContext ctx;
    ASSERT_TRUE(index.BatchQuery(specs, &ctx, expected.data()).ok());
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryContext ctx;  // per-thread, reused across rounds
      std::vector<QuerySpec> rotated(specs.size());
      std::vector<std::vector<uint64_t>> outs(specs.size());
      for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < specs.size(); ++i) {
          rotated[i] = specs[(i + t + round) % specs.size()];
        }
        if (!index.BatchQuery(rotated, &ctx, outs.data()).ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < specs.size(); ++i) {
          if (outs[i] != expected[(i + t + round) % specs.size()]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Concurrent lockstep top-k descents over the shared static index: each
// thread drives its own BatchSearch with a private context and must get
// the serial per-query answers.
TEST_F(ConcurrencyTest, ConcurrentBatchTopKSearchesAgree) {
  TopKSearcher searcher(&*ensemble_, &store_);
  std::vector<size_t> batch_indices;
  for (size_t qi = 0; qi < 10 * 271; qi += 271) batch_indices.push_back(qi);
  std::vector<MinHash> sketches;
  for (size_t qi : batch_indices) {
    sketches.push_back(
        MinHash::FromValues(family_, corpus_->domain(qi).values));
  }
  std::vector<TopKQuery> queries;
  for (size_t i = 0; i < batch_indices.size(); ++i) {
    queries.push_back(TopKQuery{
        &sketches[i], corpus_->domain(batch_indices[i]).size()});
  }
  std::vector<std::vector<TopKResult>> expected(queries.size());
  {
    QueryContext ctx;
    ASSERT_TRUE(searcher.BatchSearch(queries, 10, &ctx, expected.data()).ok());
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      QueryContext ctx;
      std::vector<std::vector<TopKResult>> outs(queries.size());
      for (int round = 0; round < 3; ++round) {
        if (!searcher.BatchSearch(queries, 10, &ctx, outs.data()).ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < queries.size(); ++i) {
          if (outs[i] != expected[i]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrencyTest, DynamicEnsembleConcurrentReads) {
  DynamicEnsembleOptions options;
  options.base.num_partitions = 4;
  options.base.num_hashes = kNumHashes;
  options.base.tree_depth = 4;
  auto index = DynamicLshEnsemble::Create(options, family_).value();
  for (size_t i = 0; i < 500; ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(index
                    .Insert(domain.id, domain.size(),
                            MinHash::FromValues(family_, domain.values))
                    .ok());
    if (i == 250) {
      ASSERT_TRUE(index.Flush().ok());
    }
  }
  // Half indexed, half in the delta; query concurrently (no mutation).
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t qi = 0; qi < 500; qi += 53) {
        const Domain& query = corpus_->domain(qi);
        std::vector<uint64_t> out;
        if (!index
                 .Query(MinHash::FromValues(family_, query.values),
                        query.size(), 0.9, &out)
                 .ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Every query domain is itself live, so it must be found.
        if (std::find(out.begin(), out.end(), query.id) == out.end()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace lshensemble
