// Near-duplicate clustering: DSU mechanics, the tiled self-join driver,
// the invariance property the module advertises (identical clusters for
// every shard count and tile size — grouping into waves must never change
// the candidate-edge set, and min-id canonical roots are edge-order-free),
// exact-verification semantics, pair-level accuracy scoring, the
// ForEachLiveRecord enumeration seam across the dynamic lifecycle
// (heap / mapped / tombstoned / snapshot-opened), and the concurrency
// contract (clustering while the index mutates).

#include "cluster/clusterer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/eval.h"
#include "cluster/union_find.h"
#include "core/dynamic_ensemble.h"
#include "core/sharded_ensemble.h"
#include "data/corpus.h"
#include "data/sketcher.h"
#include "test_tmp.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

constexpr int kNumHashes = 256;

std::shared_ptr<const HashFamily> Family() {
  static std::shared_ptr<const HashFamily> family =
      HashFamily::Create(kNumHashes, 42).value();
  return family;
}

PlantedDuplicatesOptions SmallPlanted() {
  PlantedDuplicatesOptions options;
  options.num_groups = 8;
  options.group_size = 4;
  options.mother_size = 384;
  options.min_fraction = 0.92;
  options.num_background = 48;
  options.background_min_size = 32;
  options.background_max_size = 512;
  options.seed = 7;
  return options;
}

ShardedEnsembleOptions ShardOptions(size_t num_shards) {
  ShardedEnsembleOptions options;
  options.base.min_delta_for_rebuild = 1 << 30;  // tests flush explicitly
  options.num_shards = num_shards;
  return options;
}

// ---------------------------------------------------------------- DSU --

TEST(UnionFindTest, SingletonsAtStart) {
  UnionFind dsu(4);
  EXPECT_EQ(dsu.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(dsu.Find(i), i);
    EXPECT_EQ(dsu.SetSize(i), 1u);
  }
  EXPECT_FALSE(dsu.Connected(0, 3));
}

TEST(UnionFindTest, UnionMergesAndReportsNovelty) {
  UnionFind dsu(5);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_TRUE(dsu.Union(2, 3));
  EXPECT_FALSE(dsu.Union(1, 0));  // already one set
  EXPECT_TRUE(dsu.Union(1, 3));
  EXPECT_TRUE(dsu.Connected(0, 2));
  EXPECT_EQ(dsu.SetSize(3), 4u);
  EXPECT_EQ(dsu.SetSize(4), 1u);
  EXPECT_FALSE(dsu.Connected(0, 4));
}

TEST(UnionFindTest, LongChainCollapses) {
  constexpr uint32_t kN = 1000;
  UnionFind dsu(kN);
  for (uint32_t i = 0; i + 1 < kN; ++i) dsu.Union(i, i + 1);
  const uint32_t root = dsu.Find(0);
  for (uint32_t i = 0; i < kN; ++i) EXPECT_EQ(dsu.Find(i), root);
  EXPECT_EQ(dsu.SetSize(kN - 1), kN);
}

// ------------------------------------------------------------ options --

TEST(ClusterTest, OptionsValidate) {
  ClusterOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.threshold = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options.threshold = 1.1;
  EXPECT_FALSE(options.Validate().ok());
  options.threshold = 0.9;
  options.tile_size = 0;
  EXPECT_FALSE(options.Validate().ok());
}

// ------------------------------------------------- self-join clustering --

TEST(ClusterTest, PlantedGroupsClusterExactly) {
  const Corpus corpus = PlantedDuplicatesCorpus(SmallPlanted()).value();
  ClusterOptions options;
  // Margin below the planted min_fraction (0.92): within-group containments
  // sit at >= 0.92, so sketch noise around the threshold cannot drop a
  // member, and exact group recovery is deterministic.
  options.threshold = 0.85;
  ClusterStats stats;
  const ClusterResult result =
      ClusterCorpus(corpus, Family(), options, 2, &stats).value();

  ASSERT_EQ(result.ids.size(), corpus.size());
  EXPECT_TRUE(std::is_sorted(result.ids.begin(), result.ids.end()));
  EXPECT_EQ(stats.num_records, corpus.size());

  // Every planted group collapses to one cluster rooted at its smallest
  // member id; background domains stay singletons.
  const PlantedDuplicatesOptions planted = SmallPlanted();
  std::unordered_map<uint64_t, uint64_t> root_of;
  for (size_t i = 0; i < result.ids.size(); ++i) {
    root_of[result.ids[i]] = result.roots[i];
  }
  for (size_t g = 0; g < planted.num_groups; ++g) {
    const uint64_t expected_root = g * planted.group_size;
    for (size_t m = 0; m < planted.group_size; ++m) {
      EXPECT_EQ(root_of.at(g * planted.group_size + m), expected_root)
          << "group " << g << " member " << m;
    }
  }
  const size_t num_planted = planted.num_groups * planted.group_size;
  for (size_t b = 0; b < planted.num_background; ++b) {
    const uint64_t id = num_planted + b;
    EXPECT_EQ(root_of.at(id), id) << "background " << b;
  }
  EXPECT_EQ(stats.num_duplicate_groups, planted.num_groups);
  EXPECT_EQ(stats.num_duplicated_records, num_planted);
  EXPECT_EQ(result.num_clusters,
            planted.num_groups + planted.num_background);
}

TEST(ClusterTest, AccuracyOnPlantedCorpus) {
  // The acceptance bar: pair-level precision and recall >= 0.9 against
  // exact ground truth at the clustering threshold.
  const Corpus corpus = PlantedDuplicatesCorpus(SmallPlanted()).value();
  ClusterOptions options;
  options.threshold = 0.9;
  const ClusterResult result =
      ClusterCorpus(corpus, Family(), options, 2, nullptr).value();
  const PairAccuracy accuracy =
      EvaluatePairAccuracy(corpus, result, options.threshold).value();
  EXPECT_GT(accuracy.truth_pairs, 0u);
  EXPECT_GE(accuracy.precision, 0.9);
  EXPECT_GE(accuracy.recall, 0.9);
}

TEST(ClusterTest, InvariantAcrossShardCountsAndTileSizes) {
  // The defining property: shard count and tile size only regroup the
  // same self-join into different waves; ids and canonical roots must be
  // byte-identical.
  const Corpus corpus = PlantedDuplicatesCorpus(SmallPlanted()).value();
  ClusterOptions base;
  base.threshold = 0.9;
  const ClusterResult reference =
      ClusterCorpus(corpus, Family(), base, 1, nullptr).value();
  for (size_t shards : {1u, 2u, 4u}) {
    for (size_t tile : {1u, 7u, 64u, 100000u}) {
      ClusterOptions options = base;
      options.tile_size = tile;
      const ClusterResult result =
          ClusterCorpus(corpus, Family(), options, shards, nullptr).value();
      EXPECT_EQ(result.ids, reference.ids)
          << "S=" << shards << " tile=" << tile;
      EXPECT_EQ(result.roots, reference.roots)
          << "S=" << shards << " tile=" << tile;
      EXPECT_EQ(result.num_clusters, reference.num_clusters);
    }
  }
}

TEST(ClusterTest, VerifyExactDropsFalsePositiveEdges) {
  // With verification on, every edge that reaches the DSU must clear the
  // exact max-direction containment bar — check against the collected
  // edge list.
  const Corpus corpus = PlantedDuplicatesCorpus(SmallPlanted()).value();
  ClusterOptions options;
  options.threshold = 0.9;
  options.verify_exact = true;
  options.collect_edges = true;
  ClusterStats stats;
  const ClusterResult result =
      ClusterCorpus(corpus, Family(), options, 2, &stats).value();
  EXPECT_EQ(stats.union_edges, stats.unique_pairs - stats.verified_rejected);
  EXPECT_EQ(result.edges.size(), stats.union_edges);
  std::unordered_map<uint64_t, const Domain*> by_id;
  for (const Domain& domain : corpus.domains()) by_id[domain.id] = &domain;
  for (const auto& [a, b] : result.edges) {
    EXPECT_LT(a, b);
    const Domain& da = *by_id.at(a);
    const Domain& db = *by_id.at(b);
    EXPECT_GE(std::max(da.ContainmentIn(db), db.ContainmentIn(da)),
              options.threshold)
        << "edge (" << a << ", " << b << ")";
  }
}

TEST(ClusterTest, VerifyExactRequiresDomains) {
  ShardedEnsemble index =
      ShardedEnsemble::Create(ShardOptions(1), Family()).value();
  const std::vector<uint64_t> values{1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(index.Insert(1, values).ok());
  ASSERT_TRUE(index.Flush().ok());
  std::vector<ClusterRecord> records = CollectRecords(index);
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].domain, nullptr);
  ClusterOptions options;
  options.verify_exact = true;
  const NearDupClusterer clusterer(options);
  const auto result = clusterer.Cluster(index, records);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(ClusterTest, DuplicateRecordIdsRejected) {
  ShardedEnsemble index =
      ShardedEnsemble::Create(ShardOptions(1), Family()).value();
  const std::vector<uint64_t> values{1, 2, 3, 4};
  ASSERT_TRUE(index.Insert(1, values).ok());
  ASSERT_TRUE(index.Flush().ok());
  std::vector<ClusterRecord> records = CollectRecords(index);
  records.push_back(ClusterRecord{records[0].id, records[0].size,
                                  records[0].signature, nullptr});
  const NearDupClusterer clusterer(ClusterOptions{});
  EXPECT_FALSE(clusterer.Cluster(index, records).ok());
}

TEST(ClusterTest, EmptyRecordSetClustersToNothing) {
  ShardedEnsemble index =
      ShardedEnsemble::Create(ShardOptions(2), Family()).value();
  const NearDupClusterer clusterer(ClusterOptions{});
  ClusterStats stats;
  const ClusterResult result = clusterer.Cluster(index, {}, &stats).value();
  EXPECT_TRUE(result.ids.empty());
  EXPECT_EQ(result.num_clusters, 0u);
  EXPECT_EQ(stats.num_tiles, 0u);
}

// -------------------------------------------------------- pair scoring --

TEST(ClusterEvalTest, PerfectAndDegenerateClusterings) {
  // Two exact-duplicate pairs plus a loner.
  std::vector<Domain> domains;
  domains.push_back(Domain::FromValues(10, "a0", {1, 2, 3, 4}));
  domains.push_back(Domain::FromValues(11, "a1", {1, 2, 3, 4}));
  domains.push_back(Domain::FromValues(20, "b0", {50, 51, 52, 53}));
  domains.push_back(Domain::FromValues(21, "b1", {50, 51, 52, 53}));
  domains.push_back(Domain::FromValues(30, "c", {90, 91, 92, 93}));
  const Corpus corpus(std::move(domains));

  ClusterResult perfect;
  perfect.ids = {10, 11, 20, 21, 30};
  perfect.roots = {10, 10, 20, 20, 30};
  const PairAccuracy exact =
      EvaluatePairAccuracy(corpus, perfect, 0.9).value();
  EXPECT_EQ(exact.truth_pairs, 2u);
  EXPECT_EQ(exact.predicted_pairs, 2u);
  EXPECT_EQ(exact.hit_pairs, 2u);
  EXPECT_DOUBLE_EQ(exact.precision, 1.0);
  EXPECT_DOUBLE_EQ(exact.recall, 1.0);

  // Chained everything into one cluster: recall stays 1, precision pays
  // for the C(5,2) = 10 predicted pairs.
  ClusterResult merged;
  merged.ids = {10, 11, 20, 21, 30};
  merged.roots = {10, 10, 10, 10, 10};
  const PairAccuracy chained =
      EvaluatePairAccuracy(corpus, merged, 0.9).value();
  EXPECT_EQ(chained.predicted_pairs, 10u);
  EXPECT_EQ(chained.hit_pairs, 2u);
  EXPECT_DOUBLE_EQ(chained.recall, 1.0);
  EXPECT_DOUBLE_EQ(chained.precision, 0.2);

  // All singletons: nothing predicted, perfect precision, zero recall.
  ClusterResult singletons;
  singletons.ids = {10, 11, 20, 21, 30};
  singletons.roots = {10, 11, 20, 21, 30};
  const PairAccuracy none =
      EvaluatePairAccuracy(corpus, singletons, 0.9).value();
  EXPECT_EQ(none.predicted_pairs, 0u);
  EXPECT_DOUBLE_EQ(none.precision, 1.0);
  EXPECT_DOUBLE_EQ(none.recall, 0.0);
}

TEST(ClusterEvalTest, ThresholdValidated) {
  const Corpus corpus(std::vector<Domain>{});
  EXPECT_FALSE(EvaluatePairAccuracy(corpus, ClusterResult{}, 0.0).ok());
  EXPECT_FALSE(EvaluatePairAccuracy(corpus, ClusterResult{}, 1.5).ok());
}

// ------------------------------------------- record enumeration seam --

TEST(ClusterTest, ForEachLiveRecordCoversDynamicLifecycle) {
  DynamicEnsembleOptions options;
  options.min_delta_for_rebuild = 1 << 30;
  DynamicLshEnsemble engine =
      DynamicLshEnsemble::Create(options, Family()).value();
  auto values_of = [](uint64_t id) {
    std::vector<uint64_t> values;
    for (uint64_t v = 0; v < 16; ++v) values.push_back(id * 1000 + v);
    return values;
  };
  for (uint64_t id = 1; id <= 6; ++id) {
    ASSERT_TRUE(engine.Insert(id, values_of(id)).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());      // 1..6 now indexed
  ASSERT_TRUE(engine.Remove(3).ok());    // tombstoned in the built index
  for (uint64_t id = 7; id <= 8; ++id) {
    ASSERT_TRUE(engine.Insert(id, values_of(id)).ok());  // heap delta
  }
  ASSERT_TRUE(engine.Remove(8).ok());    // dropped straight from the delta

  std::set<uint64_t> seen;
  engine.ForEachLiveRecord([&](uint64_t id, size_t size, SignatureView sig) {
    EXPECT_TRUE(seen.insert(id).second) << "id " << id << " enumerated twice";
    EXPECT_EQ(size, 16u);
    EXPECT_TRUE(static_cast<bool>(sig));
    EXPECT_EQ(sig.num_hashes, static_cast<size_t>(kNumHashes));
  });
  EXPECT_EQ(seen, (std::set<uint64_t>{1, 2, 4, 5, 6, 7}));
}

TEST(ClusterTest, CollectRecordsMatchesShardedContents) {
  ShardedEnsemble index =
      ShardedEnsemble::Create(ShardOptions(3), Family()).value();
  const Corpus corpus = PlantedDuplicatesCorpus(SmallPlanted()).value();
  const ParallelSketcher sketcher(Family());
  ASSERT_TRUE(AddCorpus(corpus, sketcher, &index).ok());
  ASSERT_TRUE(index.Flush().ok());

  const std::vector<ClusterRecord> records = CollectRecords(index);
  ASSERT_EQ(records.size(), corpus.size());
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].id, records[i].id);
  }
  for (const ClusterRecord& record : records) {
    EXPECT_EQ(record.size, corpus.domain(record.id).size());
    EXPECT_TRUE(record.signature.valid());
  }
}

TEST(ClusterTest, SnapshotOpenedIndexClustersIdentically) {
  // The CLI path: cluster an index opened zero-copy off a snapshot
  // directory, no catalog anywhere — must match the in-memory clustering.
  const Corpus corpus = PlantedDuplicatesCorpus(SmallPlanted()).value();
  ClusterOptions options;
  options.threshold = 0.9;
  const ClusterResult in_memory =
      ClusterCorpus(corpus, Family(), options, 2, nullptr).value();

  ShardedEnsemble built =
      ShardedEnsemble::Create(ShardOptions(2), Family()).value();
  const ParallelSketcher sketcher(Family());
  ASSERT_TRUE(AddCorpus(corpus, sketcher, &built).ok());
  ASSERT_TRUE(built.Flush().ok());
  const std::string dir = ProcessTempPath("cluster_snapshot");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(built.SaveSnapshot(dir).ok());

  ShardedEnsemble opened =
      ShardedEnsemble::OpenSnapshot(dir, ShardOptions(2)).value();
  const std::vector<ClusterRecord> records = CollectRecords(opened);
  ASSERT_EQ(records.size(), corpus.size());
  const NearDupClusterer clusterer(options);
  const ClusterResult from_snapshot =
      clusterer.Cluster(opened, records).value();
  EXPECT_EQ(from_snapshot.ids, in_memory.ids);
  EXPECT_EQ(from_snapshot.roots, in_memory.roots);
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------- threading --

TEST(ClusterConcurrencyTest, TilesRaceConcurrentInserts) {
  // Clustering holds owned signature copies, so self-join waves must be
  // able to overlap Insert/Flush on the same index. Candidates pointing
  // at records inserted mid-job are skipped, not crashed on. (TSan runs
  // this under the Cluster scope.)
  const Corpus corpus = PlantedDuplicatesCorpus(SmallPlanted()).value();
  ShardedEnsemble index =
      ShardedEnsemble::Create(ShardOptions(2), Family()).value();
  const ParallelSketcher sketcher(Family());
  ASSERT_TRUE(AddCorpus(corpus, sketcher, &index).ok());
  ASSERT_TRUE(index.Flush().ok());
  const std::vector<ClusterRecord> records = CollectRecords(index);

  std::atomic<bool> stop{false};
  std::thread inserter([&] {
    uint64_t next_id = 1 << 20;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<uint64_t> values;
      for (uint64_t v = 0; v < 32; ++v) {
        values.push_back((next_id << 8) + v);
      }
      ASSERT_TRUE(index.Insert(next_id++, values).ok());
      std::this_thread::yield();
    }
  });

  ClusterOptions options;
  options.threshold = 0.9;
  options.tile_size = 16;  // many waves -> many lock interleavings
  const NearDupClusterer clusterer(options);
  ClusterStats stats;
  const auto result = clusterer.Cluster(index, records, &stats);
  stop.store(true);
  inserter.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().ids.size(), records.size());
  // Concurrent inserts are disjoint-valued, so they may only ever appear
  // as unknown candidates, never as edges.
  EXPECT_EQ(stats.unique_pairs, stats.union_edges);
}

TEST(ClusterConcurrencyTest, CollectRecordsRacesInserts) {
  ShardedEnsemble index =
      ShardedEnsemble::Create(ShardOptions(2), Family()).value();
  for (uint64_t id = 1; id <= 64; ++id) {
    std::vector<uint64_t> values;
    for (uint64_t v = 0; v < 16; ++v) values.push_back(id * 100 + v);
    ASSERT_TRUE(index.Insert(id, values).ok());
  }
  ASSERT_TRUE(index.Flush().ok());

  std::atomic<bool> stop{false};
  std::thread inserter([&] {
    uint64_t next_id = 1000;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<uint64_t> values{next_id * 100, next_id * 100 + 1,
                                   next_id * 100 + 2};
      ASSERT_TRUE(index.Insert(next_id++, values).ok());
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 20; ++round) {
    const std::vector<ClusterRecord> records = CollectRecords(index);
    EXPECT_GE(records.size(), 64u);
    for (const ClusterRecord& record : records) {
      EXPECT_TRUE(record.signature.valid());
    }
  }
  stop.store(true);
  inserter.join();
}

}  // namespace
}  // namespace lshensemble
