#include "lsh/lsh_forest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "minhash/minhash.h"
#include "util/random.h"

namespace lshensemble {
namespace {

std::shared_ptr<const HashFamily> Family(int m = 256, uint64_t seed = 3) {
  return HashFamily::Create(m, seed).value();
}

MinHash RandomSketch(const std::shared_ptr<const HashFamily>& family,
                     Rng& rng, size_t n = 50) {
  MinHash sketch(family);
  for (size_t i = 0; i < n; ++i) sketch.Update(rng.Next());
  return sketch;
}

// Reference implementation: a domain collides at (b, r) iff one of the
// first b trees agrees on the first r (truncated) hash values.
bool BruteForceCollides(const MinHash& a, const MinHash& b, int tree_depth,
                        int num_b, int num_r) {
  const auto& av = a.values();
  const auto& bv = b.values();
  for (int t = 0; t < num_b; ++t) {
    bool match = true;
    for (int d = 0; d < num_r; ++d) {
      const size_t pos = static_cast<size_t>(t) * tree_depth + d;
      if ((av[pos] >> 29) != (bv[pos] >> 29)) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

TEST(LshForestTest, CreateRejectsBadParams) {
  EXPECT_FALSE(LshForest::Create(0, 8).ok());
  EXPECT_FALSE(LshForest::Create(32, 0).ok());
  EXPECT_TRUE(LshForest::Create(32, 8).ok());
}

TEST(LshForestTest, LifecycleEnforced) {
  auto family = Family();
  auto forest = LshForest::Create(32, 8).value();
  Rng rng(1);
  auto sketch = RandomSketch(family, rng);

  std::vector<uint64_t> out;
  // Query before Index() fails.
  EXPECT_TRUE(forest.Query(sketch, 1, 1, &out).IsFailedPrecondition());
  ASSERT_TRUE(forest.Add(1, sketch).ok());
  forest.Index();
  EXPECT_TRUE(forest.indexed());
  // Add after Index() fails.
  EXPECT_TRUE(forest.Add(2, sketch).IsFailedPrecondition());
  // Index() is idempotent.
  forest.Index();
  EXPECT_EQ(forest.size(), 1u);
}

TEST(LshForestTest, RejectsShortSignatures) {
  auto forest = LshForest::Create(32, 8).value();  // needs 256 hash values
  auto short_sig =
      MinHash::FromValues(Family(64), std::vector<uint64_t>{1, 2, 3});
  EXPECT_TRUE(forest.Add(1, short_sig).IsInvalidArgument());
}

TEST(LshForestTest, RejectsOutOfRangeBr) {
  auto family = Family();
  auto forest = LshForest::Create(32, 8).value();
  Rng rng(2);
  ASSERT_TRUE(forest.Add(1, RandomSketch(family, rng)).ok());
  forest.Index();
  auto query = RandomSketch(family, rng);
  std::vector<uint64_t> out;
  EXPECT_TRUE(forest.Query(query, 0, 1, &out).IsInvalidArgument());
  EXPECT_TRUE(forest.Query(query, 33, 1, &out).IsInvalidArgument());
  EXPECT_TRUE(forest.Query(query, 1, 0, &out).IsInvalidArgument());
  EXPECT_TRUE(forest.Query(query, 1, 9, &out).IsInvalidArgument());
  EXPECT_TRUE(forest.Query(query, 32, 8, &out).ok());
}

TEST(LshForestTest, SelfQueryAlwaysCollides) {
  auto family = Family();
  auto forest = LshForest::Create(32, 8).value();
  Rng rng(3);
  std::vector<MinHash> sketches;
  for (uint64_t id = 0; id < 20; ++id) {
    sketches.push_back(RandomSketch(family, rng));
    ASSERT_TRUE(forest.Add(id, sketches.back()).ok());
  }
  forest.Index();
  for (uint64_t id = 0; id < 20; ++id) {
    std::vector<uint64_t> out;
    ASSERT_TRUE(forest.Query(sketches[id], 1, 8, &out).ok());
    EXPECT_NE(std::find(out.begin(), out.end(), id), out.end());
  }
}

// Exhaustive equivalence against the brute-force banding definition, over
// the full (b, r) grid.
class LshForestEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LshForestEquivalence, MatchesBruteForce) {
  const int b = std::get<0>(GetParam());
  const int r = std::get<1>(GetParam());
  const int tree_depth = 4;
  const int num_trees = 16;
  auto family = Family(64, 11);

  Rng rng(777);
  auto forest = LshForest::Create(num_trees, tree_depth).value();
  std::vector<MinHash> sketches;
  constexpr int kDomains = 200;
  for (uint64_t id = 0; id < kDomains; ++id) {
    // Low-cardinality domains over a small universe so prefix collisions
    // actually happen at every depth.
    MinHash sketch(family);
    const size_t size = 1 + rng.NextBounded(4);
    for (size_t v = 0; v < size; ++v) sketch.Update(rng.NextBounded(12));
    sketches.push_back(sketch);
    ASSERT_TRUE(forest.Add(id, sketches.back()).ok());
  }
  forest.Index();

  MinHash query(family);
  for (int v = 0; v < 3; ++v) query.Update(rng.NextBounded(12));

  std::vector<uint64_t> got;
  ASSERT_TRUE(forest.Query(query, b, r, &got).ok());
  std::set<uint64_t> got_set(got.begin(), got.end());
  EXPECT_EQ(got_set.size(), got.size()) << "duplicate ids returned";

  std::set<uint64_t> expected;
  for (uint64_t id = 0; id < kDomains; ++id) {
    if (BruteForceCollides(query, sketches[id], tree_depth, b, r)) {
      expected.insert(id);
    }
  }
  EXPECT_EQ(got_set, expected) << "b=" << b << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(FullGrid, LshForestEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 8, 16),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(LshForestTest, DeeperPrefixIsMoreSelective) {
  auto family = Family();
  auto forest = LshForest::Create(32, 8).value();
  Rng rng(5);
  for (uint64_t id = 0; id < 500; ++id) {
    MinHash sketch(family);
    const size_t size = 1 + rng.NextBounded(5);
    for (size_t v = 0; v < size; ++v) sketch.Update(rng.NextBounded(30));
    ASSERT_TRUE(forest.Add(id, sketch).ok());
  }
  forest.Index();

  MinHash query(family);
  query.Update(7);
  query.Update(12);

  size_t previous = SIZE_MAX;
  for (int r = 1; r <= 8; ++r) {
    std::vector<uint64_t> out;
    ASSERT_TRUE(forest.Query(query, 32, r, &out).ok());
    EXPECT_LE(out.size(), previous) << "r=" << r;
    previous = out.size();
  }
}

TEST(LshForestTest, MoreTreesFindMore) {
  auto family = Family();
  auto forest = LshForest::Create(32, 8).value();
  Rng rng(6);
  for (uint64_t id = 0; id < 500; ++id) {
    MinHash sketch(family);
    const size_t size = 1 + rng.NextBounded(5);
    for (size_t v = 0; v < size; ++v) sketch.Update(rng.NextBounded(30));
    ASSERT_TRUE(forest.Add(id, sketch).ok());
  }
  forest.Index();

  MinHash query(family);
  query.Update(7);
  query.Update(12);

  size_t previous = 0;
  for (int b = 1; b <= 32; ++b) {
    std::vector<uint64_t> out;
    ASSERT_TRUE(forest.Query(query, b, 4, &out).ok());
    EXPECT_GE(out.size(), previous) << "b=" << b;
    previous = out.size();
  }
}

TEST(LshForestTest, DuplicateSignaturesBothReturned) {
  auto family = Family();
  auto forest = LshForest::Create(32, 8).value();
  auto sketch =
      MinHash::FromValues(family, std::vector<uint64_t>{1, 2, 3, 4});
  ASSERT_TRUE(forest.Add(100, sketch).ok());
  ASSERT_TRUE(forest.Add(200, sketch).ok());
  forest.Index();
  std::vector<uint64_t> out;
  ASSERT_TRUE(forest.Query(sketch, 1, 8, &out).ok());
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint64_t>{100, 200}));
}

TEST(LshForestTest, EmptyForestQueriesCleanly) {
  auto family = Family();
  auto forest = LshForest::Create(32, 8).value();
  forest.Index();
  Rng rng(9);
  std::vector<uint64_t> out;
  ASSERT_TRUE(forest.Query(RandomSketch(family, rng), 32, 8, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(LshForestTest, QueryAppendsAndMemoryReported) {
  auto family = Family();
  auto forest = LshForest::Create(32, 8).value();
  auto sketch = MinHash::FromValues(family, std::vector<uint64_t>{1});
  ASSERT_TRUE(forest.Add(5, sketch).ok());
  forest.Index();
  std::vector<uint64_t> out = {999};  // pre-existing content preserved
  ASSERT_TRUE(forest.Query(sketch, 1, 8, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 999u);
  EXPECT_EQ(out[1], 5u);
  EXPECT_GT(forest.MemoryBytes(), 0u);
}

TEST(LshForestTest, ProbeValidatesArguments) {
  auto family = Family(64);
  auto forest = LshForest::Create(8, 8).value();
  Rng rng(31);
  ASSERT_TRUE(forest.Add(1, RandomSketch(family, rng)).ok());
  forest.Index();
  const MinHash probe_sketch = RandomSketch(family, rng);
  LshForest::ProbeScratch scratch;
  std::vector<uint64_t> out;
  EXPECT_TRUE(
      forest.Probe(probe_sketch, 8, 8, nullptr, &out).IsInvalidArgument());
  EXPECT_TRUE(
      forest.Probe(probe_sketch, 8, 8, &scratch, nullptr).IsInvalidArgument());
  EXPECT_TRUE(forest.Probe(probe_sketch, 8, 8, &scratch, &out).ok());
}

// The same scratch reused across repeated probes (which engages the
// slot-0 range cache) and across different forests must keep answering
// exactly like a fresh scratch.
TEST(LshForestTest, SharedScratchMatchesFreshScratch) {
  auto family = Family(256);
  Rng rng(33);
  auto forest_a = LshForest::Create(32, 8).value();
  auto forest_b = LshForest::Create(32, 8).value();
  std::vector<MinHash> sketches;
  for (uint64_t id = 0; id < 120; ++id) {
    sketches.push_back(RandomSketch(family, rng, 30 + id % 40));
    ASSERT_TRUE(forest_a.Add(id, sketches.back()).ok());
    if (id % 2 == 0) {
      ASSERT_TRUE(forest_b.Add(id, sketches.back()).ok());
    }
  }
  forest_a.Index();
  forest_b.Index();

  LshForest::ProbeScratch shared;
  for (int round = 0; round < 3; ++round) {
    for (size_t qi = 0; qi < sketches.size(); qi += 7) {
      for (const auto* forest : {&forest_a, &forest_b}) {
        const int b = 1 + static_cast<int>(qi) % 32;
        const int r = 1 + static_cast<int>(qi) % 8;
        std::vector<uint64_t> expected, actual;
        LshForest::ProbeScratch fresh;
        ASSERT_TRUE(
            forest->Probe(sketches[qi], b, r, &fresh, &expected).ok());
        ASSERT_TRUE(
            forest->Probe(sketches[qi], b, r, &shared, &actual).ok());
        EXPECT_EQ(actual, expected)
            << "round " << round << " query " << qi << " b=" << b
            << " r=" << r;
      }
    }
  }
  EXPECT_GT(shared.MemoryBytes(), 0u);
}

// Probing the same forest thousands of times with one scratch exercises
// cache fills, hits, and (tree, key) slot collisions.
TEST(LshForestTest, RepeatedProbesWithWarmScratchStayCorrect) {
  auto family = Family(256);
  Rng rng(35);
  auto forest = LshForest::Create(32, 8).value();
  std::vector<MinHash> sketches;
  for (uint64_t id = 0; id < 200; ++id) {
    sketches.push_back(RandomSketch(family, rng, 25 + id % 30));
    ASSERT_TRUE(forest.Add(id, sketches.back()).ok());
  }
  forest.Index();

  LshForest::ProbeScratch warm;
  for (int round = 0; round < 20; ++round) {
    for (size_t qi = 0; qi < sketches.size(); qi += 11) {
      std::vector<uint64_t> expected, actual;
      ASSERT_TRUE(forest.Query(sketches[qi], 32, 4, &expected).ok());
      ASSERT_TRUE(forest.Probe(sketches[qi], 32, 4, &warm, &actual).ok());
      ASSERT_EQ(actual, expected) << "round " << round << " query " << qi;
    }
  }
}

// Forests above the run-index size cap take the descent path, where the
// scratch's range cache and per-tree memo engage from the second
// consecutive probe on.
LshForest BigForest(const std::shared_ptr<const HashFamily>& family,
                    Rng& rng, size_t n) {
  auto forest = LshForest::Create(8, 2).value();
  for (uint64_t id = 0; id < n; ++id) {
    EXPECT_TRUE(forest.Add(id, RandomSketch(family, rng, 5)).ok());
  }
  forest.Index();
  return forest;
}

TEST(LshForestTest, ScratchReleasesMemoCachesWhenStreakResets) {
  auto family = Family(16);
  Rng rng(91);
  // Large enough that probes descend (and so allocate the memo caches).
  LshForest big = BigForest(family, rng, 5000);
  auto small_a = LshForest::Create(8, 2).value();
  auto small_b = LshForest::Create(8, 2).value();
  for (uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(small_a.Add(id, RandomSketch(family, rng, 5)).ok());
    ASSERT_TRUE(small_b.Add(id, RandomSketch(family, rng, 5)).ok());
  }
  small_a.Index();
  small_b.Index();

  LshForest::ProbeScratch scratch;
  const MinHash query = RandomSketch(family, rng, 5);
  std::vector<uint64_t> out;
  ASSERT_TRUE(big.Probe(query, 8, 2, &scratch, &out).ok());
  const size_t before_engage = scratch.MemoryBytes();
  out.clear();
  ASSERT_TRUE(big.Probe(query, 8, 2, &scratch, &out).ok());
  const size_t engaged = scratch.MemoryBytes();
  EXPECT_GT(engaged, before_engage);  // cache + memo were allocated

  // One probe of a different forest keeps the caches (the batched
  // partition-cycling pattern returns to the big forest)...
  out.clear();
  ASSERT_TRUE(small_a.Probe(query, 8, 2, &scratch, &out).ok());
  EXPECT_EQ(scratch.MemoryBytes(), engaged);

  // ...but a second owner change without the memos re-engaging releases
  // them: the scratch left the cycling pattern and must not pin the
  // stale memo memory.
  out.clear();
  ASSERT_TRUE(small_b.Probe(query, 8, 2, &scratch, &out).ok());
  EXPECT_LT(scratch.MemoryBytes(), engaged);

  // The released scratch still answers correctly and can re-engage.
  for (int round = 0; round < 3; ++round) {
    std::vector<uint64_t> expected, actual;
    ASSERT_TRUE(big.Query(query, 8, 2, &expected).ok());
    ASSERT_TRUE(big.Probe(query, 8, 2, &scratch, &actual).ok());
    EXPECT_EQ(actual, expected);
  }
}

TEST(LshForestTest, SlotZeroCountersAdvance) {
  auto family = Family(16);
  Rng rng(92);

  // Small forest: the run index answers every tree of a self-probe
  // without a descent, one cache hit per tree.
  auto small = LshForest::Create(8, 2).value();
  std::vector<MinHash> sketches;
  for (uint64_t id = 0; id < 50; ++id) {
    sketches.push_back(RandomSketch(family, rng, 5));
    ASSERT_TRUE(small.Add(id, sketches.back()).ok());
  }
  small.Index();
  LshForest::ProbeScratch scratch;
  std::vector<uint64_t> out;
  ASSERT_TRUE(small.Probe(sketches[0], 8, 2, &scratch, &out).ok());
  EXPECT_EQ(scratch.slot0_cache_hits(), 8u);
  EXPECT_EQ(scratch.slot0_gallop_resumes(), 0u);

  // Big forest, repeated probes: the third identical probe is answered
  // from the engaged range cache, and alternating with a second query
  // makes descents gallop from the per-tree memo.
  LshForest big = BigForest(family, rng, 5000);
  LshForest::ProbeScratch warm;
  const MinHash q1 = RandomSketch(family, rng, 5);
  const MinHash q2 = RandomSketch(family, rng, 5);
  for (int i = 0; i < 3; ++i) {
    out.clear();
    ASSERT_TRUE(big.Probe(q1, 8, 2, &warm, &out).ok());
  }
  EXPECT_GT(warm.slot0_cache_hits(), 0u);
  const uint64_t gallops_before = warm.slot0_gallop_resumes();
  out.clear();
  ASSERT_TRUE(big.Probe(q2, 8, 2, &warm, &out).ok());
  EXPECT_GT(warm.slot0_gallop_resumes(), gallops_before);
}

}  // namespace
}  // namespace lshensemble
