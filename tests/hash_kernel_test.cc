// Parity tests for the runtime-dispatched SIMD kernels: every available
// table (scalar, avx2, avx512) must produce bit-identical signatures and
// identical probe-refine ranges, and serialized sketch bytes must match
// the golden values captured from the seed scalar implementation — the
// wire format never depends on the host CPU.

#include "minhash/hash_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/domain.h"
#include "data/sketcher.h"
#include "core/lsh_ensemble.h"
#include "minhash/hash_family.h"
#include "minhash/minhash.h"
#include "util/hashing.h"
#include "util/random.h"

namespace lshensemble {
namespace {

std::vector<const HashKernelOps*> AvailableKernels() {
  std::vector<const HashKernelOps*> kernels = {&ScalarKernelOps()};
  if (const HashKernelOps* avx2 = Avx2KernelOps()) kernels.push_back(avx2);
  if (const HashKernelOps* avx512 = Avx512KernelOps()) {
    kernels.push_back(avx512);
  }
  return kernels;
}

std::vector<uint64_t> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> values(n);
  for (uint64_t& v : values) v = rng.Next();
  return values;
}

// The reference: the seed implementation's per-value scalar loop.
std::vector<uint64_t> ReferenceMins(const HashFamily& family,
                                    const std::vector<uint64_t>& values) {
  std::vector<uint64_t> mins(family.num_hashes(), MinHash::kEmptySlot);
  for (uint64_t v : values) {
    ScalarKernelOps().update_one(family.multipliers().data(),
                                 family.offsets().data(), mins.size(), v,
                                 mins.data());
  }
  return mins;
}

TEST(HashKernelTest, AllKernelsBitIdentical) {
  // Odd sizes exercise every tail path (m % 16, m % 8, m % 4).
  for (const int m : {1, 3, 4, 7, 8, 9, 16, 31, 64, 127, 128, 250, 256}) {
    auto family = HashFamily::Create(m, /*seed=*/m * 977 + 5).value();
    const std::vector<uint64_t> values = RandomValues(700, m * 31 + 1);
    const std::vector<uint64_t> reference = ReferenceMins(*family, values);

    for (const HashKernelOps* ops : AvailableKernels()) {
      SCOPED_TRACE(::testing::Message() << ops->name << " m=" << m);
      std::vector<uint64_t> one(m, MinHash::kEmptySlot);
      for (uint64_t v : values) {
        ops->update_one(family->multipliers().data(),
                        family->offsets().data(), one.size(), v, one.data());
      }
      EXPECT_EQ(one, reference);

      std::vector<uint64_t> batch(m, MinHash::kEmptySlot);
      ops->update_batch(family->multipliers().data(),
                        family->offsets().data(), batch.size(),
                        values.data(), values.size(), batch.data());
      EXPECT_EQ(batch, reference);
    }
  }
}

TEST(HashKernelTest, CountCollisionsParityAcrossKernels) {
  // Signature pairs with planted collisions and empty-slot runs; every
  // kernel must reproduce the brute-force count exactly (it feeds the
  // Jaccard estimator, so an off-by-one would skew every ranking).
  for (const int m : {1, 3, 4, 7, 8, 9, 16, 31, 64, 127, 128, 250, 256}) {
    Rng rng(m * 131 + 7);
    std::vector<uint64_t> a(m), b(m);
    for (int i = 0; i < m; ++i) {
      a[i] = rng.Next() % kMersennePrime61;
      switch (rng.Next() % 4) {
        case 0:  b[i] = a[i]; break;                      // collision
        case 1:  b[i] = rng.Next() % kMersennePrime61; break;
        case 2:  a[i] = MinHash::kEmptySlot; b[i] = MinHash::kEmptySlot;
                 break;                                   // both empty: no hit
        default: b[i] = MinHash::kEmptySlot; break;
      }
    }
    size_t expected = 0;
    for (int i = 0; i < m; ++i) {
      if (a[i] == b[i] && a[i] != MinHash::kEmptySlot) ++expected;
    }
    for (const HashKernelOps* ops : AvailableKernels()) {
      SCOPED_TRACE(::testing::Message() << ops->name << " m=" << m);
      EXPECT_EQ(ops->count_collisions(a.data(), b.data(), a.size()),
                expected);
    }
  }
}

TEST(HashKernelTest, CountCollisionsManyMatchesSingle) {
  // The arena form must agree with per-pair counts for every kernel, at
  // odd arena lengths (the record-pair unroll has a tail) and odd m.
  for (const int m : {1, 4, 7, 8, 16, 128, 250, 256}) {
    Rng rng(m * 997 + 3);
    std::vector<uint64_t> query(m);
    for (auto& v : query) {
      v = (rng.Next() % 8 == 0) ? MinHash::kEmptySlot
                                : rng.Next() % kMersennePrime61;
    }
    for (const size_t n : {1ul, 2ul, 3ul, 5ul, 17ul}) {
      std::vector<uint64_t> arena(n * m);
      for (size_t j = 0; j < n; ++j) {
        for (int i = 0; i < m; ++i) {
          // Plant frequent collisions so counts are non-trivial.
          arena[j * m + i] = (rng.Next() % 3 == 0)
                                 ? query[i]
                                 : rng.Next() % kMersennePrime61;
        }
      }
      std::vector<uint32_t> expected(n);
      for (size_t j = 0; j < n; ++j) {
        expected[j] = static_cast<uint32_t>(ScalarKernelOps().count_collisions(
            query.data(), arena.data() + j * m, m));
      }
      for (const HashKernelOps* ops : AvailableKernels()) {
        SCOPED_TRACE(::testing::Message()
                     << ops->name << " m=" << m << " n=" << n);
        std::vector<uint32_t> counts(n, 12345);
        ops->count_collisions_many(query.data(), arena.data(), m, n,
                                   counts.data());
        EXPECT_EQ(counts, expected);
      }
    }
  }
}

TEST(HashKernelTest, EstimateJaccardMatchesBruteForce) {
  auto family = HashFamily::Create(128, 77).value();
  const std::vector<uint64_t> shared = RandomValues(400, 11);
  std::vector<uint64_t> left(shared.begin(), shared.begin() + 300);
  std::vector<uint64_t> right(shared.begin() + 100, shared.end());
  const MinHash a = MinHash::FromValues(family, left);
  const MinHash b = MinHash::FromValues(family, right);
  size_t collisions = 0;
  for (size_t i = 0; i < a.values().size(); ++i) {
    if (a.values()[i] == b.values()[i] &&
        a.values()[i] != MinHash::kEmptySlot) {
      ++collisions;
    }
  }
  const double expected = static_cast<double>(collisions) / 128.0;
  EXPECT_EQ(a.EstimateJaccard(b).value(), expected);
  EXPECT_EQ(b.EstimateJaccard(a).value(), expected);
}

TEST(HashKernelTest, BatchSplitsArbitrarily) {
  // Feeding a batch in uneven pieces (including chunk-boundary straddles)
  // must land on the same signature.
  auto family = HashFamily::Create(96, 77).value();
  const std::vector<uint64_t> values = RandomValues(1000, 4242);
  const std::vector<uint64_t> reference = ReferenceMins(*family, values);

  for (const HashKernelOps* ops : AvailableKernels()) {
    SCOPED_TRACE(ops->name);
    std::vector<uint64_t> mins(96, MinHash::kEmptySlot);
    size_t offset = 0;
    for (const size_t piece : {1ul, 7ul, 255ul, 256ul, 257ul, 224ul}) {
      ops->update_batch(family->multipliers().data(),
                        family->offsets().data(), mins.size(),
                        values.data() + offset, piece, mins.data());
      offset += piece;
    }
    ASSERT_EQ(offset, values.size());
    EXPECT_EQ(mins, reference);
  }
}

TEST(HashKernelTest, MinHashUpdateBatchMatchesPerValueUpdate) {
  auto family = HashFamily::Create(128, 3).value();
  const std::vector<uint64_t> values = RandomValues(300, 99);

  MinHash streamed(family);
  for (uint64_t v : values) streamed.Update(v);
  MinHash batched(family);
  batched.UpdateBatch(values);
  EXPECT_EQ(streamed.values(), batched.values());

  const MinHash from_values = MinHash::FromValues(family, values);
  EXPECT_EQ(streamed.values(), from_values.values());
}

// ------------------------------------------------- golden serialization --

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(HashKernelTest, GoldenSerializedBytesUnchanged) {
  // Captured from the seed scalar implementation (pre-SIMD): family seed
  // 42, values Mix64(i * 2654435761 + 17) for i in [0, 1000). Any kernel
  // or CPU that changes these bytes breaks index compatibility.
  struct Golden {
    int m;
    uint64_t fnv;
    uint64_t mins0;
    uint64_t mins_last;
  };
  const Golden goldens[] = {
      {8, 0x15ef6fbdb6a83d59ULL, 585304598357091ULL, 1703590829371666ULL},
      {64, 0xf275a5192089e9abULL, 585304598357091ULL, 1413858160149110ULL},
      {128, 0x2e4290e58379460eULL, 585304598357091ULL, 5005722929477981ULL},
      {256, 0xcf363f454233f9ceULL, 585304598357091ULL, 1724601424230197ULL},
  };
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 1000; ++i) {
    values.push_back(Mix64(i * 2654435761ULL + 17));
  }
  for (const Golden& golden : goldens) {
    SCOPED_TRACE(golden.m);
    auto family = HashFamily::Create(golden.m, 42).value();
    const MinHash sketch = MinHash::FromValues(family, values);
    EXPECT_EQ(sketch.values().front(), golden.mins0);
    EXPECT_EQ(sketch.values().back(), golden.mins_last);
    std::string blob;
    sketch.SerializeTo(&blob);
    EXPECT_EQ(Fnv1a(blob), golden.fnv);
  }
}

// ------------------------------------------------------- prefix refine --

TEST(HashKernelTest, RefinePrefixRangeParity) {
  Rng rng(2024);
  for (const int depth : {2, 4, 8, 9, 12}) {
    // A small alphabet forces plenty of duplicate prefixes, so refined
    // ranges are regularly non-trivial and both linear and binary paths
    // run (slot-0 runs of length > 8 trigger the binary search).
    const size_t n = 400;
    std::vector<std::vector<uint32_t>> rows(n, std::vector<uint32_t>(depth));
    for (auto& row : rows) {
      for (uint32_t& k : row) k = static_cast<uint32_t>(rng.NextInRange(0, 3));
    }
    std::sort(rows.begin(), rows.end());
    std::vector<uint32_t> arena;
    for (const auto& row : rows) {
      arena.insert(arena.end(), row.begin(), row.end());
    }

    for (int trial = 0; trial < 200; ++trial) {
      std::vector<uint32_t> prefix(depth);
      for (uint32_t& k : prefix) {
        k = static_cast<uint32_t>(rng.NextInRange(0, 3));
      }
      // Slot-0 equal range, as Probe() computes before refining.
      size_t lo = 0, hi = n;
      while (lo < n && rows[lo][0] < prefix[0]) ++lo;
      hi = lo;
      while (hi < n && rows[hi][0] == prefix[0]) ++hi;

      const int r = static_cast<int>(rng.NextInRange(2, depth));
      for (const HashKernelOps* ops : AvailableKernels()) {
        SCOPED_TRACE(::testing::Message()
                     << ops->name << " depth=" << depth << " r=" << r);
        size_t got_lo = lo, got_hi = hi;
        ops->refine_prefix_range(arena.data(), depth, prefix.data(), r,
                                 &got_lo, &got_hi);
        size_t want_lo = lo, want_hi = hi;
        ScalarKernelOps().refine_prefix_range(arena.data(), depth,
                                              prefix.data(), r, &want_lo,
                                              &want_hi);
        EXPECT_EQ(got_lo, want_lo);
        EXPECT_EQ(got_hi, want_hi);
        // Cross-check the scalar result against a brute-force filter.
        size_t brute_lo = hi, brute_hi = hi;
        for (size_t pos = lo; pos < hi; ++pos) {
          const bool match = std::equal(prefix.begin(), prefix.begin() + r,
                                        rows[pos].begin());
          if (match) {
            brute_lo = std::min(brute_lo, pos);
            brute_hi = pos + 1;
          }
        }
        if (brute_lo >= brute_hi) {
          EXPECT_EQ(want_lo, want_hi);
        } else {
          EXPECT_EQ(want_lo, brute_lo);
          EXPECT_EQ(want_hi, brute_hi);
        }
      }
    }
  }
}

// ---------------------------------------------------- lower bound many --

// Cross-kernel parity for the lockstep slot-0 descent: every available
// table must return the scalar table's exact equal ranges across array
// sizes, batch counts (vector main loop + scalar tail), duplicate-heavy
// key distributions, and seeded sub-windows like the ones Probe's
// galloping warm-start produces.
TEST(HashKernelTest, LowerBoundManyParity) {
  Rng rng(77);
  for (const uint32_t n : {1u, 2u, 3u, 7u, 8u, 31u, 52u, 400u, 4099u}) {
    // Alphabet 2 forces giant runs, 16 mixes runs and misses, and the
    // full-width draw makes nearly every key distinct (and most lookups
    // misses).
    for (const uint64_t alphabet : {uint64_t{2}, uint64_t{16},
                                    uint64_t{1} << 32}) {
      const uint32_t num_trees = 5;
      std::vector<uint32_t> arena(static_cast<size_t>(num_trees) * n);
      for (uint32_t t = 0; t < num_trees; ++t) {
        uint32_t* first = arena.data() + static_cast<size_t>(t) * n;
        for (uint32_t i = 0; i < n; ++i) {
          first[i] =
              static_cast<uint32_t>(rng.NextInRange(0, alphabet - 1));
        }
        std::sort(first, first + n);
      }
      // Batch sizes around the 8/16-lane vector widths, plus tails.
      for (const size_t count : {size_t{1}, size_t{7}, size_t{8},
                                 size_t{16}, size_t{37}}) {
        std::vector<uint32_t> trees(count), keys(count);
        std::vector<uint32_t> want_lo(count), want_hi(count);
        for (size_t i = 0; i < count; ++i) {
          trees[i] = static_cast<uint32_t>(rng.NextInRange(0, num_trees - 1));
          // Mix present keys with near-misses (+-1 probes run edges).
          const uint32_t* first =
              arena.data() + static_cast<size_t>(trees[i]) * n;
          uint32_t key = first[rng.NextInRange(0, n - 1)];
          if (rng.NextInRange(0, 2) == 0) {
            key += static_cast<uint32_t>(rng.NextInRange(0, 2)) - 1;
          }
          keys[i] = key;
          const uint32_t lb = static_cast<uint32_t>(
              std::lower_bound(first, first + n, key) - first);
          const uint32_t ub = static_cast<uint32_t>(
              std::upper_bound(first, first + n, key) - first);
          // Seed a valid bracketing window: full array, the exact range
          // (possibly empty), or a random widening of it — the same
          // contract Probe's gallop guarantees.
          switch (rng.NextInRange(0, 2)) {
            case 0:
              want_lo[i] = 0;
              want_hi[i] = n;
              break;
            case 1:
              want_lo[i] = lb;
              want_hi[i] = ub;
              break;
            default:
              want_lo[i] =
                  static_cast<uint32_t>(rng.NextInRange(0, lb));
              want_hi[i] =
                  static_cast<uint32_t>(rng.NextInRange(ub, n));
              break;
          }
        }
        std::vector<uint32_t> ref_lo = want_lo, ref_hi = want_hi;
        ScalarKernelOps().lower_bound_many(arena.data(), n, trees.data(),
                                           keys.data(), count,
                                           ref_lo.data(), ref_hi.data());
        for (size_t i = 0; i < count; ++i) {
          const uint32_t* first =
              arena.data() + static_cast<size_t>(trees[i]) * n;
          EXPECT_EQ(ref_lo[i], std::lower_bound(first, first + n, keys[i]) -
                                   first);
          EXPECT_EQ(ref_hi[i], std::upper_bound(first, first + n, keys[i]) -
                                   first);
        }
        for (const HashKernelOps* ops : AvailableKernels()) {
          SCOPED_TRACE(::testing::Message()
                       << ops->name << " n=" << n << " alphabet=" << alphabet
                       << " count=" << count);
          std::vector<uint32_t> got_lo = want_lo, got_hi = want_hi;
          ops->lower_bound_many(arena.data(), n, trees.data(), keys.data(),
                                count, got_lo.data(), got_hi.data());
          EXPECT_EQ(got_lo, ref_lo);
          EXPECT_EQ(got_hi, ref_hi);
        }
      }
    }
  }
}

// --------------------------------------------------- parallel sketcher --

Corpus SmallCorpus(size_t domains, uint64_t seed) {
  Rng rng(seed);
  Corpus corpus;
  for (size_t d = 0; d < domains; ++d) {
    std::vector<uint64_t> values(rng.NextInRange(1, 300));
    for (uint64_t& v : values) v = rng.Next();
    std::string name = "d";
    name += std::to_string(d);
    corpus.Add(Domain::FromValues(d + 1, std::move(name), std::move(values)));
  }
  return corpus;
}

TEST(ParallelSketcherTest, MatchesPerDomainFromValues) {
  auto family = HashFamily::Create(64, 11).value();
  const Corpus corpus = SmallCorpus(64, 8);
  for (const bool parallel : {false, true}) {
    SketcherOptions options;
    options.parallel = parallel;
    const ParallelSketcher sketcher(family, options);
    const std::vector<MinHash> sketches = sketcher.SketchCorpus(corpus);
    ASSERT_EQ(sketches.size(), corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      const MinHash expected =
          MinHash::FromValues(family, corpus.domain(i).values);
      EXPECT_EQ(sketches[i].values(), expected.values());
    }
  }
}

TEST(ParallelSketcherTest, SketchSubsetOnlyTouchesRequested) {
  auto family = HashFamily::Create(32, 12).value();
  const Corpus corpus = SmallCorpus(20, 9);
  std::vector<MinHash> out(corpus.size());
  const std::vector<size_t> indices = {1, 5, 19};
  const ParallelSketcher sketcher(family);
  sketcher.SketchSubset(corpus, indices, &out);
  for (size_t i = 0; i < corpus.size(); ++i) {
    const bool requested =
        std::find(indices.begin(), indices.end(), i) != indices.end();
    EXPECT_EQ(out[i].valid(), requested);
    if (requested) {
      const MinHash expected =
          MinHash::FromValues(family, corpus.domain(i).values);
      EXPECT_EQ(out[i].values(), expected.values());
    }
  }
}

TEST(ParallelSketcherTest, AddCorpusBuildsQueryableEnsemble) {
  auto family = HashFamily::Create(128, 13).value();
  const Corpus corpus = SmallCorpus(200, 10);
  LshEnsembleOptions options;
  options.num_hashes = 128;
  options.num_partitions = 4;
  LshEnsembleBuilder builder(options, family);
  const ParallelSketcher sketcher(family);
  ASSERT_TRUE(AddCorpus(corpus, sketcher, &builder).ok());
  auto ensemble = std::move(builder).Build();
  ASSERT_TRUE(ensemble.ok());
  EXPECT_EQ(ensemble->size(), corpus.size());

  // A corpus domain used as its own query must come back as a candidate.
  const MinHash query =
      MinHash::FromValues(family, corpus.domain(3).values);
  std::vector<uint64_t> ids;
  ASSERT_TRUE(ensemble
                  ->Query(query, corpus.domain(3).size(), /*t_star=*/0.9,
                          &ids)
                  .ok());
  EXPECT_NE(std::find(ids.begin(), ids.end(), corpus.domain(3).id),
            ids.end());
}

TEST(HashKernelTest, ActiveKernelIsAvailable) {
  const HashKernelOps& active = ActiveKernelOps();
  EXPECT_NE(active.name, nullptr);
  EXPECT_NE(active.update_one, nullptr);
  EXPECT_NE(active.update_batch, nullptr);
  EXPECT_NE(active.refine_prefix_range, nullptr);
  EXPECT_NE(active.lower_bound_many, nullptr);
}

}  // namespace
}  // namespace lshensemble
