// Snapshot verification (io/fsck.h): both image formats verify clean,
// every corruption is caught and NAMED (the error carries the failing
// file's path, so an operator knows what to restore), quarantine moves
// stray files aside without deleting bytes, and a failed sharded open
// releases every mapping it had acquired.

#include "io/fsck.h"

#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/lsh_ensemble.h"
#include "core/sharded_ensemble.h"
#include "data/corpus.h"
#include "io/ensemble_io.h"
#include "io/env.h"
#include "io/file.h"
#include "io/snapshot.h"
#include "minhash/minhash.h"
#include "test_tmp.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

constexpr int kNumHashes = 64;

/// Truncate the file to half its size: a deterministic corruption every
/// validation depth must catch (a flipped byte could land in alignment
/// padding that no checksum covers).
void TruncateToHalf(const std::string& path) {
  std::string image;
  ASSERT_TRUE(Env::Default()->ReadFileToString(path, &image).ok());
  ASSERT_GT(image.size(), 16u);
  image.resize(image.size() / 2);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  ASSERT_TRUE(out.good());
}

class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    family_ = HashFamily::Create(kNumHashes, 5).value();
    CorpusGenOptions gen;
    gen.num_domains = 80;
    gen.seed = 321;
    corpus_ = CorpusGenerator(gen).Generate().value();
    for (size_t i = 0; i < corpus_->size(); ++i) {
      sketches_.push_back(
          MinHash::FromValues(family_, corpus_->domain(i).values));
    }
  }

  ShardedEnsembleOptions ShardOptions() const {
    ShardedEnsembleOptions options;
    options.base.base.num_partitions = 4;
    options.base.base.num_hashes = kNumHashes;
    options.base.base.tree_depth = 4;
    options.base.min_delta_for_rebuild = 1 << 30;
    options.num_shards = 2;
    return options;
  }

  /// A flushed two-shard index saved under a fresh directory.
  std::string SaveShardedSnapshot(const std::string& name) {
    auto index = ShardedEnsemble::Create(ShardOptions(), family_).value();
    for (size_t i = 0; i < corpus_->size(); ++i) {
      const Domain& domain = corpus_->domain(i);
      EXPECT_TRUE(
          index.Insert(domain.id, domain.size(), sketches_[i]).ok());
    }
    EXPECT_TRUE(index.Flush().ok());
    const std::string dir = ProcessTempPath(name);
    EXPECT_TRUE(index.SaveSnapshot(dir).ok());
    return dir;
  }

  std::shared_ptr<const HashFamily> family_;
  std::optional<Corpus> corpus_;
  std::vector<MinHash> sketches_;
};

TEST_F(FsckTest, VerifiesBothImageFormats) {
  // v2: a dynamic snapshot.
  DynamicEnsembleOptions options = ShardOptions().base;
  auto dynamic = DynamicLshEnsemble::Create(options, family_).value();
  for (size_t i = 0; i < 20; ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(
        dynamic.Insert(domain.id, domain.size(), sketches_[i]).ok());
  }
  ASSERT_TRUE(dynamic.Flush().ok());
  const std::string v2_path = ProcessTempPath("fsck_v2.lshe2");
  ASSERT_TRUE(WriteDynamicSnapshot(dynamic, v2_path).ok());
  auto v2_report = VerifySnapshotFile(v2_path);
  ASSERT_TRUE(v2_report.ok()) << v2_report.status().ToString();
  EXPECT_EQ(v2_report.value().format_version, 2u);
  EXPECT_FALSE(v2_report.value().sharded);

  // v1: the legacy block-container image.
  LshEnsembleOptions v1_options{.num_partitions = 4,
                                .num_hashes = kNumHashes, .tree_depth = 4};
  LshEnsembleBuilder builder(v1_options, family_);
  for (size_t i = 0; i < 20; ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(
        builder.Add(domain.id, domain.size(), sketches_[i]).ok());
  }
  const LshEnsemble v1_index = std::move(builder).Build().value();
  const std::string v1_path = ProcessTempPath("fsck_v1.bin");
  ASSERT_TRUE(SaveEnsemble(v1_index, v1_path).ok());
  auto v1_report = VerifySnapshotFile(v1_path);
  ASSERT_TRUE(v1_report.ok()) << v1_report.status().ToString();
  EXPECT_EQ(v1_report.value().format_version, 1u);
}

TEST_F(FsckTest, CorruptionIsCaughtAndNamed) {
  DynamicEnsembleOptions options = ShardOptions().base;
  auto dynamic = DynamicLshEnsemble::Create(options, family_).value();
  std::vector<uint64_t> values = {1, 2, 3, 4, 5};
  ASSERT_TRUE(dynamic.Insert(1, values).ok());
  ASSERT_TRUE(dynamic.Flush().ok());
  const std::string path = ProcessTempPath("fsck_corrupt.lshe2");
  ASSERT_TRUE(WriteDynamicSnapshot(dynamic, path).ok());

  TruncateToHalf(path);
  const Status status = VerifySnapshotFile(path).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("fsck_corrupt.lshe2"), std::string::npos)
      << status.ToString();

  EXPECT_FALSE(VerifySnapshotFile(ProcessTempPath("no_such.bin")).ok());
  const std::string junk = ProcessTempPath("fsck_junk.bin");
  ASSERT_TRUE(WriteFileAtomic(Env::Default(), junk,
                              "twelve bytes of not an image")
                  .ok());
  EXPECT_TRUE(VerifySnapshotFile(junk).status().IsCorruption());
}

TEST_F(FsckTest, ShardedDirVerifiesAndCountsShards) {
  const std::string dir = SaveShardedSnapshot("fsck_dir_ok");
  auto report = VerifySnapshotDir(dir, /*quarantine_strays=*/false);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().sharded);
  EXPECT_EQ(report.value().shards_verified, 2u);
  EXPECT_TRUE(report.value().stray_files.empty());
  EXPECT_FALSE(report.value().strays_quarantined);
}

TEST_F(FsckTest, CorruptShardIsNamedByBothFsckAndOpen) {
  const std::string dir = SaveShardedSnapshot("fsck_dir_corrupt");
  const std::string shard_name = ShardedEnsemble::ShardSnapshotFileName(1);
  TruncateToHalf(dir + "/" + shard_name);

  const Status fsck_status = VerifySnapshotDir(dir, false).status();
  ASSERT_FALSE(fsck_status.ok());
  EXPECT_NE(fsck_status.message().find(shard_name), std::string::npos)
      << fsck_status.ToString();

  // The open fails with the same culprit named — and releases every
  // mapping it had acquired before the bad shard (satellite contract:
  // a failed OpenSnapshot leaves no mappings live).
  const size_t baseline = MappedFile::LiveMappingCount();
  auto opened = ShardedEnsemble::OpenSnapshot(dir, ShardOptions());
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find(shard_name), std::string::npos)
      << opened.status().ToString();
  EXPECT_EQ(MappedFile::LiveMappingCount(), baseline);
}

TEST_F(FsckTest, MissingShardFailsBothPaths) {
  const std::string dir = SaveShardedSnapshot("fsck_dir_missing");
  const std::string shard_name = ShardedEnsemble::ShardSnapshotFileName(0);
  ASSERT_TRUE(Env::Default()->RemoveFileIfExists(dir + "/" + shard_name).ok());

  const Status fsck_status = VerifySnapshotDir(dir, false).status();
  ASSERT_FALSE(fsck_status.ok());
  EXPECT_NE(fsck_status.message().find(shard_name), std::string::npos);

  const size_t baseline = MappedFile::LiveMappingCount();
  auto opened = ShardedEnsemble::OpenSnapshot(dir, ShardOptions());
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find(shard_name), std::string::npos);
  EXPECT_EQ(MappedFile::LiveMappingCount(), baseline);
}

TEST_F(FsckTest, QuarantineMovesStraysWithoutDeleting) {
  const std::string dir = SaveShardedSnapshot("fsck_dir_strays");
  Env* env = Env::Default();
  ASSERT_TRUE(
      WriteFileAtomic(env, dir + "/MANIFEST.tmp", "torn leftover").ok());
  ASSERT_TRUE(WriteFileAtomic(env, dir + "/shard-9.lshe2", "orphan").ok());

  // Report-only first: strays listed, nothing moved.
  auto report = VerifySnapshotDir(dir, /*quarantine_strays=*/false);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().stray_files,
            (std::vector<std::string>{"MANIFEST.tmp", "shard-9.lshe2"}));
  EXPECT_FALSE(report.value().strays_quarantined);
  EXPECT_TRUE(env->FileExists(dir + "/MANIFEST.tmp"));

  // Quarantine: the bytes move aside, the directory verifies clean, and
  // the snapshot still opens.
  report = VerifySnapshotDir(dir, /*quarantine_strays=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().strays_quarantined);
  EXPECT_FALSE(env->FileExists(dir + "/MANIFEST.tmp"));
  EXPECT_TRUE(env->FileExists(dir + "/quarantine/MANIFEST.tmp"));
  EXPECT_TRUE(env->FileExists(dir + "/quarantine/shard-9.lshe2"));
  std::string preserved;
  ASSERT_TRUE(
      env->ReadFileToString(dir + "/quarantine/MANIFEST.tmp", &preserved)
          .ok());
  EXPECT_EQ(preserved, "torn leftover");

  auto clean = VerifySnapshotDir(dir, false);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean.value().stray_files.empty());
  EXPECT_TRUE(ShardedEnsemble::OpenSnapshot(dir, ShardOptions()).ok());
}

TEST_F(FsckTest, DirVerifyFailsWithoutManifest) {
  const std::string dir = ProcessTempPath("fsck_dir_empty");
  ASSERT_TRUE(Env::Default()->CreateDirectories(dir).ok());
  EXPECT_FALSE(VerifySnapshotDir(dir, false).ok());
}

}  // namespace
}  // namespace lshensemble
