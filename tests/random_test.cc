#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace lshensemble {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool any_different = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    any_different |= (a2.Next() != c.Next());
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenLowNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDoubleOpenLow();
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(99);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(4242);
  constexpr uint64_t kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, expected * 0.08) << "bucket " << b;
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextInRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 13);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(11);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(PowerLawSamplerTest, RespectsBounds) {
  PowerLawSampler sampler(2.0, 10, 1000);
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = sampler.Sample(rng);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 1000u);
  }
}

TEST(PowerLawSamplerTest, DegenerateRange) {
  PowerLawSampler sampler(2.5, 7, 7);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.Sample(rng), 7u);
  }
}

// The CCDF of a power law with exponent alpha satisfies
// log P(X >= x) ~ -(alpha - 1) log x; regress to recover alpha.
TEST(PowerLawSamplerTest, TailExponentRecoverable) {
  const double alpha = 2.0;
  PowerLawSampler sampler(alpha, 10, 1000000);
  Rng rng(20240611);
  constexpr int kSamples = 200000;
  std::vector<uint64_t> samples(kSamples);
  for (auto& s : samples) s = sampler.Sample(rng);
  std::sort(samples.begin(), samples.end());

  // Estimate via the Hill estimator over the full bounded support's lower
  // decades (far from the truncation point).
  double log_sum = 0.0;
  int count = 0;
  const double x_min = 10.0;
  for (uint64_t s : samples) {
    if (s <= 10000) {  // stay well below the upper truncation
      log_sum += std::log(static_cast<double>(s) / x_min);
      ++count;
    }
  }
  const double alpha_hat = 1.0 + static_cast<double>(count) / log_sum;
  EXPECT_NEAR(alpha_hat, alpha, 0.15);
}

TEST(PowerLawSamplerTest, SmallSizesDominante) {
  PowerLawSampler sampler(2.0, 10, 100000);
  Rng rng(3);
  int small = 0, total = 50000;
  for (int i = 0; i < total; ++i) {
    if (sampler.Sample(rng) < 100) ++small;
  }
  // For alpha=2 truncated at [10, 1e5]: P(X < 100) ~ 0.9.
  EXPECT_GT(small, total * 8 / 10);
}

TEST(ZipfSamplerTest, RespectsRange) {
  ZipfSampler sampler(1000, 1.2);
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = sampler.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
  }
}

TEST(ZipfSamplerTest, RankOneIsMostFrequent) {
  ZipfSampler sampler(100, 1.0);
  Rng rng(23);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100000; ++i) ++counts[sampler.Sample(rng)];
  for (int k = 2; k <= 100; ++k) {
    EXPECT_GE(counts[1], counts[k]) << "rank " << k;
  }
}

TEST(ZipfSamplerTest, FrequencyRatioMatchesExponent) {
  const double s = 1.5;
  ZipfSampler sampler(1000, s);
  Rng rng(29);
  std::vector<int> counts(1001, 0);
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) ++counts[sampler.Sample(rng)];
  // P(1)/P(4) should be 4^s = 8.
  const double ratio =
      static_cast<double>(counts[1]) / static_cast<double>(counts[4]);
  EXPECT_NEAR(ratio, std::pow(4.0, s), 1.2);
}

TEST(ZipfSamplerTest, SingleElement) {
  ZipfSampler sampler(1, 1.1);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(rng), 1u);
}

TEST(SampleDistinctTest, ProducesDistinctInRange) {
  Rng rng(31);
  for (uint64_t n : {1ULL, 5ULL, 100ULL, 10000ULL}) {
    for (uint64_t k : {uint64_t{0}, uint64_t{1}, n / 2, n}) {
      auto sample = SampleDistinct(rng, n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<uint64_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), k);
      for (uint64_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(SampleDistinctTest, FullRangeIsPermutationOfSupport) {
  Rng rng(37);
  auto sample = SampleDistinct(rng, 100, 100);
  std::sort(sample.begin(), sample.end());
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleDistinctTest, UniformMembership) {
  // Each element of [0, 20) should be included in a 10-of-20 sample with
  // probability 1/2.
  Rng rng(41);
  std::vector<int> hits(20, 0);
  constexpr int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (uint64_t v : SampleDistinct(rng, 20, 10)) ++hits[v];
  }
  for (int v = 0; v < 20; ++v) {
    EXPECT_NEAR(hits[v], kTrials / 2, kTrials * 0.03) << "value " << v;
  }
}

}  // namespace
}  // namespace lshensemble
