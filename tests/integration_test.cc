// End-to-end integration tests: miniature versions of the paper's
// experiments, asserting the qualitative results the paper reports
// (Section 6) on a scaled-down synthetic corpus:
//   * LSH Ensemble improves precision over the single-LSH baseline while
//     keeping recall high (Figure 4);
//   * Asymmetric Minwise Hashing loses recall under heavy skew (Figures
//     4/5);
//   * partitioned queries return fewer candidates, the source of the
//     paper's query-time speedups (Table 4).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "eval/experiment.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusGenOptions options;
    options.num_domains = 8000;
    options.min_size = 10;
    options.max_size = 30000;
    options.alpha = 2.0;
    options.seed = 20160912;  // VLDB'16 :)
    corpus_ = new Corpus(CorpusGenerator(options).Generate().value());

    index_indices_ = new std::vector<size_t>(corpus_->size());
    for (size_t i = 0; i < corpus_->size(); ++i) (*index_indices_)[i] = i;
    query_indices_ = new std::vector<size_t>(
        SampleQueryIndices(*corpus_, 150, QuerySizeBias::kUniform, 7));

    AccuracyExperimentOptions options2;
    options2.thresholds = {0.25, 0.5, 0.75};
    experiment_ = new AccuracyExperiment(*corpus_, *index_indices_,
                                         *query_indices_, options2);
    ASSERT_TRUE(experiment_->Prepare().ok());

    baseline_ = new std::vector<AccuracyCell>(
        experiment_->RunConfig(IndexConfig::Baseline()).value());
    asym_ = new std::vector<AccuracyCell>(
        experiment_->RunConfig(IndexConfig::Asym()).value());
    ensemble8_ = new std::vector<AccuracyCell>(
        experiment_->RunConfig(IndexConfig::Ensemble(8)).value());
    ensemble32_ = new std::vector<AccuracyCell>(
        experiment_->RunConfig(IndexConfig::Ensemble(32)).value());
  }

  static void TearDownTestSuite() {
    delete ensemble32_;
    delete ensemble8_;
    delete asym_;
    delete baseline_;
    delete experiment_;
    delete query_indices_;
    delete index_indices_;
    delete corpus_;
    corpus_ = nullptr;
  }

  static Corpus* corpus_;
  static std::vector<size_t>* index_indices_;
  static std::vector<size_t>* query_indices_;
  static AccuracyExperiment* experiment_;
  static std::vector<AccuracyCell>* baseline_;
  static std::vector<AccuracyCell>* asym_;
  static std::vector<AccuracyCell>* ensemble8_;
  static std::vector<AccuracyCell>* ensemble32_;
};

Corpus* IntegrationTest::corpus_ = nullptr;
std::vector<size_t>* IntegrationTest::index_indices_ = nullptr;
std::vector<size_t>* IntegrationTest::query_indices_ = nullptr;
AccuracyExperiment* IntegrationTest::experiment_ = nullptr;
std::vector<AccuracyCell>* IntegrationTest::baseline_ = nullptr;
std::vector<AccuracyCell>* IntegrationTest::asym_ = nullptr;
std::vector<AccuracyCell>* IntegrationTest::ensemble8_ = nullptr;
std::vector<AccuracyCell>* IntegrationTest::ensemble32_ = nullptr;

TEST_F(IntegrationTest, CorpusIsSkewed) {
  EXPECT_GT(corpus_->SizeSkewness(), 3.0);
}

TEST_F(IntegrationTest, EnsembleImprovesPrecisionOverBaseline) {
  // Figure 4's headline: partitioning raises precision at every threshold.
  for (size_t i = 0; i < baseline_->size(); ++i) {
    EXPECT_GE((*ensemble32_)[i].precision,
              (*baseline_)[i].precision - 0.02)
        << "t*=" << (*baseline_)[i].threshold;
  }
  // And strictly so on aggregate.
  double baseline_sum = 0, ensemble_sum = 0;
  for (size_t i = 0; i < baseline_->size(); ++i) {
    baseline_sum += (*baseline_)[i].precision;
    ensemble_sum += (*ensemble32_)[i].precision;
  }
  EXPECT_GT(ensemble_sum, baseline_sum);
}

TEST_F(IntegrationTest, EnsembleKeepsRecallHigh) {
  for (const AccuracyCell& cell : *ensemble32_) {
    EXPECT_GT(cell.recall, 0.75) << "t*=" << cell.threshold;
  }
  for (const AccuracyCell& cell : *ensemble8_) {
    EXPECT_GT(cell.recall, 0.75) << "t*=" << cell.threshold;
  }
}

TEST_F(IntegrationTest, MorePartitionsMorePrecision) {
  double sum8 = 0, sum32 = 0;
  for (size_t i = 0; i < ensemble8_->size(); ++i) {
    sum8 += (*ensemble8_)[i].precision;
    sum32 += (*ensemble32_)[i].precision;
  }
  EXPECT_GE(sum32, sum8 - 0.05);
}

TEST_F(IntegrationTest, PartitioningCostsLittleRecall) {
  // "Recall decreases by about 0.02 each time the number of partitions
  // doubles" — allow a loose bound.
  for (size_t i = 0; i < baseline_->size(); ++i) {
    EXPECT_GE((*ensemble32_)[i].recall, (*baseline_)[i].recall - 0.15)
        << "t*=" << (*baseline_)[i].threshold;
  }
}

TEST_F(IntegrationTest, AsymRecallCollapsesOnSkewedData) {
  // Section 6.1: on skewed Open Data, Asym's recall drops far below the
  // ensemble's, and worsens with the threshold.
  const AccuracyCell& asym_high = (*asym_)[2];        // t* = 0.75
  const AccuracyCell& ensemble_high = (*ensemble32_)[2];
  EXPECT_LT(asym_high.recall, ensemble_high.recall - 0.3);
}

TEST_F(IntegrationTest, EnsembleBeatsBaselineOnFScore) {
  double baseline_sum = 0, ensemble_sum = 0;
  for (size_t i = 0; i < baseline_->size(); ++i) {
    baseline_sum += (*baseline_)[i].f05;
    ensemble_sum += (*ensemble32_)[i].f05;
  }
  EXPECT_GT(ensemble_sum, baseline_sum);
}

}  // namespace
}  // namespace lshensemble
