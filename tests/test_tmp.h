// Per-process temp paths for tests.
//
// gtest_discover_tests registers every TEST as its own ctest entry, so
// under `ctest -j` many processes from one binary run concurrently. A
// fixed path like TempDir() + "/foo.bin" is then shared state: two tests
// writing/removing it race, and the loser reads a torn or missing file.
// ProcessTempPath() scopes every name under a directory unique to the
// calling process, so concurrent test processes can never collide.

#ifndef LSHENSEMBLE_TESTS_TEST_TMP_H_
#define LSHENSEMBLE_TESTS_TEST_TMP_H_

#include <unistd.h>

#include <filesystem>
#include <string>

#include "gtest/gtest.h"

namespace lshensemble {

/// A temp directory unique to this process (created on first use).
inline const std::string& ProcessTempDir() {
  static const std::string dir = [] {
    std::string d = ::testing::TempDir() + "/lshe_test_pid" +
                    std::to_string(::getpid());
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

/// `name` scoped under ProcessTempDir().
inline std::string ProcessTempPath(const std::string& name) {
  return ProcessTempDir() + "/" + name;
}

}  // namespace lshensemble

#endif  // LSHENSEMBLE_TESTS_TEST_TMP_H_
