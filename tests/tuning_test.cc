#include "core/tuning.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "core/threshold.h"
#include "util/math.h"

namespace lshensemble {
namespace {

TEST(CandidateProbabilityTest, SpecialCaseB1R1IsJaccard) {
  // With one band of one hash value, P = s (Eq. 22 with b = r = 1).
  for (double t : {0.1, 0.4, 0.8}) {
    const double x = 20, q = 10;
    EXPECT_NEAR(CandidateProbability(t, x, q, 1, 1),
                ContainmentToJaccard(t, x, q), 1e-12);
  }
}

TEST(CandidateProbabilityTest, ClampsAboveSizeRatio) {
  // t cannot exceed x/q; beyond it the probability saturates at the ratio's
  // value (Section 5.5).
  const double x = 5, q = 10;  // ratio 0.5
  const double at_ratio = CandidateProbability(0.5, x, q, 8, 2);
  EXPECT_NEAR(CandidateProbability(0.9, x, q, 8, 2), at_ratio, 1e-12);
}

TEST(CandidateProbabilityTest, MonotoneInContainment) {
  double previous = 0.0;
  for (double t = 0.0; t <= 1.0; t += 0.02) {
    const double p = CandidateProbability(t, 10, 5, 256, 4);
    EXPECT_GE(p, previous - 1e-12);
    previous = p;
  }
}

TEST(CandidateProbabilityTest, Figure3Shape) {
  // Figure 3's parameters: x=10, q=5, b=256, r=4 — an S-curve that is low
  // near 0 and ~1 near the ratio boundary.
  EXPECT_LT(CandidateProbability(0.05, 10, 5, 256, 4), 0.25);
  EXPECT_GT(CandidateProbability(0.95, 10, 5, 256, 4), 0.95);
}

TEST(FpFnAreaTest, AnalyticCheckForB1R1) {
  // For b=r=1, P(t) = t / (x/q + 1 - t) = s(t). With x=q (ratio 1):
  // integral_0^a t/(2-t) dt = -a - 2 ln(1 - a/2).
  const double x = 100, q = 100, t_star = 0.5;
  const double fp = FalsePositiveArea(x, q, t_star, 1, 1, 2048);
  const double analytic = -t_star - 2.0 * std::log(1.0 - t_star / 2.0);
  EXPECT_NEAR(fp, analytic, 1e-6);

  // FN = integral_{t*}^{1} (1 - P) dt = (1 - t*) - [analytic(1)-analytic(t*)]
  const double fn = FalseNegativeArea(x, q, t_star, 1, 1, 2048);
  const double full = -1.0 - 2.0 * std::log(0.5);
  EXPECT_NEAR(fn, (1.0 - t_star) - (full - analytic), 1e-6);
}

TEST(FpFnAreaTest, FnZeroWhenRatioBelowThreshold) {
  // x/q < t*: no domain in this size class can qualify (Eq. 24, third case).
  EXPECT_EQ(FalseNegativeArea(10, 100, 0.5, 8, 4), 0.0);
}

TEST(FpFnAreaTest, FpCappedAtRatioWhenSmall) {
  // x/q < t*: the FP integral stops at the ratio (Eq. 23, second case).
  const double fp = FalsePositiveArea(10, 100, 0.5, 256, 1, 1024);
  EXPECT_LE(fp, 0.1 + 1e-9);  // ratio = 0.1 bounds the integral length
  EXPECT_GT(fp, 0.0);
}

TEST(FpFnAreaTest, MoreBandsRaiseFpLowerFn) {
  const double x = 50, q = 10, t = 0.5;
  double previous_fp = 0.0;
  double previous_fn = std::numeric_limits<double>::infinity();
  for (int b = 1; b <= 32; b *= 2) {
    const double fp = FalsePositiveArea(x, q, t, b, 4);
    const double fn = FalseNegativeArea(x, q, t, b, 4);
    EXPECT_GE(fp, previous_fp - 1e-12);
    EXPECT_LE(fn, previous_fn + 1e-12);
    previous_fp = fp;
    previous_fn = fn;
  }
}

TEST(TunerTest, OptionsValidated) {
  Tuner::Options bad;
  bad.max_b = 0;
  EXPECT_FALSE(Tuner::Create(bad).ok());
  bad = Tuner::Options();
  bad.integration_nodes = 2;
  EXPECT_FALSE(Tuner::Create(bad).ok());
  EXPECT_TRUE(Tuner::Create(Tuner::Options()).ok());
}

TEST(TunerTest, StaysInsideGrid) {
  Tuner::Options options;
  options.max_b = 32;
  options.max_r = 8;
  auto tuner = std::move(Tuner::Create(options)).value();
  for (double ratio : {0.5, 1.0, 3.0, 100.0}) {
    for (double t : {0.05, 0.5, 0.95}) {
      const TunedParams params = tuner->Tune(ratio * 100.0, 100.0, t);
      EXPECT_GE(params.b, 1);
      EXPECT_LE(params.b, 32);
      EXPECT_GE(params.r, 1);
      EXPECT_LE(params.r, 8);
    }
  }
}

// The incremental-power optimizer must agree with an exhaustive scan that
// uses the independent Simpson-quadrature implementation of Eqs. 23/24.
class TunerOptimality
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TunerOptimality, MatchesExhaustiveSearch) {
  const auto [ratio, t_star] = GetParam();
  const double q = 50.0;
  const double x = ratio * q;

  Tuner::Options options;
  options.max_b = 16;
  options.max_r = 4;
  options.integration_nodes = 512;
  options.enable_cache = false;
  auto tuner = std::move(Tuner::Create(options)).value();
  const TunedParams tuned = tuner->Tune(x, q, t_star);

  double best = std::numeric_limits<double>::infinity();
  for (int b = 1; b <= options.max_b; ++b) {
    for (int r = 1; r <= options.max_r; ++r) {
      const double objective = FalsePositiveArea(x, q, t_star, b, r, 2048) +
                               FalseNegativeArea(x, q, t_star, b, r, 2048);
      best = std::min(best, objective);
    }
  }
  EXPECT_NEAR(tuned.objective(), best, 5e-3)
      << "ratio=" << ratio << " t*=" << t_star << " chose (" << tuned.b
      << "," << tuned.r << ")";
}

INSTANTIATE_TEST_SUITE_P(
    RatioThresholdGrid, TunerOptimality,
    ::testing::Combine(::testing::Values(0.2, 1.0, 2.0, 10.0, 200.0),
                       ::testing::Values(0.1, 0.5, 0.9)));

TEST(TunerTest, HighThresholdPrefersSelectiveParams) {
  // For x ~ q and a high threshold, deep prefixes (large r) win; for a very
  // low threshold, the tuner must lean recall-heavy (large b, small r).
  Tuner::Options options;
  auto tuner = std::move(Tuner::Create(options)).value();
  const TunedParams strict = tuner->Tune(100, 100, 0.95);
  const TunedParams loose = tuner->Tune(100, 100, 0.05);
  EXPECT_GT(strict.r, loose.r);
}

TEST(TunerTest, CacheHitsAreConsistent) {
  Tuner::Options options;
  options.enable_cache = true;
  auto tuner = std::move(Tuner::Create(options)).value();
  const TunedParams first = tuner->Tune(1000, 10, 0.5);
  EXPECT_EQ(tuner->CacheSize(), 1u);
  const TunedParams second = tuner->Tune(1000, 10, 0.5);
  EXPECT_EQ(tuner->CacheSize(), 1u);
  EXPECT_EQ(first.b, second.b);
  EXPECT_EQ(first.r, second.r);
  // A different threshold misses.
  tuner->Tune(1000, 10, 0.6);
  EXPECT_EQ(tuner->CacheSize(), 2u);
}

TEST(TunerTest, PredictedErrorsAreProbabilityMasses) {
  Tuner::Options options;
  auto tuner = std::move(Tuner::Create(options)).value();
  for (double ratio : {0.5, 1.0, 10.0}) {
    const TunedParams params = tuner->Tune(ratio * 100, 100, 0.5);
    EXPECT_GE(params.fp, 0.0);
    EXPECT_GE(params.fn, 0.0);
    EXPECT_LE(params.fp, 1.0);
    EXPECT_LE(params.fn, 1.0);
  }
}

TEST(TunerTest, LargerGridNeverHurts) {
  // Enlarging the (b, r) search space cannot worsen the optimum.
  Tuner::Options small_options;
  small_options.max_b = 8;
  small_options.max_r = 4;
  small_options.enable_cache = false;
  Tuner::Options big_options;
  big_options.max_b = 32;
  big_options.max_r = 8;
  big_options.enable_cache = false;
  auto small_tuner = std::move(Tuner::Create(small_options)).value();
  auto big_tuner = std::move(Tuner::Create(big_options)).value();
  for (double t : {0.2, 0.5, 0.8}) {
    const double small_objective = small_tuner->Tune(500, 50, t).objective();
    const double big_objective = big_tuner->Tune(500, 50, t).objective();
    EXPECT_LE(big_objective, small_objective + 1e-9);
  }
}

}  // namespace
}  // namespace lshensemble
