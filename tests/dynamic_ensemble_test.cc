#include "core/dynamic_ensemble.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "baselines/exact_search.h"
#include "core/threshold.h"
#include "data/corpus.h"
#include "util/random.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

constexpr int kNumHashes = 128;

DynamicEnsembleOptions SmallOptions() {
  DynamicEnsembleOptions options;
  options.base.num_partitions = 4;
  options.base.num_hashes = kNumHashes;
  options.base.tree_depth = 4;
  options.min_delta_for_rebuild = 64;
  return options;
}

class DynamicEnsembleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    family_ = HashFamily::Create(kNumHashes, 21).value();
    CorpusGenOptions gen;
    gen.num_domains = 600;
    gen.seed = 123;
    corpus_ = CorpusGenerator(gen).Generate().value();
  }

  MinHash Sketch(size_t index) const {
    return MinHash::FromValues(family_, corpus_->domain(index).values);
  }

  Status InsertDomain(DynamicLshEnsemble& index, size_t i) {
    const Domain& domain = corpus_->domain(i);
    return index.Insert(domain.id, domain.size(), Sketch(i));
  }

  std::shared_ptr<const HashFamily> family_;
  std::optional<Corpus> corpus_;
};

TEST_F(DynamicEnsembleTest, CreateValidation) {
  EXPECT_FALSE(DynamicLshEnsemble::Create(SmallOptions(), nullptr).ok());
  DynamicEnsembleOptions bad = SmallOptions();
  bad.rebuild_fraction = 0.0;
  EXPECT_FALSE(DynamicLshEnsemble::Create(bad, family_).ok());
  bad = SmallOptions();
  bad.base.num_hashes = 64;  // mismatches the 128-hash family
  EXPECT_FALSE(DynamicLshEnsemble::Create(bad, family_).ok());
  EXPECT_TRUE(DynamicLshEnsemble::Create(SmallOptions(), family_).ok());
}

TEST_F(DynamicEnsembleTest, InsertIsImmediatelySearchable) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  ASSERT_TRUE(InsertDomain(*&index, 7).ok());
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.delta_size(), 1u);
  EXPECT_EQ(index.indexed(), nullptr);  // no flush yet

  std::vector<uint64_t> results;
  ASSERT_TRUE(
      index.Query(Sketch(7), corpus_->domain(7).size(), 0.9, &results).ok());
  EXPECT_NE(std::find(results.begin(), results.end(), corpus_->domain(7).id),
            results.end());
}

TEST_F(DynamicEnsembleTest, DuplicateInsertRejected) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  ASSERT_TRUE(InsertDomain(index, 0).ok());
  EXPECT_TRUE(InsertDomain(index, 0).IsInvalidArgument());
}

TEST_F(DynamicEnsembleTest, InvalidInsertArguments) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  EXPECT_TRUE(index.Insert(1, 0, Sketch(0)).IsInvalidArgument());
  EXPECT_TRUE(index.Insert(1, 5, MinHash()).IsInvalidArgument());
  auto other_family = HashFamily::Create(kNumHashes, 999).value();
  EXPECT_TRUE(index
                  .Insert(1, 5,
                          MinHash::FromValues(other_family,
                                              corpus_->domain(0).values))
                  .IsInvalidArgument());
}

TEST_F(DynamicEnsembleTest, FlushThenQueryMatchesOneShotBuild) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  LshEnsembleBuilder builder(SmallOptions().base, family_);
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(InsertDomain(index, i).ok());
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(builder.Add(domain.id, domain.size(), Sketch(i)).ok());
  }
  ASSERT_TRUE(index.Flush().ok());
  auto one_shot = std::move(builder).Build().value();

  EXPECT_EQ(index.delta_size(), 0u);
  EXPECT_EQ(index.indexed_size(), 300u);
  for (size_t qi = 0; qi < 300; qi += 37) {
    for (double t_star : {0.3, 0.6, 0.9}) {
      std::vector<uint64_t> dynamic_results, static_results;
      const size_t q = corpus_->domain(qi).size();
      ASSERT_TRUE(
          index.Query(Sketch(qi), q, t_star, &dynamic_results).ok());
      ASSERT_TRUE(
          one_shot.Query(Sketch(qi), q, t_star, &static_results).ok());
      std::sort(dynamic_results.begin(), dynamic_results.end());
      std::sort(static_results.begin(), static_results.end());
      EXPECT_EQ(dynamic_results, static_results)
          << "query " << qi << " t*=" << t_star;
    }
  }
}

TEST_F(DynamicEnsembleTest, RemoveHidesIndexedDomain) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  for (size_t i = 0; i < 100; ++i) ASSERT_TRUE(InsertDomain(index, i).ok());
  ASSERT_TRUE(index.Flush().ok());

  const uint64_t target = corpus_->domain(42).id;
  std::vector<uint64_t> results;
  ASSERT_TRUE(
      index.Query(Sketch(42), corpus_->domain(42).size(), 0.9, &results).ok());
  ASSERT_NE(std::find(results.begin(), results.end(), target), results.end());

  ASSERT_TRUE(index.Remove(target).ok());
  EXPECT_EQ(index.tombstone_count(), 1u);
  ASSERT_TRUE(
      index.Query(Sketch(42), corpus_->domain(42).size(), 0.9, &results).ok());
  EXPECT_EQ(std::find(results.begin(), results.end(), target), results.end());
}

TEST_F(DynamicEnsembleTest, RemoveDropsUnflushedDomainOutright) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  ASSERT_TRUE(InsertDomain(index, 5).ok());
  ASSERT_TRUE(index.Remove(corpus_->domain(5).id).ok());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.delta_size(), 0u);
  EXPECT_EQ(index.tombstone_count(), 0u);  // was never indexed
}

TEST_F(DynamicEnsembleTest, RemoveUnknownIsNotFound) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  EXPECT_TRUE(index.Remove(12345).IsNotFound());
}

TEST_F(DynamicEnsembleTest, ReinsertAfterRemoveUsesNewVersion) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  for (size_t i = 0; i < 50; ++i) ASSERT_TRUE(InsertDomain(index, i).ok());
  ASSERT_TRUE(index.Flush().ok());

  const uint64_t id = corpus_->domain(10).id;
  ASSERT_TRUE(index.Remove(id).ok());
  // Re-insert under the same id with different content (another domain's
  // values).
  ASSERT_TRUE(
      index.Insert(id, corpus_->domain(20).size(), Sketch(20)).ok());
  EXPECT_EQ(index.SizeOf(id), corpus_->domain(20).size());

  // A perfect query for the NEW content finds the id...
  std::vector<uint64_t> results;
  ASSERT_TRUE(
      index.Query(Sketch(20), corpus_->domain(20).size(), 0.95, &results).ok());
  EXPECT_NE(std::find(results.begin(), results.end(), id), results.end());
  // ... and a flush folds the replacement into the rebuilt ensemble.
  ASSERT_TRUE(index.Flush().ok());
  EXPECT_EQ(index.tombstone_count(), 0u);
  ASSERT_TRUE(
      index.Query(Sketch(20), corpus_->domain(20).size(), 0.95, &results).ok());
  EXPECT_NE(std::find(results.begin(), results.end(), id), results.end());
}

TEST_F(DynamicEnsembleTest, AutoRebuildTriggers) {
  DynamicEnsembleOptions options = SmallOptions();
  options.min_delta_for_rebuild = 32;
  options.rebuild_fraction = 0.25;
  auto index = DynamicLshEnsemble::Create(options, family_).value();
  // First 32 inserts: delta reaches min threshold with indexed_count 0 ->
  // rebuild on the 32nd insert.
  for (size_t i = 0; i < 32; ++i) ASSERT_TRUE(InsertDomain(index, i).ok());
  EXPECT_NE(index.indexed(), nullptr);
  EXPECT_EQ(index.delta_size(), 0u);
  EXPECT_EQ(index.indexed_size(), 32u);

  // Now a rebuild needs max(32, 0.25 * 32) = 32 more inserts.
  for (size_t i = 32; i < 63; ++i) ASSERT_TRUE(InsertDomain(index, i).ok());
  EXPECT_EQ(index.delta_size(), 31u);
  ASSERT_TRUE(InsertDomain(index, 63).ok());
  EXPECT_EQ(index.delta_size(), 0u);
  EXPECT_EQ(index.indexed_size(), 64u);
}

TEST_F(DynamicEnsembleTest, FlushOnEmptyIndexIsOk) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  EXPECT_TRUE(index.Flush().ok());
  EXPECT_EQ(index.indexed(), nullptr);
  // Insert then remove everything; flush drops the ensemble.
  ASSERT_TRUE(InsertDomain(index, 0).ok());
  ASSERT_TRUE(index.Flush().ok());
  EXPECT_NE(index.indexed(), nullptr);
  ASSERT_TRUE(index.Remove(corpus_->domain(0).id).ok());
  ASSERT_TRUE(index.Flush().ok());
  EXPECT_EQ(index.indexed(), nullptr);
  EXPECT_EQ(index.size(), 0u);
}

TEST_F(DynamicEnsembleTest, FlushIsIdempotent) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  for (size_t i = 0; i < 20; ++i) ASSERT_TRUE(InsertDomain(index, i).ok());
  ASSERT_TRUE(index.Flush().ok());
  const LshEnsemble* before = index.indexed();
  ASSERT_TRUE(index.Flush().ok());  // nothing changed: no rebuild
  EXPECT_EQ(index.indexed(), before);
}

TEST_F(DynamicEnsembleTest, MixedIndexedAndDeltaRecallAgainstExact) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  ExactSearch exact;
  // Half indexed, half in the delta.
  for (size_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(InsertDomain(index, i).ok());
    ASSERT_TRUE(
        exact.Add(corpus_->domain(i).id, corpus_->domain(i).values).ok());
    if (i == 199) {
      ASSERT_TRUE(index.Flush().ok());
    }
  }
  exact.Build();
  EXPECT_GT(index.delta_size(), 0u);

  double recall_sum = 0.0;
  int queries = 0;
  for (size_t qi = 0; qi < 400; qi += 41) {
    const double t_star = 0.5;
    std::vector<uint64_t> approx, truth;
    ASSERT_TRUE(index
                    .Query(Sketch(qi), corpus_->domain(qi).size(), t_star,
                           &approx)
                    .ok());
    ASSERT_TRUE(exact.Query(corpus_->domain(qi).values, t_star, &truth).ok());
    if (truth.empty()) continue;
    std::sort(approx.begin(), approx.end());
    size_t hits = 0;
    for (uint64_t id : truth) {
      hits += std::binary_search(approx.begin(), approx.end(), id) ? 1 : 0;
    }
    recall_sum += static_cast<double>(hits) / static_cast<double>(truth.size());
    ++queries;
  }
  ASSERT_GT(queries, 0);
  EXPECT_GE(recall_sum / queries, 0.85);
}

TEST_F(DynamicEnsembleTest, SideCarLookups) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  ASSERT_TRUE(InsertDomain(index, 3).ok());
  const uint64_t id = corpus_->domain(3).id;
  EXPECT_EQ(index.SizeOf(id), corpus_->domain(3).size());
  EXPECT_NE(index.SignatureOf(id), nullptr);
  EXPECT_EQ(index.SizeOf(999999), 0u);
  EXPECT_EQ(index.SignatureOf(999999), nullptr);
}

TEST_F(DynamicEnsembleTest, QueryValidation) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  ASSERT_TRUE(InsertDomain(index, 0).ok());
  std::vector<uint64_t> results;
  EXPECT_TRUE(index.Query(Sketch(0), 10, 0.5, nullptr).IsInvalidArgument());
  EXPECT_TRUE(index.Query(Sketch(0), 10, 1.5, &results).IsInvalidArgument());
  EXPECT_TRUE(index.Query(MinHash(), 10, 0.5, &results).IsInvalidArgument());
}

TEST_F(DynamicEnsembleTest, ContextQueryMatchesPlainQuery) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  // Enough inserts to trigger at least one rebuild, so queries see both
  // the built ensemble and a delta buffer; remove a few for tombstones.
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(InsertDomain(index, i).ok());
  }
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Remove(corpus_->domain(i * 7).id).ok());
  }
  ASSERT_GT(index.delta_size(), 0u);
  ASSERT_GT(index.tombstone_count(), 0u);

  QueryContext ctx;
  for (size_t qi : {0ul, 5ul, 42ul, 150ul}) {
    std::vector<uint64_t> plain, with_ctx;
    const MinHash query = Sketch(qi);
    const size_t q = corpus_->domain(qi).size();
    ASSERT_TRUE(index.Query(query, q, 0.5, &plain).ok());
    ASSERT_TRUE(index.Query(query, q, 0.5, &ctx, &with_ctx).ok());
    EXPECT_EQ(plain, with_ctx);
  }
  std::vector<uint64_t> unused;
  EXPECT_TRUE(
      index.Query(Sketch(0), 10, 0.5, nullptr, &unused).IsInvalidArgument());
}

TEST_F(DynamicEnsembleTest, ContextQueryIsWarmAfterFirstCall) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(InsertDomain(index, i).ok());
  }
  ASSERT_TRUE(index.Remove(corpus_->domain(1).id).ok());

  QueryContext ctx;
  std::vector<uint64_t> results;
  // Warm the context (shard pool sizing can settle over the first few
  // calls when workers race for shards), then require it to stop growing.
  for (int rep = 0; rep < 8; ++rep) {
    ASSERT_TRUE(index.Query(Sketch(2), corpus_->domain(2).size(), 0.5, &ctx,
                            &results)
                    .ok());
  }
  const size_t warm_bytes = ctx.MemoryBytes();
  for (int rep = 0; rep < 5; ++rep) {
    ASSERT_TRUE(index.Query(Sketch(2), corpus_->domain(2).size(), 0.5, &ctx,
                            &results)
                    .ok());
  }
  EXPECT_EQ(ctx.MemoryBytes(), warm_bytes);
}

// ------------------------------------------------------- batched queries

class DynamicBatchQueryTest : public DynamicEnsembleTest {
 protected:
  // A mid-rebuild index: 150 indexed domains, ~90 in the delta, removals
  // on both sides (tombstones + dropped delta entries). Rebuilds are
  // disabled so the mixed state stays put. Pass parallel_query = false
  // for tests that need deterministic scratch sizing: the shard pool
  // grows to the number of concurrent workers *observed*, which is racy.
  void BuildMixedIndex(bool parallel_query = true) {
    DynamicEnsembleOptions options = SmallOptions();
    options.min_delta_for_rebuild = 100000;
    options.base.parallel_query = parallel_query;
    index_.emplace(DynamicLshEnsemble::Create(options, family_).value());
    for (size_t i = 0; i < 240; ++i) {
      ASSERT_TRUE(InsertDomain(*index_, i).ok());
      if (i == 149) {
        ASSERT_TRUE(index_->Flush().ok());
      }
    }
    for (size_t i : {9ul, 30ul, 77ul, 120ul}) {  // indexed -> tombstoned
      ASSERT_TRUE(index_->Remove(corpus_->domain(i).id).ok());
      removed_.insert(corpus_->domain(i).id);
    }
    for (size_t i : {155ul, 200ul}) {  // delta -> dropped outright
      ASSERT_TRUE(index_->Remove(corpus_->domain(i).id).ok());
      removed_.insert(corpus_->domain(i).id);
    }
    for (size_t i = 150; i < 240; ++i) {
      if (removed_.count(corpus_->domain(i).id) == 0) {
        delta_indices_.push_back(i);
      }
    }
    ASSERT_GT(index_->delta_size(), 0u);
    ASSERT_GT(index_->tombstone_count(), 0u);
  }

  // The pre-batching reference: indexed candidates minus tombstones, then
  // the seed delta scan (ContainmentToJaccard per record + EstimateJaccard)
  // in delta order. Guards the hoisted-threshold rewrite (results must be
  // unchanged) as well as the batch path.
  std::vector<uint64_t> ReferenceAnswer(const MinHash& query, size_t q,
                                        double t_star) const {
    std::vector<uint64_t> out;
    if (index_->indexed() != nullptr) {
      std::vector<uint64_t> indexed;
      EXPECT_TRUE(index_->indexed()->Query(query, q, t_star, &indexed).ok());
      for (uint64_t id : indexed) {
        if (removed_.count(id) == 0) out.push_back(id);
      }
    }
    const auto qd = static_cast<double>(q);
    for (size_t i : delta_indices_) {
      const Domain& domain = corpus_->domain(i);
      const double s_star = ContainmentToJaccard(
          t_star, static_cast<double>(domain.size()), qd);
      const MinHash* signature = index_->SignatureOf(domain.id);
      EXPECT_NE(signature, nullptr);
      const double jaccard = query.EstimateJaccard(*signature).value();
      if (jaccard + 1e-12 >= s_star) out.push_back(domain.id);
    }
    return out;
  }

  std::optional<DynamicLshEnsemble> index_;
  std::unordered_set<uint64_t> removed_;
  std::vector<size_t> delta_indices_;
};

TEST_F(DynamicBatchQueryTest, BatchMatchesSequentialAndSeedReference) {
  BuildMixedIndex();
  // Two-pass spec build: fill the sketch vector completely before taking
  // any addresses, so the specs never dangle on a reallocation.
  std::vector<size_t> query_indices;
  for (size_t qi = 0; qi < 240; qi += 5) query_indices.push_back(qi);
  std::vector<MinHash> sketches;
  for (size_t qi : query_indices) sketches.push_back(Sketch(qi));
  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < query_indices.size(); ++i) {
    const size_t qi = query_indices[i];
    const double t_star = 0.2 + 0.15 * static_cast<double>(qi % 5);
    specs.push_back(
        QuerySpec{&sketches[i], corpus_->domain(qi).size(), t_star});
  }

  QueryContext ctx;
  std::vector<std::vector<uint64_t>> outs(specs.size());
  ASSERT_TRUE(index_->BatchQuery(specs, &ctx, outs.data()).ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    std::vector<uint64_t> sequential;
    ASSERT_TRUE(index_
                    ->Query(*specs[i].query, specs[i].query_size,
                            specs[i].t_star, &sequential)
                    .ok());
    EXPECT_EQ(outs[i], sequential) << "query " << i;
    EXPECT_EQ(outs[i], ReferenceAnswer(*specs[i].query, specs[i].query_size,
                                       specs[i].t_star))
        << "query " << i;
  }
}

TEST_F(DynamicBatchQueryTest, BatchWithEmptyDelta) {
  BuildMixedIndex();
  ASSERT_TRUE(index_->Flush().ok());  // folds the delta in, clears tombstones
  ASSERT_EQ(index_->delta_size(), 0u);
  delta_indices_.clear();
  removed_.clear();

  std::vector<size_t> query_indices;
  for (size_t qi = 0; qi < 240; qi += 31) query_indices.push_back(qi);
  std::vector<MinHash> sketches;
  for (size_t qi : query_indices) sketches.push_back(Sketch(qi));
  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < query_indices.size(); ++i) {
    specs.push_back(QuerySpec{
        &sketches[i], corpus_->domain(query_indices[i]).size(), 0.5});
  }
  QueryContext ctx;
  std::vector<std::vector<uint64_t>> outs(specs.size());
  ASSERT_TRUE(index_->BatchQuery(specs, &ctx, outs.data()).ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(outs[i], ReferenceAnswer(*specs[i].query, specs[i].query_size,
                                       specs[i].t_star))
        << "query " << i;
  }
}

TEST_F(DynamicBatchQueryTest, BatchBeforeFirstFlush) {
  DynamicEnsembleOptions options = SmallOptions();
  options.min_delta_for_rebuild = 100000;
  auto index = DynamicLshEnsemble::Create(options, family_).value();
  for (size_t i = 0; i < 40; ++i) ASSERT_TRUE(InsertDomain(index, i).ok());
  ASSERT_EQ(index.indexed(), nullptr);

  std::vector<size_t> query_indices;
  for (size_t qi = 0; qi < 40; qi += 9) query_indices.push_back(qi);
  std::vector<MinHash> sketches;
  for (size_t qi : query_indices) sketches.push_back(Sketch(qi));
  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < query_indices.size(); ++i) {
    specs.push_back(QuerySpec{
        &sketches[i], corpus_->domain(query_indices[i]).size(), 0.8});
  }
  QueryContext ctx;
  std::vector<std::vector<uint64_t>> outs(specs.size());
  std::vector<QueryStats> stats(specs.size());
  ASSERT_TRUE(index.BatchQuery(specs, &ctx, outs.data(), stats.data()).ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    std::vector<uint64_t> sequential;
    ASSERT_TRUE(index
                    .Query(*specs[i].query, specs[i].query_size,
                           specs[i].t_star, &sequential)
                    .ok());
    EXPECT_EQ(outs[i], sequential);
    // Each query domain is in the delta, so a near-1 threshold self-query
    // must find itself.
    const uint64_t self = corpus_->domain(query_indices[i]).id;
    EXPECT_NE(std::find(outs[i].begin(), outs[i].end(), self), outs[i].end());
    EXPECT_EQ(stats[i].query_size_used, specs[i].query_size);
    EXPECT_EQ(stats[i].partitions_probed, 0u);  // nothing indexed yet
  }
}

TEST_F(DynamicBatchQueryTest, BatchStatsRideTheEngine) {
  BuildMixedIndex();
  const MinHash query = Sketch(3);
  const QuerySpec spec{&query, corpus_->domain(3).size(), 0.4};
  QueryContext ctx;
  std::vector<uint64_t> out;
  QueryStats stats;
  ASSERT_TRUE(index_
                  ->BatchQuery(std::span<const QuerySpec>(&spec, 1), &ctx,
                               &out, &stats)
                  .ok());
  EXPECT_EQ(stats.query_size_used, corpus_->domain(3).size());
  EXPECT_GT(stats.partitions_probed + stats.partitions_pruned, 0u);
}

TEST_F(DynamicBatchQueryTest, BatchValidationAndEmptyBatch) {
  BuildMixedIndex();
  QueryContext ctx;
  const MinHash query = Sketch(0);
  std::vector<uint64_t> out;
  const QuerySpec good{&query, 10, 0.5};

  EXPECT_TRUE(index_->BatchQuery({}, &ctx, nullptr).ok());  // empty is a no-op
  EXPECT_TRUE(index_
                  ->BatchQuery(std::span<const QuerySpec>(&good, 1), nullptr,
                               &out)
                  .IsInvalidArgument());
  EXPECT_TRUE(index_
                  ->BatchQuery(std::span<const QuerySpec>(&good, 1), &ctx,
                               nullptr)
                  .IsInvalidArgument());
  const QuerySpec bad_t{&query, 10, 1.5};
  EXPECT_TRUE(index_
                  ->BatchQuery(std::span<const QuerySpec>(&bad_t, 1), &ctx,
                               &out)
                  .IsInvalidArgument());
  const QuerySpec null_query{nullptr, 10, 0.5};
  EXPECT_TRUE(index_
                  ->BatchQuery(std::span<const QuerySpec>(&null_query, 1),
                               &ctx, &out)
                  .IsInvalidArgument());
  auto other_family = HashFamily::Create(kNumHashes, 4321).value();
  const MinHash foreign =
      MinHash::FromValues(other_family, corpus_->domain(0).values);
  const QuerySpec wrong_family{&foreign, 10, 0.5};
  EXPECT_TRUE(index_
                  ->BatchQuery(std::span<const QuerySpec>(&wrong_family, 1),
                               &ctx, &out)
                  .IsInvalidArgument());
}

TEST_F(DynamicBatchQueryTest, WarmContextStopsGrowing) {
  BuildMixedIndex(/*parallel_query=*/false);
  std::vector<size_t> query_indices;
  for (size_t qi = 0; qi < 240; qi += 15) query_indices.push_back(qi);
  std::vector<MinHash> sketches;
  for (size_t qi : query_indices) sketches.push_back(Sketch(qi));
  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < query_indices.size(); ++i) {
    specs.push_back(QuerySpec{
        &sketches[i], corpus_->domain(query_indices[i]).size(), 0.5});
  }
  QueryContext ctx;
  std::vector<std::vector<uint64_t>> outs(specs.size());
  for (int rep = 0; rep < 8; ++rep) {
    ASSERT_TRUE(index_->BatchQuery(specs, &ctx, outs.data()).ok());
  }
  const size_t warm_bytes = ctx.MemoryBytes();
  for (int rep = 0; rep < 5; ++rep) {
    ASSERT_TRUE(index_->BatchQuery(specs, &ctx, outs.data()).ok());
  }
  EXPECT_EQ(ctx.MemoryBytes(), warm_bytes);
}

TEST_F(DynamicEnsembleTest, InsertFromRawValues) {
  auto index = DynamicLshEnsemble::Create(SmallOptions(), family_).value();
  const Domain& domain = corpus_->domain(4);
  ASSERT_TRUE(index.Insert(domain.id, domain.values).ok());
  EXPECT_EQ(index.SizeOf(domain.id), domain.size());
  // The internally built signature must match the explicit sketch.
  const MinHash* stored = index.SignatureOf(domain.id);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->values(), Sketch(4).values());

  EXPECT_TRUE(index.Insert(domain.id + 1, std::span<const uint64_t>())
                  .IsInvalidArgument());
}

// ----------------------------------------- delta-scan admission bound

// The delta scan applies the indexed path's size-based admission bound
// (under the same option): a record with x < t* * q cannot reach
// containment t* (t(Q, X) <= x/q), so its collision count is skipped.
// This test constructs the one case where the bound and the seed
// estimate-only rule DISAGREE — a record whose signature fully collides
// with the query but whose size is below the reachability bound — and
// pins both behaviors, plus reference equivalence of the batched scan.
TEST_F(DynamicEnsembleTest, DeltaAdmissionBoundSkipsUnreachableSizes) {
  // Pick a query domain big enough that q/10 sits clearly under t* * q.
  size_t qi = 0;
  while (qi < corpus_->size() && corpus_->domain(qi).size() < 50) ++qi;
  ASSERT_LT(qi, corpus_->size());
  const MinHash query = Sketch(qi);
  const size_t q = corpus_->domain(qi).size();

  auto build = [&](bool prune) {
    DynamicEnsembleOptions options = SmallOptions();
    options.base.prune_unreachable_partitions = prune;
    auto index = DynamicLshEnsemble::Create(options, family_).value();
    // Same signature as the query, honest size: reachable, admitted.
    EXPECT_TRUE(index.Insert(1, q, Sketch(qi)).ok());
    // Same signature, size below t* * q: full sketch collision, but the
    // true containment cannot reach t* — exactly the record the
    // admission bound exists to skip.
    EXPECT_TRUE(index.Insert(2, q / 10, Sketch(qi)).ok());
    return index;
  };

  const double t_star = 0.8;
  const auto pruned = build(true);
  const auto unpruned = build(false);
  for (const bool batched : {false, true}) {
    std::vector<uint64_t> out_pruned, out_unpruned;
    QueryContext ctx_a, ctx_b;
    if (batched) {
      // A batch of two distinct specs takes the tiled scan path.
      const QuerySpec specs[2] = {QuerySpec{&query, q, t_star},
                                  QuerySpec{&query, q, t_star / 2}};
      std::vector<uint64_t> outs_a[2], outs_b[2];
      ASSERT_TRUE(pruned.BatchQuery(specs, &ctx_a, outs_a).ok());
      ASSERT_TRUE(unpruned.BatchQuery(specs, &ctx_b, outs_b).ok());
      out_pruned = outs_a[0];
      out_unpruned = outs_b[0];
    } else {
      ASSERT_TRUE(pruned.Query(query, q, t_star, &ctx_a, &out_pruned).ok());
      ASSERT_TRUE(
          unpruned.Query(query, q, t_star, &ctx_b, &out_unpruned).ok());
    }
    EXPECT_EQ(out_pruned, (std::vector<uint64_t>{1}))
        << "batched=" << batched;
    EXPECT_EQ(out_unpruned, (std::vector<uint64_t>{1, 2}))
        << "batched=" << batched;
  }
}

// Equivalence pin: the tiled, block-skipping batched scan returns exactly
// what a plain reference loop applying the same admission rule returns,
// across thresholds on both sides of 0.5 and with the bound on and off.
TEST_F(DynamicEnsembleTest, DeltaScanMatchesReferenceWithAdmissionBound) {
  for (const bool prune : {true, false}) {
    DynamicEnsembleOptions options = SmallOptions();
    options.base.prune_unreachable_partitions = prune;
    options.min_delta_for_rebuild = 100000;  // keep everything in the delta
    auto index = DynamicLshEnsemble::Create(options, family_).value();
    for (size_t i = 0; i < 150; ++i) {
      ASSERT_TRUE(InsertDomain(index, i).ok());
    }

    std::vector<MinHash> sketches;
    std::vector<QuerySpec> specs;
    for (size_t qi = 0; qi < 150; qi += 10) sketches.push_back(Sketch(qi));
    size_t j = 0;
    for (size_t qi = 0; qi < 150; qi += 10, ++j) {
      specs.push_back(QuerySpec{&sketches[j], corpus_->domain(qi).size(),
                                0.3 + 0.3 * static_cast<double>(j % 3)});
    }
    QueryContext ctx;
    std::vector<std::vector<uint64_t>> outs(specs.size());
    ASSERT_TRUE(index.BatchQuery(specs, &ctx, outs.data()).ok());

    for (size_t i = 0; i < specs.size(); ++i) {
      std::vector<uint64_t> reference;
      const auto qd = static_cast<double>(specs[i].query_size);
      for (size_t di = 0; di < 150; ++di) {
        const Domain& domain = corpus_->domain(di);
        const auto x = static_cast<double>(domain.size());
        if (prune && x + 1e-9 < specs[i].t_star * qd) continue;
        const double s_star =
            ContainmentToJaccard(specs[i].t_star, x, qd);
        const double jaccard =
            specs[i].query->EstimateJaccard(*index.SignatureOf(domain.id))
                .value();
        if (jaccard + 1e-12 >= s_star) reference.push_back(domain.id);
      }
      EXPECT_EQ(outs[i], reference) << "prune=" << prune << " query " << i;
    }
  }
}

}  // namespace
}  // namespace lshensemble
