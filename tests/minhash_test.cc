#include "minhash/minhash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "minhash/hash_family.h"
#include "util/hashing.h"
#include "util/random.h"

namespace lshensemble {
namespace {

std::shared_ptr<const HashFamily> Family(int m = 128, uint64_t seed = 1) {
  auto family = HashFamily::Create(m, seed);
  EXPECT_TRUE(family.ok());
  return family.value();
}

// ------------------------------------------------------------ hash family

TEST(HashFamilyTest, RejectsNonPositiveSize) {
  EXPECT_FALSE(HashFamily::Create(0, 1).ok());
  EXPECT_FALSE(HashFamily::Create(-3, 1).ok());
}

TEST(HashFamilyTest, SameSeedSameFunctions) {
  auto a = Family(64, 9);
  auto b = Family(64, 9);
  auto c = Family(64, 10);
  EXPECT_TRUE(a->SameAs(*b));
  EXPECT_FALSE(a->SameAs(*c));
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a->HashOne(12345, i), b->HashOne(12345, i));
  }
}

TEST(HashFamilyTest, DifferentSizesAreDifferentFamilies) {
  auto a = Family(64, 9);
  auto b = Family(128, 9);
  EXPECT_FALSE(a->SameAs(*b));
}

TEST(HashFamilyTest, HashesStayBelowMax) {
  auto family = Family(256, 3);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t value = rng.Next();
    for (int i = 0; i < 256; ++i) {
      EXPECT_LE(family->HashOne(value, i), HashFamily::kMaxHash);
    }
  }
}

TEST(HashFamilyTest, MulMod61Identities) {
  EXPECT_EQ(MulMod61(0, 12345), 0u);
  EXPECT_EQ(MulMod61(1, 12345), 12345u);
  EXPECT_EQ(MulMod61(kMersennePrime61 - 1, 1), kMersennePrime61 - 1);
  // (p-1)*(p-1) mod p = 1 since (p-1) = -1 mod p.
  EXPECT_EQ(MulMod61(kMersennePrime61 - 1, kMersennePrime61 - 1), 1u);
}

TEST(HashFamilyTest, AddMod61Wraps) {
  EXPECT_EQ(AddMod61(kMersennePrime61 - 1, 1), 0u);
  EXPECT_EQ(AddMod61(5, 6), 11u);
}

TEST(HashFamilyTest, UpdateMinsMatchesHashOne) {
  auto family = Family(32, 8);
  std::vector<uint64_t> mins(32, MinHash::kEmptySlot);
  family->UpdateMins(777, mins.data());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(mins[i], family->HashOne(777, i));
  }
}

// --------------------------------------------------------------- signature

TEST(MinHashTest, InvalidByDefault) {
  MinHash sketch;
  EXPECT_FALSE(sketch.valid());
  EXPECT_EQ(sketch.num_hashes(), 0);
}

TEST(MinHashTest, EmptyUntilUpdated) {
  MinHash sketch(Family());
  EXPECT_TRUE(sketch.valid());
  EXPECT_TRUE(sketch.empty());
  sketch.Update(5);
  EXPECT_FALSE(sketch.empty());
}

TEST(MinHashTest, OrderInsensitive) {
  auto family = Family();
  MinHash a(family), b(family);
  for (uint64_t v : {5ULL, 9ULL, 100ULL}) a.Update(v);
  for (uint64_t v : {100ULL, 5ULL, 9ULL, 5ULL}) b.Update(v);
  EXPECT_EQ(a.values(), b.values());
}

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  auto family = Family();
  std::vector<uint64_t> values = {1, 2, 3, 4, 5};
  auto a = MinHash::FromValues(family, values);
  auto b = MinHash::FromValues(family, values);
  auto jaccard = a.EstimateJaccard(b);
  ASSERT_TRUE(jaccard.ok());
  EXPECT_DOUBLE_EQ(*jaccard, 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  auto family = Family(256);
  std::vector<uint64_t> a_values, b_values;
  for (uint64_t i = 0; i < 500; ++i) {
    a_values.push_back(i);
    b_values.push_back(1000000 + i);
  }
  auto a = MinHash::FromValues(family, a_values);
  auto b = MinHash::FromValues(family, b_values);
  auto jaccard = a.EstimateJaccard(b);
  ASSERT_TRUE(jaccard.ok());
  EXPECT_LT(*jaccard, 0.03);
}

TEST(MinHashTest, CrossFamilyComparisonRejected) {
  auto a = MinHash::FromValues(Family(128, 1), std::vector<uint64_t>{1, 2});
  auto b = MinHash::FromValues(Family(128, 2), std::vector<uint64_t>{1, 2});
  EXPECT_FALSE(a.EstimateJaccard(b).ok());
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(MinHashTest, StringsAndPrehashedAgree) {
  auto family = Family();
  const std::vector<std::string> strings = {"Ontario", "Toronto"};
  auto from_strings = MinHash::FromStrings(family, strings);
  MinHash incremental(family);
  incremental.UpdateString("Toronto");
  incremental.UpdateString("Ontario");
  EXPECT_EQ(from_strings.values(), incremental.values());
}

// Property: the Jaccard estimator is unbiased with stderr
// sqrt(s(1-s)/m); check the estimate within 5 sigma across overlap levels.
class MinHashJaccardProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MinHashJaccardProperty, EstimateWithinFiveSigma) {
  const int m = std::get<0>(GetParam());
  const double target_jaccard = std::get<1>(GetParam());
  auto family = Family(m, 77);

  // Two sets of equal size n with overlap o have Jaccard o / (2n - o);
  // solve o = 2n*j/(1+j).
  const size_t n = 4000;
  const auto overlap = static_cast<size_t>(
      std::llround(2.0 * n * target_jaccard / (1.0 + target_jaccard)));
  std::vector<uint64_t> a_values, b_values;
  for (size_t i = 0; i < n; ++i) a_values.push_back(i);
  for (size_t i = 0; i < overlap; ++i) b_values.push_back(i);
  for (size_t i = overlap; i < n; ++i) b_values.push_back(1000000 + i);
  const double true_jaccard =
      static_cast<double>(overlap) / static_cast<double>(2 * n - overlap);

  auto a = MinHash::FromValues(family, a_values);
  auto b = MinHash::FromValues(family, b_values);
  auto estimate = a.EstimateJaccard(b);
  ASSERT_TRUE(estimate.ok());
  const double sigma = std::sqrt(true_jaccard * (1 - true_jaccard) / m);
  EXPECT_NEAR(*estimate, true_jaccard, 5.0 * sigma + 1e-9)
      << "m=" << m << " target=" << target_jaccard;
}

INSTANTIATE_TEST_SUITE_P(
    OverlapSweep, MinHashJaccardProperty,
    ::testing::Combine(::testing::Values(128, 256, 512),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9)));

// Property: cardinality estimation error is within ~5/sqrt(m) relative.
class MinHashCardinalityProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(MinHashCardinalityProperty, RelativeErrorBounded) {
  const size_t n = GetParam();
  const int m = 256;
  auto family = Family(m, 99);
  MinHash sketch(family);
  for (size_t i = 0; i < n; ++i) sketch.Update(Mix64(i * 2654435761ULL));
  const double estimate = sketch.EstimateCardinality();
  const double relative_error =
      std::abs(estimate - static_cast<double>(n)) / static_cast<double>(n);
  EXPECT_LT(relative_error, 5.0 / std::sqrt(static_cast<double>(m)))
      << "n=" << n << " estimate=" << estimate;
}

INSTANTIATE_TEST_SUITE_P(CardinalitySweep, MinHashCardinalityProperty,
                         ::testing::Values(10, 100, 1000, 10000, 100000));

TEST(MinHashTest, EmptyCardinalityIsZero) {
  MinHash sketch(Family());
  EXPECT_EQ(sketch.EstimateCardinality(), 0.0);
}

TEST(MinHashTest, MergeEqualsSketchOfUnion) {
  auto family = Family();
  std::vector<uint64_t> a_values = {1, 2, 3, 10, 20};
  std::vector<uint64_t> b_values = {3, 4, 30, 40};
  auto a = MinHash::FromValues(family, a_values);
  auto b = MinHash::FromValues(family, b_values);
  ASSERT_TRUE(a.Merge(b).ok());

  std::vector<uint64_t> union_values = {1, 2, 3, 4, 10, 20, 30, 40};
  auto expected = MinHash::FromValues(family, union_values);
  EXPECT_EQ(a.values(), expected.values());
}

TEST(MinHashTest, SerializeRoundTrip) {
  auto family = Family(64, 123);
  auto sketch =
      MinHash::FromValues(family, std::vector<uint64_t>{5, 7, 9, 11});
  std::string blob;
  sketch.SerializeTo(&blob);
  auto restored = MinHash::Deserialize(blob, family);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->values(), sketch.values());
}

TEST(MinHashTest, DeserializeRejectsWrongFamily) {
  auto family = Family(64, 123);
  auto sketch = MinHash::FromValues(family, std::vector<uint64_t>{5});
  std::string blob;
  sketch.SerializeTo(&blob);
  EXPECT_FALSE(MinHash::Deserialize(blob, Family(64, 124)).ok());
  EXPECT_FALSE(MinHash::Deserialize(blob, Family(32, 123)).ok());
}

TEST(MinHashTest, DeserializeRejectsTruncatedOrCorrupt) {
  auto family = Family(64, 123);
  auto sketch = MinHash::FromValues(family, std::vector<uint64_t>{5});
  std::string blob;
  sketch.SerializeTo(&blob);
  EXPECT_FALSE(MinHash::Deserialize(blob.substr(0, 4), family).ok());
  EXPECT_FALSE(
      MinHash::Deserialize(blob.substr(0, blob.size() - 3), family).ok());
  std::string corrupt = blob;
  // Overwrite one slot with an out-of-range value (> kEmptySlot).
  uint64_t bad = ~0ULL;
  std::memcpy(corrupt.data() + 12, &bad, sizeof(bad));
  EXPECT_FALSE(MinHash::Deserialize(corrupt, family).ok());
}

TEST(MinHashTest, FromSlotsValidates) {
  auto family = Family(8, 1);
  std::vector<uint64_t> slots(8, 42);
  auto ok = MinHash::FromSlots(family, slots);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->values(), slots);

  EXPECT_FALSE(MinHash::FromSlots(family, std::vector<uint64_t>(7, 1)).ok());
  std::vector<uint64_t> out_of_range(8, MinHash::kEmptySlot + 1);
  EXPECT_FALSE(MinHash::FromSlots(family, out_of_range).ok());
  EXPECT_FALSE(MinHash::FromSlots(nullptr, slots).ok());
}

}  // namespace
}  // namespace lshensemble
