#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace lshensemble {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad things");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.message(), "bad things");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad things");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailsThroughMacro() {
  LSHE_RETURN_IF_ERROR(Status::Corruption("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThroughMacro().IsCorruption());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(result.value(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(3));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 3);
}

Status UsesAssignOrReturn(int* out) {
  Result<int> good(5);
  LSHE_ASSIGN_OR_RETURN(*out, std::move(good));
  LSHE_ASSIGN_OR_RETURN(*out, Result<int>(Status::Internal("boom")));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnStopsOnError) {
  int value = 0;
  const Status status = UsesAssignOrReturn(&value);
  EXPECT_EQ(value, 5);
  EXPECT_TRUE(status.IsInternal());
}

}  // namespace
}  // namespace lshensemble
