#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace lshensemble {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad things");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.message(), "bad things");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad things");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, PredicatesAreExclusive) {
  const Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(deadline.ok());
  EXPECT_FALSE(deadline.IsUnavailable());
  EXPECT_FALSE(deadline.IsIOError());
  const Status shed = Status::Unavailable("at capacity");
  EXPECT_FALSE(shed.ok());
  EXPECT_FALSE(shed.IsDeadlineExceeded());
}

TEST(StatusTest, ToStringNamesEveryCode) {
  EXPECT_EQ(Status::DeadlineExceeded("q").ToString(), "DeadlineExceeded: q");
  EXPECT_EQ(Status::Unavailable("shed").ToString(), "Unavailable: shed");
  EXPECT_EQ(Status::IOError("disk").ToString(), "IOError: disk");
  EXPECT_EQ(Status::Corruption("bits").ToString(), "Corruption: bits");
}

TEST(StatusTest, WithMessagePrefixKeepsCode) {
  const Status prefixed =
      Status::IOError("checksum mismatch").WithMessagePrefix("shard-1.lshe2");
  EXPECT_TRUE(prefixed.IsIOError());
  EXPECT_EQ(prefixed.message(), "shard-1.lshe2: checksum mismatch");
  // Prefixes compose outward, innermost context first.
  EXPECT_EQ(prefixed.WithMessagePrefix("open").message(),
            "open: shard-1.lshe2: checksum mismatch");
}

TEST(StatusTest, WithMessagePrefixIsNoOpOnOk) {
  const Status status = Status::OK().WithMessagePrefix("ignored");
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailsThroughMacro() {
  LSHE_RETURN_IF_ERROR(Status::Corruption("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThroughMacro().IsCorruption());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(result.value(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(3));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 3);
}

Status UsesAssignOrReturn(int* out) {
  Result<int> good(5);
  LSHE_ASSIGN_OR_RETURN(*out, std::move(good));
  LSHE_ASSIGN_OR_RETURN(*out, Result<int>(Status::Internal("boom")));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnStopsOnError) {
  int value = 0;
  const Status status = UsesAssignOrReturn(&value);
  EXPECT_EQ(value, 5);
  EXPECT_TRUE(status.IsInternal());
}

}  // namespace
}  // namespace lshensemble
