#include "core/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "baselines/exact_search.h"
#include "core/dynamic_ensemble.h"
#include "data/corpus.h"
#include "minhash/minhash.h"
#include "util/random.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

// ------------------------------------------------------------ SketchStore

TEST(SketchStoreTest, AddAndLookup) {
  auto family = HashFamily::Create(16, 1).value();
  SketchStore store;
  std::vector<uint64_t> values = {1, 2, 3};
  ASSERT_TRUE(store.Add(42, 3, MinHash::FromValues(family, values)).ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Contains(42));
  EXPECT_FALSE(store.Contains(43));
  EXPECT_EQ(store.SizeOf(42), 3u);
  EXPECT_EQ(store.SizeOf(43), 0u);
  EXPECT_NE(store.SignatureOf(42), nullptr);
  EXPECT_EQ(store.SignatureOf(43), nullptr);
}

TEST(SketchStoreTest, RejectsDuplicatesAndInvalid) {
  auto family = HashFamily::Create(16, 1).value();
  SketchStore store;
  std::vector<uint64_t> values = {1};
  ASSERT_TRUE(store.Add(1, 1, MinHash::FromValues(family, values)).ok());
  EXPECT_TRUE(store.Add(1, 1, MinHash::FromValues(family, values))
                  .IsInvalidArgument());
  EXPECT_TRUE(store.Add(2, 0, MinHash::FromValues(family, values))
                  .IsInvalidArgument());
  EXPECT_TRUE(store.Add(3, 1, MinHash()).IsInvalidArgument());
}

// -------------------------------------------------------- options checks

TEST(TopKOptionsTest, Validation) {
  TopKSearcher::Options options;
  EXPECT_TRUE(options.Validate().ok());
  options.initial_threshold = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.decay = 1.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.min_threshold = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.min_threshold = 0.99;  // above initial_threshold
  EXPECT_FALSE(options.Validate().ok());
}

// ------------------------------------------------------------ end to end

class TopKSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CorpusGenOptions gen;
    gen.num_domains = 2000;
    gen.max_size = 5000;
    gen.seed = 99;
    corpus_ = CorpusGenerator(gen).Generate().value();

    family_ = HashFamily::Create(kNumHashes, 5).value();
    LshEnsembleOptions options;
    options.num_partitions = 8;
    options.num_hashes = kNumHashes;
    options.tree_depth = 4;
    LshEnsembleBuilder builder(options, family_);
    for (size_t i = 0; i < corpus_->size(); ++i) {
      const Domain& domain = corpus_->domain(i);
      MinHash sketch = MinHash::FromValues(family_, domain.values);
      ASSERT_TRUE(builder.Add(domain.id, domain.size(), sketch).ok());
      ASSERT_TRUE(store_.Add(domain.id, domain.size(), std::move(sketch)).ok());
      ASSERT_TRUE(exact_.Add(domain.id, domain.values).ok());
    }
    ensemble_ = std::move(builder).Build().value();
    exact_.Build();
  }

  static constexpr int kNumHashes = 256;
  std::optional<Corpus> corpus_;
  std::shared_ptr<const HashFamily> family_;
  SketchStore store_;
  ExactSearch exact_;
  std::optional<LshEnsemble> ensemble_;
};

TEST_F(TopKSearchTest, TopResultFullyContainsQuery) {
  // The query is itself indexed, so containment 1.0 is achievable — but
  // any superset domain also scores exactly 1.0, so the top result need
  // not be the query itself. It must, however, truly (near-)contain it.
  TopKSearcher searcher(&*ensemble_, &store_);
  for (size_t qi = 0; qi < corpus_->size(); qi += 401) {
    const Domain& query = corpus_->domain(qi);
    const MinHash sketch = MinHash::FromValues(family_, query.values);
    auto results = searcher.Search(sketch, query.size(), 5);
    ASSERT_TRUE(results.ok()) << results.status();
    ASSERT_FALSE(results->empty());
    EXPECT_GT(results->front().estimated_containment, 0.8);
    std::vector<std::pair<uint64_t, double>> overlaps;
    ASSERT_TRUE(exact_.Overlaps(query.values, &overlaps).ok());
    double front_exact = 0.0;
    for (const auto& [id, score] : overlaps) {
      if (id == results->front().id) front_exact = score;
    }
    EXPECT_GE(front_exact, 0.9) << "query " << query.id << " top result "
                                << results->front().id;
  }
}

TEST_F(TopKSearchTest, ResultsSortedByEstimate) {
  TopKSearcher searcher(&*ensemble_, &store_);
  const Domain& query = corpus_->domain(17);
  const MinHash sketch = MinHash::FromValues(family_, query.values);
  auto results = searcher.Search(sketch, query.size(), 20);
  ASSERT_TRUE(results.ok());
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_GE((*results)[i - 1].estimated_containment,
              (*results)[i].estimated_containment);
  }
  // No duplicate ids.
  std::vector<uint64_t> ids;
  for (const auto& result : *results) ids.push_back(result.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST_F(TopKSearchTest, RecallAgainstExactTopK) {
  TopKSearcher searcher(&*ensemble_, &store_);
  constexpr size_t kK = 10;
  double recall_sum = 0.0;
  int queries = 0;
  for (size_t qi = 0; qi < corpus_->size(); qi += 97) {
    const Domain& query = corpus_->domain(qi);
    const MinHash sketch = MinHash::FromValues(family_, query.values);
    auto approx = searcher.Search(sketch, query.size(), kK);
    ASSERT_TRUE(approx.ok());
    std::vector<std::pair<uint64_t, double>> truth;
    ASSERT_TRUE(exact_.TopK(query.values, kK, &truth).ok());
    if (truth.empty()) continue;
    // Compare against the exact top-k *score level*: any returned domain
    // whose true containment reaches the k-th exact score is a hit (the
    // exact top-k is not unique under score ties).
    const double kth_score = truth.back().second;
    std::unordered_map<uint64_t, double> exact_scores;
    std::vector<std::pair<uint64_t, double>> all;
    ASSERT_TRUE(exact_.Overlaps(query.values, &all).ok());
    for (const auto& [id, score] : all) exact_scores[id] = score;
    size_t hits = 0;
    for (const auto& result : *approx) {
      const auto it = exact_scores.find(result.id);
      if (it != exact_scores.end() && it->second >= kth_score - 1e-12) ++hits;
    }
    recall_sum +=
        static_cast<double>(hits) / static_cast<double>(truth.size());
    ++queries;
  }
  ASSERT_GT(queries, 0);
  EXPECT_GE(recall_sum / queries, 0.7)
      << "top-k recall collapsed over " << queries << " queries";
}

TEST_F(TopKSearchTest, EstimatesTrackExactContainment) {
  TopKSearcher searcher(&*ensemble_, &store_);
  const Domain& query = corpus_->domain(123);
  const MinHash sketch = MinHash::FromValues(family_, query.values);
  auto results = searcher.Search(sketch, query.size(), 10);
  ASSERT_TRUE(results.ok());
  std::vector<std::pair<uint64_t, double>> all;
  ASSERT_TRUE(exact_.Overlaps(query.values, &all).ok());
  std::unordered_map<uint64_t, double> exact_scores;
  for (const auto& [id, score] : all) exact_scores[id] = score;
  for (const auto& result : *results) {
    const auto it = exact_scores.find(result.id);
    if (it == exact_scores.end()) continue;  // an LSH false positive
    EXPECT_NEAR(result.estimated_containment, it->second, 0.35)
        << "id " << result.id;
  }
}

TEST_F(TopKSearchTest, KLargerThanMatchesReturnsAllOverlapping) {
  TopKSearcher searcher(&*ensemble_, &store_);
  const Domain& query = corpus_->domain(55);
  const MinHash sketch = MinHash::FromValues(family_, query.values);
  auto results = searcher.Search(sketch, query.size(), 100000);
  ASSERT_TRUE(results.ok());
  EXPECT_LE(results->size(), corpus_->size());
  EXPECT_FALSE(results->empty());
}

TEST_F(TopKSearchTest, InvalidArguments) {
  TopKSearcher searcher(&*ensemble_, &store_);
  const MinHash sketch =
      MinHash::FromValues(family_, corpus_->domain(0).values);
  EXPECT_TRUE(searcher.Search(sketch, 10, 0).status().IsInvalidArgument());

  TopKSearcher unbound(nullptr, nullptr);
  EXPECT_TRUE(unbound.Search(sketch, 10, 5).status().IsFailedPrecondition());

  TopKSearcher::Options bad;
  bad.decay = 2.0;
  TopKSearcher misconfigured(&*ensemble_, &store_, bad);
  EXPECT_TRUE(
      misconfigured.Search(sketch, 10, 5).status().IsInvalidArgument());
}

TEST_F(TopKSearchTest, EstimatedQuerySizeWorks) {
  TopKSearcher searcher(&*ensemble_, &store_);
  const Domain& query = corpus_->domain(200);
  const MinHash sketch = MinHash::FromValues(family_, query.values);
  // query_size = 0 -> approx(|Q|) from the sketch (Algorithm 1).
  auto results = searcher.Search(sketch, 0, 5);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // The query domain itself (or a superset of it) leads the ranking.
  EXPECT_GT(results->front().estimated_containment, 0.8);
  bool self_found = false;
  for (const auto& result : *results) {
    self_found = self_found || result.id == query.id;
  }
  EXPECT_TRUE(self_found) << "self not in top-5";
}

// --------------------------------------------------------- batch search

TEST_F(TopKSearchTest, BatchSearchMatchesRepeatedSearch) {
  TopKSearcher searcher(&*ensemble_, &store_);
  // Two-pass query build: fill the sketch vector completely before taking
  // any addresses, so the queries never dangle on a reallocation.
  std::vector<size_t> query_indices;
  for (size_t qi = 0; qi < corpus_->size(); qi += 101) {
    query_indices.push_back(qi);
  }
  std::vector<MinHash> sketches;
  for (size_t qi : query_indices) {
    sketches.push_back(
        MinHash::FromValues(family_, corpus_->domain(qi).values));
  }
  std::vector<TopKQuery> queries;
  for (size_t i = 0; i < query_indices.size(); ++i) {
    queries.push_back(
        TopKQuery{&sketches[i], corpus_->domain(query_indices[i]).size()});
  }
  for (const size_t k : {1ul, 5ul, 20ul}) {
    QueryContext ctx;
    std::vector<std::vector<TopKResult>> outs(queries.size());
    ASSERT_TRUE(searcher.BatchSearch(queries, k, &ctx, outs.data()).ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto sequential =
          searcher.Search(*queries[i].query, queries[i].query_size, k);
      ASSERT_TRUE(sequential.ok());
      EXPECT_EQ(outs[i], *sequential) << "query " << i << " k=" << k;
    }
  }
}

TEST_F(TopKSearchTest, BatchSearchEstimatedSizesMatch) {
  // query_size = 0 resolves through the sketch estimate, batched and
  // sequentially alike.
  TopKSearcher searcher(&*ensemble_, &store_);
  std::vector<MinHash> sketches;
  for (size_t qi = 0; qi < 5 * 331; qi += 331) {
    sketches.push_back(
        MinHash::FromValues(family_, corpus_->domain(qi).values));
  }
  std::vector<TopKQuery> queries;
  for (const MinHash& sketch : sketches) {
    queries.push_back(TopKQuery{&sketch, 0});
  }
  QueryContext ctx;
  std::vector<std::vector<TopKResult>> outs(queries.size());
  ASSERT_TRUE(searcher.BatchSearch(queries, 7, &ctx, outs.data()).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto sequential = searcher.Search(*queries[i].query, 0, 7);
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(outs[i], *sequential) << "query " << i;
  }
}

TEST_F(TopKSearchTest, BatchSearchValidation) {
  TopKSearcher searcher(&*ensemble_, &store_);
  QueryContext ctx;
  const MinHash sketch =
      MinHash::FromValues(family_, corpus_->domain(0).values);
  const TopKQuery query{&sketch, 10};
  std::vector<TopKResult> out;
  const std::span<const TopKQuery> one(&query, 1);

  EXPECT_TRUE(searcher.BatchSearch({}, 5, &ctx, nullptr).ok());  // empty
  EXPECT_TRUE(searcher.BatchSearch(one, 0, &ctx, &out).IsInvalidArgument());
  EXPECT_TRUE(searcher.BatchSearch(one, 5, nullptr, &out).IsInvalidArgument());
  EXPECT_TRUE(searcher.BatchSearch(one, 5, &ctx, nullptr).IsInvalidArgument());
  const TopKQuery null_query{nullptr, 10};
  EXPECT_TRUE(searcher
                  .BatchSearch(std::span<const TopKQuery>(&null_query, 1), 5,
                               &ctx, &out)
                  .IsInvalidArgument());
  TopKSearcher unbound(nullptr, nullptr);
  EXPECT_TRUE(unbound.BatchSearch(one, 5, &ctx, &out).IsFailedPrecondition());
}

// --------------------------------------------- dynamic-backed searcher

TEST_F(TopKSearchTest, DynamicBackedSearcherRanksDeltaAndSkipsTombstones) {
  // A dynamic index in mid-rebuild state: most domains indexed, a tail in
  // the delta, a few removed. The dynamic-backed searcher must rank over
  // exactly the live set — batch and sequential agreeing.
  DynamicEnsembleOptions options;
  options.base.num_partitions = 8;
  options.base.num_hashes = kNumHashes;
  options.base.tree_depth = 4;
  options.min_delta_for_rebuild = 1000000;
  auto family = family_;
  auto index = DynamicLshEnsemble::Create(options, family).value();
  constexpr size_t kLive = 1200;
  for (size_t i = 0; i < kLive; ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(index
                    .Insert(domain.id, domain.size(),
                            MinHash::FromValues(family, domain.values))
                    .ok());
    if (i == 999) {
      ASSERT_TRUE(index.Flush().ok());
    }
  }
  std::unordered_set<uint64_t> removed;
  for (size_t i : {17ul, 423ul, 1005ul}) {  // two indexed, one delta
    ASSERT_TRUE(index.Remove(corpus_->domain(i).id).ok());
    removed.insert(corpus_->domain(i).id);
  }
  ASSERT_GT(index.delta_size(), 0u);
  ASSERT_GT(index.tombstone_count(), 0u);

  TopKSearcher searcher(&index);
  // Self-queries for a tombstoned domain (17), indexed domains, and delta
  // domains (>= 1000); sketches filled before any address is taken.
  const std::vector<size_t> query_indices = {17,  202,  404,  606,
                                             808, 1001, 1100, 1199};
  std::vector<MinHash> sketches;
  for (size_t qi : query_indices) {
    sketches.push_back(MinHash::FromValues(family, corpus_->domain(qi).values));
  }
  std::vector<TopKQuery> queries;
  for (size_t i = 0; i < query_indices.size(); ++i) {
    queries.push_back(
        TopKQuery{&sketches[i], corpus_->domain(query_indices[i]).size()});
  }

  QueryContext ctx;
  std::vector<std::vector<TopKResult>> outs(queries.size());
  ASSERT_TRUE(searcher.BatchSearch(queries, 10, &ctx, outs.data()).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto sequential =
        searcher.Search(*queries[i].query, queries[i].query_size, 10);
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(outs[i], *sequential) << "query " << i;
    for (const TopKResult& result : outs[i]) {
      EXPECT_EQ(removed.count(result.id), 0u)
          << "tombstoned id " << result.id << " surfaced in query " << i;
    }
  }
  // A live delta self-query must rank (near-)perfect containment first.
  ASSERT_FALSE(outs[5].empty());
  EXPECT_GT(outs[5].front().estimated_containment, 0.8);

  // An unbound side-car never happens on the dynamic path: every candidate
  // is live, so every result is rankable.
  for (const auto& out : outs) {
    for (const TopKResult& result : out) {
      EXPECT_NE(index.SignatureOf(result.id), nullptr);
    }
  }
}

// ------------------------------------------------------- exact TopK unit

TEST(ExactTopKTest, OrderingAndTies) {
  ExactSearch engine;
  // Query {1,2,3,4}: containments 4/4, 2/4, 2/4, 1/4 for ids 1..4.
  ASSERT_TRUE(engine.Add(1, {1, 2, 3, 4}).ok());
  ASSERT_TRUE(engine.Add(2, {1, 2, 9}).ok());
  ASSERT_TRUE(engine.Add(3, {3, 4, 8}).ok());
  ASSERT_TRUE(engine.Add(4, {4, 7, 6}).ok());
  engine.Build();
  std::vector<std::pair<uint64_t, double>> top;
  ASSERT_TRUE(engine.TopK({1, 2, 3, 4}, 3, &top).ok());
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 1u);
  EXPECT_DOUBLE_EQ(top[0].second, 1.0);
  // Ids 2 and 3 tie at 0.5; ties break by ascending id.
  EXPECT_EQ(top[1].first, 2u);
  EXPECT_EQ(top[2].first, 3u);
  EXPECT_DOUBLE_EQ(top[1].second, 0.5);
  EXPECT_DOUBLE_EQ(top[2].second, 0.5);
}

TEST(ExactTopKTest, FewerMatchesThanK) {
  ExactSearch engine;
  ASSERT_TRUE(engine.Add(1, {1}).ok());
  ASSERT_TRUE(engine.Add(2, {99}).ok());
  engine.Build();
  std::vector<std::pair<uint64_t, double>> top;
  ASSERT_TRUE(engine.TopK({1, 2}, 10, &top).ok());
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, 1u);
}

TEST(ExactTopKTest, InvalidArguments) {
  ExactSearch engine;
  ASSERT_TRUE(engine.Add(1, {1}).ok());
  engine.Build();
  std::vector<std::pair<uint64_t, double>> top;
  EXPECT_TRUE(engine.TopK({1}, 0, &top).IsInvalidArgument());
  EXPECT_TRUE(engine.TopK({1}, 1, nullptr).IsInvalidArgument());
}

}  // namespace
}  // namespace lshensemble
