#!/usr/bin/env python3
"""Unit tests for tools/check_links.py.

Exercises the checker as a subprocess (the same surface CI uses):
resolving relative links, anchors (headings, explicit <a name>, and
same-file fragments), skipping external URLs and fenced code blocks,
and the failure modes — missing files, bad anchors, nonzero exit.

As a final integration case it runs the checker over this repository's
own markdown, so a doc rot regression fails the unit suite the same
way it fails the CI docs job.

Run directly or via ctest (registered as CheckLinksTest.Python).
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_links.py")


def run_checker(*args):
    return subprocess.run(
        [sys.executable, CHECKER, *args],
        capture_output=True, text=True, check=False)


class CheckLinksTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.root = self.dir.name

    def tearDown(self):
        self.dir.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def test_valid_relative_links_pass(self):
        self.write("docs/other.md", "# Other\n")
        page = self.write(
            "docs/page.md",
            "[up](../README.md) and [side](other.md)\n")
        self.write("README.md", "# Readme\n")
        result = run_checker(page, "--repo-root", self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_missing_file_fails(self):
        page = self.write("page.md", "[gone](no_such_file.md)\n")
        result = run_checker(page, "--repo-root", self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("no_such_file.md", result.stderr)

    def test_heading_anchor_resolves(self):
        self.write("target.md",
                   "# Big Title\n\n## The Ops Runbook!\n")
        page = self.write(
            "page.md",
            "[a](target.md#big-title) [b](target.md#the-ops-runbook)\n")
        result = run_checker(page, "--repo-root", self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_bad_anchor_fails(self):
        self.write("target.md", "# Only Heading\n")
        page = self.write("page.md", "[a](target.md#nope)\n")
        result = run_checker(page, "--repo-root", self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("#nope", result.stderr)

    def test_explicit_name_anchor_resolves(self):
        self.write("target.md", '### <a name="metrics"></a>Metrics\n')
        page = self.write("page.md", "[m](target.md#metrics)\n")
        result = run_checker(page, "--repo-root", self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_same_file_fragment(self):
        good = self.write("good.md", "# Alpha\n\nsee [a](#alpha)\n")
        self.assertEqual(
            run_checker(good, "--repo-root", self.root).returncode, 0)
        bad = self.write("bad.md", "# Alpha\n\nsee [b](#beta)\n")
        self.assertEqual(
            run_checker(bad, "--repo-root", self.root).returncode, 1)

    def test_external_urls_ignored(self):
        page = self.write(
            "page.md",
            "[x](https://example.com/gone) [y](mailto:a@b.c)\n")
        result = run_checker(page, "--repo-root", self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_links_in_code_fences_ignored(self):
        page = self.write(
            "page.md",
            "```\n[not a link](missing.md)\n```\nreal text\n")
        result = run_checker(page, "--repo-root", self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_directory_scan_finds_nested_markdown(self):
        self.write("docs/broken.md", "[x](absent.md)\n")
        result = run_checker(self.root, "--repo-root", self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("absent.md", result.stderr)

    def test_links_escaping_repo_root_ignored(self):
        # Github-site-relative paths (the CI badge's ../../actions/...)
        # point outside the repository and are not this gate's business.
        page = self.write(
            "page.md",
            "[badge](../../actions/workflows/ci.yml/badge.svg)\n")
        result = run_checker(page, "--repo-root", self.root)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_image_links_checked(self):
        page = self.write("page.md", "![diagram](missing.png)\n")
        result = run_checker(page, "--repo-root", self.root)
        self.assertEqual(result.returncode, 1)
        self.assertIn("missing.png", result.stderr)

    def test_repo_docs_are_link_clean(self):
        # The repo's own markdown must stay link-clean; this is the
        # same invocation the CI docs job runs.
        result = run_checker(
            os.path.join(REPO_ROOT, "README.md"),
            os.path.join(REPO_ROOT, "docs"),
            "--repo-root", REPO_ROOT)
        self.assertEqual(result.returncode, 0, result.stderr)


if __name__ == "__main__":
    unittest.main()
