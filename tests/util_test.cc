#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <vector>

#include "util/hashing.h"
#include "util/math.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace lshensemble {
namespace {

// ---------------------------------------------------------------- hashing

TEST(HashingTest, Mix64IsDeterministicAndDispersive) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);  // no collisions on consecutive ints
}

TEST(HashingTest, HashBytesVariesWithSeed) {
  const std::string data = "partner name";
  EXPECT_NE(HashString(data, 0), HashString(data, 1));
  EXPECT_EQ(HashString(data, 5), HashString(data, 5));
}

TEST(HashingTest, HashBytesVariesWithLength) {
  // Exercise every tail-length branch of MurmurHash64A.
  std::set<uint64_t> hashes;
  std::string data = "abcdefghijklmnop";
  for (size_t len = 0; len <= data.size(); ++len) {
    hashes.insert(HashBytes(data.data(), len));
  }
  EXPECT_EQ(hashes.size(), data.size() + 1);
}

TEST(HashingTest, EmptyInputIsValid) {
  EXPECT_EQ(HashBytes(nullptr, 0), HashBytes(nullptr, 0));
  EXPECT_NE(HashBytes(nullptr, 0, 1), HashBytes(nullptr, 0, 2));
}

TEST(HashingTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
}

// ------------------------------------------------------------------- math

TEST(MathTest, IntegrateConstant) {
  EXPECT_NEAR(Integrate([](double) { return 3.0; }, 0.0, 2.0), 6.0, 1e-12);
}

TEST(MathTest, IntegratePolynomialExactly) {
  // Simpson's rule is exact for cubics.
  auto cubic = [](double x) { return 2 * x * x * x - x * x + 4 * x - 1; };
  const double expected = 2.0 / 4 * 16 - 8.0 / 3 + 2 * 4 - 2;  // over [0,2]
  EXPECT_NEAR(Integrate(cubic, 0.0, 2.0, 4), expected, 1e-10);
}

TEST(MathTest, IntegrateTranscendental) {
  EXPECT_NEAR(Integrate([](double x) { return std::sin(x); }, 0.0, M_PI, 256),
              2.0, 1e-8);
}

TEST(MathTest, IntegrateEmptyOrInvertedRange) {
  EXPECT_EQ(Integrate([](double) { return 1.0; }, 1.0, 1.0), 0.0);
  EXPECT_EQ(Integrate([](double) { return 1.0; }, 2.0, 1.0), 0.0);
}

TEST(MathTest, IntegrateOddStepsRoundedUp) {
  EXPECT_NEAR(Integrate([](double x) { return x; }, 0.0, 1.0, 3), 0.5, 1e-12);
}

TEST(MathTest, MomentsOfKnownSample) {
  const std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  const Moments m = ComputeMoments(values);
  EXPECT_EQ(m.count, 8u);
  EXPECT_NEAR(m.mean, 5.0, 1e-12);
  EXPECT_NEAR(m.m2, 4.0, 1e-12);  // classic textbook sample
}

TEST(MathTest, SkewnessSignMatchesTail) {
  // Right-tailed sample: positive skewness.
  std::vector<double> right_tailed;
  for (int i = 0; i < 1000; ++i) right_tailed.push_back(1.0);
  for (int i = 0; i < 10; ++i) right_tailed.push_back(1000.0);
  EXPECT_GT(Skewness(right_tailed), 5.0);

  // Symmetric sample: ~zero skewness.
  std::vector<double> symmetric;
  for (int i = -500; i <= 500; ++i) symmetric.push_back(i);
  EXPECT_NEAR(Skewness(symmetric), 0.0, 1e-9);
}

TEST(MathTest, SkewnessDegenerateSamples) {
  EXPECT_EQ(Skewness({}), 0.0);
  EXPECT_EQ(Skewness({5.0}), 0.0);
  EXPECT_EQ(Skewness({3.0, 3.0, 3.0}), 0.0);  // zero variance
}

TEST(MathTest, MeanAndStdDev) {
  const std::vector<double> values = {1, 2, 3, 4};
  EXPECT_NEAR(Mean(values), 2.5, 1e-12);
  EXPECT_NEAR(StdDev(values), std::sqrt(1.25), 1e-12);
}

TEST(MathTest, Log2HistogramBuckets) {
  const std::vector<uint64_t> values = {1, 2, 3, 4, 7, 8, 1024};
  const auto histogram = Log2Histogram(values);
  ASSERT_EQ(histogram.size(), 11u);
  EXPECT_EQ(histogram[0], 1u);   // 1
  EXPECT_EQ(histogram[1], 2u);   // 2, 3
  EXPECT_EQ(histogram[2], 2u);   // 4, 7
  EXPECT_EQ(histogram[3], 1u);   // 8
  EXPECT_EQ(histogram[10], 1u);  // 1024
}

TEST(MathTest, Log2HistogramEmpty) {
  EXPECT_TRUE(Log2Histogram({}).empty());
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto future = pool.Submit([&] { counter.fetch_add(1); });
  future.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&](size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, DefaultThreadsRespectsEnvOverride) {
  // Setting LSHE_THREADS pins the width of every unsized pool (CI runners
  // vary); garbage values fall back to hardware concurrency.
  ASSERT_EQ(setenv("LSHE_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 3u);
  {
    ThreadPool pool;  // unsized: picks up the override end-to-end
    EXPECT_EQ(pool.num_threads(), 3u);
  }
  ASSERT_EQ(setenv("LSHE_THREADS", "not-a-number", 1), 0);
  const size_t fallback = ThreadPool::DefaultThreads();
  ASSERT_EQ(setenv("LSHE_THREADS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), fallback);
  ASSERT_EQ(setenv("LSHE_THREADS", "-2", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), fallback);
  // strtol overflow saturates to LONG_MAX with ERANGE; must fall back,
  // not try to spawn 9e18 workers.
  ASSERT_EQ(setenv("LSHE_THREADS", "99999999999999999999", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), fallback);
  ASSERT_EQ(unsetenv("LSHE_THREADS"), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), fallback);
  // An explicit size always wins over the environment.
  ASSERT_EQ(setenv("LSHE_THREADS", "5", 1), 0);
  {
    ThreadPool pool(2);
    EXPECT_EQ(pool.num_threads(), 2u);
  }
  ASSERT_EQ(unsetenv("LSHE_THREADS"), 0);
}

TEST(ThreadPoolTest, InWorkerThreadDistinguishesPools) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.InWorkerThread());  // calling thread is not a worker
  bool in_own = false, in_other = true;
  pool.Submit([&] {
      in_own = pool.InWorkerThread();
      in_other = other.InWorkerThread();
    }).wait();
  EXPECT_TRUE(in_own);
  EXPECT_FALSE(in_other);
  // A ParallelFor caller participates in the work without becoming a
  // worker: the guard must not trip for it.
  bool caller_flagged = false;
  pool.ParallelFor(1, [&](size_t) { caller_flagged = pool.InWorkerThread(); });
  EXPECT_FALSE(caller_flagged);
}

TEST(ThreadPoolTest, ManyTasksStress) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(500);
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& future : futures) future.wait();
  EXPECT_EQ(sum.load(), 500L * 499 / 2);
}

TEST(ThreadPoolTest, SharedPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::Shared().ParallelFor(64, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
  EXPECT_GT(ThreadPool::Shared().num_threads(), 0u);
}

TEST(StopWatchTest, MeasuresElapsedTime) {
  StopWatch watch;
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Consistency across units.
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  EXPECT_GE(millis, seconds * 1000.0 * 0.5);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace lshensemble
