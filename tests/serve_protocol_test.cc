// The serving codec is the only part of the system that parses bytes
// from an untrusted peer, so its tests are adversarial: every message
// type round-trips exactly, a frame split at *every* byte boundary
// reassembles, and every corruption class (oversized prefix, zero-length
// frame, unknown tag, truncated body, trailing garbage, lying count
// field) is rejected with Corruption — never a crash.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lshensemble {
namespace serve {
namespace {

// Strip the u32 length prefix off a single encoded frame.
std::string_view PayloadOf(const std::string& frame) {
  EXPECT_GE(frame.size(), kFrameHeaderBytes);
  return std::string_view(frame).substr(kFrameHeaderBytes);
}

TEST(ServeProtocolTest, QueryRequestRoundTrip) {
  QueryRequest req;
  req.request_id = 0x0123456789abcdefULL;
  req.family_seed = 42;
  req.t_star = 0.625;
  req.query_size = 900;
  req.deadline_us = 250;
  req.slots = {5, 0, UINT64_MAX, 77};
  std::string frame;
  EncodeQueryRequest(req, &frame);

  auto decoded = DecodeMessage(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Message& msg = decoded.value();
  ASSERT_EQ(msg.type, MessageType::kQueryRequest);
  EXPECT_EQ(msg.query.request_id, req.request_id);
  EXPECT_EQ(msg.query.family_seed, req.family_seed);
  EXPECT_EQ(msg.query.t_star, req.t_star);
  EXPECT_EQ(msg.query.query_size, req.query_size);
  EXPECT_EQ(msg.query.deadline_us, req.deadline_us);
  EXPECT_EQ(msg.query.slots, req.slots);
}

TEST(ServeProtocolTest, TopKRequestRoundTrip) {
  TopKRequest req;
  req.request_id = 7;
  req.family_seed = 21;
  req.k = 25;
  req.query_size = 0;  // "use the sketch estimate" is on-wire meaningful
  req.deadline_us = 0;
  req.slots = std::vector<uint64_t>(128, 3);
  std::string frame;
  EncodeTopKRequest(req, &frame);

  auto decoded = DecodeMessage(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().type, MessageType::kTopKRequest);
  EXPECT_EQ(decoded.value().topk.k, 25u);
  EXPECT_EQ(decoded.value().topk.slots.size(), 128u);
}

TEST(ServeProtocolTest, StatsAndReloadRequestsRoundTrip) {
  StatsRequest stats;
  stats.request_id = 11;
  ReloadRequest reload;
  reload.request_id = 12;
  std::string stats_frame, reload_frame;
  EncodeStatsRequest(stats, &stats_frame);
  EncodeReloadRequest(reload, &reload_frame);

  auto stats_decoded = DecodeMessage(PayloadOf(stats_frame));
  ASSERT_TRUE(stats_decoded.ok());
  ASSERT_EQ(stats_decoded.value().type, MessageType::kStatsRequest);
  EXPECT_EQ(stats_decoded.value().stats.request_id, 11u);

  auto reload_decoded = DecodeMessage(PayloadOf(reload_frame));
  ASSERT_TRUE(reload_decoded.ok());
  ASSERT_EQ(reload_decoded.value().type, MessageType::kReloadRequest);
  EXPECT_EQ(reload_decoded.value().reload.request_id, 12u);
}

TEST(ServeProtocolTest, QueryResponseRoundTripWithFlags) {
  QueryResponse resp;
  resp.request_id = 99;
  resp.flags = kResponseFlagPartial;
  resp.ids = {1, 2, 3, 1000000};
  std::string frame;
  EncodeQueryResponse(resp, &frame);

  auto decoded = DecodeMessage(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().type, MessageType::kQueryResponse);
  EXPECT_EQ(decoded.value().query_response.request_id, 99u);
  EXPECT_EQ(decoded.value().query_response.flags, kResponseFlagPartial);
  EXPECT_EQ(decoded.value().query_response.ids, resp.ids);
}

TEST(ServeProtocolTest, TopKResponseRoundTrip) {
  TopKResponse resp;
  resp.request_id = 5;
  resp.entries = {{10, 0.99}, {20, 0.5}, {30, 0.0}};
  std::string frame;
  EncodeTopKResponse(resp, &frame);

  auto decoded = DecodeMessage(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().type, MessageType::kTopKResponse);
  const TopKResponse& out = decoded.value().topk_response;
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[0].id, 10u);
  EXPECT_EQ(out.entries[0].estimated_containment, 0.99);
  EXPECT_EQ(out.entries[2].id, 30u);
}

TEST(ServeProtocolTest, StatsResponseRoundTrip) {
  StatsResponse resp;
  resp.request_id = 8;
  resp.num_shards = 4;
  resp.live_domains = 1000;
  resp.indexed_domains = 900;
  resp.delta_domains = 100;
  resp.tombstones = 7;
  resp.epoch = 3;
  std::string frame;
  EncodeStatsResponse(resp, &frame);

  auto decoded = DecodeMessage(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().type, MessageType::kStatsResponse);
  const StatsResponse& out = decoded.value().stats_response;
  EXPECT_EQ(out.num_shards, 4u);
  EXPECT_EQ(out.live_domains, 1000u);
  EXPECT_EQ(out.indexed_domains, 900u);
  EXPECT_EQ(out.delta_domains, 100u);
  EXPECT_EQ(out.tombstones, 7u);
  EXPECT_EQ(out.epoch, 3u);
}

TEST(ServeProtocolTest, ReloadResponseRoundTrip) {
  ReloadResponse resp;
  resp.request_id = 13;
  resp.epoch = 9;
  std::string frame;
  EncodeReloadResponse(resp, &frame);

  auto decoded = DecodeMessage(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().type, MessageType::kReloadResponse);
  EXPECT_EQ(decoded.value().reload_response.epoch, 9u);
}

TEST(ServeProtocolTest, ErrorResponseRoundTrip) {
  ErrorResponse err;
  err.request_id = 77;
  err.code = static_cast<uint8_t>(Status::Code::kUnavailable);
  err.retryable = 1;
  err.message = "shedding: dispatch queue full";
  std::string frame;
  EncodeErrorResponse(err, &frame);

  auto decoded = DecodeMessage(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().type, MessageType::kErrorResponse);
  EXPECT_EQ(decoded.value().error.request_id, 77u);
  EXPECT_EQ(decoded.value().error.code, err.code);
  EXPECT_EQ(decoded.value().error.retryable, 1);
  EXPECT_EQ(decoded.value().error.message, err.message);
}

TEST(ServeProtocolTest, FrameReaderYieldsSingleFrame) {
  StatsRequest req;
  req.request_id = 1;
  std::string frame;
  EncodeStatsRequest(req, &frame);

  FrameReader reader;
  reader.Append(frame);
  std::string_view payload;
  ASSERT_TRUE(reader.Next(&payload));
  EXPECT_EQ(payload, PayloadOf(frame));
  EXPECT_FALSE(reader.Next(&payload));
  EXPECT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ServeProtocolTest, FrameReaderReassemblesEverySplitPoint) {
  QueryRequest req;
  req.request_id = 3;
  req.slots = {1, 2, 3};
  std::string frame;
  EncodeQueryRequest(req, &frame);

  // Split [header+payload] at every byte boundary: the reader must yield
  // nothing before the split completes, then exactly one payload.
  for (size_t split = 0; split <= frame.size(); ++split) {
    FrameReader reader;
    reader.Append(std::string_view(frame).substr(0, split));
    std::string_view payload;
    if (split < frame.size()) {
      EXPECT_FALSE(reader.Next(&payload)) << "split=" << split;
      EXPECT_TRUE(reader.status().ok()) << "split=" << split;
    }
    reader.Append(std::string_view(frame).substr(split));
    ASSERT_TRUE(reader.Next(&payload)) << "split=" << split;
    EXPECT_EQ(payload, PayloadOf(frame)) << "split=" << split;
    auto decoded = DecodeMessage(payload);
    ASSERT_TRUE(decoded.ok()) << "split=" << split;
    EXPECT_EQ(decoded.value().query.request_id, 3u);
  }
}

TEST(ServeProtocolTest, FrameReaderByteAtATime) {
  TopKRequest req;
  req.request_id = 4;
  req.slots = {9, 8, 7, 6};
  std::string frame;
  EncodeTopKRequest(req, &frame);

  FrameReader reader;
  std::string_view payload;
  for (size_t i = 0; i < frame.size(); ++i) {
    if (i + 1 < frame.size()) {
      EXPECT_FALSE(reader.Next(&payload));
    }
    reader.Append(std::string_view(frame).substr(i, 1));
  }
  ASSERT_TRUE(reader.Next(&payload));
  EXPECT_EQ(payload, PayloadOf(frame));
}

TEST(ServeProtocolTest, FrameReaderYieldsPipelinedFrames) {
  std::string stream;
  for (uint64_t id = 1; id <= 5; ++id) {
    StatsRequest req;
    req.request_id = id;
    EncodeStatsRequest(req, &stream);
  }

  FrameReader reader;
  reader.Append(stream);
  std::string_view payload;
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(reader.Next(&payload)) << "frame " << id;
    auto decoded = DecodeMessage(payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().stats.request_id, id);
  }
  EXPECT_FALSE(reader.Next(&payload));
  EXPECT_TRUE(reader.status().ok());
}

TEST(ServeProtocolTest, FrameReaderRejectsOversizedFrameAndStaysPoisoned) {
  FrameReader reader(/*max_frame_bytes=*/64);
  // Length prefix of 65: one byte over the ceiling.
  std::string bad;
  bad.append({65, 0, 0, 0});
  bad.append(65, 'x');
  reader.Append(bad);
  std::string_view payload;
  EXPECT_FALSE(reader.Next(&payload));
  EXPECT_TRUE(reader.status().IsCorruption()) << reader.status().ToString();

  // Poisoned for good: later (well-formed) input is ignored.
  StatsRequest req;
  req.request_id = 1;
  std::string good;
  EncodeStatsRequest(req, &good);
  reader.Append(good);
  EXPECT_FALSE(reader.Next(&payload));
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST(ServeProtocolTest, FrameReaderRejectsZeroLengthFrame) {
  FrameReader reader;
  reader.Append(std::string_view("\0\0\0\0", 4));
  std::string_view payload;
  EXPECT_FALSE(reader.Next(&payload));
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST(ServeProtocolTest, DecodeRejectsEmptyPayload) {
  auto decoded = DecodeMessage(std::string_view());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(ServeProtocolTest, DecodeRejectsUnknownType) {
  std::string payload;
  payload.push_back(static_cast<char>(200));  // no such MessageType
  payload.append(8, '\0');
  auto decoded = DecodeMessage(payload);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(ServeProtocolTest, DecodeRejectsTruncatedBodies) {
  // Every message type, truncated at every byte: always Corruption,
  // never a crash or an OK partial decode.
  std::vector<std::string> frames(9);
  QueryRequest query;
  query.slots = {1, 2};
  EncodeQueryRequest(query, &frames[0]);
  TopKRequest topk;
  topk.slots = {3};
  EncodeTopKRequest(topk, &frames[1]);
  EncodeStatsRequest(StatsRequest{}, &frames[2]);
  EncodeReloadRequest(ReloadRequest{}, &frames[3]);
  QueryResponse query_resp;
  query_resp.ids = {4, 5};
  EncodeQueryResponse(query_resp, &frames[4]);
  TopKResponse topk_resp;
  topk_resp.entries = {{6, 0.5}};
  EncodeTopKResponse(topk_resp, &frames[5]);
  EncodeStatsResponse(StatsResponse{}, &frames[6]);
  EncodeReloadResponse(ReloadResponse{}, &frames[7]);
  ErrorResponse err;
  err.message = "boom";
  EncodeErrorResponse(err, &frames[8]);

  for (size_t f = 0; f < frames.size(); ++f) {
    const std::string_view payload = PayloadOf(frames[f]);
    for (size_t len = 1; len < payload.size(); ++len) {
      auto decoded = DecodeMessage(payload.substr(0, len));
      EXPECT_TRUE(decoded.status().IsCorruption())
          << "frame " << f << " truncated to " << len << " bytes";
    }
  }
}

TEST(ServeProtocolTest, DecodeRejectsTrailingGarbage) {
  StatsRequest req;
  req.request_id = 1;
  std::string frame;
  EncodeStatsRequest(req, &frame);
  std::string payload(PayloadOf(frame));
  payload.push_back('!');
  auto decoded = DecodeMessage(payload);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(ServeProtocolTest, DecodeRejectsLyingSlotCount) {
  // A slot count claiming more elements than the payload could hold must
  // be rejected before any allocation happens.
  QueryRequest req;
  req.request_id = 1;
  req.slots = {1, 2, 3};
  std::string frame;
  EncodeQueryRequest(req, &frame);
  std::string payload(PayloadOf(frame));
  // The slot-count u32 sits 8+8+8+8+8 = 40 bytes into the body, i.e. at
  // offset 1 (type tag) + 40 = 41. Overwrite it with a huge count.
  ASSERT_GT(payload.size(), 45u);
  payload[41] = static_cast<char>(0xff);
  payload[42] = static_cast<char>(0xff);
  payload[43] = static_cast<char>(0xff);
  payload[44] = static_cast<char>(0x7f);
  auto decoded = DecodeMessage(payload);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

}  // namespace
}  // namespace serve
}  // namespace lshensemble
