// Loopback tests for the micro-batching server: a real socket, a real
// port, real concurrent clients. The defining property mirrors the
// sharded layer's own: the network is invisible in the results. Every
// answer that comes back over the wire must equal — id for id, estimate
// for estimate — what a direct BatchQuery / BatchSearch on the same
// engine returns. On top of that equivalence: the shed path (engine at
// its admission bound answers retryable Unavailable), expired deadlines,
// hot engine swap through the reload hook, stats, the HTTP /metrics
// scrape, and the request-validation rejections.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <optional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_ensemble.h"
#include "core/topk.h"
#include "data/corpus.h"
#include "minhash/minhash.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "util/result.h"
#include "util/status.h"
#include "workload/generator.h"

namespace lshensemble {
namespace serve {
namespace {

constexpr int kNumHashes = 128;

ShardedEnsembleOptions ShardOptions(size_t num_shards) {
  ShardedEnsembleOptions options;
  options.base.base.num_partitions = 4;
  options.base.base.num_hashes = kNumHashes;
  options.base.base.tree_depth = 4;
  options.base.min_delta_for_rebuild = 1 << 30;  // tests flush explicitly
  options.num_shards = num_shards;
  return options;
}

// Build a flushed 2-shard engine over `num_domains` generated domains.
// `seed` varies the corpus so two engines can be distinguishable (the
// hot-swap test serves A, swaps to B, and watches the answers change).
std::shared_ptr<const ShardedEnsemble> BuildEngine(
    const std::shared_ptr<const HashFamily>& family, const Corpus& corpus,
    const std::vector<MinHash>& sketches, size_t max_in_flight = 0) {
  ShardedEnsembleOptions options = ShardOptions(2);
  options.max_in_flight_batches = max_in_flight;
  auto engine = std::make_shared<ShardedEnsemble>(
      ShardedEnsemble::Create(options, family).value());
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Domain& domain = corpus.domain(i);
    EXPECT_TRUE(engine->Insert(domain.id, domain.size(), sketches[i]).ok());
  }
  EXPECT_TRUE(engine->Flush().ok());
  return engine;
}

class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    family_ = HashFamily::Create(kNumHashes, 21).value();
    CorpusGenOptions gen;
    gen.num_domains = 200;
    gen.seed = 917;
    corpus_ = CorpusGenerator(gen).Generate().value();
    for (size_t i = 0; i < corpus_->size(); ++i) {
      sketches_.push_back(
          MinHash::FromValues(family_, corpus_->domain(i).values));
    }
    engine_ = BuildEngine(family_, *corpus_, sketches_);
  }

  // Start a server over engine_ (or `engine` when given) on an ephemeral
  // loopback port.
  std::unique_ptr<Server> StartServer(
      ServerOptions options = {},
      std::shared_ptr<const ShardedEnsemble> engine = nullptr,
      Server::Hooks hooks = {}) {
    if (!engine) engine = engine_;
    auto started = Server::Start(
        options, [engine]() { return engine; }, std::move(hooks));
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    return std::move(started.value());
  }

  Client ConnectTo(const Server& server) {
    auto client = Client::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client.value());
  }

  std::shared_ptr<const HashFamily> family_;
  std::optional<Corpus> corpus_;
  std::vector<MinHash> sketches_;
  std::shared_ptr<const ShardedEnsemble> engine_;
};

TEST_F(ServeServerTest, WireQueryEqualsDirectBatchQuery) {
  auto server = StartServer();
  Client client = ConnectTo(*server);

  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < 32; ++i) {
    const size_t pick = (i * 7) % corpus_->size();
    specs.push_back(
        QuerySpec{&sketches_[pick], corpus_->domain(pick).size(), 0.5});
  }
  std::vector<std::vector<uint64_t>> direct(specs.size());
  ASSERT_TRUE(engine_->BatchQuery(specs, direct.data()).ok());

  for (size_t i = 0; i < specs.size(); ++i) {
    auto resp = client.Query(*specs[i].query, specs[i].query_size, 0.5);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().ids, direct[i]) << "query " << i;
    EXPECT_EQ(resp.value().flags, 0);
  }
}

TEST_F(ServeServerTest, WireTopKEqualsDirectBatchSearch) {
  auto server = StartServer();
  Client client = ConnectTo(*server);

  constexpr size_t kK = 10;
  std::vector<TopKQuery> queries;
  for (size_t i = 0; i < 16; ++i) {
    const size_t pick = (i * 13) % corpus_->size();
    queries.push_back(
        TopKQuery{&sketches_[pick], corpus_->domain(pick).size()});
  }
  std::vector<std::vector<TopKResult>> direct(queries.size());
  ASSERT_TRUE(engine_->BatchSearch(queries, kK, direct.data()).ok());

  for (size_t i = 0; i < queries.size(); ++i) {
    auto resp = client.TopK(*queries[i].query, queries[i].query_size, kK);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp.value().entries.size(), direct[i].size()) << "query " << i;
    for (size_t j = 0; j < direct[i].size(); ++j) {
      EXPECT_EQ(resp.value().entries[j].id, direct[i][j].id);
      EXPECT_EQ(resp.value().entries[j].estimated_containment,
                direct[i][j].estimated_containment);
    }
  }
}

TEST_F(ServeServerTest, ConcurrentClientsGetCorrectAnswers) {
  // Many clients in flight at once is the micro-batcher's whole reason
  // to exist; correctness must survive the coalescing.
  ServerOptions options;
  options.batch_linger_us = 200;  // encourage cross-client coalescing
  auto server = StartServer(options);

  // Direct answers for every domain, computed once up front.
  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < corpus_->size(); ++i) {
    specs.push_back(
        QuerySpec{&sketches_[i], corpus_->domain(i).size(), 0.5});
  }
  std::vector<std::vector<uint64_t>> direct(specs.size());
  ASSERT_TRUE(engine_->BatchQuery(specs, direct.data()).ok());

  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 24;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c]() {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < kPerClient; ++i) {
        const size_t pick = (c * 31 + i * 17) % corpus_->size();
        auto resp = client.value().Query(sketches_[pick],
                                         corpus_->domain(pick).size(), 0.5);
        if (!resp.ok() || resp.value().ids != direct[pick]) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // With 8 clients against a >=200us linger at least one wave must have
  // coalesced more than one request.
  EXPECT_GT(server->metrics().batched_requests.load(),
            server->metrics().batches_dispatched.load());
}

TEST_F(ServeServerTest, EngineAtAdmissionBoundShedsRetryable) {
  // An engine with max_in_flight_batches = 1 whose only slot the test
  // holds: every dispatch returns Unavailable, which the server must
  // surface as a retryable shed, not a hard failure.
  auto bounded = BuildEngine(family_, *corpus_, sketches_,
                             /*max_in_flight=*/1);
  auto server = StartServer({}, bounded);
  Client client = ConnectTo(*server);

  auto slot = bounded->TryAdmit();
  ASSERT_TRUE(slot.ok());

  auto resp = client.Query(sketches_[0], corpus_->domain(0).size(), 0.5);
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsUnavailable()) << resp.status().ToString();
  EXPECT_GE(server->metrics().sheds.load(), 1u);

  // Release the slot: the same request now succeeds (shed was retryable).
  slot.value() = ShardedEnsemble::AdmissionSlot();
  auto retry = client.Query(sketches_[0], corpus_->domain(0).size(), 0.5);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(ServeServerTest, ExpiredDeadlineFailsThatRequestAlone) {
  // A 1us budget against a 10ms linger is always expired by dispatch
  // time; it must fail with DeadlineExceeded without poisoning the
  // healthy request batched alongside it.
  ServerOptions options;
  options.batch_linger_us = 10000;
  auto server = StartServer(options);
  Client doomed = ConnectTo(*server);
  Client healthy = ConnectTo(*server);

  // Pipeline both so they land in the same wave.
  QueryRequest req;
  req.request_id = 1;
  req.family_seed = family_->seed();
  req.t_star = 0.5;
  req.query_size = corpus_->domain(0).size();
  req.deadline_us = 1;
  req.slots = sketches_[0].values();
  std::string doomed_frame;
  EncodeQueryRequest(req, &doomed_frame);
  ASSERT_TRUE(doomed.SendFrames(doomed_frame).ok());

  auto ok_resp = healthy.Query(sketches_[1], corpus_->domain(1).size(), 0.5);
  EXPECT_TRUE(ok_resp.ok()) << ok_resp.status().ToString();

  Message msg;
  auto received = doomed.ReceiveMessage();
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  msg = std::move(received.value());
  ASSERT_EQ(msg.type, MessageType::kErrorResponse);
  EXPECT_TRUE(StatusFromError(msg.error).IsDeadlineExceeded());
  EXPECT_GE(server->metrics().deadline_exceeded.load(), 1u);
}

TEST_F(ServeServerTest, StatsReportEngineShape) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().num_shards, engine_->num_shards());
  EXPECT_EQ(stats.value().live_domains, engine_->size());
  EXPECT_EQ(stats.value().indexed_domains, engine_->indexed_size());
  EXPECT_EQ(stats.value().epoch, 0u);  // no epoch hook installed
}

TEST_F(ServeServerTest, ReloadHookHotSwapsTheServedEngine) {
  // Engine B holds a disjoint corpus. After Reload(), queries for an
  // A-domain stop matching it and B answers appear — with zero downtime
  // (the healthy client never reconnects).
  CorpusGenOptions gen;
  gen.num_domains = 200;
  gen.seed = 4242;
  Corpus corpus_b = CorpusGenerator(gen).Generate().value();
  std::vector<MinHash> sketches_b;
  for (size_t i = 0; i < corpus_b.size(); ++i) {
    sketches_b.push_back(
        MinHash::FromValues(family_, corpus_b.domain(i).values));
  }
  auto engine_b = BuildEngine(family_, corpus_b, sketches_b);

  struct Swap {
    std::mutex mutex;
    std::shared_ptr<const ShardedEnsemble> current;
    std::atomic<uint64_t> epoch{1};
  };
  auto swap = std::make_shared<Swap>();
  swap->current = engine_;

  Server::Hooks hooks;
  hooks.reload = [swap, engine_b]() -> Result<uint64_t> {
    std::lock_guard<std::mutex> lock(swap->mutex);
    swap->current = engine_b;
    return swap->epoch.fetch_add(1) + 1;
  };
  hooks.epoch = [swap]() { return swap->epoch.load(); };

  auto started = Server::Start(
      ServerOptions{},
      [swap]() {
        std::lock_guard<std::mutex> lock(swap->mutex);
        return swap->current;
      },
      std::move(hooks));
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  auto server = std::move(started.value());
  Client client = ConnectTo(*server);

  // Self-query on an A domain: engine A must return the domain itself.
  auto before = client.Query(sketches_[0], corpus_->domain(0).size(), 0.9);
  ASSERT_TRUE(before.ok());
  const uint64_t a_id = corpus_->domain(0).id;
  EXPECT_TRUE(std::find(before.value().ids.begin(), before.value().ids.end(),
                        a_id) != before.value().ids.end());

  auto reload = client.Reload();
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  EXPECT_EQ(reload.value().epoch, 2u);

  // Same connection, new engine: answers now come from B.
  std::vector<QuerySpec> spec = {
      QuerySpec{&sketches_b[0], corpus_b.domain(0).size(), 0.9}};
  std::vector<uint64_t> direct_b;
  ASSERT_TRUE(engine_b->BatchQuery(spec, &direct_b).ok());
  auto after = client.Query(sketches_b[0], corpus_b.domain(0).size(), 0.9);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().ids, direct_b);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().epoch, 2u);
}

TEST_F(ServeServerTest, ReloadWithoutHookIsNotSupported) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  auto reload = client.Reload();
  ASSERT_FALSE(reload.ok());
  EXPECT_TRUE(reload.status().IsNotSupported()) << reload.status().ToString();
}

TEST_F(ServeServerTest, MetricsScrapeOverHttp) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  ASSERT_TRUE(
      client.Query(sketches_[0], corpus_->domain(0).size(), 0.5).ok());

  // Raw HTTP/1.0 one-shot scrape on the data port.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
      0);
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::write(fd, request, sizeof(request) - 1),
            static_cast<ssize_t>(sizeof(request) - 1));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);

  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("lshe_serve_query_requests_total 1"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("lshe_serve_engine_shards 2"), std::string::npos);
  EXPECT_NE(response.find("lshe_serve_batch_fill_count"), std::string::npos);
}

TEST_F(ServeServerTest, RejectsWrongFamilySeed) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  auto other_family = HashFamily::Create(kNumHashes, 999).value();
  MinHash sketch =
      MinHash::FromValues(other_family, corpus_->domain(0).values);
  auto resp = client.Query(sketch, corpus_->domain(0).size(), 0.5);
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsInvalidArgument()) << resp.status().ToString();
}

TEST_F(ServeServerTest, RejectsWrongSlotCount) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  QueryRequest req;
  req.request_id = 1;
  req.family_seed = family_->seed();  // right family, wrong width
  req.t_star = 0.5;
  req.slots = std::vector<uint64_t>(kNumHashes / 2, 1);
  std::string frame;
  EncodeQueryRequest(req, &frame);
  ASSERT_TRUE(client.SendFrames(frame).ok());
  auto received = client.ReceiveMessage();
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  ASSERT_EQ(received.value().type, MessageType::kErrorResponse);
  EXPECT_TRUE(StatusFromError(received.value().error).IsInvalidArgument());
}

TEST_F(ServeServerTest, RejectsBadTStarAndZeroK) {
  auto server = StartServer();
  Client client = ConnectTo(*server);

  auto bad_t = client.Query(sketches_[0], corpus_->domain(0).size(), 1.5);
  ASSERT_FALSE(bad_t.ok());
  EXPECT_TRUE(bad_t.status().IsInvalidArgument());

  auto bad_k = client.TopK(sketches_[0], corpus_->domain(0).size(), 0);
  ASSERT_FALSE(bad_k.ok());
  EXPECT_TRUE(bad_k.status().IsInvalidArgument());
}

TEST_F(ServeServerTest, MalformedFramingDropsConnection) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  // A length prefix far above max_frame_bytes poisons the stream; the
  // server must drop the connection (read returns EOF client-side).
  std::string bad("\xff\xff\xff\x7f", 4);
  ASSERT_TRUE(client.SendFrames(bad).ok());
  auto received = client.ReceiveMessage();
  EXPECT_FALSE(received.ok());
  // A fresh connection still works: the drop was scoped to the offender.
  Client fresh = ConnectTo(*server);
  EXPECT_TRUE(
      fresh.Query(sketches_[0], corpus_->domain(0).size(), 0.5).ok());
  EXPECT_GE(server->metrics().protocol_errors.load(), 1u);
}

TEST_F(ServeServerTest, StopIsIdempotentAndClosesClients) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  server->Stop();
  server->Stop();
  auto resp = client.Query(sketches_[0], corpus_->domain(0).size(), 0.5);
  EXPECT_FALSE(resp.ok());
}

}  // namespace
}  // namespace serve
}  // namespace lshensemble
