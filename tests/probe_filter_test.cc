// The probe filter's contract is one-sided error: a key that was inserted
// must always test positive (false negatives would silently drop query
// candidates), and keys never inserted should rarely test positive (a
// false positive only wastes a forest probe). These tests pin both sides,
// the scalar/AVX2 block-probe parity, and the zero-copy mapped view.

#include "filter/probe_filter.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <vector>

namespace lshensemble {
namespace {

std::vector<uint64_t> RandomKeys(size_t count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) keys.push_back(rng());
  return keys;
}

TEST(ProbeFilterTest, EmptyFilterContainsNothing) {
  ProbeFilter filter;
  EXPECT_TRUE(filter.empty());
  EXPECT_EQ(filter.num_blocks(), 0u);
  for (uint64_t key : RandomKeys(64, 1)) {
    EXPECT_FALSE(filter.MayContain(key));
  }
}

TEST(ProbeFilterTest, NoFalseNegativesEver) {
  for (const int bits : {1, 4, 8, 16}) {
    SCOPED_TRACE("bits_per_key=" + std::to_string(bits));
    const std::vector<uint64_t> keys = RandomKeys(5000, 42);
    ProbeFilter filter = ProbeFilter::Build(keys, bits);
    EXPECT_FALSE(filter.empty());
    for (uint64_t key : keys) {
      EXPECT_TRUE(filter.MayContain(key)) << "lost key " << key;
    }
  }
}

TEST(ProbeFilterTest, FalsePositiveRateIsSane) {
  const std::vector<uint64_t> keys = RandomKeys(20000, 7);
  ProbeFilter filter = ProbeFilter::Build(keys, /*bits_per_key=*/8);
  // Disjoint probe set (different seed; collisions with `keys` are
  // negligible over a 64-bit space).
  const std::vector<uint64_t> probes = RandomKeys(20000, 8);
  size_t positives = 0;
  for (uint64_t probe : probes) {
    if (filter.MayContain(probe)) ++positives;
  }
  // Split-block at 8 bits/key sits around 2% FPR; 5% leaves seed margin.
  EXPECT_LT(static_cast<double>(positives) / probes.size(), 0.05)
      << positives << " of " << probes.size() << " foreign keys admitted";
}

TEST(ProbeFilterTest, DuplicateAndZeroKeysAreFine) {
  const std::vector<uint64_t> keys = {0, 0, 0, 17, 17, ~uint64_t{0}};
  ProbeFilter filter = ProbeFilter::Build(keys, 8);
  for (uint64_t key : keys) {
    EXPECT_TRUE(filter.MayContain(key));
  }
}

TEST(ProbeFilterTest, ProbeKeySeparatesTrees) {
  // The same slot-0 key under different trees must form distinct filter
  // keys, or a filter could not distinguish per-tree bucket occupancy.
  EXPECT_NE(ProbeFilter::ProbeKey(0, 123), ProbeFilter::ProbeKey(1, 123));
  EXPECT_EQ(ProbeFilter::ProbeKey(2, 9),
            (uint64_t{2} << 32) | uint64_t{9});
}

TEST(ProbeFilterTest, MappedViewAnswersIdentically) {
  const std::vector<uint64_t> keys = RandomKeys(3000, 99);
  ProbeFilter built = ProbeFilter::Build(keys, 8);

  // Simulate the snapshot path: copy the block lanes into a separate
  // buffer and wrap it without copying.
  auto backing = std::make_shared<std::vector<uint32_t>>(
      built.blocks().begin(), built.blocks().end());
  auto mapped = ProbeFilter::FromMapped(
      built.num_blocks(), std::span<const uint32_t>(*backing), backing);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  EXPECT_TRUE(mapped->is_view());
  EXPECT_EQ(mapped->MemoryBytes(), 0u);

  const std::vector<uint64_t> probes = RandomKeys(4000, 100);
  for (uint64_t key : keys) {
    EXPECT_TRUE(mapped->MayContain(key));
  }
  for (uint64_t probe : probes) {
    EXPECT_EQ(mapped->MayContain(probe), built.MayContain(probe));
  }
}

TEST(ProbeFilterTest, FromMappedValidatesLaneCount) {
  std::vector<uint32_t> lanes(kProbeFilterBlockLanes * 2);
  EXPECT_FALSE(ProbeFilter::FromMapped(/*num_blocks=*/3,
                                       std::span<const uint32_t>(lanes),
                                       nullptr)
                   .ok());
  EXPECT_TRUE(ProbeFilter::FromMapped(/*num_blocks=*/2,
                                      std::span<const uint32_t>(lanes),
                                      nullptr)
                  .ok());
}

// The AVX2 block probe must agree with the scalar reference on every
// (block, hash) pair — including blocks with all bits set and none set.
TEST(ProbeFilterTest, ScalarAndAvx2BlockProbesAgree) {
  auto* avx2 = probe_filter_internal::BlockMayContainAvx2();
  if (avx2 == nullptr) {
    GTEST_SKIP() << "AVX2 block probe unavailable on this CPU/build";
  }
  std::mt19937_64 rng(2026);
  uint32_t block[kProbeFilterBlockLanes];
  for (int trial = 0; trial < 20000; ++trial) {
    for (auto& lane : block) {
      // Mix dense and sparse blocks so both outcomes are exercised.
      lane = static_cast<uint32_t>(rng()) &
             static_cast<uint32_t>(rng()) &
             ((trial % 3 == 0) ? ~0u : static_cast<uint32_t>(rng()));
    }
    if (trial == 0) std::memset(block, 0, sizeof(block));
    if (trial == 1) std::memset(block, 0xFF, sizeof(block));
    const auto h = static_cast<uint32_t>(rng());
    EXPECT_EQ(probe_filter_internal::BlockMayContainScalar(block, h),
              avx2(block, h))
        << "trial " << trial << " hash " << h;
  }
}

}  // namespace
}  // namespace lshensemble
