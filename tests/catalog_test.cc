#include "io/catalog.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/file.h"
#include "test_tmp.h"
#include "util/random.h"

namespace lshensemble {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    family_ = HashFamily::Create(64, 9).value();
  }

  MinHash RandomSketch(uint64_t seed, size_t n) {
    Rng rng(seed);
    std::vector<uint64_t> values(n);
    for (auto& v : values) v = rng.Next();
    return MinHash::FromValues(family_, values);
  }

  void TearDown() override { RemoveFileIfExists(path_).ok(); }

  std::shared_ptr<const HashFamily> family_;
  std::string path_ = ProcessTempPath("lshe_catalog_test.bin");
};

TEST_F(CatalogTest, AddAndFind) {
  Catalog catalog(family_);
  ASSERT_TRUE(catalog.Add(7, "grants.csv:Partner", 120,
                          RandomSketch(1, 120)).ok());
  ASSERT_TRUE(catalog.Add(9, "grants.csv:Province", 13,
                          RandomSketch(2, 13)).ok());
  EXPECT_EQ(catalog.size(), 2u);
  ASSERT_NE(catalog.Find(7), nullptr);
  EXPECT_EQ(catalog.Find(7)->name, "grants.csv:Partner");
  EXPECT_EQ(catalog.Find(7)->size, 120u);
  EXPECT_EQ(catalog.Find(8), nullptr);
  EXPECT_EQ(catalog.NameOf(9), "grants.csv:Province");
  EXPECT_EQ(catalog.NameOf(1000), "<unknown id>");
}

TEST_F(CatalogTest, RejectsBadEntries) {
  Catalog catalog(family_);
  ASSERT_TRUE(catalog.Add(1, "a", 10, RandomSketch(1, 10)).ok());
  EXPECT_TRUE(catalog.Add(1, "dup", 10, RandomSketch(2, 10))
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog.Add(2, "zero", 0, RandomSketch(3, 5))
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog.Add(3, "invalid", 5, MinHash()).IsInvalidArgument());
  auto other = HashFamily::Create(64, 1234).value();
  std::vector<uint64_t> values = {1, 2, 3};
  EXPECT_TRUE(catalog.Add(4, "family", 3,
                          MinHash::FromValues(other, values))
                  .IsInvalidArgument());
}

TEST_F(CatalogTest, SerializationRoundTrip) {
  Catalog catalog(family_);
  for (uint64_t id = 1; id <= 20; ++id) {
    ASSERT_TRUE(catalog.Add(id, std::string("table:") + std::to_string(id),
                            id * 3,
                            RandomSketch(id, id * 3)).ok());
  }
  std::string image;
  ASSERT_TRUE(catalog.SerializeTo(&image).ok());
  auto restored = Catalog::Deserialize(image);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), catalog.size());
  EXPECT_TRUE(restored->family()->SameAs(*family_));
  for (uint64_t id = 1; id <= 20; ++id) {
    const CatalogEntry* original = catalog.Find(id);
    const CatalogEntry* loaded = restored->Find(id);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->name, original->name);
    EXPECT_EQ(loaded->size, original->size);
    EXPECT_EQ(loaded->signature.values(), original->signature.values());
  }
}

TEST_F(CatalogTest, SaveLoadFile) {
  Catalog catalog(family_);
  ASSERT_TRUE(catalog.Add(5, "x", 7, RandomSketch(5, 7)).ok());
  ASSERT_TRUE(catalog.Save(path_).ok());
  auto loaded = Catalog::Load(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->NameOf(5), "x");
}

TEST_F(CatalogTest, CorruptionDetected) {
  Catalog catalog(family_);
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(catalog.Add(id, std::string("t") + std::to_string(id), 10,
                            RandomSketch(id, 10)).ok());
  }
  std::string image;
  ASSERT_TRUE(catalog.SerializeTo(&image).ok());
  for (size_t offset = 0; offset < image.size();
       offset += std::max<size_t>(1, image.size() / 40)) {
    std::string corrupt = image;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x10);
    EXPECT_FALSE(Catalog::Deserialize(corrupt).ok()) << "offset " << offset;
  }
  for (size_t keep : {size_t{0}, size_t{6}, image.size() / 2,
                      image.size() - 1}) {
    EXPECT_FALSE(
        Catalog::Deserialize(std::string_view(image).substr(0, keep)).ok())
        << "kept " << keep;
  }
}

TEST_F(CatalogTest, EmptyCatalogRoundTrip) {
  Catalog catalog(family_);
  std::string image;
  ASSERT_TRUE(catalog.SerializeTo(&image).ok());
  auto restored = Catalog::Deserialize(image);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 0u);
}

TEST_F(CatalogTest, ToSketchStore) {
  Catalog catalog(family_);
  ASSERT_TRUE(catalog.Add(11, "a", 30, RandomSketch(1, 30)).ok());
  ASSERT_TRUE(catalog.Add(12, "b", 40, RandomSketch(2, 40)).ok());
  auto store = catalog.ToSketchStore();
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->SizeOf(11), 30u);
  EXPECT_NE(store->SignatureOf(12), nullptr);
}

TEST_F(CatalogTest, MissingFileIsNotFound) {
  auto loaded = Catalog::Load(ProcessTempPath("no_such_catalog"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

}  // namespace
}  // namespace lshensemble
