#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/lsh_ensemble.h"
#include "test_tmp.h"
#include "io/coding.h"
#include "io/crc32c.h"
#include "io/ensemble_io.h"
#include "io/file.h"
#include "lsh/lsh_forest.h"
#include "util/random.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

// ----------------------------------------------------------------- coding

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buffer;
  PutFixed32(&buffer, 0);
  PutFixed32(&buffer, 0xDEADBEEFu);
  PutFixed32(&buffer, UINT32_MAX);
  DecodeCursor cursor(buffer);
  uint32_t value = 1;
  ASSERT_TRUE(cursor.GetFixed32(&value));
  EXPECT_EQ(value, 0u);
  ASSERT_TRUE(cursor.GetFixed32(&value));
  EXPECT_EQ(value, 0xDEADBEEFu);
  ASSERT_TRUE(cursor.GetFixed32(&value));
  EXPECT_EQ(value, UINT32_MAX);
  EXPECT_TRUE(cursor.empty());
}

TEST(CodingTest, Fixed32IsLittleEndian) {
  std::string buffer;
  PutFixed32(&buffer, 0x04030201u);
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer[0], 1);
  EXPECT_EQ(buffer[1], 2);
  EXPECT_EQ(buffer[2], 3);
  EXPECT_EQ(buffer[3], 4);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buffer;
  PutFixed64(&buffer, 0x1122334455667788ull);
  DecodeCursor cursor(buffer);
  uint64_t value = 0;
  ASSERT_TRUE(cursor.GetFixed64(&value));
  EXPECT_EQ(value, 0x1122334455667788ull);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Varint64) {
  std::string buffer;
  PutVarint64(&buffer, GetParam());
  DecodeCursor cursor(buffer);
  uint64_t value = 0;
  ASSERT_TRUE(cursor.GetVarint64(&value));
  EXPECT_EQ(value, GetParam());
  EXPECT_TRUE(cursor.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 129ull, 16383ull, 16384ull,
                      (1ull << 32) - 1, 1ull << 32, (1ull << 63),
                      UINT64_MAX - 1, UINT64_MAX));

TEST(CodingTest, VarintLengthsAreMinimal) {
  for (int bits = 0; bits < 64; ++bits) {
    const uint64_t value = 1ull << bits;
    std::string buffer;
    PutVarint64(&buffer, value);
    EXPECT_EQ(buffer.size(), static_cast<size_t>(bits / 7 + 1)) << bits;
  }
}

TEST(CodingTest, Varint32RejectsOversizedValue) {
  std::string buffer;
  PutVarint64(&buffer, uint64_t{UINT32_MAX} + 1);
  DecodeCursor cursor(buffer);
  uint32_t value = 0;
  EXPECT_FALSE(cursor.GetVarint32(&value));
  // A failed read must not consume bytes.
  uint64_t wide = 0;
  ASSERT_TRUE(cursor.GetVarint64(&wide));
  EXPECT_EQ(wide, uint64_t{UINT32_MAX} + 1);
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buffer;
  PutVarint64(&buffer, UINT64_MAX);
  for (size_t keep = 0; keep + 1 < buffer.size(); ++keep) {
    DecodeCursor cursor(std::string_view(buffer).substr(0, keep));
    uint64_t value = 0;
    EXPECT_FALSE(cursor.GetVarint64(&value)) << "kept " << keep;
  }
}

TEST(CodingTest, VarintOverflowFails) {
  // 11 continuation bytes: longer than any valid 64-bit varint.
  const std::string buffer(11, '\x80');
  DecodeCursor cursor(buffer);
  uint64_t value = 0;
  EXPECT_FALSE(cursor.GetVarint64(&value));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buffer;
  PutLengthPrefixed(&buffer, "hello");
  PutLengthPrefixed(&buffer, "");
  PutLengthPrefixed(&buffer, std::string(1000, 'x'));
  DecodeCursor cursor(buffer);
  std::string_view value;
  ASSERT_TRUE(cursor.GetLengthPrefixed(&value));
  EXPECT_EQ(value, "hello");
  ASSERT_TRUE(cursor.GetLengthPrefixed(&value));
  EXPECT_EQ(value, "");
  ASSERT_TRUE(cursor.GetLengthPrefixed(&value));
  EXPECT_EQ(value.size(), 1000u);
  EXPECT_TRUE(cursor.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedPayloadFails) {
  std::string buffer;
  PutVarint64(&buffer, 100);  // claims 100 bytes
  buffer += "short";
  DecodeCursor cursor(buffer);
  std::string_view value;
  EXPECT_FALSE(cursor.GetLengthPrefixed(&value));
  EXPECT_EQ(cursor.remaining(), buffer.size());  // nothing consumed
}

TEST(CodingTest, GetRawBounds) {
  DecodeCursor cursor("abc");
  std::string_view value;
  EXPECT_FALSE(cursor.GetRaw(4, &value));
  EXPECT_TRUE(cursor.GetRaw(3, &value));
  EXPECT_EQ(value, "abc");
  EXPECT_TRUE(cursor.GetRaw(0, &value));
  EXPECT_TRUE(value.empty());
}

// ----------------------------------------------------------------- crc32c

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C check value.
  EXPECT_EQ(crc32c::Value("123456789"), 0xE3069283u);
  // 32 zero bytes (iSCSI test vector).
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(crc32c::Value(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendIsIncremental) {
  const std::string data = "hello world, this is a checksum test";
  const uint32_t whole = crc32c::Value(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t partial = crc32c::Extend(
        crc32c::Extend(0, data.data(), split), data.data() + split,
        data.size() - split);
    EXPECT_EQ(partial, whole) << "split " << split;
  }
}

TEST(Crc32cTest, SensitiveToSingleBitFlip) {
  std::string data(64, 'a');
  const uint32_t base = crc32c::Value(data);
  for (size_t byte = 0; byte < data.size(); byte += 7) {
    data[byte] ^= 1;
    EXPECT_NE(crc32c::Value(data), base) << "byte " << byte;
    data[byte] ^= 1;
  }
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, UINT32_MAX}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);
  }
}

// The hardware (SSE4.2) kernel must agree with the software slice-by-4
// reference on every length, alignment, and running-CRC seed — snapshot
// images written by one machine are verified by any other.
TEST(Crc32cTest, HardwareAndSoftwareKernelsAgree) {
  auto* hw = crc32c::internal::ExtendHw();
  if (hw == nullptr) {
    GTEST_SKIP() << "CRC32 instruction unavailable on this CPU/build";
  }
  std::mt19937_64 rng(314159);
  std::vector<unsigned char> buffer(4096 + 16);
  for (auto& byte : buffer) byte = static_cast<unsigned char>(rng());
  for (const size_t length :
       {size_t{0}, size_t{1}, size_t{3}, size_t{7}, size_t{8}, size_t{9},
        size_t{63}, size_t{64}, size_t{1000}, size_t{4096}}) {
    for (size_t misalign = 0; misalign < 9; ++misalign) {
      const unsigned char* p = buffer.data() + misalign;
      for (const uint32_t seed : {0u, 0xDEADBEEFu}) {
        EXPECT_EQ(crc32c::internal::ExtendSw(seed, p, length),
                  hw(seed, p, length))
            << "length " << length << " misalign " << misalign << " seed "
            << seed;
      }
    }
  }
}

// ------------------------------------------------------------------- file

class FileIoTest : public ::testing::Test {
 protected:
  void TearDown() override { RemoveFileIfExists(path_).ok(); }
  std::string path_ = ProcessTempPath("lshe_file_test.bin");
};

TEST_F(FileIoTest, WriteReadRoundTrip) {
  std::string payload = "binary\0data\xff with nulls";
  payload.push_back('\0');
  ASSERT_TRUE(WriteFileAtomic(path_, payload).ok());
  std::string read_back;
  ASSERT_TRUE(ReadFileToString(path_, &read_back).ok());
  EXPECT_EQ(read_back, payload);
}

TEST_F(FileIoTest, OverwriteReplacesContents) {
  ASSERT_TRUE(WriteFileAtomic(path_, "first version, quite long").ok());
  ASSERT_TRUE(WriteFileAtomic(path_, "second").ok());
  std::string read_back;
  ASSERT_TRUE(ReadFileToString(path_, &read_back).ok());
  EXPECT_EQ(read_back, "second");
}

TEST_F(FileIoTest, EmptyFile) {
  ASSERT_TRUE(WriteFileAtomic(path_, "").ok());
  std::string read_back = "sentinel";
  ASSERT_TRUE(ReadFileToString(path_, &read_back).ok());
  EXPECT_TRUE(read_back.empty());
}

TEST_F(FileIoTest, MissingFileIsNotFound) {
  std::string read_back;
  const Status status =
      ReadFileToString(ProcessTempPath("does_not_exist_9x"), &read_back);
  EXPECT_TRUE(status.IsNotFound());
}

TEST_F(FileIoTest, NoTempFileLeftBehind) {
  ASSERT_TRUE(WriteFileAtomic(path_, "data").ok());
  std::string unused;
  EXPECT_TRUE(ReadFileToString(path_ + ".tmp", &unused).IsNotFound());
}

// ----------------------------------------------------- forest round trip

TEST(LshForestSerializationTest, RoundTripPreservesQueries) {
  auto family = HashFamily::Create(64, /*seed=*/7).value();
  auto forest = LshForest::Create(/*num_trees=*/8, /*tree_depth=*/8).value();
  Rng rng(11);
  std::vector<MinHash> signatures;
  for (uint64_t id = 0; id < 50; ++id) {
    std::vector<uint64_t> values(20 + id);
    for (auto& v : values) v = rng.Next();
    signatures.push_back(MinHash::FromValues(family, values));
    ASSERT_TRUE(forest.Add(id, signatures.back()).ok());
  }
  forest.Index();

  std::string image;
  ASSERT_TRUE(forest.SerializeTo(&image).ok());
  auto restored = LshForest::Deserialize(image);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), forest.size());

  for (int b : {1, 4, 8}) {
    for (int r : {1, 4, 8}) {
      for (size_t qi = 0; qi < signatures.size(); qi += 9) {
        std::vector<uint64_t> expected, actual;
        ASSERT_TRUE(forest.Query(signatures[qi], b, r, &expected).ok());
        ASSERT_TRUE(restored->Query(signatures[qi], b, r, &actual).ok());
        std::sort(expected.begin(), expected.end());
        std::sort(actual.begin(), actual.end());
        EXPECT_EQ(actual, expected) << "b=" << b << " r=" << r;
      }
    }
  }
}

// The flattened key-arena layout must stay wire-compatible with the
// original per-tree-vector layout: trees emitted one after another, keys
// first, then the entry permutation. This test pins the byte stream
// against an independently hand-assembled image.
TEST(LshForestSerializationTest, WireFormatIsStable) {
  auto family = HashFamily::Create(2, /*seed=*/3).value();
  auto forest = LshForest::Create(/*num_trees=*/1, /*tree_depth=*/2).value();
  Rng rng(13);
  std::vector<MinHash> signatures;
  const uint64_t ids[] = {7, 9, 4};
  for (uint64_t id : ids) {
    std::vector<uint64_t> values(10 + id);
    for (auto& v : values) v = rng.Next();
    signatures.push_back(MinHash::FromValues(family, values));
    ASSERT_TRUE(forest.Add(id, signatures.back()).ok());
  }
  forest.Index();
  std::string image;
  ASSERT_TRUE(forest.SerializeTo(&image).ok());

  // Hand-assemble the expected image: keys are the top 32 bits of the
  // 61-bit minima, rows sorted lexicographically, entries the sort
  // permutation over insertion indices.
  auto key = [&](size_t record, size_t d) {
    return static_cast<uint32_t>(signatures[record].values()[d] >> 29);
  };
  std::vector<uint32_t> order = {0, 1, 2};
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::make_pair(key(a, 0), key(a, 1)) <
           std::make_pair(key(b, 0), key(b, 1));
  });
  std::string expected;
  PutVarint32(&expected, 1);  // num_trees
  PutVarint32(&expected, 2);  // tree_depth
  PutVarint64(&expected, 3);  // entry count
  for (uint64_t id : ids) PutFixed64(&expected, id);
  for (uint32_t record : order) {
    PutFixed32(&expected, key(record, 0));
    PutFixed32(&expected, key(record, 1));
  }
  for (uint32_t record : order) PutFixed32(&expected, record);
  EXPECT_EQ(image, expected);
}

TEST(LshForestSerializationTest, ReserializeIsByteIdentical) {
  auto family = HashFamily::Create(64, /*seed=*/8).value();
  auto forest = LshForest::Create(8, 8).value();
  Rng rng(17);
  for (uint64_t id = 0; id < 40; ++id) {
    std::vector<uint64_t> values(15 + id);
    for (auto& v : values) v = rng.Next();
    ASSERT_TRUE(forest.Add(id, MinHash::FromValues(family, values)).ok());
  }
  forest.Index();
  std::string image;
  ASSERT_TRUE(forest.SerializeTo(&image).ok());
  auto restored = LshForest::Deserialize(image);
  ASSERT_TRUE(restored.ok()) << restored.status();
  std::string image2;
  ASSERT_TRUE(restored->SerializeTo(&image2).ok());
  EXPECT_EQ(image2, image);
}

TEST(LshForestSerializationTest, UnindexedForestRejected) {
  auto forest = LshForest::Create(4, 4).value();
  std::string image;
  EXPECT_TRUE(forest.SerializeTo(&image).IsFailedPrecondition());
}

TEST(LshForestSerializationTest, EmptyForestRoundTrip) {
  auto forest = LshForest::Create(4, 4).value();
  forest.Index();
  std::string image;
  ASSERT_TRUE(forest.SerializeTo(&image).ok());
  auto restored = LshForest::Deserialize(image);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 0u);
}

TEST(LshForestSerializationTest, TruncationDetected) {
  auto family = HashFamily::Create(16, 7).value();
  auto forest = LshForest::Create(4, 4).value();
  std::vector<uint64_t> values = {1, 2, 3, 4, 5};
  ASSERT_TRUE(forest.Add(1, MinHash::FromValues(family, values)).ok());
  forest.Index();
  std::string image;
  ASSERT_TRUE(forest.SerializeTo(&image).ok());
  for (size_t keep = 0; keep < image.size(); keep += 3) {
    auto restored =
        LshForest::Deserialize(std::string_view(image).substr(0, keep));
    EXPECT_FALSE(restored.ok()) << "kept " << keep;
  }
}

TEST(LshForestSerializationTest, TrailingBytesDetected) {
  auto forest = LshForest::Create(2, 2).value();
  forest.Index();
  std::string image;
  ASSERT_TRUE(forest.SerializeTo(&image).ok());
  image += "junk";
  EXPECT_FALSE(LshForest::Deserialize(image).ok());
}

// --------------------------------------------------- ensemble round trip

class EnsembleIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CorpusGenOptions gen;
    gen.num_domains = 800;
    gen.seed = 77;
    corpus_ = CorpusGenerator(gen).Generate().value();
    family_ = HashFamily::Create(options_.num_hashes, /*seed=*/3).value();

    LshEnsembleBuilder builder(options_, family_);
    for (size_t i = 0; i < corpus_->size(); ++i) {
      const Domain& domain = corpus_->domain(i);
      ASSERT_TRUE(builder
                      .Add(domain.id, domain.size(),
                           MinHash::FromValues(family_, domain.values))
                      .ok());
    }
    ensemble_ = std::move(builder).Build().value();
  }

  void TearDown() override { RemoveFileIfExists(path_).ok(); }

  MinHash QuerySketch(size_t index) const {
    return MinHash::FromValues(family_, corpus_->domain(index).values);
  }

  LshEnsembleOptions options_{.num_partitions = 8, .num_hashes = 128,
                              .tree_depth = 4};
  std::optional<Corpus> corpus_;
  std::shared_ptr<const HashFamily> family_;
  std::optional<LshEnsemble> ensemble_;
  std::string path_ = ProcessTempPath("lshe_index_test.bin");
};

TEST_F(EnsembleIoTest, SaveLoadPreservesStructure) {
  ASSERT_TRUE(SaveEnsemble(*ensemble_, path_).ok());
  auto loaded = LoadEnsemble(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), ensemble_->size());
  ASSERT_EQ(loaded->partitions().size(), ensemble_->partitions().size());
  for (size_t i = 0; i < loaded->partitions().size(); ++i) {
    EXPECT_EQ(loaded->partitions()[i], ensemble_->partitions()[i]);
  }
  EXPECT_EQ(loaded->options().num_hashes, options_.num_hashes);
  EXPECT_TRUE(loaded->family()->SameAs(*family_));
}

TEST_F(EnsembleIoTest, LoadedIndexAnswersQueriesIdentically) {
  ASSERT_TRUE(SaveEnsemble(*ensemble_, path_).ok());
  auto loaded = LoadEnsemble(path_);
  ASSERT_TRUE(loaded.ok());
  for (size_t qi = 0; qi < corpus_->size(); qi += 97) {
    for (double t_star : {0.2, 0.5, 0.9}) {
      const MinHash sketch = QuerySketch(qi);
      const size_t q = corpus_->domain(qi).size();
      std::vector<uint64_t> expected, actual;
      ASSERT_TRUE(ensemble_->Query(sketch, q, t_star, &expected).ok());
      ASSERT_TRUE(loaded->Query(sketch, q, t_star, &actual).ok());
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, expected) << "query " << qi << " t*=" << t_star;
    }
  }
}

TEST_F(EnsembleIoTest, V1LoadRebuildsProbeFilters) {
  // v1 images carry no filter section; the decoder rebuilds the tier
  // from the decoded forests so a v1 -> v2 snapshot conversion writes
  // filter segments and v1-loaded engines prune like built ones.
  // Own temp path: fixture tests sharing path_ collide under ctest -j.
  const std::string path =
      ProcessTempPath("lshe_index_filter_rebuild.bin");
  ASSERT_TRUE(SaveEnsemble(*ensemble_, path).ok());
  auto loaded = LoadEnsemble(path);
  RemoveFileIfExists(path).ok();
  ASSERT_TRUE(loaded.ok());
  ASSERT_NE(loaded->engine_probe_filter(), nullptr);
  ASSERT_NE(ensemble_->engine_probe_filter(), nullptr);
  ASSERT_EQ(loaded->partition_probe_filters().size(),
            loaded->partitions().size());
  // Same records and options => the rebuilt filters are bit-identical
  // to the build-time ones.
  EXPECT_EQ(loaded->engine_probe_filter()->num_blocks(),
            ensemble_->engine_probe_filter()->num_blocks());
  const auto expected_blocks = ensemble_->engine_probe_filter()->blocks();
  const auto actual_blocks = loaded->engine_probe_filter()->blocks();
  ASSERT_EQ(actual_blocks.size(), expected_blocks.size());
  EXPECT_TRUE(std::equal(actual_blocks.begin(), actual_blocks.end(),
                         expected_blocks.begin()));
}

TEST_F(EnsembleIoTest, LoadedIndexAnswersBatchQueriesIdentically) {
  ASSERT_TRUE(SaveEnsemble(*ensemble_, path_).ok());
  auto loaded = LoadEnsemble(path_);
  ASSERT_TRUE(loaded.ok());

  std::vector<MinHash> sketches;
  std::vector<QuerySpec> specs;
  sketches.reserve(16);
  for (size_t qi = 0; qi < 16; ++qi) {
    const size_t index = (qi * 53) % corpus_->size();
    sketches.push_back(QuerySketch(index));
    specs.push_back(
        QuerySpec{&sketches.back(), corpus_->domain(index).size(), 0.5});
  }
  std::vector<std::vector<uint64_t>> expected(specs.size());
  std::vector<std::vector<uint64_t>> actual(specs.size());
  QueryContext ctx_a, ctx_b;
  ASSERT_TRUE(ensemble_->BatchQuery(specs, &ctx_a, expected.data()).ok());
  ASSERT_TRUE(loaded->BatchQuery(specs, &ctx_b, actual.data()).ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "query " << i;
  }
}

TEST_F(EnsembleIoTest, CorruptionDetectedAtEveryByte) {
  std::string image;
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &image).ok());
  // Flip one bit at a sample of offsets; the loader must never accept the
  // image silently (either Corruption or — for bits inside the options
  // payload that the checksum catches — the checksum reports first).
  for (size_t offset = 0; offset < image.size();
       offset += std::max<size_t>(1, image.size() / 64)) {
    std::string corrupt = image;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x20);
    auto loaded = DeserializeEnsemble(corrupt);
    EXPECT_FALSE(loaded.ok()) << "offset " << offset;
  }
}

TEST_F(EnsembleIoTest, TruncationDetected) {
  std::string image;
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &image).ok());
  for (size_t keep : {size_t{0}, size_t{4}, size_t{8}, size_t{20},
                      image.size() / 2, image.size() - 1}) {
    auto loaded = DeserializeEnsemble(std::string_view(image).substr(0, keep));
    EXPECT_FALSE(loaded.ok()) << "kept " << keep;
  }
}

TEST_F(EnsembleIoTest, BadMagicRejected) {
  std::string image;
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &image).ok());
  image[0] = 'X';
  auto loaded = DeserializeEnsemble(image);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(EnsembleIoTest, NewerVersionRejectedAsNotSupported) {
  std::string image;
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &image).ok());
  // Version 2 is the (supported) snapshot format, so "newer" starts at 3.
  image[4] = 3;
  auto loaded = DeserializeEnsemble(image);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotSupported());
}

TEST_F(EnsembleIoTest, VersionZeroRejectedAsCorruption) {
  std::string image;
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &image).ok());
  image[4] = 0;
  auto loaded = DeserializeEnsemble(image);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(EnsembleIoTest, V1ImageRelabeledV2IsCorruption) {
  // A v1 block image whose version byte reads 2 routes to the snapshot
  // parser and must fail structurally, never load as something else.
  std::string image;
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &image).ok());
  image[4] = 2;
  auto loaded = DeserializeEnsemble(image);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(EnsembleIoTest, TrailingGarbageRejected) {
  std::string image;
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &image).ok());
  image += "extra";
  EXPECT_FALSE(DeserializeEnsemble(image).ok());
}

TEST_F(EnsembleIoTest, ImageIsDeterministic) {
  std::string first, second;
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &first).ok());
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &second).ok());
  EXPECT_EQ(first, second);
}

TEST_F(EnsembleIoTest, LoadedIndexMemoryFootprintIsTight) {
  ASSERT_TRUE(SaveEnsemble(*ensemble_, path_).ok());
  auto loaded = LoadEnsemble(path_);
  ASSERT_TRUE(loaded.ok());
  // MemoryBytes reports vector capacities: the loaded index allocates
  // exactly-sized arrays, so it can only be tighter than the incrementally
  // grown original.
  EXPECT_GT(loaded->MemoryBytes(), 0u);
  EXPECT_LE(loaded->MemoryBytes(), ensemble_->MemoryBytes());
}

}  // namespace
}  // namespace lshensemble
