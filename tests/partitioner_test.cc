#include "core/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "util/random.h"

namespace lshensemble {
namespace {

std::vector<uint64_t> PowerLawSizes(size_t n, uint64_t seed = 1,
                                    double alpha = 2.0) {
  PowerLawSampler sampler(alpha, 10, 100000);
  Rng rng(seed);
  std::vector<uint64_t> sizes(n);
  for (auto& size : sizes) size = sampler.Sample(rng);
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

// Every partitioning must cover all sizes with disjoint contiguous
// intervals whose counts match the data.
void CheckWellFormed(const std::vector<PartitionSpec>& partitions,
                     const std::vector<uint64_t>& sorted_sizes) {
  ASSERT_FALSE(partitions.empty());
  size_t total = 0;
  for (size_t i = 0; i < partitions.size(); ++i) {
    EXPECT_LT(partitions[i].lower, partitions[i].upper) << "partition " << i;
    if (i > 0) {
      EXPECT_EQ(partitions[i].lower, partitions[i - 1].upper)
          << "gap/overlap at partition " << i;
    }
    total += partitions[i].count;
  }
  EXPECT_LE(partitions.front().lower, sorted_sizes.front());
  EXPECT_GT(partitions.back().upper, sorted_sizes.back());
  EXPECT_EQ(total, sorted_sizes.size());

  // Counts match the actual number of sizes in each interval.
  for (const PartitionSpec& partition : partitions) {
    const size_t expected =
        std::lower_bound(sorted_sizes.begin(), sorted_sizes.end(),
                         partition.upper) -
        std::lower_bound(sorted_sizes.begin(), sorted_sizes.end(),
                         partition.lower);
    EXPECT_EQ(partition.count, expected);
  }
}

TEST(PartitionerTest, InputValidation) {
  EXPECT_FALSE(EquiDepthPartitions({}, 4).ok());
  EXPECT_FALSE(EquiDepthPartitions({1, 2, 3}, 0).ok());
  EXPECT_FALSE(EquiDepthPartitions({0, 1}, 2).ok());       // size 0
  EXPECT_FALSE(EquiDepthPartitions({3, 2, 1}, 2).ok());    // unsorted
  EXPECT_TRUE(EquiDepthPartitions({1, 2, 3}, 2).ok());
}

TEST(PartitionerTest, SinglePartitionCoversEverything) {
  const auto sizes = PowerLawSizes(1000);
  for (auto maker : {EquiDepthPartitions, EquiWidthPartitions,
                     MinimaxCostPartitions}) {
    auto partitions = maker(sizes, 1);
    ASSERT_TRUE(partitions.ok());
    CheckWellFormed(*partitions, sizes);
    EXPECT_EQ(partitions->size(), 1u);
  }
}

TEST(PartitionerTest, EquiDepthBalancesCounts) {
  const auto sizes = PowerLawSizes(64000);
  auto partitions = EquiDepthPartitions(sizes, 16);
  ASSERT_TRUE(partitions.ok());
  CheckWellFormed(*partitions, sizes);
  // Power-law data has heavy ties at small sizes; snapped cuts still keep
  // most partitions within a factor of the nominal depth.
  const double nominal = 64000.0 / 16.0;
  size_t within = 0;
  for (const auto& partition : *partitions) {
    if (partition.count < nominal * 3) ++within;
  }
  EXPECT_GE(within, partitions->size() - 2);
}

TEST(PartitionerTest, EquiDepthHandlesMassiveTies) {
  // 10k domains all of size 10, plus a few larger: snapping collapses the
  // tied region into one partition rather than emitting overlapping bounds.
  std::vector<uint64_t> sizes(10000, 10);
  for (uint64_t s = 11; s < 100; ++s) sizes.push_back(s);
  std::sort(sizes.begin(), sizes.end());
  auto partitions = EquiDepthPartitions(sizes, 8);
  ASSERT_TRUE(partitions.ok());
  CheckWellFormed(*partitions, sizes);
  EXPECT_EQ((*partitions)[0].lower, 10u);
  EXPECT_GE((*partitions)[0].count, 10000u);
}

TEST(PartitionerTest, EquiDepthFewerDomainsThanPartitions) {
  // n < num_partitions makes every nominal cut index 0; the snap loop must
  // not read below the array (caught by the ASan CI job on a 1-domain
  // build). One domain -> one partition.
  const std::vector<uint64_t> one = {7};
  auto partitions = EquiDepthPartitions(one, 4);
  ASSERT_TRUE(partitions.ok());
  ASSERT_EQ(partitions->size(), 1u);
  EXPECT_EQ((*partitions)[0].count, 1u);
  CheckWellFormed(*partitions, one);

  std::vector<uint64_t> three = {3, 9, 27};
  auto more = EquiDepthPartitions(three, 8);
  ASSERT_TRUE(more.ok());
  CheckWellFormed(*more, three);
  size_t total = 0;
  for (const PartitionSpec& spec : *more) total += spec.count;
  EXPECT_EQ(total, 3u);
}

TEST(PartitionerTest, EquiDepthAllIdenticalSizes) {
  std::vector<uint64_t> sizes(500, 42);
  auto partitions = EquiDepthPartitions(sizes, 8);
  ASSERT_TRUE(partitions.ok());
  ASSERT_EQ(partitions->size(), 1u);
  EXPECT_EQ((*partitions)[0].count, 500u);
}

TEST(PartitionerTest, EquiWidthEqualIntervalWidths) {
  std::vector<uint64_t> sizes;
  for (uint64_t s = 100; s < 1700; ++s) sizes.push_back(s);
  auto partitions = EquiWidthPartitions(sizes, 16);
  ASSERT_TRUE(partitions.ok());
  CheckWellFormed(*partitions, sizes);
  ASSERT_EQ(partitions->size(), 16u);
  for (const auto& partition : *partitions) {
    EXPECT_EQ(partition.upper - partition.lower, 100u);
  }
}

TEST(PartitionerTest, EquiWidthKeepsEmptyIntervals) {
  // Sizes clustered at both ends: middle equi-width intervals are empty but
  // still reported (Figure 8 needs their zero counts).
  std::vector<uint64_t> sizes;
  for (int i = 0; i < 100; ++i) sizes.push_back(10);
  for (int i = 0; i < 100; ++i) sizes.push_back(1000);
  std::sort(sizes.begin(), sizes.end());
  auto partitions = EquiWidthPartitions(sizes, 10);
  ASSERT_TRUE(partitions.ok());
  CheckWellFormed(*partitions, sizes);
  size_t empties = 0;
  for (const auto& partition : *partitions) {
    if (partition.count == 0) ++empties;
  }
  EXPECT_GE(empties, 7u);
}

TEST(PartitionerTest, MinimaxNeverWorseThanAlternatives) {
  const auto sizes = PowerLawSizes(20000, 7);
  for (int n : {4, 8, 16}) {
    auto minimax = MinimaxCostPartitions(sizes, n);
    auto equi_depth = EquiDepthPartitions(sizes, n);
    auto equi_width = EquiWidthPartitions(sizes, n);
    ASSERT_TRUE(minimax.ok());
    ASSERT_TRUE(equi_depth.ok());
    ASSERT_TRUE(equi_width.ok());
    CheckWellFormed(*minimax, sizes);
    EXPECT_LE(minimax->size(), static_cast<size_t>(n));
    EXPECT_LE(PartitioningCost(*minimax),
              PartitioningCost(*equi_depth) + 1e-6);
    EXPECT_LE(PartitioningCost(*minimax),
              PartitioningCost(*equi_width) + 1e-6);
  }
}

// Exhaustive optimality check on small inputs: enumerate all contiguous
// partitionings of the distinct-size groups.
double BruteForceBestCost(const std::vector<uint64_t>& sorted_sizes, int n) {
  // Distinct size groups.
  std::vector<std::pair<uint64_t, size_t>> groups;
  for (uint64_t size : sorted_sizes) {
    if (!groups.empty() && groups.back().first == size) {
      ++groups.back().second;
    } else {
      groups.emplace_back(size, 1);
    }
  }
  const size_t g = groups.size();
  double best = std::numeric_limits<double>::infinity();
  // Enumerate cut masks over g-1 possible boundaries.
  const size_t masks = size_t{1} << (g - 1);
  for (size_t mask = 0; mask < masks; ++mask) {
    if (static_cast<size_t>(__builtin_popcountll(mask)) + 1 >
        static_cast<size_t>(n)) {
      continue;
    }
    double worst = 0.0;
    size_t start = 0;
    for (size_t i = 0; i < g; ++i) {
      const bool cut_here = (i + 1 == g) || (mask >> i & 1);
      if (!cut_here) continue;
      size_t count = 0;
      for (size_t j = start; j <= i; ++j) count += groups[j].second;
      // Contiguous tiling: the upper bound is the next partition's lower.
      const uint64_t upper =
          (i + 1 < g) ? groups[i + 1].first : groups[i].first + 1;
      const PartitionSpec spec{groups[start].first, upper, count};
      worst = std::max(worst, FalsePositiveBound(spec));
      start = i + 1;
    }
    best = std::min(best, worst);
  }
  return best;
}

class MinimaxOptimality : public ::testing::TestWithParam<int> {};

TEST_P(MinimaxOptimality, MatchesBruteForceOnSmallInputs) {
  const int n = GetParam();
  Rng rng(100 + n);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint64_t> sizes;
    const size_t distinct = 3 + rng.NextBounded(10);  // <= 12 groups
    uint64_t size = 1 + rng.NextBounded(20);
    for (size_t group = 0; group < distinct; ++group) {
      const size_t count = 1 + rng.NextBounded(50);
      for (size_t i = 0; i < count; ++i) sizes.push_back(size);
      size += 1 + rng.NextBounded(30);
    }
    auto partitions = MinimaxCostPartitions(sizes, n);
    ASSERT_TRUE(partitions.ok());
    CheckWellFormed(*partitions, sizes);
    const double brute = BruteForceBestCost(sizes, n);
    EXPECT_LE(PartitioningCost(*partitions), brute * (1.0 + 1e-6) + 1e-9)
        << "trial " << trial << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(PartitionBudgets, MinimaxOptimality,
                         ::testing::Values(2, 3, 4, 6));

// Theorem 2: under a power law, equi-depth approximates the equi-M_i
// (minimax-optimal) partitioning. The operative claim is about cost: the
// equi-depth partitioning's minimax cost should be close to the true
// optimum and far below equi-width's.
TEST(PartitionerTest, Theorem2EquiDepthNearOptimalOnPowerLaw) {
  const auto sizes = PowerLawSizes(200000, 13, 2.0);
  auto equi_depth = EquiDepthPartitions(sizes, 16);
  auto minimax = MinimaxCostPartitions(sizes, 16);
  auto equi_width = EquiWidthPartitions(sizes, 16);
  ASSERT_TRUE(equi_depth.ok());
  ASSERT_TRUE(minimax.ok());
  ASSERT_TRUE(equi_width.ok());
  const double depth_cost = PartitioningCost(*equi_depth);
  const double optimal_cost = PartitioningCost(*minimax);
  const double width_cost = PartitioningCost(*equi_width);
  EXPECT_GE(depth_cost, optimal_cost - 1e-9);
  // Near-optimal: within a small constant factor of the optimum (measured
  // ~4.2x here; sampled sizes and tie-snapped cuts keep it off the
  // idealized continuous-power-law optimum) ...
  EXPECT_LE(depth_cost, 8.0 * optimal_cost);
  // ... and dramatically better than equi-width, whose tail partition
  // holds nearly everything under a power law.
  EXPECT_LT(depth_cost * 5, width_cost);
}

// Theorem 2's mechanism: in the heavy tail the per-domain bound
// (u - l + 1) / (2u) approaches its limit 1/2, so equalizing counts
// equalizes the bound there. (At the head, partitions are narrow and the
// per-domain bound is far below 1/2 — costs there are smaller, which only
// helps the minimax objective.)
TEST(PartitionerTest, Theorem2TailPerDomainBoundApproachesHalf) {
  const auto sizes = PowerLawSizes(200000, 13, 2.0);
  auto partitions = EquiDepthPartitions(sizes, 16);
  ASSERT_TRUE(partitions.ok());
  ASSERT_GE(partitions->size(), 3u);
  const PartitionSpec& last = partitions->back();
  const double per_domain =
      FalsePositiveBound(last) / static_cast<double>(last.count);
  EXPECT_NEAR(per_domain, 0.5, 0.05);
  // 1/2 is also the ceiling: (u - l + 1) / (2u) <= 1/2 + 1/(2u), so the
  // widest (tail) partition carries the largest per-domain bound.
  for (size_t i = 0; i < partitions->size(); ++i) {
    const double bound = FalsePositiveBound((*partitions)[i]) /
                         static_cast<double>((*partitions)[i].count);
    EXPECT_LE(bound, 0.5 + 1.0 / (2.0 * static_cast<double>(
                                            (*partitions)[i].upper - 1)))
        << "partition " << i;
    EXPECT_LE(bound, per_domain + 1e-9) << "partition " << i;
  }
}

TEST(PartitionerTest, InterpolationEndpointsMatch) {
  const auto sizes = PowerLawSizes(30000, 21);
  auto equi_depth = EquiDepthPartitions(sizes, 16);
  auto at_zero = InterpolatedPartitions(sizes, 16, 0.0);
  auto equi_width = EquiWidthPartitions(sizes, 16);
  auto at_one = InterpolatedPartitions(sizes, 16, 1.0);
  ASSERT_TRUE(at_zero.ok());
  ASSERT_TRUE(at_one.ok());
  CheckWellFormed(*at_zero, sizes);
  CheckWellFormed(*at_one, sizes);
  // lambda = 1 reproduces equi-width cuts exactly.
  ASSERT_TRUE(equi_width.ok());
  EXPECT_EQ(at_one->size(), equi_width->size());
  for (size_t i = 0; i < at_one->size(); ++i) {
    EXPECT_EQ((*at_one)[i].lower, (*equi_width)[i].lower);
  }
  // lambda = 0 reproduces equi-depth counts approximately (the snapped
  // cuts differ only under ties).
  ASSERT_TRUE(equi_depth.ok());
  const double stddev_zero = PartitionCountStdDev(*at_zero);
  const double stddev_depth = PartitionCountStdDev(*equi_depth);
  EXPECT_NEAR(stddev_zero, stddev_depth, stddev_depth * 0.5 + 200.0);
}

TEST(PartitionerTest, InterpolationIncreasesImbalance) {
  // Figure 8's x-axis: moving toward equi-width raises the std-dev of
  // partition counts on power-law data.
  const auto sizes = PowerLawSizes(50000, 23);
  double at_zero = 0, at_one = 0;
  for (double lambda : {0.0, 1.0}) {
    auto partitions = InterpolatedPartitions(sizes, 16, lambda);
    ASSERT_TRUE(partitions.ok());
    const double stddev = PartitionCountStdDev(*partitions);
    if (lambda == 0.0) {
      at_zero = stddev;
    } else {
      at_one = stddev;
    }
  }
  EXPECT_GT(at_one, at_zero * 2);
}

TEST(PartitionerTest, InterpolationRejectsBadLambda) {
  const auto sizes = PowerLawSizes(100);
  EXPECT_FALSE(InterpolatedPartitions(sizes, 8, -0.5).ok());
  EXPECT_FALSE(InterpolatedPartitions(sizes, 8, 1.5).ok());
}

TEST(PartitionsFromCutsTest, Validation) {
  const std::vector<uint64_t> sizes = {5, 10, 20, 40};
  EXPECT_FALSE(PartitionsFromCuts(sizes, {5}).ok());          // too few
  EXPECT_FALSE(PartitionsFromCuts(sizes, {5, 5, 41}).ok());   // not strict
  EXPECT_FALSE(PartitionsFromCuts(sizes, {6, 41}).ok());      // misses min
  EXPECT_FALSE(PartitionsFromCuts(sizes, {5, 40}).ok());      // misses max
  auto partitions = PartitionsFromCuts(sizes, {5, 15, 41});
  ASSERT_TRUE(partitions.ok());
  ASSERT_EQ(partitions->size(), 2u);
  EXPECT_EQ((*partitions)[0].count, 2u);
  EXPECT_EQ((*partitions)[1].count, 2u);
}

TEST(PartitionerTest, StrategyNames) {
  EXPECT_STREQ(ToString(PartitioningStrategy::kEquiDepth), "equi-depth");
  EXPECT_STREQ(ToString(PartitioningStrategy::kEquiWidth), "equi-width");
  EXPECT_STREQ(ToString(PartitioningStrategy::kMinimaxCost), "minimax-cost");
}

}  // namespace
}  // namespace lshensemble
