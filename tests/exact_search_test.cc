#include "baselines/exact_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "util/random.h"

namespace lshensemble {
namespace {

TEST(ExactSearchTest, LifecycleEnforced) {
  ExactSearch engine;
  std::vector<std::pair<uint64_t, double>> overlaps;
  EXPECT_TRUE(engine.Overlaps({1}, &overlaps).IsFailedPrecondition());
  ASSERT_TRUE(engine.Add(1, {1, 2, 3}).ok());
  engine.Build();
  EXPECT_TRUE(engine.Add(2, {4}).IsFailedPrecondition());
  EXPECT_TRUE(engine.Overlaps({1}, &overlaps).ok());
}

TEST(ExactSearchTest, RejectsEmptyDomainAndQuery) {
  ExactSearch engine;
  EXPECT_FALSE(engine.Add(1, {}).ok());
  ASSERT_TRUE(engine.Add(1, {1}).ok());
  engine.Build();
  std::vector<std::pair<uint64_t, double>> overlaps;
  EXPECT_FALSE(engine.Overlaps({}, &overlaps).ok());
  EXPECT_FALSE(engine.Overlaps({1}, nullptr).ok());
}

TEST(ExactSearchTest, PaperWorkedExample) {
  // Section 2: Q = {Ontario, Toronto} against Provinces and Locations.
  // Values stand in as integers: Ontario=1, Toronto=2, others distinct.
  ExactSearch engine;
  ASSERT_TRUE(engine.Add(/*Provinces=*/10, {3, 1, 4}).ok());
  ASSERT_TRUE(
      engine.Add(/*Locations=*/20, {5, 6, 7, 8, 9, 11, 12, 13, 14, 15, 1, 2})
          .ok());
  engine.Build();

  std::vector<std::pair<uint64_t, double>> overlaps;
  ASSERT_TRUE(engine.Overlaps({1, 2}, &overlaps).ok());
  std::map<uint64_t, double> scores(overlaps.begin(), overlaps.end());
  EXPECT_DOUBLE_EQ(scores[10], 0.5);  // t(Q, Provinces) = 0.5
  EXPECT_DOUBLE_EQ(scores[20], 1.0);  // t(Q, Locations) = 1.0

  std::vector<uint64_t> result;
  ASSERT_TRUE(engine.Query({1, 2}, 0.75, &result).ok());
  EXPECT_EQ(result, (std::vector<uint64_t>{20}));
  ASSERT_TRUE(engine.Query({1, 2}, 0.5, &result).ok());
  EXPECT_EQ(result, (std::vector<uint64_t>{10, 20}));
}

TEST(ExactSearchTest, DuplicatesInDomainAndQueryIgnored) {
  ExactSearch engine;
  ASSERT_TRUE(engine.Add(1, {7, 7, 7, 8}).ok());
  engine.Build();
  std::vector<std::pair<uint64_t, double>> overlaps;
  ASSERT_TRUE(engine.Overlaps({7, 7, 9, 9}, &overlaps).ok());
  ASSERT_EQ(overlaps.size(), 1u);
  // Distinct query = {7, 9}; hit = {7} -> containment 0.5.
  EXPECT_DOUBLE_EQ(overlaps[0].second, 0.5);
}

TEST(ExactSearchTest, NoOverlapMeansAbsent) {
  ExactSearch engine;
  ASSERT_TRUE(engine.Add(1, {1, 2}).ok());
  ASSERT_TRUE(engine.Add(2, {3, 4}).ok());
  engine.Build();
  std::vector<std::pair<uint64_t, double>> overlaps;
  ASSERT_TRUE(engine.Overlaps({1, 9}, &overlaps).ok());
  ASSERT_EQ(overlaps.size(), 1u);
  EXPECT_EQ(overlaps[0].first, 1u);
}

TEST(ExactSearchTest, ThresholdBoundaryInclusive) {
  ExactSearch engine;
  ASSERT_TRUE(engine.Add(1, {1, 2}).ok());
  engine.Build();
  std::vector<uint64_t> result;
  // Containment exactly 0.5 with threshold 0.5 must be included (Def. 2).
  ASSERT_TRUE(engine.Query({1, 3}, 0.5, &result).ok());
  EXPECT_EQ(result.size(), 1u);
}

// Randomized differential test against a naive O(n*m) reference.
TEST(ExactSearchTest, MatchesNaiveReference) {
  Rng rng(18);
  for (int trial = 0; trial < 10; ++trial) {
    ExactSearch engine;
    std::vector<std::set<uint64_t>> domains;
    const size_t num_domains = 30 + rng.NextBounded(30);
    for (size_t id = 0; id < num_domains; ++id) {
      std::set<uint64_t> values;
      const size_t size = 1 + rng.NextBounded(60);
      while (values.size() < size) values.insert(rng.NextBounded(300));
      domains.push_back(values);
      ASSERT_TRUE(
          engine
              .Add(id, std::vector<uint64_t>(values.begin(), values.end()))
              .ok());
    }
    engine.Build();

    std::set<uint64_t> query_set;
    const size_t query_size = 1 + rng.NextBounded(50);
    while (query_set.size() < query_size) {
      query_set.insert(rng.NextBounded(300));
    }
    const std::vector<uint64_t> query(query_set.begin(), query_set.end());

    for (double threshold : {0.1, 0.5, 0.9}) {
      std::vector<uint64_t> got;
      ASSERT_TRUE(engine.Query(query, threshold, &got).ok());
      std::vector<uint64_t> expected;
      for (size_t id = 0; id < num_domains; ++id) {
        size_t hits = 0;
        for (uint64_t v : query) hits += domains[id].count(v);
        const double containment =
            static_cast<double>(hits) / static_cast<double>(query.size());
        if (containment >= threshold) expected.push_back(id);
      }
      EXPECT_EQ(got, expected) << "trial " << trial << " t*=" << threshold;
    }
  }
}

}  // namespace
}  // namespace lshensemble
