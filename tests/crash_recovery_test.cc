// The crash-recovery matrix: simulate a power cut after EVERY mutating
// file operation of a save and assert recovery never sees a torn image.
//
// Two protocols are swept, under BOTH metadata-durability models (strict
// directory-fsync and eager/journaling):
//
//  * WriteFileAtomic: after a cut at any boundary, the destination path
//    must read back as exactly the complete old bytes or the complete
//    new bytes — rename atomicity end to end.
//  * ShardedEnsemble::SaveSnapshot (invalidate-then-commit): after a cut
//    at any boundary, the directory either reopens as one complete
//    generation (old or new, verified by query results) or REFUSES to
//    open — never opens inconsistently — and a fresh save over the
//    debris, plus an fsck quarantine pass, always recovers it.
//
// The matrix is sized by running each save once uncut and counting its
// mutating ops, so protocol changes automatically widen the sweep.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/sharded_ensemble.h"
#include "data/corpus.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/fsck.h"
#include "io/snapshot.h"
#include "minhash/minhash.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

using MetadataDurability = FaultInjectionEnv::MetadataDurability;

constexpr MetadataDurability kBothModes[] = {
    MetadataDurability::kStrictDirSync, MetadataDurability::kEager};

const char* ModeName(MetadataDurability mode) {
  return mode == MetadataDurability::kEager ? "eager" : "strict-dirsync";
}

// ------------------------------------------- WriteFileAtomic matrix

void RunAtomicWriteMatrix(MetadataDurability mode) {
  SCOPED_TRACE(ModeName(mode));
  const std::string path = "snap/image.bin";
  const std::string old_image = "OLD " + std::string(2048, 'a');
  const std::string new_image = "NEW " + std::string(3000, 'b');

  // Size the matrix: ops in one re-save over an existing image.
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv probe;
    probe.set_metadata_durability(mode);
    ASSERT_TRUE(WriteFileAtomic(&probe, path, old_image).ok());
    const uint64_t before = probe.mutating_op_count();
    ASSERT_TRUE(WriteFileAtomic(&probe, path, new_image).ok());
    total_ops = probe.mutating_op_count() - before;
  }
  ASSERT_GT(total_ops, 3u);  // open + write + sync + rename at minimum

  for (uint64_t cut = 0; cut <= total_ops; ++cut) {
    SCOPED_TRACE("cut after save op " + std::to_string(cut));
    FaultInjectionEnv env;
    env.set_metadata_durability(mode);
    ASSERT_TRUE(WriteFileAtomic(&env, path, old_image).ok());
    env.CutPowerAfterOps(cut);
    const Status save = WriteFileAtomic(&env, path, new_image);
    if (cut >= total_ops) {
      ASSERT_TRUE(save.ok()) << save.ToString();
    }
    env.LosePower();

    std::string recovered;
    ASSERT_TRUE(env.ReadFileToString(path, &recovered).ok());
    EXPECT_TRUE(recovered == old_image || recovered == new_image)
        << "torn image: " << recovered.substr(0, 16) << "... ("
        << recovered.size() << " bytes)";
    if (cut >= total_ops) {
      EXPECT_EQ(recovered, new_image);
    }
  }
}

TEST(CrashRecoveryTest, AtomicWriteMatrixOldOrNewAtEveryCut) {
  for (const auto mode : kBothModes) RunAtomicWriteMatrix(mode);
}

// --------------------------------------- sharded SaveSnapshot matrix

constexpr int kNumHashes = 64;

ShardedEnsembleOptions ServingOptions() {
  ShardedEnsembleOptions options;
  options.base.base.num_partitions = 4;
  options.base.base.num_hashes = kNumHashes;
  options.base.base.tree_depth = 4;
  options.base.min_delta_for_rebuild = 1 << 30;
  options.num_shards = 2;
  return options;
}

class ShardedCrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    family_ = HashFamily::Create(kNumHashes, 21).value();
    CorpusGenOptions gen;
    gen.num_domains = 60;
    gen.seed = 4242;
    corpus_ = CorpusGenerator(gen).Generate().value();
    for (size_t i = 0; i < corpus_->size(); ++i) {
      sketches_.push_back(
          MinHash::FromValues(family_, corpus_->domain(i).values));
    }

    // Generation A: the first 40 domains, flushed. Generation B: all 60,
    // with the last 20 left in the delta so the save covers the overlay
    // path too.
    index_a_ = ShardedEnsemble::Create(ServingOptions(), family_).value();
    index_b_ = ShardedEnsemble::Create(ServingOptions(), family_).value();
    for (size_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(Insert(*index_a_, i).ok());
      ASSERT_TRUE(Insert(*index_b_, i).ok());
    }
    ASSERT_TRUE(index_a_->Flush().ok());
    ASSERT_TRUE(index_b_->Flush().ok());
    for (size_t i = 40; i < corpus_->size(); ++i) {
      ASSERT_TRUE(Insert(*index_b_, i).ok());
    }

    for (size_t j = 0; j < 12; ++j) {
      const size_t pick = (j * 7) % corpus_->size();
      specs_.push_back(
          QuerySpec{&sketches_[pick], corpus_->domain(pick).size(), 0.4});
    }
    expected_a_ = QueryAll(*index_a_);
    expected_b_ = QueryAll(*index_b_);
    ASSERT_NE(expected_a_, expected_b_);  // the generations are tellable
  }

  Status Insert(ShardedEnsemble& index, size_t i) const {
    const Domain& domain = corpus_->domain(i);
    return index.Insert(domain.id, domain.size(), sketches_[i]);
  }

  std::vector<std::vector<uint64_t>> QueryAll(
      const ShardedEnsemble& index) const {
    std::vector<std::vector<uint64_t>> outs(specs_.size());
    EXPECT_TRUE(index.BatchQuery(specs_, outs.data()).ok());
    return outs;
  }

  std::shared_ptr<const HashFamily> family_;
  std::optional<Corpus> corpus_;
  std::vector<MinHash> sketches_;
  std::optional<ShardedEnsemble> index_a_;
  std::optional<ShardedEnsemble> index_b_;
  std::vector<QuerySpec> specs_;
  std::vector<std::vector<uint64_t>> expected_a_;
  std::vector<std::vector<uint64_t>> expected_b_;
};

TEST_F(ShardedCrashMatrixTest, EveryCutRecoversToOneGeneration) {
  const std::string dir = "serving/snap";
  for (const auto mode : kBothModes) {
    SCOPED_TRACE(ModeName(mode));

    // Size the matrix: ops in one re-save of B over an existing A.
    uint64_t total_ops = 0;
    {
      FaultInjectionEnv probe;
      probe.set_metadata_durability(mode);
      ASSERT_TRUE(index_a_->SaveSnapshot(dir, &probe).ok());
      const uint64_t before = probe.mutating_op_count();
      ASSERT_TRUE(index_b_->SaveSnapshot(dir, &probe).ok());
      total_ops = probe.mutating_op_count() - before;
    }
    ASSERT_GT(total_ops, 6u);

    size_t opened_old = 0, opened_new = 0, refused = 0;
    for (uint64_t cut = 0; cut <= total_ops; ++cut) {
      SCOPED_TRACE("cut after save op " + std::to_string(cut));
      FaultInjectionEnv env;
      env.set_metadata_durability(mode);
      ASSERT_TRUE(index_a_->SaveSnapshot(dir, &env).ok());
      env.CutPowerAfterOps(cut);
      const Status save = index_b_->SaveSnapshot(dir, &env);
      if (cut >= total_ops) {
        ASSERT_TRUE(save.ok()) << save.ToString();
      }
      env.LosePower();

      SnapshotOpenOptions open_options;
      open_options.env = &env;
      auto reopened =
          ShardedEnsemble::OpenSnapshot(dir, ServingOptions(), open_options);
      if (reopened.ok()) {
        // Whatever survived must answer as exactly ONE generation.
        const auto results = QueryAll(reopened.value());
        EXPECT_TRUE(results == expected_a_ || results == expected_b_)
            << "reopened snapshot is neither generation";
        (results == expected_a_ ? opened_old : opened_new)++;
        if (save.ok()) {
          EXPECT_EQ(results, expected_b_);
        }
      } else {
        // Torn mid-save: invalidate-then-commit retracted the manifest,
        // so the directory refuses to open. fsck must agree, and a fresh
        // save over the debris must fully recover it.
        ++refused;
        EXPECT_FALSE(save.ok());
        EXPECT_FALSE(VerifySnapshotDir(dir, false, &env).ok());
        ASSERT_TRUE(index_b_->SaveSnapshot(dir, &env).ok());
        auto report = VerifySnapshotDir(dir, /*quarantine_strays=*/true, &env);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        EXPECT_EQ(report.value().shards_verified, 2u);
        auto clean = VerifySnapshotDir(dir, false, &env);
        ASSERT_TRUE(clean.ok());
        EXPECT_TRUE(clean.value().stray_files.empty());
        auto recovered =
            ShardedEnsemble::OpenSnapshot(dir, ServingOptions(), open_options);
        ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
        EXPECT_EQ(QueryAll(recovered.value()), expected_b_);
      }
    }
    // The sweep must actually traverse all three recovery outcomes.
    EXPECT_GT(opened_old, 0u) << ModeName(mode);
    EXPECT_GT(opened_new, 0u) << ModeName(mode);
    EXPECT_GT(refused, 0u) << ModeName(mode);
  }
}

// A save that FAILS (as opposed to the machine dying) must also leave
// the previous generation intact and openable — the error-return path
// shares the matrix's guarantee without needing a reboot.
TEST_F(ShardedCrashMatrixTest, FailedSaveLeavesOldGenerationServing) {
  const std::string dir = "serving/snap";
  using Op = FaultInjectionEnv::Op;
  for (const Op op : {Op::kOpenWrite, Op::kWrite, Op::kSync, Op::kRename}) {
    SCOPED_TRACE(static_cast<int>(op));
    FaultInjectionEnv env;
    ASSERT_TRUE(index_a_->SaveSnapshot(dir, &env).ok());
    // Fail the SECOND occurrence so the save dies mid-protocol, past the
    // invalidation step, with shard debris on disk.
    env.FailNth(op, 2, Status::IOError("injected save failure"));
    EXPECT_FALSE(index_b_->SaveSnapshot(dir, &env).ok());
    env.ClearFaults();

    // The old manifest was already retracted (invalidate-then-commit), so
    // the directory refuses to open; a retry of the save recovers.
    SnapshotOpenOptions open_options;
    open_options.env = &env;
    ASSERT_TRUE(index_b_->SaveSnapshot(dir, &env).ok());
    auto reopened =
        ShardedEnsemble::OpenSnapshot(dir, ServingOptions(), open_options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(QueryAll(reopened.value()), expected_b_);
  }
}

// Power cut during the very FIRST save into an empty directory: recovery
// must find either a complete snapshot or a directory that refuses to
// open — and never a half-written one that opens.
TEST_F(ShardedCrashMatrixTest, FirstSaveCutLeavesNothingTorn) {
  const std::string dir = "fresh/snap";
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv probe;
    ASSERT_TRUE(index_a_->SaveSnapshot(dir, &probe).ok());
    total_ops = probe.mutating_op_count();
  }
  for (uint64_t cut = 0; cut <= total_ops; cut += 2) {
    SCOPED_TRACE("cut after save op " + std::to_string(cut));
    FaultInjectionEnv env;
    env.CutPowerAfterOps(cut);
    const Status save = index_a_->SaveSnapshot(dir, &env);
    if (cut >= total_ops) {
      ASSERT_TRUE(save.ok());
    }
    env.LosePower();
    SnapshotOpenOptions open_options;
    open_options.env = &env;
    auto reopened =
        ShardedEnsemble::OpenSnapshot(dir, ServingOptions(), open_options);
    if (reopened.ok()) {
      EXPECT_EQ(QueryAll(reopened.value()), expected_a_);
    } else if (save.ok()) {
      FAIL() << "completed save failed to reopen: "
             << reopened.status().ToString();
    }
  }
}

// ------------------------- single-file dynamic snapshot, failed saves

TEST(DynamicSnapshotCrashTest, FailedResaveLeavesOldImageOpenable) {
  constexpr int kHashes = 32;
  auto family = HashFamily::Create(kHashes, 3).value();
  DynamicEnsembleOptions options;
  options.base.num_partitions = 4;
  options.base.num_hashes = kHashes;
  options.base.tree_depth = 4;
  auto index = DynamicLshEnsemble::Create(options, family).value();
  std::vector<uint64_t> values = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(index.Insert(7, values).ok());
  ASSERT_TRUE(index.Flush().ok());

  FaultInjectionEnv env;
  const std::string path = "d/index.lshe2";
  ASSERT_TRUE(WriteDynamicSnapshot(index, path, &env).ok());
  ASSERT_TRUE(index.Insert(8, values).ok());

  using Op = FaultInjectionEnv::Op;
  for (const Op op : {Op::kWrite, Op::kSync, Op::kRename}) {
    SCOPED_TRACE(static_cast<int>(op));
    env.FailNth(op, 1, Status::IOError("injected"));
    EXPECT_FALSE(WriteDynamicSnapshot(index, path, &env).ok());
    env.ClearFaults();

    SnapshotOpenOptions open_options;
    open_options.env = &env;
    auto reopened = OpenDynamicSnapshot(path, options, open_options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened.value().size(), 1u);  // still generation A
  }
}

}  // namespace
}  // namespace lshensemble
