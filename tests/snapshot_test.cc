// Format-v2 zero-copy snapshots: round trips, zero-copy assertions,
// mutate-after-open lifecycle, sharded snapshot sets, and corruption
// fuzzing over both on-disk formats (every byte flipped and every
// truncation must be rejected, never crash — the ASan job runs this
// suite in full).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "test_tmp.h"
#include "core/dynamic_ensemble.h"
#include "core/lsh_ensemble.h"
#include "core/sharded_ensemble.h"
#include "core/topk.h"
#include "io/ensemble_io.h"
#include "io/file.h"
#include "io/snapshot.h"
#include "lsh/arena_ref.h"
#include "lsh/lsh_forest.h"
#include "util/random.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

std::string TempPath(const std::string& name) {
  // Per-process dir: each discovered TEST runs as its own ctest process,
  // so a shared fixed path would race under `ctest -j`.
  return ProcessTempPath(name);
}

// ------------------------------------------------------------ mapped file

TEST(MappedFileTest, MissingFileIsNotFound) {
  EXPECT_TRUE(MappedFile::Open(TempPath("does_not_exist_v2")).status()
                  .IsNotFound());
}

TEST(MappedFileTest, MapsWrittenBytes) {
  const std::string path = TempPath("mapped_file_test.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "mapped bytes \x01\x02").ok());
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->data(), std::string_view("mapped bytes \x01\x02"));
  RemoveFileIfExists(path).ok();
}

TEST(MappedFileTest, EmptyFileMapsEmpty) {
  const std::string path = TempPath("mapped_empty.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "").ok());
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(mapped->data().empty());
  RemoveFileIfExists(path).ok();
}

// ------------------------------------------------------- forest FromMapped

TEST(LshForestFromMappedTest, ViewsAnswerIdentically) {
  auto family = HashFamily::Create(32, /*seed=*/9).value();
  auto forest = LshForest::Create(/*num_trees=*/4, /*tree_depth=*/8).value();
  Rng rng(23);
  std::vector<MinHash> signatures;
  for (uint64_t id = 0; id < 60; ++id) {
    std::vector<uint64_t> values(10 + id);
    for (auto& v : values) v = rng.Next();
    signatures.push_back(MinHash::FromValues(family, values));
    ASSERT_TRUE(forest.Add(id * 3, signatures.back()).ok());
  }
  forest.Index();

  const uint64_t copies_before = ArenaCopyBytes().load();
  auto mapped = LshForest::FromMapped(
      4, 8, forest.id_array(), forest.key_arena(), forest.entry_arena(),
      forest.first_key_arena(), nullptr);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(ArenaCopyBytes().load(), copies_before);
  EXPECT_TRUE(mapped->mapped());
  EXPECT_FALSE(forest.mapped());
  EXPECT_EQ(mapped->size(), forest.size());
  // The views literally alias the source arenas.
  EXPECT_EQ(mapped->key_arena().data(), forest.key_arena().data());
  EXPECT_EQ(mapped->MemoryBytes(), 0u);

  for (int b : {1, 2, 4}) {
    for (int r : {1, 5, 8}) {
      for (size_t qi = 0; qi < signatures.size(); qi += 7) {
        std::vector<uint64_t> expected, actual;
        ASSERT_TRUE(forest.Query(signatures[qi], b, r, &expected).ok());
        ASSERT_TRUE(mapped->Query(signatures[qi], b, r, &actual).ok());
        EXPECT_EQ(actual, expected) << "b=" << b << " r=" << r;
      }
    }
  }
}

TEST(LshForestFromMappedTest, RejectsBadShapes) {
  auto family = HashFamily::Create(16, 3).value();
  auto forest = LshForest::Create(2, 8).value();
  std::vector<uint64_t> values = {1, 2, 3, 4, 5, 6};
  ASSERT_TRUE(forest.Add(7, MinHash::FromValues(family, values)).ok());
  forest.Index();

  // Arena extents that disagree with the shape.
  EXPECT_TRUE(LshForest::FromMapped(2, 8, forest.id_array(),
                                    forest.key_arena().subspan(1),
                                    forest.entry_arena(),
                                    forest.first_key_arena(), nullptr)
                  .status()
                  .IsCorruption());
  // Out-of-range entry indices are not scanned at open — the snapshot
  // writer bounds them at write time and the probe clamp skips them —
  // so a wild index opens fine and can never surface a phantom
  // candidate (only ids actually in the forest).
  std::vector<uint32_t> bad_entries(forest.entry_arena().begin(),
                                    forest.entry_arena().end());
  bad_entries[0] = 999;
  auto mapped = LshForest::FromMapped(2, 8, forest.id_array(),
                                      forest.key_arena(), bad_entries,
                                      forest.first_key_arena(), nullptr);
  ASSERT_TRUE(mapped.ok());
  std::vector<uint64_t> out;
  ASSERT_TRUE(
      mapped->Query(MinHash::FromValues(family, values), 2, 8, &out).ok());
  for (const uint64_t id : out) EXPECT_EQ(id, 7u);
}

// ------------------------------------------------------ ensemble snapshots

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CorpusGenOptions gen;
    gen.num_domains = 600;
    gen.seed = 91;
    corpus_ = CorpusGenerator(gen).Generate().value();
    family_ = HashFamily::Create(options_.num_hashes, /*seed=*/11).value();

    LshEnsembleBuilder builder(options_, family_);
    for (size_t i = 0; i < corpus_->size(); ++i) {
      const Domain& domain = corpus_->domain(i);
      ASSERT_TRUE(builder
                      .Add(domain.id, domain.size(),
                           MinHash::FromValues(family_, domain.values))
                      .ok());
    }
    ensemble_ = std::move(builder).Build().value();
  }

  void TearDown() override {
    RemoveFileIfExists(path_).ok();
    RemoveFileIfExists(v1_path_).ok();
  }

  MinHash Sketch(size_t index) const {
    return MinHash::FromValues(family_, corpus_->domain(index).values);
  }

  /// A deterministic query batch over the corpus (sketches must outlive
  /// the returned specs).
  std::vector<QuerySpec> MakeSpecs(std::vector<MinHash>* sketches,
                                   size_t count = 24) const {
    sketches->clear();
    for (size_t i = 0; i < count; ++i) {
      sketches->push_back(Sketch((i * 37) % corpus_->size()));
    }
    std::vector<QuerySpec> specs;
    for (size_t i = 0; i < count; ++i) {
      const size_t index = (i * 37) % corpus_->size();
      specs.push_back(QuerySpec{&(*sketches)[i], corpus_->domain(index).size(),
                                0.2 + 0.2 * static_cast<double>(i % 4)});
    }
    return specs;
  }

  LshEnsembleOptions options_{.num_partitions = 8, .num_hashes = 64,
                              .tree_depth = 4};
  std::optional<Corpus> corpus_;
  std::shared_ptr<const HashFamily> family_;
  std::optional<LshEnsemble> ensemble_;
  std::string path_ = TempPath("lshe_snapshot_test.lshe2");
  std::string v1_path_ = TempPath("lshe_snapshot_test_v1.lshe");
};

TEST_F(SnapshotTest, MappedOpenAnswersBitIdentically) {
  ASSERT_TRUE(WriteEnsembleSnapshot(*ensemble_, path_).ok());
  auto mapped = OpenEnsembleMapped(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  EXPECT_EQ(mapped->size(), ensemble_->size());
  ASSERT_EQ(mapped->partitions().size(), ensemble_->partitions().size());
  for (size_t i = 0; i < mapped->partitions().size(); ++i) {
    EXPECT_EQ(mapped->partitions()[i], ensemble_->partitions()[i]);
  }
  EXPECT_TRUE(mapped->family()->SameAs(*family_));

  std::vector<MinHash> sketches;
  const std::vector<QuerySpec> specs = MakeSpecs(&sketches);
  std::vector<std::vector<uint64_t>> expected(specs.size());
  std::vector<std::vector<uint64_t>> actual(specs.size());
  QueryContext ctx_a, ctx_b;
  ASSERT_TRUE(ensemble_->BatchQuery(specs, &ctx_a, expected.data()).ok());
  ASSERT_TRUE(mapped->BatchQuery(specs, &ctx_b, actual.data()).ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "query " << i;
  }
}

TEST_F(SnapshotTest, MappedOpenCopiesNoArenaBytes) {
  ASSERT_TRUE(WriteEnsembleSnapshot(*ensemble_, path_).ok());
  ASSERT_TRUE(SaveEnsemble(*ensemble_, v1_path_).ok());

  // v1 load materializes every arena (the counter moves, heap is used).
  const uint64_t before_v1 = ArenaCopyBytes().load();
  auto v1 = LoadEnsemble(v1_path_);
  ASSERT_TRUE(v1.ok());
  EXPECT_GT(ArenaCopyBytes().load(), before_v1);
  EXPECT_GT(v1->MemoryBytes(), 0u);

  // v2 mapped open copies nothing: the counter is untouched and the
  // engine owns zero arena bytes — its forests are views into the file.
  const uint64_t before_v2 = ArenaCopyBytes().load();
  auto mapped = OpenEnsembleMapped(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(ArenaCopyBytes().load(), before_v2);
  EXPECT_EQ(mapped->MemoryBytes(), 0u);
}

TEST_F(SnapshotTest, ArenasAliasTheMapping) {
  ASSERT_TRUE(WriteEnsembleSnapshot(*ensemble_, path_).ok());
  auto snapshot = MappedSnapshot::Open(path_);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_TRUE((*snapshot)->has_ensemble());
  EXPECT_FALSE((*snapshot)->has_sidecar());

  // Open a forest-level witness through the public snapshot API: the
  // ensemble built from this snapshot serves queries out of data().
  auto mapped = EnsembleFromSnapshot(*snapshot);
  ASSERT_TRUE(mapped.ok());
  const std::string_view image = (*snapshot)->data();
  // Probe a query and make sure the engine works while we can still
  // bound-check the mapping (the arenas alias `image`, enforced by
  // MemoryBytes() == 0 above plus the forest-level aliasing test).
  std::vector<uint64_t> out;
  ASSERT_TRUE(mapped->Query(Sketch(5), corpus_->domain(5).size(), 0.5, &out)
                  .ok());
  EXPECT_FALSE(image.empty());
}

TEST_F(SnapshotTest, LoadEnsembleDispatchesOnVersion) {
  ASSERT_TRUE(WriteEnsembleSnapshot(*ensemble_, path_).ok());
  ASSERT_TRUE(SaveEnsemble(*ensemble_, v1_path_).ok());
  auto from_v2 = LoadEnsemble(path_);
  ASSERT_TRUE(from_v2.ok()) << from_v2.status();
  auto from_v1 = LoadEnsemble(v1_path_);
  ASSERT_TRUE(from_v1.ok()) << from_v1.status();

  std::vector<MinHash> sketches;
  const std::vector<QuerySpec> specs = MakeSpecs(&sketches);
  std::vector<std::vector<uint64_t>> a(specs.size()), b(specs.size());
  QueryContext ctx_a, ctx_b;
  ASSERT_TRUE(from_v1->BatchQuery(specs, &ctx_a, a.data()).ok());
  ASSERT_TRUE(from_v2->BatchQuery(specs, &ctx_b, b.data()).ok());
  for (size_t i = 0; i < specs.size(); ++i) EXPECT_EQ(b[i], a[i]);
}

TEST_F(SnapshotTest, SnapshotImageIsDeterministic) {
  std::string first, second;
  ASSERT_TRUE(SerializeEnsembleSnapshot(*ensemble_, &first).ok());
  ASSERT_TRUE(SerializeEnsembleSnapshot(*ensemble_, &second).ok());
  EXPECT_EQ(first, second);
}

TEST_F(SnapshotTest, LazyOpenSkipsArenaChecksums) {
  std::string image;
  ASSERT_TRUE(SerializeEnsembleSnapshot(*ensemble_, &image).ok());
  // Flip a byte inside the first forest's key arena (after the 64-byte
  // header + id segment, so offset 64 + ids + pad; the exact spot does
  // not matter as long as it is inside a segment payload, which byte
  // 200 of a 600-domain image always is).
  std::string corrupt = image;
  corrupt[5000] = static_cast<char>(corrupt[5000] ^ 0x40);

  // Eager verification reports Corruption ...
  EXPECT_TRUE(MappedSnapshot::FromBuffer(corrupt, {.verify_checksums = true})
                  .status()
                  .IsCorruption());
  // ... lazy opens (serving mode) accept the structurally intact image;
  // probes stay memory-safe (wrong candidates at worst).
  auto lazy =
      MappedSnapshot::FromBuffer(corrupt, {.verify_checksums = false});
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  auto engine = EnsembleFromSnapshot(*lazy);
  ASSERT_TRUE(engine.ok());
  std::vector<uint64_t> out;
  EXPECT_TRUE(
      engine->Query(Sketch(0), corpus_->domain(0).size(), 0.5, &out).ok());
}

// The filter tier round-trips through a snapshot zero-copy: the mapped
// engine's filters are views into the image with the same blocks, and the
// filtered mapped engine answers byte-identically to a filterless one.
TEST_F(SnapshotTest, FilterSectionRoundTripsZeroCopy) {
  // Own file name: ctest -j runs sibling tests that also write path_.
  const std::string path = TempPath("lshe_snapshot_filter_rt.lshe2");
  ASSERT_NE(ensemble_->engine_probe_filter(), nullptr)
      << "fixture should build filters by default";
  ASSERT_TRUE(WriteEnsembleSnapshot(*ensemble_, path).ok());

  const uint64_t before = ArenaCopyBytes().load();
  auto mapped = OpenEnsembleMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(ArenaCopyBytes().load(), before);

  const ProbeFilter* engine_filter = mapped->engine_probe_filter();
  ASSERT_NE(engine_filter, nullptr);
  EXPECT_TRUE(engine_filter->is_view());
  EXPECT_EQ(engine_filter->MemoryBytes(), 0u);
  EXPECT_EQ(engine_filter->num_blocks(),
            ensemble_->engine_probe_filter()->num_blocks());
  ASSERT_EQ(mapped->partition_probe_filters().size(),
            ensemble_->partition_probe_filters().size());
  for (size_t i = 0; i < mapped->partition_probe_filters().size(); ++i) {
    const ProbeFilter& view = mapped->partition_probe_filters()[i];
    const ProbeFilter& built = ensemble_->partition_probe_filters()[i];
    EXPECT_TRUE(view.is_view());
    ASSERT_EQ(view.num_blocks(), built.num_blocks()) << "partition " << i;
    EXPECT_TRUE(std::equal(view.blocks().begin(), view.blocks().end(),
                           built.blocks().begin()))
        << "partition " << i;
  }
  RemoveFileIfExists(path).ok();
}

// An image written without filters (the pre-filter-tier format) must keep
// opening: the manifest simply ends before the optional filter section,
// and the opened engine serves every query unpruned.
TEST_F(SnapshotTest, FilterlessImageOpensAndAnswersIdentically) {
  LshEnsembleOptions filterless_options = options_;
  filterless_options.build_probe_filter = false;
  LshEnsembleBuilder builder(filterless_options, family_);
  for (size_t i = 0; i < corpus_->size(); ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(builder
                    .Add(domain.id, domain.size(),
                         MinHash::FromValues(family_, domain.values))
                    .ok());
  }
  auto filterless = std::move(builder).Build().value();
  ASSERT_EQ(filterless.engine_probe_filter(), nullptr);

  std::string image;
  ASSERT_TRUE(SerializeEnsembleSnapshot(filterless, &image).ok());
  auto snapshot = MappedSnapshot::FromBuffer(std::move(image));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  auto opened = EnsembleFromSnapshot(*snapshot);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened->engine_probe_filter(), nullptr);
  EXPECT_TRUE(opened->partition_probe_filters().empty());

  // Unpruned (filterless) answers == the filtered fixture engine's: the
  // filter is invisible in results, present or not.
  std::vector<MinHash> sketches;
  const std::vector<QuerySpec> specs = MakeSpecs(&sketches);
  std::vector<std::vector<uint64_t>> expected(specs.size());
  std::vector<std::vector<uint64_t>> actual(specs.size());
  QueryContext ctx_a, ctx_b;
  ASSERT_TRUE(ensemble_->BatchQuery(specs, &ctx_a, expected.data()).ok());
  ASSERT_TRUE(opened->BatchQuery(specs, &ctx_b, actual.data()).ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "query " << i;
  }
}

// Pager hints must not change what an open accepts or returns — both
// settings parse the same images, verified or lazy.
TEST_F(SnapshotTest, MadviseOptionIsResultInvisible) {
  const std::string path = TempPath("lshe_snapshot_madvise.lshe2");
  ASSERT_TRUE(WriteEnsembleSnapshot(*ensemble_, path).ok());
  for (const bool verify : {true, false}) {
    for (const bool advise : {true, false}) {
      auto mapped = OpenEnsembleMapped(
          path, {.verify_checksums = verify, .apply_madvise = advise});
      ASSERT_TRUE(mapped.ok())
          << "verify=" << verify << " advise=" << advise << ": "
          << mapped.status();
      EXPECT_EQ(mapped->size(), ensemble_->size());
    }
  }
  RemoveFileIfExists(path).ok();
}

TEST_F(SnapshotTest, OpenValidationErrors) {
  EXPECT_TRUE(OpenEnsembleMapped(TempPath("missing.lshe2")).status()
                  .IsNotFound());
  // A v1 image is not a v2 snapshot.
  ASSERT_TRUE(SaveEnsemble(*ensemble_, v1_path_).ok());
  EXPECT_TRUE(OpenEnsembleMapped(v1_path_).status().IsCorruption());
  // An ensemble-only snapshot cannot open as a dynamic index.
  ASSERT_TRUE(WriteEnsembleSnapshot(*ensemble_, path_).ok());
  DynamicEnsembleOptions dyn_options;
  dyn_options.base = options_;
  EXPECT_TRUE(OpenDynamicSnapshot(path_, dyn_options).status()
                  .IsInvalidArgument());
  // Mismatched signature length is refused up front.
  DynamicEnsembleOptions wrong = dyn_options;
  wrong.base.num_hashes = 128;
  wrong.base.tree_depth = 4;
  EXPECT_TRUE(OpenDynamicSnapshot(path_, wrong).status()
                  .IsInvalidArgument());
}

// ----------------------------------------------------- corruption fuzzing

/// Every mutation of a serialized image must be rejected as Corruption or
/// NotSupported — never accepted, never a crash. `open` runs one decode.
template <typename OpenFn>
void FuzzImage(const std::string& image, OpenFn open) {
  // Single-bit and multi-bit flips at every byte.
  for (size_t offset = 0; offset < image.size(); ++offset) {
    for (const uint8_t mask : {0x01, 0x80, 0xFF}) {
      std::string corrupt = image;
      corrupt[offset] = static_cast<char>(corrupt[offset] ^ mask);
      const Status status = open(corrupt);
      EXPECT_FALSE(status.ok()) << "offset " << offset << " mask "
                                << static_cast<int>(mask);
      EXPECT_TRUE(status.IsCorruption() || status.IsNotSupported())
          << "offset " << offset << " mask " << static_cast<int>(mask)
          << ": " << status.ToString();
    }
  }
  // Every truncation.
  for (size_t keep = 0; keep < image.size(); ++keep) {
    const Status status = open(image.substr(0, keep));
    EXPECT_FALSE(status.ok()) << "kept " << keep;
    EXPECT_TRUE(status.IsCorruption() || status.IsNotSupported())
        << "kept " << keep << ": " << status.ToString();
  }
  // Trailing garbage.
  EXPECT_FALSE(open(image + "x").ok());
}

class SnapshotFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    family_ = HashFamily::Create(16, /*seed=*/5).value();
    options_.num_partitions = 2;
    options_.num_hashes = 16;
    options_.tree_depth = 4;
    LshEnsembleBuilder builder(options_, family_);
    Rng rng(3);
    for (uint64_t id = 1; id <= 24; ++id) {
      std::vector<uint64_t> values(4 + id);
      for (auto& v : values) v = rng.Next();
      ASSERT_TRUE(builder
                      .Add(id, values.size(),
                           MinHash::FromValues(family_, values))
                      .ok());
    }
    ensemble_ = std::move(builder).Build().value();
  }

  LshEnsembleOptions options_;
  std::shared_ptr<const HashFamily> family_;
  std::optional<LshEnsemble> ensemble_;
};

TEST_F(SnapshotFuzzTest, V1EveryByteMutationRejected) {
  std::string image;
  ASSERT_TRUE(SerializeEnsemble(*ensemble_, &image).ok());
  FuzzImage(image, [](const std::string& corrupt) {
    return DeserializeEnsemble(corrupt).status();
  });
}

TEST_F(SnapshotFuzzTest, V2EveryByteMutationRejected) {
  // The fixture builds with default options, so the image must carry the
  // probe-filter section — the sweep below then provably covers filter
  // segments and their manifest refs, not just the pre-filter layout.
  ASSERT_NE(ensemble_->engine_probe_filter(), nullptr);
  std::string image;
  ASSERT_TRUE(SerializeEnsembleSnapshot(*ensemble_, &image).ok());
  FuzzImage(image, [](const std::string& corrupt) {
    return DeserializeEnsemble(corrupt).status();
  });
}

TEST_F(SnapshotFuzzTest, V2DynamicEveryByteMutationRejected) {
  DynamicEnsembleOptions dyn_options;
  dyn_options.base = options_;
  dyn_options.min_delta_for_rebuild = 1000;
  auto index = DynamicLshEnsemble::Create(dyn_options, family_).value();
  Rng rng(7);
  for (uint64_t id = 1; id <= 30; ++id) {
    std::vector<uint64_t> values(4 + id);
    for (auto& v : values) v = rng.Next();
    ASSERT_TRUE(index.Insert(id, values).ok());
    if (id == 20) {
      ASSERT_TRUE(index.Flush().ok());
    }
  }
  ASSERT_TRUE(index.Remove(3).ok());   // tombstone an indexed record
  ASSERT_TRUE(index.Remove(25).ok());  // drop a delta record

  // Like the static sweep: require the flushed core to carry filters so
  // the mutation sweep exercises the filter section of dynamic images.
  ASSERT_NE(index.indexed(), nullptr);
  ASSERT_NE(index.indexed()->engine_probe_filter(), nullptr);

  std::string image;
  ASSERT_TRUE(SerializeDynamicSnapshot(index, &image).ok());
  FuzzImage(image, [&](const std::string& corrupt) {
    return DynamicFromSnapshotBuffer(corrupt, dyn_options).status();
  });
}

// ---------------------------------------------------- dynamic lifecycle

class DynamicSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CorpusGenOptions gen;
    gen.num_domains = 300;
    gen.seed = 55;
    corpus_ = CorpusGenerator(gen).Generate().value();
    family_ = HashFamily::Create(kNumHashes, /*seed=*/21).value();
    options_.base.num_partitions = 6;
    options_.base.num_hashes = kNumHashes;
    options_.base.tree_depth = 4;
    options_.min_delta_for_rebuild = 100000;  // rebuild only on Flush()

    index_.emplace(DynamicLshEnsemble::Create(options_, family_).value());
    for (size_t i = 0; i < corpus_->size(); ++i) {
      const Domain& domain = corpus_->domain(i);
      ASSERT_TRUE(index_
                      ->Insert(domain.id, domain.size(),
                               MinHash::FromValues(family_, domain.values))
                      .ok());
      if (i + 1 == 240) {
        ASSERT_TRUE(index_->Flush().ok());
      }
    }
    // Tombstone a few indexed records and drop one delta record, so the
    // snapshot carries all three side-car tables.
    for (size_t i : {3ul, 57ul, 120ul}) {
      ASSERT_TRUE(index_->Remove(corpus_->domain(i).id).ok());
    }
    ASSERT_TRUE(index_->Remove(corpus_->domain(250).id).ok());
    ASSERT_GT(index_->delta_size(), 0u);
    ASSERT_GT(index_->tombstone_count(), 0u);
  }

  void TearDown() override { RemoveFileIfExists(path_).ok(); }

  MinHash Sketch(size_t index) const {
    return MinHash::FromValues(family_, corpus_->domain(index).values);
  }

  std::vector<QuerySpec> MakeSpecs(std::vector<MinHash>* sketches) const {
    sketches->clear();
    std::vector<QuerySpec> specs;
    for (size_t i = 0; i < corpus_->size(); i += 17) {
      sketches->push_back(Sketch(i));
    }
    size_t j = 0;
    for (size_t i = 0; i < corpus_->size(); i += 17, ++j) {
      specs.push_back(QuerySpec{&(*sketches)[j], corpus_->domain(i).size(),
                                0.2 + 0.2 * static_cast<double>(j % 4)});
    }
    return specs;
  }

  /// BatchQuery both engines and require identical outputs. Before any
  /// rebuild the comparison is bit-identical (same candidate order);
  /// after independent rebuilds pass exact_order = false — candidate
  /// SETS stay equal but within-partition insertion order (an
  /// unordered_map walk at build time) is not canonical.
  void ExpectSameAnswers(const DynamicLshEnsemble& a,
                         const DynamicLshEnsemble& b,
                         bool exact_order = true) {
    std::vector<MinHash> sketches;
    const std::vector<QuerySpec> specs = MakeSpecs(&sketches);
    std::vector<std::vector<uint64_t>> outs_a(specs.size());
    std::vector<std::vector<uint64_t>> outs_b(specs.size());
    QueryContext ctx_a, ctx_b;
    ASSERT_TRUE(a.BatchQuery(specs, &ctx_a, outs_a.data()).ok());
    ASSERT_TRUE(b.BatchQuery(specs, &ctx_b, outs_b.data()).ok());
    for (size_t i = 0; i < specs.size(); ++i) {
      if (!exact_order) {
        std::sort(outs_a[i].begin(), outs_a[i].end());
        std::sort(outs_b[i].begin(), outs_b[i].end());
      }
      EXPECT_EQ(outs_b[i], outs_a[i]) << "query " << i;
    }
    // Top-k rides the same engines plus the side-car lookups (its
    // ranked order is canonical regardless of candidate order).
    TopKSearcher searcher_a(&a);
    TopKSearcher searcher_b(&b);
    std::vector<TopKQuery> queries;
    for (size_t i = 0; i < 6; ++i) {
      queries.push_back(TopKQuery{specs[i].query, specs[i].query_size});
    }
    std::vector<std::vector<TopKResult>> topk_a(queries.size());
    std::vector<std::vector<TopKResult>> topk_b(queries.size());
    QueryContext tctx_a, tctx_b;
    ASSERT_TRUE(
        searcher_a.BatchSearch(queries, 5, &tctx_a, topk_a.data()).ok());
    ASSERT_TRUE(
        searcher_b.BatchSearch(queries, 5, &tctx_b, topk_b.data()).ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(topk_b[i], topk_a[i]) << "topk query " << i;
    }
  }

  static constexpr int kNumHashes = 64;
  DynamicEnsembleOptions options_;
  std::optional<Corpus> corpus_;
  std::shared_ptr<const HashFamily> family_;
  std::optional<DynamicLshEnsemble> index_;
  std::string path_ = TempPath("lshe_dynamic_snapshot.lshe2");
};

TEST_F(DynamicSnapshotTest, ReopenedIndexAnswersBitIdentically) {
  ASSERT_TRUE(WriteDynamicSnapshot(*index_, path_).ok());
  const uint64_t copies_before = ArenaCopyBytes().load();
  auto reopened = OpenDynamicSnapshot(path_, options_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(ArenaCopyBytes().load(), copies_before);  // no arena copies

  EXPECT_EQ(reopened->size(), index_->size());
  EXPECT_EQ(reopened->indexed_size(), index_->indexed_size());
  EXPECT_EQ(reopened->delta_size(), index_->delta_size());
  EXPECT_EQ(reopened->tombstone_count(), index_->tombstone_count());
  ExpectSameAnswers(*index_, *reopened);

  // Side-car lookups serve mapped and overlay records alike.
  const uint64_t mapped_id = corpus_->domain(0).id;   // indexed
  const uint64_t overlay_id = corpus_->domain(260).id;  // delta
  size_t size = 0;
  EXPECT_TRUE(static_cast<bool>(reopened->FindSignature(mapped_id, &size)));
  EXPECT_EQ(size, corpus_->domain(0).size());
  EXPECT_TRUE(static_cast<bool>(reopened->FindSignature(overlay_id, &size)));
  EXPECT_EQ(reopened->SizeOf(mapped_id), corpus_->domain(0).size());
  // Tombstoned records are dead through every lookup.
  const uint64_t dead_id = corpus_->domain(3).id;
  EXPECT_FALSE(static_cast<bool>(reopened->FindSignature(dead_id, &size)));
  EXPECT_EQ(reopened->SizeOf(dead_id), 0u);
}

TEST_F(DynamicSnapshotTest, FullLifecycleThroughResnapshot) {
  // build -> save v2 -> mmap open -> insert/remove/flush -> re-snapshot,
  // mirrored against the always-in-memory engine at every step.
  ASSERT_TRUE(WriteDynamicSnapshot(*index_, path_).ok());
  auto reopened = OpenDynamicSnapshot(path_, options_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  // Mutate both sides identically: a fresh insert, a mapped-record
  // removal, an overlay removal, and a re-insert of a removed id.
  auto mutate = [&](DynamicLshEnsemble* engine) {
    std::vector<uint64_t> fresh = {901, 902, 903, 904, 905};
    ASSERT_TRUE(engine->Insert(9001, fresh).ok());
    ASSERT_TRUE(engine->Remove(corpus_->domain(10).id).ok());   // indexed
    ASSERT_TRUE(engine->Remove(corpus_->domain(255).id).ok());  // delta
    const std::vector<uint64_t> reborn = {11, 12, 13, 14};
    ASSERT_TRUE(engine->Insert(corpus_->domain(10).id, reborn).ok());
  };
  mutate(&*index_);
  mutate(&*reopened);
  // A mapped-live id cannot be double-inserted.
  const std::vector<uint64_t> dup = {1, 2, 3};
  EXPECT_TRUE(reopened->Insert(corpus_->domain(1).id, dup)
                  .IsInvalidArgument());
  ExpectSameAnswers(*index_, *reopened);

  // Flush both: the reopened engine materializes its mapped records,
  // rebuilds on the heap, and releases the mapping.
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(reopened->Flush().ok());
  EXPECT_EQ(reopened->size(), index_->size());
  EXPECT_EQ(reopened->delta_size(), 0u);
  EXPECT_EQ(reopened->tombstone_count(), 0u);
  ExpectSameAnswers(*index_, *reopened, /*exact_order=*/false);

  // Re-snapshot the flushed engine and open it again: the reopen itself
  // is exact against the engine it was saved from.
  ASSERT_TRUE(WriteDynamicSnapshot(*reopened, path_).ok());
  auto again = OpenDynamicSnapshot(path_, options_);
  ASSERT_TRUE(again.ok()) << again.status();
  ExpectSameAnswers(*reopened, *again);
  ExpectSameAnswers(*index_, *again, /*exact_order=*/false);
}

TEST_F(DynamicSnapshotTest, FlushOnCleanMappedIndexMaterializes) {
  // Flush() must rebuild even a CLEAN snapshot-opened index: the
  // documented way to detach from the snapshot file. Flush everything
  // first so the reopened engine starts clean.
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(WriteDynamicSnapshot(*index_, path_).ok());
  auto reopened = OpenDynamicSnapshot(path_, options_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  const uint64_t mapped_id = corpus_->domain(0).id;
  // Mapped records have no owned MinHash before the flush...
  EXPECT_EQ(reopened->SignatureOf(mapped_id), nullptr);
  EXPECT_EQ(reopened->indexed()->MemoryBytes(), 0u);  // arenas are views
  ASSERT_TRUE(reopened->Flush().ok());
  // ... and are heap-materialized after it (the mapping is released).
  EXPECT_NE(reopened->SignatureOf(mapped_id), nullptr);
  EXPECT_GT(reopened->indexed()->MemoryBytes(), 0u);
  ExpectSameAnswers(*index_, *reopened, /*exact_order=*/false);
}

TEST_F(DynamicSnapshotTest, OpenAppliesCallerQueryPolicy) {
  // The caller's query-time policy (here the unreachable-size prune)
  // must govern BOTH the mapped indexed path and the delta scan — not
  // the flags the index happened to be saved with.
  DynamicEnsembleOptions no_prune = options_;
  no_prune.base.prune_unreachable_partitions = false;
  auto saved = DynamicLshEnsemble::Create(no_prune, family_).value();
  for (size_t i = 0; i < 80; ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(saved
                    .Insert(domain.id, domain.size(),
                            MinHash::FromValues(family_, domain.values))
                    .ok());
  }
  ASSERT_TRUE(saved.Flush().ok());
  ASSERT_TRUE(WriteDynamicSnapshot(saved, path_).ok());

  DynamicEnsembleOptions with_prune = options_;
  with_prune.base.prune_unreachable_partitions = true;
  auto reopened = OpenDynamicSnapshot(path_, with_prune);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // A heap reference with the same policy must agree exactly.
  auto reference = DynamicLshEnsemble::Create(with_prune, family_).value();
  for (size_t i = 0; i < 80; ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(reference
                    .Insert(domain.id, domain.size(),
                            MinHash::FromValues(family_, domain.values))
                    .ok());
  }
  ASSERT_TRUE(reference.Flush().ok());
  for (size_t qi = 60; qi < 80; qi += 4) {
    const MinHash sketch = Sketch(qi);
    const size_t q = corpus_->domain(qi).size();
    for (const double t_star : {0.5, 0.9}) {
      std::vector<uint64_t> expected, actual;
      ASSERT_TRUE(reference.Query(sketch, q, t_star, &expected).ok());
      ASSERT_TRUE(reopened->Query(sketch, q, t_star, &actual).ok());
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, expected) << "query " << qi << " t*=" << t_star;
    }
  }
}

TEST_F(DynamicSnapshotTest, DynamicImageIsDeterministic) {
  std::string first, second;
  ASSERT_TRUE(SerializeDynamicSnapshot(*index_, &first).ok());
  ASSERT_TRUE(SerializeDynamicSnapshot(*index_, &second).ok());
  EXPECT_EQ(first, second);
}

TEST_F(DynamicSnapshotTest, PureDeltaSnapshotRoundTrips) {
  // An index that never flushed has no ensemble image: the snapshot is
  // pure side-car and must restore (and stay mutable) all the same.
  auto pure = DynamicLshEnsemble::Create(options_, family_).value();
  for (size_t i = 0; i < 20; ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(pure.Insert(domain.id, domain.size(),
                            MinHash::FromValues(family_, domain.values))
                    .ok());
  }
  ASSERT_TRUE(WriteDynamicSnapshot(pure, path_).ok());
  auto reopened = OpenDynamicSnapshot(path_, options_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->size(), pure.size());
  EXPECT_EQ(reopened->indexed_size(), 0u);
  ExpectSameAnswers(pure, *reopened);
}

// ------------------------------------------------------- sharded snapshots

class ShardedSnapshotTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    CorpusGenOptions gen;
    gen.num_domains = 260;
    gen.seed = 77;
    corpus_ = CorpusGenerator(gen).Generate().value();
    family_ = HashFamily::Create(kNumHashes, /*seed=*/31).value();
    options_.base.base.num_partitions = 6;
    options_.base.base.num_hashes = kNumHashes;
    options_.base.base.tree_depth = 4;
    options_.base.min_delta_for_rebuild = 100000;
    options_.num_shards = GetParam();

    index_.emplace(ShardedEnsemble::Create(options_, family_).value());
    for (size_t i = 0; i < corpus_->size(); ++i) {
      const Domain& domain = corpus_->domain(i);
      ASSERT_TRUE(index_
                      ->Insert(domain.id, domain.size(),
                               MinHash::FromValues(family_, domain.values))
                      .ok());
      if (i + 1 == 220) {
        ASSERT_TRUE(index_->Flush().ok());
      }
    }
    for (size_t i : {5ul, 60ul, 230ul}) {
      ASSERT_TRUE(index_->Remove(corpus_->domain(i).id).ok());
    }
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  MinHash Sketch(size_t index) const {
    return MinHash::FromValues(family_, corpus_->domain(index).values);
  }

  void ExpectSameAnswers(const ShardedEnsemble& a, const ShardedEnsemble& b) {
    std::vector<MinHash> sketches;
    std::vector<QuerySpec> specs;
    for (size_t i = 0; i < corpus_->size(); i += 13) {
      sketches.push_back(Sketch(i));
    }
    size_t j = 0;
    for (size_t i = 0; i < corpus_->size(); i += 13, ++j) {
      specs.push_back(QuerySpec{&sketches[j], corpus_->domain(i).size(),
                                0.2 + 0.2 * static_cast<double>(j % 4)});
    }
    std::vector<std::vector<uint64_t>> outs_a(specs.size());
    std::vector<std::vector<uint64_t>> outs_b(specs.size());
    ASSERT_TRUE(a.BatchQuery(specs, outs_a.data()).ok());
    ASSERT_TRUE(b.BatchQuery(specs, outs_b.data()).ok());
    for (size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(outs_b[i], outs_a[i]) << "query " << i;
    }
    std::vector<TopKQuery> queries;
    for (size_t i = 0; i < 5; ++i) {
      queries.push_back(TopKQuery{specs[i].query, specs[i].query_size});
    }
    std::vector<std::vector<TopKResult>> topk_a(queries.size());
    std::vector<std::vector<TopKResult>> topk_b(queries.size());
    ASSERT_TRUE(a.BatchSearch(queries, 4, topk_a.data()).ok());
    ASSERT_TRUE(b.BatchSearch(queries, 4, topk_b.data()).ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(topk_b[i], topk_a[i]) << "topk query " << i;
    }
  }

  static constexpr int kNumHashes = 64;
  ShardedEnsembleOptions options_;
  std::optional<Corpus> corpus_;
  std::shared_ptr<const HashFamily> family_;
  std::optional<ShardedEnsemble> index_;
  std::string dir_ = TempPath("lshe_sharded_snapshot_" +
                              std::to_string(GetParam()));
};

TEST_P(ShardedSnapshotTest, SaveOpenMutateResnapshot) {
  ASSERT_TRUE(index_->SaveSnapshot(dir_).ok());
  const uint64_t copies_before = ArenaCopyBytes().load();
  auto reopened = ShardedEnsemble::OpenSnapshot(dir_, options_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(ArenaCopyBytes().load(), copies_before);  // S mmaps, 0 copies

  EXPECT_EQ(reopened->num_shards(), index_->num_shards());
  EXPECT_EQ(reopened->size(), index_->size());
  EXPECT_EQ(reopened->indexed_size(), index_->indexed_size());
  EXPECT_EQ(reopened->delta_size(), index_->delta_size());
  EXPECT_EQ(reopened->tombstone_count(), index_->tombstone_count());
  ExpectSameAnswers(*index_, *reopened);

  // Mutate both sides identically, re-check, then flush + re-snapshot.
  const std::vector<uint64_t> fresh_a = {70, 71, 72, 73};
  const std::vector<uint64_t> fresh_b = {80, 81, 82};
  auto mutate = [&](ShardedEnsemble* engine) {
    ASSERT_TRUE(engine->Insert(7001, fresh_a).ok());
    ASSERT_TRUE(engine->Remove(corpus_->domain(20).id).ok());
    ASSERT_TRUE(engine->Insert(7002, fresh_b).ok());
  };
  mutate(&*index_);
  mutate(&*reopened);
  ExpectSameAnswers(*index_, *reopened);

  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(reopened->Flush().ok());
  ExpectSameAnswers(*index_, *reopened);

  ASSERT_TRUE(reopened->SaveSnapshot(dir_).ok());
  auto again = ShardedEnsemble::OpenSnapshot(dir_, options_);
  ASSERT_TRUE(again.ok()) << again.status();
  ExpectSameAnswers(*index_, *again);
}

TEST_P(ShardedSnapshotTest, MatchesUnshardedEngine) {
  // The snapshot-opened sharded layer must still equal the unsharded
  // engine — the serving layer's core invariant, across the open.
  ASSERT_TRUE(index_->SaveSnapshot(dir_).ok());
  auto reopened = ShardedEnsemble::OpenSnapshot(dir_, options_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  // The reference replays the exact same lifecycle unsharded: insert
  // all, flush at 220, then the same removals — so indexed/delta/
  // tombstone staging matches, and the sharded layer's corpus-global
  // partition pinning makes the candidate sets equal by design.
  DynamicEnsembleOptions dyn_options = options_.base;
  auto reference = DynamicLshEnsemble::Create(dyn_options, family_).value();
  for (size_t i = 0; i < corpus_->size(); ++i) {
    const Domain& domain = corpus_->domain(i);
    ASSERT_TRUE(reference
                    .Insert(domain.id, domain.size(),
                            MinHash::FromValues(family_, domain.values))
                    .ok());
    if (i + 1 == 220) {
      ASSERT_TRUE(reference.Flush().ok());
    }
  }
  for (size_t i : {5ul, 60ul, 230ul}) {
    ASSERT_TRUE(reference.Remove(corpus_->domain(i).id).ok());
  }
  std::vector<MinHash> sketches;
  std::vector<QuerySpec> specs;
  for (size_t i = 0; i < corpus_->size(); i += 19) {
    sketches.push_back(Sketch(i));
  }
  size_t j = 0;
  for (size_t i = 0; i < corpus_->size(); i += 19, ++j) {
    specs.push_back(
        QuerySpec{&sketches[j], corpus_->domain(i).size(), 0.4});
  }
  std::vector<std::vector<uint64_t>> sharded_outs(specs.size());
  ASSERT_TRUE(reopened->BatchQuery(specs, sharded_outs.data()).ok());
  QueryContext ctx;
  std::vector<std::vector<uint64_t>> reference_outs(specs.size());
  ASSERT_TRUE(
      reference.BatchQuery(specs, &ctx, reference_outs.data()).ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    std::sort(reference_outs[i].begin(), reference_outs[i].end());
    EXPECT_EQ(sharded_outs[i], reference_outs[i]) << "query " << i;
  }
}

TEST_P(ShardedSnapshotTest, OpenValidatesShardCount) {
  ASSERT_TRUE(index_->SaveSnapshot(dir_).ok());
  ShardedEnsembleOptions wrong = options_;
  wrong.num_shards = GetParam() + 1;
  EXPECT_TRUE(ShardedEnsemble::OpenSnapshot(dir_, wrong).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ShardedEnsemble::OpenSnapshot(dir_ + "_missing", options_).status()
          .IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedSnapshotTest,
                         ::testing::Values(1ul, 2ul, 4ul));

}  // namespace
}  // namespace lshensemble
