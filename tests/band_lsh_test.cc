#include "lsh/band_lsh.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "minhash/minhash.h"
#include "util/random.h"

namespace lshensemble {
namespace {

std::shared_ptr<const HashFamily> Family(int m = 256, uint64_t seed = 2) {
  return HashFamily::Create(m, seed).value();
}

TEST(BandCollisionProbabilityTest, MatchesFormulaAndEdges) {
  EXPECT_DOUBLE_EQ(BandCollisionProbability(0.0, 4, 2), 0.0);
  EXPECT_DOUBLE_EQ(BandCollisionProbability(1.0, 4, 2), 1.0);
  const double s = 0.6;
  EXPECT_NEAR(BandCollisionProbability(s, 8, 4),
              1.0 - std::pow(1.0 - std::pow(s, 4), 8), 1e-12);
}

TEST(BandCollisionProbabilityTest, MonotoneInSimilarity) {
  double previous = 0.0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double p = BandCollisionProbability(s, 16, 4);
    EXPECT_GE(p, previous - 1e-12);
    previous = p;
  }
}

TEST(StaticThresholdTest, ApproximationFormula) {
  EXPECT_NEAR(StaticThreshold(16, 4), std::pow(1.0 / 16, 0.25), 1e-12);
  // More bands lower the threshold (more recall).
  EXPECT_LT(StaticThreshold(32, 4), StaticThreshold(8, 4));
}

TEST(ChooseStaticParamsTest, RespectsBudgetAndTarget) {
  for (double target : {0.2, 0.5, 0.8}) {
    const BandParams params = ChooseStaticParams(256, target);
    EXPECT_GE(params.b, 1);
    EXPECT_GE(params.r, 1);
    EXPECT_LE(params.b * params.r, 256);
    EXPECT_NEAR(StaticThreshold(params.b, params.r), target, 0.08)
        << "target " << target;
  }
}

TEST(BandLshTest, CreateRejectsBadParams) {
  EXPECT_FALSE(BandLsh::Create(0, 4).ok());
  EXPECT_FALSE(BandLsh::Create(4, 0).ok());
}

TEST(BandLshTest, RejectsShortSignatures) {
  auto index = BandLsh::Create(32, 8).value();  // needs 256 hashes
  auto short_sig =
      MinHash::FromValues(Family(128), std::vector<uint64_t>{1, 2});
  EXPECT_FALSE(index.Add(1, short_sig).ok());
  std::vector<uint64_t> out;
  EXPECT_FALSE(index.Query(short_sig, &out).ok());
}

TEST(BandLshTest, IdenticalSignatureAlwaysFound) {
  auto family = Family();
  auto index = BandLsh::Create(32, 8).value();
  std::vector<uint64_t> values = {10, 20, 30, 40, 50};
  auto sig = MinHash::FromValues(family, values);
  ASSERT_TRUE(index.Add(42, sig).ok());
  std::vector<uint64_t> out;
  ASSERT_TRUE(index.Query(sig, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
}

TEST(BandLshTest, DisjointSetsNotFound) {
  auto family = Family();
  auto index = BandLsh::Create(16, 16).value();  // very high threshold
  std::vector<uint64_t> a_values, b_values;
  for (uint64_t i = 0; i < 100; ++i) {
    a_values.push_back(i);
    b_values.push_back(100000 + i);
  }
  ASSERT_TRUE(index.Add(1, MinHash::FromValues(family, a_values)).ok());
  std::vector<uint64_t> out;
  ASSERT_TRUE(index.Query(MinHash::FromValues(family, b_values), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(BandLshTest, OutputSortedAndDeduplicated) {
  auto family = Family();
  auto index = BandLsh::Create(32, 1).value();  // r=1: lots of collisions
  std::vector<uint64_t> values = {1, 2, 3};
  auto sig = MinHash::FromValues(family, values);
  for (uint64_t id : {9ULL, 3ULL, 7ULL}) {
    ASSERT_TRUE(index.Add(id, sig).ok());
  }
  std::vector<uint64_t> out;
  ASSERT_TRUE(index.Query(sig, &out).ok());
  EXPECT_EQ(out, (std::vector<uint64_t>{3, 7, 9}));
}

// Property test of Eq. 5: over many random set pairs with a fixed Jaccard
// similarity, the empirical candidate rate should track 1 - (1 - s^r)^b.
class BandLshCollisionProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(BandLshCollisionProperty, EmpiricalRateMatchesEq5) {
  const int b = std::get<0>(GetParam());
  const int r = std::get<1>(GetParam());
  const double jaccard = std::get<2>(GetParam());
  const int m = 256;
  ASSERT_LE(b * r, m);

  Rng rng(static_cast<uint64_t>(b * 1000 + r * 100) +
          static_cast<uint64_t>(jaccard * 10));
  constexpr int kPairs = 300;
  int candidates = 0;
  double expected_probability_sum = 0.0;
  for (int pair = 0; pair < kPairs; ++pair) {
    auto family = Family(m, rng.Next());
    // Build two sets with the target Jaccard: overlap o of total 2n - o.
    const size_t n = 200;
    const auto overlap = static_cast<size_t>(
        std::llround(2.0 * n * jaccard / (1.0 + jaccard)));
    std::vector<uint64_t> a_values, b_values;
    const uint64_t tag = rng.Next();
    for (size_t i = 0; i < n; ++i) a_values.push_back(tag + i);
    for (size_t i = 0; i < overlap; ++i) b_values.push_back(tag + i);
    for (size_t i = overlap; i < n; ++i) {
      b_values.push_back(tag + 10000000 + i);
    }
    const double true_jaccard =
        static_cast<double>(overlap) / static_cast<double>(2 * n - overlap);
    expected_probability_sum += BandCollisionProbability(true_jaccard, b, r);

    auto index = BandLsh::Create(b, r).value();
    ASSERT_TRUE(index.Add(1, MinHash::FromValues(family, a_values)).ok());
    std::vector<uint64_t> out;
    ASSERT_TRUE(index.Query(MinHash::FromValues(family, b_values), &out).ok());
    candidates += out.empty() ? 0 : 1;
  }
  const double expected = expected_probability_sum / kPairs;
  const double observed = static_cast<double>(candidates) / kPairs;
  // Binomial stderr at kPairs trials, 5 sigma.
  const double sigma = std::sqrt(expected * (1 - expected) / kPairs);
  EXPECT_NEAR(observed, expected, 5.0 * sigma + 0.02)
      << "b=" << b << " r=" << r << " s=" << jaccard;
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, BandLshCollisionProperty,
    ::testing::Combine(::testing::Values(4, 16, 32),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(0.3, 0.6, 0.9)));

}  // namespace
}  // namespace lshensemble
