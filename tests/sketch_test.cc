#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sketch/bottom_k.h"
#include "sketch/hyperloglog.h"
#include "util/hashing.h"
#include "util/random.h"

namespace lshensemble {
namespace {

// ------------------------------------------------------------ HyperLogLog

TEST(HyperLogLogTest, CreateValidation) {
  EXPECT_FALSE(HyperLogLog::Create(3).ok());
  EXPECT_FALSE(HyperLogLog::Create(19).ok());
  EXPECT_TRUE(HyperLogLog::Create(4).ok());
  EXPECT_TRUE(HyperLogLog::Create(18).ok());
  EXPECT_EQ(HyperLogLog::Create(10)->num_registers(), 1024u);
}

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  auto sketch = HyperLogLog::Create(12).value();
  EXPECT_TRUE(sketch.empty());
  EXPECT_NEAR(sketch.Estimate(), 0.0, 1e-9);
}

TEST(HyperLogLogTest, SmallExactRange) {
  // Linear counting keeps small cardinalities near-exact.
  auto sketch = HyperLogLog::Create(12).value();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) sketch.Update(rng.Next());
  EXPECT_FALSE(sketch.empty());
  EXPECT_NEAR(sketch.Estimate(), 100.0, 5.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  auto sketch = HyperLogLog::Create(12).value();
  for (int round = 0; round < 50; ++round) {
    for (uint64_t v = 0; v < 200; ++v) sketch.Update(Mix64(v));
  }
  EXPECT_NEAR(sketch.Estimate(), 200.0, 10.0);
}

// Relative error sweep: the standard error of HLL at precision p is
// ~1.04 / sqrt(2^p); assert within 5 standard errors across magnitudes.
class HllAccuracy
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(HllAccuracy, WithinFiveStandardErrors) {
  const auto [precision, cardinality] = GetParam();
  auto sketch = HyperLogLog::Create(precision).value();
  Rng rng(17 + precision);
  for (uint64_t i = 0; i < cardinality; ++i) sketch.Update(rng.Next());
  const double error = 1.04 / std::sqrt(std::ldexp(1.0, precision));
  EXPECT_NEAR(sketch.Estimate(), static_cast<double>(cardinality),
              5.0 * error * static_cast<double>(cardinality) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HllAccuracy,
    ::testing::Combine(::testing::Values(10, 12, 14),
                       ::testing::Values(uint64_t{1000}, uint64_t{10000},
                                         uint64_t{100000},
                                         uint64_t{1000000})));

TEST(HyperLogLogTest, MergeEqualsUnion) {
  auto a = HyperLogLog::Create(12).value();
  auto b = HyperLogLog::Create(12).value();
  auto both = HyperLogLog::Create(12).value();
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t value = rng.Next();
    if (i % 2 == 0) a.Update(value);
    if (i % 3 == 0) b.Update(value);
    if (i % 2 == 0 || i % 3 == 0) both.Update(value);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), both.Estimate());
}

TEST(HyperLogLogTest, MergePrecisionMismatch) {
  auto a = HyperLogLog::Create(10).value();
  auto b = HyperLogLog::Create(12).value();
  EXPECT_TRUE(a.Merge(b).IsInvalidArgument());
}

TEST(HyperLogLogTest, StringUpdates) {
  auto sketch = HyperLogLog::Create(12).value();
  for (int i = 0; i < 1000; ++i) {
    sketch.UpdateString("value-" + std::to_string(i));
  }
  EXPECT_NEAR(sketch.Estimate(), 1000.0, 120.0);
}

TEST(HyperLogLogTest, SerializationRoundTrip) {
  auto sketch = HyperLogLog::Create(10).value();
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) sketch.Update(rng.Next());
  std::string image;
  sketch.SerializeTo(&image);
  auto restored = HyperLogLog::Deserialize(image);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->Estimate(), sketch.Estimate());
}

TEST(HyperLogLogTest, DeserializeRejectsCorruption) {
  auto sketch = HyperLogLog::Create(6).value();
  sketch.Update(123);
  std::string image;
  sketch.SerializeTo(&image);
  EXPECT_FALSE(HyperLogLog::Deserialize("").ok());
  EXPECT_FALSE(
      HyperLogLog::Deserialize(std::string_view(image).substr(0, 10)).ok());
  std::string bad_precision = image;
  bad_precision[0] = 25;
  EXPECT_FALSE(HyperLogLog::Deserialize(bad_precision).ok());
  std::string bad_register = image;
  bad_register[1] = 70;  // rank > 64 - p + 1
  EXPECT_FALSE(HyperLogLog::Deserialize(bad_register).ok());
}

// ---------------------------------------------------------------- BottomK

TEST(BottomKTest, CreateValidation) {
  EXPECT_FALSE(BottomK::Create(0).ok());
  EXPECT_TRUE(BottomK::Create(1).ok());
  EXPECT_EQ(BottomK::Create(64)->k(), 64);
}

TEST(BottomKTest, KeepsKSmallestDistinct) {
  auto sketch = BottomK::Create(4).value();
  for (uint64_t value : {50u, 10u, 30u, 10u, 20u, 40u, 5u}) {
    sketch.Update(value);
  }
  EXPECT_TRUE(sketch.saturated());
  EXPECT_EQ(sketch.hashes(), (std::vector<uint64_t>{5, 10, 20, 30}));
}

TEST(BottomKTest, ExactBelowSaturation) {
  auto sketch = BottomK::Create(128).value();
  for (uint64_t v = 0; v < 57; ++v) sketch.Update(Mix64(v));
  EXPECT_FALSE(sketch.saturated());
  EXPECT_DOUBLE_EQ(sketch.EstimateCardinality(), 57.0);
}

class BottomKAccuracy
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(BottomKAccuracy, CardinalityWithinFiveSigma) {
  const auto [k, cardinality] = GetParam();
  auto sketch = BottomK::Create(k).value();
  Rng rng(29 + k);
  for (uint64_t i = 0; i < cardinality; ++i) sketch.Update(rng.Next());
  // Relative standard error of the bottom-k estimator is ~1/sqrt(k - 2).
  const double sigma = 1.0 / std::sqrt(static_cast<double>(k - 2));
  EXPECT_NEAR(sketch.EstimateCardinality(), static_cast<double>(cardinality),
              5.0 * sigma * static_cast<double>(cardinality));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BottomKAccuracy,
    ::testing::Combine(::testing::Values(64, 256, 1024),
                       ::testing::Values(uint64_t{5000}, uint64_t{50000},
                                         uint64_t{500000})));

TEST(BottomKTest, JaccardEstimate) {
  // Two sets with a planted 50% overlap.
  auto a = BottomK::Create(256).value();
  auto b = BottomK::Create(256).value();
  for (uint64_t v = 0; v < 20000; ++v) a.Update(Mix64(v));
  for (uint64_t v = 10000; v < 30000; ++v) b.Update(Mix64(v));
  // |A ∩ B| = 10000, |A ∪ B| = 30000 -> J = 1/3.
  auto jaccard = a.EstimateJaccard(b);
  ASSERT_TRUE(jaccard.ok());
  EXPECT_NEAR(*jaccard, 1.0 / 3.0, 0.12);
}

TEST(BottomKTest, ContainmentEstimate) {
  // A ⊂ B: containment of A in B is 1.
  auto a = BottomK::Create(256).value();
  auto b = BottomK::Create(256).value();
  for (uint64_t v = 0; v < 3000; ++v) a.Update(Mix64(v));
  for (uint64_t v = 0; v < 30000; ++v) b.Update(Mix64(v));
  auto containment = a.EstimateContainmentIn(b);
  ASSERT_TRUE(containment.ok());
  EXPECT_GT(*containment, 0.8);
  // And B is only ~10% contained in A.
  auto reverse = b.EstimateContainmentIn(a);
  ASSERT_TRUE(reverse.ok());
  EXPECT_LT(*reverse, 0.3);
}

TEST(BottomKTest, JaccardIdenticalAndDisjoint) {
  auto a = BottomK::Create(64).value();
  auto b = BottomK::Create(64).value();
  auto c = BottomK::Create(64).value();
  for (uint64_t v = 0; v < 1000; ++v) {
    a.Update(Mix64(v));
    b.Update(Mix64(v));
    c.Update(Mix64(v + 1000000));
  }
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b).value(), 1.0);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(c).value(), 0.0);
}

TEST(BottomKTest, KMismatchRejected) {
  auto a = BottomK::Create(64).value();
  auto b = BottomK::Create(128).value();
  EXPECT_FALSE(a.EstimateJaccard(b).ok());
  EXPECT_TRUE(a.Merge(b).IsInvalidArgument());
}

TEST(BottomKTest, MergeEqualsUnionSketch) {
  auto a = BottomK::Create(128).value();
  auto b = BottomK::Create(128).value();
  auto both = BottomK::Create(128).value();
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t value = rng.Next();
    if (i % 2 == 0) a.Update(value);
    if (i % 3 == 0) b.Update(value);
    if (i % 2 == 0 || i % 3 == 0) both.Update(value);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.hashes(), both.hashes());
}

TEST(BottomKTest, EmptyEdgeCases) {
  auto a = BottomK::Create(16).value();
  auto b = BottomK::Create(16).value();
  EXPECT_DOUBLE_EQ(a.EstimateCardinality(), 0.0);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b).value(), 1.0);  // both empty
  b.Update(7);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b).value(), 0.0);
  EXPECT_DOUBLE_EQ(a.EstimateContainmentIn(b).value(), 0.0);
}

TEST(BottomKTest, SerializationRoundTrip) {
  auto sketch = BottomK::Create(64).value();
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) sketch.Update(rng.Next());
  std::string image;
  sketch.SerializeTo(&image);
  auto restored = BottomK::Deserialize(image);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->hashes(), sketch.hashes());
  EXPECT_EQ(restored->k(), sketch.k());
}

TEST(BottomKTest, DeserializeRejectsCorruption) {
  auto sketch = BottomK::Create(8).value();
  for (uint64_t v = 0; v < 20; ++v) sketch.Update(Mix64(v));
  std::string image;
  sketch.SerializeTo(&image);
  EXPECT_FALSE(BottomK::Deserialize("").ok());
  EXPECT_FALSE(
      BottomK::Deserialize(std::string_view(image).substr(0, 5)).ok());
  std::string trailing = image + "x";
  EXPECT_FALSE(BottomK::Deserialize(trailing).ok());
  // Break the ascending-order invariant.
  std::string swapped = image;
  std::swap_ranges(swapped.end() - 8, swapped.end(), swapped.end() - 16);
  EXPECT_FALSE(BottomK::Deserialize(swapped).ok());
}

}  // namespace
}  // namespace lshensemble
