// The sharded serving layer's defining property is that sharding is
// invisible in the results: the scatter/gather BatchQuery and the lockstep
// BatchSearch must return exactly what the unsharded engine returns on the
// same corpus, for every shard count, through the whole lifecycle
// (unflushed delta, tombstones, rebuilds). These tests assert that
// equivalence property, the worker-dispatch guard, and the concurrency
// contract (readers concurrent with inserts).

#include "core/sharded_ensemble.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/dynamic_ensemble.h"
#include "core/topk.h"
#include "data/corpus.h"
#include "data/sketcher.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace lshensemble {
namespace {

constexpr int kNumHashes = 128;

ShardedEnsembleOptions ShardOptions(size_t num_shards) {
  ShardedEnsembleOptions options;
  options.base.base.num_partitions = 4;
  options.base.base.num_hashes = kNumHashes;
  options.base.base.tree_depth = 4;
  options.base.min_delta_for_rebuild = 1 << 30;  // tests flush explicitly
  options.num_shards = num_shards;
  return options;
}

class ShardedEnsembleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    family_ = HashFamily::Create(kNumHashes, 21).value();
    CorpusGenOptions gen;
    gen.num_domains = 400;
    gen.seed = 917;
    corpus_ = CorpusGenerator(gen).Generate().value();
    sketches_.reserve(corpus_->size());
    for (size_t i = 0; i < corpus_->size(); ++i) {
      sketches_.push_back(
          MinHash::FromValues(family_, corpus_->domain(i).values));
    }
  }

  Status InsertDomain(ShardedEnsemble& index, size_t i) const {
    const Domain& domain = corpus_->domain(i);
    return index.Insert(domain.id, domain.size(), sketches_[i]);
  }

  Status InsertDomain(DynamicLshEnsemble& index, size_t i) const {
    const Domain& domain = corpus_->domain(i);
    return index.Insert(domain.id, domain.size(), sketches_[i]);
  }

  /// Query specs over a sample of corpus domains at mixed thresholds.
  std::vector<QuerySpec> SampleSpecs(size_t count) const {
    std::vector<QuerySpec> specs;
    specs.reserve(count);
    for (size_t j = 0; j < count; ++j) {
      const size_t pick = (j * 37) % corpus_->size();
      const double t_star = (j % 3 == 0) ? 0.3 : 0.6;
      specs.push_back(
          QuerySpec{&sketches_[pick], corpus_->domain(pick).size(), t_star});
    }
    return specs;
  }

  std::shared_ptr<const HashFamily> family_;
  std::optional<Corpus> corpus_;
  std::vector<MinHash> sketches_;
};

TEST_F(ShardedEnsembleTest, CreateValidation) {
  EXPECT_FALSE(ShardedEnsemble::Create(ShardOptions(2), nullptr).ok());
  ShardedEnsembleOptions bad = ShardOptions(0);
  EXPECT_FALSE(ShardedEnsemble::Create(bad, family_).ok());
  bad = ShardOptions(2);
  bad.base.base.num_hashes = 64;  // mismatches the 128-hash family
  EXPECT_FALSE(ShardedEnsemble::Create(bad, family_).ok());
  EXPECT_TRUE(ShardedEnsemble::Create(ShardOptions(2), family_).ok());
}

TEST_F(ShardedEnsembleTest, ShardOfIsStableAndInRange) {
  auto index = ShardedEnsemble::Create(ShardOptions(4), family_).value();
  for (uint64_t id = 1; id < 100; ++id) {
    const size_t s = index.ShardOf(id);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, index.ShardOf(id));
  }
}

// The core property: through every lifecycle stage — pure delta, flushed,
// mid-batch delta on top of a build, tombstones, re-inserts — the sharded
// candidates equal the unsharded engine's for every shard count.
TEST_F(ShardedEnsembleTest, BatchQueryMatchesUnshardedThroughLifecycle) {
  const std::vector<QuerySpec> specs = SampleSpecs(48);

  DynamicEnsembleOptions reference_options = ShardOptions(1).base;
  // Restore the pool flags the sharded layer turns off per shard: results
  // must not depend on them.
  reference_options.base.parallel_build = true;
  reference_options.base.parallel_query = true;

  for (const size_t num_shards : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    auto reference =
        DynamicLshEnsemble::Create(reference_options, family_).value();
    auto sharded =
        ShardedEnsemble::Create(ShardOptions(num_shards), family_).value();

    auto expect_equal = [&](const char* stage) {
      SCOPED_TRACE(stage);
      std::vector<std::vector<uint64_t>> expected(specs.size());
      std::vector<std::vector<uint64_t>> actual(specs.size());
      QueryContext ctx;
      ASSERT_TRUE(reference.BatchQuery(specs, &ctx, expected.data()).ok());
      ASSERT_TRUE(sharded.BatchQuery(specs, actual.data()).ok());
      for (auto& out : expected) std::sort(out.begin(), out.end());
      for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(actual[i], expected[i]) << "query " << i;
      }
    };

    // Stage 1: everything in the delta, nothing built.
    for (size_t i = 0; i < corpus_->size() / 2; ++i) {
      ASSERT_TRUE(InsertDomain(reference, i).ok());
      ASSERT_TRUE(InsertDomain(sharded, i).ok());
    }
    expect_equal("pure delta");

    // Stage 2: flushed (global partitioning pinned across shards).
    ASSERT_TRUE(reference.Flush().ok());
    ASSERT_TRUE(sharded.Flush().ok());
    EXPECT_EQ(sharded.delta_size(), 0u);
    expect_equal("flushed");

    // Stage 3: a fresh delta on top of the build.
    for (size_t i = corpus_->size() / 2; i < corpus_->size(); ++i) {
      ASSERT_TRUE(InsertDomain(reference, i).ok());
      ASSERT_TRUE(InsertDomain(sharded, i).ok());
    }
    expect_equal("mid-batch delta");

    // Stage 4: tombstoned (indexed) and dropped (delta) removals, plus a
    // re-insert of a removed indexed id.
    for (size_t i = 3; i < corpus_->size(); i += 29) {
      ASSERT_TRUE(reference.Remove(corpus_->domain(i).id).ok());
      ASSERT_TRUE(sharded.Remove(corpus_->domain(i).id).ok());
    }
    ASSERT_TRUE(InsertDomain(reference, 3).ok());
    ASSERT_TRUE(InsertDomain(sharded, 3).ok());
    EXPECT_EQ(sharded.tombstone_count(), reference.tombstone_count());
    expect_equal("tombstones + re-insert");

    // Stage 5: rebuilt clean again.
    ASSERT_TRUE(reference.Flush().ok());
    ASSERT_TRUE(sharded.Flush().ok());
    EXPECT_EQ(sharded.tombstone_count(), 0u);
    expect_equal("re-flushed");

    EXPECT_EQ(sharded.size(), reference.size());
  }
}

// Ranked top-k output must be byte-identical to the unsharded searcher:
// the cross-shard k-th-best merge retires every query at the same round
// with the same results.
TEST_F(ShardedEnsembleTest, BatchSearchMatchesUnshardedTopK) {
  DynamicEnsembleOptions reference_options = ShardOptions(1).base;
  auto reference =
      DynamicLshEnsemble::Create(reference_options, family_).value();
  auto sharded = ShardedEnsemble::Create(ShardOptions(3), family_).value();

  for (size_t i = 0; i < corpus_->size(); ++i) {
    ASSERT_TRUE(InsertDomain(reference, i).ok());
    ASSERT_TRUE(InsertDomain(sharded, i).ok());
  }
  // Flush 90%, keep the rest as delta, and tombstone a few.
  ASSERT_TRUE(reference.Flush().ok());
  ASSERT_TRUE(sharded.Flush().ok());
  for (size_t i = corpus_->size() - 20; i < corpus_->size(); ++i) {
    ASSERT_TRUE(reference.Remove(corpus_->domain(i).id).ok());
    ASSERT_TRUE(sharded.Remove(corpus_->domain(i).id).ok());
    ASSERT_TRUE(InsertDomain(reference, i).ok());
    ASSERT_TRUE(InsertDomain(sharded, i).ok());
  }

  std::vector<TopKQuery> queries;
  for (size_t j = 0; j < 24; ++j) {
    const size_t pick = (j * 53) % corpus_->size();
    queries.push_back(
        TopKQuery{&sketches_[pick], corpus_->domain(pick).size()});
  }
  for (const size_t k : {size_t{1}, size_t{5}, size_t{10}}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    std::vector<std::vector<TopKResult>> expected(queries.size());
    std::vector<std::vector<TopKResult>> actual(queries.size());
    QueryContext ctx;
    const TopKSearcher searcher(&reference);
    ASSERT_TRUE(searcher.BatchSearch(queries, k, &ctx, expected.data()).ok());
    ASSERT_TRUE(sharded.BatchSearch(queries, k, actual.data()).ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]) << "query " << i;
    }
  }
}

// The global rebuild trigger mirrors the unsharded policy on global
// counts: with the same insert sequence both indexes flush at the same
// step.
TEST_F(ShardedEnsembleTest, AutoRebuildMatchesUnshardedSchedule) {
  DynamicEnsembleOptions reference_options = ShardOptions(1).base;
  reference_options.min_delta_for_rebuild = 32;
  reference_options.rebuild_fraction = 0.25;
  ShardedEnsembleOptions sharded_options = ShardOptions(4);
  sharded_options.base.min_delta_for_rebuild = 32;
  sharded_options.base.rebuild_fraction = 0.25;

  auto reference =
      DynamicLshEnsemble::Create(reference_options, family_).value();
  auto sharded = ShardedEnsemble::Create(sharded_options, family_).value();
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(InsertDomain(reference, i).ok());
    ASSERT_TRUE(InsertDomain(sharded, i).ok());
    ASSERT_EQ(sharded.indexed_size(), reference.indexed_size())
        << "after insert " << i;
    ASSERT_EQ(sharded.delta_size(), reference.delta_size())
        << "after insert " << i;
  }
  EXPECT_GT(sharded.indexed_size(), 0u);  // at least one auto rebuild fired
}

TEST_F(ShardedEnsembleTest, EmptyAndSparseShards) {
  // More shards than domains: most shards stay empty through the whole
  // lifecycle and must contribute nothing.
  auto index = ShardedEnsemble::Create(ShardOptions(8), family_).value();
  for (size_t i = 0; i < 3; ++i) ASSERT_TRUE(InsertDomain(index, i).ok());
  ASSERT_TRUE(index.Flush().ok());
  EXPECT_EQ(index.size(), 3u);

  std::vector<QuerySpec> specs = SampleSpecs(4);
  std::vector<std::vector<uint64_t>> outs(specs.size());
  ASSERT_TRUE(index.BatchQuery(specs, outs.data()).ok());

  // Fully empty index answers cleanly too.
  auto empty = ShardedEnsemble::Create(ShardOptions(3), family_).value();
  ASSERT_TRUE(empty.Flush().ok());
  ASSERT_TRUE(empty.BatchQuery(specs, outs.data()).ok());
  for (const auto& out : outs) EXPECT_TRUE(out.empty());
}

TEST_F(ShardedEnsembleTest, SideCarLookups) {
  auto index = ShardedEnsemble::Create(ShardOptions(4), family_).value();
  ASSERT_TRUE(InsertDomain(index, 5).ok());
  const Domain& domain = corpus_->domain(5);
  EXPECT_EQ(index.SizeOf(domain.id), domain.size());
  ASSERT_NE(index.SignatureOf(domain.id), nullptr);
  EXPECT_EQ(index.SizeOf(999999), 0u);
  EXPECT_EQ(index.SignatureOf(999999), nullptr);
  ASSERT_TRUE(index.Remove(domain.id).ok());
  EXPECT_EQ(index.SizeOf(domain.id), 0u);
}

TEST_F(ShardedEnsembleTest, QueryValidation) {
  auto index = ShardedEnsemble::Create(ShardOptions(2), family_).value();
  ASSERT_TRUE(InsertDomain(index, 0).ok());
  std::vector<QuerySpec> specs = SampleSpecs(2);
  EXPECT_FALSE(index.BatchQuery(specs, nullptr).ok());
  specs[1].query = nullptr;
  std::vector<std::vector<uint64_t>> outs(specs.size());
  EXPECT_FALSE(index.BatchQuery(specs, outs.data()).ok());
  EXPECT_TRUE(index.BatchQuery({}, outs.data()).ok());
}

TEST_F(ShardedEnsembleTest, AddCorpusFeedsShards) {
  auto index = ShardedEnsemble::Create(ShardOptions(4), family_).value();
  const ParallelSketcher sketcher(family_);
  ASSERT_TRUE(AddCorpus(*corpus_, sketcher, &index).ok());
  EXPECT_EQ(index.size(), corpus_->size());
  ASSERT_TRUE(index.Flush().ok());

  // Every ingested domain must find itself at full containment.
  for (size_t i = 0; i < 10; ++i) {
    std::vector<QuerySpec> spec = {
        QuerySpec{&sketches_[i], corpus_->domain(i).size(), 0.9}};
    std::vector<uint64_t> out;
    ASSERT_TRUE(index.BatchQuery(spec, &out).ok());
    EXPECT_TRUE(std::binary_search(out.begin(), out.end(),
                                   corpus_->domain(i).id));
  }
}

// The submit-from-worker guard: a scatter issued from inside a pool
// worker must fail loudly instead of risking a pool deadlock.
TEST_F(ShardedEnsembleTest, ShardScatterFromPoolWorkerIsRejected) {
  auto index = ShardedEnsemble::Create(ShardOptions(2), family_).value();
  ASSERT_TRUE(InsertDomain(index, 0).ok());
  std::vector<QuerySpec> specs = SampleSpecs(2);
  std::vector<std::vector<uint64_t>> outs(specs.size());

  Status query_status, search_status;
  ThreadPool::Shared()
      .Submit([&] {
        query_status = index.BatchQuery(specs, outs.data());
        std::vector<TopKQuery> queries = {TopKQuery{specs[0].query, 10}};
        std::vector<TopKResult> ranked;
        search_status = index.BatchSearch(queries, 3, &ranked);
      })
      .wait();
  EXPECT_EQ(query_status.code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(search_status.code(), Status::Code::kFailedPrecondition);

  // From the calling thread the same calls succeed.
  EXPECT_TRUE(index.BatchQuery(specs, outs.data()).ok());
}

// Concurrency contract under TSan: readers run concurrently with inserts
// and removals; per-shard locks serialize them. (Scoped into the TSan CI
// job via the Shard* test-name filter.)
TEST(ShardedConcurrencyTest, ConcurrentReadersWithConcurrentInserts) {
  constexpr int kHashes = 64;
  auto family = HashFamily::Create(kHashes, 7).value();
  CorpusGenOptions gen;
  gen.num_domains = 300;
  gen.seed = 31;
  const Corpus corpus = CorpusGenerator(gen).Generate().value();
  std::vector<MinHash> sketches;
  sketches.reserve(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    sketches.push_back(MinHash::FromValues(family, corpus.domain(i).values));
  }

  ShardedEnsembleOptions options;
  options.base.base.num_partitions = 4;
  options.base.base.num_hashes = kHashes;
  options.base.base.tree_depth = 4;
  options.base.min_delta_for_rebuild = 64;  // let auto-rebuilds fire mid-run
  options.num_shards = 4;
  auto index = ShardedEnsemble::Create(options, family).value();

  // Seed half the corpus and build, so readers see indexed + delta.
  const size_t seeded = corpus.size() / 2;
  for (size_t i = 0; i < seeded; ++i) {
    ASSERT_TRUE(
        index.Insert(corpus.domain(i).id, corpus.domain(i).size(), sketches[i])
            .ok());
  }
  ASSERT_TRUE(index.Flush().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::vector<QuerySpec> specs;
      for (size_t j = 0; j < 16; ++j) {
        const size_t pick = (static_cast<size_t>(r) * 101 + j * 13) % seeded;
        specs.push_back(
            QuerySpec{&sketches[pick], corpus.domain(pick).size(), 0.5});
      }
      std::vector<std::vector<uint64_t>> outs(specs.size());
      while (!stop.load(std::memory_order_relaxed)) {
        if (!index.BatchQuery(specs, outs.data()).ok()) {
          reader_failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // Writer: insert the other half (auto-rebuilds included), remove a few.
  for (size_t i = seeded; i < corpus.size(); ++i) {
    ASSERT_TRUE(
        index.Insert(corpus.domain(i).id, corpus.domain(i).size(), sketches[i])
            .ok());
    if (i % 17 == 0) {
      ASSERT_TRUE(index.Remove(corpus.domain(i - seeded).id).ok());
    }
  }
  ASSERT_TRUE(index.Flush().ok());
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(index.size(), 0u);
}

// The probe-filter tier must be invisible in results: at every shard
// count and every lifecycle stage (pure delta, flushed, mid-batch delta,
// tombstones, re-flushed), a filtered index returns byte-identical
// candidates to one built with filters off — for native queries and for
// foreign queries (drawn from a disjoint corpus, the case where pruning
// actually fires).
TEST_F(ShardedEnsembleTest, FilterPruningKeepsResultsByteIdentical) {
  // Foreign query sketches: a different generator seed yields domains the
  // index has never seen, so most probes miss every shard's filter.
  CorpusGenOptions foreign_gen;
  foreign_gen.num_domains = 32;
  foreign_gen.seed = 5309;
  const Corpus foreign = CorpusGenerator(foreign_gen).Generate().value();
  std::vector<MinHash> foreign_sketches;
  foreign_sketches.reserve(foreign.size());
  for (size_t i = 0; i < foreign.size(); ++i) {
    foreign_sketches.push_back(
        MinHash::FromValues(family_, foreign.domain(i).values));
  }

  std::vector<QuerySpec> specs = SampleSpecs(24);
  for (size_t i = 0; i < foreign.size(); ++i) {
    specs.push_back(QuerySpec{&foreign_sketches[i], foreign.domain(i).size(),
                              (i % 2 == 0) ? 0.5 : 0.8});
  }

  for (const size_t num_shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    ShardedEnsembleOptions unfiltered_options = ShardOptions(num_shards);
    unfiltered_options.base.base.build_probe_filter = false;
    auto filtered = ShardedEnsemble::Create(ShardOptions(num_shards),
                                            family_).value();
    auto unfiltered =
        ShardedEnsemble::Create(unfiltered_options, family_).value();

    auto expect_equal = [&](const char* stage) {
      SCOPED_TRACE(stage);
      std::vector<std::vector<uint64_t>> with(specs.size());
      std::vector<std::vector<uint64_t>> without(specs.size());
      ASSERT_TRUE(filtered.BatchQuery(specs, with.data()).ok());
      ASSERT_TRUE(unfiltered.BatchQuery(specs, without.data()).ok());
      for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(with[i], without[i]) << "query " << i;
      }
    };

    for (size_t i = 0; i < corpus_->size() / 2; ++i) {
      ASSERT_TRUE(InsertDomain(filtered, i).ok());
      ASSERT_TRUE(InsertDomain(unfiltered, i).ok());
    }
    expect_equal("pure delta");

    ASSERT_TRUE(filtered.Flush().ok());
    ASSERT_TRUE(unfiltered.Flush().ok());
    expect_equal("flushed");

    for (size_t i = corpus_->size() / 2; i < corpus_->size(); ++i) {
      ASSERT_TRUE(InsertDomain(filtered, i).ok());
      ASSERT_TRUE(InsertDomain(unfiltered, i).ok());
    }
    expect_equal("mid-batch delta");

    for (size_t i = 3; i < corpus_->size(); i += 29) {
      ASSERT_TRUE(filtered.Remove(corpus_->domain(i).id).ok());
      ASSERT_TRUE(unfiltered.Remove(corpus_->domain(i).id).ok());
    }
    expect_equal("tombstones");

    ASSERT_TRUE(filtered.Flush().ok());
    ASSERT_TRUE(unfiltered.Flush().ok());
    expect_equal("re-flushed");
  }
}

// Filtered serving under concurrent mutation: readers run filtered batch
// queries non-stop while a writer inserts, removes, and flushes (every
// flush rebuilds the per-shard filters). TSan runs this (the CI regex
// matches "Filter"); the assertion here is no failures and no data races.
TEST(ShardedFilterConcurrencyTest, QueriesRaceInsertRemoveFlush) {
  constexpr int kHashes = 64;
  auto family = HashFamily::Create(kHashes, 7).value();
  CorpusGenOptions gen;
  gen.num_domains = 240;
  gen.seed = 47;
  const Corpus corpus = CorpusGenerator(gen).Generate().value();
  std::vector<MinHash> sketches;
  sketches.reserve(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    sketches.push_back(MinHash::FromValues(family, corpus.domain(i).values));
  }

  ShardedEnsembleOptions options;
  options.base.base.num_partitions = 4;
  options.base.base.num_hashes = kHashes;
  options.base.base.tree_depth = 4;
  options.base.min_delta_for_rebuild = 1 << 30;  // flushes are explicit
  options.num_shards = 4;
  auto index = ShardedEnsemble::Create(options, family).value();

  const size_t seeded = corpus.size() / 2;
  for (size_t i = 0; i < seeded; ++i) {
    ASSERT_TRUE(
        index.Insert(corpus.domain(i).id, corpus.domain(i).size(), sketches[i])
            .ok());
  }
  ASSERT_TRUE(index.Flush().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::vector<QuerySpec> specs;
      for (size_t j = 0; j < 12; ++j) {
        const size_t pick =
            (static_cast<size_t>(r) * 71 + j * 19) % corpus.size();
        specs.push_back(
            QuerySpec{&sketches[pick], corpus.domain(pick).size(), 0.5});
      }
      std::vector<std::vector<uint64_t>> outs(specs.size());
      while (!stop.load(std::memory_order_relaxed)) {
        if (!index.BatchQuery(specs, outs.data()).ok()) {
          reader_failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // Writer: grow the delta, tombstone indexed ids, and flush repeatedly —
  // each flush swaps in freshly built per-shard filters under the shard
  // write locks while the readers keep probing.
  for (size_t i = seeded; i < corpus.size(); ++i) {
    ASSERT_TRUE(
        index.Insert(corpus.domain(i).id, corpus.domain(i).size(), sketches[i])
            .ok());
    if (i % 13 == 0) {
      ASSERT_TRUE(index.Remove(corpus.domain(i - seeded).id).ok());
    }
    if (i % 30 == 0) {
      ASSERT_TRUE(index.Flush().ok());
    }
  }
  ASSERT_TRUE(index.Flush().ok());
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(index.size(), 0u);
}

}  // namespace
}  // namespace lshensemble
