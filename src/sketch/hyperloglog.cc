#include "sketch/hyperloglog.h"

#include <bit>
#include <cmath>

#include "util/hashing.h"

namespace lshensemble {

namespace {

// Bias-correction constant alpha_m (Flajolet et al., Fig. 3).
double Alpha(size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

Result<HyperLogLog> HyperLogLog::Create(int precision) {
  if (precision < 4 || precision > 18) {
    return Status::InvalidArgument("precision must be in [4, 18]");
  }
  return HyperLogLog(precision);
}

void HyperLogLog::Update(uint64_t hash) {
  const size_t index = hash >> (64 - precision_);
  // Rank = leading zeros of the remaining bits + 1. Shifting left by the
  // precision leaves 64 - p significant bits; a zero remainder gets the
  // maximum rank 64 - p + 1.
  const uint64_t rest = hash << precision_;
  const int rank =
      rest == 0 ? 64 - precision_ + 1 : std::countl_zero(rest) + 1;
  if (registers_[index] < rank) {
    registers_[index] = static_cast<uint8_t>(rank);
  }
}

void HyperLogLog::UpdateString(std::string_view value) {
  Update(HashString(value));
}

double HyperLogLog::Estimate() const {
  const auto m = static_cast<double>(registers_.size());
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(reg));
    zeros += reg == 0 ? 1 : 0;
  }
  const double raw = Alpha(registers_.size()) * m * m / sum;
  // Small-range correction: linear counting while any register is empty
  // and the raw estimate is below 2.5m.
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

bool HyperLogLog::empty() const {
  for (uint8_t reg : registers_) {
    if (reg != 0) return false;
  }
  return true;
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("precision mismatch in HyperLogLog merge");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    if (registers_[i] < other.registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
  return Status::OK();
}

void HyperLogLog::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(precision_));
  out->append(reinterpret_cast<const char*>(registers_.data()),
              registers_.size());
}

Result<HyperLogLog> HyperLogLog::Deserialize(std::string_view data) {
  if (data.empty()) {
    return Status::Corruption("HyperLogLog image: empty");
  }
  const int precision = static_cast<uint8_t>(data[0]);
  auto sketch = Create(precision);
  if (!sketch.ok()) {
    return Status::Corruption("HyperLogLog image: bad precision");
  }
  if (data.size() != 1 + sketch->registers_.size()) {
    return Status::Corruption("HyperLogLog image: size mismatch");
  }
  const int max_rank = 64 - precision + 1;
  for (size_t i = 0; i < sketch->registers_.size(); ++i) {
    const auto rank = static_cast<uint8_t>(data[1 + i]);
    if (rank > max_rank) {
      return Status::Corruption("HyperLogLog image: register out of range");
    }
    sketch->registers_[i] = rank;
  }
  return sketch;
}

}  // namespace lshensemble
