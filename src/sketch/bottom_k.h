// Bottom-k sketch (Cohen & Kaplan, PODC'07 — the paper's reference [10]
// for constant-time query-size estimation in Algorithm 1).
//
// A bottom-k sketch keeps the k smallest 64-bit hash values of a set.
// Because the hash is shared across sketches, bottom-k sketches are
// coordinated samples: the union's sketch is computable from two sketches
// (merge the candidate minima, keep the k smallest), cardinality follows
// from the k-th order statistic, and Jaccard similarity from the overlap
// of the union's sketch with both inputs — which also yields a
// containment estimate through the inclusion-exclusion conversion.

#ifndef LSHENSEMBLE_SKETCH_BOTTOM_K_H_
#define LSHENSEMBLE_SKETCH_BOTTOM_K_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief A bottom-k sketch of a set of 64-bit hashed values.
class BottomK {
 public:
  /// \param k sketch capacity; must be >= 1.
  static Result<BottomK> Create(int k);

  int k() const { return k_; }
  /// Number of hashes currently held (< k until the set has k distinct
  /// values).
  size_t size() const { return hashes_.size(); }
  bool empty() const { return hashes_.empty(); }
  /// True once the sketch holds k hashes (the estimators are then live).
  bool saturated() const { return hashes_.size() == static_cast<size_t>(k_); }

  /// Add one pre-hashed value (duplicates are ignored).
  void Update(uint64_t hash);
  /// Hash and add one raw string value.
  void UpdateString(std::string_view value);

  /// \brief Estimated distinct-value count: exact (the stored hash count)
  /// until saturation, then (k - 1) / normalized k-th minimum.
  double EstimateCardinality() const;

  /// \brief Estimated Jaccard similarity with `other` (coordinated-sample
  /// estimator over the union's bottom-k). Both sketches must share k.
  Result<double> EstimateJaccard(const BottomK& other) const;

  /// \brief Estimated containment |this ∩ other| / |this|, derived from
  /// the Jaccard estimate and the two cardinality estimates (Eq. 6).
  Result<double> EstimateContainmentIn(const BottomK& other) const;

  /// \brief Make this the sketch of the union of both sets.
  Status Merge(const BottomK& other);

  /// The stored hashes, ascending.
  const std::vector<uint64_t>& hashes() const { return hashes_; }

  /// \brief Binary serialization: [k:varint][count:varint][hashes...].
  void SerializeTo(std::string* out) const;
  static Result<BottomK> Deserialize(std::string_view data);

 private:
  explicit BottomK(int k) : k_(k) {}

  int k_;
  std::vector<uint64_t> hashes_;  // ascending, at most k_
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_SKETCH_BOTTOM_K_H_
