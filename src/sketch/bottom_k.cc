#include "sketch/bottom_k.h"

#include <algorithm>
#include <cmath>

#include "io/coding.h"
#include "util/hashing.h"

namespace lshensemble {

Result<BottomK> BottomK::Create(int k) {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  return BottomK(k);
}

void BottomK::Update(uint64_t hash) {
  const auto it = std::lower_bound(hashes_.begin(), hashes_.end(), hash);
  if (it != hashes_.end() && *it == hash) return;  // duplicate value
  if (hashes_.size() < static_cast<size_t>(k_)) {
    hashes_.insert(it, hash);
  } else if (hash < hashes_.back()) {
    hashes_.pop_back();
    hashes_.insert(it, hash);
  }
}

void BottomK::UpdateString(std::string_view value) {
  Update(HashString(value));
}

double BottomK::EstimateCardinality() const {
  if (!saturated()) {
    // Fewer than k distinct values seen: the sketch is the exact hash set.
    return static_cast<double>(hashes_.size());
  }
  // (k - 1) / U_(k), the k-th order statistic of k uniform draws.
  const double kth = static_cast<double>(hashes_.back()) /
                     std::ldexp(1.0, 64);  // normalize to (0, 1)
  if (kth <= 0.0) return static_cast<double>(k_);
  return static_cast<double>(k_ - 1) / kth;
}

Result<double> BottomK::EstimateJaccard(const BottomK& other) const {
  if (other.k_ != k_) {
    return Status::InvalidArgument("k mismatch in bottom-k comparison");
  }
  if (empty() && other.empty()) return 1.0;
  if (empty() || other.empty()) return 0.0;

  // Bottom-k of the union (coordinated by the shared hash function).
  std::vector<uint64_t> unioned;
  unioned.reserve(hashes_.size() + other.hashes_.size());
  std::set_union(hashes_.begin(), hashes_.end(), other.hashes_.begin(),
                 other.hashes_.end(), std::back_inserter(unioned));
  if (unioned.size() > static_cast<size_t>(k_)) {
    unioned.resize(static_cast<size_t>(k_));
  }

  // Fraction of the union sample present in both sketches estimates
  // |A ∩ B| / |A ∪ B|.
  size_t in_both = 0;
  for (uint64_t hash : unioned) {
    const bool in_a =
        std::binary_search(hashes_.begin(), hashes_.end(), hash);
    const bool in_b =
        std::binary_search(other.hashes_.begin(), other.hashes_.end(), hash);
    in_both += (in_a && in_b) ? 1 : 0;
  }
  return static_cast<double>(in_both) / static_cast<double>(unioned.size());
}

Result<double> BottomK::EstimateContainmentIn(const BottomK& other) const {
  if (empty()) return 0.0;
  double jaccard = 0.0;
  LSHE_ASSIGN_OR_RETURN(jaccard, EstimateJaccard(other));
  // |A ∩ B| = J / (1 + J) * (|A| + |B|); t(A, B) = |A ∩ B| / |A|.
  const double a = EstimateCardinality();
  const double b = other.EstimateCardinality();
  if (a <= 0.0) return 0.0;
  const double intersection = jaccard / (1.0 + jaccard) * (a + b);
  return std::clamp(intersection / a, 0.0, 1.0);
}

Status BottomK::Merge(const BottomK& other) {
  if (other.k_ != k_) {
    return Status::InvalidArgument("k mismatch in bottom-k merge");
  }
  std::vector<uint64_t> merged;
  merged.reserve(hashes_.size() + other.hashes_.size());
  std::set_union(hashes_.begin(), hashes_.end(), other.hashes_.begin(),
                 other.hashes_.end(), std::back_inserter(merged));
  if (merged.size() > static_cast<size_t>(k_)) {
    merged.resize(static_cast<size_t>(k_));
  }
  hashes_ = std::move(merged);
  return Status::OK();
}

void BottomK::SerializeTo(std::string* out) const {
  PutVarint32(out, static_cast<uint32_t>(k_));
  PutVarint64(out, hashes_.size());
  for (uint64_t hash : hashes_) PutFixed64(out, hash);
}

Result<BottomK> BottomK::Deserialize(std::string_view data) {
  DecodeCursor cursor(data);
  uint32_t k = 0;
  uint64_t count = 0;
  if (!cursor.GetVarint32(&k) || !cursor.GetVarint64(&count)) {
    return Status::Corruption("bottom-k image: truncated header");
  }
  auto sketch = Create(static_cast<int>(k));
  if (!sketch.ok() || count > k) {
    return Status::Corruption("bottom-k image: implausible header");
  }
  sketch->hashes_.resize(count);
  uint64_t previous = 0;
  for (size_t i = 0; i < count; ++i) {
    if (!cursor.GetFixed64(&sketch->hashes_[i])) {
      return Status::Corruption("bottom-k image: truncated hashes");
    }
    if (i > 0 && sketch->hashes_[i] <= previous) {
      return Status::Corruption("bottom-k image: hashes not ascending");
    }
    previous = sketch->hashes_[i];
  }
  if (!cursor.empty()) {
    return Status::Corruption("bottom-k image: trailing bytes");
  }
  return sketch;
}

}  // namespace lshensemble
