// HyperLogLog cardinality sketch (Flajolet et al. 2007, with the 64-bit
// hash treatment of Heule et al. 2013 that removes the large-range
// correction).
//
// Algorithm 1 of the paper needs approx(|Q|), an estimate of the query
// domain's distinct-value count. MinHash::EstimateCardinality serves that
// from the signature itself; HyperLogLog is the alternative when callers
// want cardinalities for domains they never MinHash (e.g. the CLI's corpus
// statistics pass) — it costs 2^precision bytes instead of 8m and its
// relative error is ~1.04/sqrt(2^precision).

#ifndef LSHENSEMBLE_SKETCH_HYPERLOGLOG_H_
#define LSHENSEMBLE_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief A HyperLogLog counter over 64-bit hashed values.
class HyperLogLog {
 public:
  /// \param precision number of index bits p in [4, 18]; the sketch keeps
  ///        2^p one-byte registers.
  static Result<HyperLogLog> Create(int precision);

  int precision() const { return precision_; }
  size_t num_registers() const { return registers_.size(); }

  /// Add one pre-hashed 64-bit value.
  void Update(uint64_t hash);
  /// Hash and add one raw string value.
  void UpdateString(std::string_view value);

  /// \brief Estimated number of distinct values added, with the standard
  /// small-range (linear counting) correction.
  double Estimate() const;

  /// True if no value has been added.
  bool empty() const;

  /// \brief Fold `other` into this sketch so it counts the union of both
  /// streams (register-wise max). Fails on precision mismatch.
  Status Merge(const HyperLogLog& other);

  /// \brief Binary serialization: [precision:u8][registers].
  void SerializeTo(std::string* out) const;
  static Result<HyperLogLog> Deserialize(std::string_view data);

 private:
  explicit HyperLogLog(int precision)
      : precision_(precision), registers_(size_t{1} << precision, 0) {}

  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_SKETCH_HYPERLOGLOG_H_
