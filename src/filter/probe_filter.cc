#include "filter/probe_filter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#if defined(__GNUC__) && defined(__x86_64__)
#define LSHE_FILTER_HAVE_AVX2 1
#include <immintrin.h>
#define LSHE_FILTER_TARGET_AVX2 __attribute__((target("avx2")))
#endif

namespace lshensemble {
namespace probe_filter_internal {
namespace {

/// The eight odd salt multipliers of the Parquet/Impala split-block
/// design: lane i's bit index is the top 5 bits of h * kSalts[i]. Odd
/// constants make each lane's map a permutation of the 32-bit space.
constexpr uint32_t kSalts[kProbeFilterBlockLanes] = {
    0x47b6137bU, 0x44974d91U, 0x8824ad5bU, 0xa2b7289dU,
    0x705495c7U, 0x2df1424bU, 0x9efc4947U, 0x5c6bfb31U};

bool ScalarBlockMayContain(const uint32_t* block, uint32_t h) {
  for (size_t i = 0; i < kProbeFilterBlockLanes; ++i) {
    const uint32_t bit = 1u << ((h * kSalts[i]) >> 27);
    if ((block[i] & bit) == 0) return false;
  }
  return true;
}

#if defined(LSHE_FILTER_HAVE_AVX2)

LSHE_FILTER_TARGET_AVX2 bool Avx2BlockMayContain(const uint32_t* block,
                                                 uint32_t h) {
  const __m256i salts =
      _mm256_setr_epi32(static_cast<int>(kSalts[0]), static_cast<int>(kSalts[1]),
                        static_cast<int>(kSalts[2]), static_cast<int>(kSalts[3]),
                        static_cast<int>(kSalts[4]), static_cast<int>(kSalts[5]),
                        static_cast<int>(kSalts[6]), static_cast<int>(kSalts[7]));
  const __m256i salted =
      _mm256_mullo_epi32(_mm256_set1_epi32(static_cast<int>(h)), salts);
  const __m256i mask =
      _mm256_sllv_epi32(_mm256_set1_epi32(1), _mm256_srli_epi32(salted, 27));
  const __m256i blk =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  // testc(blk, mask) == 1 iff (~blk & mask) == 0, i.e. every mask bit set.
  return _mm256_testc_si256(blk, mask) != 0;
}

#endif  // LSHE_FILTER_HAVE_AVX2

}  // namespace

bool BlockMayContainScalar(const uint32_t* block, uint32_t h) {
  return ScalarBlockMayContain(block, h);
}

bool (*BlockMayContainAvx2())(const uint32_t* block, uint32_t h) {
#if defined(LSHE_FILTER_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return &Avx2BlockMayContain;
#endif
  return nullptr;
}

bool (*ActiveBlockProbe())(const uint32_t* block, uint32_t h) {
  static bool (*const probe)(const uint32_t*, uint32_t) = [] {
    if (const char* env = std::getenv("LSHE_KERNEL")) {
      // Follow the minhash kernel override so LSHE_KERNEL=scalar pins the
      // whole query path, filter probes included. Unknown values fall
      // through to default dispatch; hash_kernel.cc already warns once.
      if (std::string_view(env) == "scalar") return &ScalarBlockMayContain;
    }
    if (auto* avx2 = BlockMayContainAvx2()) return avx2;
    return &ScalarBlockMayContain;
  }();
  return probe;
}

const char* ActiveBlockProbeName() {
  return ActiveBlockProbe() == &ScalarBlockMayContain ? "scalar" : "avx2";
}

}  // namespace probe_filter_internal

void ProbeFilter::Insert(uint64_t hash) {
  uint32_t* lanes =
      blocks_.owned().data() + BlockIndex(hash) * kProbeFilterBlockLanes;
  const uint32_t h = static_cast<uint32_t>(hash);
  for (size_t i = 0; i < kProbeFilterBlockLanes; ++i) {
    lanes[i] |= 1u << ((h * probe_filter_internal::kSalts[i]) >> 27);
  }
}

ProbeFilter ProbeFilter::Build(std::span<const uint64_t> keys,
                               int bits_per_key) {
  const int bits = std::clamp(bits_per_key, 1, 64);
  ProbeFilter filter;
  // One 256-bit block per 256/bits keys, rounded up; at least one block so
  // a built filter is never confused with "no filter" (empty()).
  const uint64_t total_bits = static_cast<uint64_t>(keys.size()) * bits;
  filter.num_blocks_ = std::max<uint64_t>(1, (total_bits + 255) / 256);
  filter.blocks_.owned().assign(
      filter.num_blocks_ * kProbeFilterBlockLanes, 0);
  for (const uint64_t key : keys) filter.Insert(HashKey(key));
  return filter;
}

Result<ProbeFilter> ProbeFilter::FromMapped(
    uint64_t num_blocks, std::span<const uint32_t> blocks,
    std::shared_ptr<const void> backing) {
  if (num_blocks == 0 ||
      blocks.size() != num_blocks * kProbeFilterBlockLanes) {
    return Status::Corruption("probe filter: block count/segment mismatch");
  }
  ProbeFilter filter;
  filter.num_blocks_ = num_blocks;
  filter.blocks_.SetView(blocks.data(), blocks.size());
  filter.backing_ = std::move(backing);
  return filter;
}

}  // namespace lshensemble
