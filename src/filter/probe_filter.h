// Split-block Bloom filter over LshForest slot-0 probe keys — the pruning
// tier consulted before forest probes (ISSUE 6; NearBucket-LSH-style bucket
// occupancy knowledge, PAPERS.md).
//
// An LshForest probe with r >= 1 can only surface candidates from tree t
// when the query's truncated slot-0 key for t exactly matches some entry's
// slot-0 key in that tree (lsh/lsh_forest.cc, Probe phase 1). A ProbeFilter
// summarizes the set of (tree, slot-0 key) pairs present in one forest — or
// in a whole engine's worth of forests — so a query whose keys miss every
// tree can skip the probe entirely. Bloom filters have one-sided error:
// a "no" is exact, so pruned query results stay byte-identical to unpruned
// scatter; a false positive only costs a wasted probe.
//
// The layout is the standard split-block (register-blocked) design used by
// Parquet and Impala: the bit array is an array of 256-bit blocks (8 u32
// lanes); a key sets / tests exactly one bit per lane inside one block, so
// every query touches a single cache line. Block selection uses the high
// 32 bits of the mixed key via the fast-range reduction (no power-of-two
// constraint); the per-lane bit index comes from the low 32 bits multiplied
// by eight odd salts. The block probe has a portable scalar form and an
// AVX2 form behind the same once-per-process dispatch (and LSHE_KERNEL
// override) as the minhash kernels; both are bit-exact equals.
//
// Blocks live in ArenaRef<uint32_t> storage, so a filter is either owned
// (built at Flush/Build time) or a borrowed view into an mmap'ed snapshot
// segment (io/snapshot.cc serves filters zero-copy like every other arena).

#ifndef LSHENSEMBLE_FILTER_PROBE_FILTER_H_
#define LSHENSEMBLE_FILTER_PROBE_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "lsh/arena_ref.h"
#include "util/hashing.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Number of u32 lanes in one filter block (one 32-byte half cache
/// line; a probe touches exactly one block).
inline constexpr size_t kProbeFilterBlockLanes = 8;

namespace probe_filter_internal {

/// Scalar block probe: true when every salted bit of `h` is set in `block`
/// (8 lanes). Reference implementation; the dispatch table must match it
/// bit-exactly.
bool BlockMayContainScalar(const uint32_t* block, uint32_t h);

/// The AVX2 block probe, or nullptr when the build target or running CPU
/// lacks AVX2. Exposed for the parity test.
bool (*BlockMayContainAvx2())(const uint32_t* block, uint32_t h);

/// The probe implementation every filter uses: best the CPU supports,
/// resolved once per process, honoring LSHE_KERNEL=scalar like the minhash
/// kernel dispatch.
bool (*ActiveBlockProbe())(const uint32_t* block, uint32_t h);

/// Name of the active block-probe implementation ("scalar" or "avx2").
const char* ActiveBlockProbeName();

}  // namespace probe_filter_internal

/// \brief Split-block Bloom filter over 64-bit probe keys.
///
/// Keys are arbitrary u64 values; callers that summarize forest buckets use
/// ProbeKey() to pack a (tree, truncated slot-0 key) pair. An empty filter
/// (default-constructed or moved-from) reports MayContain == false for
/// every key, which is correct for "no keys were inserted" — callers that
/// mean "no filter available, cannot prune" must branch on empty()
/// themselves before consulting it.
class ProbeFilter {
 public:
  /// A filter with no blocks; MayContain is false for everything.
  ProbeFilter() = default;

  ProbeFilter(ProbeFilter&&) = default;
  ProbeFilter& operator=(ProbeFilter&&) = default;
  ProbeFilter(const ProbeFilter&) = delete;
  ProbeFilter& operator=(const ProbeFilter&) = delete;

  /// \brief Build an owned filter sized for `keys.size()` keys at
  /// `bits_per_key` bits each (clamped to [1, 64]; ~8 gives FPR around 2%,
  /// the classic split-block curve) and insert every key. Duplicate keys
  /// are fine — sizing by total count only lowers the realized FPR.
  static ProbeFilter Build(std::span<const uint64_t> keys, int bits_per_key);

  /// \brief Wrap a mapped block array without copying. `blocks` must hold
  /// exactly `num_blocks * kProbeFilterBlockLanes` lanes; `backing` keeps
  /// the mapping alive for the filter's lifetime.
  static Result<ProbeFilter> FromMapped(uint64_t num_blocks,
                                        std::span<const uint32_t> blocks,
                                        std::shared_ptr<const void> backing);

  /// \brief Pack a (tree, truncated slot-0 key) pair into a filter key.
  static constexpr uint64_t ProbeKey(uint32_t tree, uint32_t slot0_key) {
    return (static_cast<uint64_t>(tree) << 32) | slot0_key;
  }

  /// \brief The mixed form of a key; precompute once per query and reuse
  /// across every filter consulted for it (engine + per-partition).
  static uint64_t HashKey(uint64_t key) { return Mix64(key); }

  /// True when the filter may contain `key`; false answers are exact.
  bool MayContain(uint64_t key) const { return MayContainHash(HashKey(key)); }

  /// MayContain for a pre-mixed key (see HashKey).
  bool MayContainHash(uint64_t hash) const {
    if (num_blocks_ == 0) return false;
    return probe_(blocks_.data() + BlockIndex(hash) * kProbeFilterBlockLanes,
                  static_cast<uint32_t>(hash));
  }

  /// \brief Hint the cache that MayContainHash(hash) is imminent. Each
  /// probe touches one random cache line; a caller testing many hashes
  /// against one filter (e.g. one key per tree, where a reject must miss
  /// on every tree) should prefetch them all first so the misses overlap
  /// instead of serializing.
  void PrefetchHash(uint64_t hash) const {
    if (num_blocks_ == 0) return;
    __builtin_prefetch(
        blocks_.data() + BlockIndex(hash) * kProbeFilterBlockLanes,
        /*rw=*/0, /*locality=*/1);
  }

  /// True when no blocks are present (default-constructed / moved-from) —
  /// i.e. no filter was built, as opposed to "built over zero keys".
  bool empty() const { return num_blocks_ == 0; }

  /// Number of 256-bit blocks (0 for an empty filter).
  uint64_t num_blocks() const { return num_blocks_; }

  /// The raw lane array (num_blocks() * kProbeFilterBlockLanes u32 values,
  /// little-endian serialized like every other snapshot arena).
  std::span<const uint32_t> blocks() const {
    return {blocks_.data(), blocks_.size()};
  }

  /// True when the blocks are a borrowed view (mapped snapshot).
  bool is_view() const { return blocks_.is_view(); }

  /// Heap bytes owned by this filter (0 for views).
  size_t MemoryBytes() const { return blocks_.OwnedCapacityBytes(); }

 private:
  /// Fast-range block pick: high hash bits scale into [0, num_blocks_)
  /// without a modulo (and without a power-of-two size constraint).
  size_t BlockIndex(uint64_t hash) const {
    return static_cast<size_t>(
        (static_cast<uint64_t>(static_cast<uint32_t>(hash >> 32)) *
         num_blocks_) >>
        32);
  }

  void Insert(uint64_t hash);

  ArenaRef<uint32_t> blocks_;
  /// Keeps a mapped snapshot alive while blocks_ views into it.
  std::shared_ptr<const void> backing_;
  uint64_t num_blocks_ = 0;
  bool (*probe_)(const uint32_t*, uint32_t) =
      probe_filter_internal::ActiveBlockProbe();
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_FILTER_PROBE_FILTER_H_
