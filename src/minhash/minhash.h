// MinHash signatures (Broder 1997): fixed-size sketches of domains that
// support unbiased Jaccard similarity estimation (paper Eq. 4) and domain
// cardinality estimation — the `approx(|Q|)` used by Algorithm 1.

#ifndef LSHENSEMBLE_MINHASH_MINHASH_H_
#define LSHENSEMBLE_MINHASH_MINHASH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "minhash/hash_family.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief A borrowed, family-less view of a signature's slot minima: the
/// shape side-car lookups hand to ranking code. Owned signatures view
/// their values() vector; signatures served from a mapped snapshot view
/// the snapshot's signature arena directly (io/snapshot.h), so ranking
/// never copies slot data. Which family the values came from is the
/// producer's contract — views from one engine's side-car are always from
/// that engine's family.
struct SignatureView {
  const uint64_t* values = nullptr;
  size_t num_hashes = 0;

  explicit operator bool() const { return values != nullptr; }
};

/// \brief A MinHash signature: for each of m hash functions, the minimum
/// hash value observed over the domain's values.
///
/// Build a signature by streaming values through Update()/UpdateString(),
/// or in one call via FromValues()/FromStrings(). Two signatures are only
/// comparable when built from the same HashFamily.
class MinHash {
 public:
  /// Sentinel stored at positions that have seen no value yet. Strictly
  /// greater than HashFamily::kMaxHash, so real hashes always win the min.
  static constexpr uint64_t kEmptySlot = kMersennePrime61;

  /// An empty (family-less) signature; unusable until assigned. Exists so
  /// MinHash can live in containers.
  MinHash() = default;

  /// A signature over `family` with no values yet.
  explicit MinHash(std::shared_ptr<const HashFamily> family);

  /// Sketch of a set of pre-hashed (64-bit) values.
  static MinHash FromValues(std::shared_ptr<const HashFamily> family,
                            std::span<const uint64_t> values);
  /// Sketch of a set of strings (hashed internally).
  static MinHash FromStrings(std::shared_ptr<const HashFamily> family,
                             std::span<const std::string> values);
  /// \brief Adopt raw slot minima (e.g. the padded signatures of Asymmetric
  /// Minwise Hashing). `slots` must have exactly family->num_hashes()
  /// entries, each <= kEmptySlot.
  static Result<MinHash> FromSlots(std::shared_ptr<const HashFamily> family,
                                   std::vector<uint64_t> slots);

  bool valid() const { return family_ != nullptr; }
  int num_hashes() const;
  const std::vector<uint64_t>& values() const { return mins_; }
  const std::shared_ptr<const HashFamily>& family() const { return family_; }
  bool SameFamily(const MinHash& other) const;

  /// True if no value has been added.
  bool empty() const;

  /// Add one pre-hashed value to the sketched set.
  void Update(uint64_t value);
  /// Add one raw string value to the sketched set.
  void UpdateString(std::string_view value);
  /// \brief Add many pre-hashed values in one call. Equivalent to calling
  /// Update() per value, but runs the batched SIMD kernel (the minima stay
  /// in registers across the batch); this is the ingest fast path.
  void UpdateBatch(std::span<const uint64_t> values);

  /// \brief Unbiased Jaccard similarity estimate (fraction of colliding
  /// slots, paper Eq. 4). Returns InvalidArgument if the families differ.
  Result<double> EstimateJaccard(const MinHash& other) const;

  /// \brief The same estimate against a borrowed slot array (see
  /// SignatureView): bit-identical to EstimateJaccard. Only the slot
  /// count can be checked here — the view's producer vouches that the
  /// values came from this signature's family.
  Result<double> EstimateJaccard(SignatureView other) const;

  /// View of this signature's own slots (valid while *this lives).
  SignatureView view() const { return {mins_.data(), mins_.size()}; }

  /// \brief Estimate of the number of distinct values sketched, from the
  /// mean normalized minimum (the standard MinHash cardinality estimator).
  double EstimateCardinality() const;

  /// \brief Make this the sketch of the union of both sets (slot-wise min).
  Status Merge(const MinHash& other);

  /// \brief Binary serialization: [m:u32][seed:u64][mins:u64*m].
  void SerializeTo(std::string* out) const;
  /// \brief Rebuild from Serialize output. The supplied family must match
  /// the serialized seed/size (signatures never own their family).
  static Result<MinHash> Deserialize(
      std::string_view data, std::shared_ptr<const HashFamily> family);

 private:
  std::shared_ptr<const HashFamily> family_;
  std::vector<uint64_t> mins_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_MINHASH_MINHASH_H_
