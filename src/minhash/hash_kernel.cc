#include "minhash/hash_kernel.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "minhash/hash_family.h"

#if defined(__GNUC__) && defined(__x86_64__)
#define LSHE_KERNEL_HAVE_AVX2 1
#include <immintrin.h>
#define LSHE_TARGET_AVX2 __attribute__((target("avx2")))
#define LSHE_TARGET_AVX512 __attribute__((target("avx512f")))
#endif

namespace lshensemble {
namespace {

// ------------------------------------------------------------- scalar ----

void ScalarUpdateOne(const uint64_t* mul, const uint64_t* add, size_t m,
                     uint64_t value, uint64_t* mins) {
  const uint64_t reduced = ReduceMod61(value);
  for (size_t i = 0; i < m; ++i) {
    const uint64_t h = AddMod61(MulMod61(mul[i], reduced), add[i]);
    if (h < mins[i]) mins[i] = h;
  }
}

/// Values per blocking chunk: the chunk's reduced limbs stay L1-resident
/// while every hash block streams over them.
constexpr size_t kValueChunk = 256;
/// Hash functions per scalar block: the block's running minima live in
/// locals (registers) for the whole value chunk instead of round-tripping
/// through `mins` per value.
constexpr size_t kHashBlock = 8;

void ScalarUpdateBatch(const uint64_t* mul, const uint64_t* add, size_t m,
                       const uint64_t* values, size_t n, uint64_t* mins) {
  uint64_t reduced[kValueChunk];
  for (size_t begin = 0; begin < n; begin += kValueChunk) {
    const size_t chunk = std::min(kValueChunk, n - begin);
    for (size_t j = 0; j < chunk; ++j) {
      reduced[j] = ReduceMod61(values[begin + j]);
    }

    size_t i = 0;
    for (; i + kHashBlock <= m; i += kHashBlock) {
      uint64_t mn[kHashBlock];
      for (size_t k = 0; k < kHashBlock; ++k) mn[k] = mins[i + k];
      for (size_t j = 0; j < chunk; ++j) {
        const uint64_t v = reduced[j];
        for (size_t k = 0; k < kHashBlock; ++k) {
          const uint64_t h = AddMod61(MulMod61(mul[i + k], v), add[i + k]);
          mn[k] = std::min(mn[k], h);
        }
      }
      for (size_t k = 0; k < kHashBlock; ++k) mins[i + k] = mn[k];
    }
    for (; i < m; ++i) {
      uint64_t mn = mins[i];
      for (size_t j = 0; j < chunk; ++j) {
        mn = std::min(mn, AddMod61(MulMod61(mul[i], reduced[j]), add[i]));
      }
      mins[i] = mn;
    }
  }
}

size_t ScalarCountCollisions(const uint64_t* a, const uint64_t* b, size_t m) {
  // Branchless mask-sum: collision outcomes are near-random on the top-k
  // verification path, so a per-element branch would mispredict constantly.
  size_t collisions = 0;
  for (size_t i = 0; i < m; ++i) {
    collisions += static_cast<size_t>(a[i] == b[i]) &
                  static_cast<size_t>(a[i] != kMersennePrime61);
  }
  return collisions;
}

void ScalarCountCollisionsMany(const uint64_t* query, const uint64_t* sigs,
                               size_t m, size_t n, uint32_t* out_counts) {
  for (size_t j = 0; j < n; ++j) {
    out_counts[j] =
        static_cast<uint32_t>(ScalarCountCollisions(query, sigs + j * m, m));
  }
}

// Compares the first `r` values of `key` against `prefix`:
// negative if key < prefix, 0 on prefix match, positive if key > prefix.
inline int ComparePrefix(const uint32_t* key, const uint32_t* prefix, int r) {
  for (int d = 0; d < r; ++d) {
    if (key[d] != prefix[d]) return key[d] < prefix[d] ? -1 : 1;
  }
  return 0;
}

void ScalarRefinePrefixRange(const uint32_t* keys, size_t depth,
                             const uint32_t* prefix, int r, size_t* lo,
                             size_t* hi) {
  size_t begin = *lo, end = *hi;
  // Short ranges (the common case: a few 32-bit collisions) are filtered by
  // a linear scan that fits in a cache line or two; long runs of a popular
  // value get the usual pair of binary searches.
  if (end - begin <= 8) {
    while (begin < end &&
           ComparePrefix(keys + begin * depth + 1, prefix + 1, r - 1) < 0) {
      ++begin;
    }
    size_t match_end = begin;
    while (match_end < end &&
           ComparePrefix(keys + match_end * depth + 1, prefix + 1, r - 1) ==
               0) {
      ++match_end;
    }
    end = match_end;
  } else {
    size_t a = begin, b = end;
    while (a < b) {
      const size_t mid = a + (b - a) / 2;
      if (ComparePrefix(keys + mid * depth + 1, prefix + 1, r - 1) < 0) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    begin = a;
    b = end;
    while (a < b) {
      const size_t mid = a + (b - a) / 2;
      if (ComparePrefix(keys + mid * depth + 1, prefix + 1, r - 1) <= 0) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    end = a;
  }
  *lo = begin;
  *hi = end;
}

/// Trees per lockstep block of the scalar slot-0 descent: the block's
/// cursors and window lengths live in locals, and the loads of one round
/// are independent so the core overlaps their cache misses (the same
/// memory-level parallelism the gather kernels get architecturally).
constexpr size_t kDescentBlock = 16;

/// Upper-bound finish shared by every lower_bound_many form: the matching
/// slot-0 run is almost always short (a 32-bit collision plus whatever
/// true duplicates the data carries), so scan forward from the lower
/// bound, falling back to a binary search when a popular value produces a
/// long run. `end` is the window end, which the caller guarantees bounds
/// the upper bound.
inline uint32_t ScanRunEnd(const uint32_t* first, uint32_t lb, uint32_t end,
                           uint32_t key) {
  uint32_t hi = lb;
  int steps = 8;
  while (hi < end && first[hi] == key) {
    if (--steps == 0) {
      return static_cast<uint32_t>(
          std::upper_bound(first + hi, first + end, key) - first);
    }
    ++hi;
  }
  return hi;
}

void ScalarLowerBoundMany(const uint32_t* first_keys, uint32_t n,
                          const uint32_t* trees, const uint32_t* keys,
                          size_t count, uint32_t* lo, uint32_t* hi) {
  for (size_t begin = 0; begin < count; begin += kDescentBlock) {
    const size_t block = std::min(kDescentBlock, count - begin);
    // Absolute cursors into the arena (64-bit: tree*n can exceed u32 for
    // owned giant forests), one shared halving schedule with per-tree
    // window lengths.
    uint64_t base[kDescentBlock], cur[kDescentBlock];
    uint32_t len[kDescentBlock], key[kDescentBlock];
    bool again = false;
    for (size_t j = 0; j < block; ++j) {
      const size_t i = begin + j;
      base[j] = static_cast<uint64_t>(trees[i]) * n;
      key[j] = keys[i];
      cur[j] = base[j] + lo[i];
      len[j] = hi[i] - lo[i];
      again |= len[j] > 1;
    }
    while (again) {
      again = false;
      for (size_t j = 0; j < block; ++j) {
        if (len[j] <= 1) continue;
        const uint32_t half = len[j] >> 1;
        cur[j] += (first_keys[cur[j] + half - 1] < key[j]) ? half : 0;
        len[j] -= half;
        again |= len[j] > 1;
      }
    }
    for (size_t j = 0; j < block; ++j) {
      const size_t i = begin + j;
      if (len[j] == 0) continue;  // empty window: equal range is [lo, lo)
      const uint32_t lb = static_cast<uint32_t>(cur[j] - base[j]) +
                          (first_keys[cur[j]] < key[j] ? 1u : 0u);
      hi[i] = ScanRunEnd(first_keys + base[j], lb, hi[i], key[j]);
      lo[i] = lb;
    }
  }
}

// ----------------------------------------------------------- x86 SIMD ----
//
// Neither AVX2 nor AVX-512F has a 64x64 multiply, so the 61-bit mulmod is
// computed from 32-bit limb products (_mm256/_mm512_mul_epu32) with a
// 3-multiply Karatsuba on *31-bit* limbs:
//
//   a = a_hi*2^31 + a_lo          (a < 2^61, so a_lo < 2^31, a_hi < 2^30)
//   v = v_hi*2^31 + v_lo
//   a*v = hh*2^62 + mid*2^31 + lolo
//   mid = (a_lo+a_hi)*(v_lo+v_hi) - hh - lolo   (all sums fit 32 bits)
//
// Folding with 2^61 = 1 (mod p), 2^62 = 2 (mod p), and mid split at 30
// bits (mid*2^31 = (mid>>30) * 2^61 + (mid & (2^30-1)) * 2^31):
//
//   t = (hh<<1) + (mid>>30) + ((mid & mask30)<<31) + lolo + b
//
// Every addend is < 2^62 and the sum stays < 2^64, so a single
// fold-and-conditional-subtract after adding b canonicalizes t into
// [0, p) — exactly the value the scalar AddMod61(MulMod61()) pair
// produces, which keeps signatures bit-identical across kernels.

#if defined(LSHE_KERNEL_HAVE_AVX2)

/// Split the next chunk of values into reduced 31-bit limbs (lo, hi and
/// Karatsuba sum), ready for broadcast loads in the vector loops.
inline void SplitChunk(const uint64_t* values, size_t chunk, uint64_t* v_lo,
                       uint64_t* v_hi, uint64_t* v_sum) {
  for (size_t j = 0; j < chunk; ++j) {
    const uint64_t r = ReduceMod61(values[j]);
    v_lo[j] = r & ((1ULL << 31) - 1);
    v_hi[j] = r >> 31;
    v_sum[j] = v_lo[j] + v_hi[j];
  }
}

/// Per-hash loop invariants of one 4-lane (ymm) coefficient vector.
struct Avx2Coeffs {
  __m256i a_lo, a_hi, a_sum, b;
};

LSHE_TARGET_AVX2 inline Avx2Coeffs LoadCoeffsAvx2(const uint64_t* mul,
                                                  const uint64_t* add,
                                                  size_t i) {
  const __m256i mask31 =
      _mm256_set1_epi64x(static_cast<long long>((1ULL << 31) - 1));
  const __m256i a =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mul + i));
  Avx2Coeffs c;
  c.a_lo = _mm256_and_si256(a, mask31);
  c.a_hi = _mm256_srli_epi64(a, 31);
  c.a_sum = _mm256_add_epi64(c.a_lo, c.a_hi);
  c.b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(add + i));
  return c;
}

LSHE_TARGET_AVX2 inline __m256i HashAvx2(const Avx2Coeffs& c, __m256i v_lo,
                                         __m256i v_hi, __m256i v_sum,
                                         __m256i p, __m256i p_minus_1,
                                         __m256i mask30) {
  const __m256i lolo = _mm256_mul_epu32(c.a_lo, v_lo);
  const __m256i hh = _mm256_mul_epu32(c.a_hi, v_hi);
  const __m256i s = _mm256_mul_epu32(c.a_sum, v_sum);
  const __m256i mid = _mm256_sub_epi64(s, _mm256_add_epi64(hh, lolo));
  const __m256i mid_lo = _mm256_and_si256(mid, mask30);
  const __m256i mid_hi = _mm256_srli_epi64(mid, 30);
  __m256i t = _mm256_add_epi64(_mm256_slli_epi64(hh, 1), mid_hi);
  t = _mm256_add_epi64(t, _mm256_add_epi64(_mm256_slli_epi64(mid_lo, 31),
                                           lolo));
  t = _mm256_add_epi64(t, c.b);
  t = _mm256_add_epi64(_mm256_and_si256(t, p), _mm256_srli_epi64(t, 61));
  t = _mm256_sub_epi64(t,
                       _mm256_and_si256(p, _mm256_cmpgt_epi64(t, p_minus_1)));
  return t;
}

/// min(cur, h) per 64-bit lane; both operands are < 2^62, so the signed
/// compare is exact.
LSHE_TARGET_AVX2 inline __m256i Min64Avx2(__m256i cur, __m256i h) {
  return _mm256_blendv_epi8(cur, h, _mm256_cmpgt_epi64(cur, h));
}

LSHE_TARGET_AVX2 void Avx2UpdateOne(const uint64_t* mul, const uint64_t* add,
                                    size_t m, uint64_t value,
                                    uint64_t* mins) {
  const uint64_t reduced = ReduceMod61(value);
  const uint64_t lo = reduced & ((1ULL << 31) - 1);
  const uint64_t hi = reduced >> 31;
  const __m256i v_lo = _mm256_set1_epi64x(static_cast<long long>(lo));
  const __m256i v_hi = _mm256_set1_epi64x(static_cast<long long>(hi));
  const __m256i v_sum = _mm256_set1_epi64x(static_cast<long long>(lo + hi));
  const __m256i p =
      _mm256_set1_epi64x(static_cast<long long>(kMersennePrime61));
  const __m256i p_minus_1 =
      _mm256_set1_epi64x(static_cast<long long>(kMersennePrime61 - 1));
  const __m256i mask30 =
      _mm256_set1_epi64x(static_cast<long long>((1ULL << 30) - 1));

  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const Avx2Coeffs c = LoadCoeffsAvx2(mul, add, i);
    const __m256i mn =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mins + i));
    const __m256i h = HashAvx2(c, v_lo, v_hi, v_sum, p, p_minus_1, mask30);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mins + i),
                        Min64Avx2(mn, h));
  }
  for (; i < m; ++i) {
    const uint64_t h = AddMod61(MulMod61(mul[i], reduced), add[i]);
    if (h < mins[i]) mins[i] = h;
  }
}

LSHE_TARGET_AVX2 void Avx2UpdateBatch(const uint64_t* mul,
                                      const uint64_t* add, size_t m,
                                      const uint64_t* values, size_t n,
                                      uint64_t* mins) {
  const __m256i p =
      _mm256_set1_epi64x(static_cast<long long>(kMersennePrime61));
  const __m256i p_minus_1 =
      _mm256_set1_epi64x(static_cast<long long>(kMersennePrime61 - 1));
  const __m256i mask30 =
      _mm256_set1_epi64x(static_cast<long long>((1ULL << 30) - 1));

  uint64_t v_lo[kValueChunk], v_hi[kValueChunk], v_sum[kValueChunk];
  for (size_t begin = 0; begin < n; begin += kValueChunk) {
    const size_t chunk = std::min(kValueChunk, n - begin);
    SplitChunk(values + begin, chunk, v_lo, v_hi, v_sum);

    // Two vectors of minima (8 hash functions) stay live in registers
    // across the whole value chunk; the per-value limb broadcasts are
    // plain loads that overlap the ALU-bound hash math.
    size_t i = 0;
    for (; i + 8 <= m; i += 8) {
      const Avx2Coeffs c0 = LoadCoeffsAvx2(mul, add, i);
      const Avx2Coeffs c1 = LoadCoeffsAvx2(mul, add, i + 4);
      __m256i mn0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mins + i));
      __m256i mn1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mins + i + 4));
      for (size_t j = 0; j < chunk; ++j) {
        const __m256i bv_lo =
            _mm256_set1_epi64x(static_cast<long long>(v_lo[j]));
        const __m256i bv_hi =
            _mm256_set1_epi64x(static_cast<long long>(v_hi[j]));
        const __m256i bv_sum =
            _mm256_set1_epi64x(static_cast<long long>(v_sum[j]));
        mn0 = Min64Avx2(mn0, HashAvx2(c0, bv_lo, bv_hi, bv_sum, p, p_minus_1,
                                      mask30));
        mn1 = Min64Avx2(mn1, HashAvx2(c1, bv_lo, bv_hi, bv_sum, p, p_minus_1,
                                      mask30));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(mins + i), mn0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(mins + i + 4), mn1);
    }
    for (; i < m; ++i) {
      uint64_t mn = mins[i];
      for (size_t j = 0; j < chunk; ++j) {
        const uint64_t v = v_lo[j] | (v_hi[j] << 31);
        mn = std::min(mn, AddMod61(MulMod61(mul[i], v), add[i]));
      }
      mins[i] = mn;
    }
  }
}

// AVX-512F: the same Karatsuba mulmod in 8 lanes, with the native
// unsigned 64-bit min and mask-register conditional subtract shaving the
// AVX2 compare/blend pairs down to single instructions.

/// Per-hash loop invariants of one 8-lane (zmm) coefficient vector.
struct Avx512Coeffs {
  __m512i a_lo, a_hi, a_sum, b;
};

LSHE_TARGET_AVX512 inline Avx512Coeffs LoadCoeffsAvx512(const uint64_t* mul,
                                                        const uint64_t* add,
                                                        size_t i) {
  const __m512i mask31 = _mm512_set1_epi64((1ULL << 31) - 1);
  const __m512i a = _mm512_loadu_si512(mul + i);
  Avx512Coeffs c;
  c.a_lo = _mm512_and_si512(a, mask31);
  c.a_hi = _mm512_srli_epi64(a, 31);
  c.a_sum = _mm512_add_epi64(c.a_lo, c.a_hi);
  c.b = _mm512_loadu_si512(add + i);
  return c;
}

LSHE_TARGET_AVX512 inline __m512i HashAvx512(const Avx512Coeffs& c,
                                             __m512i v_lo, __m512i v_hi,
                                             __m512i v_sum, __m512i p,
                                             __m512i mask30) {
  const __m512i lolo = _mm512_mul_epu32(c.a_lo, v_lo);
  const __m512i hh = _mm512_mul_epu32(c.a_hi, v_hi);
  const __m512i s = _mm512_mul_epu32(c.a_sum, v_sum);
  const __m512i mid = _mm512_sub_epi64(s, _mm512_add_epi64(hh, lolo));
  const __m512i mid_lo = _mm512_and_si512(mid, mask30);
  const __m512i mid_hi = _mm512_srli_epi64(mid, 30);
  __m512i t = _mm512_add_epi64(_mm512_slli_epi64(hh, 1), mid_hi);
  t = _mm512_add_epi64(t, _mm512_add_epi64(_mm512_slli_epi64(mid_lo, 31),
                                           lolo));
  t = _mm512_add_epi64(t, c.b);
  t = _mm512_add_epi64(_mm512_and_si512(t, p), _mm512_srli_epi64(t, 61));
  const __mmask8 ge = _mm512_cmpge_epu64_mask(t, p);
  return _mm512_mask_sub_epi64(t, ge, t, p);
}

LSHE_TARGET_AVX512 void Avx512UpdateOne(const uint64_t* mul,
                                        const uint64_t* add, size_t m,
                                        uint64_t value, uint64_t* mins) {
  const uint64_t reduced = ReduceMod61(value);
  const uint64_t lo = reduced & ((1ULL << 31) - 1);
  const uint64_t hi = reduced >> 31;
  const __m512i v_lo = _mm512_set1_epi64(static_cast<long long>(lo));
  const __m512i v_hi = _mm512_set1_epi64(static_cast<long long>(hi));
  const __m512i v_sum = _mm512_set1_epi64(static_cast<long long>(lo + hi));
  const __m512i p = _mm512_set1_epi64(static_cast<long long>(kMersennePrime61));
  const __m512i mask30 = _mm512_set1_epi64((1ULL << 30) - 1);

  size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const Avx512Coeffs c = LoadCoeffsAvx512(mul, add, i);
    const __m512i mn = _mm512_loadu_si512(mins + i);
    const __m512i h = HashAvx512(c, v_lo, v_hi, v_sum, p, mask30);
    _mm512_storeu_si512(mins + i, _mm512_min_epu64(mn, h));
  }
  for (; i < m; ++i) {
    const uint64_t h = AddMod61(MulMod61(mul[i], reduced), add[i]);
    if (h < mins[i]) mins[i] = h;
  }
}

LSHE_TARGET_AVX512 void Avx512UpdateBatch(const uint64_t* mul,
                                          const uint64_t* add, size_t m,
                                          const uint64_t* values, size_t n,
                                          uint64_t* mins) {
  const __m512i p = _mm512_set1_epi64(static_cast<long long>(kMersennePrime61));
  const __m512i mask30 = _mm512_set1_epi64((1ULL << 30) - 1);

  uint64_t v_lo[kValueChunk], v_hi[kValueChunk], v_sum[kValueChunk];
  for (size_t begin = 0; begin < n; begin += kValueChunk) {
    const size_t chunk = std::min(kValueChunk, n - begin);
    SplitChunk(values + begin, chunk, v_lo, v_hi, v_sum);

    size_t i = 0;
    for (; i + 16 <= m; i += 16) {
      const Avx512Coeffs c0 = LoadCoeffsAvx512(mul, add, i);
      const Avx512Coeffs c1 = LoadCoeffsAvx512(mul, add, i + 8);
      __m512i mn0 = _mm512_loadu_si512(mins + i);
      __m512i mn1 = _mm512_loadu_si512(mins + i + 8);
      for (size_t j = 0; j < chunk; ++j) {
        const __m512i bv_lo =
            _mm512_set1_epi64(static_cast<long long>(v_lo[j]));
        const __m512i bv_hi =
            _mm512_set1_epi64(static_cast<long long>(v_hi[j]));
        const __m512i bv_sum =
            _mm512_set1_epi64(static_cast<long long>(v_sum[j]));
        mn0 = _mm512_min_epu64(mn0,
                               HashAvx512(c0, bv_lo, bv_hi, bv_sum, p, mask30));
        mn1 = _mm512_min_epu64(mn1,
                               HashAvx512(c1, bv_lo, bv_hi, bv_sum, p, mask30));
      }
      _mm512_storeu_si512(mins + i, mn0);
      _mm512_storeu_si512(mins + i + 8, mn1);
    }
    for (; i + 8 <= m; i += 8) {
      const Avx512Coeffs c = LoadCoeffsAvx512(mul, add, i);
      __m512i mn = _mm512_loadu_si512(mins + i);
      for (size_t j = 0; j < chunk; ++j) {
        const __m512i bv_lo =
            _mm512_set1_epi64(static_cast<long long>(v_lo[j]));
        const __m512i bv_hi =
            _mm512_set1_epi64(static_cast<long long>(v_hi[j]));
        const __m512i bv_sum =
            _mm512_set1_epi64(static_cast<long long>(v_sum[j]));
        mn = _mm512_min_epu64(mn,
                              HashAvx512(c, bv_lo, bv_hi, bv_sum, p, mask30));
      }
      _mm512_storeu_si512(mins + i, mn);
    }
    for (; i < m; ++i) {
      uint64_t mn = mins[i];
      for (size_t j = 0; j < chunk; ++j) {
        const uint64_t v = v_lo[j] | (v_hi[j] << 31);
        mn = std::min(mn, AddMod61(MulMod61(mul[i], v), add[i]));
      }
      mins[i] = mn;
    }
  }
}

/// 4 lanes per compare: equal-and-not-empty lanes drop out of a movemask
/// whose set bits are popcounted. Both signatures are canonical Mersenne-61
/// residues (< 2^61), so the signed 64-bit lane compare is exact.
LSHE_TARGET_AVX2 size_t Avx2CountCollisions(const uint64_t* a,
                                            const uint64_t* b, size_t m) {
  const __m256i empty =
      _mm256_set1_epi64x(static_cast<long long>(kMersennePrime61));
  size_t collisions = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i eq = _mm256_cmpeq_epi64(va, vb);
    const __m256i hit =
        _mm256_andnot_si256(_mm256_cmpeq_epi64(va, empty), eq);
    collisions += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(hit)))));
  }
  for (; i < m; ++i) {
    collisions += static_cast<size_t>(a[i] == b[i]) &
                  static_cast<size_t>(a[i] != kMersennePrime61);
  }
  return collisions;
}

/// 8 lanes per compare with the two mask registers combined directly.
LSHE_TARGET_AVX512 size_t Avx512CountCollisions(const uint64_t* a,
                                                const uint64_t* b, size_t m) {
  const __m512i empty =
      _mm512_set1_epi64(static_cast<long long>(kMersennePrime61));
  size_t collisions = 0;
  size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __mmask8 hit = _mm512_cmpeq_epu64_mask(va, vb) &
                         _mm512_cmpneq_epu64_mask(va, empty);
    collisions += static_cast<size_t>(__builtin_popcount(hit));
  }
  for (; i < m; ++i) {
    collisions += static_cast<size_t>(a[i] == b[i]) &
                  static_cast<size_t>(a[i] != kMersennePrime61);
  }
  return collisions;
}

/// Record pairs share each query-vector load and its not-empty mask, so
/// the arena walk is load/compare/popcount bound.
LSHE_TARGET_AVX2 void Avx2CountCollisionsMany(const uint64_t* query,
                                              const uint64_t* sigs, size_t m,
                                              size_t n, uint32_t* out_counts) {
  const __m256i empty =
      _mm256_set1_epi64x(static_cast<long long>(kMersennePrime61));
  size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const uint64_t* b0 = sigs + j * m;
    const uint64_t* b1 = b0 + m;
    uint32_t c0 = 0, c1 = 0;
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query + i));
      const __m256i nonempty = _mm256_cmpeq_epi64(va, empty);  // inverted
      const __m256i eq0 = _mm256_andnot_si256(
          nonempty,
          _mm256_cmpeq_epi64(
              va, _mm256_loadu_si256(
                      reinterpret_cast<const __m256i*>(b0 + i))));
      const __m256i eq1 = _mm256_andnot_si256(
          nonempty,
          _mm256_cmpeq_epi64(
              va, _mm256_loadu_si256(
                      reinterpret_cast<const __m256i*>(b1 + i))));
      c0 += static_cast<uint32_t>(__builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(eq0)))));
      c1 += static_cast<uint32_t>(__builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(eq1)))));
    }
    for (; i < m; ++i) {
      const uint64_t qv = query[i];
      const bool live = qv != kMersennePrime61;
      c0 += static_cast<uint32_t>(qv == b0[i]) & static_cast<uint32_t>(live);
      c1 += static_cast<uint32_t>(qv == b1[i]) & static_cast<uint32_t>(live);
    }
    out_counts[j] = c0;
    out_counts[j + 1] = c1;
  }
  for (; j < n; ++j) {
    out_counts[j] =
        static_cast<uint32_t>(Avx2CountCollisions(query, sigs + j * m, m));
  }
}

LSHE_TARGET_AVX512 void Avx512CountCollisionsMany(const uint64_t* query,
                                                  const uint64_t* sigs,
                                                  size_t m, size_t n,
                                                  uint32_t* out_counts) {
  const __m512i empty =
      _mm512_set1_epi64(static_cast<long long>(kMersennePrime61));
  size_t j = 0;
  // 4 records per query pass: one query load + not-empty mask serves four
  // compare/popcount chains, keeping the port-5 compares saturated.
  for (; j + 4 <= n; j += 4) {
    const uint64_t* b0 = sigs + j * m;
    const uint64_t* b1 = b0 + m;
    const uint64_t* b2 = b1 + m;
    const uint64_t* b3 = b2 + m;
    uint32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    size_t i = 0;
    for (; i + 8 <= m; i += 8) {
      const __m512i va = _mm512_loadu_si512(query + i);
      const __mmask8 nonempty = _mm512_cmpneq_epu64_mask(va, empty);
      c0 += static_cast<uint32_t>(__builtin_popcount(
          _mm512_cmpeq_epu64_mask(va, _mm512_loadu_si512(b0 + i)) & nonempty));
      c1 += static_cast<uint32_t>(__builtin_popcount(
          _mm512_cmpeq_epu64_mask(va, _mm512_loadu_si512(b1 + i)) & nonempty));
      c2 += static_cast<uint32_t>(__builtin_popcount(
          _mm512_cmpeq_epu64_mask(va, _mm512_loadu_si512(b2 + i)) & nonempty));
      c3 += static_cast<uint32_t>(__builtin_popcount(
          _mm512_cmpeq_epu64_mask(va, _mm512_loadu_si512(b3 + i)) & nonempty));
    }
    for (; i < m; ++i) {
      const uint64_t qv = query[i];
      const auto live = static_cast<uint32_t>(qv != kMersennePrime61);
      c0 += static_cast<uint32_t>(qv == b0[i]) & live;
      c1 += static_cast<uint32_t>(qv == b1[i]) & live;
      c2 += static_cast<uint32_t>(qv == b2[i]) & live;
      c3 += static_cast<uint32_t>(qv == b3[i]) & live;
    }
    out_counts[j] = c0;
    out_counts[j + 1] = c1;
    out_counts[j + 2] = c2;
    out_counts[j + 3] = c3;
  }
  for (; j < n; ++j) {
    out_counts[j] =
        static_cast<uint32_t>(Avx512CountCollisions(query, sigs + j * m, m));
  }
}

/// Per-lane load masks for _mm256_maskload_epi32: row `8 - count` of this
/// table enables the first `count` lanes.
alignas(32) constexpr int32_t kLaneMaskTable[16] = {-1, -1, -1, -1, -1, -1,
                                                    -1, -1, 0,  0,  0,  0,
                                                    0,  0,  0,  0};

/// ComparePrefix over `count <= 8` u32 values in one 256-bit compare:
/// masked-load the row (never reading past row end), find the first
/// mismatching lane with a movemask, and order by that lane alone.
LSHE_TARGET_AVX2 inline int ComparePrefixAvx2(const uint32_t* key,
                                              __m256i prefix_vec,
                                              __m256i lane_mask,
                                              const uint32_t* prefix,
                                              int count) {
  const __m256i k = _mm256_maskload_epi32(
      reinterpret_cast<const int*>(key), lane_mask);
  const __m256i eq = _mm256_cmpeq_epi32(k, prefix_vec);
  const unsigned neq =
      ~static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq))) &
      ((1u << count) - 1u);
  if (neq == 0) return 0;
  const int d = __builtin_ctz(neq);
  return key[d] < prefix[d] ? -1 : 1;
}

LSHE_TARGET_AVX2 void Avx2RefinePrefixRange(const uint32_t* keys,
                                            size_t depth,
                                            const uint32_t* prefix, int r,
                                            size_t* lo, size_t* hi) {
  const int count = r - 1;
  if (count > 8) {
    // Deeper prefixes than one vector holds are rare (tree_depth > 9);
    // they take the scalar path.
    ScalarRefinePrefixRange(keys, depth, prefix, r, lo, hi);
    return;
  }
  const __m256i lane_mask = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kLaneMaskTable + 8 - count));
  const __m256i prefix_vec = _mm256_maskload_epi32(
      reinterpret_cast<const int*>(prefix + 1), lane_mask);

  size_t begin = *lo, end = *hi;
  if (end - begin <= 8) {
    while (begin < end &&
           ComparePrefixAvx2(keys + begin * depth + 1, prefix_vec, lane_mask,
                             prefix + 1, count) < 0) {
      ++begin;
    }
    size_t match_end = begin;
    while (match_end < end &&
           ComparePrefixAvx2(keys + match_end * depth + 1, prefix_vec,
                             lane_mask, prefix + 1, count) == 0) {
      ++match_end;
    }
    end = match_end;
  } else {
    size_t a = begin, b = end;
    while (a < b) {
      const size_t mid = a + (b - a) / 2;
      if (ComparePrefixAvx2(keys + mid * depth + 1, prefix_vec, lane_mask,
                            prefix + 1, count) < 0) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    begin = a;
    b = end;
    while (a < b) {
      const size_t mid = a + (b - a) / 2;
      if (ComparePrefixAvx2(keys + mid * depth + 1, prefix_vec, lane_mask,
                            prefix + 1, count) <= 0) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    end = a;
  }
  *lo = begin;
  *hi = end;
}

/// True when every gather index (max_tree+1)*n - 1 of a lower_bound_many
/// call fits the SIGNED 32-bit lane of vpgatherdd; oversized arenas take
/// the scalar descent (which indexes with 64-bit cursors).
inline bool GatherIndexable(const uint32_t* trees, size_t count, uint32_t n) {
  uint32_t max_tree = 0;
  for (size_t i = 0; i < count; ++i) max_tree = std::max(max_tree, trees[i]);
  return (static_cast<uint64_t>(max_tree) + 1) * n <=
         static_cast<uint64_t>(INT32_MAX);
}

/// 8 trees per descent round: masked vpgatherdd probes the midpoints of
/// all live windows at once (mask = len > 1, so finished or empty lanes
/// never read), and the branchless halving runs entirely in registers.
/// Only the lower bound descends; the equal range's end is found by the
/// shared short forward scan, which beats a second descent because slot-0
/// runs are nearly always a handful of entries. AVX2 has no unsigned
/// 32-bit compare, so keys and gathered values are biased by 2^31 and
/// compared signed.
LSHE_TARGET_AVX2 void Avx2LowerBoundMany(const uint32_t* first_keys,
                                         uint32_t n, const uint32_t* trees,
                                         const uint32_t* keys, size_t count,
                                         uint32_t* lo, uint32_t* hi) {
  if (!GatherIndexable(trees, count, n)) {
    ScalarLowerBoundMany(first_keys, n, trees, keys, count, lo, hi);
    return;
  }
  const int* base_ptr = reinterpret_cast<const int*>(first_keys);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vn = _mm256_set1_epi32(static_cast<int>(n));
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i vtree =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(trees + i));
    const __m256i vlo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));
    const __m256i vhi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    const __m256i vkeyb = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), bias);
    const __m256i vbase = _mm256_mullo_epi32(vtree, vn);
    __m256i vcur = _mm256_add_epi32(vbase, vlo);
    __m256i vlen = _mm256_sub_epi32(vhi, vlo);
    for (;;) {
      const __m256i active = _mm256_cmpgt_epi32(vlen, one);
      if (_mm256_testz_si256(active, active)) break;
      const __m256i vhalf = _mm256_srli_epi32(vlen, 1);
      const __m256i idx =
          _mm256_sub_epi32(_mm256_add_epi32(vcur, vhalf), one);
      const __m256i g =
          _mm256_mask_i32gather_epi32(zero, base_ptr, idx, active, 4);
      const __m256i lt =
          _mm256_cmpgt_epi32(vkeyb, _mm256_xor_si256(g, bias));
      vcur = _mm256_add_epi32(
          vcur, _mm256_and_si256(vhalf, _mm256_and_si256(lt, active)));
      vlen = _mm256_sub_epi32(vlen, _mm256_and_si256(vhalf, active));
    }
    // Final fixup for the surviving single-slot windows; empty windows
    // (len 0 throughout) fall out as lo/hi unchanged since their cursors
    // never moved and their fixup lanes stay masked off.
    const __m256i m1 = _mm256_cmpeq_epi32(vlen, one);
    const __m256i g = _mm256_mask_i32gather_epi32(zero, base_ptr, vcur, m1, 4);
    const __m256i add = _mm256_and_si256(
        one, _mm256_and_si256(
                 m1, _mm256_cmpgt_epi32(vkeyb, _mm256_xor_si256(g, bias))));
    alignas(32) uint32_t lb[8], live[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lb),
                       _mm256_add_epi32(_mm256_sub_epi32(vcur, vbase), add));
    _mm256_store_si256(reinterpret_cast<__m256i*>(live), m1);
    for (size_t j = 0; j < 8; ++j) {
      if (!live[j]) continue;
      const uint32_t* first =
          first_keys + static_cast<size_t>(trees[i + j]) * n;
      hi[i + j] = ScanRunEnd(first, lb[j], hi[i + j], keys[i + j]);
      lo[i + j] = lb[j];
    }
  }
  if (i < count) {
    ScalarLowerBoundMany(first_keys, n, trees + i, keys + i, count - i,
                         lo + i, hi + i);
  }
}

/// 16 trees per round with native unsigned compares and mask registers;
/// otherwise the same descent as the AVX2 form.
LSHE_TARGET_AVX512 void Avx512LowerBoundMany(const uint32_t* first_keys,
                                             uint32_t n,
                                             const uint32_t* trees,
                                             const uint32_t* keys,
                                             size_t count, uint32_t* lo,
                                             uint32_t* hi) {
  if (!GatherIndexable(trees, count, n)) {
    ScalarLowerBoundMany(first_keys, n, trees, keys, count, lo, hi);
    return;
  }
  const __m512i zero = _mm512_setzero_si512();
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i vn = _mm512_set1_epi32(static_cast<int>(n));
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512i vtree = _mm512_loadu_si512(trees + i);
    const __m512i vlo = _mm512_loadu_si512(lo + i);
    const __m512i vhi = _mm512_loadu_si512(hi + i);
    const __m512i vkey = _mm512_loadu_si512(keys + i);
    const __m512i vbase = _mm512_mullo_epi32(vtree, vn);
    __m512i vcur = _mm512_add_epi32(vbase, vlo);
    __m512i vlen = _mm512_sub_epi32(vhi, vlo);
    for (;;) {
      const __mmask16 active = _mm512_cmplt_epu32_mask(one, vlen);
      if (active == 0) break;
      const __m512i vhalf = _mm512_srli_epi32(vlen, 1);
      const __m512i idx =
          _mm512_sub_epi32(_mm512_add_epi32(vcur, vhalf), one);
      const __m512i g =
          _mm512_mask_i32gather_epi32(zero, active, idx, first_keys, 4);
      const __mmask16 lt = _mm512_mask_cmplt_epu32_mask(active, g, vkey);
      vcur = _mm512_mask_add_epi32(vcur, lt, vcur, vhalf);
      vlen = _mm512_mask_sub_epi32(vlen, active, vlen, vhalf);
    }
    const __mmask16 m1 = _mm512_cmpeq_epu32_mask(vlen, one);
    const __m512i g =
        _mm512_mask_i32gather_epi32(zero, m1, vcur, first_keys, 4);
    const __mmask16 add = _mm512_mask_cmplt_epu32_mask(m1, g, vkey);
    const __m512i pos = _mm512_sub_epi32(vcur, vbase);
    alignas(64) uint32_t lb[16];
    _mm512_store_si512(lb, _mm512_mask_add_epi32(pos, add, pos, one));
    unsigned live = m1;
    for (size_t j = 0; j < 16; ++j) {
      if (!(live & (1u << j))) continue;
      const uint32_t* first =
          first_keys + static_cast<size_t>(trees[i + j]) * n;
      hi[i + j] = ScanRunEnd(first, lb[j], hi[i + j], keys[i + j]);
      lo[i + j] = lb[j];
    }
  }
  if (i < count) {
    ScalarLowerBoundMany(first_keys, n, trees + i, keys + i, count - i,
                         lo + i, hi + i);
  }
}

#endif  // LSHE_KERNEL_HAVE_AVX2

constexpr HashKernelOps kScalarOps = {"scalar", &ScalarUpdateOne,
                                      &ScalarUpdateBatch,
                                      &ScalarCountCollisions,
                                      &ScalarCountCollisionsMany,
                                      &ScalarRefinePrefixRange,
                                      &ScalarLowerBoundMany};

#if defined(LSHE_KERNEL_HAVE_AVX2)
constexpr HashKernelOps kAvx2Ops = {"avx2", &Avx2UpdateOne, &Avx2UpdateBatch,
                                    &Avx2CountCollisions,
                                    &Avx2CountCollisionsMany,
                                    &Avx2RefinePrefixRange,
                                    &Avx2LowerBoundMany};
// The probe-refine kernel is search-bound, not ALU-bound; 256-bit compares
// already cover the whole suffix, so the AVX-512 table reuses them.
constexpr HashKernelOps kAvx512Ops = {"avx512", &Avx512UpdateOne,
                                      &Avx512UpdateBatch,
                                      &Avx512CountCollisions,
                                      &Avx512CountCollisionsMany,
                                      &Avx2RefinePrefixRange,
                                      &Avx512LowerBoundMany};
#endif

}  // namespace

const HashKernelOps& ScalarKernelOps() { return kScalarOps; }

const HashKernelOps* Avx2KernelOps() {
#if defined(LSHE_KERNEL_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return &kAvx2Ops;
#endif
  return nullptr;
}

const HashKernelOps* Avx512KernelOps() {
#if defined(LSHE_KERNEL_HAVE_AVX2)
  if (__builtin_cpu_supports("avx512f")) return &kAvx512Ops;
#endif
  return nullptr;
}

const HashKernelOps& ActiveKernelOps() {
  static const HashKernelOps* const ops = [] {
    if (const char* env = std::getenv("LSHE_KERNEL")) {
      const std::string_view choice(env);
      if (choice == "scalar") return &ScalarKernelOps();
      if (choice == "avx2") {
        if (const HashKernelOps* avx2 = Avx2KernelOps()) return avx2;
      }
      if (choice == "avx512") {
        if (const HashKernelOps* avx512 = Avx512KernelOps()) return avx512;
      }
      // A typo must not silently measure (or test) the wrong kernel.
      std::fprintf(stderr,
                   "LSHE_KERNEL=%s not available; using default dispatch\n",
                   env);
    }
    if (const HashKernelOps* avx512 = Avx512KernelOps()) return avx512;
    if (const HashKernelOps* avx2 = Avx2KernelOps()) return avx2;
    return &ScalarKernelOps();
  }();
  return *ops;
}

}  // namespace lshensemble
