#include "minhash/minhash.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "minhash/hash_kernel.h"
#include "util/hashing.h"

namespace lshensemble {

MinHash::MinHash(std::shared_ptr<const HashFamily> family)
    : family_(std::move(family)) {
  assert(family_ != nullptr);
  mins_.assign(family_->num_hashes(), kEmptySlot);
}

MinHash MinHash::FromValues(std::shared_ptr<const HashFamily> family,
                            std::span<const uint64_t> values) {
  MinHash sketch(std::move(family));
  sketch.UpdateBatch(values);
  return sketch;
}

MinHash MinHash::FromStrings(std::shared_ptr<const HashFamily> family,
                             std::span<const std::string> values) {
  MinHash sketch(std::move(family));
  for (const std::string& v : values) sketch.UpdateString(v);
  return sketch;
}

Result<MinHash> MinHash::FromSlots(std::shared_ptr<const HashFamily> family,
                                   std::vector<uint64_t> slots) {
  if (family == nullptr) {
    return Status::InvalidArgument("FromSlots requires a hash family");
  }
  if (slots.size() != static_cast<size_t>(family->num_hashes())) {
    return Status::InvalidArgument(
        "slot count does not match the hash family size");
  }
  for (uint64_t v : slots) {
    if (v > kEmptySlot) {
      return Status::InvalidArgument("slot value exceeds the hash range");
    }
  }
  MinHash sketch(std::move(family));
  sketch.mins_ = std::move(slots);
  return sketch;
}

int MinHash::num_hashes() const {
  return family_ ? family_->num_hashes() : 0;
}

bool MinHash::SameFamily(const MinHash& other) const {
  if (family_ == nullptr || other.family_ == nullptr) return false;
  return family_ == other.family_ || family_->SameAs(*other.family_);
}

bool MinHash::empty() const {
  return mins_.empty() || mins_[0] == kEmptySlot;
}

void MinHash::Update(uint64_t value) {
  assert(valid());
  family_->UpdateMins(value, mins_.data());
}

void MinHash::UpdateString(std::string_view value) {
  Update(HashString(value));
}

void MinHash::UpdateBatch(std::span<const uint64_t> values) {
  assert(valid());
  family_->UpdateMinsBatch(values.data(), values.size(), mins_.data());
}

Result<double> MinHash::EstimateJaccard(const MinHash& other) const {
  if (!valid() || !other.valid()) {
    return Status::InvalidArgument("comparing invalid MinHash");
  }
  if (!SameFamily(other)) {
    return Status::InvalidArgument(
        "MinHash signatures built from different hash families");
  }
  // Dispatched collision count (scalar/AVX2/AVX-512, identical results):
  // this runs once per candidate on the top-k verification and dynamic
  // delta-scan hot paths.
  const size_t m = mins_.size();
  const size_t collisions = ActiveKernelOps().count_collisions(
      mins_.data(), other.mins_.data(), m);
  return static_cast<double>(collisions) / static_cast<double>(m);
}

Result<double> MinHash::EstimateJaccard(SignatureView other) const {
  if (!valid() || !other) {
    return Status::InvalidArgument("comparing invalid MinHash");
  }
  if (other.num_hashes != mins_.size()) {
    return Status::InvalidArgument(
        "MinHash signatures have different lengths");
  }
  const size_t m = mins_.size();
  const size_t collisions =
      ActiveKernelOps().count_collisions(mins_.data(), other.values, m);
  return static_cast<double>(collisions) / static_cast<double>(m);
}

double MinHash::EstimateCardinality() const {
  if (mins_.empty() || empty()) return 0.0;
  // With n distinct values, each normalized slot min is ~ Beta(1, n) with
  // mean 1/(n+1); invert the mean of the normalized minima.
  const double max_hash = static_cast<double>(HashFamily::kMaxHash);
  double sum = 0.0;
  for (uint64_t v : mins_) {
    sum += static_cast<double>(v) / max_hash;
  }
  const double m = static_cast<double>(mins_.size());
  if (sum <= 0.0) return 0.0;
  return m / sum - 1.0;
}

Status MinHash::Merge(const MinHash& other) {
  if (!valid() || !other.valid()) {
    return Status::InvalidArgument("merging invalid MinHash");
  }
  if (!SameFamily(other)) {
    return Status::InvalidArgument(
        "cannot merge MinHash signatures from different hash families");
  }
  // Branchless slot-wise min (cmov/vectorizable), same rationale as the
  // EstimateJaccard mask-sum above.
  const uint64_t* src = other.mins_.data();
  uint64_t* dst = mins_.data();
  for (size_t i = 0; i < mins_.size(); ++i) {
    dst[i] = std::min(dst[i], src[i]);
  }
  return Status::OK();
}

void MinHash::SerializeTo(std::string* out) const {
  assert(valid());
  const uint32_t m = static_cast<uint32_t>(mins_.size());
  const uint64_t seed = family_->seed();
  out->reserve(out->size() + sizeof(m) + sizeof(seed) +
               mins_.size() * sizeof(uint64_t));
  out->append(reinterpret_cast<const char*>(&m), sizeof(m));
  out->append(reinterpret_cast<const char*>(&seed), sizeof(seed));
  out->append(reinterpret_cast<const char*>(mins_.data()),
              mins_.size() * sizeof(uint64_t));
}

Result<MinHash> MinHash::Deserialize(
    std::string_view data, std::shared_ptr<const HashFamily> family) {
  if (family == nullptr) {
    return Status::InvalidArgument("Deserialize requires a hash family");
  }
  uint32_t m = 0;
  uint64_t seed = 0;
  if (data.size() < sizeof(m) + sizeof(seed)) {
    return Status::Corruption("MinHash blob truncated (header)");
  }
  std::memcpy(&m, data.data(), sizeof(m));
  std::memcpy(&seed, data.data() + sizeof(m), sizeof(seed));
  if (static_cast<int>(m) != family->num_hashes() || seed != family->seed()) {
    return Status::InvalidArgument(
        "serialized MinHash does not match the supplied hash family");
  }
  const size_t expected = sizeof(m) + sizeof(seed) + m * sizeof(uint64_t);
  if (data.size() != expected) {
    return Status::Corruption("MinHash blob truncated (values)");
  }
  MinHash sketch(std::move(family));
  std::memcpy(sketch.mins_.data(), data.data() + sizeof(m) + sizeof(seed),
              m * sizeof(uint64_t));
  for (uint64_t v : sketch.mins_) {
    if (v > kEmptySlot) {
      return Status::Corruption("MinHash blob contains out-of-range values");
    }
  }
  return sketch;
}

}  // namespace lshensemble
