#include "minhash/hash_family.h"

#include "minhash/hash_kernel.h"
#include "util/random.h"

namespace lshensemble {

Result<std::shared_ptr<const HashFamily>> HashFamily::Create(int num_hashes,
                                                             uint64_t seed) {
  if (num_hashes <= 0) {
    return Status::InvalidArgument("num_hashes must be positive");
  }
  Rng rng(seed);
  std::vector<uint64_t> mul(num_hashes);
  std::vector<uint64_t> add(num_hashes);
  for (int i = 0; i < num_hashes; ++i) {
    mul[i] = rng.NextInRange(1, kMersennePrime61 - 1);
    add[i] = rng.NextInRange(0, kMersennePrime61 - 1);
  }
  return std::shared_ptr<const HashFamily>(
      new HashFamily(std::move(mul), std::move(add), seed));
}

void HashFamily::UpdateMins(uint64_t value, uint64_t* mins) const {
  ActiveKernelOps().update_one(mul_.data(), add_.data(), mul_.size(), value,
                               mins);
}

void HashFamily::UpdateMinsBatch(const uint64_t* values, size_t n,
                                 uint64_t* mins) const {
  ActiveKernelOps().update_batch(mul_.data(), add_.data(), mul_.size(),
                                 values, n, mins);
}

}  // namespace lshensemble
