// The family of minwise hash functions shared by every signature in an
// index. Each function is a universal hash h_i(v) = (a_i * v + b_i) mod p
// over the Mersenne prime p = 2^61 - 1, applied to a 64-bit base hash of the
// raw value. Signatures are only comparable when produced by the same
// family (same seed and size).

#ifndef LSHENSEMBLE_MINHASH_HASH_FAMILY_H_
#define LSHENSEMBLE_MINHASH_HASH_FAMILY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// Mersenne prime 2^61 - 1 used as the modulus of the permutation family.
inline constexpr uint64_t kMersennePrime61 = (1ULL << 61) - 1;

/// \brief Multiply-mod over the Mersenne prime 2^61 - 1.
/// Preconditions: a, b < 2^61 - 1.
inline uint64_t MulMod61(uint64_t a, uint64_t b) {
  const unsigned __int128 product =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  uint64_t folded = static_cast<uint64_t>(product & kMersennePrime61) +
                    static_cast<uint64_t>(product >> 61);
  folded = (folded & kMersennePrime61) + (folded >> 61);
  if (folded >= kMersennePrime61) folded -= kMersennePrime61;
  return folded;
}

/// \brief Add-mod over the Mersenne prime 2^61 - 1.
/// Preconditions: a, b < 2^61 - 1.
inline uint64_t AddMod61(uint64_t a, uint64_t b) {
  uint64_t sum = a + b;  // < 2^62, no overflow
  if (sum >= kMersennePrime61) sum -= kMersennePrime61;
  return sum;
}

/// \brief Reduce an arbitrary 64-bit value into [0, 2^61 - 1). The single
/// definition shared by the hash family and every SIMD kernel — the
/// bit-identical-signature guarantee depends on all paths folding values
/// the same way.
inline uint64_t ReduceMod61(uint64_t value) {
  uint64_t folded = (value & kMersennePrime61) + (value >> 61);
  if (folded >= kMersennePrime61) folded -= kMersennePrime61;
  return folded;
}

/// \brief A seeded family of `num_hashes` independent minwise hash
/// functions. Immutable after creation; shared (via shared_ptr) by all
/// signatures of a corpus.
class HashFamily {
 public:
  /// Largest value any member function can return.
  static constexpr uint64_t kMaxHash = kMersennePrime61 - 1;

  /// \param num_hashes the signature length m; must be > 0.
  /// \param seed determines the coefficients; equal seeds give equal
  ///        families.
  static Result<std::shared_ptr<const HashFamily>> Create(int num_hashes,
                                                          uint64_t seed);

  int num_hashes() const { return static_cast<int>(mul_.size()); }
  uint64_t seed() const { return seed_; }

  /// The raw coefficient arrays a_i / b_i, exposed so kernel benches and
  /// parity tests can drive a specific HashKernelOps table directly.
  const std::vector<uint64_t>& multipliers() const { return mul_; }
  const std::vector<uint64_t>& offsets() const { return add_; }

  /// The i-th hash of `value`. `value` may be any 64-bit base hash.
  uint64_t HashOne(uint64_t value, int i) const {
    return AddMod61(MulMod61(mul_[i], ReduceMod61(value)), add_[i]);
  }

  /// \brief Fold `value` into a running minimum signature:
  /// mins[i] = min(mins[i], h_i(value)) for all i. `mins` must have
  /// num_hashes() elements. Dispatches to the active SIMD kernel
  /// (minhash/hash_kernel.h); results are identical on every CPU.
  void UpdateMins(uint64_t value, uint64_t* mins) const;

  /// \brief Fold `n` values into `mins` in one call. Equivalent to calling
  /// UpdateMins() per value but substantially faster: the kernel blocks
  /// the work so min-registers stay in registers across the whole batch.
  void UpdateMinsBatch(const uint64_t* values, size_t n,
                       uint64_t* mins) const;

  /// True iff `other` was created with the same seed and size (and thus
  /// produces identical hash values).
  bool SameAs(const HashFamily& other) const {
    return seed_ == other.seed_ && mul_.size() == other.mul_.size();
  }

 private:
  HashFamily(std::vector<uint64_t> mul, std::vector<uint64_t> add,
             uint64_t seed)
      : mul_(std::move(mul)), add_(std::move(add)), seed_(seed) {}

  std::vector<uint64_t> mul_;  // a_i in [1, p-1]
  std::vector<uint64_t> add_;  // b_i in [0, p-1]
  uint64_t seed_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_MINHASH_HASH_FAMILY_H_
