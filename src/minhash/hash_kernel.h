// Runtime-dispatched SIMD kernels for the hot inner loops of the
// library: folding values into MinHash signatures (the ingest path the
// paper's Table 4 measures), and the two phases of an LshForest probe —
// the lockstep slot-0 equal-range descent over the per-tree first-key
// arrays (gather-based 8/16-way on AVX2/AVX-512) and the prefix-match
// range refinement (the query path).
//
// Every kernel exists in a portable scalar form and, on x86-64 builds with
// a GNU-compatible compiler, an AVX2 form compiled via function-level
// `target("avx2")` attributes (no special compile flags needed; non-x86
// builds simply have no AVX2 table). Dispatch happens once per process:
// ActiveKernelOps() picks the best table the CPU supports, overridable with
// the environment variable LSHE_KERNEL=scalar|avx2 for benchmarking and
// debugging. All implementations of one operation are bit-exact equals —
// the AVX2 mulmod reproduces the scalar Mersenne-61 arithmetic through
// 32-bit limb splitting — so sketches and serialized bytes never depend on
// the host CPU (tests/hash_kernel_test.cc enforces this).

#ifndef LSHENSEMBLE_MINHASH_HASH_KERNEL_H_
#define LSHENSEMBLE_MINHASH_HASH_KERNEL_H_

#include <cstddef>
#include <cstdint>

namespace lshensemble {

/// \brief A table of interchangeable kernel implementations. All function
/// pointers are non-null and produce results identical to the scalar table.
struct HashKernelOps {
  /// Implementation name ("scalar", "avx2") as reported by benches/tests.
  const char* name;

  /// mins[i] = min(mins[i], (mul[i] * Reduce(value) + add[i]) mod p) for
  /// i in [0, m), with p = 2^61 - 1. `mul`/`add` are the hash family's
  /// coefficient arrays; `value` is an arbitrary 64-bit base hash.
  void (*update_one)(const uint64_t* mul, const uint64_t* add, size_t m,
                     uint64_t value, uint64_t* mins);

  /// Fold `n` values into `mins` in one call: equivalent to calling
  /// update_one for every value, but blocked so each run of min-registers
  /// stays in registers across the whole batch instead of round-tripping
  /// through memory per value.
  void (*update_batch)(const uint64_t* mul, const uint64_t* add, size_t m,
                       const uint64_t* values, size_t n, uint64_t* mins);

  /// Number of slots where a[i] == b[i] and the slot has seen a value
  /// (a[i] != 2^61 - 1, the MinHash empty sentinel) — the collision count
  /// behind the Jaccard estimator (paper Eq. 4). Hot in top-k candidate
  /// verification and the dynamic delta scan, where one record signature
  /// is compared against a whole batch of query signatures.
  size_t (*count_collisions)(const uint64_t* a, const uint64_t* b, size_t m);

  /// Batch form: out_counts[j] = count_collisions(query, sigs + j*m, m) for
  /// j in [0, n), over a contiguous arena of n m-slot signatures. One call
  /// scores a whole record block against one query — the dynamic delta
  /// scan's inner loop — amortizing dispatch overhead and letting each
  /// implementation keep its constants and the query signature hot.
  void (*count_collisions_many)(const uint64_t* query, const uint64_t* sigs,
                                size_t m, size_t n, uint32_t* out_counts);

  /// Phase 2 of an LshForest prefix lookup: given the slot-0 match range
  /// [*lo, *hi) of a tree whose full rows (of `depth` u32 keys) start at
  /// `keys`, shrink it to the rows whose slots 1..r-1 also match `prefix`.
  /// Requires r >= 2 and *lo <= *hi; rows in [*lo, *hi) are sorted by
  /// slots 1..depth-1.
  void (*refine_prefix_range)(const uint32_t* keys, size_t depth,
                              const uint32_t* prefix, int r, size_t* lo,
                              size_t* hi);

  /// Phase 1 of an LshForest probe, batched over trees: slot-0 equal
  /// ranges for all cache-missing trees of one probe, answered in one
  /// lockstep branchless descent (one shared halving schedule, per-tree
  /// window lengths) so the loads of a round overlap their cache misses.
  /// `first_keys` is the forest's dense first-key arena — `num_trees`
  /// sorted arrays of `n` u32 keys each, tree t's array starting at t*n.
  /// For i in [0, count), search tree `trees[i]` for `keys[i]` inside the
  /// half-open window [lo[i], hi[i]) (positions relative to the tree),
  /// overwriting lo[i]/hi[i] with the equal range.
  ///
  /// The caller must seed every window so it brackets the tree's full
  /// equal range: lower_bound >= lo[i] and upper_bound <= hi[i] over the
  /// whole array (both hold trivially for [0, n), and for the galloped
  /// windows LshForest::Probe derives from its range memo). An empty
  /// window asserts the equal range is exactly [lo[i], lo[i]) and is
  /// returned unchanged. The vector forms delegate to scalar when
  /// (max_tree+1)*n overflows a signed 32-bit gather index.
  void (*lower_bound_many)(const uint32_t* first_keys, uint32_t n,
                           const uint32_t* trees, const uint32_t* keys,
                           size_t count, uint32_t* lo, uint32_t* hi);
};

/// The portable scalar table; always available.
const HashKernelOps& ScalarKernelOps();

/// The AVX2 table, or nullptr when the build target or the running CPU
/// does not support AVX2.
const HashKernelOps* Avx2KernelOps();

/// The AVX-512F table (8-lane ingest kernels), or nullptr when
/// unsupported.
const HashKernelOps* Avx512KernelOps();

/// \brief The table every hot path should use: the most capable table the
/// CPU supports (avx512 > avx2 > scalar), resolved once per process. The
/// LSHE_KERNEL environment variable ("scalar", "avx2" or "avx512") forces
/// a specific table; an unavailable choice falls back to the default
/// resolution.
const HashKernelOps& ActiveKernelOps();

}  // namespace lshensemble

#endif  // LSHENSEMBLE_MINHASH_HASH_KERNEL_H_
