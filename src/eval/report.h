// Fixed-width console tables for the benchmark harness output.

#ifndef LSHENSEMBLE_EVAL_REPORT_H_
#define LSHENSEMBLE_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace lshensemble {

/// \brief Renders rows of strings as an aligned, pipe-separated table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Fixed-precision double formatting ("0.713").
std::string FormatDouble(double value, int precision = 3);

}  // namespace lshensemble

#endif  // LSHENSEMBLE_EVAL_REPORT_H_
