// Set-overlap accuracy metrics with the paper's conventions (Section 6.1):
// precision/recall per Eq. 27, F-beta per Eq. 28 with beta in {1, 0.5};
// empty results count as precision 1.0 but are excluded from average
// precision; queries with empty ground truth are excluded from average
// recall (nothing to find).

#ifndef LSHENSEMBLE_EVAL_METRICS_H_
#define LSHENSEMBLE_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lshensemble {

/// \brief F-beta of aggregate precision/recall (Eq. 28). Returns 0 when
/// both inputs are 0.
double FBeta(double precision, double recall, double beta);

/// \brief Accumulates per-query precision/recall over an experiment.
/// Not thread-safe; accumulate per thread and Merge().
class AccuracyAccumulator {
 public:
  /// \param result sorted unique candidate ids returned by the index.
  /// \param truth  sorted unique ground-truth ids.
  void AddQuery(const std::vector<uint64_t>& result,
                const std::vector<uint64_t>& truth);

  /// Pre-counted variant for drivers that compute overlaps themselves.
  void AddCounts(size_t result_size, size_t truth_size, size_t hits);

  void Merge(const AccuracyAccumulator& other);

  /// Mean per-query precision over queries with non-empty results.
  double MeanPrecision() const;
  /// Mean per-query recall over queries with non-empty ground truth.
  double MeanRecall() const;
  double F1() const { return FBeta(MeanPrecision(), MeanRecall(), 1.0); }
  double F05() const { return FBeta(MeanPrecision(), MeanRecall(), 0.5); }

  size_t num_queries() const { return num_queries_; }
  size_t num_empty_results() const { return num_empty_results_; }
  size_t num_empty_truths() const { return num_empty_truths_; }

 private:
  size_t num_queries_ = 0;
  size_t num_empty_results_ = 0;
  size_t num_empty_truths_ = 0;
  double precision_sum_ = 0.0;  // over queries with non-empty results
  double recall_sum_ = 0.0;     // over queries with non-empty truths
};

/// \brief |a ∩ b| for sorted unique id vectors.
size_t SortedIntersectionSize(const std::vector<uint64_t>& a,
                              const std::vector<uint64_t>& b);

}  // namespace lshensemble

#endif  // LSHENSEMBLE_EVAL_METRICS_H_
