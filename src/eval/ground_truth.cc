#include "eval/ground_truth.h"

#include <algorithm>
#include <functional>

#include "baselines/exact_search.h"
#include "util/thread_pool.h"

namespace lshensemble {

namespace {

using ScoreTable = std::vector<std::vector<std::pair<uint64_t, double>>>;

Result<ScoreTable> ComputeScores(
    const Corpus& corpus, const std::vector<size_t>& index_indices,
    size_t num_queries,
    const std::function<const Domain&(size_t)>& query_at) {
  ExactSearch engine;
  for (size_t index : index_indices) {
    LSHE_RETURN_IF_ERROR(
        engine.Add(corpus.domain(index).id, corpus.domain(index).values));
  }
  engine.Build();

  ScoreTable scores(num_queries);
  std::vector<Status> statuses(num_queries);
  ThreadPool::Shared().ParallelFor(num_queries, [&](size_t qi) {
    statuses[qi] = engine.Overlaps(query_at(qi).values, &scores[qi]);
    std::sort(scores[qi].begin(), scores[qi].end());
  });
  for (const Status& status : statuses) {
    LSHE_RETURN_IF_ERROR(status);
  }
  return scores;
}

}  // namespace

Result<GroundTruth> GroundTruth::Compute(
    const Corpus& corpus, const std::vector<size_t>& query_indices,
    const std::vector<size_t>& index_indices) {
  GroundTruth truth;
  LSHE_ASSIGN_OR_RETURN(
      truth.scores_,
      ComputeScores(corpus, index_indices, query_indices.size(),
                    [&](size_t qi) -> const Domain& {
                      return corpus.domain(query_indices[qi]);
                    }));
  return truth;
}

Result<GroundTruth> GroundTruth::ComputeForQueries(
    const Corpus& corpus, const std::vector<Domain>& queries,
    const std::vector<size_t>& index_indices) {
  GroundTruth truth;
  LSHE_ASSIGN_OR_RETURN(
      truth.scores_,
      ComputeScores(corpus, index_indices, queries.size(),
                    [&](size_t qi) -> const Domain& { return queries[qi]; }));
  return truth;
}

std::vector<uint64_t> GroundTruth::TruthSet(size_t query_pos,
                                            double t_star) const {
  std::vector<uint64_t> ids;
  for (const auto& [id, containment] : scores_[query_pos]) {
    if (containment >= t_star) ids.push_back(id);
  }
  return ids;  // scores_ sorted by id, so ids are sorted
}

}  // namespace lshensemble
