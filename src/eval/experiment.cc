#include "eval/experiment.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "baselines/asym_minhash.h"
#include "data/sketcher.h"
#include "eval/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace lshensemble {

IndexConfig IndexConfig::Baseline() {
  IndexConfig config;
  config.kind = Kind::kBaseline;
  config.label = "Baseline";
  config.num_partitions = 1;
  return config;
}

IndexConfig IndexConfig::Asym() {
  IndexConfig config;
  config.kind = Kind::kAsym;
  config.label = "Asym";
  return config;
}

IndexConfig IndexConfig::Ensemble(int num_partitions) {
  IndexConfig config;
  config.kind = Kind::kEnsemble;
  config.label = "LSH Ensemble (" + std::to_string(num_partitions) + ")";
  config.num_partitions = num_partitions;
  return config;
}

IndexConfig IndexConfig::AsymPartitioned(int num_partitions) {
  IndexConfig config;
  config.kind = Kind::kAsymPartitioned;
  config.label = "Asym + partitions (" + std::to_string(num_partitions) + ")";
  config.num_partitions = num_partitions;
  return config;
}

std::vector<double> DefaultThresholds() {
  std::vector<double> thresholds;
  for (int i = 1; i <= 20; ++i) thresholds.push_back(0.05 * i);
  return thresholds;
}

AccuracyExperiment::AccuracyExperiment(const Corpus& corpus,
                                       std::vector<size_t> index_indices,
                                       std::vector<size_t> query_indices,
                                       AccuracyExperimentOptions options)
    : corpus_(corpus),
      index_indices_(std::move(index_indices)),
      query_indices_(std::move(query_indices)),
      options_(std::move(options)) {
  if (options_.thresholds.empty()) {
    options_.thresholds = DefaultThresholds();
  }
}

Status AccuracyExperiment::Prepare() {
  if (index_indices_.empty() || query_indices_.empty()) {
    return Status::InvalidArgument("need index and query domains");
  }
  auto family = HashFamily::Create(options_.num_hashes, options_.seed);
  if (!family.ok()) return family.status();
  family_ = std::move(family).value();

  // Sketch every domain referenced by the experiment, in parallel through
  // the batched kernel.
  std::vector<char> needed(corpus_.size(), 0);
  for (size_t i : index_indices_) needed[i] = 1;
  for (size_t i : query_indices_) needed[i] = 1;
  std::vector<size_t> needed_indices;
  needed_indices.reserve(corpus_.size());
  for (size_t i = 0; i < corpus_.size(); ++i) {
    if (needed[i]) needed_indices.push_back(i);
  }
  sketches_.assign(corpus_.size(), MinHash());
  const ParallelSketcher sketcher(family_);
  sketcher.SketchSubset(corpus_, needed_indices, &sketches_);

  LSHE_ASSIGN_OR_RETURN(
      truth_, GroundTruth::Compute(corpus_, query_indices_, index_indices_));
  prepared_ = true;
  return Status::OK();
}

Result<std::vector<AccuracyCell>> AccuracyExperiment::RunConfig(
    const IndexConfig& config) const {
  if (!prepared_) {
    return Status::FailedPrecondition("call Prepare() first");
  }

  // Build the configured index. Per-query parallelism happens at the
  // experiment level, so the ensemble's own query parallelism is disabled.
  std::optional<LshEnsemble> ensemble;
  std::optional<AsymMinhash> asym;
  std::vector<AsymMinhash> asym_partitions;
  if (config.kind == IndexConfig::Kind::kAsym) {
    AsymMinhashOptions options;
    options.num_hashes = options_.num_hashes;
    options.tree_depth = options_.tree_depth;
    AsymMinhash::Builder builder(options, family_);
    for (size_t i : index_indices_) {
      const Domain& domain = corpus_.domain(i);
      LSHE_RETURN_IF_ERROR(
          builder.Add(domain.id, domain.size(), sketches_[i]));
    }
    auto built = std::move(builder).Build();
    if (!built.ok()) return built.status();
    asym.emplace(std::move(built).value());
  } else if (config.kind == IndexConfig::Kind::kAsymPartitioned) {
    // The paper's unnumbered Section 6.1 experiment: Asymmetric Minwise
    // Hashing inside each equi-depth partition. Padding is per partition
    // (to the partition's largest domain), so the padding mass shrinks —
    // but the tail partition still spans a wide size range, which is why
    // the paper observes no significant recall improvement.
    std::vector<uint64_t> sizes;
    sizes.reserve(index_indices_.size());
    for (size_t i : index_indices_) {
      sizes.push_back(corpus_.domain(i).size());
    }
    std::sort(sizes.begin(), sizes.end());
    std::vector<PartitionSpec> specs;
    LSHE_ASSIGN_OR_RETURN(specs,
                          EquiDepthPartitions(sizes, config.num_partitions));
    AsymMinhashOptions options;
    options.num_hashes = options_.num_hashes;
    options.tree_depth = options_.tree_depth;
    for (const PartitionSpec& spec : specs) {
      if (spec.count == 0) continue;
      AsymMinhash::Builder builder(options, family_);
      for (size_t i : index_indices_) {
        const Domain& domain = corpus_.domain(i);
        if (domain.size() >= spec.lower && domain.size() < spec.upper) {
          LSHE_RETURN_IF_ERROR(
              builder.Add(domain.id, domain.size(), sketches_[i]));
        }
      }
      auto built = std::move(builder).Build();
      if (!built.ok()) return built.status();
      asym_partitions.push_back(std::move(built).value());
    }
  } else {
    LshEnsembleOptions options;
    options.num_partitions =
        config.kind == IndexConfig::Kind::kBaseline ? 1 : config.num_partitions;
    options.num_hashes = options_.num_hashes;
    options.tree_depth = options_.tree_depth;
    options.strategy = config.strategy;
    options.interpolation_lambda = config.interpolation_lambda;
    options.parallel_query = false;
    LshEnsembleBuilder builder(options, family_);
    for (size_t i : index_indices_) {
      const Domain& domain = corpus_.domain(i);
      LSHE_RETURN_IF_ERROR(
          builder.Add(domain.id, domain.size(), sketches_[i]));
    }
    auto built = std::move(builder).Build();
    if (!built.ok()) return built.status();
    ensemble.emplace(std::move(built).value());
  }

  auto query_index = [&](const MinHash& sketch, size_t exact_size, double t,
                         std::vector<uint64_t>* out) -> Status {
    const size_t q = options_.use_exact_query_size ? exact_size : 0;
    if (asym.has_value()) return asym->Query(sketch, q, t, out);
    if (config.kind == IndexConfig::Kind::kAsymPartitioned) {
      out->clear();
      std::vector<uint64_t> partial;
      for (const AsymMinhash& partition : asym_partitions) {
        partial.clear();
        LSHE_RETURN_IF_ERROR(partition.Query(sketch, q, t, &partial));
        out->insert(out->end(), partial.begin(), partial.end());
      }
      return Status::OK();
    }
    return ensemble->Query(sketch, q, t, out);
  };

  const size_t num_queries = query_indices_.size();
  std::vector<AccuracyCell> cells;
  cells.reserve(options_.thresholds.size());
  for (double threshold : options_.thresholds) {
    std::vector<size_t> result_sizes(num_queries), truth_sizes(num_queries),
        hit_counts(num_queries);
    std::vector<double> elapsed_micros(num_queries);
    std::vector<Status> statuses(num_queries);

    ThreadPool::Shared().ParallelFor(num_queries, [&](size_t qi) {
      const size_t corpus_index = query_indices_[qi];
      const Domain& domain = corpus_.domain(corpus_index);
      std::vector<uint64_t> candidates;
      StopWatch watch;
      statuses[qi] = query_index(sketches_[corpus_index], domain.size(),
                                 threshold, &candidates);
      elapsed_micros[qi] = watch.ElapsedMicros();
      if (!statuses[qi].ok()) return;
      std::sort(candidates.begin(), candidates.end());
      const std::vector<uint64_t> truth_set = truth_.TruthSet(qi, threshold);
      result_sizes[qi] = candidates.size();
      truth_sizes[qi] = truth_set.size();
      hit_counts[qi] = SortedIntersectionSize(candidates, truth_set);
    });
    for (const Status& status : statuses) {
      LSHE_RETURN_IF_ERROR(status);
    }

    AccuracyAccumulator accumulator;
    double total_micros = 0.0;
    for (size_t qi = 0; qi < num_queries; ++qi) {
      accumulator.AddCounts(result_sizes[qi], truth_sizes[qi], hit_counts[qi]);
      total_micros += elapsed_micros[qi];
    }
    AccuracyCell cell;
    cell.config = config.label;
    cell.threshold = threshold;
    cell.precision = accumulator.MeanPrecision();
    cell.recall = accumulator.MeanRecall();
    cell.f1 = accumulator.F1();
    cell.f05 = accumulator.F05();
    cell.mean_query_micros = total_micros / static_cast<double>(num_queries);
    cell.num_queries = num_queries;
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace lshensemble
