// Exact ground truth for accuracy experiments: per query, the containment
// score of every overlapping indexed domain, computed once; the truth set
// for any threshold is then a filter (the paper sweeps 20 thresholds over
// the same 3,000 queries).

#ifndef LSHENSEMBLE_EVAL_GROUND_TRUTH_H_
#define LSHENSEMBLE_EVAL_GROUND_TRUTH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/corpus.h"
#include "util/result.h"

namespace lshensemble {

/// \brief Exact containment scores of queries against a corpus.
class GroundTruth {
 public:
  /// \brief Compute scores for queries drawn from the corpus itself
  /// (`query_indices` into `corpus`), against the domains listed in
  /// `index_indices`. Runs on the shared thread pool.
  static Result<GroundTruth> Compute(const Corpus& corpus,
                                     const std::vector<size_t>& query_indices,
                                     const std::vector<size_t>& index_indices);

  /// \brief As above with external query domains.
  static Result<GroundTruth> ComputeForQueries(
      const Corpus& corpus, const std::vector<Domain>& queries,
      const std::vector<size_t>& index_indices);

  size_t num_queries() const { return scores_.size(); }

  /// Sorted ids of domains with t(Q, X) >= t_star for query `query_pos`
  /// (position in the original query list).
  std::vector<uint64_t> TruthSet(size_t query_pos, double t_star) const;

  /// All (id, containment) pairs with containment > 0, sorted by id.
  const std::vector<std::pair<uint64_t, double>>& Scores(
      size_t query_pos) const {
    return scores_[query_pos];
  }

 private:
  // scores_[q] = sorted-by-id (domain id, containment > 0)
  std::vector<std::vector<std::pair<uint64_t, double>>> scores_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_EVAL_GROUND_TRUTH_H_
