#include "eval/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace lshensemble {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (size_t c = 0; c < headers_.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]))
         << (c < cells.size() ? cells[c] : "") << " | ";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace lshensemble
