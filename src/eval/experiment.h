// The accuracy-sweep driver shared by the Figure 4/5/6/7/8 benches: build
// one or more index configurations over (a subset of) a corpus, query them
// across a containment-threshold sweep, and score against exact ground
// truth.

#ifndef LSHENSEMBLE_EVAL_EXPERIMENT_H_
#define LSHENSEMBLE_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/lsh_ensemble.h"
#include "data/corpus.h"
#include "eval/ground_truth.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief One index configuration to evaluate.
struct IndexConfig {
  enum class Kind {
    kBaseline,         ///< single-partition dynamic MinHash LSH
    kAsym,             ///< Asymmetric Minwise Hashing
    kEnsemble,         ///< LSH Ensemble
    kAsymPartitioned,  ///< Asym inside each equi-depth partition (the
                       ///< unnumbered Section 6.1 experiment)
  };

  Kind kind = Kind::kEnsemble;
  std::string label;
  /// Ensemble / partitioned-Asym knobs.
  int num_partitions = 16;
  PartitioningStrategy strategy = PartitioningStrategy::kEquiDepth;
  double interpolation_lambda = -1.0;

  static IndexConfig Baseline();
  static IndexConfig Asym();
  static IndexConfig Ensemble(int num_partitions);
  static IndexConfig AsymPartitioned(int num_partitions);
};

struct AccuracyExperimentOptions {
  /// Containment thresholds to sweep; DefaultThresholds() = 0.05..1.0.
  std::vector<double> thresholds;
  int num_hashes = 256;
  int tree_depth = 8;
  uint64_t seed = 42;
  /// Pass the exact |Q| to Query (true) or let the index use the MinHash
  /// cardinality estimate (false; Algorithm 1's approx(|Q|)).
  bool use_exact_query_size = true;
};

/// The paper's sweep: every threshold from 0.05 to 1.0, step 0.05.
std::vector<double> DefaultThresholds();

/// \brief One (config, threshold) measurement.
struct AccuracyCell {
  std::string config;
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double f05 = 0.0;
  double mean_query_micros = 0.0;
  size_t num_queries = 0;
};

/// \brief Builds sketches and ground truth once, then evaluates configs.
class AccuracyExperiment {
 public:
  /// \param corpus        the corpus backing the experiment (must outlive
  ///                      this object).
  /// \param index_indices corpus positions to index.
  /// \param query_indices corpus positions to use as queries.
  AccuracyExperiment(const Corpus& corpus, std::vector<size_t> index_indices,
                     std::vector<size_t> query_indices,
                     AccuracyExperimentOptions options);

  /// Sketch all referenced domains (parallel) and compute ground truth.
  Status Prepare();

  /// Evaluate one configuration across the threshold sweep.
  Result<std::vector<AccuracyCell>> RunConfig(const IndexConfig& config) const;

  const GroundTruth& ground_truth() const { return truth_; }
  const std::shared_ptr<const HashFamily>& family() const { return family_; }
  const MinHash& sketch(size_t corpus_index) const {
    return sketches_[corpus_index];
  }

 private:
  const Corpus& corpus_;
  std::vector<size_t> index_indices_;
  std::vector<size_t> query_indices_;
  AccuracyExperimentOptions options_;

  bool prepared_ = false;
  std::shared_ptr<const HashFamily> family_;
  std::vector<MinHash> sketches_;  // indexed by corpus position
  GroundTruth truth_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_EVAL_EXPERIMENT_H_
