#include "eval/metrics.h"

#include <cstddef>

namespace lshensemble {

double FBeta(double precision, double recall, double beta) {
  const double b2 = beta * beta;
  const double denominator = b2 * precision + recall;
  if (denominator <= 0.0) return 0.0;
  return (1.0 + b2) * precision * recall / denominator;
}

size_t SortedIntersectionSize(const std::vector<uint64_t>& a,
                              const std::vector<uint64_t>& b) {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

void AccuracyAccumulator::AddQuery(const std::vector<uint64_t>& result,
                                   const std::vector<uint64_t>& truth) {
  AddCounts(result.size(), truth.size(),
            SortedIntersectionSize(result, truth));
}

void AccuracyAccumulator::AddCounts(size_t result_size, size_t truth_size,
                                    size_t hits) {
  ++num_queries_;
  if (result_size == 0) {
    // Paper: empty results have precision 1.0 but are excluded from the
    // average precision.
    ++num_empty_results_;
  } else {
    precision_sum_ +=
        static_cast<double>(hits) / static_cast<double>(result_size);
  }
  if (truth_size == 0) {
    ++num_empty_truths_;
  } else {
    recall_sum_ +=
        static_cast<double>(hits) / static_cast<double>(truth_size);
  }
}

void AccuracyAccumulator::Merge(const AccuracyAccumulator& other) {
  num_queries_ += other.num_queries_;
  num_empty_results_ += other.num_empty_results_;
  num_empty_truths_ += other.num_empty_truths_;
  precision_sum_ += other.precision_sum_;
  recall_sum_ += other.recall_sum_;
}

double AccuracyAccumulator::MeanPrecision() const {
  const size_t counted = num_queries_ - num_empty_results_;
  if (counted == 0) return 1.0;
  return precision_sum_ / static_cast<double>(counted);
}

double AccuracyAccumulator::MeanRecall() const {
  const size_t counted = num_queries_ - num_empty_truths_;
  if (counted == 0) return 1.0;
  return recall_sum_ / static_cast<double>(counted);
}

}  // namespace lshensemble
