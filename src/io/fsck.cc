#include "io/fsck.h"

#include <algorithm>
#include <set>

#include "core/sharded_ensemble.h"
#include "io/coding.h"
#include "io/ensemble_io.h"
#include "io/snapshot.h"

namespace lshensemble {

namespace {

/// The 8-byte header v1 images and v2 snapshots share (ensemble_io.cc).
constexpr uint32_t kImageMagic = 0x4C534845u;  // "EHSL" LE = "LSHE"

Result<uint32_t> PeekImageVersion(const std::string& path, Env* env) {
  // Peek through a mapping so picking the verifier stays O(1) for huge
  // v2 images (only the header page faults in).
  auto mapped = env->OpenMapped(path);
  if (!mapped.ok()) return mapped.status().WithMessagePrefix(path);
  DecodeCursor cursor(mapped.value().data());
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!cursor.GetFixed32(&magic) || !cursor.GetFixed32(&version) ||
      magic != kImageMagic) {
    return Status::Corruption(path + ": not an index image (bad magic)");
  }
  return version;
}

}  // namespace

Result<SnapshotVerifyReport> VerifySnapshotFile(const std::string& path,
                                                Env* env) {
  if (env == nullptr) env = Env::Default();
  SnapshotVerifyReport report;
  uint32_t version = 0;
  LSHE_ASSIGN_OR_RETURN(version, PeekImageVersion(path, env));
  report.format_version = version;
  if (version >= kSnapshotFormatVersion) {
    // v2: structural validation + the full segment checksum sweep.
    SnapshotOpenOptions options;
    options.verify_checksums = true;
    options.env = env;
    auto snapshot = MappedSnapshot::Open(path, options);
    if (!snapshot.ok()) return snapshot.status().WithMessagePrefix(path);
  } else {
    // v1: a complete decode, which CRC-checks every block.
    std::string image;
    Status read = env->ReadFileToString(path, &image);
    if (!read.ok()) return read.WithMessagePrefix(path);
    auto decoded = DeserializeEnsemble(image);
    if (!decoded.ok()) return decoded.status().WithMessagePrefix(path);
  }
  return report;
}

Result<SnapshotVerifyReport> VerifySnapshotDir(const std::string& dir,
                                               bool quarantine_strays,
                                               Env* env) {
  if (env == nullptr) env = Env::Default();
  SnapshotVerifyReport report;
  report.sharded = true;
  report.format_version = kSnapshotFormatVersion;

  ShardSnapshotManifest manifest;
  LSHE_ASSIGN_OR_RETURN(manifest,
                        ShardedEnsemble::ReadSnapshotManifest(dir, env));

  SnapshotOpenOptions open_options;
  open_options.verify_checksums = true;
  open_options.env = env;
  std::set<std::string> expected = {"MANIFEST"};
  for (size_t s = 0; s < manifest.num_shards; ++s) {
    const std::string name = ShardedEnsemble::ShardSnapshotFileName(s);
    expected.insert(name);
    const std::string shard_path = dir + "/" + name;
    auto snapshot = MappedSnapshot::Open(shard_path, open_options);
    if (!snapshot.ok()) {
      return snapshot.status().WithMessagePrefix(shard_path);
    }
    const MappedSnapshot& opened = *snapshot.value();
    if (opened.seed() != manifest.seed ||
        opened.options().num_hashes !=
            static_cast<int>(manifest.num_hashes)) {
      return Status::Corruption(
          shard_path + ": shard disagrees with the manifest hash family");
    }
    ++report.shards_verified;
  }

  // Anything the manifest does not bless — orphaned *.tmp from a torn
  // save, shard files beyond num_shards from an aborted re-save — is a
  // stray. Quarantine preserves the bytes for inspection; nothing is
  // ever deleted here.
  std::vector<std::string> entries;
  LSHE_ASSIGN_OR_RETURN(entries, env->ListDirectory(dir));
  for (const std::string& name : entries) {
    if (name == "quarantine" || name.find('/') != std::string::npos) {
      continue;  // already-quarantined files (flat in-memory namespaces)
    }
    if (expected.count(name) == 0) report.stray_files.push_back(name);
  }
  std::sort(report.stray_files.begin(), report.stray_files.end());
  if (quarantine_strays && !report.stray_files.empty()) {
    const std::string quarantine_dir = dir + "/quarantine";
    LSHE_RETURN_IF_ERROR(env->CreateDirectories(quarantine_dir));
    for (const std::string& name : report.stray_files) {
      LSHE_RETURN_IF_ERROR(
          env->RenameFile(dir + "/" + name, quarantine_dir + "/" + name));
    }
    LSHE_RETURN_IF_ERROR(env->SyncDirectory(dir));
    report.strays_quarantined = true;
  }
  return report;
}

}  // namespace lshensemble
