// Snapshot verification (fsck for index images).
//
// A crash — or an operator's rsync — can leave a snapshot directory with
// leftovers the atomic-save protocol makes harmless but untidy: orphaned
// *.tmp files from a torn WriteFileAtomic, shard files from an aborted
// re-save that no manifest blesses. VerifySnapshotDir proves the
// directory is a complete, internally consistent image (manifest CRC,
// every shard present, every shard's full checksum sweep passing, hash
// family agreeing across all of them) and, on request, sweeps anything
// the manifest does not name into a `quarantine/` subdirectory instead
// of deleting it — recovery tooling stays able to inspect the strays.
//
// VerifySnapshotFile is the single-file counterpart: a v2 snapshot gets
// the full structural + checksum validation of MappedSnapshot::Open; a
// v1 image gets a complete decode (which verifies its CRC).
//
// Both are read-only apart from the opt-in quarantine moves, and both
// name the failing file in every error. The `lshe verify` CLI subcommand
// and the crash-recovery tests are the main callers.

#ifndef LSHENSEMBLE_IO_FSCK_H_
#define LSHENSEMBLE_IO_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/env.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief What a verification pass established.
struct SnapshotVerifyReport {
  /// True for a sharded directory, false for a single-file image.
  bool sharded = false;
  /// On-disk format of the (first) verified image: 1 or 2.
  uint32_t format_version = 0;
  /// Shards that passed the full checksum sweep (directories only).
  size_t shards_verified = 0;
  /// Files the manifest does not name, moved to `dir`/quarantine/ (only
  /// when `quarantine_strays` was set; otherwise the strays found are
  /// still listed here, unmoved).
  std::vector<std::string> stray_files;
  /// True when stray_files were actually moved.
  bool strays_quarantined = false;
};

/// \brief Verify a single snapshot/ensemble image file (v1 or v2),
/// checksums included. `env` selects file operations (nullptr =
/// Env::Default()).
Result<SnapshotVerifyReport> VerifySnapshotFile(const std::string& path,
                                                Env* env = nullptr);

/// \brief Verify a ShardedEnsemble::SaveSnapshot directory: manifest CRC,
/// every shard opened with full checksum verification (errors name the
/// failing shard file), hash family consistent across shards. When
/// `quarantine_strays` is set, files the manifest does not name are
/// moved to `dir`/quarantine/ (created on demand).
Result<SnapshotVerifyReport> VerifySnapshotDir(const std::string& dir,
                                               bool quarantine_strays,
                                               Env* env = nullptr);

}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_FSCK_H_
