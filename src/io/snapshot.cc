#include "io/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <span>
#include <unordered_set>

#include "filter/probe_filter.h"
#include "io/coding.h"
#include "io/crc32c.h"
#include "util/instance_id.h"

namespace lshensemble {

// Segments are raw in-memory arrays written verbatim; the format is
// defined as little-endian (like every other encoding in io/).
static_assert(std::endian::native == std::endian::little,
              "v2 snapshots require a little-endian host");

namespace {

constexpr uint32_t kMagic = 0x4C534845u;  // "LSHE", shared with v1 images
constexpr size_t kHeaderBytes = 64;
constexpr size_t kFooterBytes = 20;
constexpr size_t kSegmentAlignment = 64;

}  // namespace

/// Grants the snapshot writer/opener access to engine internals; declared
/// a friend in core/lsh_ensemble.h, core/dynamic_ensemble.h and the
/// MappedSnapshot class itself.
class SnapshotIO {
 public:
  using SegRef = MappedSnapshot::SegRef;
  using ForestRef = MappedSnapshot::ForestRef;
  using RecordsRef = MappedSnapshot::RecordsRef;
  using FilterRef = MappedSnapshot::FilterRef;

  // --------------------------------------------------- encoding helpers

  /// Pad `out` with zeros to the segment alignment, append `bytes` raw
  /// bytes, and return the segment's reference (offset, length, CRC).
  static SegRef AppendSegment(std::string* out, const void* data,
                              size_t bytes) {
    while (out->size() % kSegmentAlignment != 0) out->push_back('\0');
    SegRef ref;
    ref.offset = out->size();
    ref.length = bytes;
    ref.crc = crc32c::Mask(crc32c::Extend(0, data, bytes));
    if (bytes > 0) out->append(static_cast<const char*>(data), bytes);
    return ref;
  }

  static void PutSegRef(std::string* out, const SegRef& ref) {
    PutFixed64(out, ref.offset);
    PutFixed64(out, ref.length);
    PutFixed32(out, ref.crc);
  }

  static bool GetSegRef(DecodeCursor* cursor, SegRef* ref) {
    return cursor->GetFixed64(&ref->offset) &&
           cursor->GetFixed64(&ref->length) && cursor->GetFixed32(&ref->crc);
  }

  static SegRef AppendU64Segment(std::string* out,
                                 std::span<const uint64_t> values) {
    return AppendSegment(out, values.data(),
                         values.size() * sizeof(uint64_t));
  }

  static void PutRecordsRef(std::string* out, const RecordsRef& ref) {
    PutVarint64(out, ref.n);
    PutSegRef(out, ref.ids);
    PutSegRef(out, ref.sizes);
    PutSegRef(out, ref.signatures);
  }

  static bool GetRecordsRef(DecodeCursor* cursor, RecordsRef* ref) {
    return cursor->GetVarint64(&ref->n) && GetSegRef(cursor, &ref->ids) &&
           GetSegRef(cursor, &ref->sizes) &&
           GetSegRef(cursor, &ref->signatures);
  }

  static void PutFilterRef(std::string* out, const FilterRef& ref) {
    PutVarint64(out, ref.num_blocks);
    PutSegRef(out, ref.blocks);
  }

  static bool GetFilterRef(DecodeCursor* cursor, FilterRef* ref) {
    // The fast-range block pick multiplies a 32-bit hash slice by the
    // block count in 64 bits; bound it so the product cannot overflow
    // (2^31 blocks is a 64 GiB filter — far past any real image).
    return cursor->GetVarint64(&ref->num_blocks) &&
           GetSegRef(cursor, &ref->blocks) && ref->num_blocks >= 1 &&
           ref->num_blocks <= (uint64_t{1} << 31);
  }

  // ------------------------------------------------------------- writing

  /// Append the fixed header, returning nothing; segments follow.
  static void AppendHeader(std::string* out) {
    PutFixed32(out, kMagic);
    PutFixed32(out, kSnapshotFormatVersion);
    out->resize(kHeaderBytes, '\0');
  }

  /// Append one forest's four arena segments and record their refs.
  /// Validates the entry permutation here, at write time: the mapped open
  /// trusts the manifest's per-forest bound (n) and Probe clamps at its
  /// single entry-read site, so opening never rescans the entry segments.
  static Result<ForestRef> AppendForest(std::string* out,
                                        const LshForest& forest) {
    const auto entries = forest.entry_arena();
    for (const uint32_t entry : entries) {
      if (entry >= forest.size()) {
        return Status::Internal(
            "snapshot: forest entry index out of range at write time");
      }
    }
    ForestRef ref;
    ref.num_trees = forest.num_trees();
    ref.tree_depth = forest.tree_depth();
    ref.n = forest.size();
    ref.ids = AppendU64Segment(out, forest.id_array());
    const auto keys = forest.key_arena();
    ref.keys = AppendSegment(out, keys.data(), keys.size_bytes());
    ref.entries = AppendSegment(out, entries.data(), entries.size_bytes());
    const auto first = forest.first_key_arena();
    ref.first_keys = AppendSegment(out, first.data(), first.size_bytes());
    return ref;
  }

  /// Append one probe filter's block segment and record its ref.
  static FilterRef AppendFilter(std::string* out, const ProbeFilter& filter) {
    FilterRef ref;
    ref.num_blocks = filter.num_blocks();
    const auto blocks = filter.blocks();
    ref.blocks = AppendSegment(out, blocks.data(), blocks.size_bytes());
    return ref;
  }

  /// Append the probe-filter segments of `ensemble` (engine union first,
  /// then one per forest, in file order right after the forest arenas).
  /// Returns false — and appends nothing — when the ensemble carries no
  /// filters, which keeps the image byte-identical to the pre-filter
  /// format.
  static bool AppendFilters(std::string* out, const LshEnsemble& ensemble,
                            FilterRef* engine_filter,
                            std::vector<FilterRef>* forest_filters) {
    if (ensemble.filters_.empty() || ensemble.engine_filter_.empty()) {
      return false;
    }
    *engine_filter = AppendFilter(out, ensemble.engine_filter_);
    forest_filters->reserve(ensemble.filters_.size());
    for (const ProbeFilter& filter : ensemble.filters_) {
      forest_filters->push_back(AppendFilter(out, filter));
    }
    return true;
  }

  /// Append the manifest + footer. `forests` parallels `ensemble`'s
  /// partitions when `ensemble` is non-null.
  static void AppendManifestAndFooter(std::string* out,
                                      const LshEnsembleOptions& options,
                                      uint64_t seed, uint64_t total,
                                      const std::vector<PartitionSpec>& specs,
                                      const std::vector<ForestRef>& forests,
                                      const RecordsRef* indexed,
                                      const RecordsRef* delta,
                                      uint64_t tombstone_n,
                                      const SegRef* tombstones,
                                      const FilterRef* engine_filter = nullptr,
                                      const std::vector<FilterRef>*
                                          forest_filters = nullptr) {
    const size_t manifest_offset = out->size();
    std::string manifest;
    PutVarint32(&manifest, static_cast<uint32_t>(options.num_partitions));
    PutVarint32(&manifest, static_cast<uint32_t>(options.num_hashes));
    PutVarint32(&manifest, static_cast<uint32_t>(options.tree_depth));
    manifest.push_back(static_cast<char>(options.strategy));
    PutFixed64(&manifest,
               std::bit_cast<uint64_t>(options.interpolation_lambda));
    PutVarint32(&manifest, static_cast<uint32_t>(options.integration_nodes));
    manifest.push_back(options.prune_unreachable_partitions ? 1 : 0);
    manifest.push_back(options.parallel_build ? 1 : 0);
    manifest.push_back(options.parallel_query ? 1 : 0);
    PutFixed64(&manifest, seed);
    PutVarint64(&manifest, total);

    PutVarint64(&manifest, specs.size());
    for (const PartitionSpec& spec : specs) {
      PutVarint64(&manifest, spec.lower);
      PutVarint64(&manifest, spec.upper);
      PutVarint64(&manifest, spec.count);
    }

    manifest.push_back(forests.empty() ? 0 : 1);  // has_ensemble
    if (!forests.empty()) {
      PutVarint64(&manifest, forests.size());
      for (const ForestRef& forest : forests) {
        PutVarint32(&manifest, static_cast<uint32_t>(forest.num_trees));
        PutVarint32(&manifest, static_cast<uint32_t>(forest.tree_depth));
        PutVarint64(&manifest, forest.n);
        PutSegRef(&manifest, forest.ids);
        PutSegRef(&manifest, forest.keys);
        PutSegRef(&manifest, forest.entries);
        PutSegRef(&manifest, forest.first_keys);
      }
    }

    manifest.push_back(indexed != nullptr ? 1 : 0);  // has_sidecar
    if (indexed != nullptr) {
      PutRecordsRef(&manifest, *indexed);
      PutRecordsRef(&manifest, *delta);
      PutVarint64(&manifest, tombstone_n);
      PutSegRef(&manifest, *tombstones);
    }

    // Optional trailing section: the probe-filter table. A filterless
    // image appends nothing here — not even a flag byte — so it stays
    // byte-identical to the pre-filter format, and pre-filter readers'
    // "trailing manifest bytes" check keeps rejecting filtered images
    // instead of misparsing them.
    if (engine_filter != nullptr) {
      manifest.push_back(1);  // has_filters
      PutFilterRef(&manifest, *engine_filter);
      PutVarint64(&manifest, forest_filters->size());
      for (const FilterRef& filter : *forest_filters) {
        PutFilterRef(&manifest, filter);
      }
    }

    out->append(manifest);
    PutFixed64(out, manifest_offset);
    PutFixed32(out, static_cast<uint32_t>(manifest.size()));
    PutFixed32(out, crc32c::Mask(crc32c::Value(manifest)));
    PutFixed32(out, kMagic);
  }

  static Status SerializeEnsemble(const LshEnsemble& ensemble,
                                  std::string* out) {
    out->clear();
    AppendHeader(out);
    std::vector<ForestRef> forests;
    forests.reserve(ensemble.forests_.size());
    for (const LshForest& forest : ensemble.forests_) {
      if (!forest.indexed()) {
        return Status::FailedPrecondition(
            "only an indexed forest can be snapshotted");
      }
      ForestRef ref;
      LSHE_ASSIGN_OR_RETURN(ref, AppendForest(out, forest));
      forests.push_back(ref);
    }
    FilterRef engine_filter;
    std::vector<FilterRef> forest_filters;
    const bool has_filters =
        AppendFilters(out, ensemble, &engine_filter, &forest_filters);
    AppendManifestAndFooter(out, ensemble.options_,
                            ensemble.family_->seed(), ensemble.total_,
                            ensemble.specs_, forests, nullptr, nullptr, 0,
                            nullptr, has_filters ? &engine_filter : nullptr,
                            has_filters ? &forest_filters : nullptr);
    return Status::OK();
  }

  static Status SerializeDynamic(const DynamicLshEnsemble& index,
                                 std::string* out) {
    out->clear();
    AppendHeader(out);

    const bool has_ensemble = index.ensemble_.has_value();
    std::vector<ForestRef> forests;
    LshEnsembleOptions options =
        has_ensemble ? index.ensemble_->options_ : index.options_.base;
    options.pinned_partitions.clear();  // never serialized (see options doc)
    std::vector<PartitionSpec> specs;
    uint64_t total = 0;
    FilterRef engine_filter;
    std::vector<FilterRef> forest_filters;
    bool has_filters = false;
    if (has_ensemble) {
      specs = index.ensemble_->specs_;
      total = index.ensemble_->total_;
      forests.reserve(index.ensemble_->forests_.size());
      for (const LshForest& forest : index.ensemble_->forests_) {
        ForestRef ref;
        LSHE_ASSIGN_OR_RETURN(ref, AppendForest(out, forest));
        forests.push_back(ref);
      }
      has_filters = AppendFilters(out, *index.ensemble_, &engine_filter,
                                  &forest_filters);
    }

    // Indexed side-car: every live domain that is NOT in the delta —
    // heap records minus the delta set, plus (for a re-snapshot of a
    // mapped index) the still-live mapped records. Sorted by id, so the
    // reopened index can binary-search it. The two sources are disjoint:
    // a mapped index's records_ holds only overlay (delta) records.
    const std::unordered_set<uint64_t> delta_set(index.delta_.begin(),
                                                 index.delta_.end());
    std::vector<uint64_t> indexed_ids;
    for (const auto& [id, record] : index.records_) {
      if (delta_set.count(id) == 0) indexed_ids.push_back(id);
    }
    for (size_t i = 0; i < index.mapped_.n; ++i) {
      const uint64_t id = index.mapped_.ids[i];
      if (index.tombstones_.count(id) == 0) indexed_ids.push_back(id);
    }
    std::sort(indexed_ids.begin(), indexed_ids.end());

    const auto m = static_cast<size_t>(index.family_->num_hashes());
    auto append_records = [&](const std::vector<uint64_t>& ids,
                              RecordsRef* ref) {
      std::vector<uint64_t> sizes;
      std::vector<uint64_t> signatures;
      sizes.reserve(ids.size());
      signatures.reserve(ids.size() * m);
      for (const uint64_t id : ids) {
        const auto it = index.records_.find(id);
        if (it != index.records_.end()) {
          sizes.push_back(it->second.size);
          const auto& values = it->second.signature.values();
          signatures.insert(signatures.end(), values.begin(), values.end());
        } else {
          const size_t pos = index.MappedFind(id);
          sizes.push_back(index.mapped_.sizes[pos]);
          const uint64_t* row = index.mapped_.signatures + pos * m;
          signatures.insert(signatures.end(), row, row + m);
        }
      }
      ref->n = ids.size();
      ref->ids = AppendU64Segment(out, ids);
      ref->sizes = AppendU64Segment(out, sizes);
      ref->signatures = AppendU64Segment(out, signatures);
    };

    RecordsRef indexed;
    append_records(indexed_ids, &indexed);
    // Delta records keep their delta order: the reopened index must scan
    // them in the same order to stay bit-identical with this one.
    RecordsRef delta;
    append_records(index.delta_, &delta);

    std::vector<uint64_t> tombstones(index.tombstones_.begin(),
                                     index.tombstones_.end());
    std::sort(tombstones.begin(), tombstones.end());
    const SegRef tombstone_seg = AppendU64Segment(out, tombstones);

    AppendManifestAndFooter(out, options, index.family_->seed(), total,
                            specs, forests, &indexed, &delta,
                            tombstones.size(), &tombstone_seg,
                            has_filters ? &engine_filter : nullptr,
                            has_filters ? &forest_filters : nullptr);
    return Status::OK();
  }

  // ------------------------------------------------------------- opening

  /// Validate the file structure and parse the manifest into `snapshot`
  /// (whose data_ must already view the image).
  static Status Parse(MappedSnapshot* snapshot,
                      const SnapshotOpenOptions& options) {
    const std::string_view data = snapshot->data_;
    if (data.size() < kHeaderBytes + kFooterBytes) {
      return Status::Corruption("snapshot: file too small");
    }
    DecodeCursor header(data.substr(0, kHeaderBytes));
    uint32_t magic = 0;
    uint32_t version = 0;
    header.GetFixed32(&magic);
    header.GetFixed32(&version);
    if (magic != kMagic) {
      return Status::Corruption("snapshot: bad magic (not an index file)");
    }
    if (version > kSnapshotFormatVersion) {
      return Status::NotSupported("snapshot: written by a newer version");
    }
    if (version != kSnapshotFormatVersion) {
      return Status::Corruption("snapshot: not a v2 image");
    }
    for (size_t i = 8; i < kHeaderBytes; ++i) {
      if (data[i] != '\0') {
        return Status::Corruption("snapshot: non-zero header padding");
      }
    }

    DecodeCursor footer(data.substr(data.size() - kFooterBytes));
    uint64_t manifest_offset = 0;
    uint32_t manifest_length = 0;
    uint32_t manifest_crc = 0;
    uint32_t footer_magic = 0;
    footer.GetFixed64(&manifest_offset);
    footer.GetFixed32(&manifest_length);
    footer.GetFixed32(&manifest_crc);
    footer.GetFixed32(&footer_magic);
    if (footer_magic != kMagic) {
      return Status::Corruption("snapshot: bad footer magic");
    }
    // Overflow-safe: subtract from the (known >= 84) file size instead of
    // summing attacker-chosen fields, so a crafted offset cannot wrap the
    // check and push substr() out of bounds.
    if (manifest_offset < kHeaderBytes ||
        manifest_offset > data.size() - kFooterBytes ||
        manifest_length != data.size() - kFooterBytes - manifest_offset) {
      return Status::Corruption("snapshot: manifest extent out of bounds");
    }
    // The manifest parse below touches every manifest/footer page; tell
    // the pager to start faulting them in now (no-op for buffer-backed
    // images and off POSIX — Advise checks is_mapped()).
    if (options.apply_madvise) {
      snapshot->file_.Advise(manifest_offset, data.size() - manifest_offset,
                             MappedFile::Advice::kWillNeed);
    }
    const std::string_view manifest =
        data.substr(manifest_offset, manifest_length);
    if (crc32c::Unmask(manifest_crc) != crc32c::Value(manifest)) {
      return Status::Corruption("snapshot: manifest checksum mismatch");
    }

    LSHE_RETURN_IF_ERROR(ParseManifest(snapshot, manifest));
    LSHE_RETURN_IF_ERROR(ValidateSegments(snapshot, manifest_offset));
    if (options.verify_checksums) {
      // The verification sweep reads every segment byte front-to-back
      // exactly once: ask for aggressive sequential readahead over the
      // segment region for its duration, then reset to the default policy
      // so serving probes (random access) keep normal readahead.
      const bool hint = options.apply_madvise && manifest_offset > kHeaderBytes;
      if (hint) {
        snapshot->file_.Advise(kHeaderBytes, manifest_offset - kHeaderBytes,
                               MappedFile::Advice::kSequential);
      }
      const Status status = VerifySegmentChecksums(snapshot);
      if (hint) {
        snapshot->file_.Advise(kHeaderBytes, manifest_offset - kHeaderBytes,
                               MappedFile::Advice::kNormal);
      }
      LSHE_RETURN_IF_ERROR(status);
    }
    return Status::OK();
  }

  static Status ParseManifest(MappedSnapshot* snapshot,
                              std::string_view manifest) {
    DecodeCursor body(manifest);
    uint32_t num_partitions = 0, num_hashes = 0, tree_depth = 0;
    uint32_t integration_nodes = 0;
    uint64_t lambda_bits = 0;
    std::string_view strategy_byte, flags;
    if (!body.GetVarint32(&num_partitions) || !body.GetVarint32(&num_hashes) ||
        !body.GetVarint32(&tree_depth) || !body.GetRaw(1, &strategy_byte) ||
        !body.GetFixed64(&lambda_bits) ||
        !body.GetVarint32(&integration_nodes) || !body.GetRaw(3, &flags) ||
        !body.GetFixed64(&snapshot->seed_) ||
        !body.GetVarint64(&snapshot->total_)) {
      return Status::Corruption("snapshot: malformed options");
    }
    LshEnsembleOptions& options = snapshot->options_;
    options.num_partitions = static_cast<int>(num_partitions);
    options.num_hashes = static_cast<int>(num_hashes);
    options.tree_depth = static_cast<int>(tree_depth);
    const auto strategy = static_cast<uint8_t>(strategy_byte[0]);
    if (strategy > static_cast<uint8_t>(PartitioningStrategy::kMinimaxCost)) {
      return Status::Corruption("snapshot: unknown strategy");
    }
    options.strategy = static_cast<PartitioningStrategy>(strategy);
    options.interpolation_lambda = std::bit_cast<double>(lambda_bits);
    options.integration_nodes = static_cast<int>(integration_nodes);
    options.prune_unreachable_partitions = flags[0] != 0;
    options.parallel_build = flags[1] != 0;
    options.parallel_query = flags[2] != 0;
    LSHE_RETURN_IF_ERROR(options.Validate());

    // Bound the count by what the manifest could possibly hold (>= 3
    // bytes per spec) BEFORE resizing: a crafted count must fail cheaply,
    // not allocate gigabytes first.
    uint64_t spec_count = 0;
    if (!body.GetVarint64(&spec_count) ||
        spec_count > manifest.size() / 3) {
      return Status::Corruption("snapshot: malformed partitions");
    }
    snapshot->specs_.resize(spec_count);
    for (PartitionSpec& spec : snapshot->specs_) {
      uint64_t count = 0;
      if (!body.GetVarint64(&spec.lower) || !body.GetVarint64(&spec.upper) ||
          !body.GetVarint64(&count) || spec.lower >= spec.upper) {
        return Status::Corruption("snapshot: malformed partition");
      }
      spec.count = count;
    }

    std::string_view flag;
    if (!body.GetRaw(1, &flag)) {
      return Status::Corruption("snapshot: truncated ensemble flag");
    }
    snapshot->has_ensemble_ = flag[0] != 0;
    if (snapshot->has_ensemble_) {
      uint64_t forest_count = 0;
      if (!body.GetVarint64(&forest_count) ||
          forest_count != snapshot->specs_.size()) {
        return Status::Corruption(
            "snapshot: partition/forest count mismatch");
      }
      snapshot->forests_.resize(forest_count);
      for (ForestRef& forest : snapshot->forests_) {
        uint32_t trees = 0, depth = 0;
        if (!body.GetVarint32(&trees) || !body.GetVarint32(&depth) ||
            !body.GetVarint64(&forest.n) || !GetSegRef(&body, &forest.ids) ||
            !GetSegRef(&body, &forest.keys) ||
            !GetSegRef(&body, &forest.entries) ||
            !GetSegRef(&body, &forest.first_keys)) {
          return Status::Corruption("snapshot: malformed forest table");
        }
        if (trees == 0 || depth == 0 || trees > 4096 || depth > 4096 ||
            forest.n > (uint64_t{1} << 40)) {
          return Status::Corruption("snapshot: implausible forest shape");
        }
        forest.num_trees = static_cast<int>(trees);
        forest.tree_depth = static_cast<int>(depth);
      }
    } else if (snapshot->total_ != 0) {
      return Status::Corruption("snapshot: total without an ensemble");
    }

    if (!body.GetRaw(1, &flag)) {
      return Status::Corruption("snapshot: truncated side-car flag");
    }
    snapshot->has_sidecar_ = flag[0] != 0;
    if (snapshot->has_sidecar_) {
      if (!GetRecordsRef(&body, &snapshot->indexed_) ||
          !GetRecordsRef(&body, &snapshot->delta_) ||
          !body.GetVarint64(&snapshot->tombstone_n_) ||
          !GetSegRef(&body, &snapshot->tombstones_)) {
        return Status::Corruption("snapshot: malformed side-car table");
      }
    }

    // Optional trailing probe-filter table (images written before the
    // filter tier end here; they open with no pruning).
    if (!body.empty()) {
      if (!body.GetRaw(1, &flag)) {
        return Status::Corruption("snapshot: truncated filter flag");
      }
      snapshot->has_filters_ = flag[0] != 0;
      if (snapshot->has_filters_) {
        if (!snapshot->has_ensemble_) {
          return Status::Corruption("snapshot: filters without an ensemble");
        }
        uint64_t filter_count = 0;
        if (!GetFilterRef(&body, &snapshot->engine_filter_) ||
            !body.GetVarint64(&filter_count) ||
            filter_count != snapshot->forests_.size()) {
          return Status::Corruption("snapshot: malformed filter table");
        }
        snapshot->forest_filters_.resize(filter_count);
        for (FilterRef& filter : snapshot->forest_filters_) {
          if (!GetFilterRef(&body, &filter)) {
            return Status::Corruption("snapshot: malformed filter table");
          }
        }
      }
    }
    if (!body.empty()) {
      return Status::Corruption("snapshot: trailing manifest bytes");
    }
    return Status::OK();
  }

  /// Collect every segment in file order and check: alignment, exact
  /// expected lengths, in-bounds extents, no overlap, and all-zero gaps —
  /// every byte of the image is accounted for, so no flip anywhere
  /// (payloads aside, see CRCs) can go unnoticed.
  static Status ValidateSegments(MappedSnapshot* snapshot,
                                 uint64_t manifest_offset) {
    struct Expected {
      const SegRef* ref;
      uint64_t length;
    };
    // Expected lengths are computed in 128 bits and any product past 2^62
    // is rejected outright: a crafted manifest whose shape product wraps
    // uint64 must fail the open, never alias a storable length (random
    // corruption is already caught by the manifest CRC; this closes the
    // hostile-input path).
    bool overflow = false;
    auto checked_bytes = [&overflow](std::initializer_list<uint64_t> factors) {
      unsigned __int128 product = 1;
      for (const uint64_t factor : factors) product *= factor;
      if (product > (uint64_t{1} << 62)) {
        overflow = true;
        return uint64_t{0};
      }
      return static_cast<uint64_t>(product);
    };
    std::vector<Expected> segments;
    for (const ForestRef& forest : snapshot->forests_) {
      const uint64_t n = forest.n;
      const auto trees = static_cast<uint64_t>(forest.num_trees);
      const auto depth = static_cast<uint64_t>(forest.tree_depth);
      segments.push_back({&forest.ids, checked_bytes({n, sizeof(uint64_t)})});
      segments.push_back(
          {&forest.keys, checked_bytes({n, trees, depth, sizeof(uint32_t)})});
      segments.push_back(
          {&forest.entries, checked_bytes({n, trees, sizeof(uint32_t)})});
      segments.push_back(
          {&forest.first_keys, checked_bytes({n, trees, sizeof(uint32_t)})});
    }
    if (snapshot->has_filters_) {
      // Filter segments follow the forest arenas in file order: engine
      // union first, then one per forest.
      segments.push_back(
          {&snapshot->engine_filter_.blocks,
           checked_bytes({snapshot->engine_filter_.num_blocks,
                          kProbeFilterBlockLanes, sizeof(uint32_t)})});
      for (const FilterRef& filter : snapshot->forest_filters_) {
        segments.push_back(
            {&filter.blocks,
             checked_bytes({filter.num_blocks, kProbeFilterBlockLanes,
                            sizeof(uint32_t)})});
      }
    }
    if (snapshot->has_sidecar_) {
      const auto m = static_cast<uint64_t>(snapshot->options_.num_hashes);
      for (const RecordsRef* records :
           {&snapshot->indexed_, &snapshot->delta_}) {
        segments.push_back(
            {&records->ids, checked_bytes({records->n, sizeof(uint64_t)})});
        segments.push_back(
            {&records->sizes, checked_bytes({records->n, sizeof(uint64_t)})});
        segments.push_back({&records->signatures,
                            checked_bytes({records->n, m, sizeof(uint64_t)})});
      }
      segments.push_back(
          {&snapshot->tombstones_,
           checked_bytes({snapshot->tombstone_n_, sizeof(uint64_t)})});
    }

    if (overflow) {
      return Status::Corruption("snapshot: segment shape overflows");
    }

    const std::string_view data = snapshot->data_;
    uint64_t cursor = kHeaderBytes;
    for (const Expected& expected : segments) {
      const SegRef& ref = *expected.ref;
      if (ref.length != expected.length) {
        return Status::Corruption("snapshot: segment length mismatch");
      }
      // Overflow-safe extent check (offset + length could wrap uint64).
      if (ref.offset % kSegmentAlignment != 0 || ref.offset < cursor ||
          ref.length > manifest_offset ||
          ref.offset > manifest_offset - ref.length) {
        return Status::Corruption("snapshot: segment extent out of bounds");
      }
      for (uint64_t i = cursor; i < ref.offset; ++i) {
        if (data[i] != '\0') {
          return Status::Corruption("snapshot: non-zero segment padding");
        }
      }
      cursor = ref.offset + ref.length;
    }
    for (uint64_t i = cursor; i < manifest_offset; ++i) {
      if (data[i] != '\0') {
        return Status::Corruption("snapshot: non-zero segment padding");
      }
    }
    return Status::OK();
  }

  static Status VerifySegmentChecksums(const MappedSnapshot* snapshot) {
    auto verify = [&](const SegRef& ref) {
      const std::string_view payload =
          snapshot->data_.substr(ref.offset, ref.length);
      return crc32c::Unmask(ref.crc) == crc32c::Value(payload);
    };
    for (const ForestRef& forest : snapshot->forests_) {
      for (const SegRef* ref :
           {&forest.ids, &forest.keys, &forest.entries, &forest.first_keys}) {
        if (!verify(*ref)) {
          return Status::Corruption("snapshot: segment checksum mismatch");
        }
      }
    }
    if (snapshot->has_filters_) {
      if (!verify(snapshot->engine_filter_.blocks)) {
        return Status::Corruption("snapshot: segment checksum mismatch");
      }
      for (const FilterRef& filter : snapshot->forest_filters_) {
        if (!verify(filter.blocks)) {
          return Status::Corruption("snapshot: segment checksum mismatch");
        }
      }
    }
    if (snapshot->has_sidecar_) {
      for (const RecordsRef* records :
           {&snapshot->indexed_, &snapshot->delta_}) {
        for (const SegRef* ref :
             {&records->ids, &records->sizes, &records->signatures}) {
          if (!verify(*ref)) {
            return Status::Corruption("snapshot: segment checksum mismatch");
          }
        }
      }
      if (!verify(snapshot->tombstones_)) {
        return Status::Corruption("snapshot: segment checksum mismatch");
      }
    }
    return Status::OK();
  }

  template <typename T>
  static std::span<const T> SegmentSpan(const MappedSnapshot& snapshot,
                                        const SegRef& ref) {
    return {reinterpret_cast<const T*>(snapshot.data_.data() + ref.offset),
            static_cast<size_t>(ref.length / sizeof(T))};
  }

  /// Build a mapped LshEnsemble over `snapshot` (requires has_ensemble()).
  static Result<LshEnsemble> MakeEnsemble(
      std::shared_ptr<const MappedSnapshot> snapshot) {
    if (!snapshot->has_ensemble_) {
      return Status::InvalidArgument("snapshot holds no ensemble image");
    }
    const LshEnsembleOptions& options = snapshot->options_;
    std::shared_ptr<const HashFamily> family;
    LSHE_ASSIGN_OR_RETURN(
        family, HashFamily::Create(options.num_hashes, snapshot->seed_));

    LshEnsemble ensemble(options, std::move(family));
    ensemble.specs_ = snapshot->specs_;
    ensemble.total_ = snapshot->total_;
    ensemble.forests_.reserve(snapshot->forests_.size());
    for (size_t i = 0; i < snapshot->forests_.size(); ++i) {
      const ForestRef& ref = snapshot->forests_[i];
      auto forest = LshForest::FromMapped(
          ref.num_trees, ref.tree_depth,
          SegmentSpan<uint64_t>(*snapshot, ref.ids),
          SegmentSpan<uint32_t>(*snapshot, ref.keys),
          SegmentSpan<uint32_t>(*snapshot, ref.entries),
          SegmentSpan<uint32_t>(*snapshot, ref.first_keys), snapshot);
      if (!forest.ok()) return forest.status();
      if (forest->size() != ensemble.specs_[i].count) {
        return Status::Corruption(
            "snapshot: partition count does not match forest size");
      }
      ensemble.forests_.push_back(std::move(forest).value());
    }

    if (snapshot->has_filters_) {
      // Filters are served zero-copy like the arenas: the blocks stay in
      // the mapping, the snapshot handle keeps them alive.
      auto engine_filter = ProbeFilter::FromMapped(
          snapshot->engine_filter_.num_blocks,
          SegmentSpan<uint32_t>(*snapshot, snapshot->engine_filter_.blocks),
          snapshot);
      if (!engine_filter.ok()) return engine_filter.status();
      ensemble.engine_filter_ = std::move(engine_filter).value();
      ensemble.filters_.reserve(snapshot->forest_filters_.size());
      for (const MappedSnapshot::FilterRef& ref :
           snapshot->forest_filters_) {
        auto filter = ProbeFilter::FromMapped(
            ref.num_blocks, SegmentSpan<uint32_t>(*snapshot, ref.blocks),
            snapshot);
        if (!filter.ok()) return filter.status();
        ensemble.filters_.push_back(std::move(filter).value());
      }
    }

    Tuner::Options tuner_options;
    tuner_options.max_b = options.num_hashes / options.tree_depth;
    tuner_options.max_r = options.tree_depth;
    tuner_options.integration_nodes = options.integration_nodes;
    LSHE_ASSIGN_OR_RETURN(ensemble.tuner_, Tuner::Create(tuner_options));
    return ensemble;
  }

  /// Build a mapped DynamicLshEnsemble (requires has_sidecar()).
  static Result<DynamicLshEnsemble> MakeDynamic(
      std::shared_ptr<const MappedSnapshot> snapshot,
      const DynamicEnsembleOptions& options) {
    if (!snapshot->has_sidecar_) {
      return Status::InvalidArgument(
          "snapshot holds no dynamic side-car (use OpenEnsembleMapped)");
    }
    LSHE_RETURN_IF_ERROR(options.Validate());
    if (options.base.num_hashes != snapshot->options_.num_hashes) {
      return Status::InvalidArgument(
          "options.base.num_hashes does not match the snapshot");
    }
    std::shared_ptr<const HashFamily> family;
    LSHE_ASSIGN_OR_RETURN(family, HashFamily::Create(
                                      snapshot->options_.num_hashes,
                                      snapshot->seed_));
    DynamicLshEnsemble index(options, family);
    index.instance_id_ = NextInstanceId();

    const auto m = static_cast<size_t>(snapshot->options_.num_hashes);
    const auto indexed_ids =
        SegmentSpan<uint64_t>(*snapshot, snapshot->indexed_.ids);
    // The binary-searched lookup needs strictly ascending ids (which also
    // rules out duplicates against the delta below).
    for (size_t i = 1; i < indexed_ids.size(); ++i) {
      if (indexed_ids[i - 1] >= indexed_ids[i]) {
        return Status::Corruption("snapshot: side-car ids not ascending");
      }
    }
    if (snapshot->has_ensemble_) {
      auto ensemble = MakeEnsemble(snapshot);
      if (!ensemble.ok()) return ensemble.status();
      index.ensemble_.emplace(std::move(ensemble).value());
      // The snapshot's options describe the arenas (partitions, tree
      // shape); query-time POLICY comes from the caller, exactly as a
      // heap rebuild would apply it. Without this override the indexed
      // path would prune (or pool-dispatch) per the flags the index was
      // SAVED with while the delta scan follows the caller's — two
      // admission rules in one engine until the first Flush().
      index.ensemble_->options_.prune_unreachable_partitions =
          options.base.prune_unreachable_partitions;
      index.ensemble_->options_.parallel_build = options.base.parallel_build;
      index.ensemble_->options_.parallel_query = options.base.parallel_query;
      // Filter policy too: whether the image carried filters is a fact of
      // the snapshot (filters_ presence), but whether future rebuilds
      // build them — and at what density — follows the caller.
      index.ensemble_->options_.build_probe_filter =
          options.base.build_probe_filter;
      index.ensemble_->options_.filter_bits_per_key =
          options.base.filter_bits_per_key;
      index.indexed_count_ = index.ensemble_->size();
    } else if (snapshot->indexed_.n != 0) {
      return Status::Corruption(
          "snapshot: indexed side-car without an ensemble");
    }

    index.mapped_.ids = indexed_ids.data();
    index.mapped_.sizes =
        SegmentSpan<uint64_t>(*snapshot, snapshot->indexed_.sizes).data();
    index.mapped_.signatures =
        SegmentSpan<uint64_t>(*snapshot, snapshot->indexed_.signatures)
            .data();
    index.mapped_.n = snapshot->indexed_.n;
    index.mapped_.m = m;

    // Tombstones first: a delta record that re-inserts a tombstoned id
    // must find the tombstone already in place (Insert() semantics).
    const auto tombstones =
        SegmentSpan<uint64_t>(*snapshot, snapshot->tombstones_);
    for (const uint64_t id : tombstones) index.tombstones_.insert(id);

    // The delta restores as an owned overlay, in its original order (the
    // scan order bit-identity depends on it). This copies only the delta
    // — by policy a small fraction of the index.
    const auto delta_ids =
        SegmentSpan<uint64_t>(*snapshot, snapshot->delta_.ids);
    const auto delta_sizes =
        SegmentSpan<uint64_t>(*snapshot, snapshot->delta_.sizes);
    const auto delta_sigs =
        SegmentSpan<uint64_t>(*snapshot, snapshot->delta_.signatures);
    for (size_t i = 0; i < delta_ids.size(); ++i) {
      const uint64_t id = delta_ids[i];
      if (index.records_.count(id) > 0 || index.MappedLive(id)) {
        return Status::Corruption("snapshot: duplicate live id in delta");
      }
      std::vector<uint64_t> slots(delta_sigs.begin() + i * m,
                                  delta_sigs.begin() + (i + 1) * m);
      auto signature = MinHash::FromSlots(family, std::move(slots));
      if (!signature.ok()) {
        return Status::Corruption("snapshot: invalid delta signature slot");
      }
      index.records_.emplace(
          id, DynamicLshEnsemble::Record{
                  static_cast<size_t>(delta_sizes[i]),
                  std::move(signature).value()});
      index.delta_.push_back(id);
    }

    index.mapped_backing_ = std::move(snapshot);
    return index;
  }
};

// --------------------------------------------------------- public surface

Result<std::shared_ptr<const MappedSnapshot>> MappedSnapshot::Open(
    const std::string& path, const SnapshotOpenOptions& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  auto file = env->OpenMapped(path);
  if (!file.ok()) return file.status();
  // shared_ptr<MappedSnapshot> with a private ctor: allocate directly.
  std::shared_ptr<MappedSnapshot> snapshot(new MappedSnapshot());
  snapshot->file_ = std::move(file).value();
  snapshot->data_ = snapshot->file_.data();
  LSHE_RETURN_IF_ERROR(SnapshotIO::Parse(snapshot.get(), options));
  return std::shared_ptr<const MappedSnapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const MappedSnapshot>> MappedSnapshot::FromBuffer(
    std::string buffer, const SnapshotOpenOptions& options) {
  std::shared_ptr<MappedSnapshot> snapshot(new MappedSnapshot());
  snapshot->buffer_ = std::move(buffer);
  snapshot->data_ = snapshot->buffer_;
  LSHE_RETURN_IF_ERROR(SnapshotIO::Parse(snapshot.get(), options));
  return std::shared_ptr<const MappedSnapshot>(std::move(snapshot));
}

Status SerializeEnsembleSnapshot(const LshEnsemble& ensemble,
                                 std::string* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  return SnapshotIO::SerializeEnsemble(ensemble, out);
}

Status WriteEnsembleSnapshot(const LshEnsemble& ensemble,
                             const std::string& path, Env* env) {
  std::string image;
  LSHE_RETURN_IF_ERROR(SerializeEnsembleSnapshot(ensemble, &image));
  return WriteFileAtomic(env != nullptr ? env : Env::Default(), path, image);
}

namespace {

/// Opening a *dynamic* snapshot as a bare ensemble would silently drop
/// its delta records and tombstones — refuse unless the side-car is
/// clean (then the ensemble IS the whole index).
Status CheckSidecarClean(const MappedSnapshot& snapshot) {
  if (snapshot.delta_records() > 0 || snapshot.tombstone_records() > 0) {
    return Status::InvalidArgument(
        "snapshot carries unflushed dynamic state; open it with "
        "OpenDynamicSnapshot");
  }
  return Status::OK();
}

}  // namespace

Result<LshEnsemble> OpenEnsembleMapped(const std::string& path,
                                       const SnapshotOpenOptions& options) {
  std::shared_ptr<const MappedSnapshot> snapshot;
  LSHE_ASSIGN_OR_RETURN(snapshot, MappedSnapshot::Open(path, options));
  LSHE_RETURN_IF_ERROR(CheckSidecarClean(*snapshot));
  return SnapshotIO::MakeEnsemble(std::move(snapshot));
}

Result<LshEnsemble> EnsembleFromSnapshot(
    std::shared_ptr<const MappedSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("snapshot must not be null");
  }
  LSHE_RETURN_IF_ERROR(CheckSidecarClean(*snapshot));
  return SnapshotIO::MakeEnsemble(std::move(snapshot));
}

Status SerializeDynamicSnapshot(const DynamicLshEnsemble& index,
                                std::string* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  return SnapshotIO::SerializeDynamic(index, out);
}

Status WriteDynamicSnapshot(const DynamicLshEnsemble& index,
                            const std::string& path, Env* env) {
  std::string image;
  LSHE_RETURN_IF_ERROR(SerializeDynamicSnapshot(index, &image));
  return WriteFileAtomic(env != nullptr ? env : Env::Default(), path, image);
}

Result<DynamicLshEnsemble> OpenDynamicSnapshot(
    const std::string& path, const DynamicEnsembleOptions& options,
    const SnapshotOpenOptions& open_options) {
  std::shared_ptr<const MappedSnapshot> snapshot;
  LSHE_ASSIGN_OR_RETURN(snapshot, MappedSnapshot::Open(path, open_options));
  return SnapshotIO::MakeDynamic(std::move(snapshot), options);
}

Result<DynamicLshEnsemble> DynamicFromSnapshotBuffer(
    std::string buffer, const DynamicEnsembleOptions& options,
    const SnapshotOpenOptions& open_options) {
  std::shared_ptr<const MappedSnapshot> snapshot;
  LSHE_ASSIGN_OR_RETURN(
      snapshot, MappedSnapshot::FromBuffer(std::move(buffer), open_options));
  return SnapshotIO::MakeDynamic(std::move(snapshot), options);
}

}  // namespace lshensemble
