#include "io/file.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define LSHE_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace lshensemble {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

#if LSHE_HAVE_POSIX_IO
/// fsync the directory containing `path`, so a rename inside it is
/// durable. Best-effort failures are real IO errors and reported.
Status SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  return SyncDirectory(dir);
}
#endif

}  // namespace

Status SyncDirectory(const std::string& dir) {
#if LSHE_HAVE_POSIX_IO
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open directory " + dir));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError(ErrnoMessage("fsync directory " + dir));
  }
#else
  (void)dir;
#endif
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError(ErrnoMessage("open " + tmp));
  }
  if (!data.empty() &&
      std::fwrite(data.data(), 1, data.size(), file) != data.size()) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("write " + tmp));
  }
  if (std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("flush " + tmp));
  }
#if LSHE_HAVE_POSIX_IO
  // Durability, not just atomicity: without this fsync the rename below
  // can land on disk before the data blocks, and a crash then surfaces a
  // truncated-but-committed image under the final name.
  if (::fsync(::fileno(file)) != 0) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("fsync " + tmp));
  }
#endif
  if (std::fclose(file) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("close " + tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("rename " + tmp + " -> " + path));
  }
#if LSHE_HAVE_POSIX_IO
  // The rename is a directory mutation; sync the directory so the new
  // entry (pointing at the synced data) survives a crash too.
  LSHE_RETURN_IF_ERROR(SyncParentDirectory(path));
#endif
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError(ErrnoMessage("open " + path));
  }
  out->clear();
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::IOError(ErrnoMessage("read " + path));
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("remove " + path));
  }
  return Status::OK();
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && addr_ != nullptr) addr_ = fallback_.data();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && addr_ != nullptr) addr_ = fallback_.data();
  }
  return *this;
}

MappedFile::~MappedFile() { Release(); }

void MappedFile::Advise(size_t offset, size_t length, Advice advice) const {
#if LSHE_HAVE_POSIX_IO
  if (!mapped_ || length == 0 || offset >= size_) return;
  length = std::min(length, size_ - offset);
  // madvise wants page-aligned addresses: round the start down and the
  // end up, clamped to the mapping (mmap lengths round up internally, so
  // the tail of the last page is ours to hint).
  const auto page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t begin = (offset / page) * page;
  const size_t end = offset + length;
  const auto* base = static_cast<const char*>(addr_);
  int native = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal:
      native = MADV_NORMAL;
      break;
    case Advice::kSequential:
      native = MADV_SEQUENTIAL;
      break;
    case Advice::kWillNeed:
      native = MADV_WILLNEED;
      break;
  }
  // Best-effort: a refused hint changes nothing but page-cache timing.
  (void)::madvise(const_cast<char*>(base) + begin, end - begin, native);
#else
  (void)offset;
  (void)length;
  (void)advice;
#endif
}

void MappedFile::Release() {
#if LSHE_HAVE_POSIX_IO
  if (mapped_ && addr_ != nullptr) {
    ::munmap(const_cast<void*>(addr_), size_);
  }
#endif
  addr_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  MappedFile result;
#if LSHE_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError(ErrnoMessage("open " + path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("stat " + path));
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return result;  // empty file: empty view, nothing to map
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError(ErrnoMessage("mmap " + path));
  }
  result.addr_ = addr;
  result.size_ = size;
  result.mapped_ = true;
#else
  // No mmap on this platform: fall back to a heap read. Correct, but the
  // open is O(file) and pages are private to this process.
  LSHE_RETURN_IF_ERROR(ReadFileToString(path, &result.fallback_));
  result.addr_ = result.fallback_.data();
  result.size_ = result.fallback_.size();
#endif
  return result;
}

}  // namespace lshensemble
