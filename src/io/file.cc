#include "io/file.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "io/env.h"

#if defined(__unix__) || defined(__APPLE__)
#define LSHE_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace lshensemble {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

/// MappedFile instances holding backing bytes; see LiveMappingCount().
std::atomic<size_t> g_live_mappings{0};

}  // namespace

Status SyncDirectory(const std::string& dir) {
#if LSHE_HAVE_POSIX_IO
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open directory " + dir));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError(ErrnoMessage("fsync directory " + dir));
  }
#else
  (void)dir;
#endif
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  return WriteFileAtomic(Env::Default(), path, data);
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError(ErrnoMessage("open " + path));
  }
  out->clear();
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::IOError(ErrnoMessage("read " + path));
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("remove " + path));
  }
  return Status::OK();
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && addr_ != nullptr) addr_ = fallback_.data();
  other.fallback_.clear();  // moved-from must not look like live backing
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && addr_ != nullptr) addr_ = fallback_.data();
    other.fallback_.clear();  // moved-from must not look like live backing
  }
  return *this;
}

MappedFile MappedFile::FromBuffer(std::string bytes) {
  MappedFile result;
  result.fallback_ = std::move(bytes);
  result.addr_ = result.fallback_.data();
  result.size_ = result.fallback_.size();
  if (!result.fallback_.empty()) g_live_mappings.fetch_add(1);
  return result;
}

size_t MappedFile::LiveMappingCount() { return g_live_mappings.load(); }

MappedFile::~MappedFile() { Release(); }

void MappedFile::Advise(size_t offset, size_t length, Advice advice) const {
#if LSHE_HAVE_POSIX_IO
  if (!mapped_ || length == 0 || offset >= size_) return;
  length = std::min(length, size_ - offset);
  // madvise wants page-aligned addresses: round the start down and the
  // end up, clamped to the mapping (mmap lengths round up internally, so
  // the tail of the last page is ours to hint).
  const auto page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t begin = (offset / page) * page;
  const size_t end = offset + length;
  const auto* base = static_cast<const char*>(addr_);
  int native = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal:
      native = MADV_NORMAL;
      break;
    case Advice::kSequential:
      native = MADV_SEQUENTIAL;
      break;
    case Advice::kWillNeed:
      native = MADV_WILLNEED;
      break;
  }
  // Best-effort: a refused hint changes nothing but page-cache timing.
  (void)::madvise(const_cast<char*>(base) + begin, end - begin, native);
#else
  (void)offset;
  (void)length;
  (void)advice;
#endif
}

void MappedFile::Release() {
  if (mapped_ || !fallback_.empty()) g_live_mappings.fetch_sub(1);
#if LSHE_HAVE_POSIX_IO
  if (mapped_ && addr_ != nullptr) {
    ::munmap(const_cast<void*>(addr_), size_);
  }
#endif
  addr_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  MappedFile result;
#if LSHE_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError(ErrnoMessage("open " + path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("stat " + path));
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return result;  // empty file: empty view, nothing to map
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError(ErrnoMessage("mmap " + path));
  }
  result.addr_ = addr;
  result.size_ = size;
  result.mapped_ = true;
  g_live_mappings.fetch_add(1);
#else
  // No mmap on this platform: fall back to a heap read. Correct, but the
  // open is O(file) and pages are private to this process.
  LSHE_RETURN_IF_ERROR(ReadFileToString(path, &result.fallback_));
  result.addr_ = result.fallback_.data();
  result.size_ = result.fallback_.size();
  if (!result.fallback_.empty()) g_live_mappings.fetch_add(1);
#endif
  return result;
}

}  // namespace lshensemble
