#include "io/file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace lshensemble {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

}  // namespace

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError(ErrnoMessage("open " + tmp));
  }
  if (!data.empty() &&
      std::fwrite(data.data(), 1, data.size(), file) != data.size()) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("write " + tmp));
  }
  if (std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("flush " + tmp));
  }
  if (std::fclose(file) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("close " + tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("rename " + tmp + " -> " + path));
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError(ErrnoMessage("open " + path));
  }
  out->clear();
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::IOError(ErrnoMessage("read " + path));
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("remove " + path));
  }
  return Status::OK();
}

}  // namespace lshensemble
