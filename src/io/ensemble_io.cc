#include "io/ensemble_io.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>

#include "io/coding.h"
#include "io/crc32c.h"
#include "io/file.h"
#include "io/snapshot.h"

namespace lshensemble {

namespace {

constexpr uint32_t kMagic = 0x4C534845u;  // "EHSL" little-endian = "LSHE"

enum BlockType : uint8_t {
  kBlockOptions = 1,
  kBlockPartitions = 2,
  kBlockForest = 3,
  kBlockEnd = 0xFF,
};

void AppendBlock(std::string* out, BlockType type, std::string_view payload) {
  out->push_back(static_cast<char>(type));
  PutVarint64(out, payload.size());
  out->append(payload);
  PutFixed32(out, crc32c::Mask(crc32c::Value(payload)));
}

Status ReadBlock(DecodeCursor* cursor, uint8_t* type,
                 std::string_view* payload) {
  std::string_view type_byte;
  if (!cursor->GetRaw(1, &type_byte)) {
    return Status::Corruption("index image: truncated block header");
  }
  *type = static_cast<uint8_t>(type_byte[0]);
  if (!cursor->GetLengthPrefixed(payload)) {
    return Status::Corruption("index image: truncated block payload");
  }
  uint32_t stored_crc = 0;
  if (!cursor->GetFixed32(&stored_crc)) {
    return Status::Corruption("index image: truncated block checksum");
  }
  if (crc32c::Unmask(stored_crc) != crc32c::Value(*payload)) {
    return Status::Corruption("index image: block checksum mismatch");
  }
  return Status::OK();
}

}  // namespace

/// Grants the save/load path access to the ensemble's internals; declared
/// a friend in core/lsh_ensemble.h.
class EnsembleSerializer {
 public:
  static Status Serialize(const LshEnsemble& ensemble, std::string* out) {
    out->clear();
    PutFixed32(out, kMagic);
    PutFixed32(out, kEnsembleFormatVersion);

    std::string payload;
    const LshEnsembleOptions& options = ensemble.options_;
    PutVarint32(&payload, static_cast<uint32_t>(options.num_partitions));
    PutVarint32(&payload, static_cast<uint32_t>(options.num_hashes));
    PutVarint32(&payload, static_cast<uint32_t>(options.tree_depth));
    payload.push_back(static_cast<char>(options.strategy));
    PutFixed64(&payload, std::bit_cast<uint64_t>(options.interpolation_lambda));
    PutVarint32(&payload, static_cast<uint32_t>(options.integration_nodes));
    payload.push_back(options.prune_unreachable_partitions ? 1 : 0);
    payload.push_back(options.parallel_build ? 1 : 0);
    payload.push_back(options.parallel_query ? 1 : 0);
    PutFixed64(&payload, ensemble.family_->seed());
    PutVarint64(&payload, ensemble.total_);
    AppendBlock(out, kBlockOptions, payload);

    payload.clear();
    PutVarint64(&payload, ensemble.specs_.size());
    for (const PartitionSpec& spec : ensemble.specs_) {
      PutVarint64(&payload, spec.lower);
      PutVarint64(&payload, spec.upper);
      PutVarint64(&payload, spec.count);
    }
    AppendBlock(out, kBlockPartitions, payload);

    for (const LshForest& forest : ensemble.forests_) {
      payload.clear();
      LSHE_RETURN_IF_ERROR(forest.SerializeTo(&payload));
      AppendBlock(out, kBlockForest, payload);
    }

    AppendBlock(out, kBlockEnd, {});
    return Status::OK();
  }

  static Result<LshEnsemble> Deserialize(std::string_view image) {
    DecodeCursor cursor(image);
    uint32_t magic = 0;
    uint32_t version = 0;
    if (!cursor.GetFixed32(&magic) || !cursor.GetFixed32(&version)) {
      return Status::Corruption("index image: truncated file header");
    }
    if (magic != kMagic) {
      return Status::Corruption("index image: bad magic (not an index file)");
    }
    if (version == 0) {
      return Status::Corruption("index image: version 0 is never written");
    }
    if (version > kEnsembleFormatVersion) {
      return Status::NotSupported("index image: written by a newer version");
    }

    LshEnsembleOptions options;
    uint64_t seed = 0;
    uint64_t total = 0;
    bool saw_options = false;
    bool saw_partitions = false;
    bool saw_end = false;
    std::vector<PartitionSpec> specs;
    std::vector<LshForest> forests;

    while (!saw_end) {
      uint8_t type = 0;
      std::string_view payload;
      LSHE_RETURN_IF_ERROR(ReadBlock(&cursor, &type, &payload));
      DecodeCursor body(payload);
      switch (type) {
        case kBlockOptions: {
          uint32_t num_partitions = 0, num_hashes = 0, tree_depth = 0;
          uint32_t integration_nodes = 0;
          std::string_view flags;
          uint64_t lambda_bits = 0;
          std::string_view strategy_byte;
          if (!body.GetVarint32(&num_partitions) ||
              !body.GetVarint32(&num_hashes) ||
              !body.GetVarint32(&tree_depth) ||
              !body.GetRaw(1, &strategy_byte) ||
              !body.GetFixed64(&lambda_bits) ||
              !body.GetVarint32(&integration_nodes) ||
              !body.GetRaw(3, &flags) || !body.GetFixed64(&seed) ||
              !body.GetVarint64(&total) || !body.empty()) {
            return Status::Corruption("index image: malformed options block");
          }
          options.num_partitions = static_cast<int>(num_partitions);
          options.num_hashes = static_cast<int>(num_hashes);
          options.tree_depth = static_cast<int>(tree_depth);
          const auto strategy = static_cast<uint8_t>(strategy_byte[0]);
          if (strategy > static_cast<uint8_t>(
                             PartitioningStrategy::kMinimaxCost)) {
            return Status::Corruption("index image: unknown strategy");
          }
          options.strategy = static_cast<PartitioningStrategy>(strategy);
          options.interpolation_lambda = std::bit_cast<double>(lambda_bits);
          options.integration_nodes = static_cast<int>(integration_nodes);
          options.prune_unreachable_partitions = flags[0] != 0;
          options.parallel_build = flags[1] != 0;
          options.parallel_query = flags[2] != 0;
          LSHE_RETURN_IF_ERROR(options.Validate());
          saw_options = true;
          break;
        }
        case kBlockPartitions: {
          // Bound the count by what the payload could possibly hold
          // (>= 3 bytes per spec) before resizing, so a crafted count
          // fails cheaply instead of allocating gigabytes first.
          uint64_t count = 0;
          if (!body.GetVarint64(&count) || count > payload.size() / 3) {
            return Status::Corruption(
                "index image: malformed partitions block");
          }
          specs.resize(count);
          for (PartitionSpec& spec : specs) {
            uint64_t spec_count = 0;
            if (!body.GetVarint64(&spec.lower) ||
                !body.GetVarint64(&spec.upper) ||
                !body.GetVarint64(&spec_count) || spec.lower >= spec.upper) {
              return Status::Corruption("index image: malformed partition");
            }
            spec.count = spec_count;
          }
          if (!body.empty()) {
            return Status::Corruption(
                "index image: trailing partition bytes");
          }
          saw_partitions = true;
          break;
        }
        case kBlockForest: {
          auto forest = LshForest::Deserialize(payload);
          if (!forest.ok()) return forest.status();
          forests.push_back(std::move(forest).value());
          break;
        }
        case kBlockEnd:
          if (!body.empty()) {
            return Status::Corruption("index image: non-empty end block");
          }
          saw_end = true;
          break;
        default:
          return Status::Corruption("index image: unknown block type");
      }
    }
    if (!cursor.empty()) {
      return Status::Corruption("index image: data after end block");
    }
    if (!saw_options || !saw_partitions) {
      return Status::Corruption("index image: missing required blocks");
    }
    if (forests.size() != specs.size()) {
      return Status::Corruption(
          "index image: partition/forest count mismatch");
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      if (forests[i].size() != specs[i].count) {
        return Status::Corruption(
            "index image: partition count does not match forest size");
      }
    }

    std::shared_ptr<const HashFamily> family;
    LSHE_ASSIGN_OR_RETURN(family,
                          HashFamily::Create(options.num_hashes, seed));
    LshEnsemble ensemble(options, std::move(family));
    ensemble.specs_ = std::move(specs);
    ensemble.forests_ = std::move(forests);
    ensemble.total_ = total;

    Tuner::Options tuner_options;
    tuner_options.max_b = options.num_hashes / options.tree_depth;
    tuner_options.max_r = options.tree_depth;
    tuner_options.integration_nodes = options.integration_nodes;
    LSHE_ASSIGN_OR_RETURN(ensemble.tuner_, Tuner::Create(tuner_options));
    // v1 images predate the probe-filter tier; rebuild it from the
    // decoded forests (per options.build_probe_filter) so v1-loaded
    // engines prune like built ones — and a v1 -> v2 snapshot
    // conversion writes filter segments.
    ensemble.RebuildProbeFilters();
    return ensemble;
  }
};

Status SerializeEnsemble(const LshEnsemble& ensemble, std::string* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  return EnsembleSerializer::Serialize(ensemble, out);
}

namespace {

/// Version of the 8-byte header shared by v1 images and v2 snapshots
/// (0 when the buffer is too short or carries a foreign magic).
uint32_t PeekVersion(std::string_view image) {
  DecodeCursor cursor(image);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!cursor.GetFixed32(&magic) || !cursor.GetFixed32(&version) ||
      magic != kMagic) {
    return 0;
  }
  return version;
}

}  // namespace

Result<LshEnsemble> DeserializeEnsemble(std::string_view image) {
  if (PeekVersion(image) == kSnapshotFormatVersion) {
    // A v2 snapshot image: validate and borrow arenas from an adopted
    // copy of the buffer (the caller's view need not outlive the engine).
    std::shared_ptr<const MappedSnapshot> snapshot;
    LSHE_ASSIGN_OR_RETURN(snapshot,
                          MappedSnapshot::FromBuffer(std::string(image)));
    return EnsembleFromSnapshot(std::move(snapshot));
  }
  return EnsembleSerializer::Deserialize(image);
}

Status SaveEnsemble(const LshEnsemble& ensemble, const std::string& path,
                    Env* env) {
  std::string image;
  LSHE_RETURN_IF_ERROR(SerializeEnsemble(ensemble, &image));
  return WriteFileAtomic(env != nullptr ? env : Env::Default(), path, image);
}

Result<LshEnsemble> LoadEnsemble(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  // Version-dispatched: v2 snapshots open via mmap with zero arena
  // copies; v1 images decode through the copying path. Both formats
  // share the 8-byte header, so peeking it picks the loader.
  std::string head;
  {
    // Peek through a mapping, not a full read: only the header page
    // faults in, so picking the loader stays O(1) for huge v2 images.
    auto mapped = env->OpenMapped(path);
    if (mapped.ok()) {
      const std::string_view data = mapped.value().data();
      head.assign(data.substr(0, std::min<size_t>(8, data.size())));
    }
  }
  if (PeekVersion(head) == kSnapshotFormatVersion) {
    SnapshotOpenOptions open_options;
    open_options.env = env;
    return OpenEnsembleMapped(path, open_options);
  }
  std::string image;
  LSHE_RETURN_IF_ERROR(env->ReadFileToString(path, &image));
  return DeserializeEnsemble(image);
}

}  // namespace lshensemble
