#include "io/fault_env.h"

#include <algorithm>
#include <utility>

namespace lshensemble {

namespace {

/// True when `path` names a regular file directly inside `dir`.
bool InDirectory(const std::string& path, const std::string& dir) {
  return ParentDirectory(path) == dir;
}

}  // namespace

/// Writer over one in-memory inode. All fault checks go through the
/// owning env under its mutex, so concurrent writers and script edits
/// are safe.
class FaultInjectionWritableFile final : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env,
                             std::shared_ptr<FaultInjectionEnv::Inode> inode,
                             std::string path)
      : env_(env), inode_(std::move(inode)), path_(std::move(path)) {}

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    LSHE_RETURN_IF_ERROR(
        env_->BeginMutatingOpLocked(FaultInjectionEnv::Op::kSync));
    inode_->durable = inode_->content;
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 protected:
  RawWrite WriteRaw(const char* data, size_t size) override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    if (env_->eintr_budget_ > 0) {
      --env_->eintr_budget_;
      return {Status::OK(), 0, true};
    }
    Status gate = env_->BeginMutatingOpLocked(FaultInjectionEnv::Op::kWrite);
    if (!gate.ok()) return {std::move(gate), 0, false};
    size_t accept = size;
    if (env_->short_write_cap_ > 0) {
      accept = std::min(accept, env_->short_write_cap_);
    }
    if (env_->bytes_written_ >= env_->write_budget_) {
      return {Status::IOError("write " + path_ +
                              ": No space left on device (simulated)"),
              0, false};
    }
    accept = static_cast<size_t>(std::min<uint64_t>(
        accept, env_->write_budget_ - env_->bytes_written_));
    inode_->content.append(data, accept);
    env_->bytes_written_ += accept;
    return {Status::OK(), accept, false};
  }

 private:
  FaultInjectionEnv* env_;
  std::shared_ptr<FaultInjectionEnv::Inode> inode_;
  std::string path_;
};

void FaultInjectionEnv::FailNth(Op op, size_t nth, Status status) {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_.push_back(ScriptedFault{op, nth, std::move(status)});
}

void FaultInjectionEnv::set_short_write_cap(size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  short_write_cap_ = cap;
}

void FaultInjectionEnv::InjectEintr(size_t times) {
  std::lock_guard<std::mutex> lock(mutex_);
  eintr_budget_ = times;
}

void FaultInjectionEnv::SetWriteBudget(uint64_t budget) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_budget_ = budget;
  bytes_written_ = 0;
}

void FaultInjectionEnv::CutPowerAfterOps(uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  power_cut_after_ = ops_ + n;
  power_lost_ = false;
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_.clear();
  short_write_cap_ = 0;
  eintr_budget_ = 0;
  write_budget_ = UINT64_MAX;
  power_cut_after_ = UINT64_MAX;
  power_lost_ = false;
}

void FaultInjectionEnv::LosePower() {
  std::lock_guard<std::mutex> lock(mutex_);
  // The disk after the crash: durable entries only, each truncated to its
  // synced bytes. Copy inodes so post-reboot writes don't disturb the
  // captured durable images.
  std::map<std::string, std::shared_ptr<Inode>> surviving;
  for (const auto& [path, inode] : durable_) {
    auto copy = std::make_shared<Inode>();
    copy->content = inode->durable;
    copy->durable = inode->durable;
    surviving[path] = copy;
  }
  live_ = surviving;
  durable_ = std::move(surviving);
  faults_.clear();
  short_write_cap_ = 0;
  eintr_budget_ = 0;
  write_budget_ = UINT64_MAX;
  power_cut_after_ = UINT64_MAX;
  power_lost_ = false;
}

uint64_t FaultInjectionEnv::mutating_op_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

void FaultInjectionEnv::set_metadata_durability(MetadataDurability mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  metadata_mode_ = mode;
}

Status FaultInjectionEnv::BeginMutatingOpLocked(Op op) {
  if (power_lost_ || ops_ >= power_cut_after_) {
    power_lost_ = true;
    return Status::IOError("simulated power loss");
  }
  ++ops_;
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    if (it->op != op) continue;
    if (--it->countdown == 0) {
      Status failure = std::move(it->status);
      faults_.erase(it);
      return failure;
    }
    break;  // one armed script per op class counts down at a time
  }
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  LSHE_RETURN_IF_ERROR(BeginMutatingOpLocked(Op::kOpenWrite));
  // Open-for-write starts a fresh inode: the truncation is volatile (a
  // durable entry keeps pointing at the old inode until the next
  // directory sync makes the new one visible).
  auto inode = std::make_shared<Inode>();
  live_[path] = inode;
  if (metadata_mode_ == MetadataDurability::kEager) durable_[path] = inode;
  return std::unique_ptr<WritableFile>(
      new FaultInjectionWritableFile(this, inode, path));
}

Status FaultInjectionEnv::ReadFileToString(const std::string& path,
                                           std::string* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  *out = it->second->content;
  return Status::OK();
}

Result<MappedFile> FaultInjectionEnv::OpenMapped(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return MappedFile::FromBuffer(it->second->content);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  LSHE_RETURN_IF_ERROR(BeginMutatingOpLocked(Op::kRename));
  auto it = live_.find(from);
  if (it == live_.end()) {
    return Status::IOError("rename " + from + " -> " + to +
                           ": No such file (simulated)");
  }
  std::shared_ptr<Inode> inode = it->second;
  live_.erase(it);
  live_[to] = inode;
  if (metadata_mode_ == MetadataDurability::kEager) {
    durable_.erase(from);
    durable_[to] = inode;
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFileIfExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  LSHE_RETURN_IF_ERROR(BeginMutatingOpLocked(Op::kRemove));
  live_.erase(path);
  if (metadata_mode_ == MetadataDurability::kEager) durable_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::SyncDirectory(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  LSHE_RETURN_IF_ERROR(BeginMutatingOpLocked(Op::kDirSync));
  // Entry changes in `dir` commit: the durable entry table for this
  // directory becomes the live one. Data durability is untouched — a
  // synced entry for an unsynced file surfaces truncated bytes after a
  // crash, exactly the torn state fsync-before-rename exists to prevent.
  for (auto it = durable_.begin(); it != durable_.end();) {
    if (InDirectory(it->first, dir) && live_.count(it->first) == 0) {
      it = durable_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [path, inode] : live_) {
    if (InDirectory(path, dir)) durable_[path] = inode;
  }
  return Status::OK();
}

Status FaultInjectionEnv::CreateDirectories(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (power_lost_) return Status::IOError("simulated power loss");
  (void)dir;  // directories are implicit in the flat in-memory namespace
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.count(path) > 0;
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDirectory(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [path, inode] : live_) {
    (void)inode;
    if (InDirectory(path, dir)) {
      names.push_back(path.substr(dir.size() + (dir == "/" ? 0 : 1)));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace lshensemble
