#include "io/env.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define LSHE_ENV_HAVE_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#else
#define LSHE_ENV_HAVE_POSIX 0
#endif

namespace lshensemble {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

#if LSHE_ENV_HAVE_POSIX

/// Raw-fd writer: write(2) results (including EINTR and short writes)
/// surface through WriteRaw and are handled by the shared Append loop.
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Sync() override {
    if (fd_ < 0) {
      return Status::FailedPrecondition("Sync on closed file " + path_);
    }
    int rc;
    do {
      rc = ::fsync(fd_);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      return Status::IOError(ErrnoMessage("fsync " + path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = std::exchange(fd_, -1);
    if (::close(fd) != 0) {
      return Status::IOError(ErrnoMessage("close " + path_));
    }
    return Status::OK();
  }

 protected:
  RawWrite WriteRaw(const char* data, size_t size) override {
    if (fd_ < 0) {
      return {Status::FailedPrecondition("write on closed file " + path_), 0,
              false};
    }
    const ssize_t n = ::write(fd_, data, size);
    if (n < 0) {
      if (errno == EINTR) return {Status::OK(), 0, true};
      return {Status::IOError(ErrnoMessage("write " + path_)), 0, false};
    }
    return {Status::OK(), static_cast<size_t>(n), false};
  }

 private:
  int fd_ = -1;
  std::string path_;
};

#else

/// Portable fallback: stdio retries nothing itself, but fwrite of a full
/// buffer either accepts everything or reports an error.
class StdioWritableFile final : public WritableFile {
 public:
  StdioWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~StdioWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Sync() override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("Sync on closed file " + path_);
    }
    if (std::fflush(file_) != 0) {
      return Status::IOError(ErrnoMessage("flush " + path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* file = std::exchange(file_, nullptr);
    if (std::fclose(file) != 0) {
      return Status::IOError(ErrnoMessage("close " + path_));
    }
    return Status::OK();
  }

 protected:
  RawWrite WriteRaw(const char* data, size_t size) override {
    if (file_ == nullptr) {
      return {Status::FailedPrecondition("write on closed file " + path_), 0,
              false};
    }
    const size_t n = std::fwrite(data, 1, size, file_);
    if (n != size && std::ferror(file_) != 0) {
      return {Status::IOError(ErrnoMessage("write " + path_)), n, false};
    }
    return {Status::OK(), n, false};
  }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

#endif  // LSHE_ENV_HAVE_POSIX

class DefaultEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
#if LSHE_ENV_HAVE_POSIX
    int fd;
    do {
      fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("open " + path));
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
#else
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      return Status::IOError(ErrnoMessage("open " + path));
    }
    return std::unique_ptr<WritableFile>(new StdioWritableFile(file, path));
#endif
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    return (lshensemble::ReadFileToString)(path, out);
  }

  Result<MappedFile> OpenMapped(const std::string& path) override {
    return MappedFile::Open(path);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("rename " + from + " -> " + to));
    }
    return Status::OK();
  }

  Status RemoveFileIfExists(const std::string& path) override {
    return (lshensemble::RemoveFileIfExists)(path);
  }

  Status SyncDirectory(const std::string& dir) override {
    return (lshensemble::SyncDirectory)(dir);
  }

  Status CreateDirectories(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::IOError("create directories " + dir + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }

  Result<std::vector<std::string>> ListDirectory(
      const std::string& dir) override {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
      return Status::IOError("list directory " + dir + ": " + ec.message());
    }
    std::vector<std::string> names;
    for (const auto& entry : it) {
      if (entry.is_regular_file(ec)) {
        names.push_back(entry.path().filename().string());
      }
    }
    std::sort(names.begin(), names.end());
    return names;
  }
};

}  // namespace

Status WritableFile::Append(std::string_view data) {
  while (!data.empty()) {
    RawWrite raw = WriteRaw(data.data(), data.size());
    if (raw.interrupted) continue;  // EINTR: retry the same range
    if (!raw.status.ok()) return raw.status;
    if (raw.written == 0) {
      return Status::IOError("write accepted 0 bytes");
    }
    data.remove_prefix(std::min(raw.written, data.size()));
  }
  return Status::OK();
}

Env* Env::Default() {
  static DefaultEnv* env = new DefaultEnv();
  return env;
}

std::string ParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return path.substr(0, slash == 0 ? 1 : slash);
}

Status WriteFileAtomic(Env* env, const std::string& path,
                       const std::string& data) {
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  LSHE_ASSIGN_OR_RETURN(file, env->NewWritableFile(tmp));
  Status st = file->Append(data);
  // Durability, not just atomicity: without the data fsync the rename
  // below can land on disk before the data blocks, and a crash then
  // surfaces a truncated-but-committed image under the final name.
  if (st.ok()) st = file->Sync();
  if (st.ok()) st = file->Close();
  if (!st.ok()) {
    (void)env->RemoveFileIfExists(tmp);
    return st;
  }
  st = env->RenameFile(tmp, path);
  if (!st.ok()) {
    (void)env->RemoveFileIfExists(tmp);
    return st;
  }
  // The rename is a directory mutation; sync the directory so the new
  // entry (pointing at the synced data) survives a crash too.
  return env->SyncDirectory(ParentDirectory(path));
}

Status ReadFileToString(Env* env, const std::string& path, std::string* out) {
  return env->ReadFileToString(path, out);
}

}  // namespace lshensemble
