// Persistence for LshEnsemble indexes: the two-format story.
//
// Two on-disk formats share one 8-byte header (magic "LSHE" + version
// u32), and LoadEnsemble()/DeserializeEnsemble() dispatch on it:
//
//  * v1 (this module) is a compact DECODE format — a block container
//    whose every integer is re-parsed into freshly allocated arenas on
//    load. Portable, stable since the first release, and what
//    SaveEnsemble() keeps writing; cold-start cost is O(index).
//  * v2 (io/snapshot.h) is a zero-copy PLACEMENT format — 64-byte-
//    aligned raw arena segments plus a manifest, opened by mmap with no
//    arena copies; cold starts in milliseconds and replicas share pages.
//    Written by WriteEnsembleSnapshot() / WriteDynamicSnapshot().
//
// The v1 image is a block container:
//
//   [magic u32 = "LSHE"] [format version u32 = 1]
//   repeated blocks: [type u8] [payload length varint] [payload]
//                    [masked CRC-32C of payload, fixed u32]
//   terminated by an END block (empty payload)
//
// Blocks: OPTIONS (ensemble options + hash family seed + totals),
// PARTITIONS (the size intervals), one FOREST block per partition
// (see LshForest::SerializeTo). Every payload is protected by a masked
// CRC-32C (the RocksDB convention), so bit rot anywhere in the file is
// reported as Corruption rather than producing a silently wrong index.
//
// Both formats store the hash family's seed, not its coefficient tables:
// the family is regenerated on load and is bit-identical by construction.
// v1 images do not store signatures of the indexed domains (the forests
// hold the derived key arrays); v2 dynamic snapshots add them as the
// side-car that mutation and top-k ranking need.

#ifndef LSHENSEMBLE_IO_ENSEMBLE_IO_H_
#define LSHENSEMBLE_IO_ENSEMBLE_IO_H_

#include <string>

#include "core/lsh_ensemble.h"
#include "io/env.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// Current on-disk format version.
inline constexpr uint32_t kEnsembleFormatVersion = 1;

/// \brief Serialize `ensemble` into an in-memory image.
Status SerializeEnsemble(const LshEnsemble& ensemble, std::string* out);

/// \brief Rebuild an ensemble from a SerializeEnsemble() image.
/// Returns Corruption on any checksum or structural mismatch and
/// NotSupported for images written by a newer format version.
Result<LshEnsemble> DeserializeEnsemble(std::string_view image);

/// \brief Save an index to `path` (atomic: temp file + rename). `env`
/// selects the file operations (nullptr = Env::Default()).
Status SaveEnsemble(const LshEnsemble& ensemble, const std::string& path,
                    Env* env = nullptr);

/// \brief Load an index from `path`.
Result<LshEnsemble> LoadEnsemble(const std::string& path, Env* env = nullptr);

}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_ENSEMBLE_IO_H_
