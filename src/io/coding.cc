#include "io/coding.h"

#include <cstring>

namespace lshensemble {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value);
  buf[1] = static_cast<char>(value >> 8);
  buf[2] = static_cast<char>(value >> 16);
  buf[3] = static_cast<char>(value >> 24);
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>(value >> (8 * i));
  }
  dst->append(buf, sizeof(buf));
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<char>(value);
  dst->append(buf, static_cast<size_t>(n));
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value);
}

bool DecodeCursor::GetFixed32(uint32_t* value) {
  if (data_.size() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data());
  *value = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
  data_.remove_prefix(4);
  return true;
}

bool DecodeCursor::GetFixed64(uint64_t* value) {
  if (data_.size() < 8) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data());
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  *value = v;
  data_.remove_prefix(8);
  return true;
}

bool DecodeCursor::GetVarint32(uint32_t* value) {
  uint64_t wide = 0;
  DecodeCursor probe = *this;
  if (!probe.GetVarint64(&wide) || wide > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(wide);
  *this = probe;
  return true;
}

bool DecodeCursor::GetVarint64(uint64_t* value) {
  uint64_t v = 0;
  for (size_t i = 0; i < data_.size() && i < 10; ++i) {
    const auto byte = static_cast<unsigned char>(data_[i]);
    // Bytes beyond the 9th can only contribute bit 63.
    if (i == 9 && byte > 1) return false;  // overflow
    v |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      *value = v;
      data_.remove_prefix(i + 1);
      return true;
    }
  }
  return false;  // truncated or longer than 10 bytes
}

bool DecodeCursor::GetLengthPrefixed(std::string_view* value) {
  DecodeCursor probe = *this;
  uint64_t length = 0;
  if (!probe.GetVarint64(&length) || probe.remaining() < length) return false;
  if (!probe.GetRaw(static_cast<size_t>(length), value)) return false;
  *this = probe;
  return true;
}

bool DecodeCursor::GetRaw(size_t n, std::string_view* value) {
  if (data_.size() < n) return false;
  *value = data_.substr(0, n);
  data_.remove_prefix(n);
  return true;
}

}  // namespace lshensemble
