// Minimal Status-returning file IO: write a whole buffer atomically
// (write to a temp name, fsync, rename, fsync the directory) and read a
// whole file back, plus a read-only memory mapping for the zero-copy
// snapshot path. Index images are saved and loaded as single buffers; a
// failed save never leaves a half-written index at the target path, and a
// crash right after a successful save cannot surface a truncated image
// under the target name (both the temp file and its directory are synced
// before/after the rename).

#ifndef LSHENSEMBLE_IO_FILE_H_
#define LSHENSEMBLE_IO_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Write `data` to `path` atomically and durably: the data is
/// written and fsync'ed to `path + ".tmp"`, renamed over `path`, and the
/// containing directory is fsync'ed so the rename itself survives a crash.
/// Equivalent to the env.h overload on Env::Default().
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// \brief Read the entire file at `path` into `*out` (replacing its
/// contents). Returns NotFound if the file does not exist.
Status ReadFileToString(const std::string& path, std::string* out);

/// Remove a file; missing files are not an error.
Status RemoveFileIfExists(const std::string& path);

/// \brief fsync a directory, making previously issued renames/unlinks
/// inside it durable (no-op on platforms without POSIX directory sync).
Status SyncDirectory(const std::string& dir);

/// \brief A read-only memory mapping of a whole file (RAII). On POSIX this
/// is a real mmap — pages are shared across processes and faulted on
/// demand; elsewhere it degrades to a heap read (correct, not zero-copy).
/// The mapping outlives nothing: keep the MappedFile (or a shared_ptr
/// owner of it) alive as long as any view into data() is in use.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Map `path` read-only. Returns NotFound if it does not exist.
  static Result<MappedFile> Open(const std::string& path);

  /// \brief Wrap an owned buffer in the MappedFile interface (the heap
  /// fallback, no real mapping). In-memory Envs serve OpenMapped() with
  /// this, so snapshot opens run unchanged under fault injection.
  static MappedFile FromBuffer(std::string bytes);

  /// \brief Number of MappedFile instances process-wide currently holding
  /// backing bytes (a real mapping or an owned buffer). Snapshot opens
  /// hold one per mapped image; tests assert a failed open leaves this at
  /// its prior value — no leaked mapping handles.
  static size_t LiveMappingCount();

  std::string_view data() const {
    return {static_cast<const char*>(addr_), size_};
  }
  size_t size() const { return size_; }
  /// True when data() is backed by a real mmap (false on the heap
  /// fallback and for empty files).
  bool is_mapped() const { return mapped_; }

  /// \brief OS pager access hints, mapped to madvise(2) on POSIX.
  enum class Advice {
    kNormal,      // MADV_NORMAL: default readahead
    kSequential,  // MADV_SEQUENTIAL: aggressive readahead, drop behind
    kWillNeed,    // MADV_WILLNEED: start faulting the range in now
  };

  /// \brief Advise the pager about the byte range [offset, offset+length)
  /// of data(). Offsets are rounded outward to page boundaries, the range
  /// is clamped to the mapping, and the call is a no-op on the heap
  /// fallback, for empty ranges, and off POSIX. Hints are best-effort:
  /// failures (e.g. an madvise the kernel rejects) are swallowed — a
  /// mapping the hint cannot cover still reads correctly, just colder.
  void Advise(size_t offset, size_t length, Advice advice) const;

 private:
  void Release();

  const void* addr_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  // non-POSIX: owns the bytes instead of a mapping
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_FILE_H_
