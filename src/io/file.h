// Minimal Status-returning file IO: write a whole buffer atomically
// (write to a temp name, then rename) and read a whole file back. Index
// images are saved and loaded as single buffers; a failed save never
// leaves a half-written index at the target path.

#ifndef LSHENSEMBLE_IO_FILE_H_
#define LSHENSEMBLE_IO_FILE_H_

#include <string>

#include "util/status.h"

namespace lshensemble {

/// \brief Write `data` to `path` atomically: the data is first written and
/// flushed to `path + ".tmp"`, then renamed over `path`.
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// \brief Read the entire file at `path` into `*out` (replacing its
/// contents). Returns NotFound if the file does not exist.
Status ReadFileToString(const std::string& path, std::string* out);

/// Remove a file; missing files are not an error.
Status RemoveFileIfExists(const std::string& path);

}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_FILE_H_
