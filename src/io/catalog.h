// A domain catalog: the side-car data that accompanies a persisted index.
//
// The LshEnsemble image (io/ensemble_io.h) holds only what querying by
// threshold needs. Real deployments also want, per indexed domain: its
// provenance name ("table.csv:Column"), its exact size, and its MinHash
// signature (for top-k ranking and containment estimation). A Catalog
// stores exactly that, in the same checksummed container format.

#ifndef LSHENSEMBLE_IO_CATALOG_H_
#define LSHENSEMBLE_IO_CATALOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/topk.h"
#include "io/env.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief One catalogued domain.
struct CatalogEntry {
  uint64_t id = 0;
  std::string name;
  uint64_t size = 0;
  MinHash signature;
};

/// \brief An ordered collection of CatalogEntry with id lookup, bound to
/// one hash family.
class Catalog {
 public:
  /// \param family the family every added signature must come from.
  explicit Catalog(std::shared_ptr<const HashFamily> family)
      : family_(std::move(family)) {}

  /// \brief Append an entry. Ids must be unique, sizes >= 1, and the
  /// signature must come from the catalog's family.
  Status Add(uint64_t id, std::string name, uint64_t size, MinHash signature);

  size_t size() const { return entries_.size(); }
  const std::vector<CatalogEntry>& entries() const { return entries_; }
  const std::shared_ptr<const HashFamily>& family() const { return family_; }

  /// Entry by id; nullptr when unknown.
  const CatalogEntry* Find(uint64_t id) const;
  /// Provenance name for `id`, or "<unknown id>" when absent.
  const std::string& NameOf(uint64_t id) const;

  /// \brief Build the SketchStore a TopKSearcher needs (copies the
  /// signatures).
  Result<SketchStore> ToSketchStore() const;

  /// \brief Serialize into a checksummed image (magic, family, entries).
  Status SerializeTo(std::string* out) const;
  /// \brief Rebuild a catalog (and its hash family) from an image.
  static Result<Catalog> Deserialize(std::string_view image);

  /// File convenience wrappers (atomic write, see io/file.h). `env`
  /// selects the file operations (nullptr = Env::Default()).
  Status Save(const std::string& path, Env* env = nullptr) const;
  static Result<Catalog> Load(const std::string& path, Env* env = nullptr);

 private:
  std::shared_ptr<const HashFamily> family_;
  std::vector<CatalogEntry> entries_;
  std::unordered_map<uint64_t, size_t> index_of_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_CATALOG_H_
