// Env: the file-operation seam every persistence path writes and reads
// through. Production code uses Env::Default() (real POSIX files, mmap,
// fsync); tests substitute FaultInjectionEnv (fault_env.h) to script
// failures — fail the Nth write/fsync/rename, short writes, ENOSPC,
// EINTR — and to simulate a power cut that drops all un-synced data.
//
// The seam is deliberately narrow: whole-buffer writers (every index
// image is built in memory and committed atomically), whole-file reads,
// read-only mappings, and the directory metadata ops (rename, remove,
// directory fsync) whose ordering the crash-safety story depends on.

#ifndef LSHENSEMBLE_IO_ENV_H_
#define LSHENSEMBLE_IO_ENV_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "io/file.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief A file open for appending. Append() retries interrupted and
/// short raw writes internally (the EINTR loop lives here, once, for
/// every Env implementation), so callers see all-or-error semantics.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Append `data`, looping over raw writes until fully written: raw
  /// EINTR results retry, short writes continue from where they stopped,
  /// any other raw error propagates.
  Status Append(std::string_view data);

  /// Flush and fsync the file's data to stable storage.
  virtual Status Sync() = 0;
  /// Close the file (idempotent; the destructor closes too, ignoring
  /// errors — call Close() explicitly on the commit path).
  virtual Status Close() = 0;

 protected:
  /// Outcome of one raw write attempt: an error, a retryable interrupt
  /// (EINTR — `written` is ignored), or `written` bytes accepted
  /// (possibly fewer than requested).
  struct RawWrite {
    Status status;
    size_t written = 0;
    bool interrupted = false;
  };
  virtual RawWrite WriteRaw(const char* data, size_t size) = 0;
};

/// \brief The file-operation seam. All methods are safe to call from
/// multiple threads.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide real-filesystem Env (never null, never destroyed).
  static Env* Default();

  /// Open `path` for writing, truncating any existing file.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  /// Read the whole file into `*out`; NotFound when absent.
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;
  /// Read-only mapping of the whole file (real mmap on the default Env;
  /// an owned-buffer view on in-memory Envs). NotFound when absent.
  virtual Result<MappedFile> OpenMapped(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  /// Remove a file; missing files are not an error.
  virtual Status RemoveFileIfExists(const std::string& path) = 0;
  /// fsync a directory, making renames/unlinks/creates inside it durable.
  virtual Status SyncDirectory(const std::string& dir) = 0;
  /// mkdir -p. Existing directories are not an error.
  virtual Status CreateDirectories(const std::string& dir) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// Names (not paths) of the regular files directly inside `dir`,
  /// sorted ascending.
  virtual Result<std::vector<std::string>> ListDirectory(
      const std::string& dir) = 0;
};

/// Directory containing `path` ("." when `path` has no slash).
std::string ParentDirectory(const std::string& path);

/// \brief WriteFileAtomic through an explicit Env (file.h's two-argument
/// form is this with Env::Default()): write + fsync `path + ".tmp"`,
/// rename over `path`, fsync the directory. A failure at any step removes
/// the temp file and leaves any previous `path` contents intact.
Status WriteFileAtomic(Env* env, const std::string& path,
                       const std::string& data);

/// Env-explicit form of file.h's ReadFileToString.
Status ReadFileToString(Env* env, const std::string& path, std::string* out);

}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_ENV_H_
