// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78), the
// checksum RocksDB and LevelDB use to protect on-disk blocks. Software
// slice-by-4 implementation; no hardware dependency.

#ifndef LSHENSEMBLE_IO_CRC32C_H_
#define LSHENSEMBLE_IO_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lshensemble {
namespace crc32c {

/// \brief Extend a running CRC with `data`; pass 0 as the initial value.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// CRC-32C of a whole buffer.
inline uint32_t Value(std::string_view data) {
  return Extend(0, data.data(), data.size());
}

/// \brief RocksDB-style masked CRC: storing a CRC of data that itself
/// contains CRCs can produce degenerate collisions; masking breaks the
/// symmetry.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_CRC32C_H_
