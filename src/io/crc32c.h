// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78), the
// checksum RocksDB and LevelDB use to protect on-disk blocks.
//
// Two implementations behind one entry point: a portable software
// slice-by-4 kernel, and an SSE4.2 kernel built on the CRC32 instruction
// (_mm_crc32_u64, one u64 per cycle-ish — roughly an order of magnitude
// faster, which is what makes verified snapshot opens cheap). The active
// kernel is resolved once per process from CPUID, like the minhash kernel
// dispatch; set LSHE_CRC32C=sw (or LSHE_KERNEL=scalar) to force the
// portable path. Both produce identical CRCs — the parity test in
// tests/snapshot_test.cc holds them to that.

#ifndef LSHENSEMBLE_IO_CRC32C_H_
#define LSHENSEMBLE_IO_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lshensemble {
namespace crc32c {

namespace internal {

/// Portable slice-by-4 kernel (the reference implementation).
uint32_t ExtendSw(uint32_t crc, const void* data, size_t n);

/// The SSE4.2 kernel, or nullptr when the build target or the running CPU
/// lacks the CRC32 instruction. Exposed for the parity test.
uint32_t (*ExtendHw())(uint32_t crc, const void* data, size_t n);

/// Name of the active kernel ("sw" or "hw-sse4.2").
const char* ActiveExtendName();

}  // namespace internal

/// \brief Extend a running CRC with `data`; pass 0 as the initial value.
/// Dispatches to the fastest kernel the CPU supports.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// CRC-32C of a whole buffer.
inline uint32_t Value(std::string_view data) {
  return Extend(0, data.data(), data.size());
}

/// \brief RocksDB-style masked CRC: storing a CRC of data that itself
/// contains CRCs can produce degenerate collisions; masking breaks the
/// symmetry.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_CRC32C_H_
