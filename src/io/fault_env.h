// FaultInjectionEnv: an in-memory Env with scriptable failures, for
// crash-safety tests. It models the two-level durability a real POSIX
// filesystem gives you:
//
//  * File DATA becomes durable only when the file is fsync'ed (Sync()).
//  * Directory ENTRIES (creates, renames, unlinks) become durable only
//    when the containing directory is fsync'ed — or immediately, in
//    kEager metadata mode, which models journaling filesystems that
//    commit metadata ahead of data. Crash-safe code must be correct
//    under BOTH models; the crash matrix runs both.
//
// LosePower() is the crash: the live filesystem is reset to exactly the
// durable state (un-synced data truncated away, un-synced entries
// reverted). Scripted faults cover the other failure axis — the Nth
// write/fsync/rename failing, short writes, ENOSPC after a byte budget,
// EINTR storms — so both "the save returned an error" and "the machine
// died mid-save" recoveries are testable deterministically.

#ifndef LSHENSEMBLE_IO_FAULT_ENV_H_
#define LSHENSEMBLE_IO_FAULT_ENV_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/env.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

class FaultInjectionEnv : public Env {
 public:
  /// Operation classes a scripted fault can target.
  enum class Op {
    kOpenWrite,  // NewWritableFile
    kWrite,      // one raw write attempt inside Append
    kSync,       // WritableFile::Sync
    kRename,
    kRemove,
    kDirSync,  // SyncDirectory
  };

  /// When directory-entry mutations become durable.
  enum class MetadataDurability {
    kStrictDirSync,  // entries survive a crash only after SyncDirectory
    kEager,          // entries are durable immediately (data still isn't)
  };

  FaultInjectionEnv() = default;

  // ---- Fault scripting (all reset by ClearFaults / LosePower) ----

  /// Fail the `nth` upcoming occurrence of `op` (1 = the next one) with
  /// `status`. Multiple scripts may be armed at once.
  void FailNth(Op op, size_t nth, Status status);
  /// Raw writes accept at most `cap` bytes each (0 disables): exercises
  /// the short-write continuation loop in WritableFile::Append.
  void set_short_write_cap(size_t cap);
  /// The next `times` raw writes return EINTR before any byte lands:
  /// exercises the retry loop in WritableFile::Append.
  void InjectEintr(size_t times);
  /// Total write capacity: once `budget` cumulative bytes have been
  /// accepted, further writes fail with a simulated ENOSPC (the write
  /// that crosses the boundary is accepted short first, like a real
  /// filling disk).
  void SetWriteBudget(uint64_t budget);
  /// Let `n` more mutating ops succeed, then fail every subsequent one
  /// with a simulated power loss. Pair with LosePower() to model the
  /// machine dying at that boundary.
  void CutPowerAfterOps(uint64_t n);
  void ClearFaults();

  /// \brief The crash: reset the live filesystem to the durable state and
  /// clear all armed faults (the "reboot" reads a healthy disk).
  void LosePower();

  /// Mutating ops performed so far (open/write/sync/rename/remove/
  /// dirsync). Run a save once uncut to size a crash matrix.
  uint64_t mutating_op_count() const;

  void set_metadata_durability(MetadataDurability mode);

  // ---- Env interface (live view) ----
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  Result<MappedFile> OpenMapped(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFileIfExists(const std::string& path) override;
  Status SyncDirectory(const std::string& dir) override;
  Status CreateDirectories(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& dir) override;

 private:
  friend class FaultInjectionWritableFile;

  /// One file's bytes: `content` is the live view, `durable` what the
  /// platters hold (updated by Sync).
  struct Inode {
    std::string content;
    std::string durable;
  };

  struct ScriptedFault {
    Op op;
    size_t countdown;  // occurrences of `op` still to let through
    Status status;
  };

  /// Power-cut gate + scripted-fault check + op accounting for one
  /// mutating operation. OK means "proceed". Caller holds mutex_.
  Status BeginMutatingOpLocked(Op op);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Inode>> live_;
  std::map<std::string, std::shared_ptr<Inode>> durable_;
  std::vector<ScriptedFault> faults_;
  MetadataDurability metadata_mode_ = MetadataDurability::kStrictDirSync;
  size_t short_write_cap_ = 0;
  size_t eintr_budget_ = 0;
  uint64_t write_budget_ = UINT64_MAX;
  uint64_t bytes_written_ = 0;
  uint64_t ops_ = 0;
  uint64_t power_cut_after_ = UINT64_MAX;
  bool power_lost_ = false;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_FAULT_ENV_H_
