// Little-endian binary encoding primitives (LevelDB/RocksDB-style):
// fixed-width integers, LEB128 varints, and length-prefixed strings,
// plus a bounds-checked cursor for decoding. All decoders return false
// (or Status) instead of reading out of bounds, so corrupt or truncated
// input can never crash the loader.

#ifndef LSHENSEMBLE_IO_CODING_H_
#define LSHENSEMBLE_IO_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace lshensemble {

// ------------------------------------------------------------- encoders

/// Append `value` as 4 little-endian bytes.
void PutFixed32(std::string* dst, uint32_t value);
/// Append `value` as 8 little-endian bytes.
void PutFixed64(std::string* dst, uint64_t value);
/// Append `value` as a LEB128 varint (1-5 bytes).
void PutVarint32(std::string* dst, uint32_t value);
/// Append `value` as a LEB128 varint (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);
/// Append a varint length prefix followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);

// ------------------------------------------------------------- decoders

/// \brief Bounds-checked forward cursor over an encoded buffer.
///
/// Every Get* consumes bytes on success and leaves the cursor untouched on
/// failure, so a failed read can be reported without corrupting later
/// reads.
class DecodeCursor {
 public:
  explicit DecodeCursor(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  bool GetFixed32(uint32_t* value);
  bool GetFixed64(uint64_t* value);
  bool GetVarint32(uint32_t* value);
  bool GetVarint64(uint64_t* value);
  /// Reads a varint length then that many raw bytes (view into the buffer).
  bool GetLengthPrefixed(std::string_view* value);
  /// Reads exactly `n` raw bytes (view into the buffer).
  bool GetRaw(size_t n, std::string_view* value);

 private:
  std::string_view data_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_CODING_H_
