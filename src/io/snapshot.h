// Format-v2 zero-copy snapshots: mmap-served index segments.
//
// The v1 image (io/ensemble_io.h) is a decode format — every key is
// re-parsed into freshly allocated arenas on load, so cold-start cost is
// O(index) per process. A v2 snapshot is a *placement* format: the
// forest arenas are laid out in the file exactly as the probe kernels
// read them in memory, 64-byte aligned, so opening an index is one mmap,
// a manifest parse, and a range-check pass over the (small) entry
// permutation segments — no arena bytes are copied, the bulk of the
// image (the key arenas) is never touched until a probe reads it, and
// pages are shared across every serving process on the host.
//
//   [header: magic u32 | version u32 = 2 | zero pad to 64]
//   [segment]*          raw little-endian arrays, each 64-byte aligned,
//                       zero padding between (verified on open)
//   [manifest]          options / seed / totals / partitions, then per
//                       forest the arena segment table (offset, length,
//                       masked CRC-32C), then the optional dynamic
//                       side-car tables (indexed / delta / tombstones)
//   [footer: manifest offset u64 | length u32 | masked CRC u32 | magic]
//
// Per forest the segments are: ids (u64), keys (u32, tree-major sorted),
// entry permutation (u32), first-slot keys (u32 — v1 derives these on
// load; v2 stores them so a mapped open derives nothing). A dynamic
// snapshot appends a side-car: the live indexed records (ids ascending,
// sizes, signature arena), the delta records (in delta order, so a
// reopened index scans them in the same order), and the tombstone set.
//
// Integrity: the manifest is always CRC-verified and every byte of the
// file is accounted for (header pad, segment extents, inter-segment pad,
// manifest, footer), so any truncation or flip outside segment payloads
// is Corruption on open. Segment payload CRCs are verified eagerly when
// SnapshotOpenOptions.verify_checksums is set (the default); serving
// processes that want millisecond opens can disable it — structural
// safety (entry range checks) is preserved either way, undetected key
// corruption can only yield wrong candidates, never UB.
//
// Wire compatibility: v1 images load forever through the copying path;
// LoadEnsemble() dispatches on the version header. SaveEnsemble() keeps
// writing v1 (small, portable); WriteEnsembleSnapshot() writes v2.

#ifndef LSHENSEMBLE_IO_SNAPSHOT_H_
#define LSHENSEMBLE_IO_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/dynamic_ensemble.h"
#include "core/lsh_ensemble.h"
#include "io/env.h"
#include "io/file.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// On-disk version written by the snapshot writer.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// \brief How much of a snapshot to validate at open time.
struct SnapshotOpenOptions {
  /// Verify every segment's CRC-32C eagerly (touches all pages). The
  /// manifest and the file's structure are verified regardless; disable
  /// for fastest serving opens of trusted images.
  bool verify_checksums = true;
  /// Issue OS pager hints on mapped opens (no-op off POSIX and for
  /// in-memory buffers): MADV_WILLNEED on the manifest/footer pages every
  /// open parses, and — when verify_checksums is set — a sequential-read
  /// hint over the segment extents for the verification sweep, reset to
  /// normal afterwards so serving probes keep default readahead.
  bool apply_madvise = true;
  /// File operations used by the open (nullptr = Env::Default()). Fault
  /// and in-memory Envs serve the mapping from their own backing.
  Env* env = nullptr;
};

/// \brief An open, validated v2 snapshot: the mapping plus its parsed
/// manifest. Engines opened from it borrow arena views into data() and
/// hold the snapshot alive via shared_ptr, so one snapshot can back any
/// number of engines (e.g. every shard of a serving process).
class MappedSnapshot {
 public:
  /// Map `path` and validate it (see file comment for what "validate"
  /// covers at each setting of `options.verify_checksums`).
  static Result<std::shared_ptr<const MappedSnapshot>> Open(
      const std::string& path, const SnapshotOpenOptions& options = {});

  /// Same validation over an in-memory image (adopts the buffer). Used by
  /// the version-dispatched DeserializeEnsemble() and by corruption tests;
  /// views point into the adopted buffer, so nothing else is copied.
  static Result<std::shared_ptr<const MappedSnapshot>> FromBuffer(
      std::string buffer, const SnapshotOpenOptions& options = {});

  const LshEnsembleOptions& options() const { return options_; }
  uint64_t seed() const { return seed_; }
  /// Total domains in the embedded ensemble image (0 when none).
  size_t total() const { return total_; }
  bool has_ensemble() const { return has_ensemble_; }
  /// True when a dynamic side-car (sizes + signatures) is present.
  bool has_sidecar() const { return has_sidecar_; }
  /// Unindexed delta records in the side-car (0 without one).
  size_t delta_records() const { return delta_.n; }
  /// Tombstoned ids in the side-car (0 without one).
  size_t tombstone_records() const { return tombstone_n_; }
  size_t file_bytes() const { return data_.size(); }
  /// True when backed by a real mmap (false for FromBuffer images and on
  /// platforms without mmap).
  bool zero_copy() const { return file_.is_mapped(); }
  /// The raw mapped image (tests use this to assert arena views alias it).
  std::string_view data() const { return data_; }

 private:
  friend class SnapshotIO;
  MappedSnapshot() = default;

  /// One raw array inside the file.
  struct SegRef {
    uint64_t offset = 0;
    uint64_t length = 0;  // bytes
    uint32_t crc = 0;     // masked CRC-32C of the payload
  };
  /// One forest's shape and arena segments.
  struct ForestRef {
    int num_trees = 0;
    int tree_depth = 0;
    uint64_t n = 0;
    SegRef ids, keys, entries, first_keys;
  };
  /// One side-car record table (ids / sizes / signature arena).
  struct RecordsRef {
    uint64_t n = 0;
    SegRef ids, sizes, signatures;
  };
  /// One probe filter's block array (filter/probe_filter.h). Optional
  /// trailing manifest section: images written before the filter tier —
  /// or with build_probe_filter off — simply end the manifest earlier,
  /// and open with no pruning.
  struct FilterRef {
    uint64_t num_blocks = 0;
    SegRef blocks;
  };

  MappedFile file_;
  std::string buffer_;     // FromBuffer mode owns the bytes here
  std::string_view data_;  // the image, whichever storage backs it

  LshEnsembleOptions options_;
  uint64_t seed_ = 0;
  uint64_t total_ = 0;
  bool has_ensemble_ = false;
  bool has_sidecar_ = false;
  std::vector<PartitionSpec> specs_;
  std::vector<ForestRef> forests_;
  RecordsRef indexed_;
  RecordsRef delta_;
  uint64_t tombstone_n_ = 0;
  SegRef tombstones_;
  /// Probe filters (engine union + one per forest); empty when the image
  /// carries none.
  bool has_filters_ = false;
  FilterRef engine_filter_;
  std::vector<FilterRef> forest_filters_;
};

// ------------------------------------------------------------- ensembles

/// \brief Serialize `ensemble` as a v2 snapshot image (tests and callers
/// that keep images in memory; WriteEnsembleSnapshot is the file path).
Status SerializeEnsembleSnapshot(const LshEnsemble& ensemble,
                                 std::string* out);

/// \brief Write a v2 snapshot of `ensemble` to `path` (atomic + durable:
/// temp file, fsync, rename, directory fsync). `env` selects the file
/// operations (nullptr = Env::Default()).
Status WriteEnsembleSnapshot(const LshEnsemble& ensemble,
                             const std::string& path, Env* env = nullptr);

/// \brief Open a v2 snapshot with zero arena copies: forests borrow the
/// mapped segments and keep the snapshot alive. Queries answer
/// bit-identically to the heap-loaded engine.
Result<LshEnsemble> OpenEnsembleMapped(const std::string& path,
                                       const SnapshotOpenOptions& options = {});

/// \brief Build a mapped ensemble from an already-open snapshot (e.g. to
/// share one mapping between engines). Requires snapshot->has_ensemble().
Result<LshEnsemble> EnsembleFromSnapshot(
    std::shared_ptr<const MappedSnapshot> snapshot);

// ------------------------------------------------------- dynamic engines

/// \brief Serialize the full state of a dynamic index — ensemble arenas,
/// live indexed side-car, delta records, tombstones — as a v2 image.
Status SerializeDynamicSnapshot(const DynamicLshEnsemble& index,
                                std::string* out);

/// \brief WriteEnsembleSnapshot's dynamic counterpart (atomic + durable).
Status WriteDynamicSnapshot(const DynamicLshEnsemble& index,
                            const std::string& path, Env* env = nullptr);

/// \brief Open a dynamic index from a v2 snapshot with zero arena copies:
/// the indexed portion (arenas + side-car signatures) is served from the
/// mapping, the delta restores as an in-memory overlay (searchable and
/// mutable immediately), and Flush() materializes + rebuilds, after which
/// the mapping is released and a fresh snapshot can be written.
/// `options` supplies the serving/rebuild policy; options.base.num_hashes
/// must match the snapshot.
Result<DynamicLshEnsemble> OpenDynamicSnapshot(
    const std::string& path, const DynamicEnsembleOptions& options,
    const SnapshotOpenOptions& open_options = {});

/// \brief OpenDynamicSnapshot over an in-memory image (adopts the buffer).
Result<DynamicLshEnsemble> DynamicFromSnapshotBuffer(
    std::string buffer, const DynamicEnsembleOptions& options,
    const SnapshotOpenOptions& open_options = {});

}  // namespace lshensemble

#endif  // LSHENSEMBLE_IO_SNAPSHOT_H_
