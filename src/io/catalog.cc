#include "io/catalog.h"

#include "io/coding.h"
#include "io/crc32c.h"
#include "io/file.h"

namespace lshensemble {

namespace {

constexpr uint32_t kCatalogMagic = 0x4C534843u;  // "CHSL" LE = "LSHC"
constexpr uint32_t kCatalogVersion = 1;

const std::string kUnknownName = "<unknown id>";

}  // namespace

Status Catalog::Add(uint64_t id, std::string name, uint64_t size,
                    MinHash signature) {
  if (family_ == nullptr) {
    return Status::FailedPrecondition("catalog has no hash family");
  }
  if (size < 1) {
    return Status::InvalidArgument("domain size must be >= 1");
  }
  if (!signature.valid() || !signature.family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "signature does not belong to the catalog's hash family");
  }
  if (index_of_.count(id) > 0) {
    return Status::InvalidArgument("duplicate id in catalog");
  }
  index_of_.emplace(id, entries_.size());
  entries_.push_back({id, std::move(name), size, std::move(signature)});
  return Status::OK();
}

const CatalogEntry* Catalog::Find(uint64_t id) const {
  const auto it = index_of_.find(id);
  return it == index_of_.end() ? nullptr : &entries_[it->second];
}

const std::string& Catalog::NameOf(uint64_t id) const {
  const CatalogEntry* entry = Find(id);
  return entry == nullptr ? kUnknownName : entry->name;
}

Result<SketchStore> Catalog::ToSketchStore() const {
  SketchStore store;
  for (const CatalogEntry& entry : entries_) {
    LSHE_RETURN_IF_ERROR(
        store.Add(entry.id, entry.size, entry.signature));
  }
  return store;
}

Status Catalog::SerializeTo(std::string* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  if (family_ == nullptr) {
    return Status::FailedPrecondition("catalog has no hash family");
  }
  out->clear();
  PutFixed32(out, kCatalogMagic);
  PutFixed32(out, kCatalogVersion);

  std::string payload;
  PutVarint32(&payload, static_cast<uint32_t>(family_->num_hashes()));
  PutFixed64(&payload, family_->seed());
  PutVarint64(&payload, entries_.size());
  for (const CatalogEntry& entry : entries_) {
    PutVarint64(&payload, entry.id);
    PutLengthPrefixed(&payload, entry.name);
    PutVarint64(&payload, entry.size);
    std::string signature;
    entry.signature.SerializeTo(&signature);
    PutLengthPrefixed(&payload, signature);
  }
  PutVarint64(out, payload.size());
  out->append(payload);
  PutFixed32(out, crc32c::Mask(crc32c::Value(payload)));
  return Status::OK();
}

Result<Catalog> Catalog::Deserialize(std::string_view image) {
  DecodeCursor cursor(image);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!cursor.GetFixed32(&magic) || !cursor.GetFixed32(&version)) {
    return Status::Corruption("catalog image: truncated header");
  }
  if (magic != kCatalogMagic) {
    return Status::Corruption("catalog image: bad magic");
  }
  if (version > kCatalogVersion) {
    return Status::NotSupported("catalog image: newer format version");
  }
  std::string_view payload;
  if (!cursor.GetLengthPrefixed(&payload)) {
    return Status::Corruption("catalog image: truncated payload");
  }
  uint32_t stored_crc = 0;
  if (!cursor.GetFixed32(&stored_crc) || !cursor.empty()) {
    return Status::Corruption("catalog image: truncated checksum");
  }
  if (crc32c::Unmask(stored_crc) != crc32c::Value(payload)) {
    return Status::Corruption("catalog image: checksum mismatch");
  }

  DecodeCursor body(payload);
  uint32_t num_hashes = 0;
  uint64_t seed = 0;
  uint64_t count = 0;
  if (!body.GetVarint32(&num_hashes) || !body.GetFixed64(&seed) ||
      !body.GetVarint64(&count)) {
    return Status::Corruption("catalog image: malformed family header");
  }
  std::shared_ptr<const HashFamily> family;
  {
    auto created = HashFamily::Create(static_cast<int>(num_hashes), seed);
    if (!created.ok()) {
      return Status::Corruption("catalog image: invalid hash family");
    }
    family = std::move(created).value();
  }

  Catalog catalog(family);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    uint64_t size = 0;
    std::string_view name;
    std::string_view signature_bytes;
    if (!body.GetVarint64(&id) || !body.GetLengthPrefixed(&name) ||
        !body.GetVarint64(&size) ||
        !body.GetLengthPrefixed(&signature_bytes)) {
      return Status::Corruption("catalog image: truncated entry");
    }
    auto signature = MinHash::Deserialize(signature_bytes, family);
    if (!signature.ok()) return signature.status();
    LSHE_RETURN_IF_ERROR(catalog.Add(id, std::string(name), size,
                                     std::move(signature).value()));
  }
  if (!body.empty()) {
    return Status::Corruption("catalog image: trailing entry bytes");
  }
  return catalog;
}

Status Catalog::Save(const std::string& path, Env* env) const {
  std::string image;
  LSHE_RETURN_IF_ERROR(SerializeTo(&image));
  return WriteFileAtomic(env != nullptr ? env : Env::Default(), path, image);
}

Result<Catalog> Catalog::Load(const std::string& path, Env* env) {
  std::string image;
  LSHE_RETURN_IF_ERROR(ReadFileToString(
      env != nullptr ? env : Env::Default(), path, &image));
  return Deserialize(image);
}

}  // namespace lshensemble
