#include "io/crc32c.h"

#include <array>

namespace lshensemble {
namespace crc32c {

namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // tables[k][b]: CRC of byte b followed by k zero bytes (slice-by-4).
  std::array<std::array<uint32_t, 256>, 4> t{};

  constexpr Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

constexpr Tables kTables;

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Process 4 bytes at a time.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
    crc = kTables.t[3][crc & 0xFF] ^ kTables.t[2][(crc >> 8) & 0xFF] ^
          kTables.t[1][(crc >> 16) & 0xFF] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace crc32c
}  // namespace lshensemble
