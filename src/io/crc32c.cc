#include "io/crc32c.h"

#include <array>
#include <cstdlib>
#include <string_view>

#if defined(__GNUC__) && defined(__x86_64__)
#define LSHE_CRC32C_HAVE_SSE42 1
#include <nmmintrin.h>
#endif

namespace lshensemble {
namespace crc32c {

namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // tables[k][b]: CRC of byte b followed by k zero bytes (slice-by-4).
  std::array<std::array<uint32_t, 256>, 4> t{};

  constexpr Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

constexpr Tables kTables;

#if defined(LSHE_CRC32C_HAVE_SSE42)
__attribute__((target("sse4.2"))) uint32_t ExtendHwSse42(uint32_t crc,
                                                         const void* data,
                                                         size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Byte-step to 8-byte alignment so the u64 loads below are aligned
  // (not required for correctness on x86, but friendlier to the LSU).
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p);
    ++p;
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p);
    ++p;
    --n;
  }
  return ~crc;
}
#endif  // LSHE_CRC32C_HAVE_SSE42

}  // namespace

namespace internal {

uint32_t ExtendSw(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Process 4 bytes at a time.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
    crc = kTables.t[3][crc & 0xFF] ^ kTables.t[2][(crc >> 8) & 0xFF] ^
          kTables.t[1][(crc >> 16) & 0xFF] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return ~crc;
}

uint32_t (*ExtendHw())(uint32_t crc, const void* data, size_t n) {
#if defined(LSHE_CRC32C_HAVE_SSE42)
  if (__builtin_cpu_supports("sse4.2")) return &ExtendHwSse42;
#endif
  return nullptr;
}

namespace {

uint32_t (*ActiveExtend())(uint32_t, const void*, size_t) {
  static uint32_t (*const extend)(uint32_t, const void*, size_t) = [] {
    // LSHE_CRC32C=sw pins the checksum kernel alone (parity tests, bench
    // baselines); LSHE_KERNEL=scalar pins it along with every other
    // kernel override in the process.
    if (const char* env = std::getenv("LSHE_CRC32C")) {
      if (std::string_view(env) == "sw") return &ExtendSw;
    }
    if (const char* env = std::getenv("LSHE_KERNEL")) {
      if (std::string_view(env) == "scalar") return &ExtendSw;
    }
    if (auto* hw = ExtendHw()) return hw;
    return &ExtendSw;
  }();
  return extend;
}

}  // namespace

const char* ActiveExtendName() {
  return ActiveExtend() == &ExtendSw ? "sw" : "hw-sse4.2";
}

}  // namespace internal

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  return internal::ActiveExtend()(crc, data, n);
}

}  // namespace crc32c
}  // namespace lshensemble
