// Disjoint-set union for candidate-edge clustering (cluster/clusterer.h).
//
// Path halving + union by size gives the usual near-constant amortized
// Find(); the structure works on dense indices, so callers map external
// domain ids to [0, n) first. The DSU's internal roots depend on edge
// arrival order — callers that need a canonical labeling (the clusterer
// pins "root = smallest id in the component") derive it after the fact,
// which is what makes cluster output invariant to shard count and tile
// size: those only permute edge order, never the edge set.

#ifndef LSHENSEMBLE_CLUSTER_UNION_FIND_H_
#define LSHENSEMBLE_CLUSTER_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lshensemble {

/// \brief Union-find over dense indices [0, size()).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }

  size_t size() const { return parent_.size(); }

  /// Representative of `x`'s set (path halving: every other node on the
  /// walk is re-pointed at its grandparent, so chains shrink as they are
  /// read — no second pass, no recursion).
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merge the sets holding `a` and `b` (union by size: the smaller tree
  /// hangs off the larger root, bounding tree depth at O(log n)).
  /// Returns true when the sets were distinct.
  bool Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a);
    uint32_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return true;
  }

  /// True when `a` and `b` are in the same set.
  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Elements in `x`'s set.
  size_t SetSize(uint32_t x) { return size_[Find(x)]; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CLUSTER_UNION_FIND_H_
