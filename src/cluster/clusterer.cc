#include "cluster/clusterer.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "cluster/union_find.h"
#include "core/lsh_ensemble.h"
#include "data/sketcher.h"

namespace lshensemble {

namespace {

// Unordered dense-index pair packed into one hash-set key; requires both
// indices < 2^32 (enforced by Cluster()).
uint64_t PairKey(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

Status ClusterOptions::Validate() const {
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("threshold must be in (0, 1]");
  }
  if (tile_size == 0) {
    return Status::InvalidArgument("tile_size must be > 0");
  }
  return Status::OK();
}

Result<ClusterResult> NearDupClusterer::Cluster(
    const ShardedEnsemble& index, std::span<const ClusterRecord> records,
    ClusterStats* stats) const {
  LSHE_RETURN_IF_ERROR(options_.Validate());
  const size_t n = records.size();
  if (n >= (1ULL << 32)) {
    return Status::InvalidArgument(
        "cluster self-join supports fewer than 2^32 records");
  }
  std::unordered_map<uint64_t, uint32_t> dense;
  dense.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!records[i].signature.valid()) {
      return Status::InvalidArgument("record " + std::to_string(records[i].id) +
                                     " has no signature");
    }
    if (options_.verify_exact && records[i].domain == nullptr) {
      return Status::InvalidArgument(
          "verify_exact requires every record to carry its Domain (record " +
          std::to_string(records[i].id) + " has none)");
    }
    if (!dense.emplace(records[i].id, static_cast<uint32_t>(i)).second) {
      return Status::InvalidArgument("duplicate record id " +
                                     std::to_string(records[i].id));
    }
  }

  ClusterStats local;
  ClusterStats& st = stats != nullptr ? *stats : local;
  st = ClusterStats{};
  st.num_records = n;

  // Tiled self-join: each wave queries one slice of the record set against
  // the full index; candidate hits become deduped undirected edges.
  UnionFind dsu(n);
  std::unordered_set<uint64_t> seen_pairs;
  std::vector<QuerySpec> specs;
  std::vector<std::vector<uint64_t>> outs;
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (size_t tile_start = 0; tile_start < n;
       tile_start += options_.tile_size) {
    const size_t tile = std::min(options_.tile_size, n - tile_start);
    specs.resize(tile);
    outs.resize(tile);
    for (size_t j = 0; j < tile; ++j) {
      const ClusterRecord& record = records[tile_start + j];
      specs[j].query = &record.signature;
      specs[j].query_size = record.size;
      specs[j].t_star = options_.threshold;
      specs[j].deadline_ns = 0;
    }
    LSHE_RETURN_IF_ERROR(index.BatchQuery(specs, outs.data()));
    ++st.num_tiles;
    for (size_t j = 0; j < tile; ++j) {
      const uint32_t qi = static_cast<uint32_t>(tile_start + j);
      for (uint64_t candidate : outs[j]) {
        if (candidate == records[qi].id) continue;
        ++st.candidates;
        const auto it = dense.find(candidate);
        if (it == dense.end()) {
          // A record inserted concurrently with the job (or one the
          // caller chose not to enumerate): not part of this clustering.
          ++st.unknown_candidates;
          continue;
        }
        const uint32_t ci = it->second;
        if (!seen_pairs.insert(PairKey(qi, ci)).second) continue;
        ++st.unique_pairs;
        if (options_.verify_exact) {
          const Domain& a = *records[qi].domain;
          const Domain& b = *records[ci].domain;
          const double exact =
              std::max(a.ContainmentIn(b), b.ContainmentIn(a));
          if (exact < options_.threshold) {
            ++st.verified_rejected;
            continue;
          }
        }
        ++st.union_edges;
        if (dsu.Union(qi, ci)) ++st.merges;
        if (options_.collect_edges) {
          edges.emplace_back(std::min(records[qi].id, records[ci].id),
                             std::max(records[qi].id, records[ci].id));
        }
      }
    }
  }

  // Canonical labels: each component's smallest member id. Depends only on
  // the surviving edge SET, so output is invariant to tile size, shard
  // count, and candidate arrival order.
  std::vector<uint64_t> min_id(n, UINT64_MAX);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t root = dsu.Find(i);
    min_id[root] = std::min(min_id[root], records[i].id);
  }
  std::vector<uint32_t> by_id(n);
  for (uint32_t i = 0; i < n; ++i) by_id[i] = i;
  std::sort(by_id.begin(), by_id.end(), [&](uint32_t a, uint32_t b) {
    return records[a].id < records[b].id;
  });
  ClusterResult result;
  result.ids.reserve(n);
  result.roots.reserve(n);
  for (uint32_t i : by_id) {
    result.ids.push_back(records[i].id);
    result.roots.push_back(min_id[dsu.Find(i)]);
  }
  if (options_.collect_edges) {
    std::sort(edges.begin(), edges.end());
    result.edges = std::move(edges);
  }

  std::unordered_map<uint32_t, size_t> component_sizes;
  for (uint32_t i = 0; i < n; ++i) ++component_sizes[dsu.Find(i)];
  result.num_clusters = component_sizes.size();
  st.num_clusters = component_sizes.size();
  for (const auto& [root, members] : component_sizes) {
    if (members >= 2) {
      ++st.num_duplicate_groups;
      st.num_duplicated_records += members;
    }
  }
  return result;
}

std::vector<ClusterRecord> CollectRecords(const ShardedEnsemble& index) {
  std::vector<ClusterRecord> records;
  records.reserve(index.size());
  const std::shared_ptr<const HashFamily>& family = index.family();
  index.ForEachLiveRecord([&](uint64_t id, size_t size, SignatureView sig) {
    // Copy the borrowed slots into an owned MinHash while the shard's
    // read lock protects the view — the records must outlive any
    // concurrent Flush of a snapshot-opened shard.
    Result<MinHash> owned = MinHash::FromSlots(
        family, std::vector<uint64_t>(sig.values, sig.values + sig.num_hashes));
    if (!owned.ok()) return;  // family mismatch cannot happen for own records
    ClusterRecord record;
    record.id = id;
    record.size = size;
    record.signature = std::move(owned).value();
    records.push_back(std::move(record));
  });
  std::sort(records.begin(), records.end(),
            [](const ClusterRecord& a, const ClusterRecord& b) {
              return a.id < b.id;
            });
  return records;
}

Result<ClusterResult> ClusterCorpus(const Corpus& corpus,
                                    std::shared_ptr<const HashFamily> family,
                                    const ClusterOptions& options,
                                    size_t num_shards, ClusterStats* stats) {
  LSHE_RETURN_IF_ERROR(options.Validate());
  ShardedEnsembleOptions engine_options;
  engine_options.num_shards = num_shards;
  Result<ShardedEnsemble> created =
      ShardedEnsemble::Create(engine_options, family);
  if (!created.ok()) return created.status();
  ShardedEnsemble index = std::move(created).value();
  const ParallelSketcher sketcher(family);
  LSHE_RETURN_IF_ERROR(AddCorpus(corpus, sketcher, &index));
  LSHE_RETURN_IF_ERROR(index.Flush());

  std::vector<ClusterRecord> records = CollectRecords(index);
  std::unordered_map<uint64_t, const Domain*> domains_by_id;
  domains_by_id.reserve(corpus.size());
  for (const Domain& domain : corpus.domains()) {
    domains_by_id[domain.id] = &domain;
  }
  for (ClusterRecord& record : records) {
    const auto it = domains_by_id.find(record.id);
    if (it != domains_by_id.end()) record.domain = it->second;
  }
  const NearDupClusterer clusterer(options);
  return clusterer.Cluster(index, records, stats);
}

}  // namespace lshensemble
