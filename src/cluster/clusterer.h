// Corpus-scale near-duplicate clustering: the "group everything similar"
// workload (ROADMAP's data-cleaning scenario family — dedup,
// canonicalization, join-graph discovery).
//
// The standard LSH clustering shape (DSU over LSH candidate buckets; cf.
// the Jafari et al. survey, arXiv:2102.08942) adapted to the ensemble: the
// corpus is self-joined through the serving layer's own batched engine —
// every indexed record becomes a query against the index that holds it —
// in bounded tiles of ShardedEnsemble::BatchQuery waves, so the scratch
// (QueryContext pools, gather staging, output vectors) stays resident
// however large the corpus is. This is BatchQuery's largest possible
// workload: a batch the size of the corpus itself.
//
// Candidate (query, candidate) hits become undirected edges, deduped by
// canonical (min, max) record order; an optional verification pass
// recomputes the EXACT containment of each unique edge from raw values and
// drops edges below the threshold (LSH false positives) before the edge
// reaches the union-find. A path-halving, union-by-size DSU
// (cluster/union_find.h) folds the surviving edges into connected
// components, and the result labels every record with its component's
// smallest member id.
//
// Invariance: shard count and tile size only change how the same query set
// is grouped into waves — the candidate-edge SET is identical (the sharded
// layer's pinned-partition property guarantees shard-invariant candidate
// sets), and min-id canonical roots are order-free — so cluster output is
// byte-identical across S and tile sizes. Property-tested in
// tests/cluster_test.cc.
//
// Threading: Cluster() issues scatter/gather waves, so it must not be
// called from inside a thread-pool worker (the engine would refuse with
// FailedPrecondition). It is safe concurrently with Insert/Remove/Flush on
// the same index — records hold OWNED signature copies, so no borrowed
// view can dangle — but concurrent mutations are not part of the clustered
// snapshot: candidates pointing at records the caller did not enumerate
// are counted (ClusterStats::unknown_candidates) and skipped.

#ifndef LSHENSEMBLE_CLUSTER_CLUSTERER_H_
#define LSHENSEMBLE_CLUSTER_CLUSTERER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/sharded_ensemble.h"
#include "data/corpus.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Configuration of a near-duplicate clustering run.
struct ClusterOptions {
  /// Containment threshold t*: records A, B are near-duplicates when
  /// max(t(A,B), t(B,A)) >= threshold (either direction suffices, like the
  /// pair-level ground truth the eval harness computes).
  double threshold = 0.9;
  /// Queries per self-join BatchQuery wave. Bounds resident scratch
  /// (specs, gather staging, per-query outputs); the clusters produced do
  /// not depend on it.
  size_t tile_size = 2048;
  /// Recompute each unique candidate edge's exact containment from raw
  /// values and drop edges below `threshold` before they reach the DSU.
  /// Removes LSH false-positive edges (precision goes to the transitive
  /// closure of the EXACT pair graph restricted to LSH candidates) at the
  /// cost of one sorted-merge intersection per unique edge. Requires every
  /// record to carry its Domain.
  bool verify_exact = false;
  /// Keep the post-verification edge list in ClusterResult::edges
  /// (canonical (min-id, max-id) pairs, sorted). Tests and debugging.
  bool collect_edges = false;

  Status Validate() const;
};

/// \brief One clusterable record: the query-side view of an indexed
/// domain. The signature is owned (copied out of the engine or catalog) so
/// clustering can run concurrently with index mutation; `domain` supplies
/// raw values and is only required by ClusterOptions::verify_exact.
struct ClusterRecord {
  uint64_t id = 0;
  size_t size = 0;
  MinHash signature;
  const Domain* domain = nullptr;
};

/// \brief Self-join + union-find counters.
struct ClusterStats {
  size_t num_records = 0;
  size_t num_tiles = 0;
  /// Candidate ids returned by the self-join, self-hits excluded.
  size_t candidates = 0;
  /// Candidates naming records outside the enumerated set (concurrent
  /// inserts landing mid-job); skipped.
  size_t unknown_candidates = 0;
  /// Unique undirected candidate edges after (min, max) dedup.
  size_t unique_pairs = 0;
  /// Unique edges rejected by the exact-containment verification.
  size_t verified_rejected = 0;
  /// Edges fed to the DSU (unique_pairs - verified_rejected).
  size_t union_edges = 0;
  /// Unions that actually joined two distinct components.
  size_t merges = 0;
  size_t num_clusters = 0;
  /// Components with >= 2 members, and their total membership.
  size_t num_duplicate_groups = 0;
  size_t num_duplicated_records = 0;
};

/// \brief The clustering: parallel arrays mapping every record id
/// (ascending) to its cluster's canonical root — the smallest id in the
/// component. A singleton record is its own root.
struct ClusterResult {
  std::vector<uint64_t> ids;
  std::vector<uint64_t> roots;
  /// Post-verification candidate edges as canonical (min-id, max-id)
  /// pairs, sorted ascending; filled only under
  /// ClusterOptions::collect_edges.
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  size_t num_clusters = 0;
};

/// \brief Tiled self-join clustering driver over the sharded serving
/// engine. Stateless apart from its options; one instance can run many
/// corpora.
class NearDupClusterer {
 public:
  explicit NearDupClusterer(ClusterOptions options)
      : options_(std::move(options)) {}

  /// \brief Cluster `records` against `index`, which must already hold
  /// every record (each record is queried with its own signature and
  /// exact size at the configured threshold). Record ids must be unique;
  /// under verify_exact every record must carry its Domain. Must not be
  /// called from a thread-pool worker.
  Result<ClusterResult> Cluster(const ShardedEnsemble& index,
                                std::span<const ClusterRecord> records,
                                ClusterStats* stats = nullptr) const;

  const ClusterOptions& options() const { return options_; }

 private:
  ClusterOptions options_;
};

/// \brief Enumerate `index`'s live records into owned ClusterRecords
/// (signatures copied under the owning shard's lock), sorted by id. This
/// is how a snapshot-opened serving layer — which has no catalog — feeds
/// its own contents to the clusterer.
std::vector<ClusterRecord> CollectRecords(const ShardedEnsemble& index);

/// \brief One-call convenience for benches, tests and the CSV path:
/// sketch `corpus`, build an S-shard serving layer over it, self-join and
/// cluster. Records carry their Domains, so verify_exact works. Corpus
/// ids must be unique.
Result<ClusterResult> ClusterCorpus(const Corpus& corpus,
                                    std::shared_ptr<const HashFamily> family,
                                    const ClusterOptions& options,
                                    size_t num_shards,
                                    ClusterStats* stats = nullptr);

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CLUSTER_CLUSTERER_H_
