// Pair-level accuracy of a clustering against exact ground truth.
//
// Ground truth: the symmetric near-duplicate pair set {(A, B) :
// max(t(A,B), t(B,A)) >= threshold}, computed with the exact inverted
// index (baselines/exact_search.h) — the same engine every accuracy
// experiment in the repo trusts. Predicted pairs are the transitive
// closure of the clustering: every unordered pair sharing a root. The
// closure is deliberate — it charges the clusterer for chaining
// (transitively merged groups whose ends are not truly similar), which a
// raw edge-level comparison would miss.

#ifndef LSHENSEMBLE_CLUSTER_EVAL_H_
#define LSHENSEMBLE_CLUSTER_EVAL_H_

#include <cstddef>

#include "cluster/clusterer.h"
#include "data/corpus.h"
#include "util/result.h"

namespace lshensemble {

/// \brief Pair-level confusion counts and the derived rates.
struct PairAccuracy {
  /// Unordered pairs with exact max-direction containment >= threshold.
  size_t truth_pairs = 0;
  /// Unordered within-cluster pairs (sum of C(k, 2) over clusters).
  size_t predicted_pairs = 0;
  /// Pairs in both sets.
  size_t hit_pairs = 0;
  /// hit / predicted; 1.0 when nothing is predicted.
  double precision = 1.0;
  /// hit / truth; 1.0 when no truth pairs exist.
  double recall = 1.0;
};

/// \brief Score `clusters` (a ClusterResult over `corpus`'s domains,
/// matched by id) against the exact pair set of `corpus` at `threshold`.
/// Corpus domains absent from the clustering contribute their truth pairs
/// (as misses) but no predictions. O(corpus postings) per domain for the
/// exact self-join — ground-truth scale, not serving scale.
Result<PairAccuracy> EvaluatePairAccuracy(const Corpus& corpus,
                                          const ClusterResult& clusters,
                                          double threshold);

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CLUSTER_EVAL_H_
