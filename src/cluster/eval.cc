#include "cluster/eval.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "baselines/exact_search.h"

namespace lshensemble {

Result<PairAccuracy> EvaluatePairAccuracy(const Corpus& corpus,
                                          const ClusterResult& clusters,
                                          double threshold) {
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("threshold must be in (0, 1]");
  }
  const size_t n = corpus.size();
  if (n >= (1ULL << 32)) {
    return Status::InvalidArgument(
        "pair evaluation supports fewer than 2^32 domains");
  }
  std::unordered_map<uint64_t, uint32_t> dense;
  dense.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!dense.emplace(corpus.domain(i).id, static_cast<uint32_t>(i)).second) {
      return Status::InvalidArgument("duplicate corpus id " +
                                     std::to_string(corpus.domain(i).id));
    }
  }

  // Exact symmetric pair set: query every domain, keep (A, B) when either
  // direction's containment clears the threshold.
  ExactSearch exact;
  for (const Domain& domain : corpus.domains()) {
    LSHE_RETURN_IF_ERROR(exact.Add(domain.id, domain.values));
  }
  exact.Build();
  std::unordered_set<uint64_t> truth;
  std::vector<std::pair<uint64_t, double>> overlaps;
  for (size_t i = 0; i < n; ++i) {
    LSHE_RETURN_IF_ERROR(exact.Overlaps(corpus.domain(i).values, &overlaps));
    for (const auto& [other_id, containment] : overlaps) {
      if (other_id == corpus.domain(i).id) continue;
      if (containment < threshold) continue;
      uint32_t a = static_cast<uint32_t>(i);
      uint32_t b = dense.at(other_id);
      if (a > b) std::swap(a, b);
      truth.insert((static_cast<uint64_t>(a) << 32) | b);
    }
  }

  // Predicted pairs: C(k, 2) per cluster; hits: truth pairs whose two
  // members share a root.
  std::unordered_map<uint64_t, uint64_t> root_of;
  root_of.reserve(clusters.ids.size());
  for (size_t i = 0; i < clusters.ids.size(); ++i) {
    root_of[clusters.ids[i]] = clusters.roots[i];
  }
  std::unordered_map<uint64_t, size_t> cluster_sizes;
  for (const auto& [id, root] : root_of) ++cluster_sizes[root];

  PairAccuracy accuracy;
  accuracy.truth_pairs = truth.size();
  for (const auto& [root, members] : cluster_sizes) {
    accuracy.predicted_pairs += members * (members - 1) / 2;
  }
  for (uint64_t key : truth) {
    const uint32_t a = static_cast<uint32_t>(key >> 32);
    const uint32_t b = static_cast<uint32_t>(key);
    const auto ra = root_of.find(corpus.domain(a).id);
    const auto rb = root_of.find(corpus.domain(b).id);
    if (ra != root_of.end() && rb != root_of.end() &&
        ra->second == rb->second) {
      ++accuracy.hit_pairs;
    }
  }
  if (accuracy.predicted_pairs > 0) {
    accuracy.precision = static_cast<double>(accuracy.hit_pairs) /
                         static_cast<double>(accuracy.predicted_pairs);
  }
  if (accuracy.truth_pairs > 0) {
    accuracy.recall = static_cast<double>(accuracy.hit_pairs) /
                      static_cast<double>(accuracy.truth_pairs);
  }
  return accuracy;
}

}  // namespace lshensemble
