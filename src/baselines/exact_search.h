// Exact containment search over raw domain values, via an inverted index.
// This is the ground-truth engine for every accuracy experiment (the paper
// computes exact containment scores on the Canadian Open Data corpus for
// the same purpose, Section 6.1).

#ifndef LSHENSEMBLE_BASELINES_EXACT_SEARCH_H_
#define LSHENSEMBLE_BASELINES_EXACT_SEARCH_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Exact inverted-index engine for t(Q, X) = |Q ∩ X| / |Q|.
///
/// Lifecycle: Add() all domains, Build() once, then query from any number
/// of threads concurrently.
class ExactSearch {
 public:
  /// \param values the domain's values; duplicates are ignored.
  /// Ids must be unique across Add calls (not checked; duplicate ids would
  /// double-count overlaps).
  Status Add(uint64_t id, const std::vector<uint64_t>& values);

  /// Freeze and build the inverted index.
  void Build();
  bool built() const { return built_; }
  size_t size() const { return ids_.size(); }

  /// \brief All domains with non-zero overlap, with their exact containment
  /// scores t(Q, X); unordered. Requires built().
  Status Overlaps(const std::vector<uint64_t>& query_values,
                  std::vector<std::pair<uint64_t, double>>* out) const;

  /// \brief The exact answer set {X : t(Q, X) >= t_star} (Definition 2),
  /// sorted by id.
  Status Query(const std::vector<uint64_t>& query_values, double t_star,
               std::vector<uint64_t>* out) const;

  /// \brief The k domains with the highest exact containment (the top-k
  /// formulation of Section 2), sorted by descending containment with ties
  /// broken by ascending id; fewer when fewer domains overlap.
  Status TopK(const std::vector<uint64_t>& query_values, size_t k,
              std::vector<std::pair<uint64_t, double>>* out) const;

 private:
  bool built_ = false;
  std::vector<uint64_t> ids_;  // dense internal index -> external id
  std::unordered_map<uint64_t, std::vector<uint32_t>> postings_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_BASELINES_EXACT_SEARCH_H_
