#include "baselines/asym_minhash.h"

#include <algorithm>
#include <cmath>

#include "util/hashing.h"

namespace lshensemble {

Status AsymMinhashOptions::Validate() const {
  if (num_hashes < 1 || tree_depth < 1) {
    return Status::InvalidArgument("num_hashes and tree_depth must be >= 1");
  }
  if (num_hashes % tree_depth != 0) {
    return Status::InvalidArgument("tree_depth must divide num_hashes");
  }
  if (integration_nodes < 8) {
    return Status::InvalidArgument("integration_nodes must be >= 8");
  }
  return Status::OK();
}

uint64_t SamplePadMinimum(uint64_t pad_seed, uint64_t domain_id, int slot,
                          uint64_t pad_count) {
  if (pad_count == 0) return HashFamily::kMaxHash;
  // Deterministic uniform in (0, 1] for this (domain, slot).
  const uint64_t bits = Mix64(
      pad_seed ^ HashCombine(domain_id, static_cast<uint64_t>(slot) + 1));
  const double u = (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
  // Minimum of pad_count iid U(0,1): V = 1 - U^(1/p) by survival inversion.
  const double v =
      -std::expm1(std::log(u) / static_cast<double>(pad_count));  // 1 - u^(1/p)
  const double scaled = v * static_cast<double>(HashFamily::kMaxHash);
  if (scaled >= static_cast<double>(HashFamily::kMaxHash)) {
    return HashFamily::kMaxHash;
  }
  return static_cast<uint64_t>(scaled);
}

AsymMinhash::Builder::Builder(AsymMinhashOptions options,
                              std::shared_ptr<const HashFamily> family)
    : options_(options), family_(std::move(family)) {}

Status AsymMinhash::Builder::Add(uint64_t id, size_t size, MinHash signature) {
  if (family_ == nullptr) {
    return Status::InvalidArgument("builder has no hash family");
  }
  if (size < 1) {
    return Status::InvalidArgument("domain size must be >= 1");
  }
  if (!signature.valid() || !signature.family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "signature does not belong to the builder's hash family");
  }
  records_.push_back({id, size, std::move(signature)});
  return Status::OK();
}

Result<AsymMinhash> AsymMinhash::Builder::Build() && {
  LSHE_RETURN_IF_ERROR(options_.Validate());
  if (family_ == nullptr) {
    return Status::InvalidArgument("builder has no hash family");
  }
  if (options_.num_hashes != family_->num_hashes()) {
    return Status::InvalidArgument(
        "options.num_hashes does not match the hash family");
  }
  if (records_.empty()) {
    return Status::FailedPrecondition("no domains added");
  }

  uint64_t padded_size = 0;
  for (const Record& record : records_) {
    padded_size = std::max(padded_size, record.size);
  }

  const int num_trees = options_.num_hashes / options_.tree_depth;
  auto forest_result = LshForest::Create(num_trees, options_.tree_depth);
  if (!forest_result.ok()) return forest_result.status();
  LshForest forest = std::move(forest_result).value();

  // The asymmetric transformation: pad each signature up to `padded_size`
  // by folding in the sampled minimum of the fresh pad values, slot-wise.
  for (Record& record : records_) {
    const uint64_t pad_count = padded_size - record.size;
    if (pad_count == 0) continue;
    std::vector<uint64_t> slots = record.signature.values();
    for (size_t slot = 0; slot < slots.size(); ++slot) {
      const uint64_t pad_min = SamplePadMinimum(
          options_.pad_seed, record.id, static_cast<int>(slot), pad_count);
      if (pad_min < slots[slot]) slots[slot] = pad_min;
    }
    auto padded = MinHash::FromSlots(family_, std::move(slots));
    if (!padded.ok()) return padded.status();
    record.signature = std::move(padded).value();
  }

  Tuner::Options tuner_options;
  tuner_options.max_b = num_trees;
  tuner_options.max_r = options_.tree_depth;
  tuner_options.integration_nodes = options_.integration_nodes;
  auto tuner = Tuner::Create(tuner_options);
  if (!tuner.ok()) return tuner.status();

  for (const Record& record : records_) {
    LSHE_RETURN_IF_ERROR(forest.Add(record.id, record.signature));
  }
  forest.Index();

  return AsymMinhash(options_, std::move(family_), std::move(forest),
                     std::move(tuner).value(), padded_size);
}

Status AsymMinhash::Query(const MinHash& query, size_t query_size,
                          double t_star, std::vector<uint64_t>* out,
                          TunedParams* tuned_out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  if (!query.valid() || !query.family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "query signature does not belong to the index's hash family");
  }
  if (t_star < 0.0 || t_star > 1.0) {
    return Status::InvalidArgument("t_star must be in [0, 1]");
  }
  out->clear();
  size_t q = query_size;
  if (q == 0) {
    q = static_cast<size_t>(
        std::max<int64_t>(1, std::llround(query.EstimateCardinality())));
  }
  // Every padded domain has size M, so the conversion uses x = M exactly
  // (appendix Eq. 31); the same tuner objective applies with x = M.
  const TunedParams tuned = tuner_->Tune(static_cast<double>(padded_size_),
                                         static_cast<double>(q), t_star);
  if (tuned_out != nullptr) *tuned_out = tuned;
  return forest_.Query(query, tuned.b, tuned.r, out);
}

}  // namespace lshensemble
