// Asymmetric Minwise Hashing (Shrivastava & Li, WWW'15), the paper's
// second comparison point (Section 4 and the appendix).
//
// Indexed domains are padded with fresh values until every domain has the
// size M of the largest domain; queries are not padded. Containment then
// becomes monotone in the Jaccard similarity between a query signature and
// a padded signature (appendix Eq. 31):
//
//     s-hat_{M,q}(t) = t / (M/q + 1 - t)
//
// so a MinHash LSH over padded signatures supports containment search. As
// the paper shows, when domain sizes are heavily skewed the padding mass
// drives the collision probability of even fully-contained domains toward
// zero (appendix Eq. 32, Figure 10), collapsing recall — reproduced by the
// fig05/fig10 benches.
//
// Per the paper's footnote 1, padding is applied to the MinHash signatures
// rather than to the domains: the minimum hash of the p fresh pad values of
// a (domain, hash function) pair is drawn from the exact order-statistic
// distribution of the minimum of p iid uniform hashes, seeded
// deterministically per domain and slot (see DESIGN.md).

#ifndef LSHENSEMBLE_BASELINES_ASYM_MINHASH_H_
#define LSHENSEMBLE_BASELINES_ASYM_MINHASH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tuning.h"
#include "lsh/lsh_forest.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Configuration of an AsymMinhash index.
struct AsymMinhashOptions {
  int num_hashes = 256;
  int tree_depth = 8;  ///< forest depth; num_hashes / tree_depth trees
  int integration_nodes = 256;
  uint64_t pad_seed = 0x5eed5eed5eed5eedULL;

  Status Validate() const;
};

/// \brief The minimum hash value of `pad_count` fresh uniform values, drawn
/// from the order-statistic distribution min ~ max_hash * (1 - U^(1/p)),
/// deterministically seeded by (pad_seed, domain id, slot). Exposed for
/// tests. Returns kEmptySlot-like max for pad_count == 0.
uint64_t SamplePadMinimum(uint64_t pad_seed, uint64_t domain_id, int slot,
                          uint64_t pad_count);

/// \brief Containment search via Asymmetric Minwise Hashing + dynamic LSH.
class AsymMinhash {
 public:
  class Builder {
   public:
    Builder(AsymMinhashOptions options,
            std::shared_ptr<const HashFamily> family);
    /// Same contract as LshEnsembleBuilder::Add.
    Status Add(uint64_t id, size_t size, MinHash signature);
    /// Pads every signature to the maximum domain size and indexes.
    Result<AsymMinhash> Build() &&;

   private:
    struct Record {
      uint64_t id;
      uint64_t size;
      MinHash signature;
    };
    AsymMinhashOptions options_;
    std::shared_ptr<const HashFamily> family_;
    std::vector<Record> records_;
  };

  /// See LshEnsemble::Query; x is approximated by the padded size M for
  /// every indexed domain (all padded domains share it).
  Status Query(const MinHash& query, size_t query_size, double t_star,
               std::vector<uint64_t>* out,
               TunedParams* tuned_out = nullptr) const;

  size_t size() const { return forest_.size(); }
  /// The padded domain size M (largest indexed domain).
  uint64_t padded_size() const { return padded_size_; }
  size_t MemoryBytes() const { return forest_.MemoryBytes(); }

 private:
  AsymMinhash(AsymMinhashOptions options,
              std::shared_ptr<const HashFamily> family, LshForest forest,
              std::unique_ptr<Tuner> tuner, uint64_t padded_size)
      : options_(options),
        family_(std::move(family)),
        forest_(std::move(forest)),
        tuner_(std::move(tuner)),
        padded_size_(padded_size) {}

  AsymMinhashOptions options_;
  std::shared_ptr<const HashFamily> family_;
  LshForest forest_;
  std::unique_ptr<Tuner> tuner_;
  uint64_t padded_size_ = 0;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_BASELINES_ASYM_MINHASH_H_
