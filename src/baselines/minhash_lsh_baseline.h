// The paper's "Baseline": a single MinHash LSH over all domains, using the
// same dynamic-LSH containment search as the ensemble (Section 6.1 makes
// the comparison fair this way), with the containment threshold converted
// through the *global* upper bound on domain size. Equivalent to an
// LshEnsemble with one partition; this wrapper exists so benches and
// examples can name the baseline explicitly.

#ifndef LSHENSEMBLE_BASELINES_MINHASH_LSH_BASELINE_H_
#define LSHENSEMBLE_BASELINES_MINHASH_LSH_BASELINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/lsh_ensemble.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Single-partition dynamic MinHash LSH for containment search.
class MinHashLshBaseline {
 public:
  /// Builder mirroring LshEnsembleBuilder; forces num_partitions = 1.
  class Builder {
   public:
    Builder(LshEnsembleOptions options,
            std::shared_ptr<const HashFamily> family);
    Status Add(uint64_t id, size_t size, MinHash signature);
    Result<MinHashLshBaseline> Build() &&;

   private:
    LshEnsembleBuilder inner_;
  };

  /// See LshEnsemble::Query.
  Status Query(const MinHash& query, size_t query_size, double t_star,
               std::vector<uint64_t>* out, QueryStats* stats = nullptr) const {
    return inner_.Query(query, query_size, t_star, out, stats);
  }

  size_t size() const { return inner_.size(); }
  size_t MemoryBytes() const { return inner_.MemoryBytes(); }
  const LshEnsemble& inner() const { return inner_; }

 private:
  explicit MinHashLshBaseline(LshEnsemble inner) : inner_(std::move(inner)) {}

  LshEnsemble inner_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_BASELINES_MINHASH_LSH_BASELINE_H_
