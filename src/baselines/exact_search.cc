#include "baselines/exact_search.h"

#include <algorithm>

namespace lshensemble {

Status ExactSearch::Add(uint64_t id, const std::vector<uint64_t>& values) {
  if (built_) {
    return Status::FailedPrecondition("ExactSearch already built");
  }
  if (values.empty()) {
    return Status::InvalidArgument("domain must have at least one value");
  }
  const auto internal = static_cast<uint32_t>(ids_.size());
  ids_.push_back(id);
  std::vector<uint64_t> distinct = values;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (uint64_t value : distinct) {
    postings_[value].push_back(internal);
  }
  return Status::OK();
}

void ExactSearch::Build() { built_ = true; }

Status ExactSearch::Overlaps(
    const std::vector<uint64_t>& query_values,
    std::vector<std::pair<uint64_t, double>>* out) const {
  if (!built_) {
    return Status::FailedPrecondition("ExactSearch::Build() not called");
  }
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  out->clear();
  std::vector<uint64_t> distinct = query_values;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  if (distinct.empty()) {
    return Status::InvalidArgument("query must have at least one value");
  }

  // Count per-domain hits over the query's posting lists; only touched
  // domains are visited, so cost is the total posting length of the query.
  std::unordered_map<uint32_t, uint32_t> hits;
  for (uint64_t value : distinct) {
    auto it = postings_.find(value);
    if (it == postings_.end()) continue;
    for (uint32_t internal : it->second) ++hits[internal];
  }
  const auto query_size = static_cast<double>(distinct.size());
  out->reserve(hits.size());
  for (const auto& [internal, count] : hits) {
    out->emplace_back(ids_[internal],
                      static_cast<double>(count) / query_size);
  }
  return Status::OK();
}

Status ExactSearch::Query(const std::vector<uint64_t>& query_values,
                          double t_star, std::vector<uint64_t>* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  std::vector<std::pair<uint64_t, double>> overlaps;
  LSHE_RETURN_IF_ERROR(Overlaps(query_values, &overlaps));
  out->clear();
  for (const auto& [id, containment] : overlaps) {
    if (containment >= t_star) out->push_back(id);
  }
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status ExactSearch::TopK(const std::vector<uint64_t>& query_values, size_t k,
                         std::vector<std::pair<uint64_t, double>>* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  std::vector<std::pair<uint64_t, double>> overlaps;
  LSHE_RETURN_IF_ERROR(Overlaps(query_values, &overlaps));
  const size_t kth = std::min(k, overlaps.size());
  const auto by_containment_desc = [](const std::pair<uint64_t, double>& a,
                                      const std::pair<uint64_t, double>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  std::partial_sort(overlaps.begin(),
                    overlaps.begin() + static_cast<ptrdiff_t>(kth),
                    overlaps.end(), by_containment_desc);
  overlaps.resize(kth);
  *out = std::move(overlaps);
  return Status::OK();
}

}  // namespace lshensemble
