#include "baselines/minhash_lsh_baseline.h"

namespace lshensemble {

namespace {

LshEnsembleOptions ForceSinglePartition(LshEnsembleOptions options) {
  options.num_partitions = 1;
  options.interpolation_lambda = -1.0;
  options.strategy = PartitioningStrategy::kEquiDepth;
  return options;
}

}  // namespace

MinHashLshBaseline::Builder::Builder(LshEnsembleOptions options,
                                     std::shared_ptr<const HashFamily> family)
    : inner_(ForceSinglePartition(options), std::move(family)) {}

Status MinHashLshBaseline::Builder::Add(uint64_t id, size_t size,
                                        MinHash signature) {
  return inner_.Add(id, size, std::move(signature));
}

Result<MinHashLshBaseline> MinHashLshBaseline::Builder::Build() && {
  auto ensemble = std::move(inner_).Build();
  if (!ensemble.ok()) return ensemble.status();
  return MinHashLshBaseline(std::move(ensemble).value());
}

}  // namespace lshensemble
