// Incremental domain search: an LshEnsemble plus an LSM-style write path.
//
// The paper studies dynamic data in Section 6.2: the index tolerates
// considerable domain-size drift before its equi-depth partitioning
// degrades, and is rebuilt when the distribution shifts drastically. This
// module packages that lifecycle:
//
//  * Insert()  — new domains land in an unindexed delta buffer that is
//                scanned exactly at query time (sketch-estimated Jaccard
//                against the same conservative threshold the ensemble
//                uses), so they are searchable immediately.
//  * Remove()  — removals tombstone indexed domains; tombstones filter
//                query results until the next rebuild.
//  * Flush()   — rebuilds the ensemble over all live domains (triggered
//                automatically once the delta outgrows
//                rebuild_fraction x indexed size).
//
// The structure retains every live domain's size and signature (the same
// side-car a TopKSearcher needs) — that is what makes rebuilds possible
// without re-reading the raw data.
//
// Zero-copy open (io/snapshot.h): an index opened from a mapped v2
// snapshot serves the indexed records' side-car straight out of the
// mapping (sorted-id binary search) instead of the records_ map, which
// then holds only the post-open overlay (restored delta + new inserts).
// Queries, mutations and top-k ranking behave identically; the first
// Flush() materializes the mapped records, rebuilds on the heap and
// releases the mapping.

#ifndef LSHENSEMBLE_CORE_DYNAMIC_ENSEMBLE_H_
#define LSHENSEMBLE_CORE_DYNAMIC_ENSEMBLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/lsh_ensemble.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Configuration of a DynamicLshEnsemble.
struct DynamicEnsembleOptions {
  /// Options used for every (re)build of the underlying ensemble.
  LshEnsembleOptions base;
  /// Rebuild when the delta buffer exceeds this fraction of the indexed
  /// domain count.
  double rebuild_fraction = 0.1;
  /// ... but never before the delta holds at least this many domains
  /// (avoids rebuild storms while the index is small).
  size_t min_delta_for_rebuild = 1024;

  Status Validate() const;
};

/// \brief Mutable domain-search index: immediate-visibility inserts,
/// tombstoned removals, automatic rebuilds.
///
/// Not thread-safe for concurrent mutation; concurrent Query() calls are
/// safe between mutations.
class DynamicLshEnsemble {
 public:
  /// \param family the hash family all inserted signatures must share.
  static Result<DynamicLshEnsemble> Create(
      DynamicEnsembleOptions options,
      std::shared_ptr<const HashFamily> family);

  /// \brief Add a domain; it is searchable immediately. `id` must not be
  /// live (re-inserting a Remove()d id is allowed). May trigger a rebuild.
  Status Insert(uint64_t id, size_t size, MinHash signature);

  /// \brief Add a domain from its raw (pre-hashed, distinct) values: the
  /// signature is built internally with the batched SIMD kernel and the
  /// size taken from values.size(). Same semantics as Insert() above.
  Status Insert(uint64_t id, std::span<const uint64_t> values);

  /// \brief Remove a live domain. Indexed domains are tombstoned until the
  /// next rebuild; unflushed (delta) domains are dropped outright.
  Status Remove(uint64_t id);

  /// \brief Domain search with set containment over indexed + delta
  /// domains, minus tombstones. Same contract as LshEnsemble::Query.
  ///
  /// A thin wrapper over the context-taking overload with a private
  /// QueryContext (allocates); prefer that overload on hot paths.
  Status Query(const MinHash& query, size_t query_size, double t_star,
               std::vector<uint64_t>* out) const;

  /// \brief Same search, routed through the batched engine with
  /// caller-owned scratch: a thin wrapper over BatchQuery() with a batch
  /// of one. One context must not be used by concurrent callers.
  Status Query(const MinHash& query, size_t query_size, double t_star,
               QueryContext* ctx, std::vector<uint64_t>* out) const;

  /// \brief Answer `specs.size()` queries in one call, same per-query
  /// contract as LshEnsemble::BatchQuery (query i's live candidates go to
  /// `outs[i]`, cleared first; optional per-query `stats`).
  ///
  /// The indexed portion rides the underlying ensemble's batched engine;
  /// the delta buffer is then scanned ONCE for the whole batch — records
  /// in the outer loop, queries in the inner loop, so each unindexed
  /// signature is compared against every query while cache-resident (via
  /// the dispatched collision-count kernel). Per-query threshold terms are
  /// hoisted out of the record loop, and all staging (tombstone filtering,
  /// hoisted terms) lives in `ctx`, so a warm context makes the whole call
  /// allocation-free apart from output growth. Thread-safe between
  /// mutations; give each calling thread its own context.
  ///
  /// Under base.prune_unreachable_partitions (the same flag the indexed
  /// path's partition prune honors), delta records whose size cannot
  /// reach a query's containment threshold (x < t* * q implies
  /// t(Q, X) <= x/q < t*) skip the collision count — whole scan tiles are
  /// skipped when even their largest record is unreachable. Like the
  /// partition prune, this admits no record the threshold semantics could
  /// require (no new false negatives).
  Status BatchQuery(std::span<const QuerySpec> specs, QueryContext* ctx,
                    std::vector<uint64_t>* outs,
                    QueryStats* stats = nullptr) const;

  /// \brief Rebuild the ensemble over all live domains now. No-op when
  /// nothing changed since the last build. Clears the delta and tombstones.
  Status Flush();

  /// \brief Rebuild with partition boundaries pinned to `pinned` instead of
  /// partitioning this index's own size distribution (see
  /// LshEnsembleOptions::pinned_partitions). Always rebuilds — the caller
  /// changes the boundaries, so "nothing changed" cannot be inferred here.
  /// The sharded serving layer drives every shard's rebuilds through this
  /// with one corpus-global partitioning.
  Status Flush(std::vector<PartitionSpec> pinned);

  /// \brief Append every live domain's size to `out` (unspecified order).
  /// The sharded layer aggregates these across shards to compute the
  /// corpus-global partitioning it pins rebuilds to.
  void AppendLiveSizes(std::vector<uint64_t>* out) const;

  /// \brief Invoke `fn(id, size, signature)` for every live domain —
  /// heap (overlay) records and still-live snapshot-resident records
  /// alike, in unspecified order. The views carry the FindSignature()
  /// stability contract: callers that outlive the enumeration (or run
  /// concurrently with mutations, like the cluster self-join) must copy
  /// the slots out inside `fn`. This is the corpus enumeration the
  /// all-pairs self-join driver (cluster/clusterer.h) feeds its query
  /// waves from, which is why a snapshot-opened index can be clustered
  /// without its catalog.
  void ForEachLiveRecord(
      const std::function<void(uint64_t id, size_t size, SignatureView sig)>&
          fn) const;

  /// Number of live (searchable) domains: the heap records (overlay) plus
  /// the still-live records of a mapped snapshot base.
  size_t size() const {
    return records_.size() + mapped_.n - mapped_removed_;
  }
  /// Domains in the built ensemble (including tombstoned ones).
  size_t indexed_size() const;
  /// Domains awaiting the next rebuild.
  size_t delta_size() const { return delta_.size(); }
  /// Tombstoned (removed but still indexed) domains.
  size_t tombstone_count() const { return tombstones_.size(); }

  /// The built ensemble, or nullptr before the first flush.
  const LshEnsemble* indexed() const {
    return ensemble_.has_value() ? &*ensemble_ : nullptr;
  }

  /// Exact size of a live domain (0 if not live) — the side-car lookup.
  size_t SizeOf(uint64_t id) const;
  /// Signature of a live domain as an owned MinHash (nullptr if not
  /// live). For an index opened from a mapped snapshot this only covers
  /// the overlay (post-open inserts); snapshot-resident records have no
  /// owned MinHash — use FindSignature(), which covers both.
  const MinHash* SignatureOf(uint64_t id) const;
  /// Signature and exact size in one lookup (nullptr / size untouched if
  /// not live) — one map probe per ranked top-k candidate. Same mapped
  /// caveat as SignatureOf().
  const MinHash* FindRecord(uint64_t id, size_t* size) const;
  /// \brief Borrowed view of a live domain's signature and, on success,
  /// its exact size — overlay records and snapshot-resident records
  /// alike. This is the lookup top-k ranking uses; the view is stable
  /// until the domain is removed, the index flushes, or it is destroyed.
  SignatureView FindSignature(uint64_t id, size_t* size) const;

  /// The hash family all signatures share.
  const std::shared_ptr<const HashFamily>& family() const { return family_; }

 private:
  struct Record {
    size_t size;
    MinHash signature;
  };

  DynamicLshEnsemble(DynamicEnsembleOptions options,
                     std::shared_ptr<const HashFamily> family)
      : options_(std::move(options)), family_(std::move(family)) {}

  friend class SnapshotIO;  // io/snapshot.cc (v2 save + zero-copy open)

  /// \brief Side-car of the records that live only in the mapped
  /// snapshot: parallel id/size arrays (ids strictly ascending) plus the
  /// signature arena, all borrowed views into the mapping. n == 0 means
  /// "no mapped base" (the common, fully-heap case).
  struct MappedSideCar {
    const uint64_t* ids = nullptr;
    const uint64_t* sizes = nullptr;
    const uint64_t* signatures = nullptr;  // n rows of m slot minima
    size_t n = 0;
    size_t m = 0;
  };

  bool ShouldRebuild() const;
  /// Rebuild over all live records with `build_options` (Flush plumbing).
  Status Rebuild(const LshEnsembleOptions& build_options);
  /// Index into mapped_.ids for `id`, or mapped_.n when absent.
  size_t MappedFind(uint64_t id) const;
  /// True when `id` is live in the mapped base (present, not tombstoned).
  bool MappedLive(uint64_t id) const;
  /// Copy every live mapped record into records_ and drop the mapped base
  /// (the first step of any rebuild of a snapshot-opened index).
  Status MaterializeMapped();

  DynamicEnsembleOptions options_;
  std::shared_ptr<const HashFamily> family_;

  // All live domains (authoritative copy used for rebuilds).
  std::unordered_map<uint64_t, Record> records_;
  // Ids inserted since the last rebuild (subset of records_).
  std::vector<uint64_t> delta_;
  // Ids removed (or replaced) since the last rebuild but still present in
  // the built ensemble.
  std::unordered_set<uint64_t> tombstones_;

  std::optional<LshEnsemble> ensemble_;
  size_t indexed_count_ = 0;

  // Zero-copy open state: the mapped side-car view, how many of its
  // records were Remove()d since the open (they stay in mapped_.ids but
  // are tombstoned), and the keepalive for the mapping (type-erased so
  // this header does not depend on io/). All empty for heap indexes.
  MappedSideCar mapped_;
  size_t mapped_removed_ = 0;
  std::shared_ptr<const void> mapped_backing_;

  /// Process-unique identity + mutation counter: together they key the
  /// QueryContext's flattened-delta cache, so consecutive batches (and
  /// top-k descent rounds) against an unchanged index skip re-flattening
  /// the delta. Copied by moves; a moved-from index has an empty delta,
  /// so its aliased id is inert (same convention as LshEnsemble).
  uint64_t instance_id_ = 0;
  uint64_t mutation_epoch_ = 0;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CORE_DYNAMIC_ENSEMBLE_H_
