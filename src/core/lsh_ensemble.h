// LSH Ensemble (paper Section 5): the domain-search index.
//
// Indexing (two stages, §5): domains are partitioned into disjoint size
// intervals (equi-depth by default, per Theorem 2), and each partition is
// indexed by a dynamic MinHash LSH (LshForest). Querying (Algorithm 1 +
// Partitioned-Containment-Search): the containment threshold t* is
// converted per partition to a conservative Jaccard threshold using the
// partition's upper size bound, each partition's LSH is retuned to its own
// optimal (b, r) (Eq. 26), all partitions are probed (in parallel), and the
// candidate unions are returned.
//
// Typical use:
//
//   auto family = HashFamily::Create(256, seed).value();
//   LshEnsembleBuilder builder(options, family);
//   for (const auto& d : domains)
//     builder.Add(d.id, d.values.size(),
//                 MinHash::FromValues(family, d.values));
//   auto ensemble = std::move(builder).Build().value();
//   std::vector<uint64_t> ids;
//   ensemble.Query(query_sketch, query_size, /*t_star=*/0.5, &ids);

#ifndef LSHENSEMBLE_CORE_LSH_ENSEMBLE_H_
#define LSHENSEMBLE_CORE_LSH_ENSEMBLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cost_model.h"
#include "core/partitioner.h"
#include "core/tuning.h"
#include "lsh/lsh_forest.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Configuration of an LshEnsemble.
struct LshEnsembleOptions {
  /// Number of size partitions n (the paper evaluates 8/16/32).
  int num_partitions = 16;
  /// Signature length m; must equal the hash family's size.
  int num_hashes = 256;
  /// r_max: prefix-tree depth of each partition's forest. The number of
  /// trees (b_max) is num_hashes / tree_depth; must divide num_hashes.
  int tree_depth = 8;
  /// How partition boundaries are chosen.
  PartitioningStrategy strategy = PartitioningStrategy::kEquiDepth;
  /// When in [0, 1], overrides `strategy` with the equi-depth(0) <->
  /// equi-width(1) interpolation of Figure 8. Negative disables.
  double interpolation_lambda = -1.0;
  /// Lattice size for the tuner's FP/FN integrals.
  int integration_nodes = 256;
  /// Skip partitions whose largest domain cannot reach the containment
  /// threshold (max size < t* * q). Introduces no false negatives.
  bool prune_unreachable_partitions = true;
  /// Build partition forests on the shared thread pool.
  bool parallel_build = true;
  /// Probe partitions on the shared thread pool.
  bool parallel_query = true;

  Status Validate() const;
};

/// \brief Per-query diagnostics (optional output of Query()).
struct QueryStats {
  /// The query cardinality actually used (exact or MinHash-estimated).
  size_t query_size_used = 0;
  size_t partitions_probed = 0;
  size_t partitions_pruned = 0;
  /// Tuned (b, r) per probed partition, in partition order.
  std::vector<TunedParams> tuned;
};

class LshEnsemble;

/// \brief Accumulates (id, size, signature) records and builds the
/// immutable index in one pass (single-pass construction, §2).
class LshEnsembleBuilder {
 public:
  /// \param family the hash family every added signature must come from.
  LshEnsembleBuilder(LshEnsembleOptions options,
                     std::shared_ptr<const HashFamily> family);

  /// \brief Register a domain. `size` is the domain's exact distinct-value
  /// count (known during sketching); `signature` its MinHash.
  /// Ids must be unique; sizes must be >= 1.
  Status Add(uint64_t id, size_t size, MinHash signature);

  size_t size() const { return records_.size(); }

  /// \brief Partition, build and index every partition's forest. Consumes
  /// the builder. Fails if no domain was added or options are invalid.
  Result<LshEnsemble> Build() &&;

 private:
  struct Record {
    uint64_t id;
    uint64_t size;
    MinHash signature;
  };

  LshEnsembleOptions options_;
  std::shared_ptr<const HashFamily> family_;
  std::vector<Record> records_;
};

/// \brief The immutable LSH Ensemble index. Thread-safe for concurrent
/// queries.
class LshEnsemble {
 public:
  LshEnsemble(LshEnsemble&&) = default;
  LshEnsemble& operator=(LshEnsemble&&) = default;

  /// \brief Domain search with set containment (Algorithm 1, unioned over
  /// partitions). Appends the ids of all candidate domains to `out`
  /// (order: by partition, then forest order; ids are unique).
  ///
  /// \param query      MinHash of the query domain (same family).
  /// \param query_size exact |Q| if known; pass 0 to use the MinHash
  ///                   cardinality estimate (`approx(|Q|)` in Alg. 1).
  /// \param t_star     containment threshold in [0, 1].
  /// \param stats      optional per-query diagnostics.
  Status Query(const MinHash& query, size_t query_size, double t_star,
               std::vector<uint64_t>* out, QueryStats* stats = nullptr) const;

  /// The non-empty partitions, ascending by size interval.
  const std::vector<PartitionSpec>& partitions() const { return specs_; }
  /// Total number of indexed domains.
  size_t size() const { return total_; }
  const LshEnsembleOptions& options() const { return options_; }
  const std::shared_ptr<const HashFamily>& family() const { return family_; }

  /// Tuned (b, r) the ensemble would use for partition `index` given query
  /// size `q` and threshold `t_star` (exposed for tests and benches).
  Result<TunedParams> TuneForPartition(size_t index, double q,
                                       double t_star) const;

  /// Approximate heap footprint of all partition forests, in bytes.
  size_t MemoryBytes() const;

 private:
  friend class LshEnsembleBuilder;
  friend class EnsembleSerializer;  // io/ensemble_io.cc (save/load)
  LshEnsemble(LshEnsembleOptions options,
              std::shared_ptr<const HashFamily> family)
      : options_(options), family_(std::move(family)) {}

  LshEnsembleOptions options_;
  std::shared_ptr<const HashFamily> family_;
  std::vector<PartitionSpec> specs_;  // non-empty partitions only
  std::vector<LshForest> forests_;    // parallel to specs_
  std::unique_ptr<Tuner> tuner_;
  size_t total_ = 0;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CORE_LSH_ENSEMBLE_H_
