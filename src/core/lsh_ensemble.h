// LSH Ensemble (paper Section 5): the domain-search index.
//
// Indexing (two stages, §5): domains are partitioned into disjoint size
// intervals (equi-depth by default, per Theorem 2), and each partition is
// indexed by a dynamic MinHash LSH (LshForest). Querying (Algorithm 1 +
// Partitioned-Containment-Search): the containment threshold t* is
// converted per partition to a conservative Jaccard threshold using the
// partition's upper size bound, each partition's LSH is retuned to its own
// optimal (b, r) (Eq. 26), all partitions are probed, and the candidate
// unions are returned.
//
// The query engine is batched: BatchQuery() answers many queries per call,
// parallelizing *across queries* on the shared ThreadPool and reusing all
// per-query scratch through a caller-owned QueryContext, so the steady
// state performs no allocation. Single-query Query() is a thin wrapper
// over the same engine (a batch of one falls back to parallelizing across
// partitions, preserving single-query latency on multicore machines).
//
// Typical use:
//
//   auto family = HashFamily::Create(256, seed).value();
//   LshEnsembleBuilder builder(options, family);
//   for (const auto& d : domains)
//     builder.Add(d.id, d.values.size(),
//                 MinHash::FromValues(family, d.values));
//   auto ensemble = std::move(builder).Build().value();
//   std::vector<uint64_t> ids;
//   ensemble.Query(query_sketch, query_size, /*t_star=*/0.5, &ids);
//
// High-throughput use:
//
//   QueryContext ctx;                        // reuse across batches
//   std::vector<QuerySpec> specs = ...;      // one per query
//   std::vector<std::vector<uint64_t>> outs(specs.size());
//   ensemble.BatchQuery(specs, &ctx, outs.data());

#ifndef LSHENSEMBLE_CORE_LSH_ENSEMBLE_H_
#define LSHENSEMBLE_CORE_LSH_ENSEMBLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/cost_model.h"
#include "core/partitioner.h"
#include "core/tuning.h"
#include "filter/probe_filter.h"
#include "lsh/lsh_forest.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Configuration of an LshEnsemble.
struct LshEnsembleOptions {
  /// Number of size partitions n (the paper evaluates 8/16/32).
  int num_partitions = 16;
  /// Signature length m; must equal the hash family's size.
  int num_hashes = 256;
  /// r_max: prefix-tree depth of each partition's forest. The number of
  /// trees (b_max) is num_hashes / tree_depth; must divide num_hashes.
  int tree_depth = 8;
  /// How partition boundaries are chosen.
  PartitioningStrategy strategy = PartitioningStrategy::kEquiDepth;
  /// When in [0, 1], overrides `strategy` with the equi-depth(0) <->
  /// equi-width(1) interpolation of Figure 8. Negative disables.
  double interpolation_lambda = -1.0;
  /// Lattice size for the tuner's FP/FN integrals.
  int integration_nodes = 256;
  /// When non-empty, partition boundaries are pinned to exactly these
  /// [lower, upper) intervals instead of being derived from the indexed
  /// sizes (`strategy` / `interpolation_lambda` are ignored; counts are
  /// recomputed at build time and empty intervals are dropped). Intervals
  /// must be ascending and disjoint, and every added domain's size must
  /// fall inside one of them. The sharded serving layer pins every shard
  /// to one corpus-global partitioning so per-partition tuning — and with
  /// it the candidate set — is independent of how domains were sharded.
  /// Never serialized: a persisted image stores the built partitions.
  std::vector<PartitionSpec> pinned_partitions = {};
  /// Skip partitions whose largest domain cannot reach the containment
  /// threshold (max size < t* * q). Introduces no false negatives.
  bool prune_unreachable_partitions = true;
  /// Build a split-block Bloom filter over each partition's (tree, slot-0
  /// key) buckets — plus one engine-wide union — at Build()/Flush() time
  /// (filter/probe_filter.h). Queries whose slot-0 keys miss every tree of
  /// a partition skip that forest's probe; a query that misses the whole
  /// engine skips all of them. One-sided error: candidate sets are
  /// byte-identical with or without the filter. Costs one pass over the
  /// first-key arenas at build and ~filter_bits_per_key bits per (record,
  /// tree) of memory. Never serialized as an option: snapshots carry the
  /// filter blocks themselves (absent section = no pruning).
  bool build_probe_filter = true;
  /// Bits per (record, tree) bucket key in the probe filters, clamped to
  /// [1, 64]. 8 gives ~2% false positives (wasted probes, never wrong
  /// results); raise it to prune harder on very selective workloads.
  int filter_bits_per_key = 8;
  /// Build partition forests on the shared thread pool.
  bool parallel_build = true;
  /// Parallelize queries on the shared thread pool: BatchQuery() spreads
  /// queries over workers; a single-query call spreads its partitions.
  bool parallel_query = true;

  Status Validate() const;
};

/// \brief Per-query diagnostics (optional output of Query()/BatchQuery()).
struct QueryStats {
  /// The query cardinality actually used (exact or MinHash-estimated).
  size_t query_size_used = 0;
  size_t partitions_probed = 0;
  size_t partitions_pruned = 0;
  /// Probed partitions whose forest probe was answered "empty" by the
  /// probe filter without touching the key arenas. Filter-skipped
  /// partitions still count as probed (with tuned params recorded): the
  /// filter is a probe fast-path, not a pruning rule, so the accounting
  /// invariants above hold with or without filters.
  size_t partitions_filter_skipped = 0;
  /// Tuned (b, r) per probed partition, in partition order.
  std::vector<TunedParams> tuned;
  /// Slot-0 search accounting over this query's forest probes (see
  /// LshForest::ProbeScratch): trees whose slot-0 equal range was
  /// answered without a descent (run-index or memo hit), and descents
  /// whose window was galloped down from the per-tree last-range memo
  /// instead of starting at [0, n).
  uint64_t slot0_cache_hits = 0;
  uint64_t slot0_gallop_resumes = 0;
  /// Shard accounting, filled only by ShardedEnsemble's stats overload:
  /// shards whose candidates made this query's output vs shards skipped
  /// because the query deadline cut them off (partial-results mode).
  /// Engine-level paths leave both 0.
  size_t shards_gathered = 0;
  size_t shards_skipped = 0;
};

/// \brief One query of a BatchQuery() call. The referenced MinHash is
/// borrowed, not owned; it must outlive the call.
struct QuerySpec {
  const MinHash* query = nullptr;
  /// Exact |Q| if known; 0 means "use the MinHash cardinality estimate"
  /// (`approx(|Q|)` in Algorithm 1).
  size_t query_size = 0;
  /// Containment threshold t* in [0, 1].
  double t_star = 0.5;
  /// Absolute steady-clock deadline in nanoseconds (util/clock.h;
  /// 0 = none). Checked before probing and between partition probes:
  /// once it passes, the query — and the batch carrying it — fails with
  /// DeadlineExceeded instead of stalling (ShardedEnsemble's opt-in
  /// partial-results mode degrades to skipped shards instead).
  uint64_t deadline_ns = 0;
};

class LshEnsemble;

/// \brief Reusable query-path scratch: candidate dedup marks, tuned-params
/// vectors, probe flags and per-partition buffers, pooled in per-worker
/// shards so one context serves a whole BatchQuery() fan-out.
///
/// A context is bound to no particular ensemble — buffers grow to the
/// largest index seen and are reused verbatim afterwards, so steady-state
/// queries allocate nothing. One context must not be shared by concurrent
/// BatchQuery() calls; give each calling thread its own (the shard pool
/// only serves the internal across-query parallelism of a single call).
class QueryContext {
 public:
  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Approximate heap footprint of all pooled scratch, in bytes.
  size_t MemoryBytes() const;
  /// Number of internal shards created so far (one per concurrent worker
  /// observed; for tests/introspection).
  size_t num_shards() const { return shards_.size(); }

 private:
  friend class LshEnsemble;
  friend class DynamicLshEnsemble;  // candidate buffer for delta merging

  /// One worker's worth of scratch.
  struct Shard {
    LshForest::ProbeScratch probe;
    std::vector<TunedParams> tuned;
    std::vector<uint8_t> probed;
    /// Effective per-query cardinalities of the current chunk.
    std::vector<double> chunk_q;
    /// Pre-mixed probe-filter keys of the current chunk (one row of
    /// num_trees hashes per query; see ProbeFilter::HashKey), and the
    /// per-query engine-level admit flags derived from them. Staged once
    /// per chunk and reused across every partition.
    std::vector<uint64_t> filter_hashes;
    std::vector<uint8_t> filter_admit;
    // Memo of the last tuning pass: consecutive queries against the same
    // ensemble with the same effective (q, t*) reuse `tuned` wholesale,
    // skipping the tuner's shared cache entirely. Keyed on the ensemble's
    // process-unique instance id (a context outlives any one ensemble, and
    // addresses can be reused).
    uint64_t last_index_id = 0;
    double last_q = -1.0;
    double last_t_star = -1.0;
    bool tuned_valid = false;
  };

  Shard* AcquireShard();
  void ReleaseShard(Shard* shard);

  std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Shard*> free_;

  // Single-query partition-parallel path: per-partition candidate buffers
  // (their capacity is retained across calls).
  std::vector<std::vector<uint64_t>> partials_;
  // Per-query (or per-partition) statuses of the current batch.
  std::vector<Status> statuses_;
  // DynamicLshEnsemble::BatchQuery scratch: the batch's effective query
  // cardinalities (resolved once per batch, reused across every delta
  // record), the specs re-staged with those resolved cardinalities (so
  // the inner engine skips re-estimating them), and per-query staging
  // buffers for the indexed candidates when tombstone filtering is
  // active. Separate from partials_, which the inner call may use.
  std::vector<double> dynamic_q_;
  std::vector<QuerySpec> dynamic_specs_;
  std::vector<std::vector<uint64_t>> dynamic_outs_;
  // Flattened view of the delta buffer (sizes + a contiguous signature
  // arena in delta order) so the scan's hot loop walks dense arrays with
  // the kernel's batch compare instead of chasing the record hash map.
  // Cached across calls, keyed on the index's (instance id, mutation
  // epoch): consecutive batches and top-k descent rounds against an
  // unchanged index reuse it verbatim.
  std::vector<double> dynamic_delta_x_;
  std::vector<uint64_t> dynamic_delta_arena_;
  // Per-block maxima of dynamic_delta_x_ (the scan's tile grid): lets the
  // size-based admission bound skip a whole block's collision-count call.
  std::vector<double> dynamic_delta_block_max_;
  uint64_t dynamic_delta_index_id_ = 0;
  uint64_t dynamic_delta_epoch_ = 0;
  bool dynamic_delta_valid_ = false;
};

/// \brief The partition layout `options` selects for `sorted_sizes`
/// (ascending, non-empty): the pinned intervals with recomputed counts when
/// `options.pinned_partitions` is set, otherwise the configured strategy /
/// interpolation. Build() routes through this, and the sharded serving
/// layer calls it on the corpus-global size distribution to derive the
/// boundaries it pins every shard to.
Result<std::vector<PartitionSpec>> ComputePartitions(
    const std::vector<uint64_t>& sorted_sizes,
    const LshEnsembleOptions& options);

/// \brief Accumulates (id, size, signature) records and builds the
/// immutable index in one pass (single-pass construction, §2).
class LshEnsembleBuilder {
 public:
  /// \param family the hash family every added signature must come from.
  LshEnsembleBuilder(LshEnsembleOptions options,
                     std::shared_ptr<const HashFamily> family);

  /// \brief Register a domain. `size` is the domain's exact distinct-value
  /// count (known during sketching); `signature` its MinHash.
  /// Ids must be unique (enforced by Build()); sizes must be >= 1.
  Status Add(uint64_t id, size_t size, MinHash signature);

  size_t size() const { return records_.size(); }

  /// \brief Partition, build and index every partition's forest. Consumes
  /// the builder. Fails if no domain was added, a duplicate id was added,
  /// or options are invalid.
  Result<LshEnsemble> Build() &&;

 private:
  struct Record {
    uint64_t id;
    uint64_t size;
    MinHash signature;
  };

  LshEnsembleOptions options_;
  std::shared_ptr<const HashFamily> family_;
  std::vector<Record> records_;
};

/// \brief The immutable LSH Ensemble index. Thread-safe for concurrent
/// queries.
///
/// Candidate-uniqueness invariant: partitions hold disjoint id sets (ids
/// are unique — Build() enforces it — and every domain lands in exactly
/// one size partition), and each partition's forest dedups its own
/// collisions, so the per-query union of partition candidates never
/// repeats an id. Query()/BatchQuery() output relies on this rather than
/// re-deduplicating; debug builds verify it with an assertion.
class LshEnsemble {
 public:
  LshEnsemble(LshEnsemble&&) = default;
  LshEnsemble& operator=(LshEnsemble&&) = default;

  /// \brief Domain search with set containment (Algorithm 1, unioned over
  /// partitions). Appends the ids of all candidate domains to `out`
  /// (order: by partition, then forest order; ids are unique).
  ///
  /// A thin wrapper over BatchQuery() with a batch of one and a private
  /// context; prefer BatchQuery() when issuing many queries.
  ///
  /// \param query      MinHash of the query domain (same family).
  /// \param query_size exact |Q| if known; pass 0 to use the MinHash
  ///                   cardinality estimate (`approx(|Q|)` in Alg. 1).
  /// \param t_star     containment threshold in [0, 1].
  /// \param stats      optional per-query diagnostics.
  Status Query(const MinHash& query, size_t query_size, double t_star,
               std::vector<uint64_t>* out, QueryStats* stats = nullptr) const;

  /// \brief Answer `specs.size()` queries in one call. Query i's candidates
  /// are written to `outs[i]` (cleared first; order as in Query()); when
  /// `stats` is non-null, query i's diagnostics go to `stats[i]`.
  ///
  /// `outs` (and `stats` if given) must point to arrays of at least
  /// specs.size() elements. With options().parallel_query the batch is
  /// spread across the shared ThreadPool in chunks; a batch of one falls
  /// back to parallelizing across partitions. All scratch comes from `ctx`,
  /// so a warm context makes the whole call allocation-free apart from
  /// output growth.
  ///
  /// On error the first failing query's status is returned and the
  /// contents of `outs`/`stats` are unspecified.
  Status BatchQuery(std::span<const QuerySpec> specs, QueryContext* ctx,
                    std::vector<uint64_t>* outs,
                    QueryStats* stats = nullptr) const;

  /// The non-empty partitions, ascending by size interval.
  const std::vector<PartitionSpec>& partitions() const { return specs_; }
  /// Total number of indexed domains.
  size_t size() const { return total_; }
  const LshEnsembleOptions& options() const { return options_; }
  const std::shared_ptr<const HashFamily>& family() const { return family_; }

  /// Tuned (b, r) the ensemble would use for partition `index` given query
  /// size `q` and threshold `t_star` (exposed for tests and benches).
  Result<TunedParams> TuneForPartition(size_t index, double q,
                                       double t_star) const;

  /// The engine-wide probe filter (union of every partition's buckets),
  /// or nullptr when the index carries no filters (built with
  /// build_probe_filter=false, or loaded from a pre-filter image).
  const ProbeFilter* engine_probe_filter() const {
    return engine_filter_.empty() ? nullptr : &engine_filter_;
  }
  /// Per-partition probe filters, parallel to partitions(); empty when
  /// the index carries no filters.
  std::span<const ProbeFilter> partition_probe_filters() const {
    return {filters_.data(), filters_.size()};
  }

  /// Approximate heap footprint of all partition forests, in bytes.
  size_t MemoryBytes() const;

  /// \brief Build (or rebuild) the probe-filter tier from the indexed
  /// forests' bucket keys. A no-op when options().build_probe_filter is
  /// off. Used by loaders of filterless images (v1 decode) so converted
  /// snapshots carry filters; builders construct the same tier inline.
  void RebuildProbeFilters();

 private:
  friend class LshEnsembleBuilder;
  friend class EnsembleSerializer;  // io/ensemble_io.cc (v1 save/load)
  friend class SnapshotIO;          // io/snapshot.cc (v2 zero-copy open)
  LshEnsemble(LshEnsembleOptions options,
              std::shared_ptr<const HashFamily> family);

  /// Validates one spec against this index. Returns the effective query
  /// cardinality through `q`.
  Status ValidateSpec(const QuerySpec& spec, size_t* q) const;

  /// Answers one query sequentially over all partitions using `shard`'s
  /// scratch, appending candidates to `out` (cleared first).
  Status QueryOne(const QuerySpec& spec, QueryContext::Shard* shard,
                  std::vector<uint64_t>* out, QueryStats* stats) const;

  /// Answers a contiguous run of queries partition-major (outer loop over
  /// partitions, inner over queries) so each partition's key arenas stay
  /// cache-hot across the whole run. Output identical to per-query
  /// QueryOne() calls.
  Status QueryChunk(std::span<const QuerySpec> specs,
                    QueryContext::Shard* shard, std::vector<uint64_t>* outs,
                    QueryStats* stats) const;

  /// The seed engine's shape: one query, partitions probed in parallel
  /// into per-partition buffers, then concatenated.
  Status QueryOnePartitionParallel(const QuerySpec& spec, QueryContext* ctx,
                                   std::vector<uint64_t>* out,
                                   QueryStats* stats) const;

  LshEnsembleOptions options_;
  std::shared_ptr<const HashFamily> family_;
  std::vector<PartitionSpec> specs_;  // non-empty partitions only
  std::vector<LshForest> forests_;    // parallel to specs_
  /// Probe filters: one per forest plus the engine-wide union, or empty /
  /// default when the index was built without them. filters_ is either
  /// empty or parallel to forests_.
  std::vector<ProbeFilter> filters_;
  ProbeFilter engine_filter_;
  std::unique_ptr<Tuner> tuner_;
  size_t total_ = 0;
  /// Process-unique identity (copied by moves; a moved-from ensemble is
  /// left with no partitions, so its aliased id is inert). Keys the
  /// QueryContext tuning memo across ensemble lifetimes.
  uint64_t instance_id_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CORE_LSH_ENSEMBLE_H_
