#include "core/topk.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/dynamic_ensemble.h"
#include "core/sharded_ensemble.h"
#include "core/threshold.h"

namespace lshensemble {

Status SketchStore::Add(uint64_t id, size_t size, MinHash signature) {
  if (size < 1) {
    return Status::InvalidArgument("domain size must be >= 1");
  }
  if (!signature.valid()) {
    return Status::InvalidArgument("signature must be valid");
  }
  const auto [it, inserted] =
      entries_.emplace(id, Entry{size, std::move(signature)});
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("duplicate id in SketchStore");
  }
  return Status::OK();
}

size_t SketchStore::SizeOf(uint64_t id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? 0 : it->second.size;
}

const MinHash* SketchStore::SignatureOf(uint64_t id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.signature;
}

const MinHash* SketchStore::FindRecord(uint64_t id, size_t* size) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  *size = it->second.size;
  return &it->second.signature;
}

SignatureView SketchStore::FindSignature(uint64_t id, size_t* size) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return {};
  *size = it->second.size;
  return it->second.signature.view();
}

Status TopKSearcher::Options::Validate() const {
  if (initial_threshold <= 0.0 || initial_threshold > 1.0) {
    return Status::InvalidArgument("initial_threshold must be in (0, 1]");
  }
  if (decay <= 0.0 || decay >= 1.0) {
    return Status::InvalidArgument("decay must be in (0, 1)");
  }
  if (min_threshold <= 0.0 || min_threshold > initial_threshold) {
    return Status::InvalidArgument(
        "min_threshold must be in (0, initial_threshold]");
  }
  return Status::OK();
}

TopKSearcher::TopKSearcher(const LshEnsemble* ensemble,
                           const SketchStore* store)
    : TopKSearcher(ensemble, store, Options()) {}

TopKSearcher::TopKSearcher(const LshEnsemble* ensemble,
                           const SketchStore* store, Options options)
    : ensemble_(ensemble), store_(store), options_(options) {}

TopKSearcher::TopKSearcher(const DynamicLshEnsemble* index)
    : TopKSearcher(index, Options()) {}

TopKSearcher::TopKSearcher(const DynamicLshEnsemble* index, Options options)
    : dynamic_(index), options_(options) {}

TopKSearcher::TopKSearcher(const ShardedEnsemble* index)
    : TopKSearcher(index, Options()) {}

TopKSearcher::TopKSearcher(const ShardedEnsemble* index, Options options)
    : sharded_(index), options_(options) {}

Status TopKSearcher::EngineBatchQuery(std::span<const QuerySpec> specs,
                                      QueryContext* ctx,
                                      std::vector<uint64_t>* outs) const {
  if (sharded_ != nullptr) {
    // Unsorted gather: the ranking below dedups by id and orders by
    // (estimate, id), so the public contract's canonical sort would be
    // paid once per descent round for nothing.
    return sharded_->BatchQueryImpl(specs, outs, /*sort_outputs=*/false);
  }
  if (dynamic_ != nullptr) return dynamic_->BatchQuery(specs, ctx, outs);
  return ensemble_->BatchQuery(specs, ctx, outs);
}

Result<bool> TopKSearcher::RankLookup(const MinHash& query, uint64_t id,
                                      size_t* size, double* jaccard) const {
  if (sharded_ != nullptr) {
    return sharded_->ScoreRecord(query, id, size, jaccard);
  }
  const SignatureView signature = dynamic_ != nullptr
                                      ? dynamic_->FindSignature(id, size)
                                      : store_->FindSignature(id, size);
  if (!signature) return false;
  LSHE_ASSIGN_OR_RETURN(*jaccard, query.EstimateJaccard(signature));
  return true;
}

Result<std::vector<TopKResult>> TopKSearcher::Search(const MinHash& query,
                                                     size_t query_size,
                                                     size_t k) const {
  const TopKQuery one{&query, query_size};
  std::vector<TopKResult> out;
  QueryContext ctx;
  LSHE_RETURN_IF_ERROR(
      BatchSearch(std::span<const TopKQuery>(&one, 1), k, &ctx, &out));
  return out;
}

namespace {

/// Ranking order: descending estimate, ties by ascending id.
inline bool BetterResult(const TopKResult& a, const TopKResult& b) {
  if (a.estimated_containment != b.estimated_containment) {
    return a.estimated_containment > b.estimated_containment;
  }
  return a.id < b.id;
}

}  // namespace

Status TopKSearcher::BatchSearch(std::span<const TopKQuery> queries, size_t k,
                                 QueryContext* ctx,
                                 std::vector<TopKResult>* outs) const {
  const bool store_bound = ensemble_ != nullptr && store_ != nullptr;
  if (!store_bound && dynamic_ == nullptr && sharded_ == nullptr) {
    return Status::FailedPrecondition("searcher not bound to an index");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  LSHE_RETURN_IF_ERROR(options_.Validate());
  const size_t count = queries.size();
  if (count == 0) return Status::OK();
  // A sharded binding pins scratch per shard, so it never touches `ctx`.
  if ((ctx == nullptr && sharded_ == nullptr) || outs == nullptr) {
    return Status::InvalidArgument("ctx and outs must not be null");
  }

  // Per-query descent state. All queries follow the same threshold
  // schedule (it depends only on the options), which is what makes the
  // lockstep rounds below produce exactly the per-query Search() answers.
  struct State {
    size_t q = 0;
    double qd = 0.0;
    bool active = true;
    std::unordered_set<uint64_t> seen;
    std::vector<TopKResult> scored;
  };
  std::vector<State> states(count);
  for (size_t i = 0; i < count; ++i) {
    if (queries[i].query == nullptr || !queries[i].query->valid()) {
      return Status::InvalidArgument("query must be a valid MinHash");
    }
    size_t q = queries[i].query_size;
    if (q == 0) {
      q = static_cast<size_t>(std::max<int64_t>(
          1, std::llround(queries[i].query->EstimateCardinality())));
    }
    states[i].q = q;
    states[i].qd = static_cast<double>(q);
  }

  std::vector<QuerySpec> specs;
  std::vector<size_t> active_index;  // specs[j] is query active_index[j]
  specs.reserve(count);
  active_index.reserve(count);
  std::vector<std::vector<uint64_t>> candidates(count);

  double threshold = options_.initial_threshold;
  while (true) {
    specs.clear();
    active_index.clear();
    for (size_t i = 0; i < count; ++i) {
      if (!states[i].active) continue;
      specs.push_back(QuerySpec{queries[i].query, states[i].q, threshold,
                                queries[i].deadline_ns});
      active_index.push_back(i);
    }
    if (specs.empty()) break;
    // One batched probe serves every still-active descent this round.
    LSHE_RETURN_IF_ERROR(EngineBatchQuery(specs, ctx, candidates.data()));

    const bool at_floor = threshold <= options_.min_threshold;
    for (size_t j = 0; j < active_index.size(); ++j) {
      State& state = states[active_index[j]];
      const MinHash& query = *queries[active_index[j]].query;
      for (uint64_t id : candidates[j]) {
        if (!state.seen.insert(id).second) continue;
        size_t x_size = 0;
        double jaccard = 0.0;
        Result<bool> ranked = RankLookup(query, id, &x_size, &jaccard);
        if (!ranked.ok()) return ranked.status();
        if (!*ranked) continue;  // not side-car'd; unrankable
        const auto x = static_cast<double>(x_size);
        // Eq. 6 with the candidate's exact size; containment can never
        // exceed x/q (|Q ∩ X| <= |X|).
        const double estimate =
            std::min(JaccardToContainment(jaccard, x, state.qd),
                     std::min(1.0, x / state.qd));
        state.scored.push_back({id, estimate});
      }

      // Keep the best k so far to decide whether descending further can
      // still change this query's answer.
      const size_t kth = std::min(k, state.scored.size());
      std::partial_sort(state.scored.begin(),
                        state.scored.begin() + static_cast<ptrdiff_t>(kth),
                        state.scored.end(), BetterResult);
      const bool full = state.scored.size() >= k;
      const double kth_estimate =
          full ? state.scored[k - 1].estimated_containment : 0.0;
      // Every domain not yet retrieved has containment below `threshold`
      // (up to LSH recall error); once the k-th best estimate reaches it,
      // deeper descent cannot improve the answer. At the descent floor
      // every query returns its best effort.
      if ((full && kth_estimate >= threshold) || at_floor) {
        state.active = false;
      }
    }
    if (at_floor) break;
    threshold = std::max(threshold * options_.decay, options_.min_threshold);
  }

  for (size_t i = 0; i < count; ++i) {
    if (states[i].scored.size() > k) states[i].scored.resize(k);
    outs[i] = std::move(states[i].scored);
  }
  return Status::OK();
}

}  // namespace lshensemble
