#include "core/topk.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/threshold.h"

namespace lshensemble {

Status SketchStore::Add(uint64_t id, size_t size, MinHash signature) {
  if (size < 1) {
    return Status::InvalidArgument("domain size must be >= 1");
  }
  if (!signature.valid()) {
    return Status::InvalidArgument("signature must be valid");
  }
  const auto [it, inserted] =
      entries_.emplace(id, Entry{size, std::move(signature)});
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("duplicate id in SketchStore");
  }
  return Status::OK();
}

size_t SketchStore::SizeOf(uint64_t id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? 0 : it->second.size;
}

const MinHash* SketchStore::SignatureOf(uint64_t id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.signature;
}

Status TopKSearcher::Options::Validate() const {
  if (initial_threshold <= 0.0 || initial_threshold > 1.0) {
    return Status::InvalidArgument("initial_threshold must be in (0, 1]");
  }
  if (decay <= 0.0 || decay >= 1.0) {
    return Status::InvalidArgument("decay must be in (0, 1)");
  }
  if (min_threshold <= 0.0 || min_threshold > initial_threshold) {
    return Status::InvalidArgument(
        "min_threshold must be in (0, initial_threshold]");
  }
  return Status::OK();
}

TopKSearcher::TopKSearcher(const LshEnsemble* ensemble,
                           const SketchStore* store)
    : TopKSearcher(ensemble, store, Options()) {}

TopKSearcher::TopKSearcher(const LshEnsemble* ensemble,
                           const SketchStore* store, Options options)
    : ensemble_(ensemble), store_(store), options_(options) {}

Result<std::vector<TopKResult>> TopKSearcher::Search(const MinHash& query,
                                                     size_t query_size,
                                                     size_t k) const {
  if (ensemble_ == nullptr || store_ == nullptr) {
    return Status::FailedPrecondition("searcher not bound to an index");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  LSHE_RETURN_IF_ERROR(options_.Validate());

  size_t q = query_size;
  if (q == 0) {
    q = static_cast<size_t>(
        std::max<int64_t>(1, std::llround(query.EstimateCardinality())));
  }
  const auto qd = static_cast<double>(q);

  std::unordered_set<uint64_t> seen;
  std::vector<TopKResult> scored;
  std::vector<uint64_t> candidates;

  double threshold = options_.initial_threshold;
  while (true) {
    candidates.clear();
    LSHE_RETURN_IF_ERROR(ensemble_->Query(query, q, threshold, &candidates));
    for (uint64_t id : candidates) {
      if (!seen.insert(id).second) continue;
      const MinHash* signature = store_->SignatureOf(id);
      if (signature == nullptr) continue;  // not side-car'd; unrankable
      const auto x = static_cast<double>(store_->SizeOf(id));
      Result<double> jaccard = query.EstimateJaccard(*signature);
      if (!jaccard.ok()) return jaccard.status();
      // Eq. 6 with the candidate's exact size; containment can never
      // exceed x/q (|Q ∩ X| <= |X|).
      const double estimate = std::min(
          JaccardToContainment(*jaccard, x, qd), std::min(1.0, x / qd));
      scored.push_back({id, estimate});
    }

    // Keep the best k so far to decide whether descending further can
    // still change the answer.
    const size_t kth = std::min(k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<ptrdiff_t>(kth),
                      scored.end(), [](const TopKResult& a,
                                       const TopKResult& b) {
                        if (a.estimated_containment != b.estimated_containment)
                          return a.estimated_containment >
                                 b.estimated_containment;
                        return a.id < b.id;
                      });
    const bool full = scored.size() >= k;
    const double kth_estimate =
        full ? scored[k - 1].estimated_containment : 0.0;
    // Every domain not yet retrieved has containment below `threshold`
    // (up to LSH recall error); once the k-th best estimate reaches it,
    // deeper descent cannot improve the answer.
    if (full && kth_estimate >= threshold) break;
    if (threshold <= options_.min_threshold) break;
    threshold = std::max(threshold * options_.decay, options_.min_threshold);
  }

  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace lshensemble
