// Per-query (b, r) tuning for the dynamic LSH in each partition
// (paper Section 5.5).
//
// The probability that a domain X with |X| = x becomes a candidate, as a
// function of its containment t = t(Q, X) (Eq. 22):
//
//     P(t | x, q, b, r) = 1 - (1 - s(t)^r)^b,   s(t) = t / (x/q + 1 - t)
//
// Integrating P below the containment threshold gives the false-positive
// probability mass, and 1 - P above it the false-negative mass
// (Eqs. 23/24). The tuner minimizes FP + FN over the (b, r) grid the
// LshForest can serve, using the partition's upper size bound for x
// (Eq. 26).

#ifndef LSHENSEMBLE_CORE_TUNING_H_
#define LSHENSEMBLE_CORE_TUNING_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief P(t | x, q, b, r), Eq. 22. Containment values above x/q are
/// unreachable and clamp to s = 1.
double CandidateProbability(double t, double x, double q, int b, int r);

/// \brief False-positive probability mass (Eq. 23): integral of P over
/// containments in [0, min(t_star, x/q)).
double FalsePositiveArea(double x, double q, double t_star, int b, int r,
                         int integration_steps = 256);

/// \brief False-negative probability mass (Eq. 24): integral of (1 - P)
/// over containments in [t_star, min(1, x/q)]; zero when x/q < t_star.
double FalseNegativeArea(double x, double q, double t_star, int b, int r,
                         int integration_steps = 256);

/// \brief A tuned parameter pair with its predicted error masses.
struct TunedParams {
  int b = 1;
  int r = 1;
  double fp = 0.0;  ///< predicted false-positive mass at (b, r)
  double fn = 0.0;  ///< predicted false-negative mass at (b, r)

  double objective() const { return fp + fn; }
};

/// \brief Finds argmin_{b <= max_b, r <= max_r} (FP + FN)(x, q, t*, b, r).
///
/// The full grid is evaluated with a shared integration lattice and
/// incremental powers, so one call costs O(max_b * max_r * nodes) fused
/// multiply-adds rather than O(...) pow() calls. Results are cached keyed
/// on the quantized (x/q, t*) pair; the cache is thread-safe. This realizes
/// the paper's "the computation of (b, r) can be handled offline" as a
/// lazily warmed memo table.
class Tuner {
 public:
  struct Options {
    int max_b = 32;             ///< number of trees in the forest
    int max_r = 8;              ///< depth of each tree
    int integration_nodes = 256;  ///< lattice size per integral segment
    bool enable_cache = true;

    Status Validate() const;
  };

  /// Returned by pointer because the internal cache makes Tuner immovable.
  static Result<std::unique_ptr<Tuner>> Create(const Options& options);

  const Options& options() const { return options_; }

  /// \brief Optimal (b, r) for a partition whose largest domain size is `x`,
  /// a query of size `q`, and containment threshold `t_star`.
  /// Preconditions: x > 0, q > 0, 0 <= t_star <= 1.
  TunedParams Tune(double x, double q, double t_star) const;

  /// Number of entries currently memoized (for tests/introspection).
  size_t CacheSize() const;

 private:
  explicit Tuner(const Options& options) : options_(options) {}

  TunedParams Optimize(double x_over_q, double t_star) const;
  static uint64_t CacheKey(double x_over_q, double t_star);

  Options options_;
  mutable std::shared_mutex mutex_;
  mutable std::unordered_map<uint64_t, TunedParams> cache_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CORE_TUNING_H_
