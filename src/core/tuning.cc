#include "core/tuning.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <mutex>
#include <vector>

#include "core/threshold.h"
#include "util/math.h"

namespace lshensemble {

double CandidateProbability(double t, double x, double q, int b, int r) {
  assert(x > 0 && q > 0 && b >= 1 && r >= 1);
  // Containment cannot exceed the size ratio x/q (Section 5.5).
  const double t_eff = std::min(t, x / q);
  const double s = ContainmentToJaccard(t_eff, x, q);
  if (s <= 0.0) return 0.0;
  if (s >= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - std::pow(s, r), b);
}

double FalsePositiveArea(double x, double q, double t_star, int b, int r,
                         int integration_steps) {
  const double hi = std::min(t_star, x / q);
  if (hi <= 0.0) return 0.0;
  return Integrate(
      [&](double t) { return CandidateProbability(t, x, q, b, r); }, 0.0, hi,
      integration_steps);
}

double FalseNegativeArea(double x, double q, double t_star, int b, int r,
                         int integration_steps) {
  const double hi = std::min(1.0, x / q);
  if (hi <= t_star) return 0.0;
  return Integrate(
      [&](double t) { return 1.0 - CandidateProbability(t, x, q, b, r); },
      t_star, hi, integration_steps);
}

Status Tuner::Options::Validate() const {
  if (max_b < 1 || max_r < 1) {
    return Status::InvalidArgument("tuner grid must have max_b, max_r >= 1");
  }
  if (integration_nodes < 8) {
    return Status::InvalidArgument("integration_nodes must be >= 8");
  }
  return Status::OK();
}

Result<std::unique_ptr<Tuner>> Tuner::Create(const Options& options) {
  LSHE_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<Tuner>(new Tuner(options));
}

uint64_t Tuner::CacheKey(double x_over_q, double t_star) {
  // Quantize the ratio on a log lattice (1/4096 of a doubling) and the
  // threshold to 1e-4. Neighbouring queries share tuned parameters; the
  // objective is flat at that granularity.
  const auto ratio_q =
      static_cast<int64_t>(std::llround(std::log2(x_over_q) * 4096.0));
  const auto t_q = static_cast<int64_t>(std::llround(t_star * 10000.0));
  return (static_cast<uint64_t>(ratio_q) << 20) ^ static_cast<uint64_t>(t_q);
}

TunedParams Tuner::Tune(double x, double q, double t_star) const {
  assert(x > 0 && q > 0);
  assert(t_star >= 0.0 && t_star <= 1.0);
  const double ratio = x / q;
  if (!options_.enable_cache) return Optimize(ratio, t_star);

  const uint64_t key = CacheKey(ratio, t_star);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  TunedParams params = Optimize(ratio, t_star);
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    cache_.emplace(key, params);
  }
  return params;
}

size_t Tuner::CacheSize() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return cache_.size();
}

TunedParams Tuner::Optimize(double x_over_q, double t_star) const {
  // Containment support is [0, t_hi] with t_hi = min(1, x/q); split it at
  // a = min(t*, t_hi) into the FP segment [0, a] and FN segment [a, t_hi].
  const double t_hi = std::min(1.0, x_over_q);
  const double a = std::min(t_star, t_hi);
  const int nodes = options_.integration_nodes;

  // Trapezoid lattices for both segments, including both endpoints.
  struct Lattice {
    std::vector<double> s;       // Jaccard at each node
    std::vector<double> weight;  // trapezoid weights (sums to segment width)
  };
  auto make_lattice = [&](double lo, double hi) {
    Lattice lattice;
    if (hi <= lo) return lattice;
    const int n = nodes;
    const double h = (hi - lo) / n;
    lattice.s.resize(n + 1);
    lattice.weight.assign(n + 1, h);
    lattice.weight.front() = lattice.weight.back() = h / 2.0;
    for (int j = 0; j <= n; ++j) {
      const double t = lo + h * j;
      const double denom = x_over_q + 1.0 - t;
      lattice.s[j] = std::clamp(denom <= 0.0 ? 1.0 : t / denom, 0.0, 1.0);
    }
    return lattice;
  };
  Lattice fp_lattice = make_lattice(0.0, a);
  Lattice fn_lattice = make_lattice(a, t_hi);

  const size_t n_fp = fp_lattice.s.size();
  const size_t n_fn = fn_lattice.s.size();

  // sr[j] accumulates s_j^r across the r loop; qb[j] accumulates
  // (1 - s_j^r)^b across the b loop. All powers are incremental products.
  std::vector<double> fp_sr(n_fp, 1.0), fn_sr(n_fn, 1.0);
  std::vector<double> fp_base(n_fp), fn_base(n_fn);
  std::vector<double> fp_qb(n_fp), fn_qb(n_fn);

  TunedParams best;
  double best_objective = std::numeric_limits<double>::infinity();
  for (int r = 1; r <= options_.max_r; ++r) {
    for (size_t j = 0; j < n_fp; ++j) {
      fp_sr[j] *= fp_lattice.s[j];
      fp_base[j] = 1.0 - fp_sr[j];
      fp_qb[j] = 1.0;
    }
    for (size_t j = 0; j < n_fn; ++j) {
      fn_sr[j] *= fn_lattice.s[j];
      fn_base[j] = 1.0 - fn_sr[j];
      fn_qb[j] = 1.0;
    }
    for (int b = 1; b <= options_.max_b; ++b) {
      double fp = 0.0;
      for (size_t j = 0; j < n_fp; ++j) {
        fp_qb[j] *= fp_base[j];
        fp += (1.0 - fp_qb[j]) * fp_lattice.weight[j];
      }
      double fn = 0.0;
      for (size_t j = 0; j < n_fn; ++j) {
        fn_qb[j] *= fn_base[j];
        fn += fn_qb[j] * fn_lattice.weight[j];
      }
      const double objective = fp + fn;
      if (objective < best_objective - 1e-15) {
        best_objective = objective;
        best = TunedParams{b, r, fp, fn};
      }
    }
  }
  return best;
}

}  // namespace lshensemble
