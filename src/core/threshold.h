// Containment <-> Jaccard conversions (paper Section 5.1).
//
// For |X| = x and |Q| = q, inclusion-exclusion gives (Eq. 6):
//     s = t / (x/q + 1 - t)          t = (x/q + 1) * s / (1 + s)
// The ensemble converts a containment threshold t* into a per-partition
// Jaccard threshold with the partition's *upper* size bound u (Eq. 7),
// which guarantees the conversion introduces no new false negatives.

#ifndef LSHENSEMBLE_CORE_THRESHOLD_H_
#define LSHENSEMBLE_CORE_THRESHOLD_H_

#include <algorithm>

namespace lshensemble {

/// \brief s-hat_{x,q}(t): Jaccard similarity implied by containment `t` for
/// domain size `x` and query size `q` (Eq. 6, left).
/// Preconditions: x > 0, q > 0, 0 <= t <= 1.
double ContainmentToJaccard(double t, double x, double q);

/// \brief t-hat_{x,q}(s): containment implied by Jaccard `s` (Eq. 6, right).
/// Preconditions: x > 0, q > 0, s >= 0.
double JaccardToContainment(double s, double x, double q);

/// \brief The hoisted form of ContainmentToJaccard for batch scans that
/// precompute x/q: bit-identical to ContainmentToJaccard(t, x, q) by
/// construction (same expression, same association, same guard and
/// clamp) — ContainmentToJaccard delegates here, so there is exactly one
/// copy of the Eq. 6 conversion.
inline double ContainmentToJaccardHoisted(double t, double x_over_q) {
  const double denominator = x_over_q + 1.0 - t;
  if (denominator <= 0.0) return 1.0;  // only reachable when t = 1 and x = 0
  return std::clamp(t / denominator, 0.0, 1.0);
}

/// \brief The conservative per-partition Jaccard threshold s* = s-hat_{u,q}(t*)
/// (Eq. 7), using the partition upper bound u so no new false negatives are
/// introduced (s* <= s-hat_{x,q}(t*) for all x <= u).
double PartitionJaccardThreshold(double t_star, double upper_bound, double q);

/// \brief Effective containment threshold t_x = (x + q) t* / (u + q) that a
/// domain of size x is actually filtered by when the partition threshold was
/// derived from upper bound u (Proposition 1).
double EffectiveContainmentThreshold(double t_star, double x, double q,
                                     double u);

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CORE_THRESHOLD_H_
