#include "core/partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/math.h"

namespace lshensemble {

namespace {

Status ValidateInput(const std::vector<uint64_t>& sorted_sizes,
                     int num_partitions) {
  if (sorted_sizes.empty()) {
    return Status::InvalidArgument("no domain sizes to partition");
  }
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  if (sorted_sizes.front() < 1) {
    return Status::InvalidArgument("domain sizes must be >= 1");
  }
  if (!std::is_sorted(sorted_sizes.begin(), sorted_sizes.end())) {
    return Status::InvalidArgument("sizes must be sorted ascending");
  }
  return Status::OK();
}

// Number of sizes in [lo, hi).
size_t CountInRange(const std::vector<uint64_t>& sorted_sizes, uint64_t lo,
                    uint64_t hi) {
  auto begin = std::lower_bound(sorted_sizes.begin(), sorted_sizes.end(), lo);
  auto end = std::lower_bound(sorted_sizes.begin(), sorted_sizes.end(), hi);
  return static_cast<size_t>(end - begin);
}

// (distinct size, count) groups of a sorted size list.
struct SizeGroup {
  uint64_t size;
  size_t count;
};

std::vector<SizeGroup> GroupSizes(const std::vector<uint64_t>& sorted_sizes) {
  std::vector<SizeGroup> groups;
  for (uint64_t size : sorted_sizes) {
    if (!groups.empty() && groups.back().size == size) {
      ++groups.back().count;
    } else {
      groups.push_back({size, 1});
    }
  }
  return groups;
}

// Exclusive upper bound of a partition whose last group is groups[j]:
// partitions tile the size range contiguously, so the upper bound is the
// next group's size (the following partition's lower bound), or
// last size + 1 when groups[j] is the final group.
uint64_t ContiguousUpper(const std::vector<SizeGroup>& groups, size_t j) {
  return j + 1 < groups.size() ? groups[j + 1].size : groups[j].size + 1;
}

// Eq. 16 cost of the contiguous partition covering groups[i..j].
double GroupRangeBound(const std::vector<SizeGroup>& groups, size_t i,
                       size_t j, size_t count) {
  return FalsePositiveBound({groups[i].size, ContiguousUpper(groups, j),
                             count});
}

// Greedy sweep: partitions needed so every partition's M_i <= budget.
// Extending a partition rightward only raises its bound (count, width and
// largest size all grow), so maximal extension minimizes the partition
// count for a given budget. Returns the partitioning through `out` when
// non-null.
size_t GreedyPartitionCount(const std::vector<SizeGroup>& groups,
                            double budget,
                            std::vector<PartitionSpec>* out) {
  size_t used = 0;
  size_t i = 0;
  while (i < groups.size()) {
    size_t count = groups[i].count;
    size_t j = i;
    while (j + 1 < groups.size() &&
           GroupRangeBound(groups, i, j + 1, count + groups[j + 1].count) <=
               budget) {
      ++j;
      count += groups[j].count;
    }
    if (out != nullptr) {
      out->push_back({groups[i].size, ContiguousUpper(groups, j), count});
    }
    ++used;
    i = j + 1;
  }
  return used;
}

}  // namespace

const char* ToString(PartitioningStrategy strategy) {
  switch (strategy) {
    case PartitioningStrategy::kEquiDepth:
      return "equi-depth";
    case PartitioningStrategy::kEquiWidth:
      return "equi-width";
    case PartitioningStrategy::kMinimaxCost:
      return "minimax-cost";
  }
  return "unknown";
}

Result<std::vector<PartitionSpec>> PartitionsFromCuts(
    const std::vector<uint64_t>& sorted_sizes,
    const std::vector<uint64_t>& cuts) {
  LSHE_RETURN_IF_ERROR(ValidateInput(sorted_sizes, 1));
  if (cuts.size() < 2) {
    return Status::InvalidArgument("need at least two cut points");
  }
  if (!std::is_sorted(cuts.begin(), cuts.end()) ||
      std::adjacent_find(cuts.begin(), cuts.end()) != cuts.end()) {
    return Status::InvalidArgument("cuts must be strictly increasing");
  }
  if (cuts.front() > sorted_sizes.front() ||
      cuts.back() <= sorted_sizes.back()) {
    return Status::InvalidArgument("cuts must cover all domain sizes");
  }
  std::vector<PartitionSpec> partitions;
  partitions.reserve(cuts.size() - 1);
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    partitions.push_back({cuts[i], cuts[i + 1],
                          CountInRange(sorted_sizes, cuts[i], cuts[i + 1])});
  }
  return partitions;
}

Result<std::vector<PartitionSpec>> EquiDepthPartitions(
    const std::vector<uint64_t>& sorted_sizes, int num_partitions) {
  LSHE_RETURN_IF_ERROR(ValidateInput(sorted_sizes, num_partitions));
  const size_t n = sorted_sizes.size();
  std::vector<uint64_t> cuts;
  cuts.push_back(sorted_sizes.front());
  for (int i = 1; i < num_partitions; ++i) {
    // Nominal equal-count cut; snapped forward to the next distinct size so
    // intervals stay disjoint under ties. Never below 1: index 0 is already
    // covered by the leading cut (and the tie-snap reads idx - 1).
    size_t idx = std::max<size_t>(
        1, n * static_cast<size_t>(i) / static_cast<size_t>(num_partitions));
    while (idx < n && sorted_sizes[idx] == sorted_sizes[idx - 1]) ++idx;
    if (idx >= n) break;
    if (sorted_sizes[idx] > cuts.back()) cuts.push_back(sorted_sizes[idx]);
  }
  cuts.push_back(sorted_sizes.back() + 1);
  return PartitionsFromCuts(sorted_sizes, cuts);
}

Result<std::vector<PartitionSpec>> EquiWidthPartitions(
    const std::vector<uint64_t>& sorted_sizes, int num_partitions) {
  LSHE_RETURN_IF_ERROR(ValidateInput(sorted_sizes, num_partitions));
  const double lo = static_cast<double>(sorted_sizes.front());
  const double hi = static_cast<double>(sorted_sizes.back()) + 1.0;
  std::vector<uint64_t> cuts;
  cuts.push_back(sorted_sizes.front());
  for (int i = 1; i < num_partitions; ++i) {
    const auto cut = static_cast<uint64_t>(
        std::llround(lo + (hi - lo) * i / num_partitions));
    if (cut > cuts.back()) cuts.push_back(cut);
  }
  cuts.push_back(sorted_sizes.back() + 1);
  return PartitionsFromCuts(sorted_sizes, cuts);
}

Result<std::vector<PartitionSpec>> MinimaxCostPartitions(
    const std::vector<uint64_t>& sorted_sizes, int num_partitions) {
  LSHE_RETURN_IF_ERROR(ValidateInput(sorted_sizes, num_partitions));
  const std::vector<SizeGroup> groups = GroupSizes(sorted_sizes);

  // Lower bound: a group can never be split, so the budget must admit every
  // single-group partition. Upper bound: everything in one partition.
  double lo = 0.0;
  for (size_t k = 0; k < groups.size(); ++k) {
    lo = std::max(lo, GroupRangeBound(groups, k, k, groups[k].count));
  }
  double hi =
      GroupRangeBound(groups, 0, groups.size() - 1, sorted_sizes.size());
  hi = std::max(hi, lo);

  // Feasibility (#partitions needed <= num_partitions) is monotone in the
  // budget; binary search to relative precision.
  for (int iter = 0; iter < 100 && (hi - lo) > 1e-9 * std::max(1.0, hi);
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (GreedyPartitionCount(groups, mid, nullptr) <=
        static_cast<size_t>(num_partitions)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  std::vector<PartitionSpec> partitions;
  GreedyPartitionCount(groups, hi, &partitions);
  return partitions;
}

Result<std::vector<PartitionSpec>> InterpolatedPartitions(
    const std::vector<uint64_t>& sorted_sizes, int num_partitions,
    double lambda) {
  LSHE_RETURN_IF_ERROR(ValidateInput(sorted_sizes, num_partitions));
  if (lambda < 0.0 || lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0, 1]");
  }
  const size_t n = sorted_sizes.size();
  const double lo = static_cast<double>(sorted_sizes.front());
  const double hi = static_cast<double>(sorted_sizes.back()) + 1.0;

  std::vector<uint64_t> cuts;
  cuts.push_back(sorted_sizes.front());
  for (int i = 1; i < num_partitions; ++i) {
    const double equi_depth_cut = static_cast<double>(
        sorted_sizes[n * static_cast<size_t>(i) / num_partitions]);
    const double equi_width_cut = lo + (hi - lo) * i / num_partitions;
    const auto cut = static_cast<uint64_t>(std::llround(
        (1.0 - lambda) * equi_depth_cut + lambda * equi_width_cut));
    if (cut > cuts.back()) cuts.push_back(cut);
  }
  cuts.push_back(sorted_sizes.back() + 1);
  return PartitionsFromCuts(sorted_sizes, cuts);
}

double PartitionCountStdDev(const std::vector<PartitionSpec>& partitions) {
  std::vector<double> counts;
  counts.reserve(partitions.size());
  for (const PartitionSpec& partition : partitions) {
    counts.push_back(static_cast<double>(partition.count));
  }
  return StdDev(counts);
}

}  // namespace lshensemble
