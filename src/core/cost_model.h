// The false-positive cost model that drives partitioning (paper §5.2–5.3).
//
// Filtering a partition [l, u) by the conservative Jaccard threshold
// s* = s-hat_{u,q}(t*) admits domains whose true containment lies in
// [t_x, t*) — false positives. Assuming containment uniform in [0, 1] and
// sizes uniform within the partition, the expected number of false
// positives is bounded by (Proposition 2 / Eq. 16):
//
//     M = N_{l,u} * (u - l + 1) / (2u)
//
// The partitioning objective is minimax over partitions (Eq. 9); Theorem 1
// shows an equi-M (equi-N^FP) partitioning attains the optimum.

#ifndef LSHENSEMBLE_CORE_COST_MODEL_H_
#define LSHENSEMBLE_CORE_COST_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lshensemble {

/// \brief Size interval [lower, upper) with the number of indexed domains
/// falling inside it.
struct PartitionSpec {
  uint64_t lower = 0;  ///< inclusive lower bound on domain size
  uint64_t upper = 0;  ///< exclusive upper bound on domain size
  size_t count = 0;    ///< number of domains in the partition

  friend bool operator==(const PartitionSpec&, const PartitionSpec&) = default;
};

/// \brief Upper bound M on the expected number of false-positive candidates
/// for a partition (Eq. 16): count * (u - l + 1) / (2u) with u := upper - 1
/// interpreted as the largest size in [lower, upper).
/// Preconditions: upper > lower >= 1, count >= 0.
double FalsePositiveBound(const PartitionSpec& partition);

/// \brief Query-dependent expected false-positive count for a partition,
/// the exact case-1 form from the proof of Proposition 2:
/// count * (u - l + 1) / (2 (u + q)). Tends to FalsePositiveBound as q/u -> 0.
double ExpectedFalsePositives(const PartitionSpec& partition, double q);

/// \brief Minimax cost of a partitioning (Eq. 9): max over partitions of the
/// per-partition false-positive bound.
double PartitioningCost(const std::vector<PartitionSpec>& partitions);

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CORE_COST_MODEL_H_
