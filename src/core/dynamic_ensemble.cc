#include "core/dynamic_ensemble.h"

#include <algorithm>
#include <cmath>

#include "core/threshold.h"
#include "minhash/hash_kernel.h"
#include "util/clock.h"
#include "util/instance_id.h"
#include "util/thread_pool.h"

namespace lshensemble {

Status DynamicEnsembleOptions::Validate() const {
  LSHE_RETURN_IF_ERROR(base.Validate());
  if (rebuild_fraction <= 0.0) {
    return Status::InvalidArgument("rebuild_fraction must be > 0");
  }
  return Status::OK();
}

Result<DynamicLshEnsemble> DynamicLshEnsemble::Create(
    DynamicEnsembleOptions options, std::shared_ptr<const HashFamily> family) {
  LSHE_RETURN_IF_ERROR(options.Validate());
  if (family == nullptr) {
    return Status::InvalidArgument("family must not be null");
  }
  if (options.base.num_hashes != family->num_hashes()) {
    return Status::InvalidArgument(
        "options.base.num_hashes does not match the hash family");
  }
  DynamicLshEnsemble index(std::move(options), std::move(family));
  index.instance_id_ = NextInstanceId();
  return index;
}

Status DynamicLshEnsemble::Insert(uint64_t id, size_t size,
                                  MinHash signature) {
  if (size < 1) {
    return Status::InvalidArgument("domain size must be >= 1");
  }
  if (!signature.valid() || !signature.family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "signature does not belong to the index's hash family");
  }
  if (records_.count(id) > 0 || MappedLive(id)) {
    return Status::InvalidArgument("id is already live");
  }
  // A re-insert after Remove(): the stale indexed entry stays tombstoned;
  // the new version is authoritative in the delta until the next rebuild.
  records_.emplace(id, Record{size, std::move(signature)});
  delta_.push_back(id);
  ++mutation_epoch_;
  if (ShouldRebuild()) {
    return Flush();
  }
  return Status::OK();
}

Status DynamicLshEnsemble::Insert(uint64_t id,
                                  std::span<const uint64_t> values) {
  if (values.empty()) {
    return Status::InvalidArgument("domain must have at least one value");
  }
  MinHash sketch(family_);
  sketch.UpdateBatch(values);
  return Insert(id, values.size(), std::move(sketch));
}

Status DynamicLshEnsemble::Remove(uint64_t id) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    // Not in the overlay; a snapshot-resident record is tombstoned in
    // place (it stays in the mapped arenas and side-car until a rebuild).
    if (MappedLive(id)) {
      tombstones_.insert(id);
      ++mapped_removed_;
      ++mutation_epoch_;
      return Status::OK();
    }
    return Status::NotFound("id is not live");
  }
  records_.erase(it);
  ++mutation_epoch_;
  const auto delta_it = std::find(delta_.begin(), delta_.end(), id);
  if (delta_it != delta_.end()) {
    delta_.erase(delta_it);
    // If the id was ALSO indexed (re-insert after Remove), the tombstone
    // from the earlier Remove is still in place; nothing more to do.
  } else {
    tombstones_.insert(id);
  }
  return Status::OK();
}

Status DynamicLshEnsemble::Query(const MinHash& query, size_t query_size,
                                 double t_star,
                                 std::vector<uint64_t>* out) const {
  QueryContext ctx;
  return Query(query, query_size, t_star, &ctx, out);
}

Status DynamicLshEnsemble::Query(const MinHash& query, size_t query_size,
                                 double t_star, QueryContext* ctx,
                                 std::vector<uint64_t>* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("ctx and out must not be null");
  }
  const QuerySpec spec{&query, query_size, t_star};
  return BatchQuery(std::span<const QuerySpec>(&spec, 1), ctx, out);
}

Status DynamicLshEnsemble::BatchQuery(std::span<const QuerySpec> specs,
                                      QueryContext* ctx,
                                      std::vector<uint64_t>* outs,
                                      QueryStats* stats) const {
  if (ctx == nullptr) {
    return Status::InvalidArgument("ctx must not be null");
  }
  if (specs.empty()) return Status::OK();
  if (outs == nullptr) {
    return Status::InvalidArgument("outs must not be null");
  }
  const size_t count = specs.size();

  // Validate the whole batch and resolve every query's effective
  // cardinality up front, re-staging the specs with the resolved
  // cardinalities: the conservative-threshold conversion's per-query
  // terms are hoisted out of the per-record delta loop below (only the
  // record-size term x/q remains per pair), and the inner engine sees
  // exact sizes, so it never re-runs the cardinality estimate.
  ctx->dynamic_q_.resize(count);
  ctx->dynamic_specs_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    const QuerySpec& spec = specs[i];
    if (spec.query == nullptr || !spec.query->valid() ||
        !spec.query->family()->SameAs(*family_)) {
      return Status::InvalidArgument(
          "query signature does not belong to the index's hash family");
    }
    if (spec.t_star < 0.0 || spec.t_star > 1.0) {
      return Status::InvalidArgument("t_star must be in [0, 1]");
    }
    size_t q = spec.query_size;
    if (q == 0) {
      q = static_cast<size_t>(std::max<int64_t>(
          1, std::llround(spec.query->EstimateCardinality())));
    }
    if (DeadlineExpired(spec.deadline_ns)) {
      return Status::DeadlineExceeded("query deadline expired");
    }
    ctx->dynamic_q_[i] = static_cast<double>(q);
    // Re-stage with the deadline intact: the inner engine keeps checking
    // it between partition probes.
    ctx->dynamic_specs_[i] =
        QuerySpec{spec.query, q, spec.t_star, spec.deadline_ns};
  }
  const std::span<const QuerySpec> resolved(ctx->dynamic_specs_.data(),
                                            count);

  if (ensemble_.has_value()) {
    if (tombstones_.empty()) {
      // Nothing to filter: let the batched engine fill the caller's
      // buffers directly (it clears each output vector itself).
      LSHE_RETURN_IF_ERROR(ensemble_->BatchQuery(resolved, ctx, outs, stats));
    } else {
      // Stage the indexed candidates in the context (capacities persist
      // across calls) and copy through the tombstone filter.
      if (ctx->dynamic_outs_.size() < count) ctx->dynamic_outs_.resize(count);
      LSHE_RETURN_IF_ERROR(
          ensemble_->BatchQuery(resolved, ctx, ctx->dynamic_outs_.data(),
                                stats));
      for (size_t i = 0; i < count; ++i) {
        outs[i].clear();
        for (uint64_t id : ctx->dynamic_outs_[i]) {
          if (tombstones_.count(id) == 0) outs[i].push_back(id);
        }
      }
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      outs[i].clear();
      if (stats != nullptr) {
        stats[i].query_size_used = static_cast<size_t>(ctx->dynamic_q_[i]);
        stats[i].partitions_probed = 0;
        stats[i].partitions_pruned = 0;
        stats[i].slot0_cache_hits = 0;
        stats[i].slot0_gallop_resumes = 0;
        stats[i].tuned.clear();
      }
    }
  }

  if (delta_.empty()) return Status::OK();

  // Deadline boundary between the indexed probes above and the delta
  // scan below (the scan itself is one cache-tiled pass; the batch fails
  // here rather than mid-tile).
  for (size_t i = 0; i < count; ++i) {
    if (DeadlineExpired(specs[i].deadline_ns)) {
      return Status::DeadlineExceeded("query deadline expired");
    }
  }

  // Exact scan of the delta buffer, ONCE per batch. A domain is admitted
  // when its estimated Jaccard reaches the same conservative threshold
  // the ensemble would apply, computed with the domain's exact size
  // (tighter than any partition bound, still no new false negatives
  // beyond sketch error). Under the same option as the indexed path's
  // partition prune, a record whose size cannot reach the containment
  // threshold (x < t* * q, so t(Q, X) <= x/q < t*) skips the collision
  // count entirely — the delta-scan analog of pruning an unreachable
  // partition, with the identical size comparison.
  const auto& kernel = ActiveKernelOps();
  const auto num_hashes = static_cast<size_t>(family_->num_hashes());
  const auto m = static_cast<double>(num_hashes);
  const size_t num_delta = delta_.size();
  const bool prune = options_.base.prune_unreachable_partitions;

  const bool flatten_hit = ctx->dynamic_delta_valid_ &&
                           ctx->dynamic_delta_index_id_ == instance_id_ &&
                           ctx->dynamic_delta_epoch_ == mutation_epoch_;
  if (!flatten_hit && count == 1) {
    // One-shot path (cold cache, single query): scan the records in
    // place — flattening would copy more bytes than the scan reads.
    const uint64_t* query_sig = specs[0].query->values().data();
    const double q = ctx->dynamic_q_[0];
    for (uint64_t id : delta_) {
      const Record& record = records_.at(id);
      const auto x = static_cast<double>(record.size);
      if (prune && x + 1e-9 < specs[0].t_star * q) continue;
      const double s_star =
          ContainmentToJaccardHoisted(specs[0].t_star, x / q);
      const size_t collisions = kernel.count_collisions(
          query_sig, record.signature.values().data(), num_hashes);
      if (static_cast<double>(collisions) / m + 1e-12 >= s_star) {
        outs[0].push_back(id);
      }
    }
    return Status::OK();
  }

  // Flatten the records (sizes + a contiguous signature arena, in delta
  // order) so the hot loop walks dense arrays instead of chasing the hash
  // map. Cached in the context, keyed on (instance id, mutation epoch):
  // consecutive batches and top-k descent rounds against an unchanged
  // index skip this entirely.
  // Records in the outer loop, queries inner, tiled: a block of record
  // signatures small enough to stay cache-resident (~128 KiB) is scored
  // against every query of the chunk before the next block is touched, so
  // each query signature is streamed once per block instead of once per
  // record. One batch-compare kernel call scores the whole block against a
  // query (families were checked above, so the kernel works on raw slot
  // arrays and reproduces exactly the count EstimateJaccard uses). Per
  // query, records are still visited in delta order.
  constexpr size_t kMaxBlock = 512;
  const size_t block_records = std::min(
      kMaxBlock,
      std::max<size_t>(1, (static_cast<size_t>(128) << 10) /
                              (num_hashes * sizeof(uint64_t))));
  if (!flatten_hit) {
    ctx->dynamic_delta_valid_ = false;
    ctx->dynamic_delta_x_.resize(num_delta);
    ctx->dynamic_delta_arena_.resize(num_delta * num_hashes);
    // Per-block size maxima for the admission bound: a whole block's
    // kernel call is skipped when even its largest record cannot reach a
    // query's threshold (the per-record rule applied wholesale).
    ctx->dynamic_delta_block_max_.assign(
        (num_delta + block_records - 1) / block_records, 0.0);
    for (size_t r = 0; r < num_delta; ++r) {
      const Record& record = records_.at(delta_[r]);
      const auto x = static_cast<double>(record.size);
      ctx->dynamic_delta_x_[r] = x;
      double& block_max = ctx->dynamic_delta_block_max_[r / block_records];
      block_max = std::max(block_max, x);
      std::copy(record.signature.values().begin(),
                record.signature.values().end(),
                ctx->dynamic_delta_arena_.begin() + r * num_hashes);
    }
    ctx->dynamic_delta_index_id_ = instance_id_;
    ctx->dynamic_delta_epoch_ = mutation_epoch_;
    ctx->dynamic_delta_valid_ = true;
  }
  auto scan_queries = [&](size_t query_begin, size_t query_end) {
    uint32_t counts[kMaxBlock];
    for (size_t base = 0; base < num_delta; base += block_records) {
      const size_t block_len = std::min(block_records, num_delta - base);
      const double block_max =
          ctx->dynamic_delta_block_max_[base / block_records];
      const uint64_t* block_sigs =
          ctx->dynamic_delta_arena_.data() + base * num_hashes;
      for (size_t i = query_begin; i < query_end; ++i) {
        const double q = ctx->dynamic_q_[i];
        const double t_star = specs[i].t_star;
        if (prune && block_max + 1e-9 < t_star * q) continue;
        kernel.count_collisions_many(specs[i].query->values().data(),
                                     block_sigs, num_hashes, block_len,
                                     counts);
        std::vector<uint64_t>& out = outs[i];
        for (size_t r = 0; r < block_len; ++r) {
          const double x = ctx->dynamic_delta_x_[base + r];
          if (prune && x + 1e-9 < t_star * q) continue;
          const double s_star = ContainmentToJaccardHoisted(t_star, x / q);
          if (static_cast<double>(counts[r]) / m + 1e-12 >= s_star) {
            out.push_back(delta_[base + r]);
          }
        }
      }
    }
  };

  // Spread query chunks over the pool when the scan is worth it; each
  // chunk writes only its own outs[] range.
  const size_t participants = ThreadPool::Shared().num_threads() + 1;
  const size_t chunks = options_.base.parallel_query && participants > 1
                            ? std::min(count, participants * 4)
                            : 1;
  if (chunks <= 1 || num_delta * count < 4096) {
    scan_queries(0, count);
  } else {
    ThreadPool::Shared().ParallelFor(chunks, [&](size_t c) {
      scan_queries(c * count / chunks, (c + 1) * count / chunks);
    });
  }
  return Status::OK();
}

Status DynamicLshEnsemble::Flush() {
  // A snapshot-opened index always rebuilds, even when clean: Flush() is
  // documented to materialize the mapped records and release the mapping
  // (so the snapshot file can be replaced / its space reclaimed).
  if (mapped_.n == 0 && !records_.empty() && delta_.empty() &&
      tombstones_.empty() && ensemble_.has_value()) {
    return Status::OK();  // already up to date
  }
  return Rebuild(options_.base);
}

Status DynamicLshEnsemble::Flush(std::vector<PartitionSpec> pinned) {
  LshEnsembleOptions build_options = options_.base;
  build_options.pinned_partitions = std::move(pinned);
  return Rebuild(build_options);
}

size_t DynamicLshEnsemble::MappedFind(uint64_t id) const {
  const uint64_t* begin = mapped_.ids;
  const uint64_t* end = mapped_.ids + mapped_.n;
  const uint64_t* it = std::lower_bound(begin, end, id);
  return (it != end && *it == id) ? static_cast<size_t>(it - begin)
                                  : mapped_.n;
}

bool DynamicLshEnsemble::MappedLive(uint64_t id) const {
  return mapped_.n > 0 && MappedFind(id) < mapped_.n &&
         tombstones_.count(id) == 0;
}

Status DynamicLshEnsemble::MaterializeMapped() {
  if (mapped_.n == 0) return Status::OK();
  // Stage-then-commit: a slot-validation failure partway through (a
  // corrupt arena under verify_checksums=false) must leave the engine
  // exactly as it was — half-materialized records would double-count in
  // size() and duplicate ids in a re-serialized side-car.
  std::vector<std::pair<uint64_t, Record>> staged;
  staged.reserve(mapped_.n - mapped_removed_);
  for (size_t i = 0; i < mapped_.n; ++i) {
    const uint64_t id = mapped_.ids[i];
    if (tombstones_.count(id) > 0) continue;  // removed (or re-inserted)
    std::vector<uint64_t> slots(mapped_.signatures + i * mapped_.m,
                                mapped_.signatures + (i + 1) * mapped_.m);
    auto signature = MinHash::FromSlots(family_, std::move(slots));
    if (!signature.ok()) return signature.status();
    staged.emplace_back(id, Record{static_cast<size_t>(mapped_.sizes[i]),
                                   std::move(signature).value()});
  }
  records_.reserve(records_.size() + staged.size());
  for (auto& [id, record] : staged) {
    records_.emplace(id, std::move(record));
  }
  mapped_ = MappedSideCar{};
  mapped_removed_ = 0;
  mapped_backing_.reset();
  return Status::OK();
}

Status DynamicLshEnsemble::Rebuild(const LshEnsembleOptions& build_options) {
  // A snapshot-opened index rebuilds on the heap: copy the still-live
  // mapped records into the authoritative map first (the only point where
  // a zero-copy open pays for its records), then drop the mapping.
  LSHE_RETURN_IF_ERROR(MaterializeMapped());
  if (records_.empty()) {
    // Nothing live: drop the ensemble entirely.
    ensemble_.reset();
    indexed_count_ = 0;
    delta_.clear();
    tombstones_.clear();
    ++mutation_epoch_;
    return Status::OK();
  }
  LshEnsembleBuilder builder(build_options, family_);
  for (const auto& [id, record] : records_) {
    LSHE_RETURN_IF_ERROR(builder.Add(id, record.size, record.signature));
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  ensemble_.emplace(std::move(built).value());
  indexed_count_ = records_.size();
  delta_.clear();
  tombstones_.clear();
  ++mutation_epoch_;
  return Status::OK();
}

void DynamicLshEnsemble::AppendLiveSizes(std::vector<uint64_t>* out) const {
  out->reserve(out->size() + size());
  for (const auto& [id, record] : records_) {
    out->push_back(record.size);
  }
  for (size_t i = 0; i < mapped_.n; ++i) {
    if (tombstones_.count(mapped_.ids[i]) == 0) {
      out->push_back(mapped_.sizes[i]);
    }
  }
}

void DynamicLshEnsemble::ForEachLiveRecord(
    const std::function<void(uint64_t, size_t, SignatureView)>& fn) const {
  for (const auto& [id, record] : records_) {
    fn(id, record.size, record.signature.view());
  }
  // A mapped id can only coexist with a heap record when it was Remove()d
  // first (re-insert), and a Remove of a mapped record always tombstones
  // it — so the tombstone check alone prevents double enumeration.
  for (size_t i = 0; i < mapped_.n; ++i) {
    if (tombstones_.count(mapped_.ids[i]) == 0) {
      fn(mapped_.ids[i], static_cast<size_t>(mapped_.sizes[i]),
         SignatureView{mapped_.signatures + i * mapped_.m, mapped_.m});
    }
  }
}

size_t DynamicLshEnsemble::indexed_size() const { return indexed_count_; }

size_t DynamicLshEnsemble::SizeOf(uint64_t id) const {
  const auto it = records_.find(id);
  if (it != records_.end()) return it->second.size;
  if (mapped_.n > 0 && tombstones_.count(id) == 0) {
    const size_t pos = MappedFind(id);
    if (pos < mapped_.n) return static_cast<size_t>(mapped_.sizes[pos]);
  }
  return 0;
}

const MinHash* DynamicLshEnsemble::SignatureOf(uint64_t id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second.signature;
}

const MinHash* DynamicLshEnsemble::FindRecord(uint64_t id,
                                              size_t* size) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return nullptr;
  *size = it->second.size;
  return &it->second.signature;
}

SignatureView DynamicLshEnsemble::FindSignature(uint64_t id,
                                                size_t* size) const {
  const auto it = records_.find(id);
  if (it != records_.end()) {
    *size = it->second.size;
    return it->second.signature.view();
  }
  if (mapped_.n > 0 && tombstones_.count(id) == 0) {
    const size_t pos = MappedFind(id);
    if (pos < mapped_.n) {
      *size = static_cast<size_t>(mapped_.sizes[pos]);
      return {mapped_.signatures + pos * mapped_.m, mapped_.m};
    }
  }
  return {};
}

bool DynamicLshEnsemble::ShouldRebuild() const {
  if (delta_.size() < options_.min_delta_for_rebuild) return false;
  return static_cast<double>(delta_.size()) >=
         options_.rebuild_fraction * static_cast<double>(indexed_count_);
}

}  // namespace lshensemble
