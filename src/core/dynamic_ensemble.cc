#include "core/dynamic_ensemble.h"

#include <algorithm>
#include <cmath>

#include "core/threshold.h"

namespace lshensemble {

Status DynamicEnsembleOptions::Validate() const {
  LSHE_RETURN_IF_ERROR(base.Validate());
  if (rebuild_fraction <= 0.0) {
    return Status::InvalidArgument("rebuild_fraction must be > 0");
  }
  return Status::OK();
}

Result<DynamicLshEnsemble> DynamicLshEnsemble::Create(
    DynamicEnsembleOptions options, std::shared_ptr<const HashFamily> family) {
  LSHE_RETURN_IF_ERROR(options.Validate());
  if (family == nullptr) {
    return Status::InvalidArgument("family must not be null");
  }
  if (options.base.num_hashes != family->num_hashes()) {
    return Status::InvalidArgument(
        "options.base.num_hashes does not match the hash family");
  }
  return DynamicLshEnsemble(std::move(options), std::move(family));
}

Status DynamicLshEnsemble::Insert(uint64_t id, size_t size,
                                  MinHash signature) {
  if (size < 1) {
    return Status::InvalidArgument("domain size must be >= 1");
  }
  if (!signature.valid() || !signature.family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "signature does not belong to the index's hash family");
  }
  if (records_.count(id) > 0) {
    return Status::InvalidArgument("id is already live");
  }
  // A re-insert after Remove(): the stale indexed entry stays tombstoned;
  // the new version is authoritative in the delta until the next rebuild.
  records_.emplace(id, Record{size, std::move(signature)});
  delta_.push_back(id);
  if (ShouldRebuild()) {
    return Flush();
  }
  return Status::OK();
}

Status DynamicLshEnsemble::Insert(uint64_t id,
                                  std::span<const uint64_t> values) {
  if (values.empty()) {
    return Status::InvalidArgument("domain must have at least one value");
  }
  MinHash sketch(family_);
  sketch.UpdateBatch(values);
  return Insert(id, values.size(), std::move(sketch));
}

Status DynamicLshEnsemble::Remove(uint64_t id) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("id is not live");
  }
  records_.erase(it);
  const auto delta_it = std::find(delta_.begin(), delta_.end(), id);
  if (delta_it != delta_.end()) {
    delta_.erase(delta_it);
    // If the id was ALSO indexed (re-insert after Remove), the tombstone
    // from the earlier Remove is still in place; nothing more to do.
  } else {
    tombstones_.insert(id);
  }
  return Status::OK();
}

Status DynamicLshEnsemble::Query(const MinHash& query, size_t query_size,
                                 double t_star,
                                 std::vector<uint64_t>* out) const {
  QueryContext ctx;
  return Query(query, query_size, t_star, &ctx, out);
}

Status DynamicLshEnsemble::Query(const MinHash& query, size_t query_size,
                                 double t_star, QueryContext* ctx,
                                 std::vector<uint64_t>* out) const {
  if (ctx == nullptr || out == nullptr) {
    return Status::InvalidArgument("ctx and out must not be null");
  }
  if (!query.valid() || !query.family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "query signature does not belong to the index's hash family");
  }
  if (t_star < 0.0 || t_star > 1.0) {
    return Status::InvalidArgument("t_star must be in [0, 1]");
  }
  out->clear();

  size_t q = query_size;
  if (q == 0) {
    q = static_cast<size_t>(
        std::max<int64_t>(1, std::llround(query.EstimateCardinality())));
  }
  const auto qd = static_cast<double>(q);

  if (ensemble_.has_value()) {
    const QuerySpec spec{&query, q, t_star};
    const std::span<const QuerySpec> specs(&spec, 1);
    if (tombstones_.empty()) {
      // Nothing to filter: let the batched engine fill the caller's buffer
      // directly (it clears the output vector itself).
      LSHE_RETURN_IF_ERROR(ensemble_->BatchQuery(specs, ctx, out));
    } else {
      // Stage candidates in the context (capacity persists across calls)
      // and copy through the tombstone filter.
      std::vector<uint64_t>* staged = &ctx->dynamic_candidates_;
      LSHE_RETURN_IF_ERROR(ensemble_->BatchQuery(specs, ctx, staged));
      for (uint64_t id : *staged) {
        if (tombstones_.count(id) == 0) out->push_back(id);
      }
    }
  }

  // Exact scan of the delta buffer: admit a domain when its estimated
  // Jaccard reaches the same conservative threshold the ensemble would
  // apply, computed with the domain's exact size (tighter than any
  // partition bound, still no new false negatives beyond sketch error).
  for (uint64_t id : delta_) {
    const Record& record = records_.at(id);
    const double s_star =
        ContainmentToJaccard(t_star, static_cast<double>(record.size), qd);
    Result<double> jaccard = query.EstimateJaccard(record.signature);
    if (!jaccard.ok()) return jaccard.status();
    if (*jaccard + 1e-12 >= s_star) out->push_back(id);
  }
  return Status::OK();
}

Status DynamicLshEnsemble::Flush() {
  if (records_.empty()) {
    // Nothing live: drop the ensemble entirely.
    ensemble_.reset();
    indexed_count_ = 0;
    delta_.clear();
    tombstones_.clear();
    return Status::OK();
  }
  if (delta_.empty() && tombstones_.empty() && ensemble_.has_value()) {
    return Status::OK();  // already up to date
  }
  LshEnsembleBuilder builder(options_.base, family_);
  for (const auto& [id, record] : records_) {
    LSHE_RETURN_IF_ERROR(builder.Add(id, record.size, record.signature));
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  ensemble_.emplace(std::move(built).value());
  indexed_count_ = records_.size();
  delta_.clear();
  tombstones_.clear();
  return Status::OK();
}

size_t DynamicLshEnsemble::indexed_size() const { return indexed_count_; }

size_t DynamicLshEnsemble::SizeOf(uint64_t id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? 0 : it->second.size;
}

const MinHash* DynamicLshEnsemble::SignatureOf(uint64_t id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second.signature;
}

bool DynamicLshEnsemble::ShouldRebuild() const {
  if (delta_.size() < options_.min_delta_for_rebuild) return false;
  return static_cast<double>(delta_.size()) >=
         options_.rebuild_fraction * static_cast<double>(indexed_count_);
}

}  // namespace lshensemble
