#include "core/dynamic_ensemble.h"

#include <algorithm>
#include <cmath>

#include "core/threshold.h"
#include "minhash/hash_kernel.h"
#include "util/instance_id.h"
#include "util/thread_pool.h"

namespace lshensemble {

Status DynamicEnsembleOptions::Validate() const {
  LSHE_RETURN_IF_ERROR(base.Validate());
  if (rebuild_fraction <= 0.0) {
    return Status::InvalidArgument("rebuild_fraction must be > 0");
  }
  return Status::OK();
}

Result<DynamicLshEnsemble> DynamicLshEnsemble::Create(
    DynamicEnsembleOptions options, std::shared_ptr<const HashFamily> family) {
  LSHE_RETURN_IF_ERROR(options.Validate());
  if (family == nullptr) {
    return Status::InvalidArgument("family must not be null");
  }
  if (options.base.num_hashes != family->num_hashes()) {
    return Status::InvalidArgument(
        "options.base.num_hashes does not match the hash family");
  }
  DynamicLshEnsemble index(std::move(options), std::move(family));
  index.instance_id_ = NextInstanceId();
  return index;
}

Status DynamicLshEnsemble::Insert(uint64_t id, size_t size,
                                  MinHash signature) {
  if (size < 1) {
    return Status::InvalidArgument("domain size must be >= 1");
  }
  if (!signature.valid() || !signature.family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "signature does not belong to the index's hash family");
  }
  if (records_.count(id) > 0) {
    return Status::InvalidArgument("id is already live");
  }
  // A re-insert after Remove(): the stale indexed entry stays tombstoned;
  // the new version is authoritative in the delta until the next rebuild.
  records_.emplace(id, Record{size, std::move(signature)});
  delta_.push_back(id);
  ++mutation_epoch_;
  if (ShouldRebuild()) {
    return Flush();
  }
  return Status::OK();
}

Status DynamicLshEnsemble::Insert(uint64_t id,
                                  std::span<const uint64_t> values) {
  if (values.empty()) {
    return Status::InvalidArgument("domain must have at least one value");
  }
  MinHash sketch(family_);
  sketch.UpdateBatch(values);
  return Insert(id, values.size(), std::move(sketch));
}

Status DynamicLshEnsemble::Remove(uint64_t id) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("id is not live");
  }
  records_.erase(it);
  ++mutation_epoch_;
  const auto delta_it = std::find(delta_.begin(), delta_.end(), id);
  if (delta_it != delta_.end()) {
    delta_.erase(delta_it);
    // If the id was ALSO indexed (re-insert after Remove), the tombstone
    // from the earlier Remove is still in place; nothing more to do.
  } else {
    tombstones_.insert(id);
  }
  return Status::OK();
}

Status DynamicLshEnsemble::Query(const MinHash& query, size_t query_size,
                                 double t_star,
                                 std::vector<uint64_t>* out) const {
  QueryContext ctx;
  return Query(query, query_size, t_star, &ctx, out);
}

Status DynamicLshEnsemble::Query(const MinHash& query, size_t query_size,
                                 double t_star, QueryContext* ctx,
                                 std::vector<uint64_t>* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("ctx and out must not be null");
  }
  const QuerySpec spec{&query, query_size, t_star};
  return BatchQuery(std::span<const QuerySpec>(&spec, 1), ctx, out);
}

Status DynamicLshEnsemble::BatchQuery(std::span<const QuerySpec> specs,
                                      QueryContext* ctx,
                                      std::vector<uint64_t>* outs,
                                      QueryStats* stats) const {
  if (ctx == nullptr) {
    return Status::InvalidArgument("ctx must not be null");
  }
  if (specs.empty()) return Status::OK();
  if (outs == nullptr) {
    return Status::InvalidArgument("outs must not be null");
  }
  const size_t count = specs.size();

  // Validate the whole batch and resolve every query's effective
  // cardinality up front, re-staging the specs with the resolved
  // cardinalities: the conservative-threshold conversion's per-query
  // terms are hoisted out of the per-record delta loop below (only the
  // record-size term x/q remains per pair), and the inner engine sees
  // exact sizes, so it never re-runs the cardinality estimate.
  ctx->dynamic_q_.resize(count);
  ctx->dynamic_specs_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    const QuerySpec& spec = specs[i];
    if (spec.query == nullptr || !spec.query->valid() ||
        !spec.query->family()->SameAs(*family_)) {
      return Status::InvalidArgument(
          "query signature does not belong to the index's hash family");
    }
    if (spec.t_star < 0.0 || spec.t_star > 1.0) {
      return Status::InvalidArgument("t_star must be in [0, 1]");
    }
    size_t q = spec.query_size;
    if (q == 0) {
      q = static_cast<size_t>(std::max<int64_t>(
          1, std::llround(spec.query->EstimateCardinality())));
    }
    ctx->dynamic_q_[i] = static_cast<double>(q);
    ctx->dynamic_specs_[i] = QuerySpec{spec.query, q, spec.t_star};
  }
  const std::span<const QuerySpec> resolved(ctx->dynamic_specs_.data(),
                                            count);

  if (ensemble_.has_value()) {
    if (tombstones_.empty()) {
      // Nothing to filter: let the batched engine fill the caller's
      // buffers directly (it clears each output vector itself).
      LSHE_RETURN_IF_ERROR(ensemble_->BatchQuery(resolved, ctx, outs, stats));
    } else {
      // Stage the indexed candidates in the context (capacities persist
      // across calls) and copy through the tombstone filter.
      if (ctx->dynamic_outs_.size() < count) ctx->dynamic_outs_.resize(count);
      LSHE_RETURN_IF_ERROR(
          ensemble_->BatchQuery(resolved, ctx, ctx->dynamic_outs_.data(),
                                stats));
      for (size_t i = 0; i < count; ++i) {
        outs[i].clear();
        for (uint64_t id : ctx->dynamic_outs_[i]) {
          if (tombstones_.count(id) == 0) outs[i].push_back(id);
        }
      }
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      outs[i].clear();
      if (stats != nullptr) {
        stats[i].query_size_used = static_cast<size_t>(ctx->dynamic_q_[i]);
        stats[i].partitions_probed = 0;
        stats[i].partitions_pruned = 0;
        stats[i].tuned.clear();
      }
    }
  }

  if (delta_.empty()) return Status::OK();

  // Exact scan of the delta buffer, ONCE per batch. A domain is admitted
  // when its estimated Jaccard reaches the same conservative threshold
  // the ensemble would apply, computed with the domain's exact size
  // (tighter than any partition bound, still no new false negatives
  // beyond sketch error).
  const auto& kernel = ActiveKernelOps();
  const auto num_hashes = static_cast<size_t>(family_->num_hashes());
  const auto m = static_cast<double>(num_hashes);
  const size_t num_delta = delta_.size();

  const bool flatten_hit = ctx->dynamic_delta_valid_ &&
                           ctx->dynamic_delta_index_id_ == instance_id_ &&
                           ctx->dynamic_delta_epoch_ == mutation_epoch_;
  if (!flatten_hit && count == 1) {
    // One-shot path (cold cache, single query): scan the records in
    // place — flattening would copy more bytes than the scan reads.
    const uint64_t* query_sig = specs[0].query->values().data();
    const double q = ctx->dynamic_q_[0];
    for (uint64_t id : delta_) {
      const Record& record = records_.at(id);
      const double s_star = ContainmentToJaccardHoisted(
          specs[0].t_star, static_cast<double>(record.size) / q);
      const size_t collisions = kernel.count_collisions(
          query_sig, record.signature.values().data(), num_hashes);
      if (static_cast<double>(collisions) / m + 1e-12 >= s_star) {
        outs[0].push_back(id);
      }
    }
    return Status::OK();
  }

  // Flatten the records (sizes + a contiguous signature arena, in delta
  // order) so the hot loop walks dense arrays instead of chasing the hash
  // map. Cached in the context, keyed on (instance id, mutation epoch):
  // consecutive batches and top-k descent rounds against an unchanged
  // index skip this entirely.
  if (!flatten_hit) {
    ctx->dynamic_delta_valid_ = false;
    ctx->dynamic_delta_x_.resize(num_delta);
    ctx->dynamic_delta_arena_.resize(num_delta * num_hashes);
    for (size_t r = 0; r < num_delta; ++r) {
      const Record& record = records_.at(delta_[r]);
      ctx->dynamic_delta_x_[r] = static_cast<double>(record.size);
      std::copy(record.signature.values().begin(),
                record.signature.values().end(),
                ctx->dynamic_delta_arena_.begin() + r * num_hashes);
    }
    ctx->dynamic_delta_index_id_ = instance_id_;
    ctx->dynamic_delta_epoch_ = mutation_epoch_;
    ctx->dynamic_delta_valid_ = true;
  }
  // Records in the outer loop, queries inner, tiled: a block of record
  // signatures small enough to stay cache-resident (~128 KiB) is scored
  // against every query of the chunk before the next block is touched, so
  // each query signature is streamed once per block instead of once per
  // record. One batch-compare kernel call scores the whole block against a
  // query (families were checked above, so the kernel works on raw slot
  // arrays and reproduces exactly the count EstimateJaccard uses). Per
  // query, records are still visited in delta order.
  constexpr size_t kMaxBlock = 512;
  const size_t block_records = std::min(
      kMaxBlock,
      std::max<size_t>(1, (static_cast<size_t>(128) << 10) /
                              (num_hashes * sizeof(uint64_t))));
  auto scan_queries = [&](size_t query_begin, size_t query_end) {
    uint32_t counts[kMaxBlock];
    for (size_t base = 0; base < num_delta; base += block_records) {
      const size_t block_len = std::min(block_records, num_delta - base);
      const uint64_t* block_sigs =
          ctx->dynamic_delta_arena_.data() + base * num_hashes;
      for (size_t i = query_begin; i < query_end; ++i) {
        kernel.count_collisions_many(specs[i].query->values().data(),
                                     block_sigs, num_hashes, block_len,
                                     counts);
        const double q = ctx->dynamic_q_[i];
        const double t_star = specs[i].t_star;
        std::vector<uint64_t>& out = outs[i];
        for (size_t r = 0; r < block_len; ++r) {
          const double s_star = ContainmentToJaccardHoisted(
              t_star, ctx->dynamic_delta_x_[base + r] / q);
          if (static_cast<double>(counts[r]) / m + 1e-12 >= s_star) {
            out.push_back(delta_[base + r]);
          }
        }
      }
    }
  };

  // Spread query chunks over the pool when the scan is worth it; each
  // chunk writes only its own outs[] range.
  const size_t participants = ThreadPool::Shared().num_threads() + 1;
  const size_t chunks = options_.base.parallel_query && participants > 1
                            ? std::min(count, participants * 4)
                            : 1;
  if (chunks <= 1 || num_delta * count < 4096) {
    scan_queries(0, count);
  } else {
    ThreadPool::Shared().ParallelFor(chunks, [&](size_t c) {
      scan_queries(c * count / chunks, (c + 1) * count / chunks);
    });
  }
  return Status::OK();
}

Status DynamicLshEnsemble::Flush() {
  if (!records_.empty() && delta_.empty() && tombstones_.empty() &&
      ensemble_.has_value()) {
    return Status::OK();  // already up to date
  }
  return Rebuild(options_.base);
}

Status DynamicLshEnsemble::Flush(std::vector<PartitionSpec> pinned) {
  LshEnsembleOptions build_options = options_.base;
  build_options.pinned_partitions = std::move(pinned);
  return Rebuild(build_options);
}

Status DynamicLshEnsemble::Rebuild(const LshEnsembleOptions& build_options) {
  if (records_.empty()) {
    // Nothing live: drop the ensemble entirely.
    ensemble_.reset();
    indexed_count_ = 0;
    delta_.clear();
    tombstones_.clear();
    ++mutation_epoch_;
    return Status::OK();
  }
  LshEnsembleBuilder builder(build_options, family_);
  for (const auto& [id, record] : records_) {
    LSHE_RETURN_IF_ERROR(builder.Add(id, record.size, record.signature));
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  ensemble_.emplace(std::move(built).value());
  indexed_count_ = records_.size();
  delta_.clear();
  tombstones_.clear();
  ++mutation_epoch_;
  return Status::OK();
}

void DynamicLshEnsemble::AppendLiveSizes(std::vector<uint64_t>* out) const {
  out->reserve(out->size() + records_.size());
  for (const auto& [id, record] : records_) {
    out->push_back(record.size);
  }
}

size_t DynamicLshEnsemble::indexed_size() const { return indexed_count_; }

size_t DynamicLshEnsemble::SizeOf(uint64_t id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? 0 : it->second.size;
}

const MinHash* DynamicLshEnsemble::SignatureOf(uint64_t id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second.signature;
}

const MinHash* DynamicLshEnsemble::FindRecord(uint64_t id,
                                              size_t* size) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return nullptr;
  *size = it->second.size;
  return &it->second.signature;
}

bool DynamicLshEnsemble::ShouldRebuild() const {
  if (delta_.size() < options_.min_delta_for_rebuild) return false;
  return static_cast<double>(delta_.size()) >=
         options_.rebuild_fraction * static_cast<double>(indexed_count_);
}

}  // namespace lshensemble
