// Top-k containment search on top of an LshEnsemble.
//
// The paper (Section 2) frames domain search by threshold and notes that
// the top-k formulation is "closely related and complementary". This
// module provides the complementary form: find the k domains with the
// highest (estimated) containment of the query.
//
// Strategy: descend through containment thresholds (geometric decay).
// At each threshold the ensemble returns every candidate whose containment
// plausibly reaches it; new candidates are scored by sketch-estimated
// containment (Jaccard estimate converted through Eq. 6 with the
// candidate's exact stored size). Descent stops as soon as the k-th best
// estimate is at least the current threshold — any domain not yet
// retrieved would have to beat it from below the threshold, which the
// threshold semantics rule out (up to LSH recall error).
//
// Ranking needs the indexed signatures, which the ensemble itself does not
// retain; callers keep them in a SketchStore (built during sketching, or
// reloaded alongside a persisted index).

#ifndef LSHENSEMBLE_CORE_TOPK_H_
#define LSHENSEMBLE_CORE_TOPK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/lsh_ensemble.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Sizes and signatures of indexed domains, keyed by id; the
/// side-car data top-k ranking needs.
class SketchStore {
 public:
  /// \brief Register a domain's exact size and signature. Ids must be
  /// unique; `size` >= 1; the signature must be valid.
  Status Add(uint64_t id, size_t size, MinHash signature);

  size_t size() const { return entries_.size(); }
  bool Contains(uint64_t id) const { return entries_.count(id) > 0; }

  /// Domain size for `id`; 0 when unknown.
  size_t SizeOf(uint64_t id) const;
  /// Signature for `id`; nullptr when unknown.
  const MinHash* SignatureOf(uint64_t id) const;

 private:
  struct Entry {
    size_t size;
    MinHash signature;
  };
  std::unordered_map<uint64_t, Entry> entries_;
};

/// \brief One ranked answer.
struct TopKResult {
  uint64_t id = 0;
  /// Sketch-estimated containment t(Q, X), in [0, 1].
  double estimated_containment = 0.0;

  friend bool operator==(const TopKResult&, const TopKResult&) = default;
};

/// \brief Top-k searcher over an ensemble + sketch store.
///
/// Both referenced objects must outlive the searcher. Thread-safe: Search
/// only reads shared state.
class TopKSearcher {
 public:
  struct Options {
    /// First containment threshold probed.
    double initial_threshold = 0.95;
    /// Multiplicative threshold decay between rounds, in (0, 1).
    double decay = 0.7;
    /// Descent floor: below this threshold the search returns its best
    /// effort (protects against scanning the whole index when fewer than
    /// k overlapping domains exist).
    double min_threshold = 0.05;

    Status Validate() const;
  };

  /// Binds with default options.
  TopKSearcher(const LshEnsemble* ensemble, const SketchStore* store);
  TopKSearcher(const LshEnsemble* ensemble, const SketchStore* store,
               Options options);

  /// \brief The k domains with the highest estimated containment of the
  /// query, sorted by descending estimate (ties by ascending id).
  ///
  /// \param query      MinHash of the query domain (ensemble's family).
  /// \param query_size exact |Q|, or 0 to use the sketch estimate.
  /// \param k          number of results requested; fewer are returned
  ///                   when fewer candidate domains overlap the query.
  Result<std::vector<TopKResult>> Search(const MinHash& query,
                                         size_t query_size, size_t k) const;

 private:
  const LshEnsemble* ensemble_;
  const SketchStore* store_;
  Options options_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CORE_TOPK_H_
