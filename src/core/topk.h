// Top-k containment search on top of an LshEnsemble.
//
// The paper (Section 2) frames domain search by threshold and notes that
// the top-k formulation is "closely related and complementary". This
// module provides the complementary form: find the k domains with the
// highest (estimated) containment of the query.
//
// Strategy: descend through containment thresholds (geometric decay).
// At each threshold the ensemble returns every candidate whose containment
// plausibly reaches it; new candidates are scored by sketch-estimated
// containment (Jaccard estimate converted through Eq. 6 with the
// candidate's exact stored size). Descent stops as soon as the k-th best
// estimate is at least the current threshold — any domain not yet
// retrieved would have to beat it from below the threshold, which the
// threshold semantics rule out (up to LSH recall error).
//
// Ranking needs the indexed signatures, which the ensemble itself does not
// retain; callers keep them in a SketchStore (built during sketching, or
// reloaded alongside a persisted index). A DynamicLshEnsemble already
// retains sizes and signatures for every live domain (its rebuild side-car
// is exactly a sketch store), so a searcher can bind to one directly —
// top-k then ranks over indexed + delta domains, minus tombstones.
//
// The search is batched: BatchSearch() advances many queries' threshold
// descents in lockstep — every round issues ONE BatchQuery() over the
// still-active queries, retiring each query as soon as its k-th best
// estimate clears the current threshold. Search() is a batch of one.

#ifndef LSHENSEMBLE_CORE_TOPK_H_
#define LSHENSEMBLE_CORE_TOPK_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/lsh_ensemble.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

class DynamicLshEnsemble;
class ShardedEnsemble;

/// \brief Sizes and signatures of indexed domains, keyed by id; the
/// side-car data top-k ranking needs.
class SketchStore {
 public:
  /// \brief Register a domain's exact size and signature. Ids must be
  /// unique; `size` >= 1; the signature must be valid.
  Status Add(uint64_t id, size_t size, MinHash signature);

  size_t size() const { return entries_.size(); }
  bool Contains(uint64_t id) const { return entries_.count(id) > 0; }

  /// Domain size for `id`; 0 when unknown.
  size_t SizeOf(uint64_t id) const;
  /// Signature for `id`; nullptr when unknown.
  const MinHash* SignatureOf(uint64_t id) const;
  /// Signature and exact size in one lookup (nullptr / size untouched
  /// when unknown).
  const MinHash* FindRecord(uint64_t id, size_t* size) const;
  /// \brief Borrowed signature view + exact size in one lookup — the
  /// shape the top-k ranking loop wants (dynamic and sharded engines
  /// serve the same view straight from a mapped snapshot's side-car).
  SignatureView FindSignature(uint64_t id, size_t* size) const;

 private:
  struct Entry {
    size_t size;
    MinHash signature;
  };
  std::unordered_map<uint64_t, Entry> entries_;
};

/// \brief One ranked answer.
struct TopKResult {
  uint64_t id = 0;
  /// Sketch-estimated containment t(Q, X), in [0, 1].
  double estimated_containment = 0.0;

  friend bool operator==(const TopKResult&, const TopKResult&) = default;
};

/// \brief One query of a BatchSearch() call. The referenced MinHash is
/// borrowed, not owned; it must outlive the call.
struct TopKQuery {
  const MinHash* query = nullptr;
  /// Exact |Q| if known; 0 means "use the MinHash cardinality estimate".
  size_t query_size = 0;
  /// Absolute steady-clock deadline in nanoseconds (0 = none). Carried
  /// into every descent round's probe; an expired deadline fails the
  /// whole search with DeadlineExceeded.
  uint64_t deadline_ns = 0;
};

/// \brief Top-k searcher over an ensemble + sketch store, or over a
/// DynamicLshEnsemble (which carries its own side-car).
///
/// All referenced objects must outlive the searcher. Thread-safe:
/// Search/BatchSearch only read shared state (each BatchSearch call needs
/// its own QueryContext, like any batched query).
class TopKSearcher {
 public:
  struct Options {
    /// First containment threshold probed.
    double initial_threshold = 0.95;
    /// Multiplicative threshold decay between rounds, in (0, 1).
    double decay = 0.7;
    /// Descent floor: below this threshold the search returns its best
    /// effort (protects against scanning the whole index when fewer than
    /// k overlapping domains exist).
    double min_threshold = 0.05;

    Status Validate() const;
  };

  /// Binds with default options.
  TopKSearcher(const LshEnsemble* ensemble, const SketchStore* store);
  TopKSearcher(const LshEnsemble* ensemble, const SketchStore* store,
               Options options);
  /// Binds to a dynamic index: candidates come from its batched query path
  /// (indexed + delta, minus tombstones) and ranking data from its records
  /// side-car. No separate SketchStore needed.
  explicit TopKSearcher(const DynamicLshEnsemble* index);
  TopKSearcher(const DynamicLshEnsemble* index, Options options);
  /// Binds to a sharded serving layer: every descent round's candidate
  /// probe is one scatter/gather wave over the shards, and ranking data
  /// comes from the owning shard's side-car — the cross-shard k-th-best
  /// merge that keeps sharded top-k identical to unsharded. BatchSearch's
  /// `ctx` is unused on this path (shards pin their own scratch) and may
  /// be null. Must not be driven from inside a thread-pool worker.
  explicit TopKSearcher(const ShardedEnsemble* index);
  TopKSearcher(const ShardedEnsemble* index, Options options);

  /// \brief The k domains with the highest estimated containment of the
  /// query, sorted by descending estimate (ties by ascending id). A thin
  /// wrapper over BatchSearch() with a batch of one and a private context.
  ///
  /// \param query      MinHash of the query domain (ensemble's family).
  /// \param query_size exact |Q|, or 0 to use the sketch estimate.
  /// \param k          number of results requested; fewer are returned
  ///                   when fewer candidate domains overlap the query.
  Result<std::vector<TopKResult>> Search(const MinHash& query,
                                         size_t query_size, size_t k) const;

  /// \brief Rank `queries.size()` top-k queries in one call; query i's
  /// results (contract as in Search()) are written to `outs[i]`.
  ///
  /// All queries descend the same threshold schedule in lockstep: each
  /// round issues one BatchQuery() over the still-active queries on the
  /// batched engine, scores the new candidates, and retires a query once
  /// its k-th best estimate reaches the round's threshold. Results are
  /// identical to calling Search() per query. `outs` must point to at
  /// least queries.size() vectors; `ctx` must not be shared by concurrent
  /// callers. On error the contents of `outs` are unspecified.
  Status BatchSearch(std::span<const TopKQuery> queries, size_t k,
                     QueryContext* ctx, std::vector<TopKResult>* outs) const;

 private:
  /// Candidate generation on whichever engine the searcher is bound to.
  Status EngineBatchQuery(std::span<const QuerySpec> specs, QueryContext* ctx,
                          std::vector<uint64_t>* outs) const;
  /// One side-car ranking probe per candidate: returns false when the id
  /// is unrankable, otherwise fills its exact size and the sketch
  /// Jaccard estimate against `query`. A single lookup per candidate,
  /// and for snapshot-resident records the signature is read straight
  /// from the mapping (no copy). On the sharded binding the lookup AND
  /// the estimate both run under the owner shard's lock — a concurrent
  /// Flush() releasing a shard's mapped snapshot can therefore never
  /// unmap a signature mid-estimate.
  Result<bool> RankLookup(const MinHash& query, uint64_t id, size_t* size,
                          double* jaccard) const;

  const LshEnsemble* ensemble_ = nullptr;
  const SketchStore* store_ = nullptr;
  const DynamicLshEnsemble* dynamic_ = nullptr;
  const ShardedEnsemble* sharded_ = nullptr;
  Options options_;
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CORE_TOPK_H_
