#include "core/lsh_ensemble.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "util/clock.h"
#include "util/instance_id.h"
#include "util/thread_pool.h"

namespace lshensemble {

Status LshEnsembleOptions::Validate() const {
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  if (num_hashes < 1 || tree_depth < 1) {
    return Status::InvalidArgument("num_hashes and tree_depth must be >= 1");
  }
  if (num_hashes % tree_depth != 0) {
    return Status::InvalidArgument(
        "tree_depth must divide num_hashes (the signature is split into "
        "num_hashes / tree_depth trees)");
  }
  if (integration_nodes < 8) {
    return Status::InvalidArgument("integration_nodes must be >= 8");
  }
  if (interpolation_lambda > 1.0) {
    return Status::InvalidArgument("interpolation_lambda must be <= 1");
  }
  if (filter_bits_per_key < 1 || filter_bits_per_key > 64) {
    return Status::InvalidArgument("filter_bits_per_key must be in [1, 64]");
  }
  for (size_t i = 0; i < pinned_partitions.size(); ++i) {
    if (pinned_partitions[i].upper <= pinned_partitions[i].lower) {
      return Status::InvalidArgument(
          "pinned partitions must have upper > lower");
    }
    if (i > 0 && pinned_partitions[i].lower < pinned_partitions[i - 1].upper) {
      return Status::InvalidArgument(
          "pinned partitions must be ascending and disjoint");
    }
  }
  return Status::OK();
}

Result<std::vector<PartitionSpec>> ComputePartitions(
    const std::vector<uint64_t>& sorted_sizes,
    const LshEnsembleOptions& options) {
  if (sorted_sizes.empty()) {
    return Status::InvalidArgument("no domain sizes to partition");
  }
  if (!options.pinned_partitions.empty()) {
    // Recompute counts for the pinned intervals and require full coverage:
    // a size falling between intervals would silently vanish from the
    // index otherwise.
    std::vector<PartitionSpec> specs = options.pinned_partitions;
    size_t covered = 0;
    for (PartitionSpec& spec : specs) {
      const auto begin = std::lower_bound(sorted_sizes.begin(),
                                          sorted_sizes.end(), spec.lower);
      const auto end =
          std::lower_bound(sorted_sizes.begin(), sorted_sizes.end(),
                           spec.upper);
      spec.count = static_cast<size_t>(end - begin);
      covered += spec.count;
    }
    if (covered != sorted_sizes.size()) {
      return Status::InvalidArgument(
          "pinned partitions do not cover every domain size");
    }
    return specs;
  }
  if (options.interpolation_lambda >= 0.0) {
    return InterpolatedPartitions(sorted_sizes, options.num_partitions,
                                  options.interpolation_lambda);
  }
  switch (options.strategy) {
    case PartitioningStrategy::kEquiDepth:
      return EquiDepthPartitions(sorted_sizes, options.num_partitions);
    case PartitioningStrategy::kEquiWidth:
      return EquiWidthPartitions(sorted_sizes, options.num_partitions);
    case PartitioningStrategy::kMinimaxCost:
      return MinimaxCostPartitions(sorted_sizes, options.num_partitions);
  }
  return Status::InvalidArgument("unknown partitioning strategy");
}

LshEnsemble::LshEnsemble(LshEnsembleOptions options,
                         std::shared_ptr<const HashFamily> family)
    : options_(std::move(options)),
      family_(std::move(family)),
      instance_id_(NextInstanceId()) {}

size_t QueryContext::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& shard : shards_) {
    bytes += sizeof(Shard) + shard->probe.MemoryBytes() +
             shard->tuned.capacity() * sizeof(TunedParams) +
             shard->probed.capacity() +
             shard->chunk_q.capacity() * sizeof(double) +
             shard->filter_hashes.capacity() * sizeof(uint64_t) +
             shard->filter_admit.capacity();
  }
  for (const auto& partial : partials_) {
    bytes += partial.capacity() * sizeof(uint64_t);
  }
  bytes += statuses_.capacity() * sizeof(Status);
  bytes += dynamic_q_.capacity() * sizeof(double);
  bytes += dynamic_specs_.capacity() * sizeof(QuerySpec);
  bytes += dynamic_delta_x_.capacity() * sizeof(double);
  bytes += dynamic_delta_arena_.capacity() * sizeof(uint64_t);
  bytes += dynamic_delta_block_max_.capacity() * sizeof(double);
  for (const auto& staged : dynamic_outs_) {
    bytes += sizeof(staged) + staged.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

QueryContext::Shard* QueryContext::AcquireShard() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_.empty()) {
    Shard* shard = free_.back();
    free_.pop_back();
    return shard;
  }
  shards_.push_back(std::make_unique<Shard>());
  return shards_.back().get();
}

void QueryContext::ReleaseShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(shard);
}

LshEnsembleBuilder::LshEnsembleBuilder(LshEnsembleOptions options,
                                       std::shared_ptr<const HashFamily> family)
    : options_(std::move(options)), family_(std::move(family)) {}

Status LshEnsembleBuilder::Add(uint64_t id, size_t size, MinHash signature) {
  if (family_ == nullptr) {
    return Status::InvalidArgument("builder has no hash family");
  }
  if (size < 1) {
    return Status::InvalidArgument("domain size must be >= 1");
  }
  if (!signature.valid() || !signature.family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "signature does not belong to the builder's hash family");
  }
  records_.push_back({id, size, std::move(signature)});
  return Status::OK();
}

namespace {

/// Append a forest's occupied-bucket keys — the (tree, slot-0 key) pairs
/// its probes can match (exactly the first-key arena) — to `keys`.
void AppendForestProbeKeys(const LshForest& forest,
                           std::vector<uint64_t>* keys) {
  const std::span<const uint32_t> first_keys = forest.first_key_arena();
  const size_t count = forest.size();
  keys->reserve(keys->size() + first_keys.size());
  for (size_t t = 0; t < static_cast<size_t>(forest.num_trees()); ++t) {
    for (size_t j = 0; j < count; ++j) {
      keys->push_back(ProbeFilter::ProbeKey(static_cast<uint32_t>(t),
                                            first_keys[t * count + j]));
    }
  }
}

}  // namespace

Result<LshEnsemble> LshEnsembleBuilder::Build() && {
  LSHE_RETURN_IF_ERROR(options_.Validate());
  if (family_ == nullptr) {
    return Status::InvalidArgument("builder has no hash family");
  }
  if (options_.num_hashes != family_->num_hashes()) {
    return Status::InvalidArgument(
        "options.num_hashes does not match the hash family");
  }
  if (records_.empty()) {
    return Status::FailedPrecondition("no domains added");
  }

  // The query path unions candidates across partitions without re-dedup,
  // which is only sound when every id occurs once (see the invariant note
  // on LshEnsemble). Enforce it here, where it is still cheap.
  {
    std::vector<uint64_t> ids;
    ids.reserve(records_.size());
    for (const Record& record : records_) ids.push_back(record.id);
    std::sort(ids.begin(), ids.end());
    if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
      return Status::InvalidArgument("duplicate domain id added");
    }
  }

  // Stage 1 (Section 5): partition by domain size.
  std::vector<uint64_t> sizes;
  sizes.reserve(records_.size());
  for (const Record& record : records_) sizes.push_back(record.size);
  std::sort(sizes.begin(), sizes.end());

  std::vector<PartitionSpec> all_specs;
  LSHE_ASSIGN_OR_RETURN(all_specs, ComputePartitions(sizes, options_));

  LshEnsemble ensemble(options_, family_);
  for (const PartitionSpec& spec : all_specs) {
    if (spec.count > 0) ensemble.specs_.push_back(spec);
  }
  ensemble.total_ = records_.size();

  // Stage 2: one dynamic LSH per partition.
  const int num_trees = options_.num_hashes / options_.tree_depth;
  ensemble.forests_.reserve(ensemble.specs_.size());
  for (size_t i = 0; i < ensemble.specs_.size(); ++i) {
    auto forest = LshForest::Create(num_trees, options_.tree_depth);
    if (!forest.ok()) return forest.status();
    ensemble.forests_.push_back(std::move(forest).value());
  }

  // Group records by partition: sort by size, then cut at partition bounds.
  std::sort(records_.begin(), records_.end(),
            [](const Record& a, const Record& b) { return a.size < b.size; });
  std::vector<std::pair<size_t, size_t>> ranges;  // record index ranges
  ranges.reserve(ensemble.specs_.size());
  for (const PartitionSpec& spec : ensemble.specs_) {
    const auto begin = std::lower_bound(
        records_.begin(), records_.end(), spec.lower,
        [](const Record& record, uint64_t key) { return record.size < key; });
    const auto end = std::lower_bound(
        records_.begin(), records_.end(), spec.upper,
        [](const Record& record, uint64_t key) { return record.size < key; });
    ranges.emplace_back(begin - records_.begin(), end - records_.begin());
  }

  std::vector<Status> statuses(ensemble.specs_.size());
  std::vector<std::vector<uint64_t>> filter_keys(
      options_.build_probe_filter ? ensemble.specs_.size() : 0);
  if (options_.build_probe_filter) {
    ensemble.filters_.resize(ensemble.specs_.size());
  }
  auto build_partition = [&](size_t i) {
    LshForest& forest = ensemble.forests_[i];
    for (size_t j = ranges[i].first; j < ranges[i].second; ++j) {
      Status status = forest.Add(records_[j].id, records_[j].signature);
      if (!status.ok()) {
        statuses[i] = std::move(status);
        return;
      }
    }
    forest.Index();
    if (options_.build_probe_filter) {
      // Summarize the forest's occupied buckets into this partition's
      // filter (the engine union is built from the same keys below).
      std::vector<uint64_t>& keys = filter_keys[i];
      AppendForestProbeKeys(forest, &keys);
      ensemble.filters_[i] =
          ProbeFilter::Build(keys, options_.filter_bits_per_key);
    }
  };
  if (options_.parallel_build && ensemble.specs_.size() > 1) {
    ThreadPool::Shared().ParallelFor(ensemble.specs_.size(), build_partition);
  } else {
    for (size_t i = 0; i < ensemble.specs_.size(); ++i) build_partition(i);
  }
  for (const Status& status : statuses) {
    LSHE_RETURN_IF_ERROR(status);
  }
  if (options_.build_probe_filter) {
    // The engine-wide union filter: one membership test per tree answers
    // "can any partition of this engine match the query at all?" — the
    // shard-level prune of the serving layer.
    std::vector<uint64_t> all_keys;
    size_t total_keys = 0;
    for (const auto& keys : filter_keys) total_keys += keys.size();
    all_keys.reserve(total_keys);
    for (const auto& keys : filter_keys) {
      all_keys.insert(all_keys.end(), keys.begin(), keys.end());
    }
    ensemble.engine_filter_ =
        ProbeFilter::Build(all_keys, options_.filter_bits_per_key);
  }

  Tuner::Options tuner_options;
  tuner_options.max_b = num_trees;
  tuner_options.max_r = options_.tree_depth;
  tuner_options.integration_nodes = options_.integration_nodes;
  LSHE_ASSIGN_OR_RETURN(ensemble.tuner_, Tuner::Create(tuner_options));

  records_.clear();
  return ensemble;
}

namespace {

/// Debug-build check of the cross-partition uniqueness invariant (see the
/// class comment): partitions are disjoint, so a query's candidate union
/// must be duplicate-free.
inline void AssertUniqueCandidates(const std::vector<uint64_t>& ids) {
#ifndef NDEBUG
  std::vector<uint64_t> sorted(ids);
  std::sort(sorted.begin(), sorted.end());
  assert(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end() &&
         "partition candidate sets must be disjoint");
#else
  (void)ids;
#endif
}

inline void FillStats(QueryStats* stats, size_t q,
                      const std::vector<uint8_t>& probed,
                      const std::vector<TunedParams>& tuned,
                      size_t filter_skipped = 0, uint64_t slot0_hits = 0,
                      uint64_t slot0_gallops = 0) {
  if (stats == nullptr) return;
  stats->query_size_used = q;
  stats->partitions_probed = 0;
  stats->partitions_pruned = 0;
  stats->partitions_filter_skipped = filter_skipped;
  stats->slot0_cache_hits = slot0_hits;
  stats->slot0_gallop_resumes = slot0_gallops;
  stats->tuned.clear();
  for (size_t i = 0; i < probed.size(); ++i) {
    if (probed[i]) {
      ++stats->partitions_probed;
      stats->tuned.push_back(tuned[i]);
    } else {
      ++stats->partitions_pruned;
    }
  }
}

/// Stage the pre-mixed probe-filter keys of `query`: one hash per tree,
/// derived with exactly the slot-0 truncation Probe matches on. Written to
/// `out[0 .. num_trees)`.
inline void StageFilterHashes(const MinHash& query, int num_trees, int depth,
                              uint64_t* out) {
  const auto& mins = query.values();
  for (int t = 0; t < num_trees; ++t) {
    out[t] = ProbeFilter::HashKey(ProbeFilter::ProbeKey(
        static_cast<uint32_t>(t),
        LshForest::TruncateHash(mins[static_cast<size_t>(t) * depth])));
  }
}

/// True when `filter` may contain any of the first `b` staged tree keys —
/// i.e. the probe could surface candidates. False answers are exact, so a
/// rejected probe can be skipped without changing the candidate set.
/// The per-query deadline gate (QuerySpec::deadline_ns). Checked before
/// any probing and again between partition probes, so an expensive
/// partition can overrun a deadline by at most one probe, never by the
/// rest of the sweep.
inline Status CheckDeadline(uint64_t deadline_ns) {
  if (DeadlineExpired(deadline_ns)) {
    return Status::DeadlineExceeded("query deadline expired");
  }
  return Status::OK();
}

inline bool FilterAdmits(const ProbeFilter& filter, const uint64_t* hashes,
                         int b) {
  // Prefetch every block first: a reject must miss on all b trees, and
  // each probe is a random cache line — overlapped misses instead of a
  // serialized chain is most of the fast-reject's speed.
  for (int t = 0; t < b; ++t) filter.PrefetchHash(hashes[t]);
  for (int t = 0; t < b; ++t) {
    if (filter.MayContainHash(hashes[t])) return true;
  }
  return false;
}

}  // namespace

Status LshEnsemble::ValidateSpec(const QuerySpec& spec, size_t* q) const {
  if (spec.query == nullptr) {
    return Status::InvalidArgument("query must not be null");
  }
  if (!spec.query->valid() || !spec.query->family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "query signature does not belong to the index's hash family");
  }
  if (spec.t_star < 0.0 || spec.t_star > 1.0) {
    return Status::InvalidArgument("t_star must be in [0, 1]");
  }
  // approx(|Q|) in Algorithm 1: fall back to the sketch estimate when the
  // exact cardinality is not supplied.
  *q = spec.query_size;
  if (*q == 0) {
    *q = static_cast<size_t>(std::max<int64_t>(
        1, std::llround(spec.query->EstimateCardinality())));
  }
  return Status::OK();
}

Status LshEnsemble::QueryOne(const QuerySpec& spec, QueryContext::Shard* shard,
                             std::vector<uint64_t>* out,
                             QueryStats* stats) const {
  size_t q = 0;
  LSHE_RETURN_IF_ERROR(ValidateSpec(spec, &q));
  LSHE_RETURN_IF_ERROR(CheckDeadline(spec.deadline_ns));
  out->clear();
  const auto qd = static_cast<double>(q);
  const size_t n = specs_.size();

  // Batches often carry runs of queries with the same cardinality and
  // threshold (uniform workloads, repeated queries); the tuned (b, r) per
  // partition is then identical, so skip even the tuner's cache lookups.
  // (The tuned.size() check guards the moved-from alias: a moved-from
  // ensemble shares the id but has zero partitions.)
  const bool memo_hit = shard->tuned_valid &&
                        shard->last_index_id == instance_id_ &&
                        shard->tuned.size() == n &&
                        shard->last_q == qd &&
                        shard->last_t_star == spec.t_star;
  shard->tuned.resize(n);
  shard->probed.assign(n, 0);
  // Invalidate before mutating tuned[]: an error return mid-loop must not
  // leave the old (q, t*) key paired with partially overwritten params.
  shard->tuned_valid = false;

  const bool use_filters = !filters_.empty();
  const int num_trees = options_.num_hashes / options_.tree_depth;
  size_t filter_skipped = 0;
  // The scratch counters are cumulative; per-query stats report the delta
  // across this query's probes.
  const uint64_t hits0 = shard->probe.slot0_cache_hits();
  const uint64_t gallops0 = shard->probe.slot0_gallop_resumes();
  if (use_filters) {
    shard->filter_hashes.resize(static_cast<size_t>(num_trees));
    StageFilterHashes(*spec.query, num_trees, options_.tree_depth,
                      shard->filter_hashes.data());
    // Whole-engine fast reject, only when no stats are requested (the
    // serving path): without a per-partition sweep the probed/pruned
    // accounting would differ from the stats-visible paths.
    if (stats == nullptr && !engine_filter_.empty() &&
        !FilterAdmits(engine_filter_, shard->filter_hashes.data(),
                      num_trees)) {
      return Status::OK();
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (spec.deadline_ns != 0) {
      LSHE_RETURN_IF_ERROR(CheckDeadline(spec.deadline_ns));
    }
    const auto max_size = static_cast<double>(specs_[i].upper - 1);
    // A domain of size x has containment at most x/q; if even the largest
    // domain in the partition cannot reach t*, skip it (no false negatives).
    if (options_.prune_unreachable_partitions &&
        max_size + 1e-9 < spec.t_star * qd) {
      continue;
    }
    if (!memo_hit) {
      shard->tuned[i] = tuner_->Tune(max_size, qd, spec.t_star);
    }
    shard->probed[i] = 1;
    // Probe fast-path: when the partition's filter proves no tree of the
    // probe can match slot 0, the probe result is empty — skip the arena
    // walk. Still counted as probed (see QueryStats).
    if (use_filters && !FilterAdmits(filters_[i],
                                     shard->filter_hashes.data(),
                                     shard->tuned[i].b)) {
      ++filter_skipped;
      continue;
    }
    LSHE_RETURN_IF_ERROR(forests_[i].Probe(*spec.query, shard->tuned[i].b,
                                           shard->tuned[i].r, &shard->probe,
                                           out));
  }
  shard->last_index_id = instance_id_;
  shard->last_q = qd;
  shard->last_t_star = spec.t_star;
  shard->tuned_valid = true;

  AssertUniqueCandidates(*out);
  FillStats(stats, q, shard->probed, shard->tuned, filter_skipped,
            shard->probe.slot0_cache_hits() - hits0,
            shard->probe.slot0_gallop_resumes() - gallops0);
  return Status::OK();
}

Status LshEnsemble::QueryChunk(std::span<const QuerySpec> specs,
                               QueryContext::Shard* shard,
                               std::vector<uint64_t>* outs,
                               QueryStats* stats) const {
  const size_t m = specs.size();
  const size_t n = specs_.size();

  bool any_deadline = false;
  shard->chunk_q.resize(m);
  for (size_t i = 0; i < m; ++i) {
    size_t q = 0;
    LSHE_RETURN_IF_ERROR(ValidateSpec(specs[i], &q));
    LSHE_RETURN_IF_ERROR(CheckDeadline(specs[i].deadline_ns));
    if (specs[i].deadline_ns != 0) any_deadline = true;
    shard->chunk_q[i] = static_cast<double>(q);
    outs[i].clear();
    if (stats != nullptr) {
      stats[i].query_size_used = q;
      stats[i].partitions_probed = 0;
      stats[i].partitions_pruned = 0;
      stats[i].partitions_filter_skipped = 0;
      stats[i].slot0_cache_hits = 0;
      stats[i].slot0_gallop_resumes = 0;
      stats[i].tuned.clear();
    }
  }

  const bool use_filters = !filters_.empty();
  const int num_trees = options_.num_hashes / options_.tree_depth;
  if (use_filters) {
    // Stage every query's tree keys once; they are reused by the engine
    // admit check here and by each partition's filter below.
    shard->filter_hashes.resize(m * static_cast<size_t>(num_trees));
    shard->filter_admit.assign(m, 1);
    for (size_t i = 0; i < m; ++i) {
      uint64_t* row =
          shard->filter_hashes.data() + i * static_cast<size_t>(num_trees);
      StageFilterHashes(*specs[i].query, num_trees, options_.tree_depth, row);
      // Whole-engine fast reject per query, only when no stats are
      // requested (the serving path): the probed/pruned accounting of the
      // stats-visible paths sweeps every partition.
      if (stats == nullptr && !engine_filter_.empty() &&
          !FilterAdmits(engine_filter_, row, num_trees)) {
        shard->filter_admit[i] = 0;
      }
    }
  }

  // Partition-major: each partition's trees are walked by every query of
  // the chunk before moving on, so its arenas are read while still warm.
  // Per query, partitions are still visited in ascending order, so each
  // outs[i] matches the per-query path byte for byte.
  for (size_t p = 0; p < n; ++p) {
    const auto max_size = static_cast<double>(specs_[p].upper - 1);
    const LshForest& forest = forests_[p];
    // One clock read per partition row covers every query of the chunk:
    // a deadline can overrun by at most one row of probes.
    const uint64_t now = any_deadline ? SteadyNowNanos() : 0;
    // Within-pass tuning memo: runs of queries with equal (q, t*) — the
    // common shape of service traffic — tune once per partition.
    double memo_q = -1.0, memo_t = -1.0;
    TunedParams memo_params;
    for (size_t i = 0; i < m; ++i) {
      if (specs[i].deadline_ns != 0 && now >= specs[i].deadline_ns) {
        return Status::DeadlineExceeded("query deadline expired");
      }
      if (use_filters && !shard->filter_admit[i]) continue;
      const double qd = shard->chunk_q[i];
      if (options_.prune_unreachable_partitions &&
          max_size + 1e-9 < specs[i].t_star * qd) {
        if (stats != nullptr) ++stats[i].partitions_pruned;
        continue;
      }
      if (qd != memo_q || specs[i].t_star != memo_t) {
        memo_params = tuner_->Tune(max_size, qd, specs[i].t_star);
        memo_q = qd;
        memo_t = specs[i].t_star;
      }
      if (stats != nullptr) {
        ++stats[i].partitions_probed;
        stats[i].tuned.push_back(memo_params);
      }
      // Probe fast-path (see QueryOne): a filter miss proves the probe
      // comes back empty.
      if (use_filters &&
          !FilterAdmits(filters_[p],
                        shard->filter_hashes.data() +
                            i * static_cast<size_t>(num_trees),
                        memo_params.b)) {
        if (stats != nullptr) ++stats[i].partitions_filter_skipped;
        continue;
      }
      if (stats == nullptr) {
        LSHE_RETURN_IF_ERROR(forest.Probe(*specs[i].query, memo_params.b,
                                          memo_params.r, &shard->probe,
                                          &outs[i]));
      } else {
        const uint64_t hits0 = shard->probe.slot0_cache_hits();
        const uint64_t gallops0 = shard->probe.slot0_gallop_resumes();
        LSHE_RETURN_IF_ERROR(forest.Probe(*specs[i].query, memo_params.b,
                                          memo_params.r, &shard->probe,
                                          &outs[i]));
        stats[i].slot0_cache_hits +=
            shard->probe.slot0_cache_hits() - hits0;
        stats[i].slot0_gallop_resumes +=
            shard->probe.slot0_gallop_resumes() - gallops0;
      }
    }
  }

  for (size_t i = 0; i < m; ++i) AssertUniqueCandidates(outs[i]);
  return Status::OK();
}

Status LshEnsemble::QueryOnePartitionParallel(const QuerySpec& spec,
                                              QueryContext* ctx,
                                              std::vector<uint64_t>* out,
                                              QueryStats* stats) const {
  size_t q = 0;
  LSHE_RETURN_IF_ERROR(ValidateSpec(spec, &q));
  LSHE_RETURN_IF_ERROR(CheckDeadline(spec.deadline_ns));
  out->clear();
  const auto qd = static_cast<double>(q);
  const size_t n = specs_.size();

  ctx->partials_.resize(n);
  ctx->statuses_.clear();
  ctx->statuses_.resize(n);
  QueryContext::Shard* main_shard = ctx->AcquireShard();
  main_shard->tuned.resize(n);
  main_shard->probed.assign(n, 0);
  main_shard->tuned_valid = false;  // tuned[] is written concurrently below

  const bool use_filters = !filters_.empty();
  const int num_trees = options_.num_hashes / options_.tree_depth;
  main_shard->filter_admit.assign(n, 1);
  if (use_filters) {
    main_shard->filter_hashes.resize(static_cast<size_t>(num_trees));
    StageFilterHashes(*spec.query, num_trees, options_.tree_depth,
                      main_shard->filter_hashes.data());
    // Whole-engine fast reject, stats-less callers only (see QueryOne).
    if (stats == nullptr && !engine_filter_.empty() &&
        !FilterAdmits(engine_filter_, main_shard->filter_hashes.data(),
                      num_trees)) {
      ctx->ReleaseShard(main_shard);
      return Status::OK();
    }
  }

  std::atomic<uint64_t> slot0_hits{0};
  std::atomic<uint64_t> slot0_gallops{0};
  auto probe = [&](size_t i) {
    ctx->partials_[i].clear();
    if (spec.deadline_ns != 0) {
      ctx->statuses_[i] = CheckDeadline(spec.deadline_ns);
      if (!ctx->statuses_[i].ok()) return;
    }
    const PartitionSpec& part = specs_[i];
    const auto max_size = static_cast<double>(part.upper - 1);
    if (options_.prune_unreachable_partitions &&
        max_size + 1e-9 < spec.t_star * qd) {
      return;
    }
    main_shard->tuned[i] = tuner_->Tune(max_size, qd, spec.t_star);
    main_shard->probed[i] = 1;
    // Probe fast-path (see QueryOne): a filter miss proves the probe
    // comes back empty, so the partial stays cleared.
    if (use_filters && !FilterAdmits(filters_[i],
                                     main_shard->filter_hashes.data(),
                                     main_shard->tuned[i].b)) {
      main_shard->filter_admit[i] = 0;
      return;
    }
    QueryContext::Shard* shard = ctx->AcquireShard();
    const uint64_t hits0 = shard->probe.slot0_cache_hits();
    const uint64_t gallops0 = shard->probe.slot0_gallop_resumes();
    ctx->statuses_[i] =
        forests_[i].Probe(*spec.query, main_shard->tuned[i].b,
                          main_shard->tuned[i].r, &shard->probe,
                          &ctx->partials_[i]);
    if (stats != nullptr) {
      slot0_hits.fetch_add(shard->probe.slot0_cache_hits() - hits0,
                           std::memory_order_relaxed);
      slot0_gallops.fetch_add(
          shard->probe.slot0_gallop_resumes() - gallops0,
          std::memory_order_relaxed);
    }
    ctx->ReleaseShard(shard);
  };
  ThreadPool::Shared().ParallelFor(n, probe);

  Status first_error = Status::OK();
  for (const Status& status : ctx->statuses_) {
    if (!status.ok()) {
      first_error = status;
      break;
    }
  }
  if (first_error.ok()) {
    size_t total = 0;
    for (const auto& partial : ctx->partials_) total += partial.size();
    out->reserve(total);
    for (const auto& partial : ctx->partials_) {
      out->insert(out->end(), partial.begin(), partial.end());
    }
    AssertUniqueCandidates(*out);
    size_t filter_skipped = 0;
    for (size_t i = 0; i < n; ++i) {
      if (main_shard->probed[i] && !main_shard->filter_admit[i]) {
        ++filter_skipped;
      }
    }
    FillStats(stats, q, main_shard->probed, main_shard->tuned,
              filter_skipped, slot0_hits.load(std::memory_order_relaxed),
              slot0_gallops.load(std::memory_order_relaxed));
  }
  ctx->ReleaseShard(main_shard);
  return first_error;
}

Status LshEnsemble::Query(const MinHash& query, size_t query_size,
                          double t_star, std::vector<uint64_t>* out,
                          QueryStats* stats) const {
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  QueryContext ctx;
  const QuerySpec spec{&query, query_size, t_star};
  return BatchQuery(std::span<const QuerySpec>(&spec, 1), &ctx, out, stats);
}

Status LshEnsemble::BatchQuery(std::span<const QuerySpec> specs,
                               QueryContext* ctx, std::vector<uint64_t>* outs,
                               QueryStats* stats) const {
  if (ctx == nullptr) {
    return Status::InvalidArgument("ctx must not be null");
  }
  if (specs.empty()) return Status::OK();
  if (outs == nullptr) {
    return Status::InvalidArgument("outs must not be null");
  }

  // A batch of one cannot be spread across queries; preserve single-query
  // latency by spreading its partitions instead (the seed engine's shape).
  if (specs.size() == 1) {
    if (options_.parallel_query && specs_.size() > 1) {
      return QueryOnePartitionParallel(specs[0], ctx, &outs[0],
                                       stats != nullptr ? &stats[0] : nullptr);
    }
    QueryContext::Shard* shard = ctx->AcquireShard();
    const Status status =
        QueryOne(specs[0], shard, &outs[0],
                 stats != nullptr ? &stats[0] : nullptr);
    ctx->ReleaseShard(shard);
    return status;
  }

  const size_t count = specs.size();
  // Across-query parallelism: contiguous chunks keep one shard (and the
  // partition arenas QueryChunk revisits) hot per worker while the 4x
  // over-decomposition lets the pool balance uneven query costs.
  const size_t participants = ThreadPool::Shared().num_threads() + 1;
  const size_t chunks =
      options_.parallel_query ? std::min(count, participants * 4) : 1;
  if (chunks == 1) {
    QueryContext::Shard* shard = ctx->AcquireShard();
    const Status status = QueryChunk(specs, shard, outs, stats);
    ctx->ReleaseShard(shard);
    return status;
  }
  ctx->statuses_.clear();
  ctx->statuses_.resize(chunks);
  ThreadPool::Shared().ParallelFor(chunks, [&](size_t c) {
    const size_t begin = c * count / chunks;
    const size_t end = (c + 1) * count / chunks;
    QueryContext::Shard* shard = ctx->AcquireShard();
    ctx->statuses_[c] =
        QueryChunk(specs.subspan(begin, end - begin), shard, outs + begin,
                   stats != nullptr ? stats + begin : nullptr);
    ctx->ReleaseShard(shard);
  });
  for (const Status& status : ctx->statuses_) {
    LSHE_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

Result<TunedParams> LshEnsemble::TuneForPartition(size_t index, double q,
                                                  double t_star) const {
  if (index >= specs_.size()) {
    return Status::OutOfRange("partition index out of range");
  }
  if (q <= 0.0 || t_star < 0.0 || t_star > 1.0) {
    return Status::InvalidArgument("q must be > 0 and t_star in [0, 1]");
  }
  return tuner_->Tune(static_cast<double>(specs_[index].upper - 1), q, t_star);
}

void LshEnsemble::RebuildProbeFilters() {
  filters_.clear();
  engine_filter_ = ProbeFilter();
  if (!options_.build_probe_filter) return;
  filters_.resize(forests_.size());
  std::vector<uint64_t> all_keys;
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < forests_.size(); ++i) {
    keys.clear();
    AppendForestProbeKeys(forests_[i], &keys);
    filters_[i] = ProbeFilter::Build(keys, options_.filter_bits_per_key);
    all_keys.insert(all_keys.end(), keys.begin(), keys.end());
  }
  engine_filter_ =
      ProbeFilter::Build(all_keys, options_.filter_bits_per_key);
}

size_t LshEnsemble::MemoryBytes() const {
  size_t bytes = 0;
  for (const LshForest& forest : forests_) bytes += forest.MemoryBytes();
  for (const ProbeFilter& filter : filters_) bytes += filter.MemoryBytes();
  bytes += engine_filter_.MemoryBytes();
  return bytes;
}

}  // namespace lshensemble
