#include "core/lsh_ensemble.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/thread_pool.h"

namespace lshensemble {

Status LshEnsembleOptions::Validate() const {
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  if (num_hashes < 1 || tree_depth < 1) {
    return Status::InvalidArgument("num_hashes and tree_depth must be >= 1");
  }
  if (num_hashes % tree_depth != 0) {
    return Status::InvalidArgument(
        "tree_depth must divide num_hashes (the signature is split into "
        "num_hashes / tree_depth trees)");
  }
  if (integration_nodes < 8) {
    return Status::InvalidArgument("integration_nodes must be >= 8");
  }
  if (interpolation_lambda > 1.0) {
    return Status::InvalidArgument("interpolation_lambda must be <= 1");
  }
  return Status::OK();
}

LshEnsembleBuilder::LshEnsembleBuilder(LshEnsembleOptions options,
                                       std::shared_ptr<const HashFamily> family)
    : options_(options), family_(std::move(family)) {}

Status LshEnsembleBuilder::Add(uint64_t id, size_t size, MinHash signature) {
  if (family_ == nullptr) {
    return Status::InvalidArgument("builder has no hash family");
  }
  if (size < 1) {
    return Status::InvalidArgument("domain size must be >= 1");
  }
  if (!signature.valid() || !signature.family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "signature does not belong to the builder's hash family");
  }
  records_.push_back({id, size, std::move(signature)});
  return Status::OK();
}

Result<LshEnsemble> LshEnsembleBuilder::Build() && {
  LSHE_RETURN_IF_ERROR(options_.Validate());
  if (family_ == nullptr) {
    return Status::InvalidArgument("builder has no hash family");
  }
  if (options_.num_hashes != family_->num_hashes()) {
    return Status::InvalidArgument(
        "options.num_hashes does not match the hash family");
  }
  if (records_.empty()) {
    return Status::FailedPrecondition("no domains added");
  }

  // Stage 1 (Section 5): partition by domain size.
  std::vector<uint64_t> sizes;
  sizes.reserve(records_.size());
  for (const Record& record : records_) sizes.push_back(record.size);
  std::sort(sizes.begin(), sizes.end());

  std::vector<PartitionSpec> all_specs;
  if (options_.interpolation_lambda >= 0.0) {
    LSHE_ASSIGN_OR_RETURN(
        all_specs, InterpolatedPartitions(sizes, options_.num_partitions,
                                          options_.interpolation_lambda));
  } else {
    switch (options_.strategy) {
      case PartitioningStrategy::kEquiDepth:
        LSHE_ASSIGN_OR_RETURN(
            all_specs, EquiDepthPartitions(sizes, options_.num_partitions));
        break;
      case PartitioningStrategy::kEquiWidth:
        LSHE_ASSIGN_OR_RETURN(
            all_specs, EquiWidthPartitions(sizes, options_.num_partitions));
        break;
      case PartitioningStrategy::kMinimaxCost:
        LSHE_ASSIGN_OR_RETURN(
            all_specs, MinimaxCostPartitions(sizes, options_.num_partitions));
        break;
    }
  }

  LshEnsemble ensemble(options_, family_);
  for (const PartitionSpec& spec : all_specs) {
    if (spec.count > 0) ensemble.specs_.push_back(spec);
  }
  ensemble.total_ = records_.size();

  // Stage 2: one dynamic LSH per partition.
  const int num_trees = options_.num_hashes / options_.tree_depth;
  ensemble.forests_.reserve(ensemble.specs_.size());
  for (size_t i = 0; i < ensemble.specs_.size(); ++i) {
    auto forest = LshForest::Create(num_trees, options_.tree_depth);
    if (!forest.ok()) return forest.status();
    ensemble.forests_.push_back(std::move(forest).value());
  }

  // Group records by partition: sort by size, then cut at partition bounds.
  std::sort(records_.begin(), records_.end(),
            [](const Record& a, const Record& b) { return a.size < b.size; });
  std::vector<std::pair<size_t, size_t>> ranges;  // record index ranges
  ranges.reserve(ensemble.specs_.size());
  for (const PartitionSpec& spec : ensemble.specs_) {
    const auto begin = std::lower_bound(
        records_.begin(), records_.end(), spec.lower,
        [](const Record& record, uint64_t key) { return record.size < key; });
    const auto end = std::lower_bound(
        records_.begin(), records_.end(), spec.upper,
        [](const Record& record, uint64_t key) { return record.size < key; });
    ranges.emplace_back(begin - records_.begin(), end - records_.begin());
  }

  std::vector<Status> statuses(ensemble.specs_.size());
  auto build_partition = [&](size_t i) {
    LshForest& forest = ensemble.forests_[i];
    for (size_t j = ranges[i].first; j < ranges[i].second; ++j) {
      Status status = forest.Add(records_[j].id, records_[j].signature);
      if (!status.ok()) {
        statuses[i] = std::move(status);
        return;
      }
    }
    forest.Index();
  };
  if (options_.parallel_build && ensemble.specs_.size() > 1) {
    ThreadPool::Shared().ParallelFor(ensemble.specs_.size(), build_partition);
  } else {
    for (size_t i = 0; i < ensemble.specs_.size(); ++i) build_partition(i);
  }
  for (const Status& status : statuses) {
    LSHE_RETURN_IF_ERROR(status);
  }

  Tuner::Options tuner_options;
  tuner_options.max_b = num_trees;
  tuner_options.max_r = options_.tree_depth;
  tuner_options.integration_nodes = options_.integration_nodes;
  LSHE_ASSIGN_OR_RETURN(ensemble.tuner_, Tuner::Create(tuner_options));

  records_.clear();
  return ensemble;
}

Status LshEnsemble::Query(const MinHash& query, size_t query_size,
                          double t_star, std::vector<uint64_t>* out,
                          QueryStats* stats) const {
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  if (!query.valid() || !query.family()->SameAs(*family_)) {
    return Status::InvalidArgument(
        "query signature does not belong to the index's hash family");
  }
  if (t_star < 0.0 || t_star > 1.0) {
    return Status::InvalidArgument("t_star must be in [0, 1]");
  }
  out->clear();

  // approx(|Q|) in Algorithm 1: fall back to the sketch estimate when the
  // exact cardinality is not supplied.
  size_t q = query_size;
  if (q == 0) {
    q = static_cast<size_t>(
        std::max<int64_t>(1, std::llround(query.EstimateCardinality())));
  }
  const auto qd = static_cast<double>(q);

  const size_t n = specs_.size();
  std::vector<std::vector<uint64_t>> results(n);
  std::vector<TunedParams> tuned(n);
  std::vector<char> probed(n, 0);
  std::vector<Status> statuses(n);

  auto probe = [&](size_t i) {
    const PartitionSpec& spec = specs_[i];
    const auto max_size = static_cast<double>(spec.upper - 1);
    // A domain of size x has containment at most x/q; if even the largest
    // domain in the partition cannot reach t*, skip it (no false negatives).
    if (options_.prune_unreachable_partitions &&
        max_size + 1e-9 < t_star * qd) {
      return;
    }
    tuned[i] = tuner_->Tune(max_size, qd, t_star);
    probed[i] = 1;
    statuses[i] = forests_[i].Query(query, tuned[i].b, tuned[i].r, &results[i]);
  };
  if (options_.parallel_query && n > 1) {
    ThreadPool::Shared().ParallelFor(n, probe);
  } else {
    for (size_t i = 0; i < n; ++i) probe(i);
  }

  for (const Status& status : statuses) {
    LSHE_RETURN_IF_ERROR(status);
  }

  size_t total = 0;
  for (const auto& partial : results) total += partial.size();
  out->reserve(total);
  for (const auto& partial : results) {
    out->insert(out->end(), partial.begin(), partial.end());
  }

  if (stats != nullptr) {
    stats->query_size_used = q;
    stats->partitions_probed = 0;
    stats->partitions_pruned = 0;
    stats->tuned.clear();
    for (size_t i = 0; i < n; ++i) {
      if (probed[i]) {
        ++stats->partitions_probed;
        stats->tuned.push_back(tuned[i]);
      } else {
        ++stats->partitions_pruned;
      }
    }
  }
  return Status::OK();
}

Result<TunedParams> LshEnsemble::TuneForPartition(size_t index, double q,
                                                  double t_star) const {
  if (index >= specs_.size()) {
    return Status::OutOfRange("partition index out of range");
  }
  if (q <= 0.0 || t_star < 0.0 || t_star > 1.0) {
    return Status::InvalidArgument("q must be > 0 and t_star in [0, 1]");
  }
  return tuner_->Tune(static_cast<double>(specs_[index].upper - 1), q, t_star);
}

size_t LshEnsemble::MemoryBytes() const {
  size_t bytes = 0;
  for (const LshForest& forest : forests_) bytes += forest.MemoryBytes();
  return bytes;
}

}  // namespace lshensemble
