// Shard-per-core serving layer over the batched engine.
//
// The paper's premise is internet-scale corpora; one monolithic index on
// one thread pool stops scaling at a single socket's memory bandwidth.
// Distributed LSH layouts (Bahmani et al.; Teixeira et al.) partition the
// corpus across independent index replicas and answer queries by
// scatter/gather. This module is that layout inside one process:
//
//  * The corpus is hash-partitioned by domain id into S shards, each
//    backed by its own DynamicLshEnsemble — every shard keeps the full
//    static + delta + tombstone lifecycle, guarded by a per-shard
//    reader/writer lock, so queries run concurrently with inserts.
//  * Rebuilds are corpus-global: the serving layer gathers every live
//    size across shards, computes ONE partitioning with the configured
//    strategy, and pins each shard's rebuild to those boundaries
//    (LshEnsembleOptions::pinned_partitions). Per-partition tuning then
//    depends only on the global boundaries, so the union of shard
//    candidates equals the unsharded engine's candidate set exactly —
//    sharding changes throughput, never results.
//  * BatchQuery() scatters the batch to all shards in ONE thread-pool
//    wave (shards in the outer, parallel loop; each shard walks its query
//    chunks sequentially inside its task — shard engines are built with
//    pool parallelism off, so a wave never nests a dispatch), gathers the
//    per-shard outputs, and merges them into caller-order results, each
//    query's candidates in canonical ascending-id order. Inside each
//    shard task the engine's probe-filter tier (filter/probe_filter.h)
//    turns the all-shard scatter into an effectively routed probe: a
//    query whose slot-0 keys miss a shard's union filter is rejected by
//    that shard in O(trees) Bloom probes before any forest work, and a
//    query that passes skips the individual partitions its keys miss —
//    with one-sided error, so the merged output is byte-identical to the
//    unfiltered scatter.
//  * BatchSearch() runs the lockstep top-k descent (TopKSearcher bound to
//    this layer): each round's threshold probe is one scatter/gather over
//    the shards, and every query's retire decision comes from the k-th
//    best estimate of the cross-shard merge, so the ranked output is
//    identical to the unsharded TopKSearcher.
//
// Per-shard scratch (QueryContext + gather staging) is pooled per shard,
// never shared across shards: a context's tuning memo and flattened-delta
// cache are keyed on one index's identity, so pinning scratch to its shard
// keeps those caches hot across calls and descent rounds.
//
// Threading contract: Insert/Remove/Flush are safe concurrently with
// BatchQuery (per-shard locks); concurrent mutators are serialized per
// shard. BatchSearch's side-car ranking runs lookup AND estimate under
// the owner shard's lock (ScoreRecord), so it is safe concurrently with
// Insert/Remove/Flush too — including a Flush() that releases a
// snapshot-opened shard's mapping. The scatter paths — BatchQuery and
// BatchSearch — must never be issued from inside a thread-pool worker
// (the shard wave would submit pool work from within the pool, which can
// deadlock it); they fail with FailedPrecondition if they are — see
// ThreadPool::InWorkerThread(). Rebuilds deliberately run serially on the
// flushing thread: holding every shard's write lock across a pool
// dispatch could deadlock against a waiting caller that "helps" with a
// queued reader task.

#ifndef LSHENSEMBLE_CORE_SHARDED_ENSEMBLE_H_
#define LSHENSEMBLE_CORE_SHARDED_ENSEMBLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/dynamic_ensemble.h"
#include "core/lsh_ensemble.h"
#include "core/topk.h"
#include "io/snapshot.h"
#include "minhash/minhash.h"
#include "util/result.h"
#include "util/status.h"

namespace lshensemble {

/// \brief Configuration of a ShardedEnsemble.
struct ShardedEnsembleOptions {
  /// Per-shard build/query options plus the global rebuild policy. The
  /// rebuild trigger is evaluated on corpus-global counts (total delta vs
  /// total indexed), matching the unsharded engine's schedule on the same
  /// insert sequence. Pool parallelism flags are overridden per shard
  /// (shards are the unit of parallelism here).
  DynamicEnsembleOptions base;
  /// Number of shards S; hash(id) mod S picks a domain's shard.
  size_t num_shards = 1;
  /// Ranking options used by BatchSearch().
  TopKSearcher::Options topk;
  /// Admission bound: the number of BatchQuery/BatchSearch calls allowed
  /// in flight at once (0 = unbounded). A call past the bound is shed
  /// immediately with Status::Unavailable — it does no shard work — so an
  /// overloaded server degrades to fast rejections instead of a growing
  /// queue of slow answers. Admitted batches are unaffected: their
  /// results are byte-identical with or without shedding around them.
  size_t max_in_flight_batches = 0;
  /// Opt-in partial results: when a shard's gather fails ONLY because a
  /// query deadline expired, BatchQuery returns OK with the candidates
  /// from the shards that finished and reports the split per query in
  /// QueryStats::shards_gathered / shards_skipped (stats overload). Off,
  /// a deadline expiry anywhere fails the whole batch with
  /// DeadlineExceeded. Any other shard error is fatal either way.
  bool partial_results = false;

  Status Validate() const;
};

/// \brief The decoded MANIFEST of a SaveSnapshot() directory.
struct ShardSnapshotManifest {
  uint64_t num_shards = 0;
  uint32_t num_hashes = 0;
  uint64_t seed = 0;
};

/// \brief Scatter/gather serving layer: S independent dynamic shards, one
/// global partitioning, results identical to the unsharded engine.
class ShardedEnsemble {
 public:
  /// \param family the hash family all inserted signatures must share.
  static Result<ShardedEnsemble> Create(
      ShardedEnsembleOptions options,
      std::shared_ptr<const HashFamily> family);

  ShardedEnsemble(ShardedEnsemble&&) = default;
  ShardedEnsemble& operator=(ShardedEnsemble&&) = default;

  /// \brief Add a domain to its shard; searchable immediately (delta).
  /// Same id contract as DynamicLshEnsemble::Insert. May trigger a global
  /// rebuild.
  Status Insert(uint64_t id, size_t size, MinHash signature);

  /// \brief Add a domain from its raw (pre-hashed, distinct) values.
  Status Insert(uint64_t id, std::span<const uint64_t> values);

  /// \brief Remove a live domain from its shard (tombstone or delta drop).
  Status Remove(uint64_t id);

  /// \brief Rebuild every shard now against one corpus-global partitioning
  /// (no-op when every shard is clean and boundaries cannot have changed).
  Status Flush();

  /// \brief Write a v2 snapshot of every shard under `dir` (created if
  /// absent): one zero-copy shard image per shard plus a checksummed
  /// MANIFEST naming the shard count, hash family and per-shard files.
  /// Invalidate-then-commit: any existing manifest is retracted first
  /// (unlink + directory fsync, ordering it before the shard writes)
  /// and the fresh one written last, so a save torn at any point —
  /// including a re-save over a previous snapshot — leaves a directory
  /// that refuses to open rather than one that opens inconsistently.
  /// Holds every shard's read lock for the whole save: queries proceed,
  /// mutations block, and the snapshot describes one point-in-time
  /// state of the index (arenas, side-cars, deltas, tombstones).
  /// `env` selects the file operations (nullptr = Env::Default()).
  Status SaveSnapshot(const std::string& dir, Env* env = nullptr) const;

  /// \brief Open a serving layer from a SaveSnapshot() directory with no
  /// arena copies: every shard mmaps its segment file (deltas restore as
  /// overlays). `options` supplies the serving/rebuild policy and must
  /// request the saved shard count (resharding a snapshot would need to
  /// re-hash every id). Results are identical to the saved engine.
  /// `open_options` selects validation depth and the Env; a failed open
  /// names the shard file that failed and leaves no mappings live.
  static Result<ShardedEnsemble> OpenSnapshot(
      const std::string& dir, ShardedEnsembleOptions options,
      const SnapshotOpenOptions& open_options = {});

  /// \brief Read + CRC-validate `dir`'s MANIFEST without opening any
  /// shard (verification tools; OpenSnapshot uses it internally).
  static Result<ShardSnapshotManifest> ReadSnapshotManifest(
      const std::string& dir, Env* env = nullptr);

  /// \brief File name of shard `shard` inside a snapshot directory.
  static std::string ShardSnapshotFileName(size_t shard);

  /// \brief Answer `specs.size()` queries in one scatter/gather wave.
  /// Query i's live candidates across all shards go to `outs[i]` (cleared
  /// first) in ascending-id order — a canonical order, so results are
  /// byte-identical for every shard count, including S = 1 vs unsharded
  /// (after the same ordering). Safe concurrently with mutations; must
  /// not be called from a pool worker.
  Status BatchQuery(std::span<const QuerySpec> specs,
                    std::vector<uint64_t>* outs) const;

  /// \brief BatchQuery with per-query statistics: `stats[i]` receives the
  /// shard-summed probe counters for query i plus the gather split
  /// (shards_gathered / shards_skipped — the latter nonzero only in
  /// partial-results mode). Collecting stats disables the shards' probe
  /// filter fast path, like the unsharded engine.
  Status BatchQuery(std::span<const QuerySpec> specs,
                    std::vector<uint64_t>* outs, QueryStats* stats) const;

  /// \brief Rank `queries.size()` top-k queries in one lockstep descent
  /// over the shards; query i's ranked results go to `outs[i]`. Identical
  /// output to an unsharded TopKSearcher with the same options. Safe
  /// concurrently with mutations — every ranking read is atomic under
  /// its owner shard's lock (ScoreRecord), though results then reflect
  /// some interleaving of the concurrent writes. Must not be called
  /// from a pool worker.
  Status BatchSearch(std::span<const TopKQuery> queries, size_t k,
                     std::vector<TopKResult>* outs) const;

  size_t num_shards() const { return shards_.size(); }
  /// The hash family every shard shares; queries must be sketched with
  /// it (network callers check seed/num_hashes against this).
  const std::shared_ptr<const HashFamily>& family() const { return family_; }
  /// Shard owning `id` (stable hash, independent of corpus content).
  size_t ShardOf(uint64_t id) const;

  /// Live (searchable) domains across all shards.
  size_t size() const;
  /// Domains in built shard ensembles (including tombstoned ones).
  size_t indexed_size() const;
  /// Domains awaiting the next global rebuild, across all shards.
  size_t delta_size() const;
  /// Tombstoned (removed but still indexed) domains, across all shards.
  size_t tombstone_count() const;

  /// Exact size of a live domain (0 if not live) — owner-shard lookup.
  size_t SizeOf(uint64_t id) const;
  /// Signature of a live domain (nullptr if not live). The pointer is
  /// stable until the domain is Remove()d or this object is destroyed.
  const MinHash* SignatureOf(uint64_t id) const;
  /// Signature and exact size in one owner-shard lookup (nullptr / size
  /// untouched if not live): one lock acquisition per ranked top-k
  /// candidate instead of two. Same pointer-stability contract as
  /// SignatureOf(). Covers only heap records on snapshot-opened shards
  /// (see DynamicLshEnsemble::FindRecord); FindSignature covers both.
  const MinHash* FindRecord(uint64_t id, size_t* size) const;
  /// \brief Borrowed signature view + exact size in one owner-shard
  /// lookup — heap and snapshot-resident records alike. The view is
  /// only stable until the owning shard mutates, flushes (a flush of a
  /// snapshot-opened shard releases its mapping), or is destroyed; use
  /// ScoreRecord() when the read must be atomic with those.
  SignatureView FindSignature(uint64_t id, size_t* size) const;

  /// \brief Rank a candidate under its owner shard's lock: when `id` is
  /// live, fills its exact size and the sketch Jaccard estimate against
  /// `query` and returns true. Lookup and estimate share one lock
  /// acquisition, so a concurrent Flush() — which may release a
  /// snapshot-opened shard's mapping — can never invalidate the
  /// signature mid-estimate. This is the top-k ranking primitive.
  Result<bool> ScoreRecord(const MinHash& query, uint64_t id, size_t* size,
                           double* jaccard) const;

  /// \brief Invoke `fn(id, size, signature)` for every live domain across
  /// all shards (unspecified order), each shard enumerated under its read
  /// lock. The views are only guaranteed stable while `fn` runs (a
  /// concurrent Flush of a snapshot-opened shard can release the mapping
  /// they point into afterwards), so `fn` must copy what it keeps. The
  /// cluster self-join (cluster/clusterer.h) uses this to turn an index —
  /// including one opened straight off a snapshot directory — into its
  /// own query stream.
  void ForEachLiveRecord(
      const std::function<void(uint64_t id, size_t size, SignatureView sig)>&
          fn) const;

  /// Shard introspection for tests and benches (not locked; do not call
  /// concurrently with mutations).
  const DynamicLshEnsemble& shard(size_t index) const {
    return shards_[index]->engine;
  }

 private:
  struct Counters;

 public:
  /// \brief RAII hold on one in-flight admission slot. The slot is
  /// released when the object is destroyed (or moved from). A
  /// default-constructed slot holds nothing — TryAdmit() returns one when
  /// admission is unbounded.
  class AdmissionSlot {
   public:
    AdmissionSlot() = default;
    AdmissionSlot(AdmissionSlot&& other) noexcept
        : counters_(other.counters_) {
      other.counters_ = nullptr;
    }
    AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
      if (this != &other) {
        Release();
        counters_ = other.counters_;
        other.counters_ = nullptr;
      }
      return *this;
    }
    ~AdmissionSlot() { Release(); }

   private:
    friend class ShardedEnsemble;
    explicit AdmissionSlot(Counters* counters) : counters_(counters) {}
    void Release();

    Counters* counters_ = nullptr;
  };

  /// \brief Claim one in-flight slot under max_in_flight_batches, or
  /// Unavailable when the layer is at capacity. BatchQuery/BatchSearch
  /// admit themselves; this is public so callers (and tests) can hold
  /// slots explicitly — e.g. to reserve capacity or to drive the shed
  /// path deterministically.
  Result<AdmissionSlot> TryAdmit() const;

  /// In-flight admitted batches right now (0 when unbounded: slots are
  /// only counted under a bound).
  size_t in_flight_batches() const;

 private:
  /// The top-k descent gathers unsorted: its ranking dedups by id and
  /// orders by (estimate, id), so the canonical sort below would be pure
  /// per-round waste.
  friend class TopKSearcher;

  /// One shard: its engine, its reader/writer lock, and its scratch pool.
  struct Shard {
    explicit Shard(DynamicLshEnsemble e) : engine(std::move(e)) {}

    DynamicLshEnsemble engine;
    /// Guards `engine` (shared for queries, exclusive for mutation).
    mutable std::shared_mutex mutex;
    /// Pooled per-call scratch, pinned to this shard so each context's
    /// tuning memo / delta cache stays keyed to this shard's engine.
    struct Scratch {
      QueryContext ctx;
      std::vector<std::vector<uint64_t>> outs;  // gather staging
    };
    mutable std::mutex scratch_mutex;
    mutable std::vector<std::unique_ptr<Scratch>> scratch_pool;
    mutable std::vector<Scratch*> scratch_free;

    Scratch* AcquireScratch() const;
    void ReleaseScratch(Scratch* scratch) const;
  };

  ShardedEnsemble(ShardedEnsembleOptions options,
                  std::shared_ptr<const HashFamily> family)
      : options_(std::move(options)), family_(std::move(family)) {}

  /// BatchQuery body; `sort_outputs` selects the public canonical
  /// ascending-id order vs the descent's cheaper unsorted gather.
  /// `stats` (optional) receives shard-summed per-query counters and the
  /// partial-results gather split. Does NOT admit — public entry points
  /// do (the top-k descent calls this per round under ONE admission).
  Status BatchQueryImpl(std::span<const QuerySpec> specs,
                        std::vector<uint64_t>* outs, bool sort_outputs,
                        QueryStats* stats = nullptr) const;

  /// FailedPrecondition when called from a pool worker (see file comment).
  Status GuardNotInWorker(const char* what) const;
  /// The global rebuild trigger, mirroring DynamicLshEnsemble's policy on
  /// corpus-global counts (read from the O(1) counters below).
  bool ShouldRebuild() const;
  /// Lock every shard exclusively (in index order) and rebuild all of
  /// them against one freshly computed global partitioning.
  Status FlushLocked();

  /// Corpus-global delta / indexed totals, maintained on Insert/Remove
  /// and reset by rebuilds, so the per-insert rebuild check reads two
  /// atomics instead of locking and summing all S shards. Heap-allocated
  /// to keep the index movable.
  struct Counters {
    std::atomic<size_t> delta{0};
    std::atomic<size_t> indexed{0};
    /// Admitted batches currently in flight (see max_in_flight_batches).
    std::atomic<size_t> in_flight{0};
  };

  ShardedEnsembleOptions options_;
  std::shared_ptr<const HashFamily> family_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<Counters> counters_ = std::make_unique<Counters>();
};

}  // namespace lshensemble

#endif  // LSHENSEMBLE_CORE_SHARDED_ENSEMBLE_H_
